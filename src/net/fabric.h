// Flow-level transfer API over the routed multi-hop fabric.
//
// Fabric instantiates a Topology into per-node Routers on one
// sim::EventQueue and exposes transfer(src, dst, bytes, done): the flow is
// carried hop by hop — each hop queues FIFO behind every other flow sharing
// that output port, so a crowd of devices behind one access point congests
// the AP backhaul without any scripted bandwidth trace.
//
// Determinism: the fabric adds no randomness and no wall-clock reads. A
// flow's trajectory is a pure function of the event-queue order (each hop is
// one kTransferDone event), so fabric runs inherit the simulator's
// bit-determinism across runtime executor thread counts.
//
// Allocation: flows live in a pooled free list and hop completions are
// InlineFn-backed, so the steady state performs no heap allocation (the
// pool and the route cache grow only while new flow shapes first appear).
#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <string_view>
#include <unordered_map>
#include <utility>
#include <vector>

#include "net/router.h"
#include "net/topology.h"
#include "sim/event_queue.h"
#include "sim/resources.h"

namespace leime::obs {
class MetricsRegistry;
}

namespace leime::net {

struct FabricOptions {
  /// Materialize the mirror (root -> leaf) ports so results can be routed
  /// back down. Off by default: uplink-only scenarios skip the extra links
  /// entirely.
  bool duplex = false;
  /// Admission cap applied to every port (see TopologyConfig); 0 =
  /// unbounded.
  double queue_limit_bytes = 0.0;
};

class Fabric {
 public:
  using Completion = sim::Completion;
  using Options = FabricOptions;

  /// Builds one router per topology node with a port per (directed) tree
  /// edge. The topology must validate().
  Fabric(sim::EventQueue& queue, Topology topology, Options options = {});

  /// A dropped flow fires its completion with this time (< 0): a queue
  /// limit was exceeded at some hop. Bytes already serialized on earlier
  /// hops stay spent — the fabric does not model retransmission; callers
  /// retry at the flow level.
  static constexpr double kDropped = -1.0;

  /// Tag for flows that carry no caller identity (hop spans not reported).
  static constexpr std::uint64_t kNoTag = ~std::uint64_t{0};

  /// Per-hop span reporter: called once per completed hop of a tagged flow
  /// with the port's name, when the hop was queued, when the link actually
  /// started serializing it (max of queue time and the port's busy
  /// horizon), and when it was delivered to the next node. A pure tap — it
  /// must not start transfers or otherwise feed back into the fabric.
  using HopTap = std::function<void(std::uint64_t tag, std::string_view port,
                                    double t_queued, double exec_start,
                                    double t_end)>;

  /// Installs (or clears, with nullptr) the hop tap. Untagged flows never
  /// report, so installing a tap does not change behavior for callers of
  /// the untagged transfer overload.
  void set_hop_tap(HopTap tap) { hop_tap_ = std::move(tap); }

  /// Routes `bytes` from src to dst hop by hop; `done` fires with the
  /// delivery time at dst, or with kDropped. src == dst completes
  /// immediately at the current time.
  void transfer(NodeId src, NodeId dst, double bytes, Completion done) {
    transfer(src, dst, bytes, kNoTag, std::move(done));
  }

  /// transfer with a caller tag (e.g. the task id): each completed hop is
  /// reported to the hop tap, so observers can attribute queueing to the
  /// specific congested port.
  void transfer(NodeId src, NodeId dst, double bytes, std::uint64_t tag,
                Completion done);

  /// The underlying link of the directed port src -> dst (one hop), e.g.
  /// to attach bandwidth traces or outage windows; nullptr when absent.
  sim::Link* link(NodeId src, NodeId dst);
  const sim::Link* link(NodeId src, NodeId dst) const;

  Router& router(NodeId node);
  const Router& router(NodeId node) const;

  /// Route-aggregate observations for the controller: the bottleneck
  /// bandwidth (min over hops), total propagation latency (sum), and total
  /// queued backlog (sum) along src -> dst at time t.
  double route_bandwidth_at(NodeId src, NodeId dst, double t) const;
  double route_latency_at(NodeId src, NodeId dst, double t) const;
  double route_backlog_bytes(NodeId src, NodeId dst, double t) const;

  /// True iff every hop of src -> dst is outside an outage window at t.
  bool route_up_at(NodeId src, NodeId dst, double t) const;

  struct Stats {
    std::uint64_t transfers = 0;  ///< flows started
    std::uint64_t delivered = 0;  ///< flows that reached dst
    std::uint64_t drops = 0;      ///< flows dropped at some hop
    std::uint64_t hops = 0;       ///< hop transfers admitted
    double bytes = 0.0;           ///< payload bytes across started flows
  };
  const Stats& stats() const { return stats_; }

  /// Largest backlog observed at admission on any port so far.
  double max_backlog_bytes() const;

  /// Registers/updates fabric metrics (leime_net_*): aggregate flow
  /// counters plus per-port backlog/drop/utilization for the shared
  /// (non-device) ports. `horizon` scales utilization; pass the run
  /// duration.
  void export_metrics(obs::MetricsRegistry& registry, double horizon) const;

  const Topology& topology() const { return topology_; }

  /// Flow-pool slots ever allocated (for zero-allocation gates: stable
  /// once the pool covers the peak number of in-flight flows).
  std::size_t flow_pool_capacity() const { return flows_.size(); }

 private:
  struct Hop {
    Router* router = nullptr;
    Router::Port* port = nullptr;
  };
  struct CachedRoute {
    std::array<Hop, Topology::Route::kMaxHops> hops;
    int count = 0;
  };
  struct Flow {
    double bytes = 0.0;
    Completion done;
    const CachedRoute* route = nullptr;
    int next_hop = 0;
    std::uint32_t next_free = 0;  ///< free-list link (kNoFlow = end)
    // Hop-span state (lives in the pooled slot, not in the per-hop
    // completion capture, which must stay within kCompletionCapacity).
    std::uint64_t tag = kNoTag;
    double hop_queued = 0.0;  ///< when the current hop entered its port
    double hop_exec = 0.0;    ///< when the port's link starts serializing
  };
  static constexpr std::uint32_t kNoFlow = 0xffffffffu;

  const CachedRoute& resolve(NodeId src, NodeId dst);
  std::uint32_t acquire_flow();
  void release_flow(std::uint32_t id);
  void advance(std::uint32_t id, double t);

  sim::EventQueue* queue_;
  Topology topology_;
  Options options_;
  std::vector<Router> routers_;  ///< devices, then APs, edges, cloud
  std::unordered_map<std::uint64_t, CachedRoute> route_cache_;
  std::vector<Flow> flows_;
  std::uint32_t free_head_ = kNoFlow;
  Stats stats_;
  HopTap hop_tap_;
};

}  // namespace leime::net
