// Declarative network topology for the routed multi-hop fabric.
//
// The paper's testbed (and the flat simulator path) models device <-> edge
// <-> cloud as point-to-point links, so congestion has to be scripted via
// bandwidth traces. Real "in the wild" deployments share backhaul: many
// devices associate with one access point, several access points uplink
// into one edge server, and contention among flows is what actually creates
// congestion. This header describes that tree declaratively:
//
//     device --wireless--> access point --backhaul--> edge --WAN--> cloud
//
// A Topology is pure data — node counts, attachment maps and per-link
// bandwidth/latency specs — with static route computation (the tree makes
// every route unique). net::Fabric (fabric.h) instantiates it into routers
// with per-output-port FIFO queues on a sim::EventQueue.
//
// TopologyConfig is the INI-facing subset carried by sim::ScenarioConfig
// (the `[topology]` section): it only describes the access-point tier; the
// device and edge-cloud link parameters come from the scenario's existing
// DeviceSpec / edge fields so a degenerate topology (one device per AP,
// effectively infinite AP bandwidth) reproduces the flat model.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace leime::net {

/// Node tiers, ordered leaf-to-root (device is deepest in the tree).
enum class Tier : std::uint8_t { kDevice = 0, kAp, kEdge, kCloud };

const char* to_string(Tier tier);

/// Identifies one node: a tier plus an index within the tier (the cloud is
/// a single node; its index is always 0).
struct NodeId {
  Tier tier = Tier::kDevice;
  int index = 0;

  static NodeId device(int i) { return {Tier::kDevice, i}; }
  static NodeId ap(int i) { return {Tier::kAp, i}; }
  static NodeId edge(int i) { return {Tier::kEdge, i}; }
  static NodeId cloud() { return {Tier::kCloud, 0}; }

  friend bool operator==(const NodeId&, const NodeId&) = default;
};

/// Stable lowercase name, e.g. "dev3", "ap0", "edge0", "cloud" — also the
/// building block of port and metric names (^[a-z0-9_]+$ by construction).
std::string to_string(NodeId node);

/// One directed link's parameters. Bandwidth in bytes/s (> 0), latency in
/// seconds (>= 0) — the same conventions as sim::Link.
struct LinkSpec {
  double bandwidth = 0.0;
  double latency = 0.0;

  friend bool operator==(const LinkSpec&, const LinkSpec&) = default;
};

/// The `[topology]` INI section: how the access-point tier is shaped.
/// aps == 0 leaves the fabric disabled (the flat point-to-point path, the
/// golden-compatibility baseline).
struct TopologyConfig {
  int aps = 0;                ///< number of access points (0 = disabled)
  double ap_bandwidth = 0.0;  ///< AP -> edge backhaul, bytes/s (> 0)
  double ap_latency = 0.0;    ///< AP -> edge propagation, seconds (>= 0)

  /// Explicit device -> AP attachment; empty means round-robin
  /// (device i joins AP i % aps).
  std::vector<int> device_map;

  /// Per-port queue cap in bytes; a transfer whose admission would push a
  /// port's backlog past the cap is dropped (counted, completion fires
  /// with Fabric::kDropped). 0 = unbounded queues (no drops).
  double queue_limit_bytes = 0.0;

  bool enabled() const { return aps > 0; }

  /// Throws std::invalid_argument on aps < 0, non-positive bandwidth,
  /// negative latency/limit, or a device_map of the wrong size / range.
  void validate(std::size_t num_devices) const;

  friend bool operator==(const TopologyConfig&,
                         const TopologyConfig&) = default;
};

/// The expanded tree: every node attached, every link specced. Built either
/// directly (tests, exotic layouts) or via from_config (the simulator).
class Topology {
 public:
  /// All counts must be >= 1 except num_devices >= 0. Attachments start
  /// unset; validate() (or route()) throws while any are missing.
  Topology(int num_devices, int num_aps, int num_edges);

  void attach_device(int device, int ap, LinkSpec up);
  void attach_ap(int ap, int edge, LinkSpec up);
  void attach_edge(int edge, LinkSpec to_cloud);

  /// Throws std::invalid_argument when any device/AP/edge is unattached or
  /// an index is out of range.
  void validate() const;

  int num_devices() const { return num_devices_; }
  int num_aps() const { return num_aps_; }
  int num_edges() const { return num_edges_; }

  int ap_of(int device) const { return ap_of_device_[device]; }
  int edge_of(int ap) const { return edge_of_ap_[ap]; }
  const LinkSpec& device_up(int device) const { return device_up_[device]; }
  const LinkSpec& ap_up(int ap) const { return ap_up_[ap]; }
  const LinkSpec& edge_up(int edge) const { return edge_up_[edge]; }

  /// Parent in the tree; cloud has none (throws).
  NodeId parent(NodeId node) const;

  /// The unique tree route src -> dst as a sequence of directed hops
  /// (src-of-hop, dst-of-hop). Hops toward the root use the uplink specs;
  /// hops away from the root are the mirror (duplex) direction, which the
  /// fabric only materializes when built with duplex ports.
  struct Route {
    static constexpr int kMaxHops = 6;  ///< device -> cloud -> device
    std::array<std::pair<NodeId, NodeId>, kMaxHops> hops;
    int count = 0;
  };
  Route route(NodeId src, NodeId dst) const;

  /// Expands a TopologyConfig: per-device wireless uplinks from
  /// `device_uplinks`, AP backhaul from the config, every AP into edge 0,
  /// edge 0 -> cloud from `edge_cloud`. The config must be enabled() and
  /// validate() against device_uplinks.size().
  static Topology from_config(const TopologyConfig& config,
                              const std::vector<LinkSpec>& device_uplinks,
                              LinkSpec edge_cloud);

 private:
  int num_devices_;
  int num_aps_;
  int num_edges_;
  std::vector<int> ap_of_device_;
  std::vector<int> edge_of_ap_;
  std::vector<LinkSpec> device_up_;
  std::vector<LinkSpec> ap_up_;
  std::vector<LinkSpec> edge_up_;
};

}  // namespace leime::net
