#include "net/fabric.h"

#include <algorithm>
#include <stdexcept>

#include "obs/metrics.h"
#include "util/check.h"

namespace leime::net {
namespace {

std::uint32_t pack_node(NodeId node) {
  return (static_cast<std::uint32_t>(node.tier) << 24) |
         (static_cast<std::uint32_t>(node.index) & 0x00ffffffu);
}

std::uint64_t route_key(NodeId src, NodeId dst) {
  return (static_cast<std::uint64_t>(pack_node(src)) << 32) |
         static_cast<std::uint64_t>(pack_node(dst));
}

}  // namespace

Fabric::Fabric(sim::EventQueue& queue, Topology topology, Options options)
    : queue_(&queue), topology_(std::move(topology)), options_(options) {
  topology_.validate();
  if (options_.queue_limit_bytes < 0.0)
    throw std::invalid_argument("net: queue limit must be >= 0");

  const int n = topology_.num_devices();
  const int a = topology_.num_aps();
  const int e = topology_.num_edges();
  routers_.reserve(static_cast<std::size_t>(n + a + e + 1));
  for (int i = 0; i < n; ++i) routers_.emplace_back(*queue_, NodeId::device(i));
  for (int i = 0; i < a; ++i) routers_.emplace_back(*queue_, NodeId::ap(i));
  for (int i = 0; i < e; ++i) routers_.emplace_back(*queue_, NodeId::edge(i));
  routers_.emplace_back(*queue_, NodeId::cloud());

  const auto connect = [&](NodeId child, NodeId parent, const LinkSpec& up) {
    router(child).add_port(parent, up, options_.queue_limit_bytes);
    if (options_.duplex)
      router(parent).add_port(child, up, options_.queue_limit_bytes);
  };
  for (int i = 0; i < n; ++i)
    connect(NodeId::device(i), NodeId::ap(topology_.ap_of(i)),
            topology_.device_up(i));
  for (int i = 0; i < a; ++i)
    connect(NodeId::ap(i), NodeId::edge(topology_.edge_of(i)),
            topology_.ap_up(i));
  for (int i = 0; i < e; ++i)
    connect(NodeId::edge(i), NodeId::cloud(), topology_.edge_up(i));
}

Router& Fabric::router(NodeId node) {
  const int n = topology_.num_devices();
  const int a = topology_.num_aps();
  const int e = topology_.num_edges();
  std::size_t index = 0;
  switch (node.tier) {
    case Tier::kDevice:
      LEIME_CHECK(node.index >= 0 && node.index < n);
      index = static_cast<std::size_t>(node.index);
      break;
    case Tier::kAp:
      LEIME_CHECK(node.index >= 0 && node.index < a);
      index = static_cast<std::size_t>(n + node.index);
      break;
    case Tier::kEdge:
      LEIME_CHECK(node.index >= 0 && node.index < e);
      index = static_cast<std::size_t>(n + a + node.index);
      break;
    case Tier::kCloud:
      index = static_cast<std::size_t>(n + a + e);
      break;
  }
  return routers_[index];
}

const Router& Fabric::router(NodeId node) const {
  return const_cast<Fabric*>(this)->router(node);
}

sim::Link* Fabric::link(NodeId src, NodeId dst) {
  Router::Port* port = router(src).find_port(dst);
  return port ? port->link.get() : nullptr;
}

const sim::Link* Fabric::link(NodeId src, NodeId dst) const {
  return const_cast<Fabric*>(this)->link(src, dst);
}

const Fabric::CachedRoute& Fabric::resolve(NodeId src, NodeId dst) {
  const std::uint64_t key = route_key(src, dst);
  const auto it = route_cache_.find(key);
  if (it != route_cache_.end()) return it->second;

  const Topology::Route route = topology_.route(src, dst);
  CachedRoute cached;
  cached.count = route.count;
  for (int i = 0; i < route.count; ++i) {
    const auto& [hop_src, hop_dst] = route.hops[static_cast<std::size_t>(i)];
    Router& hop_router = router(hop_src);
    Router::Port* port = hop_router.find_port(hop_dst);
    if (!port)
      throw std::invalid_argument(
          "net: route " + to_string(src) + " -> " + to_string(dst) +
          " needs the downlink port " + to_string(hop_src) + " -> " +
          to_string(hop_dst) + " (build the fabric with duplex ports)");
    cached.hops[static_cast<std::size_t>(i)] = {&hop_router, port};
  }
  return route_cache_.emplace(key, cached).first->second;
}

std::uint32_t Fabric::acquire_flow() {
  if (free_head_ != kNoFlow) {
    const std::uint32_t id = free_head_;
    free_head_ = flows_[id].next_free;
    return id;
  }
  flows_.emplace_back();
  return static_cast<std::uint32_t>(flows_.size() - 1);
}

void Fabric::release_flow(std::uint32_t id) {
  Flow& flow = flows_[id];
  flow.done.reset();
  flow.route = nullptr;
  flow.tag = kNoTag;
  flow.next_free = free_head_;
  free_head_ = id;
}

void Fabric::transfer(NodeId src, NodeId dst, double bytes, std::uint64_t tag,
                      Completion done) {
  if (bytes < 0.0) throw std::invalid_argument("net: negative bytes");
  ++stats_.transfers;
  stats_.bytes += bytes;

  const CachedRoute& route = resolve(src, dst);
  if (route.count == 0) {
    ++stats_.delivered;
    done(queue_->now());
    return;
  }

  const std::uint32_t id = acquire_flow();
  Flow& flow = flows_[id];
  flow.bytes = bytes;
  flow.done = std::move(done);
  flow.route = &route;
  flow.next_hop = 0;
  flow.tag = tag;
  advance(id, queue_->now());
}

void Fabric::advance(std::uint32_t id, double t) {
  Flow& flow = flows_[id];
  // The hop whose completion brought us here (if any) spans
  // [hop_queued, t]; report it before moving the flow on.
  if (hop_tap_ && flow.tag != kNoTag && flow.next_hop > 0) {
    const Hop& prev =
        flow.route->hops[static_cast<std::size_t>(flow.next_hop - 1)];
    hop_tap_(flow.tag, prev.port->name, flow.hop_queued, flow.hop_exec, t);
  }
  if (flow.next_hop == flow.route->count) {
    ++stats_.delivered;
    Completion done = std::move(flow.done);
    release_flow(id);  // before invoking: the completion may start new flows
    done(t);
    return;
  }

  const Hop& hop =
      flow.route->hops[static_cast<std::size_t>(flow.next_hop)];
  ++flow.next_hop;
  flow.hop_queued = t;
  // The link serializes after everything already queued on this port; the
  // gap is the hop's wait (an outage hold after that still counts as
  // service — the link resolves outage windows internally).
  flow.hop_exec = std::max(t, hop.port->link->busy_until());
  const bool sent = hop.router->send(
      *hop.port, flow.bytes,
      [this, id](double when) { advance(id, when); });
  if (!sent) {
    ++stats_.drops;
    Completion done = std::move(flow.done);
    release_flow(id);
    done(kDropped);
    return;
  }
  ++stats_.hops;
}

double Fabric::route_bandwidth_at(NodeId src, NodeId dst, double t) const {
  const auto& route = const_cast<Fabric*>(this)->resolve(src, dst);
  double bw = 0.0;
  for (int i = 0; i < route.count; ++i) {
    const double hop_bw =
        route.hops[static_cast<std::size_t>(i)].port->link->bandwidth_at(t);
    bw = (i == 0) ? hop_bw : std::min(bw, hop_bw);
  }
  return bw;
}

double Fabric::route_latency_at(NodeId src, NodeId dst, double t) const {
  const auto& route = const_cast<Fabric*>(this)->resolve(src, dst);
  double lat = 0.0;
  for (int i = 0; i < route.count; ++i)
    lat += route.hops[static_cast<std::size_t>(i)].port->link->latency_at(t);
  return lat;
}

double Fabric::route_backlog_bytes(NodeId src, NodeId dst, double t) const {
  const auto& route = const_cast<Fabric*>(this)->resolve(src, dst);
  double backlog = 0.0;
  for (int i = 0; i < route.count; ++i)
    backlog +=
        route.hops[static_cast<std::size_t>(i)].port->link->backlog_bytes(t);
  return backlog;
}

bool Fabric::route_up_at(NodeId src, NodeId dst, double t) const {
  const auto& route = const_cast<Fabric*>(this)->resolve(src, dst);
  for (int i = 0; i < route.count; ++i)
    if (!route.hops[static_cast<std::size_t>(i)].port->link->up_at(t))
      return false;
  return true;
}

double Fabric::max_backlog_bytes() const {
  double peak = 0.0;
  for (const Router& r : routers_)
    for (const auto& port : r.ports())
      peak = std::max(peak, port.stats.peak_backlog_bytes);
  return peak;
}

void Fabric::export_metrics(obs::MetricsRegistry& registry,
                            double horizon) const {
  registry
      .counter("leime_net_transfers_total", "fabric flows started")
      .inc(stats_.transfers);
  registry
      .counter("leime_net_delivered_total", "fabric flows delivered")
      .inc(stats_.delivered);
  registry.counter("leime_net_drops_total", "fabric flows dropped").inc(
      stats_.drops);
  registry.counter("leime_net_hops_total", "fabric hop transfers").inc(
      stats_.hops);
  registry.gauge("leime_net_bytes_total", "fabric payload bytes")
      .set(stats_.bytes);
  registry.gauge("leime_net_max_backlog_bytes", "peak port backlog")
      .set(max_backlog_bytes());

  // Per-port series only for the shared tiers (AP/edge/cloud endpoints):
  // device ports would blow up metric cardinality with fleet size, and
  // their state already reaches the controller via the route aggregates.
  for (const Router& r : routers_) {
    if (r.node().tier == Tier::kDevice) continue;
    for (const auto& port : r.ports()) {
      if (port.dst.tier == Tier::kDevice) continue;
      const std::string prefix = "leime_net_port_" + port.name;
      registry.counter(prefix + "_transfers_total", "port transfers")
          .inc(port.stats.transfers);
      registry.counter(prefix + "_drops_total", "port drops")
          .inc(port.stats.drops);
      registry.gauge(prefix + "_bytes_total", "port payload bytes")
          .set(port.stats.bytes);
      registry.gauge(prefix + "_peak_backlog_bytes", "port backlog high water")
          .set(port.stats.peak_backlog_bytes);
      registry.gauge(prefix + "_utilization", "busy time / horizon")
          .set(horizon > 0.0 ? port.stats.busy_time / horizon : 0.0);
    }
  }
}

}  // namespace leime::net
