// Per-node router: one FIFO output queue per attached link.
//
// A Router owns the output ports of one topology node. Each port wraps a
// sim::Link — so serialization, bandwidth/latency traces and outage windows
// all behave exactly like the flat simulator's links — plus an optional
// admission cap and per-port statistics. Congestion is emergent: when many
// flows target the same port its FIFO backlog grows, and with a queue limit
// set, excess flows are dropped (the fabric surfaces the drop to the
// caller's completion).
//
// Routers do no route computation; net::Fabric resolves routes from the
// Topology and calls send() hop by hop.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "net/topology.h"
#include "sim/event_queue.h"
#include "sim/resources.h"

namespace leime::net {

/// Per-port counters, cheap enough to keep always-on. busy_time integrates
/// serialization occupancy (for utilization = busy_time / horizon);
/// peak_backlog_bytes records the high-water mark seen at admission.
struct PortStats {
  std::uint64_t transfers = 0;
  std::uint64_t drops = 0;
  double bytes = 0.0;
  double busy_time = 0.0;
  double peak_backlog_bytes = 0.0;
};

class Router {
 public:
  struct Port {
    NodeId dst;
    std::string name;  ///< "<src>_<dst>", e.g. "dev3_ap0" — metric-safe
    double queue_limit_bytes = 0.0;  ///< 0 = unbounded
    std::unique_ptr<sim::Link> link;
    PortStats stats;
  };

  Router(sim::EventQueue& queue, NodeId node);

  /// Adds the output port toward `dst`. Ports must all be added before the
  /// simulation starts; the returned reference stays valid for the router's
  /// lifetime (ports never shrink).
  Port& add_port(NodeId dst, const LinkSpec& spec, double queue_limit_bytes);

  /// nullptr when this router has no port toward `dst`.
  Port* find_port(NodeId dst);
  const Port* find_port(NodeId dst) const;

  /// Admits `bytes` into the port's FIFO. Returns false (and counts a drop)
  /// when a queue limit is set and the backlog plus this transfer would
  /// exceed it; otherwise serializes behind the queued flows and fires
  /// `done` at delivery. Zero-byte transfers are always admitted (control
  /// traffic pays latency, not bandwidth).
  bool send(Port& port, double bytes, sim::Completion done);

  NodeId node() const { return node_; }
  const std::vector<Port>& ports() const { return ports_; }
  std::vector<Port>& ports() { return ports_; }

 private:
  sim::EventQueue* queue_;
  NodeId node_;
  std::vector<Port> ports_;
};

}  // namespace leime::net
