#include "net/topology.h"

#include <cmath>
#include <stdexcept>

namespace leime::net {
namespace {

/// Depth from the root (cloud) — used to climb the tree toward the lowest
/// common ancestor when computing routes.
int depth(Tier tier) {
  switch (tier) {
    case Tier::kDevice: return 3;
    case Tier::kAp: return 2;
    case Tier::kEdge: return 1;
    case Tier::kCloud: return 0;
  }
  throw std::invalid_argument("net: unknown tier");
}

void check_spec(const LinkSpec& spec, const char* what) {
  if (!(spec.bandwidth > 0.0) || !std::isfinite(spec.bandwidth))
    throw std::invalid_argument(std::string("net: ") + what +
                                " bandwidth must be finite and > 0");
  if (spec.latency < 0.0 || !std::isfinite(spec.latency))
    throw std::invalid_argument(std::string("net: ") + what +
                                " latency must be finite and >= 0");
}

}  // namespace

const char* to_string(Tier tier) {
  switch (tier) {
    case Tier::kDevice: return "dev";
    case Tier::kAp: return "ap";
    case Tier::kEdge: return "edge";
    case Tier::kCloud: return "cloud";
  }
  return "?";
}

std::string to_string(NodeId node) {
  if (node.tier == Tier::kCloud) return "cloud";
  return std::string(to_string(node.tier)) + std::to_string(node.index);
}

void TopologyConfig::validate(std::size_t num_devices) const {
  if (aps < 0) throw std::invalid_argument("[topology] aps must be >= 0");
  if (!enabled()) return;
  check_spec({ap_bandwidth, ap_latency}, "[topology] ap");
  if (queue_limit_bytes < 0.0 || !std::isfinite(queue_limit_bytes))
    throw std::invalid_argument(
        "[topology] queue_limit must be finite and >= 0");
  if (!device_map.empty()) {
    if (device_map.size() != num_devices)
      throw std::invalid_argument(
          "[topology] device_map must list one AP per device");
    for (int ap : device_map)
      if (ap < 0 || ap >= aps)
        throw std::invalid_argument("[topology] device_map entry " +
                                    std::to_string(ap) + " out of range");
  }
}

Topology::Topology(int num_devices, int num_aps, int num_edges)
    : num_devices_(num_devices), num_aps_(num_aps), num_edges_(num_edges) {
  if (num_devices < 0 || num_aps < 1 || num_edges < 1)
    throw std::invalid_argument("net: topology needs devices >= 0, aps >= 1, "
                                "edges >= 1");
  ap_of_device_.assign(static_cast<std::size_t>(num_devices), -1);
  edge_of_ap_.assign(static_cast<std::size_t>(num_aps), -1);
  device_up_.resize(static_cast<std::size_t>(num_devices));
  ap_up_.resize(static_cast<std::size_t>(num_aps));
  edge_up_.resize(static_cast<std::size_t>(num_edges));
}

void Topology::attach_device(int device, int ap, LinkSpec up) {
  if (device < 0 || device >= num_devices_)
    throw std::invalid_argument("net: device index out of range");
  if (ap < 0 || ap >= num_aps_)
    throw std::invalid_argument("net: ap index out of range");
  check_spec(up, "device uplink");
  ap_of_device_[static_cast<std::size_t>(device)] = ap;
  device_up_[static_cast<std::size_t>(device)] = up;
}

void Topology::attach_ap(int ap, int edge, LinkSpec up) {
  if (ap < 0 || ap >= num_aps_)
    throw std::invalid_argument("net: ap index out of range");
  if (edge < 0 || edge >= num_edges_)
    throw std::invalid_argument("net: edge index out of range");
  check_spec(up, "ap backhaul");
  edge_of_ap_[static_cast<std::size_t>(ap)] = edge;
  ap_up_[static_cast<std::size_t>(ap)] = up;
}

void Topology::attach_edge(int edge, LinkSpec to_cloud) {
  if (edge < 0 || edge >= num_edges_)
    throw std::invalid_argument("net: edge index out of range");
  check_spec(to_cloud, "edge uplink");
  edge_up_[static_cast<std::size_t>(edge)] = to_cloud;
}

void Topology::validate() const {
  for (int d = 0; d < num_devices_; ++d)
    if (ap_of_device_[static_cast<std::size_t>(d)] < 0)
      throw std::invalid_argument("net: device " + std::to_string(d) +
                                  " is not attached to an AP");
  for (int a = 0; a < num_aps_; ++a)
    if (edge_of_ap_[static_cast<std::size_t>(a)] < 0)
      throw std::invalid_argument("net: ap " + std::to_string(a) +
                                  " is not attached to an edge");
  for (int e = 0; e < num_edges_; ++e)
    if (!(edge_up_[static_cast<std::size_t>(e)].bandwidth > 0.0))
      throw std::invalid_argument("net: edge " + std::to_string(e) +
                                  " has no cloud uplink");
}

NodeId Topology::parent(NodeId node) const {
  switch (node.tier) {
    case Tier::kDevice:
      if (node.index < 0 || node.index >= num_devices_)
        throw std::invalid_argument("net: device index out of range");
      return NodeId::ap(ap_of_device_[static_cast<std::size_t>(node.index)]);
    case Tier::kAp:
      if (node.index < 0 || node.index >= num_aps_)
        throw std::invalid_argument("net: ap index out of range");
      return NodeId::edge(edge_of_ap_[static_cast<std::size_t>(node.index)]);
    case Tier::kEdge:
      if (node.index < 0 || node.index >= num_edges_)
        throw std::invalid_argument("net: edge index out of range");
      return NodeId::cloud();
    case Tier::kCloud:
      break;
  }
  throw std::invalid_argument("net: cloud has no parent");
}

Topology::Route Topology::route(NodeId src, NodeId dst) const {
  validate();
  Route out;
  if (src == dst) return out;

  // Climb both endpoints to the lowest common ancestor; the up-climb from
  // src yields forward hops, the up-climb from dst yields the reversed
  // tail (down-hops away from the root).
  std::array<NodeId, Route::kMaxHops + 1> up{};
  std::array<NodeId, Route::kMaxHops + 1> down{};
  int nu = 0, nd = 0;
  NodeId a = src, b = dst;
  up[static_cast<std::size_t>(nu++)] = a;
  down[static_cast<std::size_t>(nd++)] = b;
  while (!(a == b)) {
    if (depth(a.tier) >= depth(b.tier)) {
      a = parent(a);
      up[static_cast<std::size_t>(nu++)] = a;
    } else {
      b = parent(b);
      down[static_cast<std::size_t>(nd++)] = b;
    }
  }
  for (int i = 0; i + 1 < nu; ++i)
    out.hops[static_cast<std::size_t>(out.count++)] = {
        up[static_cast<std::size_t>(i)], up[static_cast<std::size_t>(i + 1)]};
  for (int i = nd - 1; i > 0; --i)
    out.hops[static_cast<std::size_t>(out.count++)] = {
        down[static_cast<std::size_t>(i)],
        down[static_cast<std::size_t>(i - 1)]};
  return out;
}

Topology Topology::from_config(const TopologyConfig& config,
                               const std::vector<LinkSpec>& device_uplinks,
                               LinkSpec edge_cloud) {
  config.validate(device_uplinks.size());
  if (!config.enabled())
    throw std::invalid_argument("net: from_config needs an enabled topology");
  const int n = static_cast<int>(device_uplinks.size());
  Topology topo(n, config.aps, 1);
  for (int d = 0; d < n; ++d) {
    const int ap = config.device_map.empty()
                       ? d % config.aps
                       : config.device_map[static_cast<std::size_t>(d)];
    topo.attach_device(d, ap, device_uplinks[static_cast<std::size_t>(d)]);
  }
  for (int a = 0; a < config.aps; ++a)
    topo.attach_ap(a, 0, {config.ap_bandwidth, config.ap_latency});
  topo.attach_edge(0, edge_cloud);
  topo.validate();
  return topo;
}

}  // namespace leime::net
