#include "net/router.h"

#include <algorithm>
#include <stdexcept>

namespace leime::net {

Router::Router(sim::EventQueue& queue, NodeId node)
    : queue_(&queue), node_(node) {}

Router::Port& Router::add_port(NodeId dst, const LinkSpec& spec,
                               double queue_limit_bytes) {
  if (find_port(dst))
    throw std::invalid_argument("net: duplicate port " + to_string(node_) +
                                " -> " + to_string(dst));
  if (queue_limit_bytes < 0.0)
    throw std::invalid_argument("net: queue limit must be >= 0");
  Port port;
  port.dst = dst;
  port.name = to_string(node_) + "_" + to_string(dst);
  port.queue_limit_bytes = queue_limit_bytes;
  port.link = std::make_unique<sim::Link>(*queue_, port.name, spec.bandwidth,
                                          spec.latency);
  ports_.push_back(std::move(port));
  return ports_.back();
}

Router::Port* Router::find_port(NodeId dst) {
  for (auto& port : ports_)
    if (port.dst == dst) return &port;
  return nullptr;
}

const Router::Port* Router::find_port(NodeId dst) const {
  for (const auto& port : ports_)
    if (port.dst == dst) return &port;
  return nullptr;
}

bool Router::send(Port& port, double bytes, sim::Completion done) {
  const double now = queue_->now();
  const double backlog = port.link->backlog_bytes(now);
  if (port.queue_limit_bytes > 0.0 && bytes > 0.0 &&
      backlog + bytes > port.queue_limit_bytes) {
    ++port.stats.drops;
    return false;
  }
  ++port.stats.transfers;
  port.stats.bytes += bytes;
  port.stats.busy_time += bytes / port.link->bandwidth_at(now);
  port.stats.peak_backlog_bytes =
      std::max(port.stats.peak_backlog_bytes, backlog + bytes);
  port.link->transfer(bytes, std::move(done));
  return true;
}

}  // namespace leime::net
