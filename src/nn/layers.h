// Neural-network layers with handwritten forward/backward rules.
//
// Contract: forward(x) caches whatever backward needs; backward(grad_out)
// must follow the matching forward and returns grad wrt the input while
// accumulating parameter gradients. zero_grad() clears accumulated
// gradients; optimizers (nn/optimizer.h) update the parameter slices the
// layer exposes via parameters().
#pragma once

#include <memory>
#include <vector>

#include "nn/optimizer.h"
#include "nn/tensor.h"
#include "util/rng.h"

namespace leime::nn {

class Layer {
 public:
  virtual ~Layer() = default;

  virtual Tensor forward(const Tensor& x) = 0;
  virtual Tensor backward(const Tensor& grad_out) = 0;

  virtual void zero_grad() {}

  /// Views over the layer's trainable parameters and their accumulated
  /// gradients; empty for parameterless layers.
  virtual std::vector<ParamSlice> parameters() { return {}; }

  /// Number of trainable parameters (diagnostics).
  virtual std::size_t num_params() const { return 0; }
};

/// Convolution compute strategy: direct nested loops, or im2col + matrix
/// multiply (typically 2-4x faster for k > 1 at these sizes). Both produce
/// bit-identical... numerically equivalent results (float summation order
/// differs); equivalence is pinned by tests.
enum class ConvImpl { kDirect, kIm2col };

/// 2-D convolution with square kernel, stride and zero padding.
class Conv2d final : public Layer {
 public:
  Conv2d(int in_channels, int out_channels, int kernel, int stride,
         int padding, util::Rng& rng, ConvImpl impl = ConvImpl::kIm2col);

  Tensor forward(const Tensor& x) override;
  Tensor backward(const Tensor& grad_out) override;
  void zero_grad() override;
  std::vector<ParamSlice> parameters() override;
  std::size_t num_params() const override;

 private:
  Tensor forward_direct(const Tensor& x, int h_out, int w_out);
  Tensor backward_direct(const Tensor& grad_out);
  Tensor forward_im2col(const Tensor& x, int h_out, int w_out);
  Tensor backward_im2col(const Tensor& grad_out);
  void build_columns(const Tensor& x, int h_out, int w_out);

  int in_c_, out_c_, k_, stride_, pad_;
  ConvImpl impl_;
  std::vector<float> w_, b_;
  std::vector<float> gw_, gb_;
  Tensor cached_input_;
  std::vector<float> columns_;  // im2col buffer: (h_out*w_out) x (in_c*k*k)

  float& wref(int oc, int ic, int kh, int kw) {
    return w_[static_cast<std::size_t>(((oc * in_c_ + ic) * k_ + kh) * k_ + kw)];
  }
  float& gwref(int oc, int ic, int kh, int kw) {
    return gw_[static_cast<std::size_t>(((oc * in_c_ + ic) * k_ + kh) * k_ + kw)];
  }
};

class ReLU final : public Layer {
 public:
  Tensor forward(const Tensor& x) override;
  Tensor backward(const Tensor& grad_out) override;

 private:
  Tensor cached_input_;
};

/// Max pooling with square kernel (stride == kernel, no padding).
class MaxPool2d final : public Layer {
 public:
  explicit MaxPool2d(int kernel);
  Tensor forward(const Tensor& x) override;
  Tensor backward(const Tensor& grad_out) override;

 private:
  int k_;
  std::vector<int> argmax_;  // flat input index per output element
  std::vector<int> in_shape_;
};

/// Global average pool: (C,H,W) -> (C).
class GlobalAvgPool final : public Layer {
 public:
  Tensor forward(const Tensor& x) override;
  Tensor backward(const Tensor& grad_out) override;

 private:
  std::vector<int> in_shape_;
};

/// Fully connected layer on flat inputs.
class Dense final : public Layer {
 public:
  Dense(int in_features, int out_features, util::Rng& rng);

  Tensor forward(const Tensor& x) override;
  Tensor backward(const Tensor& grad_out) override;
  void zero_grad() override;
  std::vector<ParamSlice> parameters() override;
  std::size_t num_params() const override;

 private:
  int in_f_, out_f_;
  std::vector<float> w_, b_, gw_, gb_;
  Tensor cached_input_;
};

/// Per-channel spatial normalization with learnable gain/bias (instance
/// norm): y_c = g_c * (x_c - mean_c) / sqrt(var_c + eps) + b_c. Stabilises
/// the deeper multi-exit backbones.
class InstanceNorm final : public Layer {
 public:
  explicit InstanceNorm(int channels, float eps = 1e-5f);

  Tensor forward(const Tensor& x) override;
  Tensor backward(const Tensor& grad_out) override;
  void zero_grad() override;
  std::vector<ParamSlice> parameters() override;
  std::size_t num_params() const override;

 private:
  int channels_;
  float eps_;
  std::vector<float> gain_, bias_, ggain_, gbias_;
  Tensor cached_norm_;          // x̂ per element
  std::vector<float> inv_std_;  // 1/σ per channel
};

/// A sequential stack of layers acting as one layer.
class Sequential final : public Layer {
 public:
  Sequential() = default;

  void add(std::unique_ptr<Layer> layer) { layers_.push_back(std::move(layer)); }

  Tensor forward(const Tensor& x) override;
  Tensor backward(const Tensor& grad_out) override;
  void zero_grad() override;
  std::vector<ParamSlice> parameters() override;
  std::size_t num_params() const override;
  std::size_t num_layers() const { return layers_.size(); }

 private:
  std::vector<std::unique_ptr<Layer>> layers_;
};

}  // namespace leime::nn
