// Bridge from trained multi-exit networks to analytic chain profiles.
//
// A MultiExitNet has B exits; a ModelProfile has m candidate exits. The
// bridge maps per-exit measurements (cumulative exit rates, accuracies)
// from the B training exits onto the m profile exits by cumulative-FLOPs
// fraction, with linear interpolation — so the latency models consume
// *measured* multi-exit behaviour instead of parametric curves.
#pragma once

#include <vector>

#include "models/profile.h"
#include "nn/calibration.h"

namespace leime::nn {

/// Interpolates `measured` (one value per training exit, assumed evenly
/// spaced in depth) onto the profile's m exits by cumulative-FLOPs
/// fraction. Guarantees the output is monotone non-decreasing if the input
/// is; the final entry is forced to `measured.back()`.
/// Throws std::invalid_argument on fewer than 2 measurements.
std::vector<double> interpolate_to_profile(
    const models::ModelProfile& profile, const std::vector<double>& measured);

/// Trains nothing — takes an already-trained net, calibrates per-exit
/// thresholds on `calibration` at `target_accuracy`, measures cumulative
/// exit rates and per-exit accuracies on `eval`, and installs both into
/// `profile` (via set_exit_rates / set_exit_accuracies).
void install_measured_behaviour(models::ModelProfile& profile,
                                MultiExitNet& net,
                                const std::vector<Sample>& calibration,
                                const std::vector<Sample>& eval,
                                double target_accuracy);

}  // namespace leime::nn
