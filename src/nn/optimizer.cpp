#include "nn/optimizer.h"

#include <cmath>
#include <stdexcept>

namespace leime::nn {

SgdMomentum::SgdMomentum(double lr, double momentum)
    : lr_(lr), momentum_(momentum) {
  if (lr <= 0.0) throw std::invalid_argument("SgdMomentum: lr must be > 0");
  if (momentum < 0.0 || momentum >= 1.0)
    throw std::invalid_argument("SgdMomentum: momentum outside [0,1)");
}

void SgdMomentum::set_learning_rate(double lr) {
  if (lr <= 0.0) throw std::invalid_argument("SgdMomentum: lr must be > 0");
  lr_ = lr;
}

void SgdMomentum::step(const std::vector<ParamSlice>& params) {
  for (const auto& p : params) {
    auto& v = velocity_[p.values];
    if (v.size() != p.size) v.assign(p.size, 0.0f);
    for (std::size_t i = 0; i < p.size; ++i) {
      v[i] = static_cast<float>(momentum_) * v[i] -
             static_cast<float>(lr_) * p.grads[i];
      p.values[i] += v[i];
    }
  }
}

Adam::Adam(double lr, double beta1, double beta2, double eps)
    : lr_(lr), beta1_(beta1), beta2_(beta2), eps_(eps) {
  if (lr <= 0.0) throw std::invalid_argument("Adam: lr must be > 0");
  if (beta1 < 0.0 || beta1 >= 1.0 || beta2 < 0.0 || beta2 >= 1.0)
    throw std::invalid_argument("Adam: betas outside [0,1)");
  if (eps <= 0.0) throw std::invalid_argument("Adam: eps must be > 0");
}

void Adam::step(const std::vector<ParamSlice>& params) {
  ++t_;
  const double bc1 = 1.0 - std::pow(beta1_, static_cast<double>(t_));
  const double bc2 = 1.0 - std::pow(beta2_, static_cast<double>(t_));
  for (const auto& p : params) {
    auto& mom = moments_[p.values];
    if (mom.m.size() != p.size) {
      mom.m.assign(p.size, 0.0f);
      mom.v.assign(p.size, 0.0f);
    }
    for (std::size_t i = 0; i < p.size; ++i) {
      const double g = p.grads[i];
      mom.m[i] = static_cast<float>(beta1_ * mom.m[i] + (1.0 - beta1_) * g);
      mom.v[i] =
          static_cast<float>(beta2_ * mom.v[i] + (1.0 - beta2_) * g * g);
      const double m_hat = mom.m[i] / bc1;
      const double v_hat = mom.v[i] / bc2;
      p.values[i] -=
          static_cast<float>(lr_ * m_hat / (std::sqrt(v_hat) + eps_));
    }
  }
}

}  // namespace leime::nn
