#include "nn/multi_exit_net.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

#include "util/check.h"

namespace leime::nn {

MultiExitNet::MultiExitNet(const NetConfig& config) : config_(config) {
  if (config.block_channels.empty())
    throw std::invalid_argument("NetConfig: no backbone blocks");
  if (config.num_classes < 2)
    throw std::invalid_argument("NetConfig: need >= 2 classes");
  util::Rng rng(config.seed);

  int channels = config.in_channels;
  int size = config.image_size;
  for (std::size_t b = 0; b < config.block_channels.size(); ++b) {
    Sequential block;
    const int out_c = config.block_channels[b];
    block.add(std::make_unique<Conv2d>(channels, out_c, 3, 1, 1, rng));
    if (config.use_norm) block.add(std::make_unique<InstanceNorm>(out_c));
    block.add(std::make_unique<ReLU>());
    const bool pool =
        std::find(config.pool_after.begin(), config.pool_after.end(),
                  static_cast<int>(b)) != config.pool_after.end();
    if (pool) {
      if (size / 2 < 2)
        throw std::invalid_argument("NetConfig: too many pools for image size");
      block.add(std::make_unique<MaxPool2d>(2));
      size /= 2;
    }
    channels = out_c;
    blocks_.push_back(std::move(block));

    Sequential head;
    head.add(std::make_unique<GlobalAvgPool>());
    head.add(std::make_unique<Dense>(channels, config.num_classes, rng));
    heads_.push_back(std::move(head));
  }
}

std::size_t MultiExitNet::num_params() const {
  std::size_t n = 0;
  for (const auto& b : blocks_) n += b.num_params();
  for (const auto& h : heads_) n += h.num_params();
  return n;
}

std::vector<Tensor> MultiExitNet::forward_exits(const Tensor& x) {
  std::vector<Tensor> logits;
  Tensor cur = x;
  for (std::size_t b = 0; b < blocks_.size(); ++b) {
    cur = blocks_[b].forward(cur);
    logits.push_back(heads_[b].forward(cur));
  }
  return logits;
}

std::vector<std::vector<float>> MultiExitNet::exit_probabilities(
    const Tensor& x) {
  const auto logits = forward_exits(x);
  std::vector<std::vector<float>> probs;
  probs.reserve(logits.size());
  for (const auto& l : logits) probs.push_back(softmax(l));
  return probs;
}

std::vector<ParamSlice> MultiExitNet::parameters() {
  std::vector<ParamSlice> out;
  for (auto& b : blocks_) {
    auto p = b.parameters();
    out.insert(out.end(), p.begin(), p.end());
  }
  for (auto& h : heads_) {
    auto p = h.parameters();
    out.insert(out.end(), p.begin(), p.end());
  }
  return out;
}

double MultiExitNet::train_batch(const std::vector<const Sample*>& batch,
                                 double lr, double momentum,
                                 const std::vector<double>& exit_weights) {
  if (!default_optimizer_ || momentum != default_momentum_) {
    default_optimizer_ = std::make_unique<SgdMomentum>(lr, momentum);
    default_momentum_ = momentum;
  } else {
    default_optimizer_->set_learning_rate(lr);
  }
  return train_batch(batch, *default_optimizer_, exit_weights);
}

double MultiExitNet::train_batch(const std::vector<const Sample*>& batch,
                                 Optimizer& optimizer,
                                 const std::vector<double>& exit_weights) {
  if (batch.empty())
    throw std::invalid_argument("train_batch: empty batch");
  std::vector<double> w = exit_weights;
  if (w.empty()) w.assign(blocks_.size(), 1.0);
  if (w.size() != blocks_.size())
    throw std::invalid_argument("train_batch: weight count mismatch");

  for (auto& b : blocks_) b.zero_grad();
  for (auto& h : heads_) h.zero_grad();

  double loss_sum = 0.0;
  for (const Sample* sample : batch) {
    const auto logits = forward_exits(sample->image);
    // Per-exit losses and gradients at the logits.
    std::vector<Tensor> dlogits(logits.size());
    for (std::size_t e = 0; e < logits.size(); ++e) {
      auto lr_res = softmax_cross_entropy(logits[e], sample->label);
      loss_sum += w[e] * lr_res.loss;
      dlogits[e] = std::move(lr_res.grad);
      for (std::size_t i = 0; i < dlogits[e].size(); ++i)
        dlogits[e][i] *= static_cast<float>(w[e]);
    }
    // Reverse sweep: merge each head's gradient with the carry from deeper
    // blocks, then push through the block.
    Tensor carry;
    for (int b = static_cast<int>(blocks_.size()) - 1; b >= 0; --b) {
      Tensor g = heads_[static_cast<std::size_t>(b)].backward(
          dlogits[static_cast<std::size_t>(b)]);
      if (!carry.empty()) g.add_scaled(carry, 1.0f);
      carry = blocks_[static_cast<std::size_t>(b)].backward(g);
    }
  }

  // Average the accumulated gradients over the batch, then step.
  const auto params = parameters();
  const float inv_batch = 1.0f / static_cast<float>(batch.size());
  for (const auto& p : params)
    for (std::size_t i = 0; i < p.size; ++i) p.grads[i] *= inv_batch;
  optimizer.step(params);
  const double total_weight = std::accumulate(w.begin(), w.end(), 0.0);
  return loss_sum / (static_cast<double>(batch.size()) * total_weight);
}

namespace {

/// Softmax of logits / T.
std::vector<float> tempered_softmax(const Tensor& logits, double temperature) {
  Tensor scaled = logits;
  for (std::size_t i = 0; i < scaled.size(); ++i)
    scaled[i] = static_cast<float>(scaled[i] / temperature);
  return softmax(scaled);
}

}  // namespace

double MultiExitNet::train_batch_distill(
    const std::vector<const Sample*>& batch, Optimizer& optimizer,
    double temperature, double alpha) {
  if (batch.empty())
    throw std::invalid_argument("train_batch_distill: empty batch");
  if (temperature <= 0.0)
    throw std::invalid_argument("train_batch_distill: temperature must be > 0");
  if (alpha < 0.0 || alpha > 1.0)
    throw std::invalid_argument("train_batch_distill: alpha outside [0,1]");

  for (auto& b : blocks_) b.zero_grad();
  for (auto& h : heads_) h.zero_grad();

  const auto last = static_cast<std::size_t>(num_exits()) - 1;
  double loss_sum = 0.0;
  for (const Sample* sample : batch) {
    const auto logits = forward_exits(sample->image);
    // Teacher: the final exit's softened distribution, detached.
    const auto teacher = tempered_softmax(logits[last], temperature);

    std::vector<Tensor> dlogits(logits.size());
    for (std::size_t e = 0; e < logits.size(); ++e) {
      auto hard = softmax_cross_entropy(logits[e], sample->label);
      if (e == last) {
        // The teacher itself trains on hard labels only.
        loss_sum += hard.loss;
        dlogits[e] = std::move(hard.grad);
        continue;
      }
      // Soft term: T^2 * KL(teacher || student_T); its gradient at the
      // student logits is T * (softmax(student/T) - teacher), and the T^2
      // scale cancels one 1/T from the chain rule.
      const auto student_soft = tempered_softmax(logits[e], temperature);
      double soft_loss = 0.0;
      for (std::size_t i = 0; i < teacher.size(); ++i) {
        const double p = teacher[i];
        if (p > 1e-12)
          soft_loss += p * (std::log(p) -
                            std::log(std::max(student_soft[i], 1e-12f)));
      }
      soft_loss *= temperature * temperature;
      loss_sum += alpha * hard.loss + (1.0 - alpha) * soft_loss;

      dlogits[e] = Tensor({static_cast<int>(teacher.size())});
      for (std::size_t i = 0; i < teacher.size(); ++i) {
        const float soft_grad = static_cast<float>(
            temperature * (student_soft[i] - teacher[i]));
        dlogits[e][i] = static_cast<float>(alpha) * hard.grad[i] +
                        static_cast<float>(1.0 - alpha) * soft_grad;
      }
    }

    Tensor carry;
    for (int b = static_cast<int>(blocks_.size()) - 1; b >= 0; --b) {
      Tensor g = heads_[static_cast<std::size_t>(b)].backward(
          dlogits[static_cast<std::size_t>(b)]);
      if (!carry.empty()) g.add_scaled(carry, 1.0f);
      carry = blocks_[static_cast<std::size_t>(b)].backward(g);
    }
  }

  const auto params = parameters();
  const float inv_batch = 1.0f / static_cast<float>(batch.size());
  for (const auto& p : params)
    for (std::size_t i = 0; i < p.size; ++i) p.grads[i] *= inv_batch;
  optimizer.step(params);
  return loss_sum /
         (static_cast<double>(batch.size()) * static_cast<double>(num_exits()));
}

double MultiExitNet::exit_accuracy(const std::vector<Sample>& data,
                                   int exit_index) {
  if (exit_index < 0 || exit_index >= num_exits())
    throw std::invalid_argument("exit_accuracy: bad exit index");
  if (data.empty()) throw std::invalid_argument("exit_accuracy: empty data");
  std::size_t correct = 0;
  for (const auto& sample : data) {
    const auto logits = forward_exits(sample.image);
    const auto& l = logits[static_cast<std::size_t>(exit_index)];
    int arg = 0;
    for (std::size_t i = 1; i < l.size(); ++i)
      if (l[i] > l[static_cast<std::size_t>(arg)]) arg = static_cast<int>(i);
    if (arg == sample.label) ++correct;
  }
  return static_cast<double>(correct) / static_cast<double>(data.size());
}

double train(MultiExitNet& net, const std::vector<Sample>& data, int epochs,
             double lr, double momentum, int batch_size, std::uint64_t seed,
             const std::vector<double>& exit_weights) {
  SgdMomentum optimizer(lr, momentum);
  return train(net, data, epochs, optimizer, batch_size, seed, exit_weights);
}

double train(MultiExitNet& net, const std::vector<Sample>& data, int epochs,
             Optimizer& optimizer, int batch_size, std::uint64_t seed,
             const std::vector<double>& exit_weights) {
  if (epochs <= 0 || batch_size <= 0)
    throw std::invalid_argument("train: bad epochs/batch_size");
  if (data.empty()) throw std::invalid_argument("train: empty data");
  util::Rng rng(seed);
  std::vector<std::size_t> order(data.size());
  std::iota(order.begin(), order.end(), 0);

  double last_epoch_loss = 0.0;
  for (int e = 0; e < epochs; ++e) {
    rng.shuffle(order);
    double loss_sum = 0.0;
    std::size_t batches = 0;
    for (std::size_t start = 0; start < order.size();
         start += static_cast<std::size_t>(batch_size)) {
      std::vector<const Sample*> batch;
      const std::size_t end =
          std::min(order.size(), start + static_cast<std::size_t>(batch_size));
      for (std::size_t i = start; i < end; ++i)
        batch.push_back(&data[order[i]]);
      loss_sum += net.train_batch(batch, optimizer, exit_weights);
      ++batches;
    }
    LEIME_CHECK(batches > 0);
    last_epoch_loss = loss_sum / static_cast<double>(batches);
  }
  return last_epoch_loss;
}

double train_distill(MultiExitNet& net, const std::vector<Sample>& data,
                     int epochs, Optimizer& optimizer, int batch_size,
                     std::uint64_t seed, double temperature, double alpha) {
  if (epochs <= 0 || batch_size <= 0)
    throw std::invalid_argument("train_distill: bad epochs/batch_size");
  if (data.empty()) throw std::invalid_argument("train_distill: empty data");
  util::Rng rng(seed);
  std::vector<std::size_t> order(data.size());
  std::iota(order.begin(), order.end(), 0);

  double last_epoch_loss = 0.0;
  for (int e = 0; e < epochs; ++e) {
    rng.shuffle(order);
    double loss_sum = 0.0;
    std::size_t batches = 0;
    for (std::size_t start = 0; start < order.size();
         start += static_cast<std::size_t>(batch_size)) {
      std::vector<const Sample*> batch;
      const std::size_t end =
          std::min(order.size(), start + static_cast<std::size_t>(batch_size));
      for (std::size_t i = start; i < end; ++i)
        batch.push_back(&data[order[i]]);
      loss_sum +=
          net.train_batch_distill(batch, optimizer, temperature, alpha);
      ++batches;
    }
    LEIME_CHECK(batches > 0);
    last_epoch_loss = loss_sum / static_cast<double>(batches);
  }
  return last_epoch_loss;
}

}  // namespace leime::nn
