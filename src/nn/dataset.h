// Procedural synthetic image dataset with controllable per-sample
// complexity (the CIFAR-10 stand-in; see DESIGN.md §2).
//
// Each class is a fixed smooth template (a sum of Gaussian bumps drawn once
// per class). A sample blends its class template with structured noise and a
// small random translation; the blend weight is the sample's complexity, so
// low-complexity samples are separable from shallow features while
// high-complexity ones need depth — the property multi-exit DNNs exploit.
#pragma once

#include <cstdint>
#include <vector>

#include "nn/tensor.h"
#include "util/rng.h"

namespace leime::nn {

struct Sample {
  Tensor image;
  int label = 0;
  double complexity = 0.0;  ///< in [0,1); drawn uniformly
};

struct DatasetConfig {
  int num_classes = 5;
  int image_size = 16;
  int train_per_class = 160;
  int test_per_class = 80;
  double noise_low = 0.15;   ///< noise amplitude at complexity 0
  double noise_high = 1.15;  ///< noise amplitude at complexity 1
  int max_shift = 2;         ///< random translation in pixels
  std::uint64_t seed = 3;
};

class SyntheticImageDataset {
 public:
  explicit SyntheticImageDataset(const DatasetConfig& config);

  const std::vector<Sample>& train() const { return train_; }
  const std::vector<Sample>& test() const { return test_; }
  const DatasetConfig& config() const { return config_; }

 private:
  Sample make_sample(int label, util::Rng& rng) const;

  DatasetConfig config_;
  std::vector<Tensor> templates_;
  std::vector<Sample> train_, test_;
};

}  // namespace leime::nn
