// Classification evaluation metrics for the nn substrate: confusion
// matrix, per-class precision/recall/F1, and macro averages.
#pragma once

#include <vector>

#include "nn/dataset.h"
#include "nn/multi_exit_net.h"

namespace leime::nn {

/// Row-major confusion matrix: entry (true_label, predicted).
class ConfusionMatrix {
 public:
  /// num_classes >= 2.
  explicit ConfusionMatrix(int num_classes);

  /// Records one prediction. Labels must be in [0, num_classes).
  void add(int true_label, int predicted_label);

  int num_classes() const { return classes_; }
  std::size_t total() const { return total_; }
  std::size_t count(int true_label, int predicted_label) const;

  /// Overall accuracy; 0 when empty.
  double accuracy() const;

  /// Per-class precision/recall (0 for classes never predicted/seen).
  double precision(int cls) const;
  double recall(int cls) const;
  double f1(int cls) const;

  /// Unweighted means over classes.
  double macro_precision() const;
  double macro_recall() const;
  double macro_f1() const;

 private:
  void check_label(int label, const char* what) const;

  int classes_;
  std::vector<std::size_t> cells_;  // classes_ x classes_
  std::size_t total_ = 0;
};

/// Evaluates one exit head of a multi-exit network over a dataset split.
ConfusionMatrix evaluate_exit(MultiExitNet& net,
                              const std::vector<Sample>& data,
                              int exit_index);

}  // namespace leime::nn
