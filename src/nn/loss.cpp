#include "nn/loss.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace leime::nn {

std::vector<float> softmax(const Tensor& logits) {
  if (logits.size() == 0) throw std::invalid_argument("softmax: empty logits");
  float max_logit = logits[0];
  for (std::size_t i = 1; i < logits.size(); ++i)
    max_logit = std::max(max_logit, logits[i]);
  std::vector<float> probs(logits.size());
  double sum = 0.0;
  for (std::size_t i = 0; i < logits.size(); ++i) {
    probs[i] = std::exp(logits[i] - max_logit);
    sum += probs[i];
  }
  const auto inv = static_cast<float>(1.0 / sum);
  for (auto& p : probs) p *= inv;
  return probs;
}

LossResult softmax_cross_entropy(const Tensor& logits, int label) {
  if (label < 0 || label >= static_cast<int>(logits.size()))
    throw std::invalid_argument("softmax_cross_entropy: label out of range");
  const auto probs = softmax(logits);
  LossResult out;
  const float p = std::max(probs[static_cast<std::size_t>(label)], 1e-12f);
  out.loss = -std::log(static_cast<double>(p));
  out.grad = Tensor({static_cast<int>(logits.size())});
  for (std::size_t i = 0; i < probs.size(); ++i) out.grad[i] = probs[i];
  out.grad[static_cast<std::size_t>(label)] -= 1.0f;
  return out;
}

}  // namespace leime::nn
