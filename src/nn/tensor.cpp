#include "nn/tensor.h"

#include <algorithm>
#include <stdexcept>

namespace leime::nn {

Tensor::Tensor(std::vector<int> shape) : shape_(std::move(shape)) {
  if (shape_.empty()) throw std::invalid_argument("Tensor: empty shape");
  std::size_t n = 1;
  for (int d : shape_) {
    if (d <= 0) throw std::invalid_argument("Tensor: non-positive dim");
    n *= static_cast<std::size_t>(d);
  }
  data_.assign(n, 0.0f);
}

void Tensor::fill(float value) {
  std::fill(data_.begin(), data_.end(), value);
}

void Tensor::add_scaled(const Tensor& other, float alpha) {
  if (other.size() != size())
    throw std::invalid_argument("Tensor::add_scaled: size mismatch");
  for (std::size_t i = 0; i < data_.size(); ++i)
    data_[i] += alpha * other.data_[i];
}

}  // namespace leime::nn
