#include "nn/profile_bridge.h"

#include <algorithm>
#include <stdexcept>

#include "nn/metrics.h"

namespace leime::nn {

std::vector<double> interpolate_to_profile(
    const models::ModelProfile& profile,
    const std::vector<double>& measured) {
  if (measured.size() < 2)
    throw std::invalid_argument(
        "interpolate_to_profile: need at least 2 measurements");
  const int m = profile.num_units();
  const double total = profile.total_flops();
  std::vector<double> out;
  out.reserve(static_cast<std::size_t>(m));
  for (int i = 1; i <= m; ++i) {
    const double frac = profile.prefix_flops(i) / total;
    const double pos = frac * (static_cast<double>(measured.size()) - 1.0);
    const auto lo = std::min(static_cast<std::size_t>(pos),
                             measured.size() - 1);
    const auto hi = std::min(lo + 1, measured.size() - 1);
    const double t = pos - static_cast<double>(lo);
    out.push_back(measured[lo] * (1.0 - t) + measured[hi] * t);
  }
  out.back() = measured.back();
  // Interpolation between monotone points is monotone, but guard against
  // float drift anyway.
  for (std::size_t i = 1; i < out.size(); ++i)
    out[i] = std::max(out[i], out[i - 1]);
  return out;
}

void install_measured_behaviour(models::ModelProfile& profile,
                                MultiExitNet& net,
                                const std::vector<Sample>& calibration,
                                const std::vector<Sample>& eval,
                                double target_accuracy) {
  // Rates: calibrated thresholds -> cumulative exit rates on eval.
  const auto rates =
      measured_cumulative_exit_rates(net, calibration, eval, target_accuracy);
  auto mapped_rates = interpolate_to_profile(profile, rates);
  mapped_rates.back() = 1.0;
  profile.set_exit_rates(mapped_rates);

  // Accuracies: each exit head's standalone accuracy on eval.
  std::vector<double> accuracies;
  accuracies.reserve(static_cast<std::size_t>(net.num_exits()));
  for (int e = 0; e < net.num_exits(); ++e)
    accuracies.push_back(evaluate_exit(net, eval, e).accuracy());
  auto mapped_acc = interpolate_to_profile(profile, accuracies);
  for (auto& a : mapped_acc) a = std::clamp(a, 0.0, 1.0);
  profile.set_exit_accuracies(mapped_acc);
}

}  // namespace leime::nn
