// Confidence-threshold calibration and multi-exit evaluation (§III-B2).
//
// At each exit the max-softmax confidence gates early exiting. The paper
// "strictly sets the threshold of each exit so tasks exit early efficiently
// while guaranteeing inference accuracy": we pick, per exit, the smallest
// threshold whose exiting subset is at least `target_accuracy` accurate on
// a calibration split. From the thresholds we measure cumulative exit rates
// (the σ_i the analytic modules consume) and ME accuracy for any exit
// combination (the Fig. 6 experiment).
#pragma once

#include <vector>

#include "nn/dataset.h"
#include "nn/multi_exit_net.h"

namespace leime::nn {

/// Per-exit predictions over a dataset split.
struct ExitStats {
  std::vector<float> confidence;  ///< max softmax per sample
  std::vector<int> prediction;    ///< argmax class per sample
  std::vector<int> label;
};

/// Runs every sample through the net once, recording all exits.
std::vector<ExitStats> collect_exit_stats(MultiExitNet& net,
                                          const std::vector<Sample>& data);

/// Smallest threshold t such that accuracy among samples with
/// confidence >= t is >= target_accuracy (searching over observed
/// confidences, most permissive first). Returns an unreachable threshold
/// (> 1) when no suffix meets the target, i.e. the exit is disabled.
double calibrate_threshold(const ExitStats& stats, double target_accuracy);

/// Outcome of simulating the sequential multi-exit inference rule.
struct MultiExitEvaluation {
  double accuracy = 0.0;
  /// Marginal fraction of samples exiting at each selected exit
  /// (sums to 1; the last selected exit takes everything left).
  std::vector<double> exit_fractions;
  /// Cumulative exit rates σ at the selected exits.
  std::vector<double> cumulative_rates;
};

/// Evaluates the selected exits (0-based block indices, strictly
/// ascending; the last entry is the forced final exit, threshold ignored).
/// `thresholds` must match `exits` in size.
MultiExitEvaluation evaluate_multi_exit(MultiExitNet& net,
                                        const std::vector<Sample>& data,
                                        const std::vector<int>& exits,
                                        const std::vector<double>& thresholds);

/// Calibrates thresholds for every exit against `target_accuracy` using
/// `calibration` data, then measures the full-chain cumulative exit rates on
/// `eval` data. Returns one σ per exit (final forced to 1).
std::vector<double> measured_cumulative_exit_rates(
    MultiExitNet& net, const std::vector<Sample>& calibration,
    const std::vector<Sample>& eval, double target_accuracy);

}  // namespace leime::nn
