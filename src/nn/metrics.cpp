#include "nn/metrics.h"

#include <stdexcept>
#include <string>

namespace leime::nn {

ConfusionMatrix::ConfusionMatrix(int num_classes) : classes_(num_classes) {
  if (num_classes < 2)
    throw std::invalid_argument("ConfusionMatrix: need >= 2 classes");
  cells_.assign(
      static_cast<std::size_t>(num_classes) * static_cast<std::size_t>(num_classes),
      0);
}

void ConfusionMatrix::check_label(int label, const char* what) const {
  if (label < 0 || label >= classes_)
    throw std::invalid_argument(std::string("ConfusionMatrix: ") + what +
                                " out of range");
}

void ConfusionMatrix::add(int true_label, int predicted_label) {
  check_label(true_label, "true label");
  check_label(predicted_label, "predicted label");
  ++cells_[static_cast<std::size_t>(true_label) * classes_ + predicted_label];
  ++total_;
}

std::size_t ConfusionMatrix::count(int true_label, int predicted_label) const {
  check_label(true_label, "true label");
  check_label(predicted_label, "predicted label");
  return cells_[static_cast<std::size_t>(true_label) * classes_ +
                predicted_label];
}

double ConfusionMatrix::accuracy() const {
  if (total_ == 0) return 0.0;
  std::size_t correct = 0;
  for (int c = 0; c < classes_; ++c)
    correct += cells_[static_cast<std::size_t>(c) * classes_ + c];
  return static_cast<double>(correct) / static_cast<double>(total_);
}

double ConfusionMatrix::precision(int cls) const {
  check_label(cls, "class");
  std::size_t predicted = 0;
  for (int t = 0; t < classes_; ++t)
    predicted += cells_[static_cast<std::size_t>(t) * classes_ + cls];
  if (predicted == 0) return 0.0;
  return static_cast<double>(
             cells_[static_cast<std::size_t>(cls) * classes_ + cls]) /
         static_cast<double>(predicted);
}

double ConfusionMatrix::recall(int cls) const {
  check_label(cls, "class");
  std::size_t actual = 0;
  for (int p = 0; p < classes_; ++p)
    actual += cells_[static_cast<std::size_t>(cls) * classes_ + p];
  if (actual == 0) return 0.0;
  return static_cast<double>(
             cells_[static_cast<std::size_t>(cls) * classes_ + cls]) /
         static_cast<double>(actual);
}

double ConfusionMatrix::f1(int cls) const {
  const double p = precision(cls);
  const double r = recall(cls);
  if (p + r == 0.0) return 0.0;
  return 2.0 * p * r / (p + r);
}

double ConfusionMatrix::macro_precision() const {
  double sum = 0.0;
  for (int c = 0; c < classes_; ++c) sum += precision(c);
  return sum / classes_;
}

double ConfusionMatrix::macro_recall() const {
  double sum = 0.0;
  for (int c = 0; c < classes_; ++c) sum += recall(c);
  return sum / classes_;
}

double ConfusionMatrix::macro_f1() const {
  double sum = 0.0;
  for (int c = 0; c < classes_; ++c) sum += f1(c);
  return sum / classes_;
}

ConfusionMatrix evaluate_exit(MultiExitNet& net,
                              const std::vector<Sample>& data,
                              int exit_index) {
  if (exit_index < 0 || exit_index >= net.num_exits())
    throw std::invalid_argument("evaluate_exit: bad exit index");
  if (data.empty()) throw std::invalid_argument("evaluate_exit: empty data");
  ConfusionMatrix cm(net.num_classes());
  for (const auto& sample : data) {
    const auto logits = net.forward_exits(sample.image);
    const auto& l = logits[static_cast<std::size_t>(exit_index)];
    int arg = 0;
    for (std::size_t i = 1; i < l.size(); ++i)
      if (l[i] > l[static_cast<std::size_t>(arg)]) arg = static_cast<int>(i);
    cm.add(sample.label, arg);
  }
  return cm;
}

}  // namespace leime::nn
