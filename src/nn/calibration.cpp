#include "nn/calibration.h"

#include <algorithm>
#include <numeric>
#include <stdexcept>

#include "util/check.h"

namespace leime::nn {

std::vector<ExitStats> collect_exit_stats(MultiExitNet& net,
                                          const std::vector<Sample>& data) {
  if (data.empty())
    throw std::invalid_argument("collect_exit_stats: empty data");
  std::vector<ExitStats> stats(static_cast<std::size_t>(net.num_exits()));
  for (const auto& sample : data) {
    const auto probs = net.exit_probabilities(sample.image);
    for (std::size_t e = 0; e < probs.size(); ++e) {
      const auto& p = probs[e];
      int arg = 0;
      for (std::size_t i = 1; i < p.size(); ++i)
        if (p[i] > p[static_cast<std::size_t>(arg)]) arg = static_cast<int>(i);
      stats[e].confidence.push_back(p[static_cast<std::size_t>(arg)]);
      stats[e].prediction.push_back(arg);
      stats[e].label.push_back(sample.label);
    }
  }
  return stats;
}

double calibrate_threshold(const ExitStats& stats, double target_accuracy) {
  if (stats.confidence.empty())
    throw std::invalid_argument("calibrate_threshold: empty stats");
  if (target_accuracy <= 0.0 || target_accuracy > 1.0)
    throw std::invalid_argument("calibrate_threshold: target outside (0,1]");

  // Sort samples by confidence descending; find the longest prefix (most
  // permissive threshold) whose accuracy still meets the target.
  std::vector<std::size_t> order(stats.confidence.size());
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return stats.confidence[a] > stats.confidence[b];
  });

  double best_threshold = 2.0;  // unreachable: exit disabled
  std::size_t correct = 0;
  for (std::size_t i = 0; i < order.size(); ++i) {
    const std::size_t idx = order[i];
    if (stats.prediction[idx] == stats.label[idx]) ++correct;
    const double acc =
        static_cast<double>(correct) / static_cast<double>(i + 1);
    if (acc >= target_accuracy)
      best_threshold = stats.confidence[idx];
  }
  return best_threshold;
}

MultiExitEvaluation evaluate_multi_exit(MultiExitNet& net,
                                        const std::vector<Sample>& data,
                                        const std::vector<int>& exits,
                                        const std::vector<double>& thresholds) {
  if (exits.empty() || exits.size() != thresholds.size())
    throw std::invalid_argument("evaluate_multi_exit: exits/thresholds mismatch");
  for (std::size_t i = 0; i < exits.size(); ++i) {
    if (exits[i] < 0 || exits[i] >= net.num_exits())
      throw std::invalid_argument("evaluate_multi_exit: exit out of range");
    if (i > 0 && exits[i] <= exits[i - 1])
      throw std::invalid_argument("evaluate_multi_exit: exits not ascending");
  }
  if (data.empty())
    throw std::invalid_argument("evaluate_multi_exit: empty data");

  MultiExitEvaluation out;
  out.exit_fractions.assign(exits.size(), 0.0);
  std::size_t correct = 0;
  for (const auto& sample : data) {
    const auto probs = net.exit_probabilities(sample.image);
    for (std::size_t sel = 0; sel < exits.size(); ++sel) {
      const auto& p = probs[static_cast<std::size_t>(exits[sel])];
      int arg = 0;
      for (std::size_t i = 1; i < p.size(); ++i)
        if (p[i] > p[static_cast<std::size_t>(arg)]) arg = static_cast<int>(i);
      const bool last = sel + 1 == exits.size();
      if (last || p[static_cast<std::size_t>(arg)] >=
                      static_cast<float>(thresholds[sel])) {
        out.exit_fractions[sel] += 1.0;
        if (arg == sample.label) ++correct;
        break;
      }
    }
  }
  const auto n = static_cast<double>(data.size());
  for (auto& f : out.exit_fractions) f /= n;
  out.accuracy = static_cast<double>(correct) / n;
  out.cumulative_rates.resize(exits.size());
  double cum = 0.0;
  for (std::size_t i = 0; i < exits.size(); ++i) {
    cum += out.exit_fractions[i];
    out.cumulative_rates[i] = cum;
  }
  LEIME_CHECK(std::abs(cum - 1.0) < 1e-9);
  return out;
}

std::vector<double> measured_cumulative_exit_rates(
    MultiExitNet& net, const std::vector<Sample>& calibration,
    const std::vector<Sample>& eval, double target_accuracy) {
  const auto stats = collect_exit_stats(net, calibration);
  std::vector<int> exits(static_cast<std::size_t>(net.num_exits()));
  std::iota(exits.begin(), exits.end(), 0);
  std::vector<double> thresholds;
  thresholds.reserve(exits.size());
  for (const auto& s : stats)
    thresholds.push_back(calibrate_threshold(s, target_accuracy));
  const auto eval_result = evaluate_multi_exit(net, eval, exits, thresholds);
  auto rates = eval_result.cumulative_rates;
  rates.back() = 1.0;
  // Guard against float drift breaking monotonicity downstream.
  for (std::size_t i = 1; i < rates.size(); ++i)
    rates[i] = std::max(rates[i], rates[i - 1]);
  return rates;
}

}  // namespace leime::nn
