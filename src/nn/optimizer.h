// Optimizers over parameter slices.
//
// Layers expose their parameters as (values, grads, size) slices; an
// Optimizer updates them in place. Optimizer state (momentum / moment
// estimates) is keyed by the values pointer, which is stable because layers
// live behind unique_ptr for their whole training life.
#pragma once

#include <cstddef>
#include <unordered_map>
#include <vector>

namespace leime::nn {

/// A view over one parameter tensor and its accumulated gradient.
struct ParamSlice {
  float* values = nullptr;
  float* grads = nullptr;
  std::size_t size = 0;
};

class Optimizer {
 public:
  virtual ~Optimizer() = default;

  /// Applies one update using the currently accumulated gradients.
  /// Gradients are NOT cleared (callers zero_grad per batch).
  virtual void step(const std::vector<ParamSlice>& params) = 0;
};

/// SGD with classical momentum: v = m·v − lr·g; w += v.
class SgdMomentum final : public Optimizer {
 public:
  /// lr > 0, momentum in [0, 1).
  SgdMomentum(double lr, double momentum = 0.9);

  void step(const std::vector<ParamSlice>& params) override;

  void set_learning_rate(double lr);
  double learning_rate() const { return lr_; }

 private:
  double lr_;
  double momentum_;
  std::unordered_map<const float*, std::vector<float>> velocity_;
};

/// Adam (Kingma & Ba), with bias-corrected moment estimates.
class Adam final : public Optimizer {
 public:
  /// lr > 0, 0 <= beta1, beta2 < 1, eps > 0.
  explicit Adam(double lr, double beta1 = 0.9, double beta2 = 0.999,
                double eps = 1e-8);

  void step(const std::vector<ParamSlice>& params) override;

 private:
  struct Moments {
    std::vector<float> m;
    std::vector<float> v;
  };
  double lr_, beta1_, beta2_, eps_;
  long long t_ = 0;
  std::unordered_map<const float*, Moments> moments_;
};

}  // namespace leime::nn
