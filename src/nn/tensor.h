// Minimal dense float tensor for the from-scratch NN engine.
//
// Single-sample CHW layout; the training loop batches by iterating samples
// and accumulating gradients, which keeps every layer's backward rule
// simple and auditable. Sizes in this repo are tiny (16x16 images, <=32
// channels), so naive loops are more than fast enough.
#pragma once

#include <cstddef>
#include <vector>

namespace leime::nn {

class Tensor {
 public:
  Tensor() = default;

  /// Zero-initialised tensor of the given shape (all dims > 0).
  explicit Tensor(std::vector<int> shape);

  static Tensor zeros(std::vector<int> shape) { return Tensor(std::move(shape)); }

  const std::vector<int>& shape() const { return shape_; }
  std::size_t size() const { return data_.size(); }
  bool empty() const { return data_.empty(); }

  int dim(int i) const { return shape_.at(static_cast<std::size_t>(i)); }
  int rank() const { return static_cast<int>(shape_.size()); }

  float* data() { return data_.data(); }
  const float* data() const { return data_.data(); }

  float& operator[](std::size_t i) { return data_[i]; }
  float operator[](std::size_t i) const { return data_[i]; }

  /// CHW indexing for rank-3 tensors (unchecked beyond debug builds).
  float& at(int c, int h, int w) {
    return data_[static_cast<std::size_t>((c * dim(1) + h) * dim(2) + w)];
  }
  float at(int c, int h, int w) const {
    return data_[static_cast<std::size_t>((c * dim(1) + h) * dim(2) + w)];
  }

  void fill(float value);

  /// this += alpha * other (shapes must match).
  void add_scaled(const Tensor& other, float alpha);

 private:
  std::vector<int> shape_;
  std::vector<float> data_;
};

}  // namespace leime::nn
