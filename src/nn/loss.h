// Softmax and cross-entropy with analytic gradients.
#pragma once

#include <vector>

#include "nn/tensor.h"

namespace leime::nn {

/// Numerically stable softmax over a flat logits tensor.
std::vector<float> softmax(const Tensor& logits);

struct LossResult {
  double loss = 0.0;   ///< cross-entropy (nats)
  Tensor grad;         ///< dL/dlogits (softmax - onehot)
};

/// Cross-entropy of `logits` against the integer `label`.
/// Throws std::invalid_argument on a label outside [0, classes).
LossResult softmax_cross_entropy(const Tensor& logits, int label);

}  // namespace leime::nn
