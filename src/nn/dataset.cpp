#include "nn/dataset.h"

#include <cmath>
#include <stdexcept>

namespace leime::nn {

namespace {

/// Adds a Gaussian bump of the given amplitude/width at (cy, cx).
void add_bump(Tensor& img, double cy, double cx, double amp, double width) {
  const int s = img.dim(1);
  for (int y = 0; y < s; ++y) {
    for (int x = 0; x < s; ++x) {
      const double dy = (y - cy) / width;
      const double dx = (x - cx) / width;
      img.at(0, y, x) +=
          static_cast<float>(amp * std::exp(-0.5 * (dy * dy + dx * dx)));
    }
  }
}

}  // namespace

SyntheticImageDataset::SyntheticImageDataset(const DatasetConfig& config)
    : config_(config) {
  if (config.num_classes < 2)
    throw std::invalid_argument("Dataset: need at least 2 classes");
  if (config.image_size < 8)
    throw std::invalid_argument("Dataset: image_size must be >= 8");
  if (config.train_per_class <= 0 || config.test_per_class <= 0)
    throw std::invalid_argument("Dataset: sample counts must be > 0");
  if (config.noise_low < 0.0 || config.noise_high < config.noise_low)
    throw std::invalid_argument("Dataset: bad noise range");

  util::Rng rng(config.seed);

  // Fixed class templates: 3-5 bumps each, normalized to unit peak.
  const int s = config.image_size;
  for (int c = 0; c < config.num_classes; ++c) {
    Tensor tpl({1, s, s});
    const auto bumps = static_cast<int>(rng.uniform_int(3, 5));
    for (int b = 0; b < bumps; ++b) {
      add_bump(tpl, rng.uniform(2.0, s - 3.0), rng.uniform(2.0, s - 3.0),
               rng.uniform(0.6, 1.2) * (rng.bernoulli(0.35) ? -1.0 : 1.0),
               rng.uniform(1.2, 3.0));
    }
    float peak = 1e-6f;
    for (std::size_t i = 0; i < tpl.size(); ++i)
      peak = std::max(peak, std::abs(tpl[i]));
    for (std::size_t i = 0; i < tpl.size(); ++i) tpl[i] /= peak;
    templates_.push_back(std::move(tpl));
  }

  for (int c = 0; c < config.num_classes; ++c) {
    for (int i = 0; i < config.train_per_class; ++i)
      train_.push_back(make_sample(c, rng));
    for (int i = 0; i < config.test_per_class; ++i)
      test_.push_back(make_sample(c, rng));
  }
  rng.shuffle(train_);
  rng.shuffle(test_);
}

Sample SyntheticImageDataset::make_sample(int label, util::Rng& rng) const {
  const int s = config_.image_size;
  Sample sample;
  sample.label = label;
  sample.complexity = rng.uniform();
  sample.image = Tensor({1, s, s});

  const int shift_y =
      static_cast<int>(rng.uniform_int(-config_.max_shift, config_.max_shift));
  const int shift_x =
      static_cast<int>(rng.uniform_int(-config_.max_shift, config_.max_shift));
  const Tensor& tpl = templates_[static_cast<std::size_t>(label)];
  for (int y = 0; y < s; ++y) {
    for (int x = 0; x < s; ++x) {
      const int sy = y - shift_y, sx = x - shift_x;
      if (sy >= 0 && sy < s && sx >= 0 && sx < s)
        sample.image.at(0, y, x) = tpl.at(0, sy, sx);
    }
  }

  // Structured noise: a few random bumps plus pixel noise, scaled by the
  // sample's complexity.
  const double amp = config_.noise_low +
                     (config_.noise_high - config_.noise_low) *
                         sample.complexity;
  Tensor noise({1, s, s});
  for (int b = 0; b < 3; ++b)
    add_bump(noise, rng.uniform(0.0, s - 1.0), rng.uniform(0.0, s - 1.0),
             rng.uniform(-1.0, 1.0), rng.uniform(1.0, 2.5));
  for (std::size_t i = 0; i < noise.size(); ++i)
    noise[i] += static_cast<float>(rng.normal(0.0, 0.35));
  sample.image.add_scaled(noise, static_cast<float>(amp));
  return sample;
}

}  // namespace leime::nn
