#include "nn/layers.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

namespace leime::nn {

namespace {

void check_rank3(const Tensor& x, const char* who) {
  if (x.rank() != 3)
    throw std::invalid_argument(std::string(who) + ": expected CHW tensor");
}

}  // namespace

// ---------------------------------------------------------------- Conv2d --

Conv2d::Conv2d(int in_channels, int out_channels, int kernel, int stride,
               int padding, util::Rng& rng, ConvImpl impl)
    : in_c_(in_channels),
      out_c_(out_channels),
      k_(kernel),
      stride_(stride),
      pad_(padding),
      impl_(impl) {
  if (in_c_ <= 0 || out_c_ <= 0 || k_ <= 0 || stride_ <= 0 || pad_ < 0)
    throw std::invalid_argument("Conv2d: bad hyperparameters");
  const std::size_t n =
      static_cast<std::size_t>(out_c_) * in_c_ * k_ * k_;
  w_.resize(n);
  gw_.assign(n, 0.0f);
  b_.assign(static_cast<std::size_t>(out_c_), 0.0f);
  gb_.assign(b_.size(), 0.0f);
  // He initialisation.
  const double sd = std::sqrt(2.0 / (in_c_ * k_ * k_));
  for (auto& v : w_) v = static_cast<float>(rng.normal(0.0, sd));
}

std::size_t Conv2d::num_params() const { return w_.size() + b_.size(); }

Tensor Conv2d::forward(const Tensor& x) {
  check_rank3(x, "Conv2d");
  if (x.dim(0) != in_c_)
    throw std::invalid_argument("Conv2d: channel mismatch");
  cached_input_ = x;
  const int h_in = x.dim(1), w_in = x.dim(2);
  const int h_out = (h_in + 2 * pad_ - k_) / stride_ + 1;
  const int w_out = (w_in + 2 * pad_ - k_) / stride_ + 1;
  if (h_out <= 0 || w_out <= 0)
    throw std::invalid_argument("Conv2d: kernel larger than padded input");
  if (impl_ == ConvImpl::kIm2col) return forward_im2col(x, h_out, w_out);
  return forward_direct(x, h_out, w_out);
}

Tensor Conv2d::forward_direct(const Tensor& x, int h_out, int w_out) {
  const int h_in = x.dim(1), w_in = x.dim(2);
  Tensor out({out_c_, h_out, w_out});
  for (int oc = 0; oc < out_c_; ++oc) {
    for (int oh = 0; oh < h_out; ++oh) {
      for (int ow = 0; ow < w_out; ++ow) {
        float acc = b_[static_cast<std::size_t>(oc)];
        for (int ic = 0; ic < in_c_; ++ic) {
          for (int kh = 0; kh < k_; ++kh) {
            const int ih = oh * stride_ + kh - pad_;
            if (ih < 0 || ih >= h_in) continue;
            for (int kw = 0; kw < k_; ++kw) {
              const int iw = ow * stride_ + kw - pad_;
              if (iw < 0 || iw >= w_in) continue;
              acc += wref(oc, ic, kh, kw) * x.at(ic, ih, iw);
            }
          }
        }
        out.at(oc, oh, ow) = acc;
      }
    }
  }
  return out;
}

Tensor Conv2d::backward(const Tensor& grad_out) {
  if (cached_input_.empty())
    throw std::logic_error("Conv2d::backward before forward");
  if (impl_ == ConvImpl::kIm2col) return backward_im2col(grad_out);
  return backward_direct(grad_out);
}

Tensor Conv2d::backward_direct(const Tensor& grad_out) {
  const Tensor& x = cached_input_;
  const int h_in = x.dim(1), w_in = x.dim(2);
  const int h_out = grad_out.dim(1), w_out = grad_out.dim(2);
  Tensor grad_in({in_c_, h_in, w_in});
  for (int oc = 0; oc < out_c_; ++oc) {
    for (int oh = 0; oh < h_out; ++oh) {
      for (int ow = 0; ow < w_out; ++ow) {
        const float g = grad_out.at(oc, oh, ow);
        if (g == 0.0f) continue;
        gb_[static_cast<std::size_t>(oc)] += g;
        for (int ic = 0; ic < in_c_; ++ic) {
          for (int kh = 0; kh < k_; ++kh) {
            const int ih = oh * stride_ + kh - pad_;
            if (ih < 0 || ih >= h_in) continue;
            for (int kw = 0; kw < k_; ++kw) {
              const int iw = ow * stride_ + kw - pad_;
              if (iw < 0 || iw >= w_in) continue;
              gwref(oc, ic, kh, kw) += g * x.at(ic, ih, iw);
              grad_in.at(ic, ih, iw) += g * wref(oc, ic, kh, kw);
            }
          }
        }
      }
    }
  }
  return grad_in;
}

void Conv2d::build_columns(const Tensor& x, int h_out, int w_out) {
  const int h_in = x.dim(1), w_in = x.dim(2);
  const int patch = in_c_ * k_ * k_;
  columns_.assign(static_cast<std::size_t>(h_out) * w_out * patch, 0.0f);
  std::size_t row = 0;
  for (int oh = 0; oh < h_out; ++oh) {
    for (int ow = 0; ow < w_out; ++ow, ++row) {
      float* col = &columns_[row * static_cast<std::size_t>(patch)];
      std::size_t c = 0;
      for (int ic = 0; ic < in_c_; ++ic) {
        for (int kh = 0; kh < k_; ++kh) {
          const int ih = oh * stride_ + kh - pad_;
          for (int kw = 0; kw < k_; ++kw, ++c) {
            const int iw = ow * stride_ + kw - pad_;
            if (ih >= 0 && ih < h_in && iw >= 0 && iw < w_in)
              col[c] = x.at(ic, ih, iw);
          }
        }
      }
    }
  }
}

Tensor Conv2d::forward_im2col(const Tensor& x, int h_out, int w_out) {
  build_columns(x, h_out, w_out);
  const int patch = in_c_ * k_ * k_;
  const int rows = h_out * w_out;
  Tensor out({out_c_, h_out, w_out});
  // out[oc][r] = b[oc] + W[oc] . columns[r]
  for (int oc = 0; oc < out_c_; ++oc) {
    const float* wrow = &w_[static_cast<std::size_t>(oc) * patch];
    float* orow = out.data() + static_cast<std::size_t>(oc) * rows;
    const float bias = b_[static_cast<std::size_t>(oc)];
    for (int r = 0; r < rows; ++r) {
      const float* col = &columns_[static_cast<std::size_t>(r) * patch];
      float acc = bias;
      for (int c = 0; c < patch; ++c) acc += wrow[c] * col[c];
      orow[r] = acc;
    }
  }
  return out;
}

Tensor Conv2d::backward_im2col(const Tensor& grad_out) {
  const Tensor& x = cached_input_;
  const int h_in = x.dim(1), w_in = x.dim(2);
  const int h_out = grad_out.dim(1), w_out = grad_out.dim(2);
  const int rows = h_out * w_out;
  const int patch = in_c_ * k_ * k_;

  // dW[oc] += sum_r dY[oc][r] * columns[r];  db[oc] += sum_r dY[oc][r].
  std::vector<float> dcols(static_cast<std::size_t>(rows) * patch, 0.0f);
  for (int oc = 0; oc < out_c_; ++oc) {
    const float* grow = grad_out.data() + static_cast<std::size_t>(oc) * rows;
    float* gwrow = &gw_[static_cast<std::size_t>(oc) * patch];
    const float* wrow = &w_[static_cast<std::size_t>(oc) * patch];
    float gb_acc = 0.0f;
    for (int r = 0; r < rows; ++r) {
      const float g = grow[r];
      if (g == 0.0f) continue;
      gb_acc += g;
      const float* col = &columns_[static_cast<std::size_t>(r) * patch];
      float* dcol = &dcols[static_cast<std::size_t>(r) * patch];
      for (int c = 0; c < patch; ++c) {
        gwrow[c] += g * col[c];
        dcol[c] += g * wrow[c];
      }
    }
    gb_[static_cast<std::size_t>(oc)] += gb_acc;
  }

  // col2im: scatter dcols back onto the input geometry.
  Tensor grad_in({in_c_, h_in, w_in});
  std::size_t row = 0;
  for (int oh = 0; oh < h_out; ++oh) {
    for (int ow = 0; ow < w_out; ++ow, ++row) {
      const float* dcol = &dcols[row * static_cast<std::size_t>(patch)];
      std::size_t c = 0;
      for (int ic = 0; ic < in_c_; ++ic) {
        for (int kh = 0; kh < k_; ++kh) {
          const int ih = oh * stride_ + kh - pad_;
          for (int kw = 0; kw < k_; ++kw, ++c) {
            const int iw = ow * stride_ + kw - pad_;
            if (ih >= 0 && ih < h_in && iw >= 0 && iw < w_in)
              grad_in.at(ic, ih, iw) += dcol[c];
          }
        }
      }
    }
  }
  return grad_in;
}

void Conv2d::zero_grad() {
  std::fill(gw_.begin(), gw_.end(), 0.0f);
  std::fill(gb_.begin(), gb_.end(), 0.0f);
}

std::vector<ParamSlice> Conv2d::parameters() {
  return {{w_.data(), gw_.data(), w_.size()},
          {b_.data(), gb_.data(), b_.size()}};
}

// ------------------------------------------------------------------ ReLU --

Tensor ReLU::forward(const Tensor& x) {
  cached_input_ = x;
  Tensor out = x;
  for (std::size_t i = 0; i < out.size(); ++i)
    if (out[i] < 0.0f) out[i] = 0.0f;
  return out;
}

Tensor ReLU::backward(const Tensor& grad_out) {
  if (cached_input_.empty())
    throw std::logic_error("ReLU::backward before forward");
  Tensor grad_in = grad_out;
  for (std::size_t i = 0; i < grad_in.size(); ++i)
    if (cached_input_[i] <= 0.0f) grad_in[i] = 0.0f;
  return grad_in;
}

// ------------------------------------------------------------- MaxPool2d --

MaxPool2d::MaxPool2d(int kernel) : k_(kernel) {
  if (kernel <= 1) throw std::invalid_argument("MaxPool2d: kernel must be > 1");
}

Tensor MaxPool2d::forward(const Tensor& x) {
  check_rank3(x, "MaxPool2d");
  const int c = x.dim(0), h = x.dim(1), w = x.dim(2);
  const int h_out = h / k_, w_out = w / k_;
  if (h_out <= 0 || w_out <= 0)
    throw std::invalid_argument("MaxPool2d: input smaller than kernel");
  in_shape_ = {c, h, w};
  Tensor out({c, h_out, w_out});
  argmax_.assign(out.size(), 0);
  std::size_t oi = 0;
  for (int ch = 0; ch < c; ++ch) {
    for (int oh = 0; oh < h_out; ++oh) {
      for (int ow = 0; ow < w_out; ++ow, ++oi) {
        float best = -std::numeric_limits<float>::infinity();
        int best_idx = 0;
        for (int kh = 0; kh < k_; ++kh) {
          for (int kw = 0; kw < k_; ++kw) {
            const int ih = oh * k_ + kh, iw = ow * k_ + kw;
            const int idx = (ch * h + ih) * w + iw;
            const float v = x[static_cast<std::size_t>(idx)];
            if (v > best) {
              best = v;
              best_idx = idx;
            }
          }
        }
        out[oi] = best;
        argmax_[oi] = best_idx;
      }
    }
  }
  return out;
}

Tensor MaxPool2d::backward(const Tensor& grad_out) {
  if (in_shape_.empty())
    throw std::logic_error("MaxPool2d::backward before forward");
  Tensor grad_in(in_shape_);
  for (std::size_t i = 0; i < grad_out.size(); ++i)
    grad_in[static_cast<std::size_t>(argmax_[i])] += grad_out[i];
  return grad_in;
}

// --------------------------------------------------------- GlobalAvgPool --

Tensor GlobalAvgPool::forward(const Tensor& x) {
  check_rank3(x, "GlobalAvgPool");
  const int c = x.dim(0), h = x.dim(1), w = x.dim(2);
  in_shape_ = {c, h, w};
  Tensor out({c});
  const float inv = 1.0f / static_cast<float>(h * w);
  for (int ch = 0; ch < c; ++ch) {
    float acc = 0.0f;
    for (int i = 0; i < h * w; ++i)
      acc += x[static_cast<std::size_t>(ch * h * w + i)];
    out[static_cast<std::size_t>(ch)] = acc * inv;
  }
  return out;
}

Tensor GlobalAvgPool::backward(const Tensor& grad_out) {
  if (in_shape_.empty())
    throw std::logic_error("GlobalAvgPool::backward before forward");
  const int c = in_shape_[0], h = in_shape_[1], w = in_shape_[2];
  Tensor grad_in(in_shape_);
  const float inv = 1.0f / static_cast<float>(h * w);
  for (int ch = 0; ch < c; ++ch)
    for (int i = 0; i < h * w; ++i)
      grad_in[static_cast<std::size_t>(ch * h * w + i)] =
          grad_out[static_cast<std::size_t>(ch)] * inv;
  return grad_in;
}

// ----------------------------------------------------------------- Dense --

Dense::Dense(int in_features, int out_features, util::Rng& rng)
    : in_f_(in_features), out_f_(out_features) {
  if (in_f_ <= 0 || out_f_ <= 0)
    throw std::invalid_argument("Dense: bad dimensions");
  const auto n = static_cast<std::size_t>(in_f_) * out_f_;
  w_.resize(n);
  gw_.assign(n, 0.0f);
  b_.assign(static_cast<std::size_t>(out_f_), 0.0f);
  gb_.assign(b_.size(), 0.0f);
  const double sd = std::sqrt(2.0 / in_f_);
  for (auto& v : w_) v = static_cast<float>(rng.normal(0.0, sd));
}

std::size_t Dense::num_params() const { return w_.size() + b_.size(); }

Tensor Dense::forward(const Tensor& x) {
  if (static_cast<int>(x.size()) != in_f_)
    throw std::invalid_argument("Dense: input size mismatch");
  cached_input_ = x;
  Tensor out({out_f_});
  for (int o = 0; o < out_f_; ++o) {
    float acc = b_[static_cast<std::size_t>(o)];
    const float* row = &w_[static_cast<std::size_t>(o) * in_f_];
    for (int i = 0; i < in_f_; ++i) acc += row[i] * x[static_cast<std::size_t>(i)];
    out[static_cast<std::size_t>(o)] = acc;
  }
  return out;
}

Tensor Dense::backward(const Tensor& grad_out) {
  if (cached_input_.empty())
    throw std::logic_error("Dense::backward before forward");
  Tensor grad_in({in_f_});
  for (int o = 0; o < out_f_; ++o) {
    const float g = grad_out[static_cast<std::size_t>(o)];
    gb_[static_cast<std::size_t>(o)] += g;
    float* grow = &gw_[static_cast<std::size_t>(o) * in_f_];
    const float* row = &w_[static_cast<std::size_t>(o) * in_f_];
    for (int i = 0; i < in_f_; ++i) {
      grow[i] += g * cached_input_[static_cast<std::size_t>(i)];
      grad_in[static_cast<std::size_t>(i)] += g * row[i];
    }
  }
  return grad_in;
}

void Dense::zero_grad() {
  std::fill(gw_.begin(), gw_.end(), 0.0f);
  std::fill(gb_.begin(), gb_.end(), 0.0f);
}

std::vector<ParamSlice> Dense::parameters() {
  return {{w_.data(), gw_.data(), w_.size()},
          {b_.data(), gb_.data(), b_.size()}};
}

// ----------------------------------------------------------- InstanceNorm --

InstanceNorm::InstanceNorm(int channels, float eps)
    : channels_(channels), eps_(eps) {
  if (channels <= 0)
    throw std::invalid_argument("InstanceNorm: channels must be > 0");
  if (eps <= 0.0f) throw std::invalid_argument("InstanceNorm: eps must be > 0");
  gain_.assign(static_cast<std::size_t>(channels), 1.0f);
  bias_.assign(static_cast<std::size_t>(channels), 0.0f);
  ggain_.assign(gain_.size(), 0.0f);
  gbias_.assign(bias_.size(), 0.0f);
}

std::size_t InstanceNorm::num_params() const {
  return gain_.size() + bias_.size();
}

std::vector<ParamSlice> InstanceNorm::parameters() {
  return {{gain_.data(), ggain_.data(), gain_.size()},
          {bias_.data(), gbias_.data(), bias_.size()}};
}

void InstanceNorm::zero_grad() {
  std::fill(ggain_.begin(), ggain_.end(), 0.0f);
  std::fill(gbias_.begin(), gbias_.end(), 0.0f);
}

Tensor InstanceNorm::forward(const Tensor& x) {
  check_rank3(x, "InstanceNorm");
  if (x.dim(0) != channels_)
    throw std::invalid_argument("InstanceNorm: channel mismatch");
  const int c = x.dim(0), h = x.dim(1), w = x.dim(2);
  const int hw = h * w;
  cached_norm_ = Tensor({c, h, w});
  inv_std_.assign(static_cast<std::size_t>(c), 0.0f);
  Tensor out({c, h, w});
  for (int ch = 0; ch < c; ++ch) {
    const float* xc = x.data() + static_cast<std::size_t>(ch) * hw;
    double mean = 0.0;
    for (int i = 0; i < hw; ++i) mean += xc[i];
    mean /= hw;
    double var = 0.0;
    for (int i = 0; i < hw; ++i) {
      const double d = xc[i] - mean;
      var += d * d;
    }
    var /= hw;
    const float inv = 1.0f / std::sqrt(static_cast<float>(var) + eps_);
    inv_std_[static_cast<std::size_t>(ch)] = inv;
    float* nc = cached_norm_.data() + static_cast<std::size_t>(ch) * hw;
    float* oc = out.data() + static_cast<std::size_t>(ch) * hw;
    const float g = gain_[static_cast<std::size_t>(ch)];
    const float b = bias_[static_cast<std::size_t>(ch)];
    for (int i = 0; i < hw; ++i) {
      nc[i] = (xc[i] - static_cast<float>(mean)) * inv;
      oc[i] = g * nc[i] + b;
    }
  }
  return out;
}

Tensor InstanceNorm::backward(const Tensor& grad_out) {
  if (cached_norm_.empty())
    throw std::logic_error("InstanceNorm::backward before forward");
  const int c = cached_norm_.dim(0);
  const int hw = cached_norm_.dim(1) * cached_norm_.dim(2);
  Tensor grad_in(
      {c, cached_norm_.dim(1), cached_norm_.dim(2)});
  for (int ch = 0; ch < c; ++ch) {
    const float* dy = grad_out.data() + static_cast<std::size_t>(ch) * hw;
    const float* xn = cached_norm_.data() + static_cast<std::size_t>(ch) * hw;
    float* dx = grad_in.data() + static_cast<std::size_t>(ch) * hw;
    double sum_dy = 0.0, sum_dy_xn = 0.0;
    for (int i = 0; i < hw; ++i) {
      sum_dy += dy[i];
      sum_dy_xn += static_cast<double>(dy[i]) * xn[i];
    }
    ggain_[static_cast<std::size_t>(ch)] += static_cast<float>(sum_dy_xn);
    gbias_[static_cast<std::size_t>(ch)] += static_cast<float>(sum_dy);
    const float g = gain_[static_cast<std::size_t>(ch)];
    const float inv = inv_std_[static_cast<std::size_t>(ch)];
    const float mean_dy = static_cast<float>(sum_dy / hw);
    const float mean_dy_xn = static_cast<float>(sum_dy_xn / hw);
    for (int i = 0; i < hw; ++i)
      dx[i] = g * inv * (dy[i] - mean_dy - xn[i] * mean_dy_xn);
  }
  return grad_in;
}

// ------------------------------------------------------------ Sequential --

Tensor Sequential::forward(const Tensor& x) {
  Tensor cur = x;
  for (auto& layer : layers_) cur = layer->forward(cur);
  return cur;
}

Tensor Sequential::backward(const Tensor& grad_out) {
  Tensor cur = grad_out;
  for (auto it = layers_.rbegin(); it != layers_.rend(); ++it)
    cur = (*it)->backward(cur);
  return cur;
}

void Sequential::zero_grad() {
  for (auto& layer : layers_) layer->zero_grad();
}

std::vector<ParamSlice> Sequential::parameters() {
  std::vector<ParamSlice> out;
  for (auto& layer : layers_) {
    auto p = layer->parameters();
    out.insert(out.end(), p.begin(), p.end());
  }
  return out;
}

std::size_t Sequential::num_params() const {
  std::size_t n = 0;
  for (const auto& layer : layers_) n += layer->num_params();
  return n;
}

}  // namespace leime::nn
