// BranchyNet-style multi-exit convolutional network with joint training.
//
// The backbone is a chain of conv blocks; after every block an exit head
// (global average pool + dense) produces class logits. Training minimises
// the weighted sum of per-exit cross-entropies; the backward pass merges
// gradients flowing from each head into the shared backbone, exactly the
// BranchyNet recipe the paper builds on.
#pragma once

#include <cstdint>
#include <vector>

#include "nn/dataset.h"
#include "nn/layers.h"
#include "nn/loss.h"
#include "nn/optimizer.h"

namespace leime::nn {

struct NetConfig {
  int in_channels = 1;
  int image_size = 16;
  int num_classes = 5;
  /// Conv channels per backbone block (3x3, stride 1, pad 1 + ReLU).
  std::vector<int> block_channels = {8, 12, 16, 20};
  /// 0-based block indices followed by a 2x2 max pool.
  std::vector<int> pool_after = {0, 2};
  /// Insert an InstanceNorm between each conv and its ReLU (stabilises the
  /// deeper backbones).
  bool use_norm = false;
  std::uint64_t seed = 11;
};

class MultiExitNet {
 public:
  explicit MultiExitNet(const NetConfig& config);

  int num_exits() const { return static_cast<int>(blocks_.size()); }
  int num_classes() const { return config_.num_classes; }
  std::size_t num_params() const;

  /// Forward pass returning logits at every exit (index 0 = shallowest).
  std::vector<Tensor> forward_exits(const Tensor& x);

  /// Per-exit softmax probabilities for a sample.
  std::vector<std::vector<float>> exit_probabilities(const Tensor& x);

  /// One optimizer step on a batch with joint loss Σ_e weight_e · CE_e.
  /// Gradients are averaged over the batch before the update. Returns the
  /// mean (weighted) loss. exit_weights must have num_exits() entries (or
  /// be empty for uniform weights).
  double train_batch(const std::vector<const Sample*>& batch,
                     Optimizer& optimizer,
                     const std::vector<double>& exit_weights = {});

  /// Convenience overload using an internally managed SGD-with-momentum
  /// optimizer (state persists across calls; changing `momentum` resets it).
  double train_batch(const std::vector<const Sample*>& batch, double lr,
                     double momentum,
                     const std::vector<double>& exit_weights = {});

  /// All trainable parameter slices (backbone + heads).
  std::vector<ParamSlice> parameters();

  /// One optimizer step with self-distillation (BranchyNet follow-ups,
  /// e.g. Phuong & Lampert '19): every non-final exit learns from a blend
  /// of the hard labels and the final exit's softened predictions
  /// (temperature T, blend alpha toward the hard labels). The teacher is
  /// detached — no gradient flows into the final exit from the KD terms.
  /// Raises early-exit accuracy, i.e. the σ_i LEIME's exit setting feeds on.
  /// temperature > 0, alpha in [0,1].
  double train_batch_distill(const std::vector<const Sample*>& batch,
                             Optimizer& optimizer, double temperature = 2.0,
                             double alpha = 0.5);

  /// Accuracy of a single exit head over a dataset split.
  double exit_accuracy(const std::vector<Sample>& data, int exit_index);

 private:
  NetConfig config_;
  std::vector<Sequential> blocks_;
  std::vector<Sequential> heads_;
  std::unique_ptr<SgdMomentum> default_optimizer_;
  double default_momentum_ = -1.0;
};

/// Convenience trainer: epochs of shuffled minibatches; returns final epoch
/// mean loss.
double train(MultiExitNet& net, const std::vector<Sample>& data, int epochs,
             double lr, double momentum, int batch_size, std::uint64_t seed,
             const std::vector<double>& exit_weights = {});

/// Trainer with a caller-supplied optimizer (e.g. Adam).
double train(MultiExitNet& net, const std::vector<Sample>& data, int epochs,
             Optimizer& optimizer, int batch_size, std::uint64_t seed,
             const std::vector<double>& exit_weights = {});

/// Self-distillation trainer (see train_batch_distill).
double train_distill(MultiExitNet& net, const std::vector<Sample>& data,
                     int epochs, Optimizer& optimizer, int batch_size,
                     std::uint64_t seed, double temperature = 2.0,
                     double alpha = 0.5);

}  // namespace leime::nn
