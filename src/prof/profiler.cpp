#include "prof/profiler.h"

#include <algorithm>
#include <atomic>
#include <fstream>
#include <map>
#include <memory>
#include <mutex>
#include <ostream>
#include <sstream>
#include <stdexcept>
#include <unordered_map>

#include "obs/metrics.h"
#include "util/clock.h"
#include "util/csv.h"

namespace leime::prof {

namespace {

/// Per-invocation duration histogram geometry: 16 ns .. 10 s, ~2.7
/// log-buckets per decade (the obs::Histogram machinery, reused).
obs::HistogramOptions duration_geometry() { return {16.0, 1e10, 54}; }

/// Spans kept per thread for trace export; older spans are overwritten
/// (drop-oldest), so the rings always hold the tail of the run — which
/// includes the enclosing top-level sections, closed last.
constexpr std::size_t kRingCapacity = 1 << 16;

struct SpanRec {
  SectionId id;
  std::uint64_t t_begin_ns;
  std::uint64_t t_end_ns;
};

/// One aggregation node of a thread's live section tree.
struct Node {
  SectionId id;
  Node* parent;
  std::uint64_t count = 0;
  std::uint64_t total_ns = 0;
  obs::Histogram hist{duration_geometry()};
  std::vector<std::unique_ptr<Node>> children;

  Node(SectionId id_, Node* parent_) : id(id_), parent(parent_) {}

  Node* find_or_add(SectionId child_id) {
    for (auto& c : children)
      if (c->id == child_id) return c.get();
    children.push_back(std::make_unique<Node>(child_id, this));
    return children.back().get();
  }
};

constexpr SectionId kRootId = static_cast<SectionId>(-1);

struct ThreadLog {
  Node root{kRootId, nullptr};
  Node* current = &root;
  std::vector<std::pair<Node*, std::uint64_t>> stack;  ///< (node, t_begin)
  std::vector<SpanRec> ring;
  std::uint64_t ring_written = 0;  ///< total spans ever written
  std::vector<std::uint64_t> counters;  ///< indexed by SectionId

  /// Claims the next ring slot (drop-oldest once full) with the end time
  /// still unset; the caller patches t_end_ns after its final timestamp so
  /// the ring write itself stays inside the span being closed.
  SpanRec* add_span_slot(SectionId id, std::uint64_t t0) {
    SpanRec* rec;
    if (ring.size() < kRingCapacity) {
      ring.push_back({id, t0, t0});
      rec = &ring.back();
    } else {
      rec = &ring[ring_written % kRingCapacity];
      *rec = {id, t0, t0};
    }
    ++ring_written;
    return rec;
  }

  void clear() {
    root.children.clear();
    root.count = 0;
    current = &root;
    stack.clear();
    ring.clear();
    ring_written = 0;
    counters.clear();
  }
};

struct Registry {
  std::mutex mu;
  std::vector<std::string> names;
  std::unordered_map<std::string, SectionId> ids;
  std::vector<std::unique_ptr<ThreadLog>> threads;
  std::atomic<bool> enabled{false};
};

// Leaked on purpose: instrumented code may run during static destruction.
Registry& reg() {
  static Registry* r = new Registry;
  return *r;
}

ThreadLog& local_log() {
  thread_local ThreadLog* log = nullptr;
  if (!log) {
    Registry& r = reg();
    std::lock_guard<std::mutex> lock(r.mu);
    r.threads.push_back(std::make_unique<ThreadLog>());
    log = r.threads.back().get();
  }
  return *log;
}

SectionId intern(const char* name) {
  const std::string s(name);
  if (!valid_section_name(s))
    throw std::invalid_argument(
        "prof: section name '" + s +
        "' does not match ^leime\\.[a-z0-9_.]+$ (see DESIGN.md §9)");
  Registry& r = reg();
  std::lock_guard<std::mutex> lock(r.mu);
  auto [it, inserted] =
      r.ids.emplace(s, static_cast<SectionId>(r.names.size()));
  if (inserted) r.names.push_back(s);
  return it->second;
}

}  // namespace

bool valid_section_name(const std::string& name) {
  constexpr const char* prefix = "leime.";
  if (name.rfind(prefix, 0) != 0) return false;
  if (name.size() == 6) return false;  // bare prefix
  for (std::size_t i = 6; i < name.size(); ++i) {
    const char c = name[i];
    const bool ok = (c >= 'a' && c <= 'z') || (c >= '0' && c <= '9') ||
                    c == '_' || c == '.';
    if (!ok) return false;
  }
  return true;
}

SectionId intern_section(const char* name) { return intern(name); }
SectionId intern_counter(const char* name) { return intern(name); }

void set_enabled(bool on) {
  reg().enabled.store(on, std::memory_order_relaxed);
}

bool enabled() { return reg().enabled.load(std::memory_order_relaxed); }

void reset() {
  Registry& r = reg();
  std::lock_guard<std::mutex> lock(r.mu);
  for (auto& log : r.threads) log->clear();
}

ScopedSection::ScopedSection(SectionId id) : live_(false) {
  if (!reg().enabled.load(std::memory_order_relaxed)) return;
  // t0 before the node lookup, so the profiler's own entry bookkeeping
  // bills to this section instead of widening the gap the parent cannot
  // explain (the event-loop coverage figure depends on tight gaps).
  const std::uint64_t t0 = util::wall_now_ns();
  ThreadLog& log = local_log();
  Node* node = log.current->find_or_add(id);
  log.stack.emplace_back(node, t0);
  log.current = node;
  live_ = true;
}

ScopedSection::~ScopedSection() {
  if (!live_) return;
  ThreadLog& log = local_log();
  // A reset() issued while this section was open has already cleared the
  // stack (reset() documents that callers must not do this); bail out
  // instead of popping an empty vector so the mistake stays a dropped
  // section rather than memory corruption.
  if (log.stack.empty()) return;
  const auto [node, t0] = log.stack.back();
  // Two timestamps on close: the first feeds the per-invocation duration
  // histogram (pure section time); the second — taken after the histogram
  // update, ring write and stack pop, i.e. after everything expensive on
  // the exit path — closes the span, so the profiler's own bookkeeping is
  // attributed to the section itself rather than to an unexplained gap in
  // the parent (only a patch-store and an add happen after t1).
  const std::uint64_t t_stats = util::wall_now_ns();
  ++node->count;
  node->hist.observe(static_cast<double>(t_stats - t0));
  SpanRec* rec = log.add_span_slot(node->id, t0);
  log.stack.pop_back();
  log.current = log.stack.empty() ? &log.root : log.stack.back().first;
  const std::uint64_t t1 = util::wall_now_ns();
  rec->t_end_ns = t1;
  node->total_ns += t1 - t0;
}

void count(SectionId id, std::uint64_t n) {
  if (!reg().enabled.load(std::memory_order_relaxed)) return;
  ThreadLog& log = local_log();
  if (log.counters.size() <= id) log.counters.resize(id + 1, 0);
  log.counters[id] += n;
}

// ----------------------------------------------------------------- report

namespace {

/// Order-insensitive merge target keyed by section name (std::map keeps
/// children name-sorted, which is the determinism contract).
struct MergedNode {
  std::uint64_t count = 0;
  std::uint64_t total_ns = 0;
  obs::Histogram hist{duration_geometry()};
  std::map<std::string, MergedNode> children;
};

void fold(const Node& src, MergedNode& dst,
          const std::vector<std::string>& names) {
  dst.count += src.count;
  dst.total_ns += src.total_ns;
  dst.hist.merge(src.hist);
  for (const auto& child : src.children)
    fold(*child, dst.children[names[child->id]], names);
}

ReportNode freeze(const std::string& name, const MergedNode& node) {
  ReportNode out;
  out.name = name;
  out.count = node.count;
  out.total_ns = node.total_ns;
  out.p50_ns = node.hist.quantile(0.50);
  out.p95_ns = node.hist.quantile(0.95);
  std::uint64_t child_total = 0;
  for (const auto& [child_name, child] : node.children) {
    out.children.push_back(freeze(child_name, child));
    child_total += child.total_ns;
  }
  out.self_ns = node.total_ns > child_total ? node.total_ns - child_total
                                            : 0;
  return out;
}

std::string fmt_ns(std::uint64_t ns) {
  std::ostringstream os;
  os.precision(3);
  os << std::fixed;
  if (ns >= 1000000000ull)
    os << static_cast<double>(ns) / 1e9 << " s";
  else if (ns >= 1000000ull)
    os << static_cast<double>(ns) / 1e6 << " ms";
  else if (ns >= 1000ull)
    os << static_cast<double>(ns) / 1e3 << " us";
  else
    os << ns << " ns";
  return os.str();
}

void print_node(std::ostream& out, const ReportNode& node, int depth) {
  out << std::string(static_cast<std::size_t>(depth) * 2, ' ') << node.name
      << "  count=" << node.count << "  total=" << fmt_ns(node.total_ns)
      << "  self=" << fmt_ns(node.self_ns)
      << "  p50=" << fmt_ns(static_cast<std::uint64_t>(node.p50_ns))
      << "  p95=" << fmt_ns(static_cast<std::uint64_t>(node.p95_ns))
      << "\n";
  for (const auto& child : node.children) print_node(out, child, depth + 1);
}

void collapse_node(std::ostream& out, const ReportNode& node,
                   const std::string& prefix) {
  const std::string path =
      prefix.empty() ? node.name : prefix + ";" + node.name;
  out << path << " " << node.self_ns << "\n";
  for (const auto& child : node.children) collapse_node(out, child, path);
}

template <typename WriteFn>
void write_fsynced(const std::string& path, const char* what,
                   const WriteFn& write) {
  {
    std::ofstream out(path);
    if (!out)
      throw std::runtime_error(std::string("prof: cannot open ") + path);
    write(out);
    out.flush();
    if (!out.good())
      throw std::runtime_error(std::string("prof: ") + what +
                               " write error on " + path);
  }
  if (!util::fsync_path(path))
    throw std::runtime_error("prof: fsync failed for " + path);
}

}  // namespace

Report report() {
  Registry& r = reg();
  std::lock_guard<std::mutex> lock(r.mu);

  MergedNode merged_root;
  std::map<std::string, std::uint64_t> counters;
  Report out;
  for (std::size_t tid = 0; tid < r.threads.size(); ++tid) {
    const ThreadLog& log = *r.threads[tid];
    for (const auto& child : log.root.children)
      fold(*child, merged_root.children[r.names[child->id]], r.names);
    for (SectionId id = 0; id < log.counters.size(); ++id)
      if (log.counters[id] != 0) counters[r.names[id]] += log.counters[id];
    // Ring spans, oldest first (the ring is circular once full).
    const std::size_t n = log.ring.size();
    const std::size_t start =
        log.ring_written > n ? log.ring_written % kRingCapacity : 0;
    std::vector<ReportSpan> spans;
    spans.reserve(n);
    for (std::size_t k = 0; k < n; ++k) {
      const SpanRec& rec = log.ring[(start + k) % n];
      spans.push_back({r.names[rec.id], static_cast<int>(tid),
                       rec.t_begin_ns, rec.t_end_ns});
    }
    std::sort(spans.begin(), spans.end(),
              [](const ReportSpan& a, const ReportSpan& b) {
                if (a.t_begin_ns != b.t_begin_ns)
                  return a.t_begin_ns < b.t_begin_ns;
                if (a.t_end_ns != b.t_end_ns) return a.t_end_ns > b.t_end_ns;
                return a.name < b.name;
              });
    out.spans.insert(out.spans.end(), spans.begin(), spans.end());
    if (log.ring_written > n) out.dropped_spans += log.ring_written - n;
  }

  for (const auto& [name, node] : merged_root.children)
    out.roots.push_back(freeze(name, node));
  for (const auto& [name, value] : counters)
    out.counters.emplace_back(name, value);
  return out;
}

void Report::to_text(std::ostream& out) const {
  out << "profiler sections (count / total / self / p50 / p95):\n";
  for (const auto& root : roots) print_node(out, root, 1);
  if (!counters.empty()) {
    out << "profiler counters:\n";
    for (const auto& [name, value] : counters)
      out << "  " << name << " = " << value << "\n";
  }
  if (dropped_spans > 0)
    out << "(" << dropped_spans << " spans dropped from full rings)\n";
}

void Report::to_chrome_trace(std::ostream& out) const {
  std::uint64_t t0 = 0;
  bool first_span = true;
  for (const auto& s : spans)
    if (first_span || s.t_begin_ns < t0) {
      t0 = s.t_begin_ns;
      first_span = false;
    }

  out << "[";
  bool first = true;
  std::map<int, bool> tids;
  for (const auto& s : spans) tids[s.tid] = true;
  for (const auto& [tid, _] : tids) {
    out << (first ? "" : ",") << "\n"
        << "{\"ph\":\"M\",\"pid\":0,\"tid\":" << tid
        << ",\"name\":\"thread_name\",\"args\":{\"name\":\"prof-thread-"
        << tid << "\"}}";
    first = false;
  }
  out.precision(3);
  out << std::fixed;
  for (const auto& s : spans) {
    out << (first ? "" : ",") << "\n"
        << "{\"ph\":\"X\",\"pid\":0,\"tid\":" << s.tid
        << ",\"ts\":" << static_cast<double>(s.t_begin_ns - t0) / 1000.0
        << ",\"dur\":" << static_cast<double>(s.t_end_ns - s.t_begin_ns) /
                              1000.0
        << ",\"name\":\"" << s.name << "\"}";
    first = false;
  }
  out << "\n]\n";
}

void Report::to_collapsed(std::ostream& out) const {
  for (const auto& root : roots) collapse_node(out, root, "");
}

void write_chrome_trace_file(const std::string& path, const Report& rep) {
  write_fsynced(path, "chrome trace",
                [&](std::ostream& out) { rep.to_chrome_trace(out); });
}

void write_collapsed_file(const std::string& path, const Report& rep) {
  write_fsynced(path, "collapsed stack",
                [&](std::ostream& out) { rep.to_collapsed(out); });
}

}  // namespace leime::prof
