// Host-side wall-clock self-profiler (DESIGN.md §9).
//
// Everything else in the observability stack measures *simulated* time;
// this measures what running LEIME itself costs on the host: where the DES
// event loop, the §III-C branch-and-bound search and the runtime executor
// spend wall-clock nanoseconds.
//
// Design:
//   * Instrumentation sites are macros. `LEIME_PROF_SCOPE("leime.sim.run")`
//     opens an RAII section for the enclosing scope;
//     `LEIME_PROF_COUNT("leime.core.exit_setting.bb.pruned", n)` bumps a
//     free-running work counter. Section/counter names are interned once
//     per site (function-local static) and must match
//     ^leime\.[a-z0-9_.]+$ — dot-separated, so they can never collide with
//     the underscore-only metric namespace of obs::MetricsRegistry
//     (enforced at intern time and statically by
//     scripts/lint_metric_names.sh).
//   * Recording is per-thread and lock-free on the hot path: each thread
//     owns a section-tree of aggregation nodes (count, total ns,
//     log-bucket duration histogram — the same obs::Histogram geometry the
//     metrics registry uses) plus a fixed-capacity ring buffer of closed
//     spans for trace export. The only synchronisation is a mutex taken
//     once per thread at registration and once at report time.
//   * Reports merge threads deterministically: all aggregation is over
//     integers (counts, nanosecond totals, histogram buckets), children
//     sort by section name, and quantiles derive from bucket counts — so
//     the merged tree is identical no matter how the OS interleaved the
//     threads. Span rings are ordered by thread registration order.
//   * Runtime gate: sections cost one relaxed atomic load when
//     set_enabled(false) (the default). Compile-time gate: building with
//     -DLEIME_PROF=OFF defines LEIME_PROF_DISABLED and both macros expand
//     to nothing — the hot paths carry zero profiler code
//     (tests/prof/profiler_disabled_test.cpp proves the expansion).
//
// Exports: a human table (to_text), chrome://tracing JSON of the span
// rings (to_chrome_trace, wall-clock microseconds), and collapsed-stack
// text (to_collapsed, "root;child;leaf <self_ns>" per line) that
// flamegraph.pl or speedscope render directly.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <utility>
#include <vector>

namespace leime::prof {

/// Index into the global interned-name table.
using SectionId = std::uint32_t;

/// True iff `name` matches ^leime\.[a-z0-9_.]+$.
bool valid_section_name(const std::string& name);

/// Interns a section name (idempotent); throws std::invalid_argument on a
/// name that fails valid_section_name. Thread-safe.
SectionId intern_section(const char* name);

/// Interns a work-counter name under the same naming contract.
SectionId intern_counter(const char* name);

/// Runtime gate. Default off: every section site is one relaxed atomic
/// load. Flipping it mid-scope is safe — open sections always close their
/// own frame — but spans straddling the flip may be lost.
void set_enabled(bool on);
bool enabled();

/// Drops all recorded sections, spans and counters (interned names stay).
/// Call only while no instrumented code is running on other threads. A
/// section that is open across a reset() is dropped — its destructor sees
/// the cleared stack and records nothing — rather than corrupting state.
void reset();

/// RAII section. Construct through LEIME_PROF_SCOPE, not directly.
class ScopedSection {
 public:
  explicit ScopedSection(SectionId id);
  ~ScopedSection();
  ScopedSection(const ScopedSection&) = delete;
  ScopedSection& operator=(const ScopedSection&) = delete;

 private:
  bool live_;
};

/// Bumps counter `id` by `n` (no-op while disabled).
void count(SectionId id, std::uint64_t n = 1);

/// One node of the merged section tree.
struct ReportNode {
  std::string name;
  std::uint64_t count = 0;
  std::uint64_t total_ns = 0;  ///< inclusive wall time
  std::uint64_t self_ns = 0;   ///< total minus direct children's totals
  double p50_ns = 0.0;         ///< per-invocation duration quantiles
  double p95_ns = 0.0;
  std::vector<ReportNode> children;  ///< sorted by name
};

/// One closed span from a thread's ring buffer (for trace export).
struct ReportSpan {
  std::string name;
  int tid = 0;  ///< thread registration order, 0-based
  std::uint64_t t_begin_ns = 0;
  std::uint64_t t_end_ns = 0;
};

/// A deterministic freeze of everything recorded so far.
struct Report {
  std::vector<ReportNode> roots;  ///< sorted by name
  std::vector<std::pair<std::string, std::uint64_t>> counters;  ///< sorted
  std::vector<ReportSpan> spans;  ///< by (tid, t_begin, longest-first)
  std::uint64_t dropped_spans = 0;  ///< ring overwrites across all threads

  bool empty() const {
    return roots.empty() && counters.empty() && spans.empty();
  }

  /// Human-readable section tree + counters.
  void to_text(std::ostream& out) const;

  /// Chrome trace-event JSON of the span rings ("X" events, wall-clock
  /// microseconds relative to the earliest span).
  void to_chrome_trace(std::ostream& out) const;

  /// Collapsed-stack (flamegraph) text: one "a;b;c <self_ns>" line per
  /// tree node, in deterministic path order.
  void to_collapsed(std::ostream& out) const;
};

/// Merges every thread's recordings into one Report. Thread-safe, but the
/// aggregate is only stable if instrumented code is quiescent.
Report report();

/// Writes `report.to_chrome_trace` / `to_collapsed` to `path`; flushes,
/// fsyncs and throws std::runtime_error on write failure (same contract as
/// the obs exporters).
void write_chrome_trace_file(const std::string& path, const Report& rep);
void write_collapsed_file(const std::string& path, const Report& rep);

}  // namespace leime::prof

// ---------------------------------------------------------------- macros

#define LEIME_PROF_CONCAT_INNER(a, b) a##b
#define LEIME_PROF_CONCAT(a, b) LEIME_PROF_CONCAT_INNER(a, b)

#if !defined(LEIME_PROF_DISABLED)

/// Opens a profiler section covering the rest of the enclosing scope.
#define LEIME_PROF_SCOPE(name)                                          \
  static const ::leime::prof::SectionId LEIME_PROF_CONCAT(              \
      leime_prof_sid_, __LINE__) = ::leime::prof::intern_section(name); \
  const ::leime::prof::ScopedSection LEIME_PROF_CONCAT(                 \
      leime_prof_scope_, __LINE__)(                                     \
      LEIME_PROF_CONCAT(leime_prof_sid_, __LINE__))

/// Bumps a profiler work counter by `n`.
#define LEIME_PROF_COUNT(name, n)                                         \
  do {                                                                    \
    static const ::leime::prof::SectionId LEIME_PROF_CONCAT(              \
        leime_prof_cid_, __LINE__) = ::leime::prof::intern_counter(name); \
    ::leime::prof::count(LEIME_PROF_CONCAT(leime_prof_cid_, __LINE__),    \
                         (n));                                            \
  } while (0)

#else  // LEIME_PROF_DISABLED: both macros vanish entirely.

#define LEIME_PROF_SCOPE(name) static_cast<void>(0)
#define LEIME_PROF_COUNT(name, n) static_cast<void>(0)

#endif  // LEIME_PROF_DISABLED
