// Lyapunov drift-plus-penalty machinery for online offloading
// (paper §III-D, equations 8-19).
//
// Per device and per slot, given queue backlogs (Q_i, H_i) and the slot's
// arrivals, the offloading ratio x ∈ [0,1] splits first-block work between
// the device and its edge share. This header exposes the slot cost terms
// (eqs. 12-14), the drift-plus-penalty objective (eq. 19), the bandwidth
// feasibility interval (eq. 8), and two solvers: exact scalar minimisation
// and the paper's decentralized T_d = T_e balance rule (eq. 20).
#pragma once

#include "core/partition.h"

namespace leime::core {

/// Lyapunov control parameters. V trades queue backlog for delay
/// (Theorem 3's O(B/V) gap); tau is the slot length in seconds.
struct LyapunovConfig {
  double V = 50.0;
  double tau = 1.0;
};

/// Everything one device needs to choose x for one slot.
struct DeviceSlotState {
  const MeDnnPartition* partition = nullptr;  ///< ME-DNN deployed on the fleet
  double device_flops = 0.0;       ///< F_i^d
  double edge_share_flops = 0.0;   ///< p_i * F^e
  double bandwidth = 0.0;          ///< B_i^e, bytes/s
  double latency = 0.0;            ///< L_i^e, seconds
  double queue_device = 0.0;       ///< Q_i(t), tasks
  double queue_edge = 0.0;         ///< H_i(t), tasks
  double arrivals = 0.0;           ///< M_i(t), tasks this slot
  /// Bytes already accepted by the uplink but not yet serialized. The
  /// eq. 8 budget is reduced by this backlog so consecutive slots cannot
  /// oversubscribe the link (a runtime refinement over the paper's
  /// memoryless per-slot constraint).
  double uplink_backlog_bytes = 0.0;
  /// False while the edge tier is unreachable for this device (edge server
  /// crashed or uplink in outage; fed by the fault layer, sim/faults.h).
  /// Policies wrapped with FallbackPolicy degrade to x = 0 when false.
  bool edge_available = true;
  LyapunovConfig config;

  /// Throws std::invalid_argument on inconsistent values.
  void validate() const;
};

/// F_{i,1}^e (eq. 9): the fraction of the device's edge share serving
/// first-block tasks, given offloading ratio x. Zero when x == 0.
double edge_first_block_flops(const DeviceSlotState& s, double x);

/// Device service rate b_i = F_i^d * tau / mu1 (tasks per slot).
double device_service_tasks(const DeviceSlotState& s);

/// Edge service rate c_i(x) = F_{i,1}^e * tau / mu1 (tasks per slot).
double edge_service_tasks(const DeviceSlotState& s, double x);

/// T_i^d(t) (eq. 12): waiting + processing + forwarding cost of the tasks
/// kept on the device this slot.
double device_slot_cost(const DeviceSlotState& s, double x);

/// T_i^e(t) (eq. 13): upload + waiting + processing cost of the tasks
/// offloaded this slot.
double edge_slot_cost(const DeviceSlotState& s, double x);

/// Y_i(t) = T_i^d + T_i^e (eq. 14).
double slot_cost(const DeviceSlotState& s, double x);

/// Drift-plus-penalty objective (eq. 19):
/// V·Y_i + Q_i·(A_i − b_i) + H_i·(D_i − c_i).
double drift_plus_penalty(const DeviceSlotState& s, double x);

/// The x-interval satisfying the uplink budget (eq. 8):
/// D·d0 + A·(1−σ1)·d1 <= B·(τ − L), intersected with [0,1]. When even the
/// least-demanding x violates the budget, returns the degenerate interval
/// at that x (the controller then least-violates).
struct Interval {
  double lo = 0.0;
  double hi = 1.0;
};
Interval feasible_offload_interval(const DeviceSlotState& s);

/// Exact per-slot decision: minimises drift_plus_penalty over the feasible
/// interval (coarse grid + golden-section refinement; robust to the
/// objective's piecewise form).
double minimize_drift_plus_penalty(const DeviceSlotState& s);

/// The paper's decentralized rule: the x equalising T_i^d(x) = T_i^e(x)
/// (eq. 20's equality condition), clipped to the feasible interval.
/// Falls back to the interval endpoint when no crossing exists.
double balance_offload_ratio(const DeviceSlotState& s);

}  // namespace leime::core
