// LeimeSystem: the top-level facade tying exit setting, partitioning,
// resource allocation and the online offloading policy together.
//
// Typical use (see examples/quickstart.cpp):
//   auto profile = models::make_profile(models::ModelKind::kInceptionV3);
//   auto system  = core::LeimeSystem::design(profile, env);
//   // deploy system.partition() blocks; each slot, feed queue state into
//   // system.policy().decide(...)
#pragma once

#include <memory>

#include "core/environment.h"
#include "core/exit_setting.h"
#include "core/offload_policy.h"
#include "core/partition.h"

namespace leime::core {

class LeimeSystem {
 public:
  /// Runs the branch-and-bound exit setting for (profile, env), builds the
  /// ME-DNN partition, and instantiates the LEIME offloading policy.
  /// The profile must outlive the returned system.
  static LeimeSystem design(const models::ModelProfile& profile,
                            const Environment& env,
                            const LyapunovConfig& config = {});

  const ExitSettingResult& exit_setting() const { return exit_setting_; }
  const MeDnnPartition& partition() const { return partition_; }
  const OffloadPolicy& policy() const { return *policy_; }
  const LyapunovConfig& config() const { return config_; }
  const Environment& environment() const { return env_; }

 private:
  LeimeSystem(ExitSettingResult setting, MeDnnPartition partition,
              Environment env, LyapunovConfig config);

  ExitSettingResult exit_setting_;
  MeDnnPartition partition_;
  Environment env_;
  LyapunovConfig config_;
  std::unique_ptr<OffloadPolicy> policy_;
};

}  // namespace leime::core
