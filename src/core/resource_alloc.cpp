#include "core/resource_alloc.h"

#include <cmath>
#include <numeric>
#include <stdexcept>

#include "util/check.h"

namespace leime::core {

namespace {

void validate_inputs(const std::vector<double>& k,
                     const std::vector<double>& f, double edge_flops) {
  if (k.empty() || k.size() != f.size())
    throw std::invalid_argument("kkt allocation: size mismatch or empty");
  if (edge_flops <= 0.0)
    throw std::invalid_argument("kkt allocation: edge_flops must be > 0");
  bool any_positive = false;
  for (std::size_t i = 0; i < k.size(); ++i) {
    if (k[i] < 0.0)
      throw std::invalid_argument("kkt allocation: negative expected tasks");
    if (f[i] <= 0.0)
      throw std::invalid_argument("kkt allocation: device flops must be > 0");
    if (k[i] > 0.0) any_positive = true;
  }
  if (!any_positive)
    throw std::invalid_argument("kkt allocation: all expected tasks are 0");
}

}  // namespace

std::vector<double> kkt_interior_solution(
    const std::vector<double>& expected_tasks,
    const std::vector<double>& device_flops, double edge_flops) {
  validate_inputs(expected_tasks, device_flops, edge_flops);
  const double sum_fd =
      std::accumulate(device_flops.begin(), device_flops.end(), 0.0);
  double sum_sqrt_k = 0.0;
  for (double k : expected_tasks) sum_sqrt_k += std::sqrt(k);
  LEIME_CHECK(sum_sqrt_k > 0.0);
  const double c = (sum_fd + edge_flops) / (edge_flops * sum_sqrt_k);
  std::vector<double> p(expected_tasks.size());
  for (std::size_t i = 0; i < p.size(); ++i)
    p[i] = std::sqrt(expected_tasks[i]) * c - device_flops[i] / edge_flops;
  return p;
}

std::vector<double> kkt_edge_allocation(
    const std::vector<double>& expected_tasks,
    const std::vector<double>& device_flops, double edge_flops,
    double p_min) {
  validate_inputs(expected_tasks, device_flops, edge_flops);
  const std::size_t n = expected_tasks.size();
  if (p_min <= 0.0 || p_min * static_cast<double>(n) >= 1.0)
    throw std::invalid_argument("kkt allocation: need 0 < p_min*n < 1");

  // Water-filling over the active set: devices whose interior share would be
  // <= p_min get pinned at p_min; the rest share the remaining budget with
  // the eq. (27) form restricted to the active set.
  std::vector<bool> active(n, true);
  std::vector<double> p(n, p_min);
  for (std::size_t pass = 0; pass <= n; ++pass) {
    double budget = 1.0;
    double sum_fd = 0.0;
    double sum_sqrt_k = 0.0;
    std::size_t num_active = 0;
    for (std::size_t i = 0; i < n; ++i) {
      if (active[i]) {
        sum_fd += device_flops[i];
        sum_sqrt_k += std::sqrt(expected_tasks[i]);
        ++num_active;
      } else {
        budget -= p_min;
      }
    }
    if (num_active == 0 || sum_sqrt_k <= 0.0) {
      // Degenerate: everyone pinned; spread the remaining budget evenly.
      const double extra = budget > 0.0 ? budget / static_cast<double>(n) : 0.0;
      for (auto& v : p) v = p_min + extra;
      break;
    }
    // Active-set interior solution: p_i = √k_i·c − F_i/F^e with Σ_active = budget.
    const double c = (budget * edge_flops + sum_fd) / (edge_flops * sum_sqrt_k);
    bool changed = false;
    for (std::size_t i = 0; i < n; ++i) {
      if (!active[i]) continue;
      const double v =
          std::sqrt(expected_tasks[i]) * c - device_flops[i] / edge_flops;
      if (v <= p_min) {
        active[i] = false;
        p[i] = p_min;
        changed = true;
      } else {
        p[i] = v;
      }
    }
    if (!changed) break;
  }

  double total = std::accumulate(p.begin(), p.end(), 0.0);
  LEIME_CHECK_MSG(std::abs(total - 1.0) < 1e-6, "sum(p)=" << total);
  // Remove residual rounding drift so downstream code can rely on Σp = 1.
  for (auto& v : p) v /= total;
  return p;
}

}  // namespace leime::core
