// Offloading policies: the LEIME online policy and the classical baselines
// evaluated in Fig. 10(b) (device-only, edge-only, capability-based) plus a
// fixed-ratio policy for the Fig. 3 sweeps.
#pragma once

#include <memory>
#include <string>

#include "core/lyapunov.h"

namespace leime::core {

/// Per-slot offloading decision maker. Stateless; all dynamics arrive via
/// DeviceSlotState, so one instance can serve many devices.
class OffloadPolicy {
 public:
  virtual ~OffloadPolicy() = default;

  /// Returns the offloading ratio x ∈ [0,1] for this device and slot.
  virtual double decide(const DeviceSlotState& state) const = 0;

  virtual std::string name() const = 0;
};

/// LEIME: exact minimisation of the drift-plus-penalty objective (P1').
class LeimePolicy final : public OffloadPolicy {
 public:
  double decide(const DeviceSlotState& state) const override;
  std::string name() const override { return "LEIME"; }
};

/// LEIME's decentralized closed rule: balance T_i^d = T_i^e (eq. 20).
class BalancePolicy final : public OffloadPolicy {
 public:
  double decide(const DeviceSlotState& state) const override;
  std::string name() const override { return "LEIME-balance"; }
};

/// Everything runs on the device (x = 0).
class DeviceOnlyPolicy final : public OffloadPolicy {
 public:
  double decide(const DeviceSlotState& state) const override;
  std::string name() const override { return "D-only"; }
};

/// Everything is offloaded (x = 1).
class EdgeOnlyPolicy final : public OffloadPolicy {
 public:
  double decide(const DeviceSlotState& state) const override;
  std::string name() const override { return "E-only"; }
};

/// Static split proportional to compute capability:
/// x = p_i·F^e / (F_i^d + p_i·F^e).
class CapabilityPolicy final : public OffloadPolicy {
 public:
  double decide(const DeviceSlotState& state) const override;
  std::string name() const override { return "cap_based"; }
};

/// Constant ratio (used by the Fig. 3 offload-ratio sweeps).
class FixedRatioPolicy final : public OffloadPolicy {
 public:
  explicit FixedRatioPolicy(double ratio);
  double decide(const DeviceSlotState& state) const override;
  std::string name() const override;

 private:
  double ratio_;
};

/// Graceful-degradation decorator: device-only (x = 0) while the edge tier
/// is marked unreachable (DeviceSlotState::edge_available == false),
/// deferring to the wrapped policy otherwise. Spelled "<base>+fallback" in
/// make_policy, e.g. "LEIME+fallback".
class FallbackPolicy final : public OffloadPolicy {
 public:
  explicit FallbackPolicy(std::unique_ptr<OffloadPolicy> inner);
  double decide(const DeviceSlotState& state) const override;
  std::string name() const override { return inner_->name() + "+fallback"; }

 private:
  std::unique_ptr<OffloadPolicy> inner_;
};

/// Convenience factory for the Fig. 10(b) comparison set. A "+fallback"
/// suffix wraps any base policy in FallbackPolicy.
std::unique_ptr<OffloadPolicy> make_policy(const std::string& name);

}  // namespace leime::core
