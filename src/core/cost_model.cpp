#include "core/cost_model.h"

#include <stdexcept>
#include <string>
#include <utility>

namespace leime::core {

CostModel::CostModel(models::ModelProfile profile, const Environment& env)
    : profile_(std::move(profile)), env_(env) {
  if (!env_.valid())
    throw std::invalid_argument("CostModel: invalid environment");
  if (profile_.num_units() < 3)
    throw std::invalid_argument(
        "CostModel: profile needs at least 3 units for a 3-exit ME-DNN");
}

double CostModel::device_time(int e1) const {
  if (e1 < 1 || e1 > num_exits())
    throw std::invalid_argument("device_time: e1 out of range");
  return (profile_.prefix_flops(e1) + profile_.exit(e1).classifier_flops) /
         env_.caps.device_flops;
}

double CostModel::edge_time(int e1, int e2) const {
  if (e1 < 1 || e2 <= e1 || e2 > num_exits())
    throw std::invalid_argument("edge_time: need 1 <= e1 < e2 <= m");
  const double compute =
      (profile_.prefix_flops(e2) - profile_.prefix_flops(e1) +
       profile_.exit(e2).classifier_flops) /
      env_.caps.edge_flops;
  const double transfer =
      profile_.out_bytes_after(e1) / env_.net.dev_edge_bw +
      env_.net.dev_edge_lat;
  return compute + transfer;
}

double CostModel::cloud_time(int e2) const {
  const int m = num_exits();
  if (e2 < 1 || e2 >= m)
    throw std::invalid_argument("cloud_time: need 1 <= e2 < m");
  const double compute =
      (profile_.prefix_flops(m) - profile_.prefix_flops(e2) +
       profile_.exit(m).classifier_flops) /
      env_.caps.cloud_flops;
  const double transfer =
      profile_.out_bytes_after(e2) / env_.net.edge_cloud_bw +
      env_.net.edge_cloud_lat;
  return compute + transfer;
}

void CostModel::validate_combo(const ExitCombo& combo) const {
  const int m = num_exits();
  if (combo.e3 != m)
    throw std::invalid_argument("ExitCombo: e3 must be the final exit (m=" +
                                std::to_string(m) + ")");
  if (!(1 <= combo.e1 && combo.e1 < combo.e2 && combo.e2 < combo.e3))
    throw std::invalid_argument("ExitCombo: need 1 <= e1 < e2 < e3");
}

double CostModel::expected_tct(const ExitCombo& combo) const {
  validate_combo(combo);
  const double td = device_time(combo.e1);
  const double te = edge_time(combo.e1, combo.e2);
  const double tc = cloud_time(combo.e2);
  const double s1 = profile_.exit(combo.e1).exit_rate;
  const double s2 = profile_.exit(combo.e2).exit_rate;
  // Eq. 4 with σ_e3 = 1: every task pays t_d; tasks surviving e1 pay t_e;
  // tasks surviving e2 pay t_c.
  return td + (1.0 - s1) * te + (1.0 - s2) * tc;
}

double CostModel::two_exit_cost(int i) const {
  const int m = num_exits();
  if (i < 1 || i >= m)
    throw std::invalid_argument("two_exit_cost: need 1 <= i < m");
  const double td = device_time(i);
  // Edge runs units i+1..m with the final head (eq. 5).
  const double te =
      (profile_.prefix_flops(m) - profile_.prefix_flops(i) +
       profile_.exit(m).classifier_flops) /
          env_.caps.edge_flops +
      profile_.out_bytes_after(i) / env_.net.dev_edge_bw +
      env_.net.dev_edge_lat;
  const double s_i = profile_.exit(i).exit_rate;
  return td + (1.0 - s_i) * te;
}

double CostModel::no_exit_tct(int r1, int r2) const {
  const int m = num_exits();
  if (!(0 <= r1 && r1 <= r2 && r2 <= m))
    throw std::invalid_argument("no_exit_tct: need 0 <= r1 <= r2 <= m");
  double t = 0.0;
  // Device tier: units 1..r1.
  t += profile_.prefix_flops(r1) / env_.caps.device_flops;
  // Edge tier: units r1+1..r2 (transfer only if the edge does work or must
  // relay to the cloud).
  const bool uses_edge = r2 > r1;
  const bool uses_cloud = r2 < m;
  if (uses_edge || uses_cloud) {
    t += profile_.out_bytes_after(r1) / env_.net.dev_edge_bw +
         env_.net.dev_edge_lat;
    t += (profile_.prefix_flops(r2) - profile_.prefix_flops(r1)) /
         env_.caps.edge_flops;
  }
  if (uses_cloud) {
    t += profile_.out_bytes_after(r2) / env_.net.edge_cloud_bw +
         env_.net.edge_cloud_lat;
    t += (profile_.prefix_flops(m) - profile_.prefix_flops(r2)) /
         env_.caps.cloud_flops;
    t += profile_.exit(m).classifier_flops / env_.caps.cloud_flops;
  } else {
    // Final head runs wherever the chain ends.
    const double f =
        uses_edge ? env_.caps.edge_flops : env_.caps.device_flops;
    t += profile_.exit(m).classifier_flops / f;
  }
  return t;
}

}  // namespace leime::core
