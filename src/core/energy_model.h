// Device-energy extension of the exit-setting cost model.
//
// The paper optimises latency only, but its closest baseline (Neurosurgeon,
// Kang et al. ASPLOS'17) treats device *energy* as a co-equal objective:
// battery-powered end devices pay for the FLOPs they compute and the bytes
// they radio out, while edge/cloud energy is not the device's concern.
// This module prices an exit combination in joules on the device —
//   E(combo) = (compute J/FLOP)·(device FLOPs)
//            + (tx J/byte)·(expected uplink bytes)
//            + (idle W)·(expected time waiting for remote results)
// — and provides energy-optimal and energy-bounded exit settings.
#pragma once

#include "core/cost_model.h"

namespace leime::core {

/// Device energy coefficients. Defaults are Raspberry-Pi-class numbers:
/// ~1 nJ/FLOP effective compute energy, ~100 nJ/byte WiFi transmit energy,
/// ~1.5 W idle draw while waiting.
struct EnergyParams {
  double compute_j_per_flop = 1e-9;
  double tx_j_per_byte = 1e-7;
  double idle_watts = 1.5;

  bool valid() const {
    return compute_j_per_flop >= 0.0 && tx_j_per_byte >= 0.0 &&
           idle_watts >= 0.0;
  }
};

class EnergyModel {
 public:
  /// Shares the profile/environment semantics of CostModel (and copies the
  /// profile, so no lifetime coupling). Throws std::invalid_argument on
  /// invalid params.
  EnergyModel(models::ModelProfile profile, const Environment& env,
              const EnergyParams& params = {});

  /// Expected device energy (joules) per task for the exit combination:
  /// compute of block 1 + head, transmit of d1 for the (1-σ1) survivors,
  /// and idle draw while the remote tiers work.
  double expected_energy(const ExitCombo& combo) const;

  const CostModel& cost_model() const { return cost_; }
  const EnergyParams& params() const { return params_; }

 private:
  CostModel cost_;
  EnergyParams params_;
};

struct EnergySettingResult {
  ExitCombo combo;
  double energy_j = 0.0;
  double expected_tct = 0.0;
  bool feasible = true;  ///< false when the latency bound had to be dropped
};

/// Minimises expected device energy over all exit combinations.
EnergySettingResult energy_optimal_exit_setting(const EnergyModel& model);

/// Minimises energy subject to expected TCT <= latency_bound; falls back to
/// the unconstrained energy optimum (feasible = false) when no combination
/// meets the bound. latency_bound must be > 0.
EnergySettingResult energy_optimal_exit_setting(const EnergyModel& model,
                                                double latency_bound);

}  // namespace leime::core
