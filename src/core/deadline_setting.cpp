#include "core/deadline_setting.h"

#include <limits>
#include <stdexcept>

#include "core/exit_setting.h"

namespace leime::core {

DeadlineSettingResult deadline_aware_exit_setting(const CostModel& model,
                                                  double deadline) {
  if (deadline <= 0.0)
    throw std::invalid_argument(
        "deadline_aware_exit_setting: deadline must be > 0");
  const auto& profile = model.profile();
  const int m = model.num_exits();

  DeadlineSettingResult best;
  best.expected_accuracy = -1.0;
  for (int e1 = 1; e1 <= m - 2; ++e1) {
    for (int e2 = e1 + 1; e2 <= m - 1; ++e2) {
      const ExitCombo combo{e1, e2, m};
      const double tct = model.expected_tct(combo);
      if (tct > deadline) continue;
      const double acc = profile.expected_accuracy(e1, e2);
      const bool better =
          acc > best.expected_accuracy ||
          (acc == best.expected_accuracy && tct < best.expected_tct);
      if (better) {
        best.combo = combo;
        best.expected_tct = tct;
        best.expected_accuracy = acc;
        best.feasible = true;
      }
    }
  }
  if (best.feasible) return best;

  // Infeasible deadline: fall back to the latency optimum.
  const auto fallback = branch_and_bound_exit_setting(model);
  best.combo = fallback.combo;
  best.expected_tct = fallback.cost;
  best.expected_accuracy =
      profile.expected_accuracy(fallback.combo.e1, fallback.combo.e2);
  best.feasible = false;
  return best;
}

}  // namespace leime::core
