// Exit-setting cost model: paper §III-C, equations (1)-(5).
//
// Given a chain profile and an environment, computes the per-tier time costs
// of any First/Second/Third-exit combination and the expected task completion
// time T(E) = t_d + (1-σ_e1)·t_e + (1-σ_e2)·t_c (eq. 4 with σ_e3 = 1).
#pragma once

#include "core/environment.h"
#include "models/profile.h"

namespace leime::core {

/// A First/Second/Third-exit combination, 1-indexed into the profile's
/// candidate exits. The paper fixes e3 = exit_m.
struct ExitCombo {
  int e1 = 0;
  int e2 = 0;
  int e3 = 0;

  bool operator==(const ExitCombo&) const = default;
};

class CostModel {
 public:
  /// Copies the profile (profiles are a few KB), so the cost model has no
  /// lifetime coupling to its inputs. Throws std::invalid_argument on an
  /// invalid environment or a profile with fewer than 3 units.
  CostModel(models::ModelProfile profile, const Environment& env);

  const models::ModelProfile& profile() const { return profile_; }
  const Environment& environment() const { return env_; }

  /// t_d (eq. 1): device computes units 1..e1 plus the e1 exit head.
  double device_time(int e1) const;

  /// t_e (eq. 2): edge computes units e1+1..e2 plus the e2 exit head, after
  /// receiving the e1 intermediate tensor over the device-edge link.
  double edge_time(int e1, int e2) const;

  /// t_c (eq. 3): cloud computes units e2+1..m plus the final head, after
  /// receiving the e2 intermediate tensor over the edge-cloud link.
  double cloud_time(int e2) const;

  /// T(E) (eq. 4). Requires 1 <= e1 < e2 < e3 == m.
  double expected_tct(const ExitCombo& combo) const;

  /// Cost of the two-exit configuration {exit_i, exit_m, -} (eq. 5): device
  /// runs 1..i, edge runs the rest; used by the branch-and-bound search.
  double two_exit_cost(int i) const;

  /// Latency of a no-early-exit chain partitioned after units r1 (device)
  /// and r2 (edge) with only the original head at the end — the
  /// Neurosurgeon baseline. Requires 0 <= r1 <= r2 <= m (r = 0 or m drops
  /// the corresponding tier; skipped tiers incur no transfer to themselves).
  double no_exit_tct(int r1, int r2) const;

  /// Number of candidate exits m.
  int num_exits() const { return profile_.num_units(); }

 private:
  void validate_combo(const ExitCombo& combo) const;

  models::ModelProfile profile_;
  Environment env_;
};

}  // namespace leime::core
