#include "core/energy_model.h"

#include <limits>
#include <stdexcept>

#include "util/check.h"

namespace leime::core {

EnergyModel::EnergyModel(models::ModelProfile profile, const Environment& env,
                         const EnergyParams& params)
    : cost_(std::move(profile), env), params_(params) {
  if (!params.valid())
    throw std::invalid_argument("EnergyModel: negative energy coefficients");
}

double EnergyModel::expected_energy(const ExitCombo& combo) const {
  const auto& profile = cost_.profile();
  const auto& env = cost_.environment();
  // Compute: block 1 + the First-exit head, always on the device.
  const double device_flops = profile.prefix_flops(combo.e1) +
                              profile.exit(combo.e1).classifier_flops;
  const double compute = params_.compute_j_per_flop * device_flops;
  // Transmit: survivors of the First-exit upload d1.
  const double sigma1 = profile.exit(combo.e1).exit_rate;
  const double tx = params_.tx_j_per_byte * (1.0 - sigma1) *
                    profile.out_bytes_after(combo.e1);
  // Idle: the device waits for the edge (survivors of e1) and the cloud
  // (survivors of e2) before it has the final answer.
  const double sigma2 = profile.exit(combo.e2).exit_rate;
  const double idle_time =
      (1.0 - sigma1) * cost_.edge_time(combo.e1, combo.e2) +
      (1.0 - sigma2) * cost_.cloud_time(combo.e2);
  const double idle = params_.idle_watts * idle_time;
  return compute + tx + idle;
}

namespace {

EnergySettingResult scan(const EnergyModel& model, double latency_bound) {
  const auto& cost = model.cost_model();
  const int m = cost.num_exits();
  EnergySettingResult best;
  best.energy_j = std::numeric_limits<double>::infinity();
  for (int e1 = 1; e1 <= m - 2; ++e1) {
    for (int e2 = e1 + 1; e2 <= m - 1; ++e2) {
      const ExitCombo combo{e1, e2, m};
      const double tct = cost.expected_tct(combo);
      if (tct > latency_bound) continue;
      const double energy = model.expected_energy(combo);
      if (energy < best.energy_j ||
          (energy == best.energy_j && tct < best.expected_tct)) {
        best.combo = combo;
        best.energy_j = energy;
        best.expected_tct = tct;
      }
    }
  }
  return best;
}

}  // namespace

EnergySettingResult energy_optimal_exit_setting(const EnergyModel& model) {
  auto best = scan(model, std::numeric_limits<double>::infinity());
  LEIME_CHECK(best.energy_j < std::numeric_limits<double>::infinity());
  best.feasible = true;
  return best;
}

EnergySettingResult energy_optimal_exit_setting(const EnergyModel& model,
                                                double latency_bound) {
  if (latency_bound <= 0.0)
    throw std::invalid_argument(
        "energy_optimal_exit_setting: latency_bound must be > 0");
  auto best = scan(model, latency_bound);
  if (best.energy_j < std::numeric_limits<double>::infinity()) {
    best.feasible = true;
    return best;
  }
  best = energy_optimal_exit_setting(model);
  best.feasible = false;
  return best;
}

}  // namespace leime::core
