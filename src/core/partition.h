// ME-DNN partitions: the (μ1..3, d0..2, σ1..3) tuple the offloading layer
// consumes (paper Table I and end of §III-C).
//
// Block 1 = units 1..e1 + e1's exit head (deployed on devices);
// block 2 = units e1+1..e2 + e2's head (edge); block 3 = the rest + the
// final head (cloud).
#pragma once

#include "core/cost_model.h"
#include "models/profile.h"

namespace leime::core {

struct MeDnnPartition {
  ExitCombo combo;
  double mu1 = 0.0, mu2 = 0.0, mu3 = 0.0;        ///< block FLOPs (incl. heads)
  double d0 = 0.0, d1 = 0.0, d2 = 0.0;           ///< input / cut tensors, bytes
  double sigma1 = 0.0, sigma2 = 0.0, sigma3 = 1; ///< cumulative exit rates
};

/// Builds the partition for a validated exit combination (e1 < e2 < e3 = m).
MeDnnPartition make_partition(const models::ModelProfile& profile,
                              const ExitCombo& combo);

/// Neurosurgeon-style partition: same cut points, but no early exits —
/// σ1 = σ2 = 0, no intermediate heads, only the original final head in
/// block 3. Requires 1 <= r1 < r2 < m.
MeDnnPartition make_no_exit_partition(const models::ModelProfile& profile,
                                      int r1, int r2);

}  // namespace leime::core
