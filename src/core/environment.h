// Wild-edge environment description: node capabilities and network
// conditions, the inputs of the exit-setting cost model (paper Table I).
//
// Units: FLOPS, bytes/second, seconds.
#pragma once

#include "util/units.h"

namespace leime::core {

/// Compute capabilities of the three tiers. For exit setting these are the
/// *average available* FLOPS (F_av^d, F_av^e, F^c); per-device actual values
/// live in the simulator's fleet description.
struct NodeCapabilities {
  double device_flops = 0.0;
  double edge_flops = 0.0;
  double cloud_flops = 0.0;
};

/// Link conditions: device<->edge (averaged over the fleet for exit setting)
/// and edge<->cloud. Bandwidth in bytes/s, latency in seconds.
struct NetworkConditions {
  double dev_edge_bw = 0.0;
  double dev_edge_lat = 0.0;
  double edge_cloud_bw = 0.0;
  double edge_cloud_lat = 0.0;
};

struct Environment {
  NodeCapabilities caps;
  NetworkConditions net;

  /// True iff all capabilities and bandwidths are positive and latencies
  /// non-negative.
  bool valid() const {
    return caps.device_flops > 0.0 && caps.edge_flops > 0.0 &&
           caps.cloud_flops > 0.0 && net.dev_edge_bw > 0.0 &&
           net.edge_cloud_bw > 0.0 && net.dev_edge_lat >= 0.0 &&
           net.edge_cloud_lat >= 0.0;
  }
};

// Calibrated capabilities of the paper's testbed hardware (§IV-A, §II-A).
// These are *measured effective* DNN-inference FLOPS (what a PyTorch conv
// net actually sustains), not datasheet peaks: a Raspberry Pi 3B+ runs full
// Inception v3 in O(10 s), i.e. well under 1 GFLOPS effective; the Jetson
// Nano is ~10x faster (§II-B1); the edge desktop another ~8x; the V100
// cloud is effectively uncontended.
inline constexpr double kRaspberryPiFlops = leime::util::gflops(0.6);
inline constexpr double kJetsonNanoFlops = leime::util::gflops(6.0);
inline constexpr double kEdgeDesktopFlops = leime::util::gflops(50.0);
inline constexpr double kCloudV100Flops = leime::util::tflops(4.0);

/// The paper's default testbed environment with a Raspberry Pi device:
/// WiFi device-edge link (10 Mbps, 20 ms), Internet edge-cloud link
/// (100 Mbps, 30 ms).
inline Environment testbed_environment(double device_flops = kRaspberryPiFlops) {
  using namespace leime::util;
  Environment env;
  env.caps = {device_flops, kEdgeDesktopFlops, kCloudV100Flops};
  env.net = {mbps(10.0), ms(20.0), mbps(100.0), ms(30.0)};
  return env;
}

}  // namespace leime::core
