// Deadline-aware exit setting — an extension beyond the paper.
//
// §II-A lists "deadline requirements" among the wild-edge application
// characteristics, but the paper's P0 only minimises latency. This module
// solves the dual problem: among exit combinations whose expected TCT meets
// a deadline, pick the one with the highest expected end-to-end accuracy
// (exit-fraction-weighted accuracy of the selected exits, see
// ModelProfile::expected_accuracy). Falls back to the latency-optimal
// combination when no combination meets the deadline.
#pragma once

#include "core/cost_model.h"

namespace leime::core {

struct DeadlineSettingResult {
  ExitCombo combo;
  double expected_tct = 0.0;
  double expected_accuracy = 0.0;
  bool feasible = false;  ///< true iff expected_tct <= deadline
};

/// Maximises expected accuracy subject to expected TCT <= deadline
/// (exhaustive over the O(m^2) combinations — deadline feasibility breaks
/// Theorem 1's dominance, so branch-and-bound pruning does not apply).
/// Ties on accuracy break towards lower TCT. deadline must be > 0.
DeadlineSettingResult deadline_aware_exit_setting(const CostModel& model,
                                                  double deadline);

}  // namespace leime::core
