#include "core/partition.h"

#include <stdexcept>

namespace leime::core {

namespace {

void validate_cuts(const models::ModelProfile& profile, int e1, int e2) {
  const int m = profile.num_units();
  if (!(1 <= e1 && e1 < e2 && e2 < m))
    throw std::invalid_argument("partition: need 1 <= e1 < e2 < m");
}

}  // namespace

MeDnnPartition make_partition(const models::ModelProfile& profile,
                              const ExitCombo& combo) {
  validate_cuts(profile, combo.e1, combo.e2);
  if (combo.e3 != profile.num_units())
    throw std::invalid_argument("make_partition: e3 must be the final exit");
  const int m = profile.num_units();
  MeDnnPartition p;
  p.combo = combo;
  p.mu1 = profile.prefix_flops(combo.e1) +
          profile.exit(combo.e1).classifier_flops;
  p.mu2 = profile.prefix_flops(combo.e2) - profile.prefix_flops(combo.e1) +
          profile.exit(combo.e2).classifier_flops;
  p.mu3 = profile.prefix_flops(m) - profile.prefix_flops(combo.e2) +
          profile.exit(m).classifier_flops;
  p.d0 = profile.input_bytes();
  p.d1 = profile.out_bytes_after(combo.e1);
  p.d2 = profile.out_bytes_after(combo.e2);
  p.sigma1 = profile.exit(combo.e1).exit_rate;
  p.sigma2 = profile.exit(combo.e2).exit_rate;
  p.sigma3 = 1.0;
  return p;
}

MeDnnPartition make_no_exit_partition(const models::ModelProfile& profile,
                                      int r1, int r2) {
  validate_cuts(profile, r1, r2);
  const int m = profile.num_units();
  MeDnnPartition p;
  p.combo = {r1, r2, m};
  p.mu1 = profile.prefix_flops(r1);
  p.mu2 = profile.prefix_flops(r2) - profile.prefix_flops(r1);
  p.mu3 = profile.prefix_flops(m) - profile.prefix_flops(r2) +
          profile.exit(m).classifier_flops;
  p.d0 = profile.input_bytes();
  p.d1 = profile.out_bytes_after(r1);
  p.d2 = profile.out_bytes_after(r2);
  p.sigma1 = 0.0;
  p.sigma2 = 0.0;
  p.sigma3 = 1.0;
  return p;
}

}  // namespace leime::core
