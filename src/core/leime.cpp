#include "core/leime.h"

namespace leime::core {

LeimeSystem::LeimeSystem(ExitSettingResult setting, MeDnnPartition partition,
                         Environment env, LyapunovConfig config)
    : exit_setting_(setting),
      partition_(partition),
      env_(env),
      config_(config),
      policy_(std::make_unique<LeimePolicy>()) {}

LeimeSystem LeimeSystem::design(const models::ModelProfile& profile,
                                const Environment& env,
                                const LyapunovConfig& config) {
  CostModel cost(profile, env);
  ExitSettingResult setting = branch_and_bound_exit_setting(cost);
  MeDnnPartition partition = make_partition(profile, setting.combo);
  return LeimeSystem(setting, partition, env, config);
}

}  // namespace leime::core
