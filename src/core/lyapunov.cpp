#include "core/lyapunov.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

#include "util/check.h"

namespace leime::core {

void DeviceSlotState::validate() const {
  if (partition == nullptr)
    throw std::invalid_argument("DeviceSlotState: null partition");
  if (device_flops <= 0.0 || edge_share_flops <= 0.0)
    throw std::invalid_argument("DeviceSlotState: non-positive FLOPS");
  if (bandwidth <= 0.0 || latency < 0.0)
    throw std::invalid_argument("DeviceSlotState: bad link parameters");
  if (queue_device < 0.0 || queue_edge < 0.0 || arrivals < 0.0)
    throw std::invalid_argument("DeviceSlotState: negative queue/arrivals");
  if (config.V < 0.0 || config.tau <= 0.0)
    throw std::invalid_argument("DeviceSlotState: bad Lyapunov config");
  if (config.tau <= latency)
    throw std::invalid_argument(
        "DeviceSlotState: slot shorter than link latency");
}

double edge_first_block_flops(const DeviceSlotState& s, double x) {
  const auto& p = *s.partition;
  const double denom = x * p.mu1 + (1.0 - p.sigma1) * p.mu2;
  if (denom <= 0.0) return 0.0;  // x == 0 and nothing survives to block 2
  return x * p.mu1 * s.edge_share_flops / denom;
}

double device_service_tasks(const DeviceSlotState& s) {
  return s.device_flops * s.config.tau / s.partition->mu1;
}

double edge_service_tasks(const DeviceSlotState& s, double x) {
  return edge_first_block_flops(s, x) * s.config.tau / s.partition->mu1;
}

double device_slot_cost(const DeviceSlotState& s, double x) {
  const auto& p = *s.partition;
  const double a = (1.0 - x) * s.arrivals;  // A_i(t)
  if (a <= 0.0) return 0.0;
  const double per_task = p.mu1 / s.device_flops;
  // C_{i,1}^d: drain the backlog first.
  const double wait_backlog = a * s.queue_device * per_task;
  // C_{i,2}^d: own processing + intra-slot queueing of this slot's batch.
  const double process = a * per_task + 0.5 * a * (a - 1.0) * per_task;
  // C_{i,3}^d: survivors of the First-exit upload their intermediate tensor.
  const double forward =
      (1.0 - p.sigma1) * a * (p.d1 / s.bandwidth + s.latency);
  return wait_backlog + std::max(process, a * per_task) + forward;
}

double edge_slot_cost(const DeviceSlotState& s, double x) {
  const auto& p = *s.partition;
  const double d = x * s.arrivals;  // D_i(t)
  if (d <= 0.0) return 0.0;
  const double f_e1 = edge_first_block_flops(s, x);
  LEIME_CHECK(f_e1 > 0.0);
  const double per_task = p.mu1 / f_e1;
  // C_{i,1}^e: raw inputs cross the uplink.
  const double upload = d * (p.d0 / s.bandwidth + s.latency);
  // C_{i,2}^e: drain this device's edge backlog.
  const double wait_backlog = d * s.queue_edge * per_task;
  // C_{i,3}^e: processing + intra-slot queueing.
  const double process = d * per_task + 0.5 * d * (d - 1.0) * per_task;
  return upload + wait_backlog + std::max(process, d * per_task);
}

double slot_cost(const DeviceSlotState& s, double x) {
  return device_slot_cost(s, x) + edge_slot_cost(s, x);
}

double drift_plus_penalty(const DeviceSlotState& s, double x) {
  const double a = (1.0 - x) * s.arrivals;
  const double d = x * s.arrivals;
  return s.config.V * slot_cost(s, x) +
         s.queue_device * (a - device_service_tasks(s)) +
         s.queue_edge * (d - edge_service_tasks(s, x));
}

Interval feasible_offload_interval(const DeviceSlotState& s) {
  const auto& p = *s.partition;
  if (s.arrivals <= 0.0) return {0.0, 1.0};
  // Eq. 8: x·M·d0 + (1−x)·M·(1−σ1)·d1 <= B(τ − L), with the budget reduced
  // by bytes the uplink still owes from previous slots.
  const double budget = std::max(
      0.0, s.bandwidth * (s.config.tau - s.latency) - s.uplink_backlog_bytes);
  const double base = s.arrivals * (1.0 - p.sigma1) * p.d1;   // x = 0 usage
  const double slope = s.arrivals * (p.d0 - (1.0 - p.sigma1) * p.d1);
  if (slope > 0.0) {
    // Offloading raw inputs costs more than forwarding survivors: cap x.
    const double hi = (budget - base) / slope;
    if (hi <= 0.0) return {0.0, 0.0};  // least-violating endpoint
    return {0.0, std::min(1.0, hi)};
  }
  if (slope < 0.0) {
    // Raw inputs are cheaper than intermediate tensors: floor x.
    const double lo = (budget - base) / slope;  // slope < 0 flips direction
    if (lo >= 1.0) return {1.0, 1.0};
    return {std::max(0.0, lo), 1.0};
  }
  return {0.0, 1.0};
}

double minimize_drift_plus_penalty(const DeviceSlotState& s) {
  s.validate();
  const Interval iv = feasible_offload_interval(s);
  if (iv.hi <= iv.lo) return iv.lo;

  // Coarse grid to bracket the global minimum of the piecewise objective.
  constexpr int kGrid = 64;
  double best_x = iv.lo;
  double best_v = std::numeric_limits<double>::infinity();
  for (int g = 0; g <= kGrid; ++g) {
    const double x = iv.lo + (iv.hi - iv.lo) * g / kGrid;
    const double v = drift_plus_penalty(s, x);
    if (v < best_v) {
      best_v = v;
      best_x = x;
    }
  }
  // Golden-section refinement around the bracketing neighbours.
  const double step = (iv.hi - iv.lo) / kGrid;
  double lo = std::max(iv.lo, best_x - step);
  double hi = std::min(iv.hi, best_x + step);
  constexpr double kPhi = 0.6180339887498949;
  for (int it = 0; it < 48 && hi - lo > 1e-9; ++it) {
    const double x1 = hi - kPhi * (hi - lo);
    const double x2 = lo + kPhi * (hi - lo);
    if (drift_plus_penalty(s, x1) <= drift_plus_penalty(s, x2))
      hi = x2;
    else
      lo = x1;
  }
  const double refined = 0.5 * (lo + hi);
  return drift_plus_penalty(s, refined) < best_v ? refined : best_x;
}

double balance_offload_ratio(const DeviceSlotState& s) {
  s.validate();
  const Interval iv = feasible_offload_interval(s);
  if (iv.hi <= iv.lo) return iv.lo;
  auto gap = [&](double x) {
    return device_slot_cost(s, x) - edge_slot_cost(s, x);
  };
  // T_d decreases and T_e increases with x, so the gap is decreasing; find
  // its zero by bisection.
  double lo = iv.lo;
  double hi = iv.hi;
  const double g_lo = gap(lo);
  const double g_hi = gap(hi);
  if (g_lo <= 0.0) return lo;  // device side already cheaper everywhere
  if (g_hi >= 0.0) return hi;  // edge side cheaper even at full offload
  for (int it = 0; it < 60 && hi - lo > 1e-9; ++it) {
    const double mid = 0.5 * (lo + hi);
    if (gap(mid) > 0.0)
      lo = mid;
    else
      hi = mid;
  }
  return 0.5 * (lo + hi);
}

}  // namespace leime::core
