// Edge-server resource allocation across connected devices.
//
// Implements the paper's Appendix B: minimise the fleet-average processing
// time f(P) = (1/Σk) Σ_i k_i(μ1 + (1-σ1)μ2)/(F_i^d + p_i F^e) subject to
// Σ p_i = 1, p_i > 0. The interior KKT solution is eq. (27):
//   p_i = √k_i (ΣF^d + F^e)/(F^e Σ√k) − F_i^d/F^e.
// When that turns negative for strong devices the constrained optimum is the
// water-filling solution p_i = max(p_min, √k_i·c − F_i^d/F^e) with c chosen
// over the active set; this module implements the water-filling form, which
// coincides with eq. (27) whenever the interior solution is feasible.
#pragma once

#include <vector>

namespace leime::core {

/// Returns the per-device edge shares p (Σp = 1, p_i >= p_min).
///
/// `expected_tasks` holds the k_i (all >= 0, at least one > 0);
/// `device_flops` the F_i^d (> 0); `edge_flops` is F^e (> 0). p_min keeps
/// every device a sliver of edge capacity (the paper requires p_i > 0);
/// requires p_min * n < 1.
std::vector<double> kkt_edge_allocation(
    const std::vector<double>& expected_tasks,
    const std::vector<double>& device_flops, double edge_flops,
    double p_min = 1e-4);

/// Fleet-scaled share floor for kkt_edge_allocation: the 1e-4 default up
/// to 5000 devices (bit-identical to every pre-existing scenario), then
/// 0.5/n beyond so p_min * n < 1 keeps holding — without this, fleets of
/// 10^4+ devices reject at validation before a single event runs.
inline double fleet_p_min(std::size_t n) {
  const double scaled = 0.5 / static_cast<double>(n == 0 ? 1 : n);
  return scaled < 1e-4 ? scaled : 1e-4;
}

/// The unclamped interior closed form of eq. (27) (may return negative
/// entries). Exposed for tests and documentation.
std::vector<double> kkt_interior_solution(
    const std::vector<double>& expected_tasks,
    const std::vector<double>& device_flops, double edge_flops);

}  // namespace leime::core
