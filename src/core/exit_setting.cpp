#include "core/exit_setting.h"

#include <limits>
#include <stdexcept>

#include "prof/profiler.h"
#include "util/check.h"

namespace leime::core {

namespace {

void require_searchable(const CostModel& model) {
  if (model.num_exits() < 3)
    throw std::invalid_argument(
        "exit setting: need at least 3 candidate exits");
}

}  // namespace

ExitSettingResult exhaustive_exit_setting(const CostModel& model) {
  LEIME_PROF_SCOPE("leime.core.exit_setting.exhaustive");
  require_searchable(model);
  const int m = model.num_exits();
  ExitSettingResult best;
  best.cost = std::numeric_limits<double>::infinity();
  best.rounds = 1;
  for (int e1 = 1; e1 <= m - 2; ++e1) {
    for (int e2 = e1 + 1; e2 <= m - 1; ++e2) {
      const ExitCombo combo{e1, e2, m};
      const double cost = model.expected_tct(combo);
      ++best.evaluations;
      if (exit_setting_improves(cost, combo, best.cost, best.combo)) {
        best.cost = cost;
        best.combo = combo;
      }
    }
  }
  LEIME_PROF_COUNT("leime.core.exit_setting.exhaustive.evals",
                   best.evaluations);
  LEIME_CHECK(best.cost < std::numeric_limits<double>::infinity());
  return best;
}

ExitSettingResult branch_and_bound_exit_setting(const CostModel& model) {
  LEIME_PROF_SCOPE("leime.core.exit_setting.bb");
  require_searchable(model);
  const int m = model.num_exits();
  ExitSettingResult best;
  best.cost = std::numeric_limits<double>::infinity();

  int upbound = m - 2;  // deepest First-exit still admissible
  while (upbound >= 1) {
    // Round k: the best First-exit candidate within [1, upbound] by the
    // two-exit cost (Theorem 1 dominance key).
    int i_k = 1;
    double best_two = std::numeric_limits<double>::infinity();
    for (int i = 1; i <= upbound; ++i) {
      const double c = model.two_exit_cost(i);
      ++best.evaluations;
      if (c < best_two) {
        best_two = c;
        i_k = i;
      }
    }
    // Scan the candidate's Second-exit range R_{i_k}. Rounds visit First-
    // exits in non-lexicographic order (i_k strictly decreases), so the
    // tie-breaking predicate — not first-visited-wins — is what keeps the
    // result aligned with the exhaustive scan on exact cost ties.
    for (int j = i_k + 1; j <= m - 1; ++j) {
      const ExitCombo combo{i_k, j, m};
      const double cost = model.expected_tct(combo);
      ++best.evaluations;
      if (exit_setting_improves(cost, combo, best.cost, best.combo)) {
        best.cost = cost;
        best.combo = combo;
      }
    }
    ++best.rounds;
    // Theorem 1: any deeper First-exit with a worse two-exit cost is
    // dominated, so only shallower candidates remain. Everything in
    // (i_k, upbound] is pruned without its Second-exit range ever being
    // scanned.
    LEIME_PROF_COUNT("leime.core.exit_setting.bb.pruned",
                     static_cast<std::uint64_t>(upbound - i_k));
    upbound = i_k - 1;
  }
  LEIME_PROF_COUNT("leime.core.exit_setting.bb.rounds",
                   static_cast<std::uint64_t>(best.rounds));
  LEIME_PROF_COUNT("leime.core.exit_setting.bb.evals", best.evaluations);
  LEIME_CHECK(best.cost < std::numeric_limits<double>::infinity());
  return best;
}

}  // namespace leime::core
