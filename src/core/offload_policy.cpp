#include "core/offload_policy.h"

#include <sstream>
#include <stdexcept>

namespace leime::core {

double LeimePolicy::decide(const DeviceSlotState& state) const {
  return minimize_drift_plus_penalty(state);
}

double BalancePolicy::decide(const DeviceSlotState& state) const {
  return balance_offload_ratio(state);
}

double DeviceOnlyPolicy::decide(const DeviceSlotState&) const { return 0.0; }

double EdgeOnlyPolicy::decide(const DeviceSlotState&) const { return 1.0; }

double CapabilityPolicy::decide(const DeviceSlotState& state) const {
  const double total = state.device_flops + state.edge_share_flops;
  return total > 0.0 ? state.edge_share_flops / total : 0.0;
}

FixedRatioPolicy::FixedRatioPolicy(double ratio) : ratio_(ratio) {
  if (ratio < 0.0 || ratio > 1.0)
    throw std::invalid_argument("FixedRatioPolicy: ratio outside [0,1]");
}

double FixedRatioPolicy::decide(const DeviceSlotState&) const {
  return ratio_;
}

std::string FixedRatioPolicy::name() const {
  std::ostringstream os;
  os << "fixed(" << ratio_ << ")";
  return os.str();
}

FallbackPolicy::FallbackPolicy(std::unique_ptr<OffloadPolicy> inner)
    : inner_(std::move(inner)) {
  if (!inner_)
    throw std::invalid_argument("FallbackPolicy: null inner policy");
}

double FallbackPolicy::decide(const DeviceSlotState& state) const {
  if (!state.edge_available) return 0.0;
  return inner_->decide(state);
}

std::unique_ptr<OffloadPolicy> make_policy(const std::string& name) {
  constexpr const char* kSuffix = "+fallback";
  constexpr std::size_t kSuffixLen = 9;
  if (name.size() > kSuffixLen &&
      name.compare(name.size() - kSuffixLen, kSuffixLen, kSuffix) == 0)
    return std::make_unique<FallbackPolicy>(
        make_policy(name.substr(0, name.size() - kSuffixLen)));
  if (name == "LEIME") return std::make_unique<LeimePolicy>();
  if (name == "LEIME-balance") return std::make_unique<BalancePolicy>();
  if (name == "D-only") return std::make_unique<DeviceOnlyPolicy>();
  if (name == "E-only") return std::make_unique<EdgeOnlyPolicy>();
  if (name == "cap_based") return std::make_unique<CapabilityPolicy>();
  throw std::invalid_argument("make_policy: unknown policy '" + name + "'");
}

}  // namespace leime::core
