// Exit-setting search: exhaustive baseline (problem P0, eq. 4) and the
// paper's branch-and-bound algorithm (§III-C, Theorems 1-2).
//
// The branch-and-bound search exploits Theorem 1: with monotone cumulative
// exit rates, a First-exit candidate i1 that is both shallower and no worse
// on the two-exit cost T({exit_i, exit_m, -}) dominates i2 for every choice
// of Second-exit. Hence only the strictly-improving prefix minima of the
// two-exit cost (found right-to-left through a shrinking upper bound) need
// their Second-exit scanned, giving O(m ln m) comparisons on average
// (Theorem 2) versus O(m^2) for the exhaustive scan.
#pragma once

#include <cstddef>

#include "core/cost_model.h"

namespace leime::core {

/// Result of an exit-setting search. `evaluations` counts cost-function
/// evaluations (the unit of Theorem 2's complexity claim); `rounds` is the
/// number of branch-and-bound iterations (1 for the exhaustive search).
struct ExitSettingResult {
  ExitCombo combo;
  double cost = 0.0;
  std::size_t evaluations = 0;
  std::size_t rounds = 0;
};

/// The deterministic total order every exit-setting search minimises:
/// lower cost wins; exact cost ties break lexicographically on (e1, e2).
/// Keeping the tie rule in one predicate means the exhaustive scan, the
/// branch-and-bound search and the policy core's warm-started variant all
/// agree on the *same* combo whenever two exit sets cost exactly the same
/// — which is what lets the differential tests assert strict equality.
inline bool exit_setting_improves(double cost, const ExitCombo& combo,
                                  double best_cost, const ExitCombo& best) {
  if (cost != best_cost) return cost < best_cost;
  if (combo.e1 != best.e1) return combo.e1 < best.e1;
  return combo.e2 < best.e2;
}

/// Scans all (e1, e2) pairs; O(m^2). Ground truth for tests and the
/// comparison baseline in the complexity bench. Cost ties resolve to the
/// lexicographically smallest (e1, e2) per exit_setting_improves.
ExitSettingResult exhaustive_exit_setting(const CostModel& model);

/// The paper's branch-and-bound search. Optimal whenever the profile's
/// cumulative exit rates are monotone non-decreasing in depth (enforced by
/// ModelProfile), per Theorem 1. Returns the same combo as the exhaustive
/// scan even on exact cost ties: both minimise exit_setting_improves's
/// total order, and any combo Theorem 1 prunes at the optimal cost has a
/// visited dominator with the same cost and a strictly smaller e1.
ExitSettingResult branch_and_bound_exit_setting(const CostModel& model);

}  // namespace leime::core
