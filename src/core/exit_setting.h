// Exit-setting search: exhaustive baseline (problem P0, eq. 4) and the
// paper's branch-and-bound algorithm (§III-C, Theorems 1-2).
//
// The branch-and-bound search exploits Theorem 1: with monotone cumulative
// exit rates, a First-exit candidate i1 that is both shallower and no worse
// on the two-exit cost T({exit_i, exit_m, -}) dominates i2 for every choice
// of Second-exit. Hence only the strictly-improving prefix minima of the
// two-exit cost (found right-to-left through a shrinking upper bound) need
// their Second-exit scanned, giving O(m ln m) comparisons on average
// (Theorem 2) versus O(m^2) for the exhaustive scan.
#pragma once

#include <cstddef>

#include "core/cost_model.h"

namespace leime::core {

/// Result of an exit-setting search. `evaluations` counts cost-function
/// evaluations (the unit of Theorem 2's complexity claim); `rounds` is the
/// number of branch-and-bound iterations (1 for the exhaustive search).
struct ExitSettingResult {
  ExitCombo combo;
  double cost = 0.0;
  std::size_t evaluations = 0;
  std::size_t rounds = 0;
};

/// Scans all (e1, e2) pairs; O(m^2). Ground truth for tests and the
/// comparison baseline in the complexity bench.
ExitSettingResult exhaustive_exit_setting(const CostModel& model);

/// The paper's branch-and-bound search. Optimal whenever the profile's
/// cumulative exit rates are monotone non-decreasing in depth (enforced by
/// ModelProfile), per Theorem 1.
ExitSettingResult branch_and_bound_exit_setting(const CostModel& model);

}  // namespace leime::core
