#include "baselines/exit_baselines.h"

#include <limits>
#include <stdexcept>

#include "core/exit_setting.h"

namespace leime::baselines {

namespace {

void require_min_units(const models::ModelProfile& profile) {
  if (profile.num_units() < 3)
    throw std::invalid_argument("exit baseline: need at least 3 units");
}

/// Picks argmax of `score` over [lo, hi] (1-indexed, inclusive).
template <typename ScoreFn>
int argmax_exit(const models::ModelProfile& profile, int lo, int hi,
                ScoreFn score) {
  int best = lo;
  double best_score = -std::numeric_limits<double>::infinity();
  for (int i = lo; i <= hi; ++i) {
    const double s = score(profile, i);
    if (s > best_score) {
      best_score = s;
      best = i;
    }
  }
  return best;
}

}  // namespace

core::ExitCombo ddnn_exit_setting(const models::ModelProfile& profile) {
  require_min_units(profile);
  const int m = profile.num_units();
  auto score = [](const models::ModelProfile& p, int i) {
    return p.exit(i).exit_rate / p.out_bytes_after(i);
  };
  const int e1 = argmax_exit(profile, 1, m - 2, score);
  const int e2 = argmax_exit(profile, e1 + 1, m - 1, score);
  return {e1, e2, m};
}

core::ExitCombo edgent_exit_setting(const models::ModelProfile& profile) {
  require_min_units(profile);
  const int m = profile.num_units();
  auto score = [](const models::ModelProfile& p, int i) {
    return -p.out_bytes_after(i);
  };
  const int e1 = argmax_exit(profile, 1, m - 2, score);
  const int e2 = argmax_exit(profile, e1 + 1, m - 1, score);
  return {e1, e2, m};
}

core::ExitCombo min_comp_exit_setting(const models::ModelProfile& profile) {
  require_min_units(profile);
  return {1, 2, profile.num_units()};
}

core::ExitCombo min_tran_exit_setting(const models::ModelProfile& profile) {
  require_min_units(profile);
  const int m = profile.num_units();
  core::ExitCombo best{1, 2, m};
  double best_bytes = std::numeric_limits<double>::infinity();
  for (int e1 = 1; e1 <= m - 2; ++e1) {
    for (int e2 = e1 + 1; e2 <= m - 1; ++e2) {
      const double bytes =
          (1.0 - profile.exit(e1).exit_rate) * profile.out_bytes_after(e1) +
          (1.0 - profile.exit(e2).exit_rate) * profile.out_bytes_after(e2);
      if (bytes < best_bytes) {
        best_bytes = bytes;
        best = {e1, e2, m};
      }
    }
  }
  return best;
}

core::ExitCombo mean_exit_setting(const models::ModelProfile& profile) {
  require_min_units(profile);
  const int m = profile.num_units();
  int e1 = m / 3;
  int e2 = (2 * m) / 3;
  e1 = std::max(1, std::min(e1, m - 2));
  e2 = std::max(e1 + 1, std::min(e2, m - 1));
  return {e1, e2, m};
}

NeurosurgeonPartition neurosurgeon_native_partition(
    const core::CostModel& cost_model) {
  const int m = cost_model.num_exits();
  NeurosurgeonPartition best;
  best.latency = std::numeric_limits<double>::infinity();
  for (int r1 = 0; r1 <= m; ++r1) {
    for (int r2 = r1; r2 <= m; ++r2) {
      const double t = cost_model.no_exit_tct(r1, r2);
      if (t < best.latency) {
        best = {r1, r2, t};
      }
    }
  }
  return best;
}

std::string to_string(ExitStrategy strategy) {
  switch (strategy) {
    case ExitStrategy::kLeime: return "LEIME";
    case ExitStrategy::kDdnn: return "DDNN";
    case ExitStrategy::kEdgent: return "Edgent";
    case ExitStrategy::kMinComp: return "min_comp";
    case ExitStrategy::kMinTran: return "min_tran";
    case ExitStrategy::kMean: return "mean";
  }
  throw std::invalid_argument("to_string: unknown ExitStrategy");
}

core::ExitCombo select_exits(ExitStrategy strategy,
                             const core::CostModel& cost_model) {
  const auto& profile = cost_model.profile();
  switch (strategy) {
    case ExitStrategy::kLeime:
      return core::branch_and_bound_exit_setting(cost_model).combo;
    case ExitStrategy::kDdnn: return ddnn_exit_setting(profile);
    case ExitStrategy::kEdgent: return edgent_exit_setting(profile);
    case ExitStrategy::kMinComp: return min_comp_exit_setting(profile);
    case ExitStrategy::kMinTran: return min_tran_exit_setting(profile);
    case ExitStrategy::kMean: return mean_exit_setting(profile);
  }
  throw std::invalid_argument("select_exits: unknown ExitStrategy");
}

core::ExitCombo select_exits(ExitStrategy strategy,
                             const core::CostModel& cost_model,
                             policy::Engine& engine,
                             policy::Incumbent* incumbent) {
  if (strategy == ExitStrategy::kLeime)
    return engine.exit_setting(cost_model, incumbent).combo;
  return select_exits(strategy, cost_model);
}

}  // namespace leime::baselines
