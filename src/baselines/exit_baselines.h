// Exit-setting baselines from the paper's evaluation:
//   DDNN (§IV-A (1))  — exits where intermediate data is small AND exit
//                       probability is high (score = σ_i / d_i);
//   Edgent (§IV-A (3)) — exits where intermediate data is smallest;
//   Neurosurgeon (§IV-A (2)) — no early exits; partition points copied from
//                       LEIME (build via core::make_no_exit_partition);
//   min_comp / min_tran / mean (Fig. 10a) — minimise pre-exit computation,
//                       minimise expected transmitted bytes, and evenly
//                       spaced exits.
#pragma once

#include <string>
#include <vector>

#include "core/cost_model.h"
#include "models/profile.h"
#include "policy/engine.h"

namespace leime::baselines {

/// DDNN heuristic: e1 maximises σ_i/d_i over [1, m-2]; e2 maximises it over
/// (e1, m-1].
core::ExitCombo ddnn_exit_setting(const models::ModelProfile& profile);

/// Edgent heuristic: e1 has the smallest intermediate tensor in [1, m-2];
/// e2 the smallest in (e1, m-1].
core::ExitCombo edgent_exit_setting(const models::ModelProfile& profile);

/// Minimal computation before exits: e1 = 1, e2 = 2.
core::ExitCombo min_comp_exit_setting(const models::ModelProfile& profile);

/// Minimises the expected transmitted bytes
/// (1-σ_e1)·d_e1 + (1-σ_e2)·d_e2 over all pairs.
core::ExitCombo min_tran_exit_setting(const models::ModelProfile& profile);

/// Evenly spaced: e1 ≈ m/3, e2 ≈ 2m/3.
core::ExitCombo mean_exit_setting(const models::ModelProfile& profile);

/// Neurosurgeon's *native* optimizer (Kang et al., ASPLOS'17): the
/// no-early-exit partition (r1, r2) minimising end-to-end latency under the
/// cost model. The paper instead pins Neurosurgeon to LEIME's cut points
/// (§IV-A); both variants are available — the benches use the paper's.
struct NeurosurgeonPartition {
  int r1 = 0;  ///< last unit on the device (0 = none)
  int r2 = 0;  ///< last unit on the edge (m = no cloud tier)
  double latency = 0.0;
};
NeurosurgeonPartition neurosurgeon_native_partition(
    const core::CostModel& cost_model);

enum class ExitStrategy {
  kLeime,    ///< branch-and-bound on the cost model
  kDdnn,
  kEdgent,
  kMinComp,
  kMinTran,
  kMean,
};

std::string to_string(ExitStrategy strategy);

/// Unified selector; kLeime requires the cost model's environment, the
/// heuristics ignore it.
core::ExitCombo select_exits(ExitStrategy strategy,
                             const core::CostModel& cost_model);

/// Engine-routed selector for callers that sweep many environments: kLeime
/// goes through `engine` (memo cache / warm start via `incumbent` when the
/// engine's knobs enable them; identical result either way), the heuristics
/// are unchanged.
core::ExitCombo select_exits(ExitStrategy strategy,
                             const core::CostModel& cost_model,
                             policy::Engine& engine,
                             policy::Incumbent* incumbent = nullptr);

}  // namespace leime::baselines
