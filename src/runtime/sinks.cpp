#include "runtime/sinks.h"

#include <fstream>
#include <limits>
#include <sstream>
#include <stdexcept>

#include "prof/profiler.h"
#include "util/csv.h"

namespace leime::runtime {

namespace {

// Shortest round-trip representation so equal doubles always serialize to
// equal bytes (the determinism contract of the JSONL sink).
std::string num(double v) {
  std::ostringstream os;
  os.precision(std::numeric_limits<double>::max_digits10);
  os << v;
  return os.str();
}

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default: out += c;
    }
  }
  return out;
}

void check_widths(const std::vector<std::string>& axis_names,
                  const std::vector<RunRecord>& records) {
  for (const auto& rec : records)
    if (rec.labels.size() != axis_names.size())
      throw std::invalid_argument(
          "runtime sinks: record label count does not match axis names");
}

std::ofstream open_or_throw(const std::string& path) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("runtime sinks: cannot open " + path);
  return out;
}

/// Flush + close + fsync; throws on any failure so a full disk or revoked
/// mount is reported instead of silently truncating the output.
void close_or_throw(std::ofstream& out, const std::string& path) {
  out.flush();
  const bool ok = out.good();
  out.close();
  if (!ok || out.fail())
    throw std::runtime_error("runtime sinks: write error on " + path);
  if (!util::fsync_path(path))
    throw std::runtime_error("runtime sinks: fsync failed for " + path);
}

/// Inline metrics object for a JSONL record: counters and gauges by name,
/// histograms as summary objects. Only called for non-empty snapshots so
/// disabled runs keep their exact pre-observability bytes.
void metrics_to_json(const obs::Snapshot& snap, std::ostream& out) {
  out << "{\"counters\":{";
  bool first = true;
  for (const auto& c : snap.counters) {
    if (!first) out << ",";
    first = false;
    out << "\"" << json_escape(c.name) << "\":" << c.value;
  }
  out << "},\"gauges\":{";
  first = true;
  for (const auto& g : snap.gauges) {
    if (!first) out << ",";
    first = false;
    out << "\"" << json_escape(g.name) << "\":" << num(g.value);
  }
  out << "},\"histograms\":{";
  first = true;
  for (const auto& h : snap.histograms) {
    if (!first) out << ",";
    first = false;
    out << "\"" << json_escape(h.name) << "\":{\"count\":" << h.stats.count()
        << ",\"sum\":" << num(h.stats.sum())
        << ",\"min\":" << num(h.stats.min())
        << ",\"max\":" << num(h.stats.max()) << ",\"p50\":" << num(h.p50)
        << ",\"p95\":" << num(h.p95) << ",\"p99\":" << num(h.p99) << "}";
  }
  out << "}}";
}

}  // namespace

void write_csv(const std::string& path,
               const std::vector<std::string>& axis_names,
               const std::vector<RunRecord>& records) {
  LEIME_PROF_SCOPE("leime.runtime.sink.csv");
  check_widths(axis_names, records);
  std::vector<std::string> header = axis_names;
  for (const char* col :
       {"replication", "seed", "mean_tct", "stddev_tct", "p50_tct", "p95_tct",
        "p99_tct", "generated", "completed", "exit1_frac", "exit2_frac",
        "exit3_frac", "mean_offload_ratio", "total_completed", "in_flight",
        "failed_over", "retries", "fallback_slots", "start_s", "end_s",
        "worker"})
    header.push_back(col);
  util::CsvWriter csv(path, header);
  for (const auto& rec : records) {
    std::vector<std::string> row = rec.labels;
    row.push_back(std::to_string(rec.replication));
    row.push_back(std::to_string(rec.seed));
    for (double v : {rec.result.tct.mean, rec.result.tct.stddev,
                     rec.result.tct.p50, rec.result.tct.p95,
                     rec.result.tct.p99})
      row.push_back(num(v));
    row.push_back(std::to_string(rec.result.generated));
    row.push_back(std::to_string(rec.result.completed));
    for (double v : {rec.result.exit1_fraction, rec.result.exit2_fraction,
                     rec.result.exit3_fraction, rec.result.mean_offload_ratio})
      row.push_back(num(v));
    for (std::size_t v :
         {rec.result.total_completed, rec.result.in_flight,
          rec.result.faults.failed_over, rec.result.faults.retries,
          rec.result.faults.fallback_slots})
      row.push_back(std::to_string(v));
    row.push_back(num(rec.start_s));
    row.push_back(num(rec.end_s));
    row.push_back(std::to_string(rec.worker));
    csv.add_row(row);
  }
  csv.close();  // flush + fsync; throws rather than dropping rows
}

void write_jsonl(std::ostream& out, const std::vector<std::string>& axis_names,
                 const std::vector<RunRecord>& records,
                 const JsonlOptions& opts) {
  check_widths(axis_names, records);
  for (const auto& rec : records) {
    out << "{\"cell\":" << rec.cell_index;
    for (std::size_t a = 0; a < axis_names.size(); ++a)
      out << ",\"" << json_escape(axis_names[a]) << "\":\""
          << json_escape(rec.labels[a]) << "\"";
    out << ",\"replication\":" << rec.replication << ",\"seed\":" << rec.seed
        << ",\"mean_tct\":" << num(rec.result.tct.mean)
        << ",\"stddev_tct\":" << num(rec.result.tct.stddev)
        << ",\"p50_tct\":" << num(rec.result.tct.p50)
        << ",\"p95_tct\":" << num(rec.result.tct.p95)
        << ",\"p99_tct\":" << num(rec.result.tct.p99)
        << ",\"generated\":" << rec.result.generated
        << ",\"completed\":" << rec.result.completed
        << ",\"exit_fracs\":[" << num(rec.result.exit1_fraction) << ","
        << num(rec.result.exit2_fraction) << ","
        << num(rec.result.exit3_fraction) << "]"
        << ",\"mean_offload_ratio\":" << num(rec.result.mean_offload_ratio)
        << ",\"total_completed\":" << rec.result.total_completed
        << ",\"in_flight\":" << rec.result.in_flight;
    const auto& f = rec.result.faults;
    out << ",\"faults\":{\"link_outages\":" << f.link_outages
        << ",\"edge_crashes\":" << f.edge_crashes
        << ",\"churn_events\":" << f.churn_events
        << ",\"failed_over\":" << f.failed_over
        << ",\"retries\":" << f.retries
        << ",\"local_fallbacks\":" << f.local_fallbacks
        << ",\"fallback_slots\":" << f.fallback_slots
        << ",\"parked\":" << f.parked << "}";
    // Emitted only in topology mode so flat-link runs keep their exact
    // pre-fabric bytes (the golden-JSONL contract).
    if (rec.result.net.active) {
      const auto& nstat = rec.result.net;
      out << ",\"net\":{\"transfers\":" << nstat.transfers
          << ",\"delivered\":" << nstat.delivered
          << ",\"hops\":" << nstat.hops << ",\"drops\":" << nstat.drops
          << ",\"bytes\":" << num(nstat.bytes)
          << ",\"max_backlog_bytes\":" << num(nstat.max_backlog_bytes) << "}";
    }
    if (!rec.result.metrics.empty()) {
      out << ",\"metrics\":";
      metrics_to_json(rec.result.metrics, out);
    }
    // Attribution/SLO blocks only when those pillars ran, so runs with
    // them disabled keep their exact prior bytes.
    if (rec.result.attribution.active) {
      out << ",\"attribution\":";
      rec.result.attribution.to_json(out);
    }
    if (rec.result.slo.active) {
      out << ",\"slo\":";
      rec.result.slo.to_json(out);
    }
    if (rec.result.provenance.active) {
      out << ",\"provenance\":";
      rec.result.provenance.to_json(out);
    }
    if (opts.include_timing)
      out << ",\"start_s\":" << num(rec.start_s)
          << ",\"end_s\":" << num(rec.end_s) << ",\"worker\":" << rec.worker;
    out << "}\n";
    if (!out.good())
      throw std::runtime_error("runtime sinks: JSONL stream write error");
  }
}

void write_jsonl_file(const std::string& path,
                      const std::vector<std::string>& axis_names,
                      const std::vector<RunRecord>& records,
                      const JsonlOptions& opts) {
  LEIME_PROF_SCOPE("leime.runtime.sink.jsonl");
  auto out = open_or_throw(path);
  write_jsonl(out, axis_names, records, opts);
  close_or_throw(out, path);
}

void write_chrome_trace(const std::string& path,
                        const std::vector<RunRecord>& records) {
  LEIME_PROF_SCOPE("leime.runtime.sink.chrome_trace");
  auto out = open_or_throw(path);
  out << "{\"traceEvents\":[";
  bool first = true;
  for (const auto& rec : records) {
    if (!first) out << ",";
    first = false;
    std::string name = "cell " + std::to_string(rec.cell_index);
    for (const auto& label : rec.labels) name += " " + label;
    out << "\n{\"name\":\"" << json_escape(name)
        << "\",\"ph\":\"X\",\"pid\":0,\"tid\":" << rec.worker
        << ",\"ts\":" << num(rec.start_s * 1e6)
        << ",\"dur\":" << num((rec.end_s - rec.start_s) * 1e6)
        << ",\"args\":{\"seed\":" << rec.seed
        << ",\"replication\":" << rec.replication
        << ",\"mean_tct\":" << num(rec.result.tct.mean) << "}}";
  }
  out << "\n]}\n";
  close_or_throw(out, path);
}

obs::Snapshot merged_metrics(const std::vector<RunRecord>& records) {
  obs::Snapshot merged;
  for (const auto& rec : records)
    if (!rec.result.metrics.empty()) merged.merge(rec.result.metrics);
  return merged;
}

void write_metrics_prometheus(const std::string& path,
                              const std::vector<RunRecord>& records) {
  LEIME_PROF_SCOPE("leime.runtime.sink.prometheus");
  obs::write_prometheus_file(path, merged_metrics(records));
}

}  // namespace leime::runtime
