// Work items and results of the parallel experiment-execution engine.
//
// A Cell is one fully materialized simulator run (grid coordinates +
// replication + derived seed + config); a RunRecord is its outcome plus
// execution telemetry. Records are collected in plan order regardless of
// which worker thread ran which cell, so a result set is a deterministic
// function of the plan alone — timing fields are the only nondeterministic
// part, and every sink can exclude them.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sim/scenario.h"

namespace leime::runtime {

/// One grid cell of an ExperimentPlan, ready to run.
struct Cell {
  std::size_t index = 0;            ///< ordinal in row-major plan expansion
  std::vector<std::string> labels;  ///< one coordinate label per axis
  int replication = 0;              ///< 0-based replication number
  sim::ScenarioConfig config;       ///< seed already applied
};

/// Outcome of one cell.
struct RunRecord {
  std::size_t cell_index = 0;
  std::vector<std::string> labels;
  int replication = 0;
  std::uint64_t seed = 0;
  sim::SimResult result;

  // Execution telemetry (nondeterministic; excluded from determinism
  // comparisons and optional in the JSONL sink).
  double start_s = 0.0;  ///< wall-clock offset from executor start
  double end_s = 0.0;
  int worker = -1;       ///< pool thread that ran the cell
};

}  // namespace leime::runtime
