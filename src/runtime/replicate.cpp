// sim::run_replicated, rebuilt on the runtime executor. Lives in
// leime_runtime (not leime_sim) so the sim library does not need to link
// back against the engine that drives it.
#include "sim/experiment.h"

#include <stdexcept>

#include "runtime/executor.h"
#include "runtime/experiment_plan.h"
#include "util/stats.h"

namespace leime::sim {

ReplicatedResult run_replicated(const ScenarioConfig& config,
                                int replications, std::uint64_t base_seed,
                                const ReplicateOptions& opts) {
  if (replications < 1)
    throw std::invalid_argument("run_replicated: need >= 1 replication");

  runtime::ExperimentPlan plan(config);
  plan.replications(replications)
      .base_seed(base_seed)
      .seed_mode(opts.legacy_seeds ? runtime::SeedMode::kLegacyArithmetic
                                   : runtime::SeedMode::kSplit);
  runtime::ExecutorOptions exec_opts;
  exec_opts.threads = opts.threads;
  const auto records = runtime::Executor(exec_opts).run(plan);

  ReplicatedResult out;
  util::RunningStats means, p95s;
  for (const auto& rec : records) {
    means.add(rec.result.tct.mean);
    p95s.add(rec.result.tct.p95);
    out.per_run_mean.push_back(rec.result.tct.mean);
    out.per_run_seed.push_back(rec.seed);
  }
  out.mean_tct = means.mean();
  out.stddev_tct = means.stddev();
  out.mean_p95 = p95s.mean();
  out.runs = records.size();
  return out;
}

}  // namespace leime::sim
