#include "runtime/executor.h"

#include <atomic>
#include <exception>
#include <iostream>
#include <mutex>
#include <thread>

#include "prof/profiler.h"
#include "sim/simulation.h"
#include "util/clock.h"
#include "util/table.h"

namespace leime::runtime {

using util::seconds_since;

int Executor::resolve_threads(int requested) {
  if (requested > 0) return requested;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

std::vector<RunRecord> Executor::run(const ExperimentPlan& plan) const {
  return run(plan.expand());
}

std::vector<RunRecord> Executor::run(std::vector<Cell> cells) const {
  const std::size_t total = cells.size();
  std::vector<RunRecord> records(total);
  const int threads = resolve_threads(opts_.threads);
  const auto t0 = util::WallClock::now();

  std::atomic<std::size_t> next{0};
  std::atomic<std::size_t> done{0};
  std::mutex report_mu;
  std::exception_ptr first_error;

  // Per-worker metric shards: workers never share an instrument, and the
  // shards fold into opts_.metrics in worker order after the join.
  const int max_workers = std::max(1, std::min<int>(threads, static_cast<int>(
                                                                 total)));
  std::vector<obs::MetricsRegistry> shards(
      opts_.metrics ? static_cast<std::size_t>(max_workers) : 0);

  // Each worker claims cells off the shared counter and writes its record
  // into the cell's own slot, so collection order never depends on the
  // schedule and no two threads touch the same element.
  auto worker_fn = [&](int worker_id) {
    LEIME_PROF_SCOPE("leime.runtime.worker");
    obs::MetricsRegistry* shard =
        shards.empty() ? nullptr
                       : &shards[static_cast<std::size_t>(worker_id)];
    for (;;) {
      const std::size_t i = next.fetch_add(1);
      if (i >= total) return;
      Cell& cell = cells[i];
      RunRecord rec;
      rec.cell_index = cell.index;
      rec.labels = std::move(cell.labels);
      rec.replication = cell.replication;
      rec.seed = cell.config.seed;
      rec.worker = worker_id;
      rec.start_s = seconds_since(t0);
      // Nested thread budgeting: a sharded cell in auto mode (threads ==
      // 0) would resolve to hardware_concurrency on its own, so N
      // executor workers each spawning that many shard threads
      // oversubscribes the host N-fold. Split the budget instead —
      // explicit [shards] thread counts are honored as-is, and the
      // resolved count can never change results, only wall time.
      if (cell.config.shards.enabled() && cell.config.shards.threads == 0)
        cell.config.shards.threads =
            std::max(1, resolve_threads(0) / max_workers);
      try {
        LEIME_PROF_SCOPE("leime.runtime.cell");
        rec.result = sim::run_scenario(cell.config);
      } catch (...) {
        if (shard)
          shard->counter("leime_runtime_cell_errors_total",
                         "cells aborted by an exception")
              .inc();
        std::lock_guard<std::mutex> lock(report_mu);
        if (!first_error) first_error = std::current_exception();
        next.store(total);  // drain the queue so the pool winds down
        return;
      }
      rec.end_s = seconds_since(t0);
      if (shard) {
        // Wall-clock phase timer for the cell's simulate phase.
        shard->counter("leime_runtime_cells_total", "cells executed").inc();
        shard
            ->histogram("leime_runtime_cell_wall_seconds",
                        "wall-clock seconds per cell (simulate phase)",
                        obs::HistogramOptions{1e-4, 1e3, 42})
            .observe(rec.end_s - rec.start_s);
      }
      records[i] = std::move(rec);

      const std::size_t finished = done.fetch_add(1) + 1;
      if (opts_.on_cell_done || opts_.progress) {
        std::lock_guard<std::mutex> lock(report_mu);
        if (opts_.on_cell_done) opts_.on_cell_done(finished, total);
        if (opts_.progress) {
          std::cerr << "\r[runtime] " << finished << "/" << total
                    << " cells, " << threads << " thread"
                    << (threads == 1 ? "" : "s") << ", "
                    << util::fmt(seconds_since(t0), 1) << " s" << std::flush;
          if (finished == total) std::cerr << "\n";
        }
      }
    }
  };

  if (threads <= 1 || total <= 1) {
    worker_fn(0);
  } else {
    std::vector<std::thread> pool;
    const int n = std::min<int>(threads, static_cast<int>(total));
    pool.reserve(static_cast<std::size_t>(n));
    for (int w = 0; w < n; ++w) pool.emplace_back(worker_fn, w);
    for (auto& t : pool) t.join();
  }

  last_wall_s_ = seconds_since(t0);
  if (opts_.metrics) {
    for (auto& shard : shards) opts_.metrics->absorb(shard.snapshot());
    opts_.metrics
        ->gauge("leime_runtime_wall_seconds",
                "wall-clock seconds of the last executor run")
        .set(last_wall_s_);
  }
  if (first_error) std::rethrow_exception(first_error);
  return records;
}

}  // namespace leime::runtime
