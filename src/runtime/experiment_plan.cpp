#include "runtime/experiment_plan.h"

#include <stdexcept>

#include "util/rng.h"
#include "util/table.h"

namespace leime::runtime {

ExperimentPlan& ExperimentPlan::add_axis(std::string name,
                                         std::vector<AxisValue> values) {
  if (values.empty())
    throw std::invalid_argument("ExperimentPlan: axis '" + name +
                                "' has no values");
  axes_.push_back({std::move(name), std::move(values)});
  return *this;
}

ExperimentPlan& ExperimentPlan::add_axis(
    std::string name, const std::vector<double>& values,
    const std::function<void(sim::ScenarioConfig&, double)>& set) {
  std::vector<AxisValue> points;
  points.reserve(values.size());
  for (double v : values)
    points.push_back(
        {util::fmt(v, v == static_cast<std::int64_t>(v) ? 0 : 3),
         [set, v](sim::ScenarioConfig& cfg) { set(cfg, v); }});
  return add_axis(std::move(name), std::move(points));
}

ExperimentPlan& ExperimentPlan::replications(int n) {
  if (n < 1)
    throw std::invalid_argument("ExperimentPlan: replications must be >= 1");
  replications_ = n;
  return *this;
}

ExperimentPlan& ExperimentPlan::base_seed(std::uint64_t seed) {
  base_seed_ = seed;
  return *this;
}

ExperimentPlan& ExperimentPlan::seed_mode(SeedMode mode) {
  seed_mode_ = mode;
  return *this;
}

std::vector<std::string> ExperimentPlan::axis_names() const {
  std::vector<std::string> names;
  names.reserve(axes_.size());
  for (const auto& axis : axes_) names.push_back(axis.name);
  return names;
}

std::size_t ExperimentPlan::num_cells() const {
  std::size_t n = static_cast<std::size_t>(replications_);
  for (const auto& axis : axes_) n *= axis.values.size();
  return n;
}

std::vector<Cell> ExperimentPlan::expand() const {
  std::vector<Cell> cells;
  cells.reserve(num_cells());
  // Odometer over axis indices; replication cycles innermost.
  std::vector<std::size_t> at(axes_.size(), 0);
  const std::size_t total = num_cells();
  for (std::size_t index = 0; index < total; ++index) {
    const int rep =
        static_cast<int>(index % static_cast<std::size_t>(replications_));
    Cell cell;
    cell.index = index;
    cell.replication = rep;
    cell.config = base_;
    for (std::size_t a = 0; a < axes_.size(); ++a) {
      const auto& value = axes_[a].values[at[a]];
      cell.labels.push_back(value.label);
      value.apply(cell.config);
    }
    cell.config.seed =
        seed_mode_ == SeedMode::kSplit
            ? util::Rng::derive_seed(base_seed_, index)
            : base_seed_ + static_cast<std::uint64_t>(cell.replication);
    cells.push_back(std::move(cell));

    // Advance: replication first, then axes from the innermost (last).
    if (rep + 1 < replications_) continue;
    for (std::size_t a = axes_.size(); a-- > 0;) {
      if (++at[a] < axes_[a].values.size()) break;
      at[a] = 0;
    }
  }
  return cells;
}

}  // namespace leime::runtime
