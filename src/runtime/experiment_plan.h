// Declarative parameter grids over ScenarioConfig.
//
// An ExperimentPlan is a base scenario plus named axes; expansion takes the
// cross product of all axis values, times `replications`, and yields one
// Cell per combination in row-major order (first axis slowest, replication
// innermost). Each cell gets an independent seed derived with
// util::Rng::derive_seed(base_seed, cell_index), so the result set is a
// pure function of the plan — no matter how many executor threads run it.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "runtime/run_record.h"
#include "sim/scenario.h"

namespace leime::runtime {

/// How per-cell seeds are derived from the plan's base seed.
enum class SeedMode {
  /// seed = Rng::derive_seed(base_seed, cell_index): splitmix64-mixed
  /// substreams, collision-free across cells and neighbouring bases.
  kSplit,
  /// seed = base_seed + replication: the pre-runtime `sim::run_replicated`
  /// convention, kept for replaying seed-numbered results from existing
  /// benches. Cells that share a replication number share a seed.
  kLegacyArithmetic,
};

/// One point on an axis: a printable label plus the config mutation.
struct AxisValue {
  std::string label;
  std::function<void(sim::ScenarioConfig&)> apply;
};

struct Axis {
  std::string name;
  std::vector<AxisValue> values;
};

class ExperimentPlan {
 public:
  explicit ExperimentPlan(sim::ScenarioConfig base) : base_(std::move(base)) {}

  /// Adds an axis; throws std::invalid_argument if `values` is empty.
  ExperimentPlan& add_axis(std::string name, std::vector<AxisValue> values);

  /// Numeric-axis convenience: labels are fmt'd values, `set` applies each.
  ExperimentPlan& add_axis(
      std::string name, const std::vector<double>& values,
      const std::function<void(sim::ScenarioConfig&, double)>& set);

  /// Number of seeded repeats of every grid point; must be >= 1.
  ExperimentPlan& replications(int n);
  ExperimentPlan& base_seed(std::uint64_t seed);
  ExperimentPlan& seed_mode(SeedMode mode);

  const std::vector<Axis>& axes() const { return axes_; }
  std::vector<std::string> axis_names() const;
  int num_replications() const { return replications_; }

  /// Cross product of all axes times replications.
  std::size_t num_cells() const;

  /// Materializes every cell (config mutations and seeds applied),
  /// row-major with replication innermost.
  std::vector<Cell> expand() const;

 private:
  sim::ScenarioConfig base_;
  std::vector<Axis> axes_;
  int replications_ = 1;
  std::uint64_t base_seed_ = 42;
  SeedMode seed_mode_ = SeedMode::kSplit;
};

}  // namespace leime::runtime
