// Structured sinks for collected RunRecords.
//
// Three machine-readable formats plus the executor's live progress line:
//   * CSV   — one row per cell (util::CsvWriter), for pandas/gnuplot;
//   * JSONL — one self-describing JSON object per cell; timing fields are
//             optional so determinism tests can compare outputs byte-wise;
//   * chrome trace — "X" complete events per cell keyed by worker thread,
//             loadable at chrome://tracing or ui.perfetto.dev to inspect
//             pool utilisation and per-cell wall time.
//
// Durability and error reporting: every file-writing sink flushes, fsyncs
// and throws std::runtime_error when any byte could not be written (full
// disk, revoked mount) instead of silently dropping data; the stream
// overload of write_jsonl throws as soon as the stream reports an error.
//
// Records whose SimResult carries a non-empty metrics snapshot (the
// [observability] layer) get a "metrics" object in their JSONL line; for
// disabled runs the emitted bytes are identical to pre-observability
// builds (the golden-output contract). merged_metrics folds the per-cell
// snapshots in record order — a deterministic merge for any executor
// thread count.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "obs/metrics.h"
#include "runtime/run_record.h"

namespace leime::runtime {

/// Columns: one per axis name, then replication, seed, the headline
/// metrics, the conservation/fault counters (total_completed, in_flight,
/// failed_over, retries, fallback_slots), and timing telemetry.
/// `axis_names` must match the records' label widths.
void write_csv(const std::string& path,
               const std::vector<std::string>& axis_names,
               const std::vector<RunRecord>& records);

struct JsonlOptions {
  /// Include start_s/end_s/worker. Off, the stream is a deterministic
  /// function of the plan — identical bytes for any executor thread count.
  bool include_timing = true;
};

void write_jsonl(std::ostream& out, const std::vector<std::string>& axis_names,
                 const std::vector<RunRecord>& records,
                 const JsonlOptions& opts = {});

void write_jsonl_file(const std::string& path,
                      const std::vector<std::string>& axis_names,
                      const std::vector<RunRecord>& records,
                      const JsonlOptions& opts = {});

/// chrome://tracing JSON: one complete ("ph":"X") event per cell, pid 0,
/// tid = worker, ts/dur in microseconds from executor start.
void write_chrome_trace(const std::string& path,
                        const std::vector<RunRecord>& records);

/// Folds every record's metrics snapshot into one, in record order (plan
/// order when the records came from Executor::run — deterministic for any
/// thread count). Records with empty snapshots contribute nothing.
obs::Snapshot merged_metrics(const std::vector<RunRecord>& records);

/// Writes merged_metrics(records) as Prometheus text exposition; throws
/// std::runtime_error on write failure.
void write_metrics_prometheus(const std::string& path,
                              const std::vector<RunRecord>& records);

}  // namespace leime::runtime
