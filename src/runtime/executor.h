// Fixed-size thread pool that runs experiment cells concurrently.
//
// Parallelism is strictly across runs: each DES run stays single-threaded
// and owns its ScenarioConfig, so with per-cell seeds baked into the cells
// the collected result set is bit-for-bit identical for any thread count —
// only the telemetry fields (start/end/worker) reflect the schedule.
#pragma once

#include <functional>
#include <vector>

#include "obs/metrics.h"
#include "runtime/experiment_plan.h"
#include "runtime/run_record.h"

namespace leime::runtime {

struct ExecutorOptions {
  /// Worker threads; <= 0 means std::thread::hardware_concurrency().
  int threads = 1;

  /// Live `[runtime] done/total` progress line on stderr.
  bool progress = false;

  /// Called after each cell completes (under an internal lock, so the
  /// callback needs no synchronisation of its own).
  std::function<void(std::size_t done, std::size_t total)> on_cell_done;

  /// Caller-owned registry for pool telemetry (wall-clock cell timers,
  /// error counts). Each worker updates a private shard; shards merge into
  /// this registry in worker order after the pool joins — the registry is
  /// never touched concurrently. The recorded values are wall-clock and
  /// therefore nondeterministic: keep them out of determinism comparisons
  /// (simulation metrics ride inside each RunRecord instead).
  obs::MetricsRegistry* metrics = nullptr;
};

class Executor {
 public:
  explicit Executor(ExecutorOptions opts = {}) : opts_(std::move(opts)) {}

  /// Runs every cell of the plan; records come back in plan order.
  std::vector<RunRecord> run(const ExperimentPlan& plan) const;

  /// Runs pre-built cells (records ordered as given). Cell configs are
  /// taken as-is — seeds are the caller's responsibility here.
  std::vector<RunRecord> run(std::vector<Cell> cells) const;

  /// Wall-clock seconds spent inside the most recent run() call.
  double last_wall_s() const { return last_wall_s_; }

  /// The thread count a request resolves to on this host.
  static int resolve_threads(int requested);

 private:
  ExecutorOptions opts_;
  mutable double last_wall_s_ = 0.0;
};

}  // namespace leime::runtime
