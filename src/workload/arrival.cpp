#include "workload/arrival.h"

#include <stdexcept>

namespace leime::workload {

PoissonArrivals::PoissonArrivals(double rate) : rate_(rate) {
  if (rate <= 0.0)
    throw std::invalid_argument("PoissonArrivals: rate must be > 0");
}

double PoissonArrivals::next_interarrival(double, util::Rng& rng) {
  return rng.exponential(rate_);
}

PeriodicArrivals::PeriodicArrivals(double interval) : interval_(interval) {
  if (interval <= 0.0)
    throw std::invalid_argument("PeriodicArrivals: interval must be > 0");
}

double PeriodicArrivals::next_interarrival(double, util::Rng&) {
  return interval_;
}

TraceArrivals::TraceArrivals(util::PiecewiseConstant rate_trace)
    : trace_(std::move(rate_trace)) {
  if (trace_.max_value() <= 0.0)
    throw std::invalid_argument("TraceArrivals: trace must reach a rate > 0");
  for (const auto& p : trace_.points())
    if (p.value < 0.0)
      throw std::invalid_argument("TraceArrivals: negative rate");
}

double TraceArrivals::next_interarrival(double now, util::Rng& rng) {
  // Lewis-Shedler thinning against the trace's max rate.
  const double lambda_max = trace_.max_value();
  double t = now;
  for (;;) {
    t += rng.exponential(lambda_max);
    if (rng.uniform() * lambda_max <= trace_.value_at(t)) return t - now;
  }
}

BurstyArrivals::BurstyArrivals(double rate_low, double rate_high,
                               double mean_dwell_low, double mean_dwell_high)
    : rate_low_(rate_low),
      rate_high_(rate_high),
      dwell_low_(mean_dwell_low),
      dwell_high_(mean_dwell_high) {
  if (rate_low <= 0.0 || rate_high <= 0.0 || mean_dwell_low <= 0.0 ||
      mean_dwell_high <= 0.0)
    throw std::invalid_argument("BurstyArrivals: all parameters must be > 0");
}

double BurstyArrivals::rate_at(double) const {
  return high_phase_ ? rate_high_ : rate_low_;
}

double BurstyArrivals::next_interarrival(double now, util::Rng& rng) {
  double t = now;
  for (;;) {
    if (t >= phase_ends_) {
      high_phase_ = !high_phase_;
      phase_ends_ =
          t + rng.exponential(1.0 / (high_phase_ ? dwell_high_ : dwell_low_));
    }
    const double rate = high_phase_ ? rate_high_ : rate_low_;
    const double gap = rng.exponential(rate);
    if (t + gap <= phase_ends_) return t + gap - now;
    t = phase_ends_;  // phase ended before the arrival; resample in new phase
  }
}

UniformSlotArrivals::UniformSlotArrivals(int m_max) : m_max_(m_max) {
  if (m_max < 0)
    throw std::invalid_argument("UniformSlotArrivals: m_max must be >= 0");
}

int UniformSlotArrivals::tasks_in_slot(util::Rng& rng) {
  return static_cast<int>(rng.uniform_int(0, m_max_));
}

PoissonSlotArrivals::PoissonSlotArrivals(double mean) : mean_(mean) {
  if (mean < 0.0)
    throw std::invalid_argument("PoissonSlotArrivals: mean must be >= 0");
}

int PoissonSlotArrivals::tasks_in_slot(util::Rng& rng) {
  return rng.poisson(mean_);
}

}  // namespace leime::workload
