#include "workload/complexity.h"

#include <cmath>
#include <stdexcept>

namespace leime::workload {

ComplexityModel::ComplexityModel(double difficulty) : difficulty_(difficulty) {
  if (difficulty <= 0.0)
    throw std::invalid_argument("ComplexityModel: difficulty must be > 0");
}

double ComplexityModel::sample(util::Rng& rng) const {
  const double raw = rng.uniform();
  if (difficulty_ == 1.0) return raw;
  return std::pow(raw, 1.0 / difficulty_);
}

int exit_for_complexity(const std::vector<double>& cumulative_rates,
                        double u) {
  if (cumulative_rates.empty())
    throw std::invalid_argument("exit_for_complexity: empty rates");
  if (std::abs(cumulative_rates.back() - 1.0) > 1e-9)
    throw std::invalid_argument("exit_for_complexity: final rate must be 1");
  if (u < 0.0 || u >= 1.0)
    throw std::invalid_argument("exit_for_complexity: u outside [0,1)");
  for (std::size_t i = 0; i < cumulative_rates.size(); ++i)
    if (cumulative_rates[i] > u) return static_cast<int>(i) + 1;
  return static_cast<int>(cumulative_rates.size());
}

int block_for_complexity(const core::MeDnnPartition& partition, double u) {
  if (u < 0.0 || u >= 1.0)
    throw std::invalid_argument("block_for_complexity: u outside [0,1)");
  if (u < partition.sigma1) return 1;
  if (u < partition.sigma2) return 2;
  return 3;
}

}  // namespace leime::workload
