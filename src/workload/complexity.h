// Task-complexity model: which exit would a task take?
//
// A task's complexity is a percentile u ∈ [0,1). With calibrated thresholds,
// cumulative exit rates satisfy P(task exits at or before exit_i) = σ_i, so
// a task with complexity u exits at the first exit whose σ_i > u. The
// `difficulty` knob reshapes the complexity distribution (u = raw^(1/γ))
// to emulate easier/harder datasets — the paper's Fig. 3(b) sweep.
#pragma once

#include <vector>

#include "core/partition.h"
#include "util/rng.h"

namespace leime::workload {

class ComplexityModel {
 public:
  /// difficulty == 1: complexities uniform (exit rates match σ exactly);
  /// difficulty > 1: harder tasks (fewer early exits); < 1: easier.
  /// Must be > 0.
  explicit ComplexityModel(double difficulty = 1.0);

  /// Draws a complexity percentile in [0, 1).
  double sample(util::Rng& rng) const;

  double difficulty() const { return difficulty_; }

 private:
  double difficulty_;
};

/// Index (1-based) of the first exit whose cumulative rate exceeds u.
/// `cumulative_rates` must be non-empty with back() == 1.
int exit_for_complexity(const std::vector<double>& cumulative_rates, double u);

/// Which of the three ME-DNN blocks completes a task of complexity u:
/// 1 (device/First-exit), 2 (edge/Second-exit) or 3 (cloud/Third-exit).
int block_for_complexity(const core::MeDnnPartition& partition, double u);

}  // namespace leime::workload
