// Task arrival processes for the discrete-event simulator (continuous time)
// and the slotted analytic simulator (tasks per slot).
#pragma once

#include <memory>
#include <string>

#include "util/rng.h"
#include "util/trace.h"

namespace leime::workload {

/// Continuous-time arrival process. Implementations may be stateful (e.g.
/// the bursty process tracks its modulating phase), so one instance serves
/// exactly one device.
class ArrivalProcess {
 public:
  virtual ~ArrivalProcess() = default;

  /// Seconds from `now` until the next task arrival.
  virtual double next_interarrival(double now, util::Rng& rng) = 0;

  /// Instantaneous expected rate (tasks/s) at time t, for diagnostics and
  /// controller-side arrival estimation.
  virtual double rate_at(double t) const = 0;

  virtual std::string name() const = 0;
};

/// Homogeneous Poisson process.
class PoissonArrivals final : public ArrivalProcess {
 public:
  explicit PoissonArrivals(double rate);
  double next_interarrival(double now, util::Rng& rng) override;
  double rate_at(double) const override { return rate_; }
  std::string name() const override { return "poisson"; }

 private:
  double rate_;
};

/// Deterministic arrivals every `interval` seconds.
class PeriodicArrivals final : public ArrivalProcess {
 public:
  explicit PeriodicArrivals(double interval);
  double next_interarrival(double now, util::Rng& rng) override;
  double rate_at(double) const override { return 1.0 / interval_; }
  std::string name() const override { return "periodic"; }

 private:
  double interval_;
};

/// Non-homogeneous Poisson with a piecewise-constant rate trace, sampled by
/// thinning. Models the paper's "dynamic task arrival rates" (Fig. 9).
class TraceArrivals final : public ArrivalProcess {
 public:
  explicit TraceArrivals(util::PiecewiseConstant rate_trace);
  double next_interarrival(double now, util::Rng& rng) override;
  double rate_at(double t) const override { return trace_.value_at(t); }
  std::string name() const override { return "trace"; }

 private:
  util::PiecewiseConstant trace_;
};

/// Two-phase Markov-modulated Poisson process (bursty traffic): alternates
/// between a low-rate and a high-rate phase with exponentially distributed
/// dwell times.
class BurstyArrivals final : public ArrivalProcess {
 public:
  BurstyArrivals(double rate_low, double rate_high, double mean_dwell_low,
                 double mean_dwell_high);
  double next_interarrival(double now, util::Rng& rng) override;
  double rate_at(double) const override;
  std::string name() const override { return "bursty"; }

 private:
  double rate_low_, rate_high_;
  double dwell_low_, dwell_high_;
  bool high_phase_ = false;
  double phase_ends_ = 0.0;
};

/// Slotted arrival model: number of tasks per slot. The paper's system model
/// draws M_i(t) i.i.d. in [0, M_max] with mean k_i.
class SlotArrivalModel {
 public:
  virtual ~SlotArrivalModel() = default;
  virtual int tasks_in_slot(util::Rng& rng) = 0;
  virtual double mean() const = 0;
};

/// Uniform integer in [0, m_max] (mean m_max/2), the paper's assumption.
class UniformSlotArrivals final : public SlotArrivalModel {
 public:
  explicit UniformSlotArrivals(int m_max);
  int tasks_in_slot(util::Rng& rng) override;
  double mean() const override { return 0.5 * m_max_; }

 private:
  int m_max_;
};

/// Poisson-distributed tasks per slot.
class PoissonSlotArrivals final : public SlotArrivalModel {
 public:
  explicit PoissonSlotArrivals(double mean);
  int tasks_in_slot(util::Rng& rng) override;
  double mean() const override { return mean_; }

 private:
  double mean_;
};

}  // namespace leime::workload
