#include "policy/warm_start.h"

#include <cmath>
#include <limits>
#include <stdexcept>

#include "prof/profiler.h"
#include "util/check.h"

namespace leime::policy {

bool incumbent_compatible(const core::ExitCombo& combo, int num_exits) {
  return 1 <= combo.e1 && combo.e1 < combo.e2 && combo.e2 < combo.e3 &&
         combo.e3 == num_exits;
}

WarmStartOutcome warm_start_branch_and_bound(const core::CostModel& model,
                                             const core::ExitCombo& incumbent,
                                             std::vector<double>& scratch) {
  LEIME_PROF_SCOPE("leime.policy.warm_start_bb");
  if (model.num_exits() < 3)
    throw std::invalid_argument(
        "warm_start_branch_and_bound: need at least 3 candidate exits");
  if (!incumbent_compatible(incumbent, model.num_exits()))
    throw std::invalid_argument(
        "warm_start_branch_and_bound: incumbent invalid for this model");
  const int m = model.num_exits();

  WarmStartOutcome out;
  auto& best = out.result;
  // Seed: the previous slot's incumbent, re-costed under the *current*
  // environment with the same expected_tct the cold search uses, so a
  // winning incumbent carries bit-identical cost.
  best.combo = incumbent;
  best.cost = model.expected_tct(incumbent);
  best.evaluations = 1;

  // Per-call two-exit memo: rounds scan the nested ranges [1, upbound_k],
  // so the cold search re-evaluates the same indices every round; here
  // each index is costed once. NaN marks "not yet evaluated" (two-exit
  // costs are finite by construction: valid environments have positive
  // capacities and bandwidths).
  scratch.assign(static_cast<std::size_t>(m),
                 std::numeric_limits<double>::quiet_NaN());
  const auto two_exit = [&](int i) {
    double& slot = scratch[static_cast<std::size_t>(i - 1)];
    if (std::isnan(slot)) {
      slot = model.two_exit_cost(i);
      ++best.evaluations;
    }
    return slot;
  };

  const auto& profile = model.profile();
  const auto& net = model.environment().net;
  int upbound = m - 2;
  while (upbound >= 1) {
    // Identical round structure to the cold search: i_k is the two-exit
    // argmin over [1, upbound], smallest index on ties.
    int i_k = 1;
    double best_two = std::numeric_limits<double>::infinity();
    for (int i = 1; i <= upbound; ++i) {
      const double c = two_exit(i);
      if (c < best_two) {
        best_two = c;
        i_k = i;
      }
    }
    // Monotone lower bound over the round's Second-exit range: every
    // {i_k, j, m} pays at least the device time plus the miss-weighted
    // transfer and miss-weighted edge compute of units i_k+1..j —
    //   bound(j) = t_d(i_k) + (1-sigma_{i_k}) *
    //              (transfer(i_k) + (prefix(j)-prefix(i_k)) / F_e)
    // — because the exit-head FLOPs and the cloud term are >= 0. bound(j)
    // is non-decreasing in j (prefix FLOPs are cumulative), so the scan
    // can stop at the largest j with bound(j) <= best: everything beyond
    // is *strictly* worse than an already-evaluated combo, hence skipping
    // it cannot drop a cost tie and the tie-broken result is unchanged.
    // The cutoff is found by binary search on the prefix-FLOPs array —
    // O(log m) plain arithmetic, no cost-model evaluations.
    const double transfer =
        profile.out_bytes_after(i_k) / net.dev_edge_bw + net.dev_edge_lat;
    const double miss = 1.0 - profile.exit(i_k).exit_rate;
    const double base = model.device_time(i_k) + miss * transfer;
    ++best.evaluations;
    int j_max = m - 1;
    if (base > best.cost) {
      j_max = i_k;  // even the transfer alone is too expensive
    } else if (miss > 0.0) {
      // Largest j with prefix(j) <= prefix(i_k) + slack * F_e; the edge
      // capacity is positive for any valid environment.
      const double slack = (best.cost - base) / miss;
      const double prefix_limit =
          profile.prefix_flops(i_k) +
          slack * model.environment().caps.edge_flops;
      int lo = i_k + 1, hi = m - 1;
      j_max = i_k;
      while (lo <= hi) {
        const int mid = lo + (hi - lo) / 2;
        if (profile.prefix_flops(mid) <= prefix_limit) {
          j_max = mid;
          lo = mid + 1;
        } else {
          hi = mid - 1;
        }
      }
    }
    if (j_max <= i_k) ++out.pruned_scans;
    for (int j = i_k + 1; j <= j_max; ++j) {
      const core::ExitCombo combo{i_k, j, m};
      const double cost = model.expected_tct(combo);
      ++best.evaluations;
      if (core::exit_setting_improves(cost, combo, best.cost, best.combo)) {
        best.cost = cost;
        best.combo = combo;
      }
    }
    ++best.rounds;
    upbound = i_k - 1;
  }
  LEIME_PROF_COUNT("leime.policy.warm_start_bb.evals", best.evaluations);
  LEIME_PROF_COUNT("leime.policy.warm_start_bb.pruned_scans",
                   static_cast<std::uint64_t>(out.pruned_scans));
  LEIME_CHECK(best.cost < std::numeric_limits<double>::infinity());
  return out;
}

}  // namespace leime::policy
