#include "policy/batch.h"

#include <bit>
#include <cstdint>
#include <unordered_map>

#include "prof/profiler.h"

namespace leime::policy {

namespace {

constexpr std::uint64_t kFnvOffset = 0xcbf29ce484222325ULL;
constexpr std::uint64_t kFnvPrime = 0x00000100000001b3ULL;

std::uint64_t mix(std::uint64_t h, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    h ^= (v >> (8 * i)) & 0xffULL;
    h *= kFnvPrime;
  }
  return h;
}

std::uint64_t bits(double v) { return std::bit_cast<std::uint64_t>(v); }

}  // namespace

bool slot_state_bits_equal(const core::DeviceSlotState& a,
                           const core::DeviceSlotState& b) {
  return a.partition == b.partition &&
         bits(a.device_flops) == bits(b.device_flops) &&
         bits(a.edge_share_flops) == bits(b.edge_share_flops) &&
         bits(a.bandwidth) == bits(b.bandwidth) &&
         bits(a.latency) == bits(b.latency) &&
         bits(a.queue_device) == bits(b.queue_device) &&
         bits(a.queue_edge) == bits(b.queue_edge) &&
         bits(a.arrivals) == bits(b.arrivals) &&
         bits(a.uplink_backlog_bytes) == bits(b.uplink_backlog_bytes) &&
         a.edge_available == b.edge_available &&
         bits(a.config.V) == bits(b.config.V) &&
         bits(a.config.tau) == bits(b.config.tau);
}

std::uint64_t slot_state_hash(const core::DeviceSlotState& s) {
  std::uint64_t h = kFnvOffset;
  h = mix(h, reinterpret_cast<std::uintptr_t>(s.partition));
  h = mix(h, bits(s.device_flops));
  h = mix(h, bits(s.edge_share_flops));
  h = mix(h, bits(s.bandwidth));
  h = mix(h, bits(s.latency));
  h = mix(h, bits(s.queue_device));
  h = mix(h, bits(s.queue_edge));
  h = mix(h, bits(s.arrivals));
  h = mix(h, bits(s.uplink_backlog_bytes));
  h = mix(h, s.edge_available ? 1u : 0u);
  h = mix(h, bits(s.config.V));
  h = mix(h, bits(s.config.tau));
  return h;
}

BatchStats decide_fleet(const core::OffloadPolicy& policy,
                        const std::vector<core::DeviceSlotState>& states,
                        std::vector<double>& out) {
  LEIME_PROF_SCOPE("leime.policy.decide_fleet");
  BatchStats stats;
  out.resize(states.size());
  // hash -> representative indices (chained on exact comparison, so a hash
  // collision costs one extra compare, never a wrong dedup).
  std::unordered_map<std::uint64_t, std::vector<std::size_t>> reps;
  reps.reserve(states.size());
  for (std::size_t i = 0; i < states.size(); ++i) {
    auto& chain = reps[slot_state_hash(states[i])];
    bool found = false;
    for (const std::size_t r : chain) {
      if (slot_state_bits_equal(states[r], states[i])) {
        out[i] = out[r];
        ++stats.reused;
        found = true;
        break;
      }
    }
    if (!found) {
      out[i] = policy.decide(states[i]);
      chain.push_back(i);
      ++stats.groups;
    }
  }
  return stats;
}

}  // namespace leime::policy
