// The policy core: a standalone, thread-safe facade over the exit-setting
// search (§III-C) and the per-slot Lyapunov offload update (§III-D), with
// three opt-in fast paths proven result-identical to the reference
// implementations they shortcut (DESIGN.md §12):
//
//   memo_cache  — exit settings memoized under quantized (model, env)
//                 buckets with an exact-match guard (exit_cache.h);
//   warm_start  — B&B seeded from the previous slot's incumbent
//                 (warm_start.h);
//   batch_eq20  — fleet offload decisions deduplicated across
//                 bit-identical device states (batch.h).
//
// Streaming interface: each control stream — one simulation, one adaptive
// epoch loop, one shard of a future sharded DES — owns an Incumbent and
// feeds (bandwidth, load, sigma-profile) observations in as CostModels /
// DeviceSlotStates; exit sets and offload ratios come out. The Engine owns
// only cross-stream state (the shared memo cache and statistics) and may
// be called from many threads concurrently; with all knobs off every entry
// point degenerates to exactly the core:: reference call, which is why
// sim-facing code routes through the Engine unconditionally.
#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>

#include "core/cost_model.h"
#include "core/exit_setting.h"
#include "obs/metrics.h"
#include "obs/provenance.h"
#include "policy/batch.h"
#include "policy/exit_cache.h"

namespace leime::policy {

/// The `[policy]` INI section. Defaults keep every fast path off — the
/// byte-identical golden configuration.
struct Config {
  bool memo_cache = false;   ///< exit-setting memo cache
  bool warm_start = false;   ///< warm-started B&B
  bool batch_eq20 = false;   ///< batched fleet offload decisions
  std::size_t cache_capacity = 4096;  ///< LRU entries (memo_cache)
  int quant_per_octave = 4;           ///< cache-key buckets per octave

  bool enabled() const { return memo_cache || warm_start || batch_eq20; }

  /// Throws std::invalid_argument on a zero capacity or a per-octave
  /// resolution outside [1, 64].
  void validate() const;
};

/// Per-stream warm-start state: the last exit setting this control stream
/// deployed. One Incumbent per stream/thread — never shared — so result
/// streams stay independent of how many threads hammer the Engine.
struct Incumbent {
  core::ExitCombo combo{};
  bool valid = false;
};

/// Monotone counters, snapshot via Engine::stats(). The counters span the
/// Engine's whole lifetime; per-run views subtract a baseline snapshot via
/// since() so an engine shared across plan rows does not leak one row's
/// work into the next row's metrics.
struct Stats {
  std::uint64_t cache_hits = 0;
  std::uint64_t cache_misses = 0;
  std::uint64_t cache_evictions = 0;
  std::uint64_t warm_starts = 0;        ///< searches seeded from an incumbent
  std::uint64_t warm_pruned_scans = 0;  ///< Second-exit scans skipped
  std::uint64_t cold_starts = 0;        ///< reference B&B invocations
  std::uint64_t batch_groups = 0;       ///< distinct states solved
  std::uint64_t batch_reused = 0;       ///< devices served by a dedup

  /// Field-wise difference (this − baseline): the delta accumulated since
  /// `baseline` was snapshot. Requires baseline <= *this field-wise (both
  /// from the same engine, baseline taken earlier).
  Stats since(const Stats& baseline) const;
};

class Engine {
 public:
  /// Validates the config (Config::validate).
  explicit Engine(Config config = {});

  const Config& config() const { return config_; }

  /// One exit-setting observation in, one exit set out. Fast-path order:
  /// memo cache (exact hits replay a previous computation), then
  /// warm-started B&B when `incumbent` holds a compatible previous combo,
  /// else the cold core:: search. Always updates *incumbent (when given)
  /// with the returned combo. Thread-safe; the (combo, cost) pair is
  /// bit-identical to core::branch_and_bound_exit_setting for every knob
  /// combination (`evaluations`/`rounds` reflect the work actually done,
  /// or the original work for a cache hit).
  core::ExitSettingResult exit_setting(const core::CostModel& model,
                                       Incumbent* incumbent = nullptr);

  /// Per-slot offload ratios for a whole fleet: out[i] =
  /// policy.decide(states[i]) within 0 ULP. With batch_eq20 bit-identical
  /// states are solved once (batch.h); off, it is literally the sequential
  /// loop. Thread-safe (only local scratch plus atomic counters).
  void decide_fleet(const core::OffloadPolicy& policy,
                    const std::vector<core::DeviceSlotState>& states,
                    std::vector<double>& out) const;

  Stats stats() const;

  /// Registers the leime_policy_* counters with their current values.
  /// Call after a run (the registry is not thread-safe; the Engine's own
  /// counters are atomics and may be read any time via stats()).
  void publish_metrics(obs::MetricsRegistry& registry) const;

  /// Per-run variant: registers the counters with the delta accumulated
  /// since `baseline` (a stats() snapshot taken at run start), so shared
  /// engines publish each run's own work rather than the process lifetime.
  void publish_metrics(obs::MetricsRegistry& registry,
                       const Stats& baseline) const;

  /// Attaches a decision-provenance recorder: every subsequent
  /// exit_setting call counts a decision and, when sampled, emits one
  /// DecisionRecord (fast path, explored/pruned work, chosen combo and
  /// cost; on oracle samples, the exhaustive two-best scan's regret and
  /// runner-up margin). Pass nullptr to detach. Not synchronized against
  /// in-flight exit_setting calls — attach before concurrent use; the
  /// recorder itself is thread-safe.
  void attach_provenance(obs::ProvenanceRecorder* recorder) {
    prov_ = recorder;
  }

 private:
  void emit_exit_setting_record(const core::CostModel& model,
                                const core::ExitSettingResult& result,
                                obs::DecisionPath path, std::uint64_t explored,
                                std::uint64_t pruned);

  Config config_;
  obs::ProvenanceRecorder* prov_ = nullptr;

  mutable std::mutex mu_;      ///< guards cache_
  ExitSettingCache cache_;

  mutable std::atomic<std::uint64_t> cache_hits_{0};
  mutable std::atomic<std::uint64_t> cache_misses_{0};
  mutable std::atomic<std::uint64_t> cache_evictions_{0};
  mutable std::atomic<std::uint64_t> warm_starts_{0};
  mutable std::atomic<std::uint64_t> warm_pruned_scans_{0};
  mutable std::atomic<std::uint64_t> cold_starts_{0};
  mutable std::atomic<std::uint64_t> batch_groups_{0};
  mutable std::atomic<std::uint64_t> batch_reused_{0};
};

}  // namespace leime::policy
