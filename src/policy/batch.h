// Batched per-device eq. 20 / drift-plus-penalty updates.
//
// Groups devices whose DeviceSlotState is bit-identical — field-wise IEEE
// bit comparison, never a raw memcmp (padding bytes are indeterminate) —
// and calls the policy once per group, copying the group's double to every
// member. The policy contract (core::OffloadPolicy::decide is a pure
// function of the state) plus bit-identical inputs means every device
// receives exactly the double the sequential loop would have produced:
// equality within 0 ULP with no summation reordering anywhere, which is
// why the batched path can stay on inside golden-snapshot scenarios.
//
// The win is real for the common fleets: homogeneous device classes
// produce identical slot states whenever their queues drain to the same
// lengths (e.g. underloaded or saturated regimes), and each dedup saves a
// full golden-section solve.
#pragma once

#include <cstddef>
#include <vector>

#include "core/lyapunov.h"
#include "core/offload_policy.h"

namespace leime::policy {

/// Bit-exact equality of two slot states (partition identity by pointer —
/// conservative: distinct pointers never dedup).
bool slot_state_bits_equal(const core::DeviceSlotState& a,
                           const core::DeviceSlotState& b);

/// FNV-1a over the state's field bit patterns; equal states hash equal.
std::uint64_t slot_state_hash(const core::DeviceSlotState& s);

struct BatchStats {
  std::size_t groups = 0;  ///< distinct states actually solved
  std::size_t reused = 0;  ///< devices served by another device's solve
};

/// Fills out[i] with policy.decide(states[i]) for every device, solving
/// each group of bit-identical states once. out is resized to match.
BatchStats decide_fleet(const core::OffloadPolicy& policy,
                        const std::vector<core::DeviceSlotState>& states,
                        std::vector<double>& out);

}  // namespace leime::policy
