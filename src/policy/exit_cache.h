// Exit-setting memo cache with an exact-match guard.
//
// The quantized CacheKey only *addresses* a bucket; each entry stores the
// exact Environment (all seven IEEE bit patterns) and the profile
// fingerprint its result was computed from. A lookup hits only when the
// stored environment equals the query bit for bit, so a hit is literally a
// replay of a previous computation — "cache-hit ≡ recompute" holds by
// construction at any quantization resolution, and coarsening the buckets
// can only lower the hit rate, never change a result.
//
// Capacity/eviction contract (the explicit part of the tentpole):
//   - at most `capacity` entries live at once;
//   - both a lookup hit and an insert refresh the entry's recency;
//   - inserting a new key into a full cache evicts the least-recently-used
//     entry (deterministic given the call sequence);
//   - re-inserting an existing key overwrites it in place (no eviction);
//   - eviction affects only future hit rates, never any returned result.
//
// Not thread-safe: policy::Engine serializes access behind its mutex.
#pragma once

#include <cstddef>
#include <cstdint>
#include <list>
#include <unordered_map>

#include "core/environment.h"
#include "core/exit_setting.h"
#include "policy/quantize.h"

namespace leime::policy {

class ExitSettingCache {
 public:
  /// Throws std::invalid_argument on capacity == 0 or per_octave < 1.
  ExitSettingCache(std::size_t capacity, int per_octave);

  /// The stored result iff the bucket exists AND its exact environment
  /// matches `env` bit for bit; nullptr otherwise (quantization collisions
  /// are misses, not wrong answers). A hit refreshes recency. The pointer
  /// is invalidated by the next insert.
  const core::ExitSettingResult* lookup(std::uint64_t profile_fp,
                                        const core::Environment& env);

  /// Stores (or overwrites) the bucket for (profile_fp, env). Returns true
  /// iff a least-recently-used entry was evicted to make room.
  bool insert(std::uint64_t profile_fp, const core::Environment& env,
              const core::ExitSettingResult& result);

  std::size_t size() const { return map_.size(); }
  std::size_t capacity() const { return capacity_; }
  int per_octave() const { return per_octave_; }

 private:
  struct Entry {
    core::Environment env;
    core::ExitSettingResult result;
    std::list<CacheKey>::iterator lru_it;  ///< position in lru_
  };

  void touch(Entry& entry);

  std::size_t capacity_;
  int per_octave_;
  std::list<CacheKey> lru_;  ///< front = most recently used
  std::unordered_map<CacheKey, Entry, CacheKeyHash> map_;
};

}  // namespace leime::policy
