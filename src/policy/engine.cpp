#include "policy/engine.h"

#include <stdexcept>
#include <vector>

#include "policy/warm_start.h"

namespace leime::policy {

void Config::validate() const {
  if (cache_capacity == 0)
    throw std::invalid_argument("policy::Config: cache_capacity must be >= 1");
  if (quant_per_octave < 1 || quant_per_octave > 64)
    throw std::invalid_argument(
        "policy::Config: quant_per_octave must be in [1, 64]");
}

Engine::Engine(Config config)
    : config_((config.validate(), config)),
      cache_(config.cache_capacity, config.quant_per_octave) {}

core::ExitSettingResult Engine::exit_setting(const core::CostModel& model,
                                             Incumbent* incumbent) {
  const auto remember = [&](const core::ExitSettingResult& r) {
    if (incumbent) {
      incumbent->combo = r.combo;
      incumbent->valid = true;
    }
    return r;
  };

  std::uint64_t fp = 0;
  if (config_.memo_cache) {
    fp = profile_fingerprint(model.profile());
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (const auto* hit = cache_.lookup(fp, model.environment())) {
        cache_hits_.fetch_add(1, std::memory_order_relaxed);
        return remember(*hit);
      }
    }
    cache_misses_.fetch_add(1, std::memory_order_relaxed);
  }

  core::ExitSettingResult result;
  if (config_.warm_start && incumbent && incumbent->valid &&
      incumbent_compatible(incumbent->combo, model.num_exits())) {
    // Thread-local two-exit memo buffer: per-stream scratch without
    // per-call allocation once warm.
    thread_local std::vector<double> scratch;
    const auto outcome =
        warm_start_branch_and_bound(model, incumbent->combo, scratch);
    result = outcome.result;
    warm_starts_.fetch_add(1, std::memory_order_relaxed);
    warm_pruned_scans_.fetch_add(outcome.pruned_scans,
                                 std::memory_order_relaxed);
  } else {
    result = core::branch_and_bound_exit_setting(model);
    cold_starts_.fetch_add(1, std::memory_order_relaxed);
  }

  if (config_.memo_cache) {
    std::lock_guard<std::mutex> lock(mu_);
    // Two threads may race past the same miss; the second insert
    // overwrites with an identical result, so last-writer-wins is benign.
    if (cache_.insert(fp, model.environment(), result))
      cache_evictions_.fetch_add(1, std::memory_order_relaxed);
  }
  return remember(result);
}

void Engine::decide_fleet(const core::OffloadPolicy& policy,
                          const std::vector<core::DeviceSlotState>& states,
                          std::vector<double>& out) const {
  if (!config_.batch_eq20) {
    out.resize(states.size());
    for (std::size_t i = 0; i < states.size(); ++i)
      out[i] = policy.decide(states[i]);
    return;
  }
  const auto stats = policy::decide_fleet(policy, states, out);
  batch_groups_.fetch_add(stats.groups, std::memory_order_relaxed);
  batch_reused_.fetch_add(stats.reused, std::memory_order_relaxed);
}

Stats Engine::stats() const {
  Stats s;
  s.cache_hits = cache_hits_.load(std::memory_order_relaxed);
  s.cache_misses = cache_misses_.load(std::memory_order_relaxed);
  s.cache_evictions = cache_evictions_.load(std::memory_order_relaxed);
  s.warm_starts = warm_starts_.load(std::memory_order_relaxed);
  s.warm_pruned_scans = warm_pruned_scans_.load(std::memory_order_relaxed);
  s.cold_starts = cold_starts_.load(std::memory_order_relaxed);
  s.batch_groups = batch_groups_.load(std::memory_order_relaxed);
  s.batch_reused = batch_reused_.load(std::memory_order_relaxed);
  return s;
}

void Engine::publish_metrics(obs::MetricsRegistry& registry) const {
  const auto s = stats();
  registry
      .counter("leime_policy_cache_hits_total",
               "exit-setting memo cache exact hits")
      .inc(s.cache_hits);
  registry
      .counter("leime_policy_cache_misses_total",
               "exit-setting memo cache misses (incl. exact-guard misses)")
      .inc(s.cache_misses);
  registry
      .counter("leime_policy_cache_evictions_total",
               "LRU entries evicted from the exit-setting memo cache")
      .inc(s.cache_evictions);
  registry
      .counter("leime_policy_warm_starts_total",
               "B&B searches seeded from a previous incumbent")
      .inc(s.warm_starts);
  registry
      .counter("leime_policy_warm_pruned_scans_total",
               "Second-exit scans skipped by the warm-start lower bound")
      .inc(s.warm_pruned_scans);
  registry
      .counter("leime_policy_cold_starts_total",
               "reference branch-and-bound searches")
      .inc(s.cold_starts);
  registry
      .counter("leime_policy_batch_groups_total",
               "distinct device states solved by batched fleet decisions")
      .inc(s.batch_groups);
  registry
      .counter("leime_policy_batch_reused_total",
               "per-device decisions served by a bit-identical dedup")
      .inc(s.batch_reused);
}

}  // namespace leime::policy
