#include "policy/engine.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>
#include <utility>
#include <vector>

#include "policy/warm_start.h"

namespace leime::policy {

namespace {

/// The exhaustive oracle, extended to track the runner-up: best cost under
/// the shared exit_setting_improves order plus the second-best cost over
/// all other (e1, e2) combos — the margin the chosen setting wins by.
struct TwoBestScan {
  double best = std::numeric_limits<double>::infinity();
  double second = std::numeric_limits<double>::infinity();
};

TwoBestScan exhaustive_two_best(const core::CostModel& model) {
  TwoBestScan scan;
  core::ExitCombo best_combo{};
  const int m = model.num_exits();
  for (int e1 = 1; e1 <= m - 2; ++e1) {
    for (int e2 = e1 + 1; e2 <= m - 1; ++e2) {
      const core::ExitCombo combo{e1, e2, m};
      const double cost = model.expected_tct(combo);
      if (core::exit_setting_improves(cost, combo, scan.best, best_combo)) {
        scan.second = scan.best;
        scan.best = cost;
        best_combo = combo;
      } else if (cost < scan.second) {
        scan.second = cost;
      }
    }
  }
  return scan;
}

}  // namespace

void Config::validate() const {
  if (cache_capacity == 0)
    throw std::invalid_argument("policy::Config: cache_capacity must be >= 1");
  if (quant_per_octave < 1 || quant_per_octave > 64)
    throw std::invalid_argument(
        "policy::Config: quant_per_octave must be in [1, 64]");
}

Engine::Engine(Config config)
    : config_((config.validate(), config)),
      cache_(config.cache_capacity, config.quant_per_octave) {}

core::ExitSettingResult Engine::exit_setting(const core::CostModel& model,
                                             Incumbent* incumbent) {
  const auto remember = [&](const core::ExitSettingResult& r) {
    if (incumbent) {
      incumbent->combo = r.combo;
      incumbent->valid = true;
    }
    return r;
  };

  obs::DecisionPath path = obs::DecisionPath::kCold;
  std::uint64_t pruned = 0;
  bool served_from_cache = false;
  core::ExitSettingResult result;

  std::uint64_t fp = 0;
  if (config_.memo_cache) {
    fp = profile_fingerprint(model.profile());
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (const auto* hit = cache_.lookup(fp, model.environment())) {
        cache_hits_.fetch_add(1, std::memory_order_relaxed);
        result = *hit;
        served_from_cache = true;
        path = obs::DecisionPath::kMemoHit;
      }
    }
    if (!served_from_cache)
      cache_misses_.fetch_add(1, std::memory_order_relaxed);
  }

  if (!served_from_cache) {
    if (config_.warm_start && incumbent && incumbent->valid &&
        incumbent_compatible(incumbent->combo, model.num_exits())) {
      // Thread-local two-exit memo buffer: per-stream scratch without
      // per-call allocation once warm.
      thread_local std::vector<double> scratch;
      const auto outcome =
          warm_start_branch_and_bound(model, incumbent->combo, scratch);
      result = outcome.result;
      warm_starts_.fetch_add(1, std::memory_order_relaxed);
      warm_pruned_scans_.fetch_add(outcome.pruned_scans,
                                   std::memory_order_relaxed);
      path = obs::DecisionPath::kWarmStart;
      pruned = outcome.pruned_scans;
    } else {
      result = core::branch_and_bound_exit_setting(model);
      cold_starts_.fetch_add(1, std::memory_order_relaxed);
    }

    if (config_.memo_cache) {
      std::lock_guard<std::mutex> lock(mu_);
      // Two threads may race past the same miss; the second insert
      // overwrites with an identical result, so last-writer-wins is benign.
      if (cache_.insert(fp, model.environment(), result))
        cache_evictions_.fetch_add(1, std::memory_order_relaxed);
    }
  }

  // A memo hit replays a previous search verbatim: zero evaluations were
  // run for *this* decision, so its record reports explored = pruned = 0
  // (result.evaluations still carries the original work for the caller).
  if (prov_)
    emit_exit_setting_record(model, result, path,
                             served_from_cache ? 0 : result.evaluations,
                             pruned);
  return remember(result);
}

void Engine::emit_exit_setting_record(const core::CostModel& model,
                                      const core::ExitSettingResult& result,
                                      obs::DecisionPath path,
                                      std::uint64_t explored,
                                      std::uint64_t pruned) {
  obs::ProvenanceRecorder* rec = prov_;
  if (!rec || !rec->enabled()) return;
  std::uint64_t seq = 0;
  bool oracle = false;
  if (!rec->begin_decision(&seq, &oracle)) return;

  obs::DecisionRecord r;
  r.seq = seq;
  r.cls = "engine";
  r.kind = obs::DecisionKind::kExitSetting;
  r.path = path;
  const core::Environment& env = model.environment();
  r.bandwidth = env.net.dev_edge_bw;
  r.edge_flops = env.caps.edge_flops;
  r.e1 = result.combo.e1;
  r.e2 = result.combo.e2;
  r.e3 = result.combo.e3;
  r.cost = result.cost;
  r.explored = explored;
  r.pruned = pruned;
  if (oracle) {
    // Re-run the exhaustive scan online. The §12 contracts make every fast
    // path bit-identical to it, so regret is exactly 0 here — this is the
    // watchdog that would catch a future fast path breaking the proof. The
    // min() keeps regret >= 0 by construction either way.
    const TwoBestScan scan = exhaustive_two_best(model);
    r.oracle = true;
    r.oracle_cost = std::min(scan.best, result.cost);
    r.regret = result.cost - r.oracle_cost;
    if (std::isfinite(scan.second)) {
      r.margin_valid = true;
      r.margin = scan.second - scan.best;
    }
  }
  rec->record(std::move(r));
}

void Engine::decide_fleet(const core::OffloadPolicy& policy,
                          const std::vector<core::DeviceSlotState>& states,
                          std::vector<double>& out) const {
  if (!config_.batch_eq20) {
    out.resize(states.size());
    for (std::size_t i = 0; i < states.size(); ++i)
      out[i] = policy.decide(states[i]);
    return;
  }
  const auto stats = policy::decide_fleet(policy, states, out);
  batch_groups_.fetch_add(stats.groups, std::memory_order_relaxed);
  batch_reused_.fetch_add(stats.reused, std::memory_order_relaxed);
}

Stats Stats::since(const Stats& baseline) const {
  Stats d;
  d.cache_hits = cache_hits - baseline.cache_hits;
  d.cache_misses = cache_misses - baseline.cache_misses;
  d.cache_evictions = cache_evictions - baseline.cache_evictions;
  d.warm_starts = warm_starts - baseline.warm_starts;
  d.warm_pruned_scans = warm_pruned_scans - baseline.warm_pruned_scans;
  d.cold_starts = cold_starts - baseline.cold_starts;
  d.batch_groups = batch_groups - baseline.batch_groups;
  d.batch_reused = batch_reused - baseline.batch_reused;
  return d;
}

Stats Engine::stats() const {
  Stats s;
  s.cache_hits = cache_hits_.load(std::memory_order_relaxed);
  s.cache_misses = cache_misses_.load(std::memory_order_relaxed);
  s.cache_evictions = cache_evictions_.load(std::memory_order_relaxed);
  s.warm_starts = warm_starts_.load(std::memory_order_relaxed);
  s.warm_pruned_scans = warm_pruned_scans_.load(std::memory_order_relaxed);
  s.cold_starts = cold_starts_.load(std::memory_order_relaxed);
  s.batch_groups = batch_groups_.load(std::memory_order_relaxed);
  s.batch_reused = batch_reused_.load(std::memory_order_relaxed);
  return s;
}

void Engine::publish_metrics(obs::MetricsRegistry& registry) const {
  publish_metrics(registry, Stats{});
}

void Engine::publish_metrics(obs::MetricsRegistry& registry,
                             const Stats& baseline) const {
  const auto s = stats().since(baseline);
  registry
      .counter("leime_policy_cache_hits_total",
               "exit-setting memo cache exact hits")
      .inc(s.cache_hits);
  registry
      .counter("leime_policy_cache_misses_total",
               "exit-setting memo cache misses (incl. exact-guard misses)")
      .inc(s.cache_misses);
  registry
      .counter("leime_policy_cache_evictions_total",
               "LRU entries evicted from the exit-setting memo cache")
      .inc(s.cache_evictions);
  registry
      .counter("leime_policy_warm_starts_total",
               "B&B searches seeded from a previous incumbent")
      .inc(s.warm_starts);
  registry
      .counter("leime_policy_warm_pruned_scans_total",
               "Second-exit scans skipped by the warm-start lower bound")
      .inc(s.warm_pruned_scans);
  registry
      .counter("leime_policy_cold_starts_total",
               "reference branch-and-bound searches")
      .inc(s.cold_starts);
  registry
      .counter("leime_policy_batch_groups_total",
               "distinct device states solved by batched fleet decisions")
      .inc(s.batch_groups);
  registry
      .counter("leime_policy_batch_reused_total",
               "per-device decisions served by a bit-identical dedup")
      .inc(s.batch_reused);
}

}  // namespace leime::policy
