#include "policy/quantize.h"

#include <bit>
#include <cmath>
#include <limits>
#include <stdexcept>
#include <string>

namespace leime::policy {

namespace {

constexpr std::uint64_t kFnvOffset = 0xcbf29ce484222325ULL;
constexpr std::uint64_t kFnvPrime = 0x00000100000001b3ULL;

std::uint64_t fnv1a(std::uint64_t h, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    h ^= (v >> (8 * i)) & 0xffULL;
    h *= kFnvPrime;
  }
  return h;
}

std::uint64_t fnv1a(std::uint64_t h, double v) {
  return fnv1a(h, std::bit_cast<std::uint64_t>(v));
}

std::uint64_t fnv1a(std::uint64_t h, const std::string& s) {
  for (unsigned char c : s) {
    h ^= c;
    h *= kFnvPrime;
  }
  // Length terminator so ("ab", "c") never collides with ("a", "bc").
  return fnv1a(h, static_cast<std::uint64_t>(s.size()));
}

}  // namespace

std::int32_t quantize_log(double v, int per_octave) {
  if (per_octave < 1)
    throw std::invalid_argument("quantize_log: per_octave must be >= 1");
  if (!(v > 0.0) || !std::isfinite(v))
    return std::numeric_limits<std::int32_t>::min();
  int exp = 0;
  const double mant = std::frexp(v, &exp);  // mant in [0.5, 1)
  const auto sub = static_cast<std::int32_t>((mant - 0.5) * 2.0 *
                                             static_cast<double>(per_octave));
  return static_cast<std::int32_t>(exp) * per_octave + sub;
}

std::uint64_t profile_fingerprint(const models::ModelProfile& profile) {
  std::uint64_t h = kFnvOffset;
  h = fnv1a(h, profile.name());
  h = fnv1a(h, profile.input_bytes());
  h = fnv1a(h, static_cast<std::uint64_t>(profile.num_units()));
  for (int i = 1; i <= profile.num_units(); ++i) {
    const auto& unit = profile.unit(i);
    const auto& exit = profile.exit(i);
    h = fnv1a(h, unit.flops);
    h = fnv1a(h, unit.out_bytes);
    h = fnv1a(h, exit.classifier_flops);
    h = fnv1a(h, exit.exit_rate);
    h = fnv1a(h, exit.exit_accuracy);
  }
  return h;
}

CacheKey make_cache_key(std::uint64_t profile_fp,
                        const core::Environment& env, int per_octave) {
  CacheKey key;
  key.profile_fp = profile_fp;
  key.env_buckets = {quantize_log(env.caps.device_flops, per_octave),
                     quantize_log(env.caps.edge_flops, per_octave),
                     quantize_log(env.caps.cloud_flops, per_octave),
                     quantize_log(env.net.dev_edge_bw, per_octave),
                     quantize_log(env.net.dev_edge_lat, per_octave),
                     quantize_log(env.net.edge_cloud_bw, per_octave),
                     quantize_log(env.net.edge_cloud_lat, per_octave)};
  return key;
}

std::size_t CacheKeyHash::operator()(const CacheKey& key) const {
  std::uint64_t h = fnv1a(kFnvOffset, key.profile_fp);
  for (const std::int32_t b : key.env_buckets)
    h = fnv1a(h, static_cast<std::uint64_t>(static_cast<std::uint32_t>(b)));
  return static_cast<std::size_t>(h);
}

bool env_bits_equal(const core::Environment& a, const core::Environment& b) {
  const auto eq = [](double x, double y) {
    return std::bit_cast<std::uint64_t>(x) == std::bit_cast<std::uint64_t>(y);
  };
  return eq(a.caps.device_flops, b.caps.device_flops) &&
         eq(a.caps.edge_flops, b.caps.edge_flops) &&
         eq(a.caps.cloud_flops, b.caps.cloud_flops) &&
         eq(a.net.dev_edge_bw, b.net.dev_edge_bw) &&
         eq(a.net.dev_edge_lat, b.net.dev_edge_lat) &&
         eq(a.net.edge_cloud_bw, b.net.edge_cloud_bw) &&
         eq(a.net.edge_cloud_lat, b.net.edge_cloud_lat);
}

}  // namespace leime::policy
