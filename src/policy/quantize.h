// Deterministic observation quantization for the policy memo cache.
//
// quantize_log maps a positive double onto an integer bucket derived purely
// from its IEEE-754 decomposition (frexp exponent plus a fixed number of
// mantissa sub-buckets per octave), so bucketing is bit-deterministic and
// platform-independent. Buckets only pick the cache *address*; correctness
// never depends on the resolution because every cache entry carries the
// exact environment it was computed from (see exit_cache.h).
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>

#include "core/environment.h"
#include "models/profile.h"

namespace leime::policy {

/// Log2 bucket index of v with `per_octave` sub-buckets per power of two.
/// Pure integer/IEEE arithmetic (std::frexp), no rounding-mode dependence.
/// Non-positive and non-finite values collapse to a sentinel bucket.
std::int32_t quantize_log(double v, int per_octave);

/// 64-bit FNV-1a content fingerprint of a profile: name, input bytes and
/// the bit patterns of every unit/exit field (FLOPs, tensor bytes,
/// classifier FLOPs, sigma, accuracy). Two profiles with equal fingerprints
/// are treated as the same model by the memo cache — a deliberate 2^-64
/// collision risk, documented in DESIGN.md §12.
std::uint64_t profile_fingerprint(const models::ModelProfile& profile);

/// Cache address: model fingerprint + the seven environment fields
/// quantized into log buckets. Equality is exact integer equality.
struct CacheKey {
  std::uint64_t profile_fp = 0;
  std::array<std::int32_t, 7> env_buckets{};

  bool operator==(const CacheKey&) const = default;
};

CacheKey make_cache_key(std::uint64_t profile_fp,
                        const core::Environment& env, int per_octave);

struct CacheKeyHash {
  std::size_t operator()(const CacheKey& key) const;
};

/// Bit-exact equality of two environments: compares the IEEE bit patterns
/// of all seven fields, so +0.0 != -0.0 and NaN never equals anything —
/// exactly the conditions under which replaying a cached result could
/// diverge from recomputing it.
bool env_bits_equal(const core::Environment& a, const core::Environment& b);

}  // namespace leime::policy
