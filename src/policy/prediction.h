// Decision-time latency prediction (DESIGN.md §13): the per-task component
// latencies the eq. 4-9 cost model implies for one device's next task, given
// the slot state the controller decided on and the chosen offload ratio x.
//
// This is the "predicted" half of the attribution layer's calibration join:
// the simulator captures these components in SlotTelemetry at every
// decision, the RecordingObserver attaches the latest one to each generated
// task, and the realized LatencyLedger waterfall is compared against them at
// completion. Pure function of its inputs — no RNG, no state — so capturing
// it never perturbs a run.
#pragma once

#include <algorithm>

#include "core/lyapunov.h"
#include "obs/attribution.h"

namespace leime::policy {

/// Predicts the eq. 4-9 component latencies for the next task of a device
/// in state `s` under offload ratio `x`.
///
///   local_wait     Q_i * mu1 / F_i^d   — drain the device backlog (eq. 5)
///   local_service  mu1 / F_i^d         — one block-1 execution (eq. 4)
///   uplink         d0/B + L + backlog/B — raw-input upload (eq. 7, with the
///                  runtime's accepted-but-unsent backlog refinement)
///   edge_wait      H_i * mu1 / F_{i,1}^e — drain the edge backlog (eq. 9)
///   edge_service   mu1 / F_{i,1}^e     — one edge block-1 execution (eq. 8)
///
/// Edge components stay zero when x == 0 (nothing offloads, eq. 9's share
/// is undefined) or the edge is unavailable.
inline obs::PredictedComponents predict_components(
    const core::DeviceSlotState& s, double x) {
  obs::PredictedComponents p;
  p.x = x;
  p.valid = true;
  const double mu1 = s.partition ? s.partition->mu1 : 0.0;
  if (s.device_flops > 0.0 && mu1 > 0.0) {
    const double per_task = mu1 / s.device_flops;
    p.local_service = per_task;
    p.local_wait = std::max(0.0, s.queue_device) * per_task;
  }
  if (s.bandwidth > 0.0 && s.partition) {
    p.uplink = (s.partition->d0 + std::max(0.0, s.uplink_backlog_bytes)) /
                   s.bandwidth +
               std::max(0.0, s.latency);
  }
  if (s.edge_available && x > 0.0 && mu1 > 0.0) {
    const double f_e1 = core::edge_first_block_flops(s, x);
    if (f_e1 > 0.0) {
      const double per_task = mu1 / f_e1;
      p.edge_service = per_task;
      p.edge_wait = std::max(0.0, s.queue_edge) * per_task;
    }
  }
  return p;
}

}  // namespace leime::policy
