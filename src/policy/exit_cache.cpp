#include "policy/exit_cache.h"

#include <stdexcept>

namespace leime::policy {

ExitSettingCache::ExitSettingCache(std::size_t capacity, int per_octave)
    : capacity_(capacity), per_octave_(per_octave) {
  if (capacity_ == 0)
    throw std::invalid_argument("ExitSettingCache: capacity must be >= 1");
  if (per_octave_ < 1)
    throw std::invalid_argument("ExitSettingCache: per_octave must be >= 1");
}

void ExitSettingCache::touch(Entry& entry) {
  lru_.splice(lru_.begin(), lru_, entry.lru_it);
}

const core::ExitSettingResult* ExitSettingCache::lookup(
    std::uint64_t profile_fp, const core::Environment& env) {
  const auto key = make_cache_key(profile_fp, env, per_octave_);
  const auto it = map_.find(key);
  if (it == map_.end()) return nullptr;
  if (!env_bits_equal(it->second.env, env)) return nullptr;
  touch(it->second);
  return &it->second.result;
}

bool ExitSettingCache::insert(std::uint64_t profile_fp,
                              const core::Environment& env,
                              const core::ExitSettingResult& result) {
  const auto key = make_cache_key(profile_fp, env, per_octave_);
  if (const auto it = map_.find(key); it != map_.end()) {
    it->second.env = env;
    it->second.result = result;
    touch(it->second);
    return false;
  }
  bool evicted = false;
  if (map_.size() >= capacity_) {
    map_.erase(lru_.back());
    lru_.pop_back();
    evicted = true;
  }
  lru_.push_front(key);
  map_.emplace(key, Entry{env, result, lru_.begin()});
  return evicted;
}

}  // namespace leime::policy
