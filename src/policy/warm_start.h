// Warm-started branch-and-bound exit setting.
//
// Identical round structure to core::branch_and_bound_exit_setting — the
// i_k / upbound sequence depends only on the two-exit costs, never on the
// incumbent — with three sources of saved work:
//   1. the search is seeded with the previous slot's incumbent combo (one
//      expected_tct evaluation) instead of +infinity;
//   2. the two-exit costs are memoized per call: the cold search re-scans
//      the overlapping ranges [1, upbound_k] every round, the warm search
//      evaluates each two_exit_cost(i) exactly once;
//   3. every round's Second-exit scan is truncated at a monotone lower
//      bound: cost({i, j, m}) >= t_d(i) + (1-sigma_i) * (transfer(i) +
//      (prefix(j) - prefix(i)) / F_edge), non-decreasing in j, because
//      the exit-head FLOPs and the cloud term are non-negative and the
//      prefix FLOPs are cumulative. The largest admissible j is found by
//      binary search on the prefix-FLOPs array (O(log m) arithmetic, no
//      cost-model evaluations); a round whose entire range is cut counts
//      as a pruned scan.
//
// Result equality with the cold search (both searches minimise the
// exit_setting_improves total order; proof sketch in DESIGN.md §12): the
// warm search visits a superset of the cost-optimal combos the cold search
// visits — a combo is skipped only when its lower bound *strictly*
// exceeds an already-evaluated cost, so cuts never remove a tie —
// plus the incumbent, which is either itself visited or lex-dominated by a
// visited combo of equal cost (Theorem 1). Hence min over the warm visit
// set equals min over the cold visit set. Enforced across randomized churn
// traces by tests/policy/policy_diff_test.cpp.
#pragma once

#include <cstddef>
#include <vector>

#include "core/cost_model.h"
#include "core/exit_setting.h"

namespace leime::policy {

/// True iff `combo` is a valid search outcome for an m-exit model
/// (1 <= e1 < e2 < e3 == m) and hence usable as a warm-start seed.
bool incumbent_compatible(const core::ExitCombo& combo, int num_exits);

struct WarmStartOutcome {
  core::ExitSettingResult result;
  std::size_t pruned_scans = 0;  ///< rounds whose Second-exit scan was cut
};

/// Runs the warm-started search. `incumbent` must satisfy
/// incumbent_compatible (throws std::invalid_argument otherwise — the
/// Engine falls back to the cold search instead of calling in). `scratch`
/// is the caller-owned two-exit memo buffer (resized to m; reusing it
/// across calls avoids re-allocation on the per-slot path).
/// `result.evaluations` counts actual cost-model evaluations — memo
/// lookups are free — which is what the micro_exit_setting warm-vs-cold
/// counter gate measures; `result.rounds` matches the cold search.
WarmStartOutcome warm_start_branch_and_bound(const core::CostModel& model,
                                             const core::ExitCombo& incumbent,
                                             std::vector<double>& scratch);

}  // namespace leime::policy
