#include "util/stats.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace leime::util {

void RunningStats::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double RunningStats::variance() const {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_ - 1);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

void RunningStats::merge(const RunningStats& other) {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const auto n1 = static_cast<double>(n_);
  const auto n2 = static_cast<double>(other.n_);
  const double delta = other.mean_ - mean_;
  const double total = n1 + n2;
  mean_ += delta * n2 / total;
  m2_ += other.m2_ + delta * delta * n1 * n2 / total;
  n_ += other.n_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double percentile(std::vector<double> values, double q) {
  if (values.empty()) throw std::invalid_argument("percentile: empty sample");
  if (q < 0.0 || q > 1.0) throw std::invalid_argument("percentile: q outside [0,1]");
  std::sort(values.begin(), values.end());
  if (values.size() == 1) return values.front();
  const double rank = q * static_cast<double>(values.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const auto hi = std::min(lo + 1, values.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return values[lo] + frac * (values[hi] - values[lo]);
}

double mean_of(const std::vector<double>& values) {
  RunningStats s;
  for (double v : values) s.add(v);
  return s.mean();
}

double median_of(const std::vector<double>& values) {
  if (values.empty()) return 0.0;
  return percentile(values, 0.5);
}

RobustSummary robust_summarize(const std::vector<double>& values) {
  RobustSummary out;
  if (values.empty()) return out;
  out.count = values.size();
  out.median = median_of(values);
  std::vector<double> dev;
  dev.reserve(values.size());
  for (double v : values) dev.push_back(std::abs(v - out.median));
  out.mad = median_of(dev);
  out.cv = out.median != 0.0 ? 1.4826 * out.mad / std::abs(out.median) : 0.0;
  RunningStats s;
  for (double v : values) s.add(v);
  out.min = s.min();
  out.max = s.max();
  out.mean = s.mean();
  return out;
}

Summary summarize(const std::vector<double>& values) {
  Summary out;
  if (values.empty()) return out;
  RunningStats s;
  for (double v : values) s.add(v);
  out.count = s.count();
  out.mean = s.mean();
  out.stddev = s.stddev();
  out.min = s.min();
  out.max = s.max();
  out.p50 = percentile(values, 0.50);
  out.p95 = percentile(values, 0.95);
  out.p99 = percentile(values, 0.99);
  return out;
}

}  // namespace leime::util
