// Aligned plain-text table printing for bench harness output.
//
// The bench binaries reproduce the paper's figures as text series; TablePrinter
// keeps that output legible and diffable.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace leime::util {

/// Collects rows of string cells and prints them with aligned columns.
class TablePrinter {
 public:
  /// Creates a table with the given column headers (at least one).
  explicit TablePrinter(std::vector<std::string> headers);

  /// Appends a row; must have exactly as many cells as there are headers.
  void add_row(std::vector<std::string> cells);

  /// Renders the table (header, separator, rows) to the stream.
  void print(std::ostream& os) const;

  /// Renders to a string (used by tests).
  std::string to_string() const;

  /// Writes the table as CSV (header + rows) to `path`.
  void write_csv(const std::string& path) const;

  std::size_t num_rows() const { return rows_.size(); }
  const std::vector<std::string>& headers() const { return headers_; }
  const std::vector<std::vector<std::string>>& rows() const { return rows_; }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Formats a double with the given precision (fixed notation).
std::string fmt(double value, int precision = 3);

/// Formats a double in engineering style, e.g. "1.25e+09".
std::string fmt_sci(double value, int precision = 2);

}  // namespace leime::util
