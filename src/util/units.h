// Unit helpers. Library-wide conventions: FLOPS as double, bytes as double,
// seconds as double, bandwidth in bytes/second. These helpers keep scenario
// definitions readable (paper quotes Mbps / ms / GFLOPS).
#pragma once

namespace leime::util {

constexpr double kKilo = 1e3;
constexpr double kMega = 1e6;
constexpr double kGiga = 1e9;
constexpr double kTera = 1e12;

/// Megabits per second -> bytes per second.
constexpr double mbps(double v) { return v * kMega / 8.0; }

/// Milliseconds -> seconds.
constexpr double ms(double v) { return v * 1e-3; }

/// GFLOPS -> FLOPS.
constexpr double gflops(double v) { return v * kGiga; }

/// TFLOPS -> FLOPS.
constexpr double tflops(double v) { return v * kTera; }

/// Kilobytes / megabytes -> bytes.
constexpr double kilobytes(double v) { return v * 1024.0; }
constexpr double megabytes(double v) { return v * 1024.0 * 1024.0; }

}  // namespace leime::util
