// Streaming and batch statistics used by the simulator and benches.
#pragma once

#include <cstddef>
#include <vector>

namespace leime::util {

/// Numerically stable streaming mean/variance (Welford) with min/max.
///
/// Empty-accumulator contract: every accessor returns exactly 0.0 while
/// count() == 0 — mean(), min(), max() and sum() alike. A 0.0 min of an
/// all-positive sample therefore means "no observations", never an
/// observed zero; check empty() when the distinction matters. The
/// observability layer's histograms rely on these semantics.
class RunningStats {
 public:
  void add(double x);

  std::size_t count() const { return n_; }
  bool empty() const { return n_ == 0; }

  /// Mean of the observations; 0 when empty.
  double mean() const { return n_ ? mean_ : 0.0; }

  /// Unbiased sample variance; 0 with fewer than two observations.
  double variance() const;
  double stddev() const;

  /// Smallest/largest observation; 0 when empty (same convention as
  /// mean(), NOT +/-infinity — see the class contract above).
  double min() const { return n_ ? min_ : 0.0; }
  double max() const { return n_ ? max_ : 0.0; }
  double sum() const { return n_ ? mean_ * static_cast<double>(n_) : 0.0; }

  /// Merges another accumulator into this one (parallel Welford).
  ///
  /// Merge-with-empty contract (asserted in stats_test): merging an empty
  /// accumulator is a bit-exact no-op, and merging into an empty
  /// accumulator is a bit-exact copy — the empty side's zero-valued
  /// min_/max_/mean_ placeholders never leak into the result. Merging
  /// shards in a fixed order is therefore deterministic regardless of how
  /// many shards stayed empty (the metrics-registry contract).
  void merge(const RunningStats& other);

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Percentile with linear interpolation between closest ranks.
/// q in [0, 1]; throws std::invalid_argument on empty input or bad q.
/// The input is copied and sorted internally.
double percentile(std::vector<double> values, double q);

/// Convenience batch mean; 0 on empty input.
double mean_of(const std::vector<double>& values);

/// Five-number-ish summary of a sample.
struct Summary {
  std::size_t count = 0;
  double mean = 0.0;
  double stddev = 0.0;
  double min = 0.0;
  double p50 = 0.0;
  double p95 = 0.0;
  double p99 = 0.0;
  double max = 0.0;
};

/// Computes a Summary; all fields zero for an empty sample.
Summary summarize(const std::vector<double>& values);

/// Median with linear interpolation; 0 on empty input (no throw — timing
/// code treats "no rounds" as a degenerate measurement, not an error).
double median_of(const std::vector<double>& values);

/// Robust location/scale summary for repeated timing rounds, where a
/// single preempted round must not move the estimate: median for location,
/// MAD (median absolute deviation) for scale. `cv` is the robust
/// coefficient of variation 1.4826·MAD/median — the 1.4826 factor makes
/// MAD a consistent estimator of σ under normal noise — and is what the
/// bench regression gate scales its thresholds by.
struct RobustSummary {
  std::size_t count = 0;
  double median = 0.0;
  double mad = 0.0;  ///< raw median absolute deviation (same unit as data)
  double cv = 0.0;   ///< 1.4826 * mad / median; 0 when median == 0
  double min = 0.0;
  double max = 0.0;
  double mean = 0.0;
};

/// Computes a RobustSummary; all fields zero for an empty sample.
RobustSummary robust_summarize(const std::vector<double>& values);

}  // namespace leime::util
