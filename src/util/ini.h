// Minimal INI-style configuration parser for the scenario runner.
//
// Syntax:
//   # or ; comments (whole-line or trailing)
//   [section]            — sections may repeat; each occurrence is kept
//   key = value
// Section and key names are case-sensitive; values keep internal spaces and
// are trimmed at both ends.
#pragma once

#include <iosfwd>
#include <map>
#include <string>
#include <vector>

namespace leime::util {

/// One [section] instance with its key/value pairs in file order.
struct IniSection {
  std::string name;
  std::map<std::string, std::string> values;

  bool has(const std::string& key) const { return values.count(key) > 0; }

  /// Returns the value or `fallback` when the key is absent.
  std::string get(const std::string& key, const std::string& fallback = "") const;

  /// Typed getters; throw std::invalid_argument on absent keys or
  /// unparsable values.
  double get_double(const std::string& key) const;
  double get_double(const std::string& key, double fallback) const;
  long long get_int(const std::string& key) const;
  long long get_int(const std::string& key, long long fallback) const;
  bool get_bool(const std::string& key, bool fallback) const;
};

class IniFile {
 public:
  /// Parses a whole stream; throws std::invalid_argument on malformed
  /// lines (key/value outside a section, missing '=', empty key).
  static IniFile parse(std::istream& in);
  static IniFile parse_string(const std::string& text);
  static IniFile parse_file(const std::string& path);

  /// All section instances in file order.
  const std::vector<IniSection>& sections() const { return sections_; }

  /// All instances with the given name (e.g. every [device]).
  std::vector<const IniSection*> all(const std::string& name) const;

  /// The single instance of a section; throws if absent or duplicated.
  const IniSection& only(const std::string& name) const;

  /// First instance or nullptr.
  const IniSection* find(const std::string& name) const;

 private:
  std::vector<IniSection> sections_;
};

}  // namespace leime::util
