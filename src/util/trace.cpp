#include "util/trace.h"

#include <algorithm>
#include <stdexcept>

namespace leime::util {

PiecewiseConstant::PiecewiseConstant(std::vector<Point> points)
    : points_(std::move(points)) {
  if (points_.empty())
    throw std::invalid_argument("PiecewiseConstant: no breakpoints");
  for (std::size_t i = 1; i < points_.size(); ++i)
    if (points_[i].time <= points_[i - 1].time)
      throw std::invalid_argument(
          "PiecewiseConstant: breakpoint times must be strictly increasing");
}

PiecewiseConstant PiecewiseConstant::constant(double value) {
  return PiecewiseConstant({{0.0, value}});
}

double PiecewiseConstant::value_at(double t) const {
  auto it = std::upper_bound(
      points_.begin(), points_.end(), t,
      [](double lhs, const Point& rhs) { return lhs < rhs.time; });
  if (it == points_.begin()) return points_.front().value;
  return std::prev(it)->value;
}

PiecewiseConstant PiecewiseConstant::shifted(double offset) const {
  std::vector<Point> points;
  points.push_back({0.0, value_at(offset)});
  for (const auto& p : points_) {
    const double t = p.time - offset;
    if (t > 0.0) points.push_back({t, p.value});
  }
  return PiecewiseConstant(std::move(points));
}

double PiecewiseConstant::max_value() const {
  double best = points_.front().value;
  for (const auto& p : points_) best = std::max(best, p.value);
  return best;
}

}  // namespace leime::util
