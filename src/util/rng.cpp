#include "util/rng.h"

#include <cmath>
#include <stdexcept>

namespace leime::util {

namespace {

std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

void Rng::reseed(std::uint64_t seed) {
  seed_ = seed;
  std::uint64_t sm = seed;
  for (auto& s : state_) s = splitmix64(sm);
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(state_[0] + state_[3], 23) + state_[0];
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = rotl(state_[3], 45);
  return result;
}

double Rng::uniform() {
  // 53 high bits -> double in [0, 1).
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) {
  if (lo > hi) throw std::invalid_argument("Rng::uniform: lo > hi");
  return lo + (hi - lo) * uniform();
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  if (lo > hi) throw std::invalid_argument("Rng::uniform_int: lo > hi");
  const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
  if (span == 0) return static_cast<std::int64_t>(next_u64());  // full range
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t limit = max() - max() % span;
  std::uint64_t v;
  do {
    v = next_u64();
  } while (v >= limit);
  return lo + static_cast<std::int64_t>(v % span);
}

bool Rng::bernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return uniform() < p;
}

double Rng::normal() {
  // Box–Muller; discard the second variate to stay stateless.
  double u1;
  do {
    u1 = uniform();
  } while (u1 <= 0.0);
  const double u2 = uniform();
  constexpr double kTwoPi = 6.283185307179586476925286766559;
  return std::sqrt(-2.0 * std::log(u1)) * std::cos(kTwoPi * u2);
}

double Rng::normal(double mean, double sd) {
  if (sd < 0.0) throw std::invalid_argument("Rng::normal: sd < 0");
  return mean + sd * normal();
}

double Rng::exponential(double rate) {
  if (rate <= 0.0) throw std::invalid_argument("Rng::exponential: rate <= 0");
  double u;
  do {
    u = uniform();
  } while (u <= 0.0);
  return -std::log(u) / rate;
}

int Rng::poisson(double mean) {
  if (mean < 0.0) throw std::invalid_argument("Rng::poisson: mean < 0");
  if (mean == 0.0) return 0;
  if (mean > 1e3) {
    const double v = normal(mean, std::sqrt(mean));
    return v <= 0.0 ? 0 : static_cast<int>(v + 0.5);
  }
  // Inversion by sequential search.
  const double limit = std::exp(-mean);
  double prod = uniform();
  int n = 0;
  while (prod > limit) {
    prod *= uniform();
    ++n;
  }
  return n;
}

Rng Rng::fork() {
  Rng child;
  child.reseed(next_u64());
  return child;
}

std::uint64_t Rng::derive_seed(std::uint64_t base, std::uint64_t index) {
  // mix(base) xor index feeds a second splitmix64 round; splitmix64 is a
  // bijection, so distinct indices under one base never collide.
  std::uint64_t s = base;
  s = splitmix64(s) ^ index;
  return splitmix64(s);
}

Rng Rng::split(std::uint64_t index) const {
  return Rng(derive_seed(seed_, index));
}

}  // namespace leime::util
