// Lightweight invariant checking for the LEIME library.
//
// LEIME_CHECK guards internal invariants; violations indicate a library bug
// and throw leime::util::CheckError with source location and the failed
// expression. Argument validation at public API boundaries should prefer
// throwing std::invalid_argument directly with a descriptive message.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace leime::util {

/// Thrown when an internal invariant (LEIME_CHECK) fails.
class CheckError : public std::logic_error {
 public:
  explicit CheckError(const std::string& what) : std::logic_error(what) {}
};

namespace detail {

[[noreturn]] inline void check_failed(const char* expr, const char* file,
                                      int line, const std::string& msg) {
  std::ostringstream os;
  os << "LEIME_CHECK failed: (" << expr << ") at " << file << ":" << line;
  if (!msg.empty()) os << " — " << msg;
  throw CheckError(os.str());
}

}  // namespace detail
}  // namespace leime::util

/// Checks an internal invariant; throws leime::util::CheckError on failure.
#define LEIME_CHECK(expr)                                                  \
  do {                                                                     \
    if (!(expr))                                                           \
      ::leime::util::detail::check_failed(#expr, __FILE__, __LINE__, ""); \
  } while (false)

/// LEIME_CHECK with an additional streamed message, e.g.
/// LEIME_CHECK_MSG(x > 0, "x=" << x).
#define LEIME_CHECK_MSG(expr, stream_expr)                                 \
  do {                                                                     \
    if (!(expr)) {                                                         \
      std::ostringstream leime_check_os_;                                  \
      leime_check_os_ << stream_expr;                                      \
      ::leime::util::detail::check_failed(#expr, __FILE__, __LINE__,       \
                                          leime_check_os_.str());          \
    }                                                                      \
  } while (false)
