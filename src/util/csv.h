// Minimal RFC-4180-ish CSV writer for exporting bench series.
#pragma once

#include <fstream>
#include <string>
#include <vector>

namespace leime::util {

/// Writes rows to a CSV file; cells containing commas/quotes/newlines are
/// quoted. The file is created on construction and flushed on destruction.
///
/// Error reporting: add_row throws std::runtime_error as soon as the
/// stream goes bad (full disk, revoked mount). Callers that must not lose
/// data call close(), which flushes, fsyncs and throws on any failure; the
/// destructor is a best-effort close that logs to stderr instead of
/// throwing.
class CsvWriter {
 public:
  /// Opens `path` for writing and emits the header row.
  /// Throws std::runtime_error if the file cannot be opened.
  CsvWriter(const std::string& path, const std::vector<std::string>& header);

  ~CsvWriter();
  CsvWriter(const CsvWriter&) = delete;
  CsvWriter& operator=(const CsvWriter&) = delete;

  /// Appends one row; must match the header width. Throws
  /// std::runtime_error if the underlying stream reports a write error.
  void add_row(const std::vector<std::string>& cells);

  /// Flushes, fsyncs and closes the file; throws std::runtime_error if any
  /// byte could not be durably written. Idempotent.
  void close();

  std::size_t num_rows() const { return rows_written_; }

 private:
  void write_row(const std::vector<std::string>& cells);

  std::string path_;
  std::ofstream out_;
  std::size_t width_;
  std::size_t rows_written_ = 0;
  bool closed_ = false;
};

/// fsyncs a (closed) file's contents to disk; false on failure. Returns
/// true without syncing on platforms lacking POSIX fsync.
bool fsync_path(const std::string& path) noexcept;

/// Escapes a single CSV cell (exposed for testing).
std::string csv_escape(const std::string& cell);

}  // namespace leime::util
