// Minimal RFC-4180-ish CSV writer for exporting bench series.
#pragma once

#include <fstream>
#include <string>
#include <vector>

namespace leime::util {

/// Writes rows to a CSV file; cells containing commas/quotes/newlines are
/// quoted. The file is created on construction and flushed on destruction.
class CsvWriter {
 public:
  /// Opens `path` for writing and emits the header row.
  /// Throws std::runtime_error if the file cannot be opened.
  CsvWriter(const std::string& path, const std::vector<std::string>& header);

  /// Appends one row; must match the header width.
  void add_row(const std::vector<std::string>& cells);

  std::size_t num_rows() const { return rows_written_; }

 private:
  void write_row(const std::vector<std::string>& cells);

  std::ofstream out_;
  std::size_t width_;
  std::size_t rows_written_ = 0;
};

/// Escapes a single CSV cell (exposed for testing).
std::string csv_escape(const std::string& cell);

}  // namespace leime::util
