#include "util/table.h"

#include "util/csv.h"

#include <iomanip>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace leime::util {

TablePrinter::TablePrinter(std::vector<std::string> headers)
    : headers_(std::move(headers)) {
  if (headers_.empty())
    throw std::invalid_argument("TablePrinter: need at least one column");
}

void TablePrinter::add_row(std::vector<std::string> cells) {
  if (cells.size() != headers_.size())
    throw std::invalid_argument("TablePrinter: row width mismatch");
  rows_.push_back(std::move(cells));
}

void TablePrinter::print(std::ostream& os) const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size(); ++c)
      widths[c] = std::max(widths[c], row[c].size());

  auto print_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << "  " << std::left << std::setw(static_cast<int>(widths[c])) << row[c];
    }
    os << '\n';
  };

  print_row(headers_);
  std::size_t total = 0;
  for (auto w : widths) total += w + 2;
  os << "  " << std::string(total > 2 ? total - 2 : 0, '-') << '\n';
  for (const auto& row : rows_) print_row(row);
}

std::string TablePrinter::to_string() const {
  std::ostringstream os;
  print(os);
  return os.str();
}

void TablePrinter::write_csv(const std::string& path) const {
  CsvWriter writer(path, headers_);
  for (const auto& row : rows_) writer.add_row(row);
}

std::string fmt(double value, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << value;
  return os.str();
}

std::string fmt_sci(double value, int precision) {
  std::ostringstream os;
  os << std::scientific << std::setprecision(precision) << value;
  return os.str();
}

}  // namespace leime::util
