// Piecewise-constant time series, used for COMCAST-style bandwidth/latency
// shaping and time-varying arrival-rate traces.
#pragma once

#include <vector>

namespace leime::util {

/// value_at(t) returns the value of the last breakpoint at or before t.
/// Breakpoint times must be strictly increasing; the first breakpoint's
/// value also covers all earlier times.
class PiecewiseConstant {
 public:
  struct Point {
    double time;
    double value;
  };

  /// Throws std::invalid_argument on empty input or non-increasing times.
  explicit PiecewiseConstant(std::vector<Point> points);

  /// Constant-for-all-time convenience.
  static PiecewiseConstant constant(double value);

  double value_at(double t) const;

  /// Largest breakpoint value (used for thinning-based samplers).
  double max_value() const;

  /// The trace as seen from `offset` seconds in: value_at(t) of the result
  /// equals value_at(t + offset) of the original. Used to re-run trace
  /// segments from local time zero (epoch-based simulation).
  PiecewiseConstant shifted(double offset) const;

  const std::vector<Point>& points() const { return points_; }

 private:
  std::vector<Point> points_;
};

}  // namespace leime::util
