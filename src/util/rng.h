// Deterministic pseudo-random number generation for simulations.
//
// Rng wraps xoshiro256++ seeded through splitmix64, giving fast,
// high-quality, reproducible streams. Every stochastic component in the
// library takes an Rng& (or a seed) so whole simulations replay bit-for-bit.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

namespace leime::util {

/// xoshiro256++ generator with distribution helpers.
///
/// Satisfies UniformRandomBitGenerator, so it also works with <random>
/// distributions, but the built-in helpers below are preferred for
/// cross-platform reproducibility (libstdc++/libc++ distributions differ).
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) { reseed(seed); }

  /// Re-seeds the generator; equal seeds yield equal streams.
  void reseed(std::uint64_t seed);

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~result_type{0}; }

  /// Next raw 64-bit value.
  result_type operator()() { return next_u64(); }

  std::uint64_t next_u64();

  /// Uniform double in [0, 1).
  double uniform();

  /// Uniform double in [lo, hi). Requires lo <= hi.
  double uniform(double lo, double hi);

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);

  /// Bernoulli draw; p is clamped to [0, 1].
  bool bernoulli(double p);

  /// Standard normal via Box–Muller (stateless variant: one sample/call).
  double normal();

  /// Normal with the given mean and standard deviation (sd >= 0).
  double normal(double mean, double sd);

  /// Exponential with the given rate (> 0); mean is 1/rate.
  double exponential(double rate);

  /// Poisson sample with the given mean (>= 0). Uses inversion for small
  /// means and normal approximation beyond 1e3 (adequate for workloads).
  int poisson(double mean);

  /// Fisher–Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      const auto j =
          static_cast<std::size_t>(uniform_int(0, static_cast<std::int64_t>(i - 1)));
      std::swap(v[i - 1], v[j]);
    }
  }

  /// Derives an independent child stream (for per-device generators).
  /// Consumes one draw from this stream, so the result depends on the
  /// current position; prefer split() when substreams must be addressable.
  Rng fork();

  /// Independent, reproducible substream `index` of this generator.
  /// Depends only on the seed this Rng was constructed (or last reseeded)
  /// with — not on how many draws have been made — so split(i) is a stable
  /// address: the runtime hands grid cell i the same stream on every run
  /// and across any thread schedule.
  Rng split(std::uint64_t index) const;

  /// The substream-seed derivation behind split(): two rounds of splitmix64
  /// over (base, index). Unlike the old `base + index` convention, adjacent
  /// indices land in unrelated regions of seed space, so per-cell streams
  /// cannot collide with each other or with neighbouring base seeds.
  static std::uint64_t derive_seed(std::uint64_t base, std::uint64_t index);

  /// The seed this generator was constructed / last reseeded with.
  std::uint64_t seed() const { return seed_; }

 private:
  std::array<std::uint64_t, 4> state_{};
  std::uint64_t seed_ = 0;
};

}  // namespace leime::util
