// Shared wall-clock helpers.
//
// Everything in the repo that measures *host* time (the runtime executor's
// telemetry, the bench harnesses, the src/prof self-profiler) goes through
// this one alias so "wall clock" always means the same monotonic clock.
// Simulated time never touches these — the DES keeps its own double-seconds
// timeline (sim::EventQueue::now).
#pragma once

#include <chrono>
#include <cstdint>

namespace leime::util {

/// The repo-wide monotonic wall clock.
using WallClock = std::chrono::steady_clock;

/// Nanoseconds on the monotonic clock (arbitrary epoch; only differences
/// are meaningful). The profiler stores these as integers so aggregation
/// and cross-thread merges stay exact.
inline std::uint64_t wall_now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          WallClock::now().time_since_epoch())
          .count());
}

/// Seconds elapsed since `t0` (hoisted from runtime/executor.cpp and the
/// bench harnesses, which each grew a private copy).
inline double seconds_since(const WallClock::time_point& t0) {
  return std::chrono::duration<double>(WallClock::now() - t0).count();
}

}  // namespace leime::util
