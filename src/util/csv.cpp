#include "util/csv.h"

#include <iostream>
#include <stdexcept>

#if defined(__unix__) || defined(__APPLE__)
#include <fcntl.h>
#include <unistd.h>
#define LEIME_HAVE_FSYNC 1
#endif

namespace leime::util {

std::string csv_escape(const std::string& cell) {
  const bool needs_quotes =
      cell.find_first_of(",\"\n\r") != std::string::npos;
  if (!needs_quotes) return cell;
  std::string out = "\"";
  for (char ch : cell) {
    if (ch == '"') out += "\"\"";
    else out += ch;
  }
  out += '"';
  return out;
}

bool fsync_path(const std::string& path) noexcept {
#ifdef LEIME_HAVE_FSYNC
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) return false;
  const bool ok = ::fsync(fd) == 0;
  ::close(fd);
  return ok;
#else
  (void)path;
  return true;
#endif
}

CsvWriter::CsvWriter(const std::string& path,
                     const std::vector<std::string>& header)
    : path_(path), out_(path), width_(header.size()) {
  if (!out_) throw std::runtime_error("CsvWriter: cannot open " + path);
  if (header.empty())
    throw std::invalid_argument("CsvWriter: empty header");
  write_row(header);
  rows_written_ = 0;  // header does not count
}

CsvWriter::~CsvWriter() {
  try {
    close();
  } catch (const std::exception& e) {
    // A destructor cannot throw; surface the data loss instead of
    // swallowing it.
    std::cerr << "CsvWriter: " << e.what() << "\n";
  }
}

void CsvWriter::add_row(const std::vector<std::string>& cells) {
  if (closed_)
    throw std::runtime_error("CsvWriter: add_row after close: " + path_);
  if (cells.size() != width_)
    throw std::invalid_argument("CsvWriter: row width mismatch");
  write_row(cells);
  if (!out_.good())
    throw std::runtime_error("CsvWriter: write error on " + path_);
  ++rows_written_;
}

void CsvWriter::close() {
  if (closed_) return;
  closed_ = true;
  out_.flush();
  const bool ok = out_.good();
  out_.close();
  if (!ok || out_.fail())
    throw std::runtime_error("CsvWriter: write error on " + path_);
  if (!fsync_path(path_))
    throw std::runtime_error("CsvWriter: fsync failed for " + path_);
}

void CsvWriter::write_row(const std::vector<std::string>& cells) {
  for (std::size_t i = 0; i < cells.size(); ++i) {
    if (i) out_ << ',';
    out_ << csv_escape(cells[i]);
  }
  out_ << '\n';
}

}  // namespace leime::util
