#include "util/csv.h"

#include <stdexcept>

namespace leime::util {

std::string csv_escape(const std::string& cell) {
  const bool needs_quotes =
      cell.find_first_of(",\"\n\r") != std::string::npos;
  if (!needs_quotes) return cell;
  std::string out = "\"";
  for (char ch : cell) {
    if (ch == '"') out += "\"\"";
    else out += ch;
  }
  out += '"';
  return out;
}

CsvWriter::CsvWriter(const std::string& path,
                     const std::vector<std::string>& header)
    : out_(path), width_(header.size()) {
  if (!out_) throw std::runtime_error("CsvWriter: cannot open " + path);
  if (header.empty())
    throw std::invalid_argument("CsvWriter: empty header");
  write_row(header);
  rows_written_ = 0;  // header does not count
}

void CsvWriter::add_row(const std::vector<std::string>& cells) {
  if (cells.size() != width_)
    throw std::invalid_argument("CsvWriter: row width mismatch");
  write_row(cells);
  ++rows_written_;
}

void CsvWriter::write_row(const std::vector<std::string>& cells) {
  for (std::size_t i = 0; i < cells.size(); ++i) {
    if (i) out_ << ',';
    out_ << csv_escape(cells[i]);
  }
  out_ << '\n';
}

}  // namespace leime::util
