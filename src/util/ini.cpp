#include "util/ini.h"

#include <fstream>
#include <sstream>
#include <stdexcept>

namespace leime::util {

namespace {

std::string trim(const std::string& s) {
  const auto first = s.find_first_not_of(" \t\r");
  if (first == std::string::npos) return "";
  const auto last = s.find_last_not_of(" \t\r");
  return s.substr(first, last - first + 1);
}

std::string strip_comment(const std::string& line) {
  const auto pos = line.find_first_of("#;");
  return pos == std::string::npos ? line : line.substr(0, pos);
}

}  // namespace

std::string IniSection::get(const std::string& key,
                            const std::string& fallback) const {
  const auto it = values.find(key);
  return it == values.end() ? fallback : it->second;
}

double IniSection::get_double(const std::string& key) const {
  const auto it = values.find(key);
  if (it == values.end())
    throw std::invalid_argument("ini: [" + name + "] missing key '" + key + "'");
  try {
    std::size_t pos = 0;
    const double v = std::stod(it->second, &pos);
    if (pos != it->second.size()) throw std::invalid_argument(it->second);
    return v;
  } catch (const std::exception&) {
    throw std::invalid_argument("ini: [" + name + "] key '" + key +
                                "' is not a number: '" + it->second + "'");
  }
}

double IniSection::get_double(const std::string& key, double fallback) const {
  return has(key) ? get_double(key) : fallback;
}

long long IniSection::get_int(const std::string& key) const {
  const double v = get_double(key);
  const auto i = static_cast<long long>(v);
  if (static_cast<double>(i) != v)
    throw std::invalid_argument("ini: [" + name + "] key '" + key +
                                "' is not an integer");
  return i;
}

long long IniSection::get_int(const std::string& key,
                              long long fallback) const {
  return has(key) ? get_int(key) : fallback;
}

bool IniSection::get_bool(const std::string& key, bool fallback) const {
  if (!has(key)) return fallback;
  const std::string v = get(key);
  if (v == "true" || v == "yes" || v == "1" || v == "on") return true;
  if (v == "false" || v == "no" || v == "0" || v == "off") return false;
  throw std::invalid_argument("ini: [" + name + "] key '" + key +
                              "' is not a boolean: '" + v + "'");
}

IniFile IniFile::parse(std::istream& in) {
  IniFile file;
  std::string raw;
  int line_no = 0;
  while (std::getline(in, raw)) {
    ++line_no;
    const std::string line = trim(strip_comment(raw));
    if (line.empty()) continue;
    if (line.front() == '[') {
      if (line.back() != ']')
        throw std::invalid_argument("ini: unterminated section at line " +
                                    std::to_string(line_no));
      const std::string name = trim(line.substr(1, line.size() - 2));
      if (name.empty())
        throw std::invalid_argument("ini: empty section name at line " +
                                    std::to_string(line_no));
      file.sections_.push_back({name, {}});
      continue;
    }
    const auto eq = line.find('=');
    if (eq == std::string::npos)
      throw std::invalid_argument("ini: expected key=value at line " +
                                  std::to_string(line_no));
    if (file.sections_.empty())
      throw std::invalid_argument("ini: key/value outside a section at line " +
                                  std::to_string(line_no));
    const std::string key = trim(line.substr(0, eq));
    if (key.empty())
      throw std::invalid_argument("ini: empty key at line " +
                                  std::to_string(line_no));
    file.sections_.back().values[key] = trim(line.substr(eq + 1));
  }
  return file;
}

IniFile IniFile::parse_string(const std::string& text) {
  std::istringstream in(text);
  return parse(in);
}

IniFile IniFile::parse_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("ini: cannot open " + path);
  return parse(in);
}

std::vector<const IniSection*> IniFile::all(const std::string& name) const {
  std::vector<const IniSection*> out;
  for (const auto& s : sections_)
    if (s.name == name) out.push_back(&s);
  return out;
}

const IniSection& IniFile::only(const std::string& name) const {
  const auto matches = all(name);
  if (matches.empty())
    throw std::invalid_argument("ini: missing section [" + name + "]");
  if (matches.size() > 1)
    throw std::invalid_argument("ini: duplicated section [" + name + "]");
  return *matches.front();
}

const IniSection* IniFile::find(const std::string& name) const {
  const auto matches = all(name);
  return matches.empty() ? nullptr : matches.front();
}

}  // namespace leime::util
