// InlineFn — a fixed-capacity, never-allocating move-only callable.
//
// std::function heap-allocates any capture larger than its small-buffer
// (16 bytes on libstdc++), which made every DES event schedule/dispatch
// cycle cost one or two mallocs. InlineFn stores the callable directly in
// an in-object buffer of `Capacity` bytes and *statically rejects* anything
// that does not fit, so binding and invoking can never touch the heap. The
// capacity is part of the type: pick it from the largest capture at the
// call sites (the DES sizes EventQueue::Handler off the biggest lambda in
// simulation.cpp / resources.cpp) and the static_assert keeps it honest
// when someone grows a capture later.
//
// Deliberate non-goals: no copy (handlers run once, then die back into the
// event pool), no allocator fallback (a too-big capture is a compile
// error, not a silent malloc), no target_type/RTTI.
#pragma once

#include <cstddef>
#include <new>
#include <type_traits>
#include <utility>

namespace leime::util {

template <typename Signature, std::size_t Capacity>
class InlineFn;

template <typename R, typename... Args, std::size_t Capacity>
class InlineFn<R(Args...), Capacity> {
 public:
  /// Empty; operator bool() is false and invoking is undefined.
  InlineFn() noexcept = default;

  /// Binds any callable that fits the buffer. Compile-time contract:
  /// sizeof <= Capacity, pointer alignment, nothrow-move-constructible
  /// (the event pool relocates handlers when recycling slots).
  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::decay_t<F>, InlineFn> &&
                std::is_invocable_r_v<R, std::decay_t<F>&, Args...>>>
  InlineFn(F&& f) {  // NOLINT(google-explicit-constructor)
    using Fn = std::decay_t<F>;
    static_assert(sizeof(Fn) <= Capacity,
                  "InlineFn: capture too large for the inline buffer — "
                  "shrink the capture or grow the capacity at the owner");
    static_assert(alignof(Fn) <= alignof(void*),
                  "InlineFn: over-aligned captures are not supported");
    static_assert(std::is_nothrow_move_constructible_v<Fn>,
                  "InlineFn: callables must be nothrow-move-constructible");
    ::new (static_cast<void*>(storage_)) Fn(std::forward<F>(f));
    ops_ = &kOpsFor<Fn>;
  }

  InlineFn(InlineFn&& other) noexcept { take_from(other); }

  InlineFn& operator=(InlineFn&& other) noexcept {
    if (this != &other) {
      reset();
      take_from(other);
    }
    return *this;
  }

  InlineFn(const InlineFn&) = delete;
  InlineFn& operator=(const InlineFn&) = delete;

  ~InlineFn() { reset(); }

  /// Destroys the bound callable (if any); leaves the fn empty.
  void reset() noexcept {
    if (ops_) {
      ops_->destroy(storage_);
      ops_ = nullptr;
    }
  }

  explicit operator bool() const noexcept { return ops_ != nullptr; }

  R operator()(Args... args) {
    return ops_->invoke(storage_, std::forward<Args>(args)...);
  }

 private:
  struct Ops {
    R (*invoke)(void*, Args&&...);
    void (*relocate)(void* dst, void* src);  ///< move-construct + destroy src
    void (*destroy)(void*);
  };

  template <typename Fn>
  static constexpr Ops kOpsFor = {
      [](void* s, Args&&... args) -> R {
        return (*static_cast<Fn*>(s))(std::forward<Args>(args)...);
      },
      [](void* dst, void* src) {
        ::new (dst) Fn(std::move(*static_cast<Fn*>(src)));
        static_cast<Fn*>(src)->~Fn();
      },
      [](void* s) { static_cast<Fn*>(s)->~Fn(); },
  };

  void take_from(InlineFn& other) noexcept {
    if (other.ops_) {
      other.ops_->relocate(storage_, other.storage_);
      ops_ = other.ops_;
      other.ops_ = nullptr;
    }
  }

  alignas(void*) unsigned char storage_[Capacity];
  const Ops* ops_ = nullptr;
};

}  // namespace leime::util
