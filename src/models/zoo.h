// The model zoo: chain profiles of the four DNNs the paper evaluates.
//
// Granularity follows the paper's treatment of conv layers/blocks as atomic
// chain elements with one candidate exit after each:
//   VGG-16        : 13 conv units                       (m = 13)
//   ResNet-34     : stem + 16 basic blocks              (m = 17)
//   Inception v3  : 5 stem convs + 11 inception modules (m = 16)
//   SqueezeNet-1.0: conv1 + 8 fire modules + conv10     (m = 10)
// Inception v3's m = 16 matches the paper's fixed exits (1, 14, 16) in §II-B2.
//
// FLOPs and intermediate tensor sizes are derived from the published
// architectures at ImageNet-scale inputs (299² for Inception v3, 224² for
// the rest); heads are CIFAR-10-sized (10 classes) as in the paper's testbed.
#pragma once

#include <string>
#include <vector>

#include "models/chain_builder.h"
#include "models/profile.h"

namespace leime::models {

enum class ModelKind { kVgg16, kResNet34, kInceptionV3, kSqueezeNet };

/// Display name, e.g. "Inception-v3".
std::string to_string(ModelKind kind);

/// All four zoo kinds, in the paper's Fig. 8 order.
std::vector<ModelKind> all_model_kinds();

/// Factory for any zoo model.
ModelProfile make_profile(ModelKind kind, const ZooOptions& opts = {});

ModelProfile make_vgg16(const ZooOptions& opts = {});
ModelProfile make_resnet34(const ZooOptions& opts = {});
ModelProfile make_inception_v3(const ZooOptions& opts = {});
ModelProfile make_squeezenet(const ZooOptions& opts = {});

}  // namespace leime::models
