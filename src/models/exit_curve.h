// Parametric cumulative exit-rate curves.
//
// The paper derives σ_i from trained exit classifiers under per-exit
// confidence thresholds. This module provides parametric stand-ins used by
// the analytic benches (the nn module can substitute measured rates via
// ModelProfile::set_exit_rates). Both families guarantee σ monotone
// non-decreasing with σ_m = 1, the assumption Theorem 1 relies on.
#pragma once

#include <vector>

#include "models/profile.h"

namespace leime::models {

/// σ_i = frac_i^gamma where frac_i is the cumulative-FLOPs fraction at unit i.
///
/// gamma < 1 models easy data (many tasks exit early); gamma > 1 models hard
/// data. gamma must be positive.
std::vector<double> power_law_exit_rates(const ModelProfile& profile,
                                         double gamma);

/// Logistic-in-depth rates: σ_i = s(frac_i) rescaled so σ_m = 1, with
/// s(f) = 1 / (1 + exp(-steepness * (f - midpoint))). Allows plateau shapes
/// the power law cannot express. steepness > 0, midpoint in (0,1).
std::vector<double> logistic_exit_rates(const ModelProfile& profile,
                                        double midpoint, double steepness);

/// Saturating per-exit accuracy curve:
///   acc_i = first + (final - first) · (1 − (1 − frac_i)^knee)
/// where frac_i is the cumulative-FLOPs fraction. knee > 1 rises fast and
/// saturates (typical CNN behaviour: accuracy plateaus well before the last
/// layer). first/final in [0,1], knee > 0.
std::vector<double> saturating_exit_accuracies(const ModelProfile& profile,
                                               double first_exit_accuracy,
                                               double final_accuracy,
                                               double knee);

/// Rescales a curve so the First-exit-candidate region hits a target rate:
/// returns rates r'_i = clamp(r_i * target_first / r_first, ..., 1) keeping
/// monotonicity, where r_first is the rate at `exit_index`. Used by the
/// Fig. 3(b) data-complexity sweep. target_first in (0,1].
std::vector<double> rescale_to_first_exit_rate(std::vector<double> rates,
                                               int exit_index,
                                               double target_first);

}  // namespace leime::models
