#include "models/exit_curve.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace leime::models {

std::vector<double> power_law_exit_rates(const ModelProfile& profile,
                                         double gamma) {
  if (gamma <= 0.0)
    throw std::invalid_argument("power_law_exit_rates: gamma must be > 0");
  const int m = profile.num_units();
  const double total = profile.total_flops();
  std::vector<double> rates(static_cast<std::size_t>(m));
  for (int i = 1; i <= m; ++i) {
    const double frac = profile.prefix_flops(i) / total;
    rates[static_cast<std::size_t>(i - 1)] = std::pow(frac, gamma);
  }
  rates.back() = 1.0;
  return rates;
}

std::vector<double> logistic_exit_rates(const ModelProfile& profile,
                                        double midpoint, double steepness) {
  if (steepness <= 0.0)
    throw std::invalid_argument("logistic_exit_rates: steepness must be > 0");
  if (midpoint <= 0.0 || midpoint >= 1.0)
    throw std::invalid_argument("logistic_exit_rates: midpoint outside (0,1)");
  const int m = profile.num_units();
  const double total = profile.total_flops();
  auto s = [&](double f) { return 1.0 / (1.0 + std::exp(-steepness * (f - midpoint))); };
  const double lo = s(0.0);
  const double hi = s(1.0);
  std::vector<double> rates(static_cast<std::size_t>(m));
  for (int i = 1; i <= m; ++i) {
    const double frac = profile.prefix_flops(i) / total;
    rates[static_cast<std::size_t>(i - 1)] = (s(frac) - lo) / (hi - lo);
  }
  rates.back() = 1.0;
  return rates;
}

std::vector<double> saturating_exit_accuracies(const ModelProfile& profile,
                                               double first_exit_accuracy,
                                               double final_accuracy,
                                               double knee) {
  if (first_exit_accuracy < 0.0 || first_exit_accuracy > 1.0 ||
      final_accuracy < 0.0 || final_accuracy > 1.0)
    throw std::invalid_argument(
        "saturating_exit_accuracies: accuracies outside [0,1]");
  if (knee <= 0.0)
    throw std::invalid_argument("saturating_exit_accuracies: knee must be > 0");
  const int m = profile.num_units();
  const double total = profile.total_flops();
  std::vector<double> acc(static_cast<std::size_t>(m));
  for (int i = 1; i <= m; ++i) {
    const double frac = profile.prefix_flops(i) / total;
    acc[static_cast<std::size_t>(i - 1)] =
        first_exit_accuracy + (final_accuracy - first_exit_accuracy) *
                                  (1.0 - std::pow(1.0 - frac, knee));
  }
  acc.back() = final_accuracy;
  return acc;
}

std::vector<double> rescale_to_first_exit_rate(std::vector<double> rates,
                                               int exit_index,
                                               double target_first) {
  if (rates.empty())
    throw std::invalid_argument("rescale_to_first_exit_rate: empty rates");
  if (exit_index < 1 || exit_index > static_cast<int>(rates.size()))
    throw std::invalid_argument("rescale_to_first_exit_rate: bad exit index");
  if (target_first <= 0.0 || target_first > 1.0)
    throw std::invalid_argument(
        "rescale_to_first_exit_rate: target outside (0,1]");
  const double base = rates[static_cast<std::size_t>(exit_index - 1)];
  if (base <= 0.0)
    throw std::invalid_argument(
        "rescale_to_first_exit_rate: rate at exit index is zero");
  const double scale = target_first / base;
  for (auto& r : rates) r = std::min(1.0, r * scale);
  // Enforce monotonicity (clamping can only flatten, never invert).
  for (std::size_t i = 1; i < rates.size(); ++i)
    rates[i] = std::max(rates[i], rates[i - 1]);
  rates.back() = 1.0;
  return rates;
}

}  // namespace leime::models
