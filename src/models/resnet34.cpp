#include <string>

#include "models/chain_builder.h"
#include "models/conv_math.h"
#include "models/zoo.h"

namespace leime::models {

namespace {

/// FLOPs + output dims of a ResNet basic block (two 3x3 convs; when the
/// block changes resolution/width, the first conv strides and a 1x1
/// projection is added on the shortcut).
struct BlockResult {
  double flops;
  TensorDims out;
};

BlockResult basic_block(const TensorDims& in, int out_c, int stride) {
  const ConvSpec conv1{out_c, 3, stride, 1};
  const TensorDims mid = conv_output_dims(in, conv1);
  const ConvSpec conv2{out_c, 3, 1, 1};
  const TensorDims out = conv_output_dims(mid, conv2);
  double flops = conv_flops(in, conv1) + conv_flops(mid, conv2);
  if (stride != 1 || in.channels != out_c) {
    const ConvSpec proj{out_c, 1, stride, 0};
    flops += conv_flops(in, proj);
  }
  flops += static_cast<double>(out.elements());  // residual add
  return {flops, out};
}

}  // namespace

ModelProfile make_resnet34(const ZooOptions& opts) {
  ChainBuilder b({3, 224, 224}, opts);

  // Stem: 7x7/2 conv then 3x3/2 max pool.
  b.conv_unit("stem", ConvSpec{64, 7, 2, 3}, /*pool_k=*/3, /*pool_s=*/2);

  struct Stage {
    int blocks;
    int channels;
  };
  const Stage stages[] = {{3, 64}, {4, 128}, {6, 256}, {3, 512}};
  for (int s = 0; s < 4; ++s) {
    for (int i = 0; i < stages[s].blocks; ++i) {
      const int stride = (s > 0 && i == 0) ? 2 : 1;
      const auto r = basic_block(b.dims(), stages[s].channels, stride);
      b.block_unit("layer" + std::to_string(s + 1) + "_" + std::to_string(i),
                   r.flops, r.out);
    }
  }

  // Original head: global average pool + FC(512 -> classes).
  const double head = static_cast<double>(b.dims().elements()) +
                      fc_flops(512, opts.num_classes);
  return std::move(b).build("ResNet-34", head);
}

}  // namespace leime::models
