// FLOP and tensor-size arithmetic for convolutional architectures.
//
// Conventions: a multiply-accumulate counts as 2 FLOPs; tensors are float32
// (4 bytes/element); spatial dims follow the usual floor((H + 2p - k)/s) + 1.
#pragma once

#include <vector>

namespace leime::models {

/// Geometry of a conv feature map.
struct TensorDims {
  int channels = 0;
  int height = 0;
  int width = 0;

  /// Number of elements (C*H*W).
  long long elements() const {
    return static_cast<long long>(channels) * height * width;
  }

  /// Size in bytes at float32.
  double bytes() const { return 4.0 * static_cast<double>(elements()); }
};

/// A 2-D convolution hyperparameter set.
struct ConvSpec {
  int out_channels = 0;
  int kernel = 0;
  int stride = 1;
  int padding = 0;
};

/// Output spatial/channel dims of applying `conv` to `in`.
/// Throws std::invalid_argument if the conv does not fit (non-positive output).
TensorDims conv_output_dims(const TensorDims& in, const ConvSpec& conv);

/// FLOPs of the convolution (2 * K^2 * Cin * Cout * Hout * Wout).
double conv_flops(const TensorDims& in, const ConvSpec& conv);

/// Output dims of a max/avg pool with square kernel `k` and stride `s`
/// (padding 0, floor mode).
TensorDims pool_output_dims(const TensorDims& in, int k, int s);

/// FLOPs of a fully connected layer (2 * in * out).
double fc_flops(int in_features, int out_features);

/// FLOPs of the paper's standardized exit head: global average pool over the
/// feature map, FC(C -> hidden), FC(hidden -> classes), softmax.
double exit_head_flops(const TensorDims& feature_map, int hidden, int classes);

}  // namespace leime::models
