// Chain-DNN profiles: the model abstraction consumed by LEIME's cost model.
//
// Following the paper (§III-B2), a DNN is a chain of m atomic units (conv
// layers or conv blocks); after every unit sits one candidate exit — a small
// classifier (pool + 2 FC + softmax). A profile records, per unit, its FLOPs
// and the size in bytes of its output tensor (the data transmitted if the
// chain is cut after that unit), plus per-exit classifier FLOPs and the
// cumulative exit rate σ_i (σ_m = 1).
#pragma once

#include <string>
#include <vector>

namespace leime::models {

/// One atomic unit of the chain (a conv layer or a composite block).
struct UnitSpec {
  std::string name;       ///< human-readable, e.g. "conv3_2" or "inceptionA_1"
  double flops = 0.0;     ///< forward-pass FLOPs of the unit
  double out_bytes = 0.0; ///< bytes of the unit's output feature map
};

/// One candidate exit (classifier attached after the same-index unit).
struct ExitSpec {
  double classifier_flops = 0.0;  ///< FLOPs of the exit head
  double exit_rate = 0.0;         ///< cumulative exit probability σ_i ∈ [0,1]
  /// Accuracy of predictions made *at* this exit (among tasks it would
  /// admit under its calibrated threshold), in [0,1]. Consumed by the
  /// deadline-aware exit setting; defaults to 1 when accuracy is not
  /// modelled so latency-only workflows are unaffected.
  double exit_accuracy = 1.0;
};

/// Immutable-by-convention chain profile with validated invariants.
///
/// Units and exits are 1-indexed to match the paper's exit_1..exit_m.
class ModelProfile {
 public:
  /// Validates: non-empty, matched sizes, positive FLOPs/bytes, exit rates
  /// in [0,1], non-decreasing, and σ_m == 1. Throws std::invalid_argument.
  ModelProfile(std::string name, double input_bytes,
               std::vector<UnitSpec> units, std::vector<ExitSpec> exits);

  const std::string& name() const { return name_; }

  /// Number of units m (== number of candidate exits).
  int num_units() const { return static_cast<int>(units_.size()); }

  /// Raw input size d_0 in bytes.
  double input_bytes() const { return input_bytes_; }

  /// 1-indexed accessors; throw std::out_of_range on bad index.
  const UnitSpec& unit(int i) const;
  const ExitSpec& exit(int i) const;

  /// Sum of unit FLOPs for units 1..i; prefix_flops(0) == 0.
  double prefix_flops(int i) const;

  /// Total backbone FLOPs (excludes exit heads).
  double total_flops() const { return prefix_flops(num_units()); }

  /// Intermediate data after unit i; out_bytes(0) == input_bytes (cut before
  /// the first unit means transmitting the raw input).
  double out_bytes_after(int i) const;

  /// Replaces all cumulative exit rates (e.g. with rates measured by the nn
  /// module). Same validation as the constructor.
  void set_exit_rates(const std::vector<double>& cumulative_rates);

  /// Replaces all per-exit accuracies (values in [0,1], e.g. measured by
  /// the nn module's calibration). Throws std::invalid_argument on bad
  /// sizes or values.
  void set_exit_accuracies(const std::vector<double>& accuracies);

  /// Expected end-to-end accuracy of the ME-DNN built from (e1, e2, m):
  /// the exit-fraction-weighted mean of the selected exits' accuracies.
  double expected_accuracy(int e1, int e2) const;

 private:
  std::string name_;
  double input_bytes_;
  std::vector<UnitSpec> units_;
  std::vector<ExitSpec> exits_;
  std::vector<double> prefix_flops_;  // size m+1, [0]=0
};

}  // namespace leime::models
