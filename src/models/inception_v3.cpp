// Inception v3 as a 16-unit chain: 5 stem convs (pools folded) followed by
// 11 inception modules (3x A, reduction-A, 4x B, reduction-B, 2x C).
// Branch structures follow Szegedy et al., "Rethinking the Inception
// Architecture for Computer Vision" (CVPR'16). Within a module the branches
// run in parallel, so for the chain abstraction the module is one unit whose
// FLOPs are the branch sum and whose output is the channel concatenation.
#include <string>

#include "models/chain_builder.h"
#include "models/conv_math.h"
#include "models/zoo.h"

namespace leime::models {

namespace {

/// FLOPs of an asymmetric 1xk / kx1 conv (padding keeps H, W unchanged).
double asym_conv_flops(const TensorDims& in, int out_c, int k) {
  return 2.0 * k * in.channels * out_c * static_cast<double>(in.height) *
         in.width;
}

/// FLOPs of a square conv that keeps spatial dims (stride 1, same padding).
double same_conv_flops(const TensorDims& in, int out_c, int k) {
  return 2.0 * k * k * in.channels * out_c *
         static_cast<double>(in.height) * in.width;
}

/// FLOPs of an average/max pool with kernel k (same spatial output).
double pool_flops(const TensorDims& in, int k) {
  return static_cast<double>(k) * k * in.elements();
}

struct ModuleResult {
  double flops;
  TensorDims out;
};

ModuleResult inception_a(const TensorDims& in, int pool_proj) {
  double f = 0.0;
  // Branch 1: 1x1 -> 64.
  f += same_conv_flops(in, 64, 1);
  // Branch 2: 1x1 -> 48, 5x5 -> 64.
  f += same_conv_flops(in, 48, 1);
  f += same_conv_flops({48, in.height, in.width}, 64, 5);
  // Branch 3: 1x1 -> 64, 3x3 -> 96, 3x3 -> 96.
  f += same_conv_flops(in, 64, 1);
  f += same_conv_flops({64, in.height, in.width}, 96, 3);
  f += same_conv_flops({96, in.height, in.width}, 96, 3);
  // Branch 4: avg pool 3x3, 1x1 -> pool_proj.
  f += pool_flops(in, 3);
  f += same_conv_flops(in, pool_proj, 1);
  return {f, {64 + 64 + 96 + pool_proj, in.height, in.width}};
}

ModuleResult reduction_a(const TensorDims& in) {
  double f = 0.0;
  const int h_out = (in.height - 3) / 2 + 1;
  const int w_out = (in.width - 3) / 2 + 1;
  // Branch 1: 3x3/2 -> 384.
  f += conv_flops(in, ConvSpec{384, 3, 2, 0});
  // Branch 2: 1x1 -> 64, 3x3 -> 96, 3x3/2 -> 96.
  f += same_conv_flops(in, 64, 1);
  f += same_conv_flops({64, in.height, in.width}, 96, 3);
  f += conv_flops({96, in.height, in.width}, ConvSpec{96, 3, 2, 0});
  // Branch 3: max pool 3x3/2 (passes channels through).
  f += pool_flops(in, 3);
  return {f, {384 + 96 + in.channels, h_out, w_out}};
}

ModuleResult inception_b(const TensorDims& in, int c7) {
  double f = 0.0;
  // Branch 1: 1x1 -> 192.
  f += same_conv_flops(in, 192, 1);
  // Branch 2: 1x1 -> c7, 1x7 -> c7, 7x1 -> 192.
  f += same_conv_flops(in, c7, 1);
  f += asym_conv_flops({c7, in.height, in.width}, c7, 7);
  f += asym_conv_flops({c7, in.height, in.width}, 192, 7);
  // Branch 3: 1x1 -> c7 then four alternating 7x1/1x7, ending at 192.
  f += same_conv_flops(in, c7, 1);
  f += 3.0 * asym_conv_flops({c7, in.height, in.width}, c7, 7);
  f += asym_conv_flops({c7, in.height, in.width}, 192, 7);
  // Branch 4: avg pool, 1x1 -> 192.
  f += pool_flops(in, 3);
  f += same_conv_flops(in, 192, 1);
  return {f, {768, in.height, in.width}};
}

ModuleResult reduction_b(const TensorDims& in) {
  double f = 0.0;
  const int h_out = (in.height - 3) / 2 + 1;
  const int w_out = (in.width - 3) / 2 + 1;
  // Branch 1: 1x1 -> 192, 3x3/2 -> 320.
  f += same_conv_flops(in, 192, 1);
  f += conv_flops({192, in.height, in.width}, ConvSpec{320, 3, 2, 0});
  // Branch 2: 1x1 -> 192, 1x7 -> 192, 7x1 -> 192, 3x3/2 -> 192.
  f += same_conv_flops(in, 192, 1);
  f += 2.0 * asym_conv_flops({192, in.height, in.width}, 192, 7);
  f += conv_flops({192, in.height, in.width}, ConvSpec{192, 3, 2, 0});
  // Branch 3: max pool 3x3/2.
  f += pool_flops(in, 3);
  return {f, {320 + 192 + in.channels, h_out, w_out}};
}

ModuleResult inception_c(const TensorDims& in) {
  double f = 0.0;
  // Branch 1: 1x1 -> 320.
  f += same_conv_flops(in, 320, 1);
  // Branch 2: 1x1 -> 384, split into 1x3 -> 384 and 3x1 -> 384.
  f += same_conv_flops(in, 384, 1);
  f += 2.0 * asym_conv_flops({384, in.height, in.width}, 384, 3);
  // Branch 3: 1x1 -> 448, 3x3 -> 384, split into 1x3/3x1 -> 384 each.
  f += same_conv_flops(in, 448, 1);
  f += same_conv_flops({448, in.height, in.width}, 384, 3);
  f += 2.0 * asym_conv_flops({384, in.height, in.width}, 384, 3);
  // Branch 4: avg pool, 1x1 -> 192.
  f += pool_flops(in, 3);
  f += same_conv_flops(in, 192, 1);
  return {f, {320 + 768 + 768 + 192, in.height, in.width}};
}

}  // namespace

ModelProfile make_inception_v3(const ZooOptions& opts) {
  ChainBuilder b({3, 299, 299}, opts);

  // Stem (units 1-5).
  b.conv_unit("stem_conv1", ConvSpec{32, 3, 2, 0});             // 149x149x32
  b.conv_unit("stem_conv2", ConvSpec{32, 3, 1, 0});             // 147x147x32
  b.conv_unit("stem_conv3", ConvSpec{64, 3, 1, 1}, 3, 2);       // 73x73x64
  b.conv_unit("stem_conv4", ConvSpec{80, 1, 1, 0});             // 73x73x80
  b.conv_unit("stem_conv5", ConvSpec{192, 3, 1, 0}, 3, 2);      // 35x35x192

  // Units 6-8: Inception-A x3.
  const int pool_proj[] = {32, 64, 64};
  for (int i = 0; i < 3; ++i) {
    const auto r = inception_a(b.dims(), pool_proj[i]);
    b.block_unit("inceptionA_" + std::to_string(i + 1), r.flops, r.out);
  }
  // Unit 9: Reduction-A (35 -> 17).
  {
    const auto r = reduction_a(b.dims());
    b.block_unit("reductionA", r.flops, r.out);
  }
  // Units 10-13: Inception-B x4.
  const int c7[] = {128, 160, 160, 192};
  for (int i = 0; i < 4; ++i) {
    const auto r = inception_b(b.dims(), c7[i]);
    b.block_unit("inceptionB_" + std::to_string(i + 1), r.flops, r.out);
  }
  // Unit 14: Reduction-B (17 -> 8).
  {
    const auto r = reduction_b(b.dims());
    b.block_unit("reductionB", r.flops, r.out);
  }
  // Units 15-16: Inception-C x2.
  for (int i = 0; i < 2; ++i) {
    const auto r = inception_c(b.dims());
    b.block_unit("inceptionC_" + std::to_string(i + 1), r.flops, r.out);
  }

  // Original head: global average pool + FC(2048 -> classes).
  const double head = static_cast<double>(b.dims().elements()) +
                      fc_flops(2048, opts.num_classes);
  return std::move(b).build("Inception-v3", head);
}

}  // namespace leime::models
