// Internal helper for assembling chain profiles from architecture specs.
//
// Tracks the current feature-map geometry, appends units (single convs or
// composite blocks), folds trailing pools into the emitting unit's output
// (a partition cut transmits the post-pool tensor), and attaches the
// standardized exit head after every unit.
#pragma once

#include <string>
#include <vector>

#include "models/conv_math.h"
#include "models/profile.h"

namespace leime::models {

/// Options shared by all zoo models.
struct ZooOptions {
  int num_classes = 10;   ///< CIFAR-10-style heads, as in the paper
  int exit_hidden = 128;  ///< hidden width of the 2-FC exit classifier
  /// Default power-law exit-rate shape. 0.8 reflects the paper's CIFAR-10
  /// testbed where roughly half the images exit within the first third of
  /// the network; raise above 1 for harder datasets.
  double exit_rate_gamma = 0.8;

  /// Default saturating per-exit accuracy curve (see
  /// models::saturating_exit_accuracies); used by the deadline-aware
  /// extension, ignored by latency-only workflows.
  double first_exit_accuracy = 0.72;
  double final_accuracy = 0.91;
  double accuracy_knee = 2.5;
};

/// Builds a ModelProfile unit by unit. Not part of the public model API;
/// used by the per-architecture factory functions.
class ChainBuilder {
 public:
  ChainBuilder(TensorDims input, const ZooOptions& opts);

  /// Appends a single-conv unit; optional trailing max pool (kernel k,
  /// stride s) folded into the unit's output dims.
  void conv_unit(const std::string& name, const ConvSpec& spec,
                 int pool_k = 0, int pool_s = 0);

  /// Appends a composite unit (e.g. residual / fire / inception block) whose
  /// FLOPs the caller computed from the current dims. `out` becomes the new
  /// geometry; optional trailing pool folded as above.
  void block_unit(const std::string& name, double flops, TensorDims out,
                  int pool_k = 0, int pool_s = 0);

  /// Current feature-map geometry (input of the next unit).
  const TensorDims& dims() const { return cur_; }

  /// Finalizes the profile. `final_head_flops` is the FLOPs of the model's
  /// original classifier, which replaces the standardized head at exit_m.
  /// Exit rates are initialized to the power law from `opts`.
  ModelProfile build(const std::string& model_name,
                     double final_head_flops) &&;

 private:
  TensorDims cur_;
  ZooOptions opts_;
  double input_bytes_;
  std::vector<UnitSpec> units_;
  std::vector<ExitSpec> exits_;
};

}  // namespace leime::models
