// Plain-text serialization of chain profiles, so users can bring their own
// models (e.g. profiles measured on real hardware) without recompiling.
//
// Format (line-oriented, '#' comments allowed between records):
//   leime-profile v1
//   name <string, may contain spaces>
//   input_bytes <double>
//   units <m>
//   <unit-name> <flops> <out_bytes>            (m lines; names have no spaces)
//   exits <m>
//   <classifier_flops> <exit_rate> <exit_accuracy>   (m lines)
#pragma once

#include <iosfwd>
#include <string>

#include "models/profile.h"

namespace leime::models {

/// Writes the profile in the v1 text format.
void save_profile(const ModelProfile& profile, std::ostream& out);
void save_profile_file(const ModelProfile& profile, const std::string& path);

/// Parses a v1 text profile. Throws std::invalid_argument on malformed
/// input (bad magic, truncated records, non-numeric fields) and propagates
/// ModelProfile's own validation errors.
ModelProfile load_profile(std::istream& in);
ModelProfile load_profile_file(const std::string& path);

}  // namespace leime::models
