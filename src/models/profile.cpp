#include "models/profile.h"

#include <cmath>
#include <stdexcept>

namespace leime::models {

namespace {

void validate_rates(const std::vector<ExitSpec>& exits) {
  double prev = 0.0;
  for (std::size_t i = 0; i < exits.size(); ++i) {
    const double r = exits[i].exit_rate;
    if (r < 0.0 || r > 1.0)
      throw std::invalid_argument("ModelProfile: exit rate outside [0,1]");
    if (r + 1e-12 < prev)
      throw std::invalid_argument(
          "ModelProfile: cumulative exit rates must be non-decreasing");
    prev = r;
  }
  if (!exits.empty() && std::abs(exits.back().exit_rate - 1.0) > 1e-9)
    throw std::invalid_argument("ModelProfile: final exit rate must be 1");
}

}  // namespace

ModelProfile::ModelProfile(std::string name, double input_bytes,
                           std::vector<UnitSpec> units,
                           std::vector<ExitSpec> exits)
    : name_(std::move(name)),
      input_bytes_(input_bytes),
      units_(std::move(units)),
      exits_(std::move(exits)) {
  if (units_.empty())
    throw std::invalid_argument("ModelProfile: no units");
  if (units_.size() != exits_.size())
    throw std::invalid_argument("ModelProfile: units/exits size mismatch");
  if (input_bytes_ <= 0.0)
    throw std::invalid_argument("ModelProfile: input_bytes must be positive");
  for (const auto& u : units_) {
    if (u.flops <= 0.0 || u.out_bytes <= 0.0)
      throw std::invalid_argument("ModelProfile: unit '" + u.name +
                                  "' has non-positive flops or out_bytes");
  }
  for (const auto& e : exits_) {
    if (e.classifier_flops <= 0.0)
      throw std::invalid_argument(
          "ModelProfile: exit classifier flops must be positive");
    if (e.exit_accuracy < 0.0 || e.exit_accuracy > 1.0)
      throw std::invalid_argument(
          "ModelProfile: exit accuracy outside [0,1]");
  }
  validate_rates(exits_);

  prefix_flops_.resize(units_.size() + 1, 0.0);
  for (std::size_t i = 0; i < units_.size(); ++i)
    prefix_flops_[i + 1] = prefix_flops_[i] + units_[i].flops;
}

const UnitSpec& ModelProfile::unit(int i) const {
  if (i < 1 || i > num_units())
    throw std::out_of_range("ModelProfile::unit: index " + std::to_string(i));
  return units_[static_cast<std::size_t>(i - 1)];
}

const ExitSpec& ModelProfile::exit(int i) const {
  if (i < 1 || i > num_units())
    throw std::out_of_range("ModelProfile::exit: index " + std::to_string(i));
  return exits_[static_cast<std::size_t>(i - 1)];
}

double ModelProfile::prefix_flops(int i) const {
  if (i < 0 || i > num_units())
    throw std::out_of_range("ModelProfile::prefix_flops: index " +
                            std::to_string(i));
  return prefix_flops_[static_cast<std::size_t>(i)];
}

double ModelProfile::out_bytes_after(int i) const {
  if (i == 0) return input_bytes_;
  return unit(i).out_bytes;
}

void ModelProfile::set_exit_rates(const std::vector<double>& cumulative_rates) {
  if (cumulative_rates.size() != exits_.size())
    throw std::invalid_argument("set_exit_rates: size mismatch");
  std::vector<ExitSpec> updated = exits_;
  for (std::size_t i = 0; i < updated.size(); ++i)
    updated[i].exit_rate = cumulative_rates[i];
  validate_rates(updated);
  exits_ = std::move(updated);
}

void ModelProfile::set_exit_accuracies(const std::vector<double>& accuracies) {
  if (accuracies.size() != exits_.size())
    throw std::invalid_argument("set_exit_accuracies: size mismatch");
  for (double a : accuracies)
    if (a < 0.0 || a > 1.0)
      throw std::invalid_argument("set_exit_accuracies: value outside [0,1]");
  for (std::size_t i = 0; i < exits_.size(); ++i)
    exits_[i].exit_accuracy = accuracies[i];
}

double ModelProfile::expected_accuracy(int e1, int e2) const {
  const int m = num_units();
  if (!(1 <= e1 && e1 < e2 && e2 < m))
    throw std::invalid_argument("expected_accuracy: need 1 <= e1 < e2 < m");
  const double s1 = exit(e1).exit_rate;
  const double s2 = exit(e2).exit_rate;
  return s1 * exit(e1).exit_accuracy + (s2 - s1) * exit(e2).exit_accuracy +
         (1.0 - s2) * exit(m).exit_accuracy;
}

}  // namespace leime::models
