#include "models/chain_builder.h"
#include "models/conv_math.h"
#include "models/zoo.h"

namespace leime::models {

ModelProfile make_vgg16(const ZooOptions& opts) {
  ChainBuilder b({3, 224, 224}, opts);

  auto conv3 = [](int out_c) { return ConvSpec{out_c, 3, 1, 1}; };

  b.conv_unit("conv1_1", conv3(64));
  b.conv_unit("conv1_2", conv3(64), /*pool_k=*/2, /*pool_s=*/2);
  b.conv_unit("conv2_1", conv3(128));
  b.conv_unit("conv2_2", conv3(128), 2, 2);
  b.conv_unit("conv3_1", conv3(256));
  b.conv_unit("conv3_2", conv3(256));
  b.conv_unit("conv3_3", conv3(256), 2, 2);
  b.conv_unit("conv4_1", conv3(512));
  b.conv_unit("conv4_2", conv3(512));
  b.conv_unit("conv4_3", conv3(512), 2, 2);
  b.conv_unit("conv5_1", conv3(512));
  b.conv_unit("conv5_2", conv3(512));
  b.conv_unit("conv5_3", conv3(512), 2, 2);

  // Original VGG head: flatten 7*7*512 -> FC4096 -> FC4096 -> FC classes.
  const double head = fc_flops(7 * 7 * 512, 4096) + fc_flops(4096, 4096) +
                      fc_flops(4096, opts.num_classes);
  return std::move(b).build("VGG-16", head);
}

}  // namespace leime::models
