#include <stdexcept>

#include "models/zoo.h"

namespace leime::models {

std::string to_string(ModelKind kind) {
  switch (kind) {
    case ModelKind::kVgg16: return "VGG-16";
    case ModelKind::kResNet34: return "ResNet-34";
    case ModelKind::kInceptionV3: return "Inception-v3";
    case ModelKind::kSqueezeNet: return "SqueezeNet-1.0";
  }
  throw std::invalid_argument("to_string: unknown ModelKind");
}

std::vector<ModelKind> all_model_kinds() {
  return {ModelKind::kSqueezeNet, ModelKind::kVgg16, ModelKind::kInceptionV3,
          ModelKind::kResNet34};
}

ModelProfile make_profile(ModelKind kind, const ZooOptions& opts) {
  switch (kind) {
    case ModelKind::kVgg16: return make_vgg16(opts);
    case ModelKind::kResNet34: return make_resnet34(opts);
    case ModelKind::kInceptionV3: return make_inception_v3(opts);
    case ModelKind::kSqueezeNet: return make_squeezenet(opts);
  }
  throw std::invalid_argument("make_profile: unknown ModelKind");
}

}  // namespace leime::models
