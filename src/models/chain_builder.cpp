#include "models/chain_builder.h"

#include <stdexcept>

#include "models/exit_curve.h"

namespace leime::models {

ChainBuilder::ChainBuilder(TensorDims input, const ZooOptions& opts)
    : cur_(input), opts_(opts), input_bytes_(input.bytes()) {
  if (input.elements() <= 0)
    throw std::invalid_argument("ChainBuilder: non-positive input dims");
}

void ChainBuilder::conv_unit(const std::string& name, const ConvSpec& spec,
                             int pool_k, int pool_s) {
  const double flops = conv_flops(cur_, spec);
  TensorDims out = conv_output_dims(cur_, spec);
  block_unit(name, flops, out, pool_k, pool_s);
}

void ChainBuilder::block_unit(const std::string& name, double flops,
                              TensorDims out, int pool_k, int pool_s) {
  if (pool_k > 0) out = pool_output_dims(out, pool_k, pool_s);
  units_.push_back({name, flops, out.bytes()});
  exits_.push_back(
      {exit_head_flops(out, opts_.exit_hidden, opts_.num_classes),
       /*exit_rate=*/0.0});
  cur_ = out;
}

ModelProfile ChainBuilder::build(const std::string& model_name,
                                 double final_head_flops) && {
  if (units_.empty())
    throw std::invalid_argument("ChainBuilder::build: no units added");
  exits_.back().classifier_flops = final_head_flops;
  // Placeholder monotone ramp so the profile validates; real rates follow.
  const auto m = exits_.size();
  for (std::size_t i = 0; i < m; ++i)
    exits_[i].exit_rate = static_cast<double>(i + 1) / static_cast<double>(m);
  ModelProfile profile(model_name, input_bytes_, std::move(units_),
                       std::move(exits_));
  profile.set_exit_rates(
      power_law_exit_rates(profile, opts_.exit_rate_gamma));
  profile.set_exit_accuracies(saturating_exit_accuracies(
      profile, opts_.first_exit_accuracy, opts_.final_accuracy,
      opts_.accuracy_knee));
  return profile;
}

}  // namespace leime::models
