#include "models/profile_io.h"

#include <fstream>
#include <limits>
#include <ostream>
#include <sstream>
#include <stdexcept>
#include <vector>

namespace leime::models {

namespace {

constexpr char kMagic[] = "leime-profile v1";

/// Reads the next non-comment, non-empty line; throws on EOF.
std::string next_line(std::istream& in, const char* what) {
  std::string line;
  while (std::getline(in, line)) {
    const auto first = line.find_first_not_of(" \t\r");
    if (first == std::string::npos) continue;
    if (line[first] == '#') continue;
    if (line.back() == '\r') line.pop_back();
    return line;
  }
  throw std::invalid_argument(std::string("load_profile: unexpected EOF before ") +
                              what);
}

std::string expect_keyword_line(std::istream& in, const std::string& keyword) {
  const std::string line = next_line(in, keyword.c_str());
  if (line.rfind(keyword + " ", 0) != 0)
    throw std::invalid_argument("load_profile: expected '" + keyword +
                                "', got '" + line + "'");
  return line.substr(keyword.size() + 1);
}

double parse_double(const std::string& token, const char* what) {
  try {
    std::size_t pos = 0;
    const double v = std::stod(token, &pos);
    if (pos != token.size()) throw std::invalid_argument(token);
    return v;
  } catch (const std::exception&) {
    throw std::invalid_argument(std::string("load_profile: bad number for ") +
                                what + ": '" + token + "'");
  }
}

int parse_count(const std::string& token, const char* what) {
  const double v = parse_double(token, what);
  if (v < 1 || v > 1e6 || v != static_cast<int>(v))
    throw std::invalid_argument(std::string("load_profile: bad count for ") +
                                what);
  return static_cast<int>(v);
}

}  // namespace

void save_profile(const ModelProfile& profile, std::ostream& out) {
  out << kMagic << '\n';
  out << "name " << profile.name() << '\n';
  out.precision(std::numeric_limits<double>::max_digits10);
  out << "input_bytes " << profile.input_bytes() << '\n';
  const int m = profile.num_units();
  out << "units " << m << '\n';
  for (int i = 1; i <= m; ++i) {
    const auto& u = profile.unit(i);
    out << u.name << ' ' << u.flops << ' ' << u.out_bytes << '\n';
  }
  out << "exits " << m << '\n';
  for (int i = 1; i <= m; ++i) {
    const auto& e = profile.exit(i);
    out << e.classifier_flops << ' ' << e.exit_rate << ' ' << e.exit_accuracy
        << '\n';
  }
}

void save_profile_file(const ModelProfile& profile, const std::string& path) {
  std::ofstream out(path);
  if (!out)
    throw std::runtime_error("save_profile_file: cannot open " + path);
  save_profile(profile, out);
}

ModelProfile load_profile(std::istream& in) {
  if (next_line(in, "magic") != kMagic)
    throw std::invalid_argument("load_profile: bad magic line");
  const std::string name = expect_keyword_line(in, "name");
  const double input_bytes =
      parse_double(expect_keyword_line(in, "input_bytes"), "input_bytes");
  const int m = parse_count(expect_keyword_line(in, "units"), "units");

  std::vector<UnitSpec> units;
  units.reserve(static_cast<std::size_t>(m));
  for (int i = 0; i < m; ++i) {
    std::istringstream fields(next_line(in, "unit record"));
    UnitSpec u;
    std::string flops, bytes;
    if (!(fields >> u.name >> flops >> bytes))
      throw std::invalid_argument("load_profile: malformed unit record");
    u.flops = parse_double(flops, "unit flops");
    u.out_bytes = parse_double(bytes, "unit out_bytes");
    units.push_back(std::move(u));
  }

  const int me = parse_count(expect_keyword_line(in, "exits"), "exits");
  if (me != m)
    throw std::invalid_argument("load_profile: exits count != units count");
  std::vector<ExitSpec> exits;
  exits.reserve(static_cast<std::size_t>(m));
  for (int i = 0; i < m; ++i) {
    std::istringstream fields(next_line(in, "exit record"));
    std::string flops, rate, acc;
    if (!(fields >> flops >> rate >> acc))
      throw std::invalid_argument("load_profile: malformed exit record");
    ExitSpec e;
    e.classifier_flops = parse_double(flops, "exit flops");
    e.exit_rate = parse_double(rate, "exit rate");
    e.exit_accuracy = parse_double(acc, "exit accuracy");
    exits.push_back(e);
  }
  return ModelProfile(name, input_bytes, std::move(units), std::move(exits));
}

ModelProfile load_profile_file(const std::string& path) {
  std::ifstream in(path);
  if (!in)
    throw std::runtime_error("load_profile_file: cannot open " + path);
  return load_profile(in);
}

}  // namespace leime::models
