#include "models/conv_math.h"

#include <stdexcept>

namespace leime::models {

TensorDims conv_output_dims(const TensorDims& in, const ConvSpec& conv) {
  if (in.channels <= 0 || in.height <= 0 || in.width <= 0)
    throw std::invalid_argument("conv_output_dims: non-positive input dims");
  if (conv.out_channels <= 0 || conv.kernel <= 0 || conv.stride <= 0 ||
      conv.padding < 0)
    throw std::invalid_argument("conv_output_dims: bad conv spec");
  const int h = (in.height + 2 * conv.padding - conv.kernel) / conv.stride + 1;
  const int w = (in.width + 2 * conv.padding - conv.kernel) / conv.stride + 1;
  if (h <= 0 || w <= 0)
    throw std::invalid_argument("conv_output_dims: kernel larger than input");
  return {conv.out_channels, h, w};
}

double conv_flops(const TensorDims& in, const ConvSpec& conv) {
  const TensorDims out = conv_output_dims(in, conv);
  return 2.0 * conv.kernel * conv.kernel * in.channels *
         static_cast<double>(out.elements());
}

TensorDims pool_output_dims(const TensorDims& in, int k, int s) {
  if (k <= 0 || s <= 0)
    throw std::invalid_argument("pool_output_dims: bad pool spec");
  const int h = (in.height - k) / s + 1;
  const int w = (in.width - k) / s + 1;
  if (h <= 0 || w <= 0)
    throw std::invalid_argument("pool_output_dims: kernel larger than input");
  return {in.channels, h, w};
}

double fc_flops(int in_features, int out_features) {
  if (in_features <= 0 || out_features <= 0)
    throw std::invalid_argument("fc_flops: non-positive dims");
  return 2.0 * in_features * static_cast<double>(out_features);
}

double exit_head_flops(const TensorDims& feature_map, int hidden, int classes) {
  if (hidden <= 0 || classes <= 0)
    throw std::invalid_argument("exit_head_flops: non-positive dims");
  const double pool = static_cast<double>(feature_map.elements());
  const double fc1 = fc_flops(feature_map.channels, hidden);
  const double fc2 = fc_flops(hidden, classes);
  const double softmax = 3.0 * classes;  // exp, sum, divide
  return pool + fc1 + fc2 + softmax;
}

}  // namespace leime::models
