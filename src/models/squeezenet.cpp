#include <string>

#include "models/chain_builder.h"
#include "models/conv_math.h"
#include "models/zoo.h"

namespace leime::models {

namespace {

struct FireResult {
  double flops;
  TensorDims out;
};

/// SqueezeNet fire module: squeeze 1x1 -> s, expand 1x1 -> e1 plus expand
/// 3x3 (pad 1) -> e3, concatenated.
FireResult fire(const TensorDims& in, int s, int e1, int e3) {
  double f = conv_flops(in, ConvSpec{s, 1, 1, 0});
  const TensorDims squeezed{s, in.height, in.width};
  f += conv_flops(squeezed, ConvSpec{e1, 1, 1, 0});
  f += conv_flops(squeezed, ConvSpec{e3, 3, 1, 1});
  return {f, {e1 + e3, in.height, in.width}};
}

}  // namespace

ModelProfile make_squeezenet(const ZooOptions& opts) {
  ChainBuilder b({3, 224, 224}, opts);

  // conv1 7x7/2 + max pool 3x3/2 (SqueezeNet 1.0 layout).
  b.conv_unit("conv1", ConvSpec{96, 7, 2, 0}, /*pool_k=*/3, /*pool_s=*/2);

  struct FireSpec {
    const char* name;
    int s, e1, e3;
    bool pool_after;
  };
  const FireSpec fires[] = {
      {"fire2", 16, 64, 64, false},   {"fire3", 16, 64, 64, false},
      {"fire4", 32, 128, 128, true},  {"fire5", 32, 128, 128, false},
      {"fire6", 48, 192, 192, false}, {"fire7", 48, 192, 192, false},
      {"fire8", 64, 256, 256, true},  {"fire9", 64, 256, 256, false},
  };
  for (const auto& fs : fires) {
    const auto r = fire(b.dims(), fs.s, fs.e1, fs.e3);
    if (fs.pool_after)
      b.block_unit(fs.name, r.flops, r.out, 3, 2);
    else
      b.block_unit(fs.name, r.flops, r.out);
  }

  // conv10: 1x1 -> classes (SqueezeNet classifies with a conv, not an FC).
  b.conv_unit("conv10", ConvSpec{opts.num_classes, 1, 1, 0});

  // Original head: global average pool over the class maps + softmax.
  const double head =
      static_cast<double>(b.dims().elements()) + 3.0 * opts.num_classes;
  return std::move(b).build("SqueezeNet-1.0", head);
}

}  // namespace leime::models
