#include "sim/faults.h"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <limits>
#include <sstream>
#include <stdexcept>

namespace leime::sim {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

void check_window(const FaultWindow& w, const char* what, bool allow_open) {
  if (w.start < 0.0 || !std::isfinite(w.start))
    throw std::invalid_argument(std::string(what) +
                                ": window start must be finite and >= 0");
  if (w.end <= w.start)
    throw std::invalid_argument(
        std::string(what) +
        ": window end must be after start (got end <= start)");
  if (!allow_open && !std::isfinite(w.end))
    throw std::invalid_argument(std::string(what) +
                                ": open-ended windows are only allowed for "
                                "edge crashes (use a finite end)");
}

// Shortest round-trip double formatting, matching the JSONL sink contract.
std::string num(double v) {
  if (v == kInf) return "inf";
  std::ostringstream os;
  os.precision(std::numeric_limits<double>::max_digits10);
  os << v;
  return os.str();
}

double parse_num(const std::string& text, const std::string& key) {
  if (text == "inf") return kInf;
  try {
    std::size_t used = 0;
    const double v = std::stod(text, &used);
    if (used != text.size()) throw std::invalid_argument("trailing chars");
    return v;
  } catch (const std::exception&) {
    throw std::invalid_argument("[faults] " + key + ": '" + text +
                                "' is not a number");
  }
}

std::vector<std::string> split(const std::string& text, char sep) {
  std::vector<std::string> out;
  std::string cur;
  for (char c : text) {
    if (c == sep) {
      out.push_back(cur);
      cur.clear();
    } else if (!std::isspace(static_cast<unsigned char>(c))) {
      cur += c;
    }
  }
  if (!cur.empty()) out.push_back(cur);
  return out;
}

// "10-20" or "40-" (open end) with an optional "<prefix><idx>:" scope
// ('d' for device-scoped windows, 'a' for AP-scoped ones).
FaultWindow parse_window(const std::string& item, const std::string& key,
                         char scope_prefix = 'd') {
  FaultWindow w;
  std::string body = item;
  if (body.size() > 1 && body[0] == scope_prefix) {
    const auto colon = body.find(':');
    if (colon != std::string::npos) {
      const auto idx = body.substr(1, colon - 1);
      w.device = static_cast<int>(parse_num(idx, key));
      body = body.substr(colon + 1);
    }
  }
  const auto dash = body.find('-');
  if (dash == std::string::npos)
    throw std::invalid_argument("[faults] " + key + ": window '" + item +
                                "' must look like start-end (e.g. 10-20)");
  w.start = parse_num(body.substr(0, dash), key);
  const auto end_text = body.substr(dash + 1);
  w.end = end_text.empty() ? kInf : parse_num(end_text, key);
  return w;
}

std::vector<FaultWindow> parse_windows(const std::string& text,
                                       const std::string& key,
                                       char scope_prefix = 'd') {
  std::vector<FaultWindow> out;
  for (const auto& item : split(text, ','))
    out.push_back(parse_window(item, key, scope_prefix));
  return out;
}

// "2:30-60" (device 2 leaves at 30, rejoins at 60) or "2:30-" (never).
ChurnEvent parse_churn_event(const std::string& item) {
  const auto colon = item.find(':');
  if (colon == std::string::npos)
    throw std::invalid_argument(
        "[faults] churn: entry '" + item +
        "' must look like device:leave-rejoin (e.g. 2:30-60 or 2:30-)");
  ChurnEvent e;
  e.device = static_cast<int>(parse_num(item.substr(0, colon), "churn"));
  const auto body = item.substr(colon + 1);
  const auto dash = body.find('-');
  if (dash == std::string::npos)
    throw std::invalid_argument("[faults] churn: entry '" + item +
                                "' is missing the leave-rejoin range");
  e.leave = parse_num(body.substr(0, dash), "churn");
  const auto rejoin_text = body.substr(dash + 1);
  e.rejoin = rejoin_text.empty() ? -1.0 : parse_num(rejoin_text, "churn");
  return e;
}

std::string window_to_string(const FaultWindow& w, char scope_prefix = 'd') {
  std::string out;
  if (w.device >= 0) out += scope_prefix + std::to_string(w.device) + ":";
  out += num(w.start) + "-";
  if (std::isfinite(w.end)) out += num(w.end);
  return out;
}

}  // namespace

bool FaultPlan::enabled() const {
  return link.rate > 0.0 || !link.windows.empty() || edge.rate > 0.0 ||
         !edge.windows.empty() || !churn.events.empty() ||
         !ap_windows.empty();
}

void FaultPlan::validate(std::size_t num_devices) const {
  if (link.rate < 0.0)
    throw std::invalid_argument(
        "faults: link_outage_rate must be >= 0 (outage onsets per device "
        "per second)");
  if (link.mean_duration <= 0.0)
    throw std::invalid_argument("faults: link_outage_mean_s must be > 0");
  if (edge.rate < 0.0)
    throw std::invalid_argument(
        "faults: edge_crash_rate must be >= 0 (crashes per second)");
  if (edge.mean_downtime <= 0.0)
    throw std::invalid_argument("faults: edge_downtime_mean_s must be > 0");
  for (const auto& w : link.windows) {
    check_window(w, "faults: link_outage_windows", /*allow_open=*/false);
    if (w.device < -1 || w.device >= static_cast<int>(num_devices))
      throw std::invalid_argument(
          "faults: link_outage_windows names device " +
          std::to_string(w.device) + " but the fleet has " +
          std::to_string(num_devices) + " devices");
  }
  for (const auto& w : edge.windows)
    check_window(w, "faults: edge_down_windows", /*allow_open=*/true);
  for (const auto& w : ap_windows) {
    check_window(w, "faults: ap_outage_windows", /*allow_open=*/false);
    if (w.device < -1)
      throw std::invalid_argument(
          "faults: ap_outage_windows AP index must be >= 0 (or omit the "
          "a<idx>: scope for every AP)");
  }
  for (const auto& e : churn.events) {
    if (e.device < 0 || e.device >= static_cast<int>(num_devices))
      throw std::invalid_argument("faults: churn names device " +
                                  std::to_string(e.device) +
                                  " but the fleet has " +
                                  std::to_string(num_devices) + " devices");
    if (e.leave < 0.0 || !std::isfinite(e.leave))
      throw std::invalid_argument(
          "faults: churn leave time must be finite and >= 0");
    if (e.rejoin >= 0.0 && e.rejoin <= e.leave)
      throw std::invalid_argument(
          "faults: churn rejoin must be after leave (omit it for a "
          "permanent departure)");
  }
  if (degradation.detection_timeout <= 0.0)
    throw std::invalid_argument("faults: detection_timeout_s must be > 0");
  if (degradation.task_timeout < 0.0)
    throw std::invalid_argument(
        "faults: task_timeout_s must be >= 0 (0 disables task timeouts)");
  if (degradation.max_retries < 0)
    throw std::invalid_argument("faults: max_retries must be >= 0");
  if (degradation.retry_backoff < 0.0)
    throw std::invalid_argument("faults: retry_backoff_s must be >= 0");
  if (degradation.probe_period <= 0.0)
    throw std::invalid_argument("faults: probe_period_s must be > 0");
}

std::vector<FaultWindow> merge_windows(std::vector<FaultWindow> windows) {
  std::sort(windows.begin(), windows.end(),
            [](const FaultWindow& a, const FaultWindow& b) {
              return a.start < b.start;
            });
  std::vector<FaultWindow> out;
  for (const auto& w : windows) {
    if (!out.empty() && w.start <= out.back().end)
      out.back().end = std::max(out.back().end, w.end);
    else
      out.push_back(w);
  }
  return out;
}

bool down_at(const std::vector<FaultWindow>& windows, double t) {
  for (const auto& w : windows) {
    if (t < w.start) return false;
    if (t < w.end) return true;
  }
  return false;
}

std::size_t FaultTimeline::link_outage_count() const {
  std::size_t n = 0;
  for (const auto& lane : link_down) n += lane.size();
  return n;
}

bool FaultTimeline::edge_up_at(double t) const {
  return !down_at(edge_down, t);
}

double FaultTimeline::next_edge_up(double t) const {
  for (const auto& w : edge_down) {
    if (t < w.start) return t;
    if (t < w.end) return w.end;  // +inf when the window never closes
  }
  return t;
}

FaultTimeline materialize_faults(const FaultPlan& plan,
                                 std::size_t num_devices, double horizon,
                                 util::Rng& rng) {
  FaultTimeline tl;
  tl.link_down.assign(num_devices, {});
  for (const auto& w : plan.link.windows) {
    if (w.device < 0)
      for (auto& lane : tl.link_down) lane.push_back(w);
    else
      tl.link_down[static_cast<std::size_t>(w.device)].push_back(w);
  }
  if (plan.link.rate > 0.0) {
    for (auto& lane : tl.link_down) {
      double t = 0.0;
      while ((t += rng.exponential(plan.link.rate)) < horizon) {
        const double d = rng.exponential(1.0 / plan.link.mean_duration);
        lane.push_back({t, t + d, -1});
        t += d;
      }
    }
  }
  for (auto& lane : tl.link_down) lane = merge_windows(std::move(lane));

  tl.edge_down = plan.edge.windows;
  if (plan.edge.rate > 0.0) {
    double t = 0.0;
    while ((t += rng.exponential(plan.edge.rate)) < horizon) {
      const double d = rng.exponential(1.0 / plan.edge.mean_downtime);
      tl.edge_down.push_back({t, t + d, -1});
      t += d;
    }
  }
  tl.edge_down = merge_windows(std::move(tl.edge_down));

  tl.ap_down = plan.ap_windows;

  tl.churn = plan.churn.events;
  std::sort(tl.churn.begin(), tl.churn.end(),
            [](const ChurnEvent& a, const ChurnEvent& b) {
              return a.leave < b.leave;
            });
  return tl;
}

FaultPlan parse_faults_section(const util::IniSection& section) {
  static const char* kKnown[] = {
      "link_outage_windows", "link_outage_rate",    "link_outage_mean_s",
      "edge_down_windows",   "edge_crash_rate",     "edge_downtime_mean_s",
      "ap_outage_windows",   "churn",               "detection_timeout_s",
      "task_timeout_s",      "max_retries",         "retry_backoff_s",
      "probe_period_s"};
  for (const auto& [key, value] : section.values) {
    (void)value;
    if (std::find_if(std::begin(kKnown), std::end(kKnown),
                     [&](const char* k) { return key == k; }) ==
        std::end(kKnown)) {
      std::string valid;
      for (const char* k : kKnown) valid += std::string(" ") + k;
      throw std::invalid_argument("[faults] unknown key '" + key +
                                  "' (valid keys:" + valid + ")");
    }
  }

  FaultPlan plan;
  if (section.has("link_outage_windows"))
    plan.link.windows =
        parse_windows(section.get("link_outage_windows"), "link_outage_windows");
  plan.link.rate = section.get_double("link_outage_rate", plan.link.rate);
  plan.link.mean_duration =
      section.get_double("link_outage_mean_s", plan.link.mean_duration);
  if (section.has("edge_down_windows"))
    plan.edge.windows =
        parse_windows(section.get("edge_down_windows"), "edge_down_windows");
  plan.edge.rate = section.get_double("edge_crash_rate", plan.edge.rate);
  plan.edge.mean_downtime =
      section.get_double("edge_downtime_mean_s", plan.edge.mean_downtime);
  if (section.has("ap_outage_windows"))
    plan.ap_windows = parse_windows(section.get("ap_outage_windows"),
                                    "ap_outage_windows", 'a');
  if (section.has("churn"))
    for (const auto& item : split(section.get("churn"), ','))
      plan.churn.events.push_back(parse_churn_event(item));
  auto& deg = plan.degradation;
  deg.detection_timeout =
      section.get_double("detection_timeout_s", deg.detection_timeout);
  deg.task_timeout = section.get_double("task_timeout_s", deg.task_timeout);
  deg.max_retries =
      static_cast<int>(section.get_int("max_retries", deg.max_retries));
  deg.retry_backoff =
      section.get_double("retry_backoff_s", deg.retry_backoff);
  deg.probe_period = section.get_double("probe_period_s", deg.probe_period);
  return plan;
}

std::string serialize_faults_ini(const FaultPlan& plan) {
  std::ostringstream os;
  os << "[faults]\n";
  auto windows_line = [&](const char* key,
                          const std::vector<FaultWindow>& windows) {
    if (windows.empty()) return;
    os << key << " = ";
    for (std::size_t i = 0; i < windows.size(); ++i)
      os << (i ? "," : "") << window_to_string(windows[i]);
    os << "\n";
  };
  windows_line("link_outage_windows", plan.link.windows);
  os << "link_outage_rate = " << num(plan.link.rate) << "\n"
     << "link_outage_mean_s = " << num(plan.link.mean_duration) << "\n";
  windows_line("edge_down_windows", plan.edge.windows);
  os << "edge_crash_rate = " << num(plan.edge.rate) << "\n"
     << "edge_downtime_mean_s = " << num(plan.edge.mean_downtime) << "\n";
  if (!plan.ap_windows.empty()) {
    os << "ap_outage_windows = ";
    for (std::size_t i = 0; i < plan.ap_windows.size(); ++i)
      os << (i ? "," : "") << window_to_string(plan.ap_windows[i], 'a');
    os << "\n";
  }
  if (!plan.churn.events.empty()) {
    os << "churn = ";
    for (std::size_t i = 0; i < plan.churn.events.size(); ++i) {
      const auto& e = plan.churn.events[i];
      os << (i ? "," : "") << e.device << ":" << num(e.leave) << "-";
      if (e.rejoin >= 0.0) os << num(e.rejoin);
    }
    os << "\n";
  }
  const auto& deg = plan.degradation;
  os << "detection_timeout_s = " << num(deg.detection_timeout) << "\n"
     << "task_timeout_s = " << num(deg.task_timeout) << "\n"
     << "max_retries = " << deg.max_retries << "\n"
     << "retry_backoff_s = " << num(deg.retry_backoff) << "\n"
     << "probe_period_s = " << num(deg.probe_period) << "\n";
  return os.str();
}

}  // namespace leime::sim
