#include "sim/scenario_ini.h"

#include <algorithm>
#include <cctype>
#include <stdexcept>

#include "core/exit_setting.h"
#include "models/profile_io.h"
#include "models/zoo.h"
#include "policy/engine.h"

namespace leime::sim {

ObsConfig parse_observability_section(const util::IniSection& section) {
  static const char* kKnown[] = {"metrics",        "trace_sample",
                                 "timeseries",     "metrics_out",
                                 "metrics_jsonl",  "trace_out",
                                 "timeseries_out", "attribution",
                                 "attribution_out", "calibration_out"};
  for (const auto& [key, value] : section.values) {
    (void)value;
    if (std::find_if(std::begin(kKnown), std::end(kKnown),
                     [&](const char* k) { return key == k; }) ==
        std::end(kKnown)) {
      std::string valid;
      for (const char* k : kKnown) valid += std::string(" ") + k;
      throw std::invalid_argument("[observability] unknown key '" + key +
                                  "' (valid keys:" + valid + ")");
    }
  }

  ObsConfig obs;
  obs.metrics = section.get_bool("metrics", false);
  const long long sample = section.get_int("trace_sample", 0);
  if (sample < 0)
    throw std::invalid_argument("[observability] trace_sample must be >= 0");
  obs.trace_sample = static_cast<std::uint64_t>(sample);
  obs.timeseries = section.get_bool("timeseries", false);
  obs.metrics_out = section.get("metrics_out", "");
  obs.metrics_jsonl = section.get("metrics_jsonl", "");
  obs.trace_out = section.get("trace_out", "");
  obs.timeseries_out = section.get("timeseries_out", "");
  obs.attribution = section.get_bool("attribution", false);
  obs.attribution_out = section.get("attribution_out", "");
  obs.calibration_out = section.get("calibration_out", "");
  return obs;
}

obs::SloConfig parse_slo_section(const util::IniSection& section) {
  static const char* kKnown[] = {"deadline_ms",     "window_s",
                                 "target_miss_rate", "burn_threshold",
                                 "min_window_tasks", "alerts_out"};
  for (const auto& [key, value] : section.values) {
    (void)value;
    if (std::find_if(std::begin(kKnown), std::end(kKnown),
                     [&](const char* k) { return key == k; }) ==
        std::end(kKnown)) {
      std::string valid;
      for (const char* k : kKnown) valid += std::string(" ") + k;
      throw std::invalid_argument("[slo] unknown key '" + key +
                                  "' (valid keys:" + valid + ")");
    }
  }

  obs::SloConfig slo;
  slo.deadline = util::ms(section.get_double("deadline_ms", 0.0));
  // deadline_ms = 0 (or unset) disables the monitor; the remaining keys
  // are still parsed so a disabled section fails fast on typos.
  slo.window = section.get_double("window_s", slo.window);
  slo.target_miss_rate =
      section.get_double("target_miss_rate", slo.target_miss_rate);
  slo.burn_threshold =
      section.get_double("burn_threshold", slo.burn_threshold);
  const long long min_tasks = section.get_int(
      "min_window_tasks", static_cast<long long>(slo.min_window_tasks));
  if (min_tasks < 1)
    throw std::invalid_argument("[slo] min_window_tasks must be >= 1");
  slo.min_window_tasks = static_cast<std::size_t>(min_tasks);
  slo.alerts_out = section.get("alerts_out", "");
  try {
    slo.validate();
  } catch (const std::exception& e) {
    throw std::invalid_argument(std::string("[slo] ") + e.what());
  }
  return slo;
}

obs::ProvenanceConfig parse_provenance_section(
    const util::IniSection& section) {
  static const char* kKnown[] = {"sample_n", "ring_capacity",
                                 "oracle_sample_n", "decisions_out",
                                 "dump_out"};
  for (const auto& [key, value] : section.values) {
    (void)value;
    if (std::find_if(std::begin(kKnown), std::end(kKnown),
                     [&](const char* k) { return key == k; }) ==
        std::end(kKnown)) {
      std::string valid;
      for (const char* k : kKnown) valid += std::string(" ") + k;
      throw std::invalid_argument("[provenance] unknown key '" + key +
                                  "' (valid keys:" + valid + ")");
    }
  }

  obs::ProvenanceConfig prov;
  const long long sample = section.get_int("sample_n", 0);
  if (sample < 0)
    throw std::invalid_argument("[provenance] sample_n must be >= 0");
  prov.sample_n = static_cast<std::uint64_t>(sample);
  // sample_n = 0 still parses the rest (fail fast on typos); an output
  // path or oracle request implies 1-in-1 sampling (effective_sample_n).
  const long long ring = section.get_int(
      "ring_capacity", static_cast<long long>(prov.ring_capacity));
  if (ring < 1)
    throw std::invalid_argument("[provenance] ring_capacity must be >= 1");
  prov.ring_capacity = static_cast<std::size_t>(ring);
  const long long oracle = section.get_int("oracle_sample_n", 0);
  if (oracle < 0)
    throw std::invalid_argument("[provenance] oracle_sample_n must be >= 0");
  prov.oracle_sample_n = static_cast<std::uint64_t>(oracle);
  prov.decisions_out = section.get("decisions_out", "");
  prov.dump_out = section.get("dump_out", "");
  try {
    prov.validate();
  } catch (const std::exception& e) {
    throw std::invalid_argument(std::string("[provenance] ") + e.what());
  }
  return prov;
}

net::TopologyConfig parse_topology_section(const util::IniSection& section) {
  static const char* kKnown[] = {"aps", "ap_mbps", "ap_latency_ms",
                                 "device_map", "queue_limit_kb"};
  for (const auto& [key, value] : section.values) {
    (void)value;
    if (std::find_if(std::begin(kKnown), std::end(kKnown),
                     [&](const char* k) { return key == k; }) ==
        std::end(kKnown)) {
      std::string valid;
      for (const char* k : kKnown) valid += std::string(" ") + k;
      throw std::invalid_argument("[topology] unknown key '" + key +
                                  "' (valid keys:" + valid + ")");
    }
  }

  net::TopologyConfig topo;
  topo.aps = static_cast<int>(section.get_int("aps", 0));
  // aps = 0 (or unset) disables the fabric; the remaining keys are ignored
  // so a disabled section stays byte-identical to no section at all.
  if (topo.aps <= 0) return topo;
  topo.ap_bandwidth = util::mbps(section.get_double("ap_mbps", 100.0));
  topo.ap_latency = util::ms(section.get_double("ap_latency_ms", 0.0));
  topo.queue_limit_bytes =
      1024.0 * section.get_double("queue_limit_kb", 0.0);
  if (section.has("device_map")) {
    std::string cur;
    auto flush = [&] {
      if (cur.empty()) return;
      try {
        std::size_t used = 0;
        topo.device_map.push_back(std::stoi(cur, &used));
        if (used != cur.size()) throw std::invalid_argument("trailing");
      } catch (const std::exception&) {
        throw std::invalid_argument("[topology] device_map entry '" + cur +
                                    "' is not an AP index");
      }
      cur.clear();
    };
    for (char c : section.get("device_map")) {
      if (c == ',')
        flush();
      else if (!std::isspace(static_cast<unsigned char>(c)))
        cur += c;
    }
    flush();
  }
  return topo;
}

ShardOptions parse_shards_section(const util::IniSection& section) {
  static const char* kKnown[] = {"shards", "threads", "window_ms"};
  for (const auto& [key, value] : section.values) {
    (void)value;
    if (std::find_if(std::begin(kKnown), std::end(kKnown),
                     [&](const char* k) { return key == k; }) ==
        std::end(kKnown)) {
      std::string valid;
      for (const char* k : kKnown) valid += std::string(" ") + k;
      throw std::invalid_argument("[shards] unknown key '" + key +
                                  "' (valid keys:" + valid + ")");
    }
  }

  ShardOptions shards;
  const long long count = section.get_int("shards", 1);
  if (count < 1)
    throw std::invalid_argument("[shards] shards must be >= 1");
  shards.shards = static_cast<std::size_t>(count);
  shards.threads = static_cast<int>(section.get_int("threads", 0));
  shards.window_s = util::ms(section.get_double("window_ms", 0.0));
  try {
    shards.validate();
  } catch (const std::exception& e) {
    throw std::invalid_argument(std::string("[shards] ") + e.what());
  }
  return shards;
}

policy::Config parse_policy_section(const util::IniSection& section) {
  static const char* kKnown[] = {"memo_cache", "warm_start", "batch_eq20",
                                 "cache_capacity", "quant_per_octave"};
  for (const auto& [key, value] : section.values) {
    (void)value;
    if (std::find_if(std::begin(kKnown), std::end(kKnown),
                     [&](const char* k) { return key == k; }) ==
        std::end(kKnown)) {
      std::string valid;
      for (const char* k : kKnown) valid += std::string(" ") + k;
      throw std::invalid_argument("[policy] unknown key '" + key +
                                  "' (valid keys:" + valid + ")");
    }
  }

  policy::Config pol;
  pol.memo_cache = section.get_bool("memo_cache", false);
  pol.warm_start = section.get_bool("warm_start", false);
  pol.batch_eq20 = section.get_bool("batch_eq20", false);
  const long long capacity =
      section.get_int("cache_capacity",
                      static_cast<long long>(pol.cache_capacity));
  if (capacity < 1)
    throw std::invalid_argument("[policy] cache_capacity must be >= 1");
  pol.cache_capacity = static_cast<std::size_t>(capacity);
  pol.quant_per_octave =
      static_cast<int>(section.get_int("quant_per_octave",
                                       pol.quant_per_octave));
  try {
    pol.validate();
  } catch (const std::exception& e) {
    throw std::invalid_argument(std::string("[policy] ") + e.what());
  }
  return pol;
}

void apply_obs_overrides(ObsConfig& obs, const std::string& metrics_out,
                         const std::string& trace_out) {
  if (!metrics_out.empty()) obs.metrics_out = metrics_out;
  if (!trace_out.empty()) obs.trace_out = trace_out;
}

models::ModelProfile resolve_model_name(const std::string& name) {
  if (name == "vgg16") return models::make_vgg16();
  if (name == "resnet34") return models::make_resnet34();
  if (name == "inception") return models::make_inception_v3();
  if (name == "squeezenet") return models::make_squeezenet();
  return models::load_profile_file(name);
}

IniScenario load_scenario(const util::IniFile& ini) {
  const auto& sc = ini.only("scenario");
  const auto& edge = ini.only("edge");

  ScenarioConfig cfg;
  cfg.edge_flops = util::gflops(edge.get_double("gflops", 50.0));
  cfg.cloud_flops = util::tflops(edge.get_double("cloud_tflops", 4.0));
  cfg.edge_cloud_bw = util::mbps(edge.get_double("cloud_mbps", 100.0));
  cfg.edge_cloud_lat = util::ms(edge.get_double("cloud_latency_ms", 30.0));
  cfg.policy = sc.get("policy", "LEIME");
  cfg.duration = sc.get_double("duration", 120.0);
  cfg.warmup = sc.get_double("warmup", 5.0);
  cfg.seed = static_cast<std::uint64_t>(sc.get_int("seed", 42));
  cfg.reallocation_period = sc.get_double("reallocation_period", 0.0);
  cfg.result_bytes = sc.get_double("result_bytes", 0.0);
  const double shared_mbps = sc.get_double("shared_uplink_mbps", 0.0);
  if (shared_mbps > 0.0) cfg.shared_uplink_bw = util::mbps(shared_mbps);

  const auto devices = ini.all("device");
  if (devices.empty())
    throw std::invalid_argument("scenario file has no [device] sections");
  double flops_sum = 0.0, bw_sum = 0.0, lat_sum = 0.0;
  for (const auto* d : devices) {
    DeviceSpec dev;
    dev.flops = util::gflops(d->get_double("gflops", 0.6));
    dev.mean_rate = d->get_double("rate", 1.0);
    dev.uplink_bw = util::mbps(d->get_double("uplink_mbps", 10.0));
    dev.uplink_lat = util::ms(d->get_double("uplink_latency_ms", 20.0));
    dev.difficulty = d->get_double("difficulty", 1.0);
    dev.device_class = d->get("class", "default");
    if (dev.device_class.empty())
      throw std::invalid_argument("[device] class must not be empty");
    for (char c : dev.device_class)
      if (!((c >= 'a' && c <= 'z') || (c >= '0' && c <= '9') || c == '_'))
        throw std::invalid_argument("[device] class '" + dev.device_class +
                                    "' must match [a-z0-9_]+");
    cfg.devices.push_back(dev);
    flops_sum += dev.flops;
    bw_sum += dev.uplink_bw;
    lat_sum += dev.uplink_lat;
  }

  IniScenario out{resolve_model_name(sc.get("model", "inception")),
                  ScenarioConfig{}, {}, 0.0,
                  static_cast<int>(sc.get_int("replications", 1))};
  if (out.replications < 1)
    throw std::invalid_argument("scenario: replications must be >= 1");

  if (const auto* faults = ini.find("faults"))
    cfg.faults = parse_faults_section(*faults);
  cfg.faults.validate(cfg.devices.size());

  if (const auto* topo = ini.find("topology"))
    cfg.topology = parse_topology_section(*topo);
  cfg.topology.validate(cfg.devices.size());
  if (cfg.topology.enabled() && cfg.shared_uplink_bw > 0.0)
    throw std::invalid_argument(
        "scenario: [topology] and shared_uplink_mbps are mutually exclusive "
        "network modes");

  if (const auto* obs = ini.find("observability"))
    cfg.obs = parse_observability_section(*obs);

  if (const auto* slo = ini.find("slo")) cfg.obs.slo = parse_slo_section(*slo);

  if (const auto* prov = ini.find("provenance"))
    cfg.obs.provenance = parse_provenance_section(*prov);

  if (const auto* pol = ini.find("policy"))
    cfg.policy_core = parse_policy_section(*pol);

  if (const auto* sh = ini.find("shards"))
    cfg.shards = parse_shards_section(*sh);

  if (const auto* rt = ini.find("runtime")) {
    out.threads = static_cast<int>(rt->get_int("threads", 1));
    if (out.threads < 0)
      throw std::invalid_argument("runtime: threads must be >= 0");
    const auto seed_mode = rt->get("seed_mode", "split");
    if (seed_mode == "legacy")
      out.legacy_seeds = true;
    else if (seed_mode != "split")
      throw std::invalid_argument("runtime: seed_mode must be split|legacy");
    out.jsonl_path = rt->get("jsonl", "");
    out.trace_path = rt->get("trace", "");
    out.progress = rt->get_bool("progress", false);
  }

  // Exit setting from fleet averages (the paper's F_av / B_av).
  const auto n = static_cast<double>(cfg.devices.size());
  core::Environment env;
  env.caps.device_flops = flops_sum / n;
  env.caps.edge_flops = cfg.edge_flops / n;
  env.caps.cloud_flops = cfg.cloud_flops;
  if (cfg.topology.enabled()) {
    // Each device's effective device->edge bandwidth is capped by its fair
    // share of the AP backhaul; the AP hop adds its propagation latency.
    const double ap_share = cfg.topology.ap_bandwidth * cfg.topology.aps / n;
    double eff_sum = 0.0;
    for (const auto& dev : cfg.devices)
      eff_sum += std::min(dev.uplink_bw, ap_share);
    env.net.dev_edge_bw = eff_sum / n;
    env.net.dev_edge_lat = lat_sum / n + cfg.topology.ap_latency;
  } else {
    env.net.dev_edge_bw =
        cfg.shared_uplink_bw > 0.0 ? cfg.shared_uplink_bw / n : bw_sum / n;
    env.net.dev_edge_lat = lat_sum / n;
  }
  env.net.edge_cloud_bw = cfg.edge_cloud_bw;
  env.net.edge_cloud_lat = cfg.edge_cloud_lat;
  core::CostModel cm(out.profile, env);
  // Routed through the policy engine so [policy] fast paths also cover the
  // design-time search; with the section absent this is the plain cold B&B.
  policy::Engine design_engine(cfg.policy_core);
  const auto setting = design_engine.exit_setting(cm);
  cfg.partition = core::make_partition(out.profile, setting.combo);

  out.config = std::move(cfg);
  out.designed_exits = setting.combo;
  out.expected_tct = setting.cost;
  return out;
}

IniScenario load_scenario_file(const std::string& path) {
  return load_scenario(util::IniFile::parse_file(path));
}

}  // namespace leime::sim
