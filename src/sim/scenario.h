// Scenario description and result types for the discrete-event simulator.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "core/environment.h"
#include "core/lyapunov.h"
#include "core/partition.h"
#include "net/topology.h"
#include "obs/metrics.h"
#include "policy/engine.h"
#include "sim/faults.h"
#include "sim/observer.h"
#include "sim/shard.h"
#include "util/stats.h"
#include "util/trace.h"

namespace leime::sim {

/// How a device's tasks arrive.
enum class ArrivalKind { kPoisson, kPeriodic, kBursty, kTrace };

/// One end device of the fleet.
struct DeviceSpec {
  double flops = core::kRaspberryPiFlops;  ///< F_i^d
  double uplink_bw = leime::util::mbps(10.0);
  double uplink_lat = leime::util::ms(20.0);

  ArrivalKind arrival = ArrivalKind::kPoisson;
  double mean_rate = 5.0;  ///< tasks/s (Poisson/periodic)
  /// Rate trace for ArrivalKind::kTrace (tasks/s over time).
  std::optional<util::PiecewiseConstant> rate_trace;
  /// Bursty parameters (ArrivalKind::kBursty).
  double bursty_high_rate = 20.0;
  double bursty_dwell = 5.0;  ///< mean seconds per phase

  /// Data-complexity reshaping (1 = calibrated exit rates hold exactly).
  double difficulty = 1.0;

  /// Optional COMCAST-style uplink shaping.
  std::optional<util::PiecewiseConstant> uplink_bw_trace;
  std::optional<util::PiecewiseConstant> uplink_lat_trace;

  /// Device class label for observability grouping (attribution waterfalls
  /// and SLO windows aggregate per class). Lowercase [a-z0-9_]+; scenarios
  /// that never set it share the "default" class.
  std::string device_class = "default";
};

/// A full experiment: fleet + edge + cloud + deployed ME-DNN + policy.
struct ScenarioConfig {
  core::MeDnnPartition partition;

  double edge_flops = core::kEdgeDesktopFlops;
  double cloud_flops = core::kCloudV100Flops;
  double edge_cloud_bw = leime::util::mbps(100.0);
  double edge_cloud_lat = leime::util::ms(30.0);

  std::vector<DeviceSpec> devices;

  /// One of "LEIME", "LEIME-balance", "D-only", "E-only", "cap_based",
  /// optionally with a "+fallback" suffix (device-only while the edge is
  /// unreachable; see core::FallbackPolicy); or set fixed_ratio in [0,1]
  /// to override with a constant ratio.
  std::string policy = "LEIME";
  double fixed_ratio = -1.0;

  core::LyapunovConfig lyapunov;

  /// Policy-core fast paths (src/policy, the `[policy]` INI section):
  /// exit-setting memo cache, warm-started B&B and batched eq. 20 fleet
  /// updates. All default off — the byte-identical golden configuration;
  /// the on-configuration is proven result-identical by
  /// tests/policy/policy_diff_test.cpp and the golden invariance test.
  policy::Config policy_core;

  /// When > 0, the edge's per-device docker shares are recomputed every
  /// this many seconds from the *observed* arrival rates (eq. 27 on live
  /// statistics) instead of staying fixed at the design-time allocation.
  double reallocation_period = 0.0;

  double duration = 60.0;  ///< seconds of task generation
  double warmup = 5.0;     ///< tasks arriving before this are excluded
  std::uint64_t seed = 42;

  /// Width of the TCT timeline aggregation window (seconds).
  double timeline_window = 2.0;

  /// Model the cloud as a FIFO server at cloud_flops instead of the default
  /// uncontended service (relevant when many tasks reach block 3).
  bool cloud_fifo = false;

  /// When > 0, classification results of this many bytes return to the
  /// device over a per-device downlink (same bandwidth/latency as the
  /// uplink) — and over a cloud-return link first for block-3 completions.
  /// The paper (and the default) ignores the downlink: results are tiny.
  double result_bytes = 0.0;

  /// When non-empty, a per-task CSV trace (arrive/complete times, device,
  /// exit block, offloaded flag) is written here at the end of the run.
  std::string task_trace_path;

  /// Feed the uplink's outstanding bytes back into the eq. 8 budget (the
  /// refinement documented in DESIGN.md §5). Disable to reproduce the
  /// paper's memoryless per-slot constraint.
  bool uplink_backlog_feedback = true;

  /// When > 0, all devices share one WiFi access point of this capacity
  /// (bytes/s): every upload serializes through the shared medium (with
  /// each device's own propagation latency on top) instead of dedicated
  /// per-device links. Per-device bandwidth values and uplink traces are
  /// ignored in this mode.
  double shared_uplink_bw = 0.0;

  /// Routed multi-hop network mode (the `[topology]` INI section): when
  /// enabled(), device <-> edge <-> cloud traffic flows over a net::Fabric
  /// of per-hop FIFO routers (device -> AP -> edge -> cloud) and congestion
  /// emerges from contention on the shared AP backhaul. Disabled (the
  /// default) keeps the flat point-to-point links — the golden-output
  /// baseline. Mutually exclusive with shared_uplink_bw.
  net::TopologyConfig topology;

  /// Fault injection: link outages, edge crashes, device churn, and the
  /// graceful-degradation knobs (sim/faults.h). The default (empty) plan
  /// injects nothing and leaves the run bit-identical to a fault-free
  /// build. In shared-uplink mode every link outage window applies to the
  /// shared AP.
  FaultPlan faults;

  /// Observability: metrics registry, task-lifecycle tracing and per-slot
  /// queue telemetry (sim/observer.h). The default keeps everything off —
  /// a disabled run takes the zero-overhead path (one null-pointer branch
  /// per hook site) and is bit-identical to a build without the layer.
  /// When enabled, the simulator owns a RecordingObserver, attaches its
  /// metrics snapshot to SimResult::metrics and writes the configured
  /// output files at the end of the run.
  ObsConfig obs;

  /// Optional externally-owned observer (wins over `obs` when set). The
  /// embedder keeps ownership, receives every hook, and handles its own
  /// exporting; SimResult::metrics stays empty. One observer per run —
  /// never share an instance across parallel runtime cells.
  Observer* observer = nullptr;

  /// Sharded parallel execution (the `[shards]` INI section, DESIGN.md
  /// §15): the fleet is partitioned into ShardOptions::shards event
  /// queues advanced in conservative time windows by a thread pool.
  /// Off (shards = 1, the default) keeps the single-queue golden path;
  /// on, results are byte-identical for any shards/threads combination
  /// but the feature set is restricted (flat links, no cloud FIFO /
  /// result downlink / external observer; obs limited to metrics).
  ShardOptions shards;
};

/// Aggregated outcome of a run.
struct SimResult {
  util::Summary tct;  ///< over completed, post-warmup tasks
  std::size_t generated = 0;
  std::size_t completed = 0;  ///< completed out of the counted (post-warmup)
  /// Task conservation: every generated task is either completed or still
  /// pending at the end of the drain, so generated == total_completed +
  /// in_flight always holds (the fault property-test contract). Without
  /// never-healing faults, in_flight is 0.
  std::size_t total_completed = 0;  ///< completed including warmup tasks
  std::size_t in_flight = 0;        ///< still pending when the run ended
  double exit1_fraction = 0.0;
  double exit2_fraction = 0.0;
  double exit3_fraction = 0.0;
  double mean_offload_ratio = 0.0;  ///< decision-averaged across slots
  double mean_device_queue = 0.0;   ///< slot-averaged Q_i over fleet
  double mean_edge_queue = 0.0;     ///< slot-averaged H_i over fleet

  struct TimelinePoint {
    double time = 0.0;      ///< window centre
    double mean_tct = 0.0;  ///< mean TCT of tasks completed in the window
    std::size_t count = 0;
  };
  std::vector<TimelinePoint> timeline;

  /// Fault-layer telemetry (all zero for an empty FaultPlan).
  struct FaultStats {
    std::size_t link_outages = 0;  ///< materialized windows, fleet-wide
    std::size_t edge_crashes = 0;
    std::size_t churn_events = 0;
    std::size_t failed_over = 0;  ///< edge-side work failed back to devices
    std::size_t retries = 0;      ///< task-timeout re-dispatches
    std::size_t local_fallbacks = 0;  ///< retry budget exhausted -> device
    std::size_t fallback_slots = 0;   ///< x == 0 decisions with edge down
    std::size_t parked = 0;  ///< failed-over tasks still pending at end
  };
  FaultStats faults;

  /// Fabric telemetry (topology mode only; `active` is false — and the
  /// JSONL sink omits the record — on the flat-link path).
  struct NetStats {
    bool active = false;
    std::size_t transfers = 0;  ///< flows started
    std::size_t delivered = 0;  ///< flows that reached their destination
    std::size_t hops = 0;       ///< hop transfers admitted
    std::size_t drops = 0;      ///< flows dropped at a full port queue
    double bytes = 0.0;         ///< payload bytes across started flows
    double max_backlog_bytes = 0.0;  ///< peak port backlog at admission
  };
  NetStats net;

  /// Metrics-registry snapshot of the run's owned RecordingObserver;
  /// empty() unless ScenarioConfig::obs enabled metrics. Rides through the
  /// runtime sinks (JSONL emits it only when non-empty, preserving the
  /// golden-output bytes of disabled runs) and merges deterministically
  /// across cells.
  obs::Snapshot metrics;

  /// Latency-attribution summary of the run's owned RecordingObserver;
  /// `active` is false (and the JSONL sink omits the block) unless
  /// ObsConfig::attribution_enabled(). Merges in plan order across cells.
  obs::AttributionSummary attribution;

  /// SLO monitor summary (deadline miss-rate / burn-rate alerting);
  /// `active` is false unless ObsConfig::slo.enabled().
  obs::SloSummary slo;

  /// Decision-provenance + oracle-regret summary (DESIGN.md §14);
  /// `active` is false unless ObsConfig::provenance is enabled.
  obs::ProvenanceSummary provenance;

  /// Total discrete events the run executed, summed across shard queues
  /// in sharded mode. A strict counter: host-independent and (unlike wall
  /// medians) byte-comparable across machines — what bench_compare.py
  /// gates the micro_sim DES cases on. Not serialized by the JSONL sink.
  std::uint64_t events_executed = 0;

  /// Per-device breakdown (index-aligned with ScenarioConfig::devices).
  struct DeviceResult {
    util::Summary tct;
    std::size_t completed = 0;
    double mean_offload_ratio = 0.0;
    std::size_t failed_over = 0;
    std::size_t retries = 0;
    std::size_t fallback_slots = 0;
  };
  std::vector<DeviceResult> per_device;
};

}  // namespace leime::sim
