#include "sim/multi_edge.h"

#include <algorithm>
#include <limits>
#include <numeric>
#include <stdexcept>

#include "core/exit_setting.h"
#include "policy/engine.h"
#include "sim/simulation.h"
#include "util/check.h"

namespace leime::sim {

namespace {

void validate(const MultiEdgeConfig& cfg) {
  if (cfg.edges.empty())
    throw std::invalid_argument("MultiEdgeConfig: no edges");
  if (cfg.devices.empty())
    throw std::invalid_argument("MultiEdgeConfig: no devices");
  if (cfg.links.size() != cfg.devices.size())
    throw std::invalid_argument("MultiEdgeConfig: link matrix rows mismatch");
  for (const auto& row : cfg.links)
    if (row.size() != cfg.edges.size())
      throw std::invalid_argument(
          "MultiEdgeConfig: link matrix columns mismatch");
}

/// Expected TCT of device d on edge e under the LEIME cost model, with the
/// edge's capacity discounted by the FLOP load already assigned to it.
/// Routed through the policy engine: same-class devices probing the same
/// edge repeat exact environments, so the memo cache answers most of the
/// association loop's searches; with default knobs the call is the plain
/// cold branch-and-bound.
double expected_tct_on_edge(const MultiEdgeConfig& cfg,
                            const models::ModelProfile& profile, int d, int e,
                            double assigned_rate, policy::Engine& engine,
                            policy::Incumbent& incumbent) {
  core::Environment env;
  env.caps.device_flops = cfg.devices[static_cast<std::size_t>(d)].flops;
  // Heuristic capacity discount: each already-assigned task/s of load takes
  // an equal share of the edge; the candidate device sees what remains,
  // never less than 10%.
  const double own_rate =
      std::max(0.1, cfg.devices[static_cast<std::size_t>(d)].mean_rate);
  const double share = own_rate / std::max(own_rate, assigned_rate + own_rate);
  env.caps.edge_flops =
      std::max(0.1, share) * cfg.edges[static_cast<std::size_t>(e)].flops;
  env.caps.cloud_flops = cfg.cloud_flops;
  const auto& link =
      cfg.links[static_cast<std::size_t>(d)][static_cast<std::size_t>(e)];
  env.net.dev_edge_bw = link.bandwidth;
  env.net.dev_edge_lat = link.latency;
  env.net.edge_cloud_bw = cfg.edges[static_cast<std::size_t>(e)].cloud_bw;
  env.net.edge_cloud_lat = cfg.edges[static_cast<std::size_t>(e)].cloud_lat;
  core::CostModel cm(profile, env);
  return engine.exit_setting(cm, &incumbent).cost;
}

}  // namespace

std::string to_string(AssociationPolicy policy) {
  switch (policy) {
    case AssociationPolicy::kBestLink: return "best-link";
    case AssociationPolicy::kLeastLoaded: return "least-loaded";
    case AssociationPolicy::kLeimeAware: return "LEIME-aware";
  }
  throw std::invalid_argument("to_string: unknown AssociationPolicy");
}

std::vector<int> associate(const MultiEdgeConfig& config,
                           const models::ModelProfile& profile,
                           AssociationPolicy policy) {
  validate(config);
  const auto n_dev = config.devices.size();
  const auto n_edge = config.edges.size();
  std::vector<int> assignment(n_dev, 0);

  switch (policy) {
    case AssociationPolicy::kBestLink: {
      for (std::size_t d = 0; d < n_dev; ++d) {
        std::size_t best = 0;
        for (std::size_t e = 1; e < n_edge; ++e)
          if (config.links[d][e].bandwidth >
              config.links[d][best].bandwidth)
            best = e;
        assignment[d] = static_cast<int>(best);
      }
      return assignment;
    }
    case AssociationPolicy::kLeastLoaded: {
      // Heaviest devices first; each picks the edge with the most capacity
      // per unit of already-assigned load.
      std::vector<std::size_t> order(n_dev);
      std::iota(order.begin(), order.end(), 0);
      std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
        return config.devices[a].mean_rate > config.devices[b].mean_rate;
      });
      std::vector<double> load(n_edge, 0.0);  // assigned tasks/s
      for (std::size_t d : order) {
        std::size_t best = 0;
        double best_headroom = -std::numeric_limits<double>::infinity();
        for (std::size_t e = 0; e < n_edge; ++e) {
          const double headroom =
              config.edges[e].flops / (1.0 + load[e]);
          if (headroom > best_headroom) {
            best_headroom = headroom;
            best = e;
          }
        }
        assignment[d] = static_cast<int>(best);
        load[best] += config.devices[d].mean_rate;
      }
      return assignment;
    }
    case AssociationPolicy::kLeimeAware: {
      // Heaviest first; each joins the edge minimising its own expected
      // TCT under the cost model, accounting for load already placed.
      std::vector<std::size_t> order(n_dev);
      std::iota(order.begin(), order.end(), 0);
      std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
        return config.devices[a].mean_rate > config.devices[b].mean_rate;
      });
      std::vector<double> load(n_edge, 0.0);
      policy::Engine engine(config.policy_core);
      policy::Incumbent incumbent;
      for (std::size_t d : order) {
        std::size_t best = 0;
        double best_tct = std::numeric_limits<double>::infinity();
        for (std::size_t e = 0; e < n_edge; ++e) {
          const double tct = expected_tct_on_edge(
              config, profile, static_cast<int>(d), static_cast<int>(e),
              load[e], engine, incumbent);
          if (tct < best_tct) {
            best_tct = tct;
            best = e;
          }
        }
        assignment[d] = static_cast<int>(best);
        load[best] += config.devices[d].mean_rate;
      }
      return assignment;
    }
  }
  throw std::invalid_argument("associate: unknown AssociationPolicy");
}

MultiEdgeResult run_multi_edge(const MultiEdgeConfig& config,
                               const models::ModelProfile& profile,
                               AssociationPolicy policy) {
  MultiEdgeResult out;
  out.assignment = associate(config, profile, policy);
  const auto n_edge = config.edges.size();

  // Per-cell ME-DNN designs share one engine: similar cells hit the memo
  // cache, and the previous cell's combo warm-starts the next search.
  policy::Engine engine(config.policy_core);
  policy::Incumbent incumbent;
  double tct_weighted = 0.0;
  for (std::size_t e = 0; e < n_edge; ++e) {
    // Gather this cell's devices with their cell-specific links.
    ScenarioConfig cell;
    double flops_sum = 0.0, bw_sum = 0.0, lat_sum = 0.0;
    for (std::size_t d = 0; d < config.devices.size(); ++d) {
      if (out.assignment[d] != static_cast<int>(e)) continue;
      DeviceSpec dev = config.devices[d];
      dev.uplink_bw = config.links[d][e].bandwidth;
      dev.uplink_lat = config.links[d][e].latency;
      cell.devices.push_back(dev);
      flops_sum += dev.flops;
      bw_sum += dev.uplink_bw;
      lat_sum += dev.uplink_lat;
    }
    if (cell.devices.empty()) {
      out.per_edge.push_back({});
      continue;
    }
    // Per-cell exit setting from the cell's average conditions, with the
    // edge capacity averaged per device (the paper's F_av^e).
    const auto n_cell = static_cast<double>(cell.devices.size());
    core::Environment env;
    env.caps.device_flops = flops_sum / n_cell;
    env.caps.edge_flops = config.edges[e].flops / n_cell;
    env.caps.cloud_flops = config.cloud_flops;
    env.net.dev_edge_bw = bw_sum / n_cell;
    env.net.dev_edge_lat = lat_sum / n_cell;
    env.net.edge_cloud_bw = config.edges[e].cloud_bw;
    env.net.edge_cloud_lat = config.edges[e].cloud_lat;
    core::CostModel cm(profile, env);
    cell.partition = core::make_partition(
        profile, engine.exit_setting(cm, &incumbent).combo);
    cell.policy_core = config.policy_core;

    cell.edge_flops = config.edges[e].flops;
    cell.cloud_flops = config.cloud_flops;
    cell.edge_cloud_bw = config.edges[e].cloud_bw;
    cell.edge_cloud_lat = config.edges[e].cloud_lat;
    cell.lyapunov = config.lyapunov;
    cell.duration = config.duration;
    cell.warmup = config.warmup;
    cell.seed = config.seed + e;

    const auto result = run_scenario(cell);
    tct_weighted += result.tct.mean * static_cast<double>(result.completed);
    out.completed += result.completed;
    out.per_edge.push_back(result);
  }
  out.mean_tct = out.completed
                     ? tct_weighted / static_cast<double>(out.completed)
                     : 0.0;
  return out;
}

}  // namespace leime::sim
