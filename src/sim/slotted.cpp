#include "sim/slotted.h"

#include <algorithm>
#include <stdexcept>

#include "util/rng.h"

namespace leime::sim {

namespace {

void validate(const SlottedConfig& cfg) {
  if (cfg.device_flops <= 0.0 || cfg.edge_share_flops <= 0.0)
    throw std::invalid_argument("SlottedConfig: non-positive FLOPS");
  if (cfg.bandwidth <= 0.0 || cfg.latency < 0.0)
    throw std::invalid_argument("SlottedConfig: bad link");
  if (cfg.num_slots <= 0)
    throw std::invalid_argument("SlottedConfig: num_slots must be > 0");
}

SlottedResult run_impl(const SlottedConfig& cfg,
                       workload::SlotArrivalModel& arrivals,
                       const core::OffloadPolicy* policy,
                       double fixed_ratio) {
  validate(cfg);
  util::Rng rng(cfg.seed);

  core::DeviceSlotState s;
  s.partition = &cfg.partition;
  s.device_flops = cfg.device_flops;
  s.edge_share_flops = cfg.edge_share_flops;
  s.bandwidth = cfg.bandwidth;
  s.latency = cfg.latency;
  s.config = cfg.lyapunov;
  s.queue_device = 0.0;
  s.queue_edge = 0.0;

  SlottedResult out;
  out.per_slot_cost.reserve(static_cast<std::size_t>(cfg.num_slots));
  double cost_sum = 0.0;
  double x_sum = 0.0;

  for (int t = 0; t < cfg.num_slots; ++t) {
    const int m = arrivals.tasks_in_slot(rng);
    s.arrivals = m;
    const double x = policy ? policy->decide(s) : fixed_ratio;
    x_sum += x;

    const double y = core::slot_cost(s, x);
    out.per_slot_cost.push_back(y);
    cost_sum += y;
    out.total_tasks += static_cast<std::size_t>(m);

    // Queue evolution, eqs. 10-11.
    const double a = (1.0 - x) * m;
    const double d = x * m;
    const double b = core::device_service_tasks(s);
    const double c = core::edge_service_tasks(s, x);
    s.queue_device = std::max(s.queue_device - b, 0.0) + a;
    s.queue_edge = std::max(s.queue_edge - c, 0.0) + d;

    out.mean_device_queue += s.queue_device;
    out.mean_edge_queue += s.queue_edge;
  }

  const double n = cfg.num_slots;
  out.mean_device_queue /= n;
  out.mean_edge_queue /= n;
  out.final_device_queue = s.queue_device;
  out.final_edge_queue = s.queue_edge;
  out.mean_offload_ratio = x_sum / n;
  out.mean_tct =
      out.total_tasks > 0 ? cost_sum / static_cast<double>(out.total_tasks) : 0.0;
  return out;
}

}  // namespace

SlottedResult run_slotted_fixed(const SlottedConfig& config,
                                workload::SlotArrivalModel& arrivals,
                                double offload_ratio) {
  if (offload_ratio < 0.0 || offload_ratio > 1.0)
    throw std::invalid_argument("run_slotted_fixed: ratio outside [0,1]");
  return run_impl(config, arrivals, nullptr, offload_ratio);
}

SlottedResult run_slotted_policy(const SlottedConfig& config,
                                 workload::SlotArrivalModel& arrivals,
                                 const core::OffloadPolicy& policy) {
  return run_impl(config, arrivals, &policy, 0.0);
}

}  // namespace leime::sim
