#include "sim/resources.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "util/check.h"

namespace leime::sim {

FifoProcessor::FifoProcessor(EventQueue& queue, std::string name, double flops)
    : queue_(&queue), name_(std::move(name)), flops_(flops) {
  if (flops <= 0.0)
    throw std::invalid_argument("FifoProcessor: flops must be > 0");
}

void FifoProcessor::set_flops(double flops) {
  if (flops <= 0.0)
    throw std::invalid_argument("FifoProcessor::set_flops: flops must be > 0");
  flops_ = flops;
}

int FifoProcessor::pending_total() const {
  return pending_[0] + pending_[1] + pending_[2];
}

void FifoProcessor::restart(double now) {
  busy_until_ = now;
  pending_[0] = pending_[1] = pending_[2] = 0;
  ++epoch_;
}

void FifoProcessor::submit(double work, JobClass cls, Completion done) {
  if (work < 0.0)
    throw std::invalid_argument("FifoProcessor: negative work");
  const double start = std::max(queue_->now(), busy_until_);
  const double finish = start + work / flops_;
  busy_until_ = finish;
  total_work_ += work;
  ++pending_[static_cast<int>(cls)];
  queue_->schedule(finish, EventKind::kComputeDone,
                   [this, cls, done = std::move(done), finish,
                    epoch = epoch_]() mutable {
    // restart() zeroes the counters; a pre-crash completion must not
    // decrement them again (the completion itself still fires — the
    // caller's staleness guard decides what to do with it).
    if (epoch == epoch_) {
      --pending_[static_cast<int>(cls)];
      LEIME_CHECK(pending_[static_cast<int>(cls)] >= 0);
    }
    done(finish);
  });
}

Link::Link(EventQueue& queue, std::string name, double bandwidth_bytes_per_s,
           double latency_s)
    : queue_(&queue),
      name_(std::move(name)),
      bandwidth_(bandwidth_bytes_per_s),
      latency_(latency_s) {
  if (bandwidth_ <= 0.0)
    throw std::invalid_argument("Link: bandwidth must be > 0");
  if (latency_ < 0.0)
    throw std::invalid_argument("Link: latency must be >= 0");
}

void Link::set_bandwidth_trace(util::PiecewiseConstant trace) {
  for (const auto& p : trace.points())
    if (p.value <= 0.0)
      throw std::invalid_argument("Link: bandwidth trace must stay > 0");
  bw_trace_ = std::move(trace);
}

void Link::set_latency_trace(util::PiecewiseConstant trace) {
  for (const auto& p : trace.points())
    if (p.value < 0.0)
      throw std::invalid_argument("Link: latency trace must stay >= 0");
  lat_trace_ = std::move(trace);
}

void Link::set_outage_windows(std::vector<std::pair<double, double>> windows) {
  // A mis-ordered or NaN window would not throw here but silently
  // mis-serialize transfers (the hold loop in transfer() assumes sorted
  // disjoint windows), so the preconditions are enforced as invariants.
  // Note NaN fails every comparison: each condition is written so that a
  // NaN endpoint trips the check instead of slipping through.
  double prev_end = 0.0;
  for (const auto& [start, end] : windows) {
    LEIME_CHECK_MSG(std::isfinite(start) && std::isfinite(end),
                    "outage window [" << start << ", " << end
                                      << ") on '" << name_
                                      << "' has a non-finite endpoint");
    LEIME_CHECK_MSG(end > start, "outage window [" << start << ", " << end
                                                   << ") on '" << name_
                                                   << "' is empty or inverted");
    LEIME_CHECK_MSG(start >= prev_end,
                    "outage windows on '"
                        << name_ << "' must be sorted and disjoint; ["
                        << start << ", " << end << ") starts before "
                        << prev_end);
    prev_end = end;
  }
  outages_ = std::move(windows);
}

bool Link::up_at(double t) const {
  for (const auto& [start, end] : outages_) {
    if (t < start) return true;
    if (t < end) return false;
  }
  return true;
}

double Link::backlog_bytes(double now) const {
  const double remaining = busy_until_ - now;
  if (remaining <= 0.0) return 0.0;
  return remaining * bandwidth_at(now);
}

double Link::bandwidth_at(double t) const {
  return bw_trace_ ? bw_trace_->value_at(t) : bandwidth_;
}

double Link::latency_at(double t) const {
  return lat_trace_ ? lat_trace_->value_at(t) : latency_;
}

void Link::transfer(double bytes, double extra_latency, Completion done) {
  if (bytes < 0.0) throw std::invalid_argument("Link: negative bytes");
  if (extra_latency < 0.0)
    throw std::invalid_argument("Link: negative extra latency");
  const double start = std::max(queue_->now(), busy_until_);
  // Serialization only progresses outside outage windows; a transfer that
  // starts (or lands) inside one is held and resumes at the window's end.
  double t = start;
  double remaining = bytes / bandwidth_at(start);
  for (const auto& [down_start, down_end] : outages_) {
    if (down_end <= t) continue;
    if (t >= down_start) {
      t = down_end;
      continue;
    }
    const double up_time = down_start - t;
    if (remaining <= up_time) break;
    remaining -= up_time;
    t = down_end;
  }
  busy_until_ = t + remaining;
  total_bytes_ += bytes;
  const double delivery = busy_until_ + latency_at(start) + extra_latency;
  ++pending_;
  queue_->schedule(delivery, EventKind::kTransferDone,
                   [this, done = std::move(done), delivery]() mutable {
    --pending_;
    LEIME_CHECK(pending_ >= 0);
    done(delivery);
  });
}

}  // namespace leime::sim
