// The discrete-event edge-intelligence simulator.
//
// Executes the paper's testbed (Fig. 5) in simulation: N devices generate
// inference tasks; each task either starts its first ME-DNN block locally or
// is offloaded (per the slot's offloading ratio x_i); tasks that fail to
// exit early traverse device -> edge -> cloud, paying FIFO compute queues
// and FIFO link serialization plus propagation on each hop. A slot
// controller re-evaluates every device's x_i each tau seconds from observed
// queue backlogs, exactly the information the paper's online algorithm uses.
//
// Modelling notes (documented substitutions):
//  * result downlink is ignored (classification results are tens of bytes);
//  * the cloud is uncontended (V100-class service at fixed FLOPS);
//  * the edge is partitioned into per-device docker shares p_i·F^e computed
//    once from expected load via core::kkt_edge_allocation, as in the paper.
#pragma once

#include <memory>

#include "sim/scenario.h"

namespace leime::sim {

/// Runs one scenario to completion and returns aggregate metrics.
/// Deterministic for a fixed config (including seed).
SimResult run_scenario(const ScenarioConfig& config);

}  // namespace leime::sim
