// Conservative-time-window sharding for the discrete-event simulator
// (DESIGN.md §15).
//
// One simulation's device fleet is partitioned into S shards. Each shard
// owns a contiguous device range and its own zero-alloc EventQueue, and
// advances independently up to a lookahead horizon derived from the
// edge-cloud propagation delay: every cross-shard interaction rides the
// edge->cloud hub link, whose deliveries always land at least `lat` after
// admission, so windows no wider than `lat` can be executed in parallel
// and reconciled at barriers without ever delivering an event into a
// shard's past. The pieces here are the shard-agnostic building blocks:
//
//   ShardOptions — the `[shards]` INI section (opt-in; shards = 1 keeps
//                  the single-queue golden-compatible path);
//   HubRequest   — one edge->cloud admission recorded in a shard outbox;
//   HubLink      — the coordinator's replay of Link's FIFO serialization
//                  arithmetic, bit-identical to the single-queue link;
//   ShardPool    — a persistent barrier-synchronised worker pool;
//   shard_range / shard_window — the partitioning and lookahead helpers.
//
// The sharded simulation loop itself lives in simulation.cpp.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

namespace leime::sim {

/// The `[shards]` INI section. Defaults keep sharding off — the
/// single-queue byte-identical golden configuration. Turning it on is an
/// execution-strategy choice only: results are byte-identical for any
/// shards/threads combination (the determinism contract proven by the
/// golden shards=1 ≡ shards=N tests).
struct ShardOptions {
  std::size_t shards = 1;  ///< event-queue partitions; 1 = single queue
  /// Worker threads pumping shard windows; 0 resolves to
  /// min(shards, hardware_concurrency). Thread count never affects
  /// results, only wall time.
  int threads = 0;
  /// Barrier window width in seconds; 0 derives the widest safe window
  /// (the edge-cloud propagation delay). Values above the safe bound are
  /// clamped to it — wider windows would deliver hub events into a
  /// shard's past.
  double window_s = 0.0;

  bool enabled() const { return shards > 1; }

  /// Throws std::invalid_argument on shards == 0, threads < 0, or a
  /// negative / non-finite window.
  void validate() const;
};

/// One edge->cloud admission a shard recorded during a window: task
/// `task` of device `device` finished block 2 at time `t` and wants the
/// d2 tensor shipped to the cloud. Collected per shard in admission
/// (event-sequence) order; the coordinator merges outboxes in global
/// admission order and replays the hub link.
struct HubRequest {
  double t = 0.0;          ///< admission time (the after_block2 event time)
  std::size_t device = 0;  ///< global device index
  std::size_t task = 0;    ///< shard-local task id
  int attempt = 0;         ///< staleness guard captured at admission
};

/// The coordinator's model of the shared edge->cloud link: replays
/// exactly the floating-point sequence of Link::transfer on the flat
/// no-trace no-outage path (the only configuration sharded runs accept),
/// so delivery timestamps are bit-identical to the single-queue link's.
class HubLink {
 public:
  /// Bandwidth in bytes/s (> 0), propagation latency in seconds (>= 0).
  HubLink(double bandwidth_bytes_per_s, double latency_s)
      : bandwidth_(bandwidth_bytes_per_s), latency_(latency_s) {}

  /// Admits a transfer of `bytes` at time `t` (admissions must be fed in
  /// global admission order) and returns its delivery time:
  /// FIFO serialization at the link bandwidth plus propagation.
  double admit(double t, double bytes) {
    // Mirrors Link::transfer: start = max(now, busy); busy = start +
    // bytes/bw; delivery = busy + latency. Same operations in the same
    // order => the same bits.
    const double start = t > busy_until_ ? t : busy_until_;
    const double remaining = bytes / bandwidth_;
    busy_until_ = start + remaining;
    return busy_until_ + latency_;
  }

  double busy_until() const { return busy_until_; }
  double latency() const { return latency_; }

 private:
  double bandwidth_;
  double latency_;
  double busy_until_ = 0.0;
};

/// Contiguous balanced device range [lo, hi) of shard `s` out of
/// `shards` over `n` devices: the first n % shards shards get one extra
/// device. Requires s < shards.
std::pair<std::size_t, std::size_t> shard_range(std::size_t n,
                                                std::size_t shards,
                                                std::size_t s);

/// The conservative lookahead horizon: the requested window clamped to
/// the edge-cloud propagation delay (the widest width for which every
/// hub delivery provably lands beyond the next barrier). Requires
/// edge_cloud_lat > 0 (validated by the sharded simulation).
double shard_window(const ShardOptions& opts, double edge_cloud_lat);

/// Worker threads for a sharded run: opts.threads, or
/// hardware_concurrency() when 0 (auto), clamped to the shard count —
/// more threads than shards can never help. Always >= 1; the resolved
/// count moves wall time only, never results.
int resolve_shard_threads(const ShardOptions& opts, std::size_t shards);

/// A persistent pool of worker threads executing one parallel region per
/// run() call: run(jobs, fn) invokes fn(0) .. fn(jobs-1) across the pool
/// and returns when all jobs finished. With threads <= 1 no threads are
/// spawned and run() executes inline — the deterministic reference path
/// (results never depend on which path executes; the pool only moves
/// wall time). The first exception a job throws is rethrown from run().
class ShardPool {
 public:
  explicit ShardPool(int threads);
  ~ShardPool();

  ShardPool(const ShardPool&) = delete;
  ShardPool& operator=(const ShardPool&) = delete;

  void run(std::size_t jobs, const std::function<void(std::size_t)>& fn);

  /// Worker threads actually spawned (0 = inline execution).
  int threads() const { return static_cast<int>(workers_.size()); }

 private:
  void worker_loop();
  void run_job(std::size_t i);

  std::mutex mu_;
  std::condition_variable work_cv_;
  std::condition_variable done_cv_;
  const std::function<void(std::size_t)>* fn_ = nullptr;  ///< guarded by mu_
  std::size_t jobs_ = 0;                                  ///< guarded by mu_
  std::atomic<std::size_t> next_{0};  ///< job claim counter
  std::size_t busy_ = 0;              ///< workers in the current region
  std::uint64_t generation_ = 0;      ///< bumped per run()
  bool stop_ = false;
  std::exception_ptr error_;  ///< first job failure, guarded by mu_
  std::vector<std::thread> workers_;
};

}  // namespace leime::sim
