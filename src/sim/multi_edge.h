// Multi-edge deployments — an extension beyond the paper's single edge.
//
// Real wild-edge deployments expose several edge servers (gateways, micro
// data centers) with heterogeneous capacities and per-device link quality;
// each device must be *associated* with one edge before LEIME's per-edge
// machinery (KKT shares, exit setting, online offloading) applies. This
// module provides association policies and an end-to-end runner that
// partitions the fleet, designs per-edge ME-DNNs, and simulates each edge
// cell (cells are independent once associated: each edge has its own
// uplink set and cloud connection).
#pragma once

#include <string>
#include <vector>

#include "models/profile.h"
#include "sim/scenario.h"

namespace leime::sim {

/// One edge server of the deployment.
struct EdgeSpec {
  double flops = core::kEdgeDesktopFlops;
  double cloud_bw = leime::util::mbps(100.0);
  double cloud_lat = leime::util::ms(30.0);
};

/// Link quality between one device and one edge.
struct LinkQuality {
  double bandwidth = leime::util::mbps(10.0);
  double latency = leime::util::ms(20.0);
};

/// A multi-edge deployment: devices x edges with a full link matrix.
struct MultiEdgeConfig {
  std::vector<EdgeSpec> edges;
  std::vector<DeviceSpec> devices;
  /// links[d][e]: quality of device d's link to edge e. Must be a full
  /// devices.size() x edges.size() matrix.
  std::vector<std::vector<LinkQuality>> links;
  double cloud_flops = core::kCloudV100Flops;
  core::LyapunovConfig lyapunov;
  double duration = 60.0;
  double warmup = 5.0;
  std::uint64_t seed = 42;

  /// Policy-core fast paths for the association/design B&B loops — the
  /// LEIME-aware association runs one exit-setting search per (device,
  /// edge) pair, and devices of the same class probing the same edge
  /// repeat exact environments, so the memo cache collapses them. Defaults
  /// off (reference behaviour); results are identical either way
  /// (tests/policy/policy_diff_test.cpp).
  policy::Config policy_core;
};

enum class AssociationPolicy {
  kBestLink,     ///< each device picks its highest-bandwidth edge
  kLeastLoaded,  ///< greedy: heaviest devices first onto the edge with the
                 ///< most remaining capacity per expected FLOP of load
  kLeimeAware,   ///< greedy by the LEIME cost model: each device joins the
                 ///< edge minimising its expected TCT given the load
                 ///< already assigned there
};

std::string to_string(AssociationPolicy policy);

/// Computes assignment[d] = edge index for every device.
/// Throws std::invalid_argument on malformed configs (empty fleet/edges,
/// ragged link matrix).
std::vector<int> associate(const MultiEdgeConfig& config,
                           const models::ModelProfile& profile,
                           AssociationPolicy policy);

/// Outcome of a multi-edge run.
struct MultiEdgeResult {
  std::vector<int> assignment;            ///< device -> edge
  std::vector<SimResult> per_edge;        ///< one DES result per edge cell
  double mean_tct = 0.0;                  ///< task-weighted across cells
  std::size_t completed = 0;
};

/// Associates, designs a per-edge ME-DNN (branch-and-bound on that cell's
/// average conditions), and simulates every cell.
MultiEdgeResult run_multi_edge(const MultiEdgeConfig& config,
                               const models::ModelProfile& profile,
                               AssociationPolicy policy);

}  // namespace leime::sim
