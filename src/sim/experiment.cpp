#include "sim/experiment.h"

#include <stdexcept>

#include "sim/simulation.h"
#include "util/stats.h"

namespace leime::sim {

ReplicatedResult run_replicated(const ScenarioConfig& config,
                                int replications, std::uint64_t base_seed) {
  if (replications < 1)
    throw std::invalid_argument("run_replicated: need >= 1 replication");
  ReplicatedResult out;
  util::RunningStats means, p95s;
  ScenarioConfig cfg = config;
  for (int r = 0; r < replications; ++r) {
    cfg.seed = base_seed + static_cast<std::uint64_t>(r);
    const auto result = run_scenario(cfg);
    means.add(result.tct.mean);
    p95s.add(result.tct.p95);
    out.per_run_mean.push_back(result.tct.mean);
  }
  out.mean_tct = means.mean();
  out.stddev_tct = means.stddev();
  out.mean_p95 = p95s.mean();
  out.runs = static_cast<std::size_t>(replications);
  return out;
}

}  // namespace leime::sim
