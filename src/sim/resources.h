// Compute and network resources of the discrete-event simulator.
//
// FifoProcessor models a compute resource serving jobs first-in-first-out at
// a fixed FLOPS rate (a device CPU or one docker share p_i·F^e on the edge).
// Link models a point-to-point connection with FIFO serialization at the
// current bandwidth plus a propagation delay; bandwidth and latency can
// follow traces (COMCAST-style shaping).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "sim/event_queue.h"
#include "util/inline_fn.h"
#include "util/trace.h"

namespace leime::sim {

/// Job classes tracked separately so the controller can observe the paper's
/// per-type backlogs (Q_i / H_i count first-block tasks only).
enum class JobClass : std::uint8_t { kBlock1 = 0, kBlock2 = 1, kBlock3 = 2 };

/// Completion callbacks ride inside EventQueue handlers, so they use the
/// same never-allocating inline storage. 48 bytes fits the largest
/// completion capture in simulation.cpp ([this, i, id, att] plus padding)
/// with headroom; the InlineFn bind static-asserts any overflow.
inline constexpr std::size_t kCompletionCapacity = 48;
using Completion = util::InlineFn<void(double), kCompletionCapacity>;

class FifoProcessor {
 public:
  using Completion = sim::Completion;  ///< fires with the finish time

  /// `flops` must be > 0. The queue+EventQueue must outlive the processor.
  FifoProcessor(EventQueue& queue, std::string name, double flops);

  /// Enqueues a job of `work` FLOPs (>= 0); `done` fires at its completion
  /// time. FIFO: starts when all previously enqueued jobs finish.
  void submit(double work, JobClass cls, Completion done);

  /// Jobs enqueued but not yet completed, by class.
  int pending(JobClass cls) const { return pending_[static_cast<int>(cls)]; }
  int pending_total() const;

  double flops() const { return flops_; }

  /// Changes the service rate for jobs submitted from now on (in-flight
  /// jobs keep the rate they were admitted with). Used by dynamic edge
  /// reallocation. Must be > 0.
  void set_flops(double flops);

  /// Crash-recovery reset: the server comes back empty at time `now` —
  /// queued work evaporates, the per-class pending counters drop to zero
  /// and busy_until resets (the fault layer reschedules the lost work
  /// elsewhere). Completions of pre-crash jobs still fire (their callers'
  /// staleness guards ignore them) but no longer touch the counters, so a
  /// post-crash backlog observation can never go negative.
  void restart(double now);

  /// Total FLOPs ever submitted (for utilisation accounting).
  double total_work() const { return total_work_; }

  /// Time the processor will next be idle (>= now).
  double busy_until() const { return busy_until_; }

  const std::string& name() const { return name_; }

 private:
  EventQueue* queue_;
  std::string name_;
  double flops_;
  double busy_until_ = 0.0;
  double total_work_ = 0.0;
  int pending_[3] = {0, 0, 0};
  /// Bumped by restart(); completions from an earlier epoch skip the
  /// pending_ bookkeeping (the counters were already zeroed).
  std::uint32_t epoch_ = 0;
};

class Link {
 public:
  using Completion = sim::Completion;  ///< fires with the delivery time

  /// Fixed-parameter link. Bandwidth in bytes/s (> 0), latency in s (>= 0).
  Link(EventQueue& queue, std::string name, double bandwidth_bytes_per_s,
       double latency_s);

  /// Attaches traces overriding bandwidth and/or latency over time. The
  /// value in effect when a transfer starts applies to that whole transfer.
  void set_bandwidth_trace(util::PiecewiseConstant trace);
  void set_latency_trace(util::PiecewiseConstant trace);

  /// Outage windows [start, end) during which the link stops serializing:
  /// queued bytes are held, not lost, and transfers resume at each window's
  /// end (fault injection; see sim/faults.h). Windows must be sorted,
  /// disjoint and finite. Call before any transfer.
  void set_outage_windows(std::vector<std::pair<double, double>> windows);

  /// False while inside an outage window.
  bool up_at(double t) const;

  /// Enqueues a transfer of `bytes` (>= 0); `done` fires when the last bit
  /// arrives (serialization + propagation). The link serializes transfers
  /// FIFO; propagation is pipelined (does not occupy the link).
  /// `extra_latency` adds per-transfer propagation on top of the link's own
  /// (used by the shared-medium mode, where the AP link carries per-device
  /// latencies).
  void transfer(double bytes, Completion done) { transfer(bytes, 0.0, std::move(done)); }
  void transfer(double bytes, double extra_latency, Completion done);

  int pending() const { return pending_; }

  /// Bytes still to be serialized at time `now` (busy time remaining times
  /// the current bandwidth); the controller's uplink-backlog observation.
  /// During an outage this deliberately overstates the queued bytes (the
  /// held time counts as backlog), which steers the controller away from a
  /// down link.
  double backlog_bytes(double now) const;

  double bandwidth_at(double t) const;
  double latency_at(double t) const;
  double total_bytes() const { return total_bytes_; }
  const std::string& name() const { return name_; }

  /// When the serializer frees up for a transfer enqueued now (== the
  /// exec_start of such a transfer, outage holds aside). Feeds the
  /// wait-vs-service split of observer phase spans and fabric hop spans.
  double busy_until() const { return busy_until_; }

 private:
  EventQueue* queue_;
  std::string name_;
  double bandwidth_;
  double latency_;
  std::optional<util::PiecewiseConstant> bw_trace_;
  std::optional<util::PiecewiseConstant> lat_trace_;
  std::vector<std::pair<double, double>> outages_;
  double busy_until_ = 0.0;
  double total_bytes_ = 0.0;
  int pending_ = 0;
};

}  // namespace leime::sim
