// Slotted analytic simulator: a direct execution of the paper's queueing
// model (eqs. 10-14) for a single device-edge pair.
//
// Unlike the discrete-event simulator, slots are atomic: each slot draws
// M_i(t) arrivals, splits them by the offloading ratio, charges the slot
// cost Y_i(t) (eq. 14), and advances the Q/H backlogs by eqs. 10-11. This
// matches the math of §III-D exactly and is what the Fig. 3 offload-ratio
// sweeps and the Lyapunov controller tests run against.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/lyapunov.h"
#include "core/offload_policy.h"
#include "workload/arrival.h"

namespace leime::sim {

struct SlottedConfig {
  core::MeDnnPartition partition;
  double device_flops = 0.0;
  double edge_share_flops = 0.0;  ///< p_i·F^e available to this device
  double bandwidth = 0.0;         ///< B_i^e bytes/s
  double latency = 0.0;           ///< L_i^e seconds
  core::LyapunovConfig lyapunov;
  int num_slots = 500;
  std::uint64_t seed = 7;
};

struct SlottedResult {
  double mean_tct = 0.0;        ///< Σ Y_i(t) / Σ tasks (per-task completion time)
  double mean_device_queue = 0.0;
  double mean_edge_queue = 0.0;
  double final_device_queue = 0.0;
  double final_edge_queue = 0.0;
  double mean_offload_ratio = 0.0;
  std::vector<double> per_slot_cost;  ///< Y_i(t) series
  std::size_t total_tasks = 0;
};

/// Runs the slotted model with a fixed offloading ratio.
SlottedResult run_slotted_fixed(const SlottedConfig& config,
                                workload::SlotArrivalModel& arrivals,
                                double offload_ratio);

/// Runs the slotted model with a per-slot policy decision.
SlottedResult run_slotted_policy(const SlottedConfig& config,
                                 workload::SlotArrivalModel& arrivals,
                                 const core::OffloadPolicy& policy);

}  // namespace leime::sim
