// Adaptive model redesign — an extension of LEIME's model-level loop.
//
// The paper designs the ME-DNN once from historical averages and adapts
// only the offloading ratio at runtime. When the environment drifts far
// from the design point (bandwidth collapse, sustained load change), the
// deployed exits themselves become stale. This module re-runs the exit
// setting at epoch boundaries from the *observed* epoch conditions and
// redeploys the partition (queues drain at the boundary, modelling the
// brief redeployment pause), quantifying how much periodic redesign buys
// over the paper's design-once scheme.
#pragma once

#include <vector>

#include "models/profile.h"
#include "sim/scenario.h"

namespace leime::sim {

struct EpochReport {
  double start = 0.0;
  core::ExitCombo combo;   ///< partition deployed during this epoch
  double mean_tct = 0.0;
  std::size_t completed = 0;
  double mean_bandwidth = 0.0;  ///< fleet-average uplink bandwidth used
};

struct AdaptiveResult {
  std::vector<EpochReport> epochs;
  double overall_mean_tct = 0.0;  ///< task-weighted across epochs
  std::size_t total_completed = 0;
};

/// Splits base.duration into epochs of `epoch_length`. When `redesign` is
/// true, each epoch re-runs branch-and-bound exit setting on the epoch's
/// environment (per-device traces evaluated at the epoch midpoint, fleet
/// averages for capability/bandwidth/latency); when false the first epoch's
/// design is kept throughout (the paper's behaviour). base.partition is
/// ignored — the design comes from `profile`.
AdaptiveResult run_adaptive_scenario(const models::ModelProfile& profile,
                                     const ScenarioConfig& base,
                                     double epoch_length, bool redesign);

}  // namespace leime::sim
