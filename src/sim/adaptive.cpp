#include "sim/adaptive.h"

#include <stdexcept>

#include "core/exit_setting.h"
#include "policy/engine.h"
#include "sim/simulation.h"

namespace leime::sim {

namespace {

/// Fleet-average environment during [start, start + len), sampling traces
/// at the epoch midpoint.
core::Environment epoch_environment(const ScenarioConfig& base, double start,
                                    double len) {
  core::Environment env;
  env.caps.edge_flops = base.edge_flops;
  env.caps.cloud_flops = base.cloud_flops;
  env.net.edge_cloud_bw = base.edge_cloud_bw;
  env.net.edge_cloud_lat = base.edge_cloud_lat;
  const double mid = start + 0.5 * len;
  double flops = 0.0, bw = 0.0, lat = 0.0;
  for (const auto& dev : base.devices) {
    flops += dev.flops;
    bw += dev.uplink_bw_trace ? dev.uplink_bw_trace->value_at(mid)
                              : dev.uplink_bw;
    lat += dev.uplink_lat_trace ? dev.uplink_lat_trace->value_at(mid)
                                : dev.uplink_lat;
  }
  const auto n = static_cast<double>(base.devices.size());
  env.caps.device_flops = flops / n;
  env.net.dev_edge_bw = bw / n;
  env.net.dev_edge_lat = lat / n;
  return env;
}

/// The scenario restricted to [start, start + len), with traces shifted to
/// local time zero.
ScenarioConfig epoch_scenario(const ScenarioConfig& base, double start,
                              double len,
                              const core::MeDnnPartition& partition) {
  ScenarioConfig cfg = base;
  cfg.partition = partition;
  cfg.duration = len;
  cfg.warmup = 0.0;
  cfg.seed = base.seed + static_cast<std::uint64_t>(start * 1000.0);
  for (auto& dev : cfg.devices) {
    if (dev.rate_trace) dev.rate_trace = dev.rate_trace->shifted(start);
    if (dev.uplink_bw_trace)
      dev.uplink_bw_trace = dev.uplink_bw_trace->shifted(start);
    if (dev.uplink_lat_trace)
      dev.uplink_lat_trace = dev.uplink_lat_trace->shifted(start);
  }
  return cfg;
}

}  // namespace

AdaptiveResult run_adaptive_scenario(const models::ModelProfile& profile,
                                     const ScenarioConfig& base,
                                     double epoch_length, bool redesign) {
  if (base.devices.empty())
    throw std::invalid_argument("run_adaptive_scenario: no devices");
  if (epoch_length <= 0.0 || epoch_length > base.duration)
    throw std::invalid_argument(
        "run_adaptive_scenario: epoch_length outside (0, duration]");

  AdaptiveResult out;
  double tct_weighted = 0.0;
  core::ExitCombo deployed{};
  bool have_design = false;
  // Per-epoch redesign is the policy core's natural consumer: the
  // incumbent carries last epoch's combo into the next search (warm
  // start), and slowly-varying traces repeat exact environments (memo
  // cache). With base.policy_core at defaults the engine call *is* the
  // cold branch-and-bound.
  policy::Engine engine(base.policy_core);
  policy::Incumbent incumbent;
  for (double start = 0.0; start + 1e-9 < base.duration;
       start += epoch_length) {
    const double len = std::min(epoch_length, base.duration - start);
    if (redesign || !have_design) {
      const auto env = epoch_environment(base, start, len);
      core::CostModel cost(profile, env);
      deployed = engine.exit_setting(cost, &incumbent).combo;
      have_design = true;
    }
    const auto partition = core::make_partition(profile, deployed);
    const auto cfg = epoch_scenario(base, start, len, partition);
    const auto result = run_scenario(cfg);

    EpochReport report;
    report.start = start;
    report.combo = deployed;
    report.mean_tct = result.tct.mean;
    report.completed = result.completed;
    report.mean_bandwidth = epoch_environment(base, start, len).net.dev_edge_bw;
    out.epochs.push_back(report);

    tct_weighted += result.tct.mean * static_cast<double>(result.completed);
    out.total_completed += result.completed;
  }
  out.overall_mean_tct =
      out.total_completed
          ? tct_weighted / static_cast<double>(out.total_completed)
          : 0.0;
  return out;
}

}  // namespace leime::sim
