#include "sim/shard.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace leime::sim {

void ShardOptions::validate() const {
  if (shards == 0)
    throw std::invalid_argument("ShardOptions: shards must be >= 1");
  if (threads < 0)
    throw std::invalid_argument("ShardOptions: threads must be >= 0");
  if (!std::isfinite(window_s) || window_s < 0.0)
    throw std::invalid_argument(
        "ShardOptions: window_s must be finite and >= 0");
}

std::pair<std::size_t, std::size_t> shard_range(std::size_t n,
                                                std::size_t shards,
                                                std::size_t s) {
  const std::size_t base = n / shards;
  const std::size_t rem = n % shards;
  const std::size_t lo = s * base + std::min(s, rem);
  const std::size_t hi = lo + base + (s < rem ? 1 : 0);
  return {lo, hi};
}

double shard_window(const ShardOptions& opts, double edge_cloud_lat) {
  if (opts.window_s > 0.0) return std::min(opts.window_s, edge_cloud_lat);
  return edge_cloud_lat;
}

int resolve_shard_threads(const ShardOptions& opts, std::size_t shards) {
  std::size_t t = static_cast<std::size_t>(opts.threads);
  if (t == 0) {
    const unsigned hw = std::thread::hardware_concurrency();
    t = hw ? static_cast<std::size_t>(hw) : 1;
  }
  return static_cast<int>(std::max<std::size_t>(1, std::min(t, shards)));
}

ShardPool::ShardPool(int threads) {
  if (threads <= 1) return;  // inline execution, no workers
  workers_.reserve(static_cast<std::size_t>(threads));
  for (int i = 0; i < threads; ++i)
    workers_.emplace_back([this] { worker_loop(); });
}

ShardPool::~ShardPool() {
  if (workers_.empty()) return;
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (auto& t : workers_) t.join();
}

void ShardPool::run_job(std::size_t i) {
  try {
    (*fn_)(i);
  } catch (...) {
    std::lock_guard<std::mutex> lock(mu_);
    if (!error_) error_ = std::current_exception();
  }
}

void ShardPool::worker_loop() {
  std::uint64_t seen = 0;
  for (;;) {
    std::unique_lock<std::mutex> lock(mu_);
    work_cv_.wait(lock, [&] { return stop_ || generation_ != seen; });
    if (stop_) return;
    seen = generation_;
    const std::size_t jobs = jobs_;
    lock.unlock();
    for (;;) {
      const std::size_t i = next_.fetch_add(1, std::memory_order_relaxed);
      if (i >= jobs) break;
      run_job(i);
    }
    lock.lock();
    if (--busy_ == 0) done_cv_.notify_all();
  }
}

void ShardPool::run(std::size_t jobs,
                    const std::function<void(std::size_t)>& fn) {
  if (jobs == 0) return;
  if (workers_.empty()) {
    for (std::size_t i = 0; i < jobs; ++i) fn(i);
    return;
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    fn_ = &fn;
    jobs_ = jobs;
    next_.store(0, std::memory_order_relaxed);
    busy_ = workers_.size();
    error_ = nullptr;
    ++generation_;
  }
  work_cv_.notify_all();
  std::unique_lock<std::mutex> lock(mu_);
  done_cv_.wait(lock, [&] { return busy_ == 0; });
  fn_ = nullptr;
  if (error_) {
    auto err = error_;
    error_ = nullptr;
    lock.unlock();
    std::rethrow_exception(err);
  }
}

}  // namespace leime::sim
