#include "sim/simulation.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/offload_policy.h"
#include "core/resource_alloc.h"
#include "sim/event_queue.h"
#include "sim/resources.h"
#include "util/check.h"
#include "util/csv.h"
#include "util/rng.h"
#include "workload/arrival.h"
#include "workload/complexity.h"

namespace leime::sim {

namespace {

std::unique_ptr<workload::ArrivalProcess> make_arrivals(
    const DeviceSpec& spec) {
  switch (spec.arrival) {
    case ArrivalKind::kPoisson:
      return std::make_unique<workload::PoissonArrivals>(spec.mean_rate);
    case ArrivalKind::kPeriodic:
      return std::make_unique<workload::PeriodicArrivals>(1.0 /
                                                          spec.mean_rate);
    case ArrivalKind::kBursty:
      return std::make_unique<workload::BurstyArrivals>(
          spec.mean_rate, spec.bursty_high_rate, spec.bursty_dwell,
          spec.bursty_dwell);
    case ArrivalKind::kTrace:
      if (!spec.rate_trace)
        throw std::invalid_argument(
            "DeviceSpec: ArrivalKind::kTrace needs rate_trace");
      return std::make_unique<workload::TraceArrivals>(*spec.rate_trace);
  }
  throw std::invalid_argument("DeviceSpec: unknown ArrivalKind");
}

/// Everything the simulator tracks per device.
struct DeviceRuntime {
  const DeviceSpec* spec = nullptr;
  std::unique_ptr<FifoProcessor> cpu;
  std::unique_ptr<Link> uplink;
  std::unique_ptr<Link> downlink;  ///< only when result_bytes > 0
  Link* tx = nullptr;              ///< own uplink, or the shared AP
  double tx_extra_latency = 0.0;   ///< per-device latency in shared mode
  std::unique_ptr<FifoProcessor> edge_share;  ///< p_i·F^e docker share
  std::unique_ptr<workload::ArrivalProcess> arrivals;
  workload::ComplexityModel complexity{1.0};
  util::Rng rng;
  double x = 0.0;              ///< current offloading ratio
  int arrived_this_slot = 0;   ///< observed arrivals in the current slot
  double arrival_estimate = 0; ///< estimate used at the next decision
  int arrived_this_window = 0; ///< arrivals since the last reallocation
};

class Simulation {
 public:
  explicit Simulation(const ScenarioConfig& config) : cfg_(config) {
    if (cfg_.devices.empty())
      throw std::invalid_argument("ScenarioConfig: no devices");
    if (cfg_.duration <= 0.0 || cfg_.warmup < 0.0 ||
        cfg_.warmup >= cfg_.duration)
      throw std::invalid_argument("ScenarioConfig: bad duration/warmup");
    if (cfg_.reallocation_period < 0.0)
      throw std::invalid_argument("ScenarioConfig: bad reallocation_period");
    if (cfg_.timeline_window <= 0.0)
      throw std::invalid_argument("ScenarioConfig: bad timeline_window");
    build();
  }

  SimResult run() {
    util::Rng master(cfg_.seed);
    for (auto& dev : devices_) dev->rng = master.fork();

    // Initial decisions + arrival streams + slot ticks.
    for (std::size_t i = 0; i < devices_.size(); ++i) {
      decide(i);
      schedule_next_arrival(i);
    }
    queue_.schedule(cfg_.lyapunov.tau, [this] { slot_tick(); });
    if (cfg_.reallocation_period > 0.0)
      queue_.schedule(cfg_.reallocation_period, [this] { reallocate(); });

    // Generation stops at duration; in-flight tasks drain afterwards.
    queue_.run_all();
    return finalize();
  }

 private:
  struct TaskRecord {
    double t_arrive;
    double t_complete = -1.0;
    std::size_t device = 0;
    int block = 0;  ///< 1, 2, or 3
    bool offloaded = false;
    bool counted = false;  ///< post-warmup
  };

  void build() {
    const auto& p = cfg_.partition;
    if (p.mu1 <= 0.0 || p.mu2 <= 0.0 || p.mu3 <= 0.0)
      throw std::invalid_argument("ScenarioConfig: invalid partition");

    // Edge shares from expected per-slot load (paper eq. 27).
    std::vector<double> k, fd;
    for (const auto& spec : cfg_.devices) {
      k.push_back(std::max(1e-6, spec.mean_rate * cfg_.lyapunov.tau));
      fd.push_back(spec.flops);
    }
    const auto shares = core::kkt_edge_allocation(k, fd, cfg_.edge_flops);

    edge_cloud_link_ = std::make_unique<Link>(
        queue_, "edge-cloud", cfg_.edge_cloud_bw, cfg_.edge_cloud_lat);
    if (cfg_.shared_uplink_bw > 0.0)
      shared_ap_ = std::make_unique<Link>(queue_, "shared-ap",
                                          cfg_.shared_uplink_bw, 0.0);
    if (cfg_.result_bytes > 0.0)
      cloud_return_link_ = std::make_unique<Link>(
          queue_, "cloud-return", cfg_.edge_cloud_bw, cfg_.edge_cloud_lat);
    if (cfg_.cloud_fifo)
      cloud_ = std::make_unique<FifoProcessor>(queue_, "cloud",
                                               cfg_.cloud_flops);

    for (std::size_t i = 0; i < cfg_.devices.size(); ++i) {
      const auto& spec = cfg_.devices[i];
      auto dev = std::make_unique<DeviceRuntime>();
      dev->spec = &spec;
      dev->cpu = std::make_unique<FifoProcessor>(
          queue_, "device" + std::to_string(i), spec.flops);
      dev->uplink = std::make_unique<Link>(
          queue_, "uplink" + std::to_string(i), spec.uplink_bw,
          spec.uplink_lat);
      if (spec.uplink_bw_trace)
        dev->uplink->set_bandwidth_trace(*spec.uplink_bw_trace);
      if (spec.uplink_lat_trace)
        dev->uplink->set_latency_trace(*spec.uplink_lat_trace);
      dev->edge_share = std::make_unique<FifoProcessor>(
          queue_, "edge-share" + std::to_string(i),
          shares[i] * cfg_.edge_flops);
      if (cfg_.result_bytes > 0.0)
        dev->downlink = std::make_unique<Link>(
            queue_, "downlink" + std::to_string(i), spec.uplink_bw,
            spec.uplink_lat);
      dev->arrivals = make_arrivals(spec);
      if (shared_ap_) {
        dev->tx = shared_ap_.get();
        dev->tx_extra_latency = spec.uplink_lat;
      } else {
        dev->tx = dev->uplink.get();
      }
      dev->complexity = workload::ComplexityModel(spec.difficulty);
      dev->arrival_estimate =
          std::max(1.0, spec.mean_rate * cfg_.lyapunov.tau);
      devices_.push_back(std::move(dev));
    }

    if (cfg_.fixed_ratio >= 0.0)
      policy_ = std::make_unique<core::FixedRatioPolicy>(cfg_.fixed_ratio);
    else
      policy_ = core::make_policy(cfg_.policy);

    x_sum_dev_.assign(devices_.size(), 0.0);
    x_count_dev_.assign(devices_.size(), 0);
  }

  core::DeviceSlotState observe(std::size_t i) const {
    const auto& dev = *devices_[i];
    core::DeviceSlotState s;
    s.partition = &cfg_.partition;
    s.device_flops = dev.spec->flops;
    s.edge_share_flops = dev.edge_share->flops();
    s.bandwidth = dev.tx->bandwidth_at(queue_.now());
    // Clamp so tau > latency always holds for the decision model even under
    // extreme shaping traces.
    s.latency =
        std::min(dev.tx->latency_at(queue_.now()) + dev.tx_extra_latency,
                 0.9 * cfg_.lyapunov.tau);
    s.queue_device = dev.cpu->pending(JobClass::kBlock1);
    s.queue_edge = dev.edge_share->pending(JobClass::kBlock1);
    s.uplink_backlog_bytes = cfg_.uplink_backlog_feedback
                                 ? dev.tx->backlog_bytes(queue_.now())
                                 : 0.0;
    s.arrivals = dev.arrival_estimate;
    s.config = cfg_.lyapunov;
    return s;
  }

  void decide(std::size_t i) {
    auto& dev = *devices_[i];
    dev.x = policy_->decide(observe(i));
    x_sum_ += dev.x;
    ++x_count_;
    x_sum_dev_[i] += dev.x;
    ++x_count_dev_[i];
  }

  void slot_tick() {
    for (std::size_t i = 0; i < devices_.size(); ++i) {
      auto& dev = *devices_[i];
      // Blend observation with the process's nominal rate: reacts to bursts
      // while staying stable at low rates.
      const double observed = dev.arrived_this_slot;
      const double nominal =
          dev.arrivals->rate_at(queue_.now()) * cfg_.lyapunov.tau;
      dev.arrival_estimate = std::max(0.5 * (observed + nominal), 0.25);
      dev.arrived_this_slot = 0;
      decide(i);
      q_sum_ += dev.cpu->pending(JobClass::kBlock1);
      h_sum_ += dev.edge_share->pending(JobClass::kBlock1);
      ++queue_samples_;
    }
    if (queue_.now() + cfg_.lyapunov.tau <= cfg_.duration)
      queue_.schedule_in(cfg_.lyapunov.tau, [this] { slot_tick(); });
  }

  void schedule_next_arrival(std::size_t i) {
    auto& dev = *devices_[i];
    const double gap = dev.arrivals->next_interarrival(queue_.now(), dev.rng);
    const double when = queue_.now() + gap;
    if (when > cfg_.duration) return;  // generation window closed
    queue_.schedule(when, [this, i] {
      on_arrival(i);
      schedule_next_arrival(i);
    });
  }

  void reallocate() {
    // Re-run the eq. 27 allocation on observed per-window rates; a floor
    // keeps idle devices from being starved out entirely.
    std::vector<double> k, fd;
    for (auto& dev : devices_) {
      k.push_back(std::max(0.25, static_cast<double>(dev->arrived_this_window) *
                                     cfg_.lyapunov.tau /
                                     cfg_.reallocation_period));
      fd.push_back(dev->spec->flops);
      dev->arrived_this_window = 0;
    }
    const auto shares = core::kkt_edge_allocation(k, fd, cfg_.edge_flops);
    for (std::size_t i = 0; i < devices_.size(); ++i)
      devices_[i]->edge_share->set_flops(shares[i] * cfg_.edge_flops);
    if (queue_.now() + cfg_.reallocation_period <= cfg_.duration)
      queue_.schedule_in(cfg_.reallocation_period, [this] { reallocate(); });
  }

  void on_arrival(std::size_t i) {
    auto& dev = *devices_[i];
    ++dev.arrived_this_slot;
    ++dev.arrived_this_window;
    const std::size_t task_id = tasks_.size();
    TaskRecord rec;
    rec.t_arrive = queue_.now();
    rec.device = i;
    rec.block =
        workload::block_for_complexity(cfg_.partition, dev.complexity.sample(dev.rng));
    rec.offloaded = dev.rng.bernoulli(dev.x);
    rec.counted = rec.t_arrive >= cfg_.warmup;
    tasks_.push_back(rec);

    const auto& p = cfg_.partition;
    if (rec.offloaded) {
      // Raw input crosses the uplink, then block 1 runs on the edge share.
      dev.tx->transfer(p.d0, dev.tx_extra_latency, [this, i, task_id](double) {
        devices_[i]->edge_share->submit(
            cfg_.partition.mu1, JobClass::kBlock1,
            [this, i, task_id](double t) { after_block1(i, task_id, t, true); });
      });
    } else {
      dev.cpu->submit(p.mu1, JobClass::kBlock1, [this, i, task_id](double t) {
        after_block1(i, task_id, t, false);
      });
    }
  }

  void after_block1(std::size_t i, std::size_t task_id, double t,
                    bool on_edge) {
    auto& rec = tasks_[task_id];
    if (rec.block == 1) {
      // Local completions hold the result already; edge ones return it.
      if (on_edge)
        deliver_from_edge(i, task_id, t);
      else
        complete(task_id, t);
      return;
    }
    const auto& p = cfg_.partition;
    if (on_edge) {
      // Already at the edge: block 2 continues on the same share.
      devices_[i]->edge_share->submit(
          p.mu2, JobClass::kBlock2,
          [this, i, task_id](double t2) { after_block2(i, task_id, t2); });
    } else {
      // Intermediate tensor crosses the uplink first.
      devices_[i]->tx->transfer(
          p.d1, devices_[i]->tx_extra_latency, [this, i, task_id](double) {
        devices_[i]->edge_share->submit(
            cfg_.partition.mu2, JobClass::kBlock2,
            [this, i, task_id](double t2) { after_block2(i, task_id, t2); });
      });
    }
  }

  void after_block2(std::size_t i, std::size_t task_id, double t) {
    auto& rec = tasks_[task_id];
    if (rec.block == 2) {
      deliver_from_edge(i, task_id, t);
      return;
    }
    const auto& p = cfg_.partition;
    edge_cloud_link_->transfer(p.d2, [this, i, task_id](double t2) {
      if (cloud_) {
        cloud_->submit(cfg_.partition.mu3, JobClass::kBlock3,
                       [this, i, task_id](double t3) {
                         deliver_from_cloud(i, task_id, t3);
                       });
      } else {
        // Uncontended cloud service.
        const double finish = t2 + cfg_.partition.mu3 / cfg_.cloud_flops;
        queue_.schedule(finish, [this, i, task_id, finish] {
          deliver_from_cloud(i, task_id, finish);
        });
      }
    });
    (void)t;
  }

  /// Result return from the edge tier (no-op transfer when results are
  /// modelled as free).
  void deliver_from_edge(std::size_t i, std::size_t task_id, double t) {
    if (cfg_.result_bytes <= 0.0) {
      complete(task_id, t);
      return;
    }
    devices_[i]->downlink->transfer(
        cfg_.result_bytes,
        [this, task_id](double t2) { complete(task_id, t2); });
  }

  /// Result return from the cloud: cloud -> edge, then edge -> device.
  void deliver_from_cloud(std::size_t i, std::size_t task_id, double t) {
    if (cfg_.result_bytes <= 0.0) {
      complete(task_id, t);
      return;
    }
    cloud_return_link_->transfer(cfg_.result_bytes, [this, i,
                                                     task_id](double) {
      devices_[i]->downlink->transfer(
          cfg_.result_bytes,
          [this, task_id](double t2) { complete(task_id, t2); });
    });
    (void)t;
  }

  void complete(std::size_t task_id, double t) {
    auto& rec = tasks_[task_id];
    LEIME_CHECK(rec.t_complete < 0.0);
    rec.t_complete = t;
  }

  SimResult finalize() const {
    SimResult out;
    std::vector<double> tcts;
    std::map<long long, std::pair<double, std::size_t>> windows;
    std::size_t exits[3] = {0, 0, 0};
    std::vector<std::vector<double>> device_tcts(devices_.size());
    for (const auto& rec : tasks_) {
      ++out.generated;
      if (!rec.counted) continue;
      if (rec.t_complete < 0.0) continue;  // still in flight at drain end
      ++out.completed;
      const double tct = rec.t_complete - rec.t_arrive;
      tcts.push_back(tct);
      device_tcts[rec.device].push_back(tct);
      ++exits[rec.block - 1];
      const auto w =
          static_cast<long long>(rec.t_complete / cfg_.timeline_window);
      auto& slot = windows[w];
      slot.first += tct;
      ++slot.second;
    }
    out.tct = util::summarize(tcts);
    const double total = std::max<std::size_t>(1, out.completed);
    out.exit1_fraction = exits[0] / total;
    out.exit2_fraction = exits[1] / total;
    out.exit3_fraction = exits[2] / total;
    out.mean_offload_ratio = x_count_ ? x_sum_ / x_count_ : 0.0;
    out.mean_device_queue = queue_samples_ ? q_sum_ / queue_samples_ : 0.0;
    out.mean_edge_queue = queue_samples_ ? h_sum_ / queue_samples_ : 0.0;
    for (const auto& [w, agg] : windows)
      out.timeline.push_back({(w + 0.5) * cfg_.timeline_window,
                              agg.first / agg.second, agg.second});
    if (!cfg_.task_trace_path.empty()) write_task_trace();
    for (std::size_t i = 0; i < devices_.size(); ++i) {
      SimResult::DeviceResult dr;
      dr.tct = util::summarize(device_tcts[i]);
      dr.completed = device_tcts[i].size();
      dr.mean_offload_ratio =
          x_count_dev_[i] ? x_sum_dev_[i] / static_cast<double>(x_count_dev_[i])
                          : 0.0;
      out.per_device.push_back(dr);
    }
    return out;
  }

  void write_task_trace() const {
    util::CsvWriter trace(cfg_.task_trace_path,
                          {"task", "device", "t_arrive", "t_complete",
                           "tct", "exit_block", "offloaded", "counted"});
    for (std::size_t id = 0; id < tasks_.size(); ++id) {
      const auto& rec = tasks_[id];
      const bool done = rec.t_complete >= 0.0;
      trace.add_row({std::to_string(id), std::to_string(rec.device),
                     std::to_string(rec.t_arrive),
                     done ? std::to_string(rec.t_complete) : "-",
                     done ? std::to_string(rec.t_complete - rec.t_arrive)
                          : "-",
                     std::to_string(rec.block),
                     rec.offloaded ? "1" : "0", rec.counted ? "1" : "0"});
    }
  }

  ScenarioConfig cfg_;
  EventQueue queue_;
  std::vector<std::unique_ptr<DeviceRuntime>> devices_;
  std::unique_ptr<Link> edge_cloud_link_;
  std::unique_ptr<Link> cloud_return_link_;
  std::unique_ptr<Link> shared_ap_;
  std::unique_ptr<FifoProcessor> cloud_;
  std::unique_ptr<core::OffloadPolicy> policy_;
  std::vector<TaskRecord> tasks_;
  double x_sum_ = 0.0;
  std::size_t x_count_ = 0;
  double q_sum_ = 0.0;
  double h_sum_ = 0.0;
  std::size_t queue_samples_ = 0;
  std::vector<double> x_sum_dev_;
  std::vector<std::size_t> x_count_dev_;
};

}  // namespace

SimResult run_scenario(const ScenarioConfig& config) {
  Simulation sim(config);
  return sim.run();
}

}  // namespace leime::sim
