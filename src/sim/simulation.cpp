#include "sim/simulation.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <map>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "core/lyapunov.h"
#include "core/offload_policy.h"
#include "core/resource_alloc.h"
#include "net/fabric.h"
#include "policy/engine.h"
#include "policy/prediction.h"
#include "prof/profiler.h"
#include "sim/event_queue.h"
#include "sim/faults.h"
#include "sim/observer.h"
#include "sim/resources.h"
#include "sim/shard.h"
#include "util/check.h"
#include "util/csv.h"
#include "util/rng.h"
#include "workload/arrival.h"
#include "workload/complexity.h"

namespace leime::sim {

namespace {

std::unique_ptr<workload::ArrivalProcess> make_arrivals(
    const DeviceSpec& spec) {
  switch (spec.arrival) {
    case ArrivalKind::kPoisson:
      return std::make_unique<workload::PoissonArrivals>(spec.mean_rate);
    case ArrivalKind::kPeriodic:
      return std::make_unique<workload::PeriodicArrivals>(1.0 /
                                                          spec.mean_rate);
    case ArrivalKind::kBursty:
      return std::make_unique<workload::BurstyArrivals>(
          spec.mean_rate, spec.bursty_high_rate, spec.bursty_dwell,
          spec.bursty_dwell);
    case ArrivalKind::kTrace:
      if (!spec.rate_trace)
        throw std::invalid_argument(
            "DeviceSpec: ArrivalKind::kTrace needs rate_trace");
      return std::make_unique<workload::TraceArrivals>(*spec.rate_trace);
  }
  throw std::invalid_argument("DeviceSpec: unknown ArrivalKind");
}

/// Everything the simulator tracks per device.
struct DeviceRuntime {
  const DeviceSpec* spec = nullptr;
  std::unique_ptr<FifoProcessor> cpu;
  std::unique_ptr<Link> uplink;
  std::unique_ptr<Link> downlink;  ///< only when result_bytes > 0
  Link* tx = nullptr;              ///< own uplink, or the shared AP
  double tx_extra_latency = 0.0;   ///< per-device latency in shared mode
  std::unique_ptr<FifoProcessor> edge_share;  ///< p_i·F^e docker share
  std::unique_ptr<workload::ArrivalProcess> arrivals;
  workload::ComplexityModel complexity{1.0};
  util::Rng rng;
  double x = 0.0;              ///< current offloading ratio
  int arrived_this_slot = 0;   ///< observed arrivals in the current slot
  double arrival_estimate = 0; ///< estimate used at the next decision
  int arrived_this_window = 0; ///< arrivals since the last reallocation
};

/// A shard's identity inside one sharded run (DESIGN.md §15): its
/// contiguous device range [lo, hi), the outbox it records edge->cloud
/// admissions into, and the policy engine shared across shard threads.
/// The default-constructed role is the classic single-queue simulation
/// over the whole fleet — every code path below treats that as lo = 0,
/// hi = N, so the two modes share one implementation.
struct ShardRole {
  std::size_t index = 0;       ///< shard number (0 = the primary shard)
  std::size_t num_shards = 1;  ///< 1 = single-queue mode
  std::size_t lo = 0;
  std::size_t hi = 0;
  std::vector<HubRequest>* outbox = nullptr;  ///< coordinator-owned
  policy::Engine* engine = nullptr;  ///< shared, batch_eq20 only

  bool active() const { return num_shards > 1; }
};

class Simulation {
 public:
  explicit Simulation(const ScenarioConfig& config, ShardRole role = {})
      : cfg_(config), role_(role) {
    if (cfg_.devices.empty())
      throw std::invalid_argument("ScenarioConfig: no devices");
    if (cfg_.duration <= 0.0 || cfg_.warmup < 0.0 ||
        cfg_.warmup >= cfg_.duration)
      throw std::invalid_argument("ScenarioConfig: bad duration/warmup");
    if (cfg_.reallocation_period < 0.0)
      throw std::invalid_argument("ScenarioConfig: bad reallocation_period");
    if (cfg_.timeline_window <= 0.0)
      throw std::invalid_argument("ScenarioConfig: bad timeline_window");
    cfg_.faults.validate(cfg_.devices.size());
    cfg_.topology.validate(cfg_.devices.size());
    if (cfg_.topology.enabled() && cfg_.shared_uplink_bw > 0.0)
      throw std::invalid_argument(
          "ScenarioConfig: topology and shared_uplink_bw are mutually "
          "exclusive network modes");
    if (!cfg_.faults.ap_windows.empty()) {
      if (!cfg_.topology.enabled())
        throw std::invalid_argument(
            "ScenarioConfig: ap_outage_windows need an enabled [topology]");
      for (const auto& w : cfg_.faults.ap_windows)
        if (w.device >= cfg_.topology.aps)
          throw std::invalid_argument(
              "ScenarioConfig: ap_outage_windows names AP " +
              std::to_string(w.device) + " but the topology has " +
              std::to_string(cfg_.topology.aps) + " APs");
    }
    faults_on_ = cfg_.faults.enabled();
    lo_ = role_.active() ? role_.lo : 0;
    hi_ = role_.active() ? role_.hi : cfg_.devices.size();
    build();
    // Observer hooks are pure taps: they consume no RNG, schedule no events
    // and never alter control flow, so a run with obs_ == nullptr and a run
    // with any observer attached follow identical event sequences.
    if (cfg_.observer) {
      obs_ = cfg_.observer;
    } else if (cfg_.obs.enabled()) {
      std::vector<std::string> device_classes;
      device_classes.reserve(cfg_.devices.size());
      for (const auto& spec : cfg_.devices)
        device_classes.push_back(spec.device_class);
      owned_obs_ = std::make_unique<RecordingObserver>(
          cfg_.obs, devices_.size(), std::move(device_classes));
      obs_ = owned_obs_.get();
    }
    if (obs_ && policy_engine_) {
      // Exit-setting decisions the engine takes while this run's observer
      // is live land in the same flight recorder as the offload decisions.
      if (auto* rec = dynamic_cast<RecordingObserver*>(obs_))
        policy_engine_->attach_provenance(rec->provenance());
    }
    // Per-run counter baseline: a future embedder sharing one engine
    // across runs publishes each run's own delta, not the accumulation.
    if (policy_engine_) policy_stats_baseline_ = policy_engine_->stats();
    if (obs_ && fabric_) {
      // Per-hop spans feed the attribution ledger. The tag packs
      // (attempt, task id); spans of paths the task has since abandoned
      // (failover/retry bumped the attempt) are filtered here, mirroring
      // the staleness guards on the flow completions themselves.
      fabric_->set_hop_tap([this](std::uint64_t tag, std::string_view port,
                                  double t_queued, double exec_start,
                                  double t_end) {
        const std::size_t id = flow_task(tag);
        if (!alive(id, flow_attempt(tag))) return;
        obs_->on_net_hop(id, port, t_queued, exec_start, t_end);
      });
    }
  }

  /// Seeds the run and schedules the initial events: decisions, arrival
  /// streams, slot ticks and the reallocation timer. Shared by run() and
  /// the sharded coordinator (which then pumps windows via advance_to).
  void init_run() {
    util::Rng master(cfg_.seed);
    // Every shard forks the full fleet's substreams in device order and
    // keeps only its own range, so device i's task stream is bit-identical
    // for any shard count.
    for (std::size_t i = 0; i < cfg_.devices.size(); ++i) {
      util::Rng stream = master.fork();
      if (devices_[i]) devices_[i]->rng = std::move(stream);
    }
    if (faults_on_) {
      // Faults draw from their own substream, forked after every device's,
      // so the task streams are identical with and without fault sources.
      // Sharded runs materialize the same timeline in every shard (same
      // substream): fleet-wide state like edge_up_now_ is replicated.
      util::Rng fault_rng = master.fork();
      timeline_ = materialize_faults(cfg_.faults, cfg_.devices.size(),
                                     cfg_.duration, fault_rng);
      apply_fault_timeline();
    }

    // Initial decisions + arrival streams + slot ticks. Decisions consume
    // no RNG and schedule no events, so batching them ahead of the arrival
    // scheduling keeps the event sequence identical to the interleaved
    // per-device order.
    decide_all();
    for (std::size_t i = lo_; i < hi_; ++i) schedule_next_arrival(i);
    queue_.schedule(cfg_.lyapunov.tau, EventKind::kSlotTick,
                    [this] { slot_tick(); });
    if (cfg_.reallocation_period > 0.0)
      queue_.schedule(cfg_.reallocation_period, EventKind::kReallocate,
                      [this] { reallocate(); });
  }

  SimResult run() {
    LEIME_PROF_SCOPE("leime.sim.run");
    init_run();

    // Generation stops at duration; in-flight tasks drain afterwards.
    {
      LEIME_PROF_SCOPE("leime.sim.event_loop");
      queue_.run_all();
    }
    if (obs_ && fabric_) obs_->on_net_fabric(*fabric_, queue_.now());
    if (obs_) obs_->on_run_end(queue_.now());
    SimResult out = finalize();
    out.events_executed = queue_.executed();
    if (owned_obs_) {
      // Policy-core telemetry rides the metrics snapshot only when both
      // layers are opted in; with the engine off no leime_policy_* names
      // register, keeping policy-off output byte-identical.
      if (policy_engine_)
        policy_engine_->publish_metrics(owned_obs_->registry(),
                                        policy_stats_baseline_);
      out.metrics = owned_obs_->registry().snapshot();
      out.attribution = owned_obs_->attribution_summary();
      out.slo = owned_obs_->slo_summary();
      out.provenance = owned_obs_->provenance_summary();
      owned_obs_->export_outputs();
    }
    return out;
  }

  /// Where a task currently is (fault bookkeeping; kLocal/kUplink/kEdge*
  /// mirror the hop it occupies, kWait covers detection/backoff/probe gaps,
  /// kParked is terminal-pending).
  enum class Stage : std::uint8_t {
    kLocal, kUplink, kEdge1, kEdge2, kCloud, kReturn, kWait, kParked
  };

  struct TaskRecord {
    double t_arrive;
    double t_complete = -1.0;
    std::size_t device = 0;
    int block = 0;  ///< 1, 2, or 3
    bool offloaded = false;
    bool counted = false;  ///< post-warmup
    Stage stage = Stage::kLocal;
    /// Bumped whenever the task's current path is abandoned (crash
    /// failover, timeout retry); in-flight callbacks carry the attempt they
    /// were issued under and go stale when it changes.
    int attempt = 0;
    int retries = 0;
    bool parked = false;
  };

  struct FaultCounters {
    std::size_t failed_over = 0;
    std::size_t retries = 0;
    std::size_t fallback_slots = 0;
  };

  /// Everything finalize_impl needs beside the task list: the scalar and
  /// per-device accumulators a single run keeps in members and a sharded
  /// run reassembles across shards (exact integer sums plus the replayed
  /// x stream, so the merged values are bit-identical to a single run's).
  struct Aggregates {
    double x_sum = 0.0;
    std::size_t x_count = 0;
    double q_sum = 0.0;
    double h_sum = 0.0;
    std::size_t queue_samples = 0;
    std::size_t link_outages = 0;
    std::size_t edge_crashes = 0;
    std::size_t churn_events = 0;
    std::size_t local_fallbacks = 0;
    FaultCounters fleet;
    std::vector<double> x_sum_dev;
    std::vector<std::size_t> x_count_dev;
    std::vector<FaultCounters> dev_faults;

    void resize(std::size_t n) {
      x_sum_dev.assign(n, 0.0);
      x_count_dev.assign(n, 0);
      dev_faults.assign(n, {});
    }
  };

  // ------------------------------------------- sharded-run coordination
  // Called by run_scenario_sharded's coordinator thread, strictly between
  // parallel regions (never while shard threads are inside advance_to).

  /// Runs every event up to and including `t`, then parks now() at `t`
  /// (the conservative window barrier).
  void advance_to(double t) { queue_.run_until(t); }

  /// Earliest pending event, +infinity when drained — the coordinator's
  /// lookahead-horizon input (barrier = min over shards + window).
  double next_event_time() const { return queue_.peek_time(); }

  std::uint64_t executed_events() const { return queue_.executed(); }

  /// Delivers a hub (edge->cloud) transfer the coordinator admitted on the
  /// shared link: block 3 starts at t2, exactly as the single-queue
  /// Link::transfer callback would have. t2 >= now() is guaranteed by the
  /// conservative window (t2 >= admission + latency >= barrier).
  void inject_hub_delivery(std::size_t device, std::size_t task, int att,
                           double t2) {
    queue_.schedule(t2, EventKind::kTransferDone,
                    [this, device, task, att, t2] {
      if (!alive(task, att)) return;
      cloud_service(device, task, t2);
    });
  }

  /// Reads this shard's own devices' arrival counts into the fleet-wide
  /// vector (the coordinator's pre-reallocation gather).
  void gather_realloc_counts(std::vector<int>& counts) const {
    for (std::size_t i = lo_; i < hi_; ++i)
      counts[i] = devices_[i]->arrived_this_window;
  }

  /// Installs the gathered fleet-wide counts the next kReallocate event
  /// will allocate from (every shard computes the same eq. 27 shares).
  void set_realloc_counts(std::vector<int> counts) {
    realloc_counts_ = std::move(counts);
  }

  void end_run() {
    if (obs_) obs_->on_run_end(queue_.now());
  }

  const std::vector<TaskRecord>& tasks() const { return tasks_; }

  /// Per-epoch offload decisions in device order (sharded runs only): the
  /// coordinator replays epochs in (epoch, shard) order to rebuild the
  /// fleet-order x_sum accumulation bit for bit.
  const std::vector<std::vector<double>>& x_log() const { return x_log_; }

  /// Adds this shard's accumulators into the merged aggregate. Scalar sums
  /// are integer-valued (order-free in double); per-device entries are
  /// owned by exactly one shard. Replicated fleet-wide counters (faults
  /// materialize identically in every shard) come from the primary only.
  void accumulate(Aggregates& agg, bool primary) const {
    agg.q_sum += q_sum_;
    agg.h_sum += h_sum_;
    agg.queue_samples += queue_samples_;
    agg.local_fallbacks += local_fallbacks_;
    agg.fleet.failed_over += fleet_faults_.failed_over;
    agg.fleet.retries += fleet_faults_.retries;
    agg.fleet.fallback_slots += fleet_faults_.fallback_slots;
    for (std::size_t i = lo_; i < hi_; ++i) {
      agg.x_sum_dev[i] = x_sum_dev_[i];
      agg.x_count_dev[i] = x_count_dev_[i];
      agg.dev_faults[i] = dev_faults_[i];
    }
    if (primary) {
      agg.link_outages = timeline_.link_outage_count();
      agg.edge_crashes = edge_crashes_;
      agg.churn_events = churn_events_;
    }
  }

  /// This shard's metrics-registry snapshot (empty when obs is off); the
  /// coordinator absorbs the snapshots in shard order into one registry.
  obs::Snapshot obs_snapshot() const {
    return owned_obs_ ? owned_obs_->registry().snapshot() : obs::Snapshot{};
  }

  static SimResult finalize_impl(const ScenarioConfig& cfg,
                                 const std::vector<TaskRecord>& tasks,
                                 const Aggregates& agg);

 private:
  void build() {
    LEIME_PROF_SCOPE("leime.sim.build");
    const auto& p = cfg_.partition;
    if (p.mu1 <= 0.0 || p.mu2 <= 0.0 || p.mu3 <= 0.0)
      throw std::invalid_argument("ScenarioConfig: invalid partition");

    if (cfg_.topology.enabled()) {
      std::vector<net::LinkSpec> uplinks;
      for (const auto& spec : cfg_.devices)
        uplinks.push_back({spec.uplink_bw, spec.uplink_lat});
      net::FabricOptions fopts;
      fopts.duplex = cfg_.result_bytes > 0.0;
      fopts.queue_limit_bytes = cfg_.topology.queue_limit_bytes;
      fabric_ = std::make_unique<net::Fabric>(
          queue_,
          net::Topology::from_config(
              cfg_.topology, uplinks,
              {cfg_.edge_cloud_bw, cfg_.edge_cloud_lat}),
          fopts);
    }

    // Edge shares from expected per-slot load (paper eq. 27).
    std::vector<double> k, fd;
    for (const auto& spec : cfg_.devices) {
      k.push_back(std::max(1e-6, spec.mean_rate * cfg_.lyapunov.tau));
      fd.push_back(spec.flops);
    }
    const auto shares = core::kkt_edge_allocation(
        k, fd, cfg_.edge_flops, core::fleet_p_min(k.size()));

    if (!fabric_) {
      // In a sharded run the edge->cloud link is the one shared resource:
      // the coordinator owns it (as a HubLink replay) and shards record
      // admissions into their outbox instead of transferring directly.
      if (!role_.active())
        edge_cloud_link_ = std::make_unique<Link>(
            queue_, "edge-cloud", cfg_.edge_cloud_bw, cfg_.edge_cloud_lat);
      if (cfg_.shared_uplink_bw > 0.0)
        shared_ap_ = std::make_unique<Link>(queue_, "shared-ap",
                                            cfg_.shared_uplink_bw, 0.0);
      if (cfg_.result_bytes > 0.0)
        cloud_return_link_ = std::make_unique<Link>(
            queue_, "cloud-return", cfg_.edge_cloud_bw, cfg_.edge_cloud_lat);
    }
    if (cfg_.cloud_fifo)
      cloud_ = std::make_unique<FifoProcessor>(queue_, "cloud",
                                               cfg_.cloud_flops);

    for (std::size_t i = 0; i < cfg_.devices.size(); ++i) {
      if (role_.active() && (i < lo_ || i >= hi_)) {
        // Another shard owns this device; keep the slot so global indices
        // stay valid (fleet-wide loops guard on the null).
        devices_.push_back(nullptr);
        continue;
      }
      const auto& spec = cfg_.devices[i];
      auto dev = std::make_unique<DeviceRuntime>();
      dev->spec = &spec;
      dev->cpu = std::make_unique<FifoProcessor>(
          queue_, "device" + std::to_string(i), spec.flops);
      if (fabric_) {
        // The fabric owns every link; traces shape the device's wireless
        // hop exactly as they would the flat uplink.
        Link* wireless = fabric_->link(dev_node(i), ap_node(i));
        if (spec.uplink_bw_trace)
          wireless->set_bandwidth_trace(*spec.uplink_bw_trace);
        if (spec.uplink_lat_trace)
          wireless->set_latency_trace(*spec.uplink_lat_trace);
      } else {
        dev->uplink = std::make_unique<Link>(
            queue_, "uplink" + std::to_string(i), spec.uplink_bw,
            spec.uplink_lat);
        if (spec.uplink_bw_trace)
          dev->uplink->set_bandwidth_trace(*spec.uplink_bw_trace);
        if (spec.uplink_lat_trace)
          dev->uplink->set_latency_trace(*spec.uplink_lat_trace);
        if (cfg_.result_bytes > 0.0)
          dev->downlink = std::make_unique<Link>(
              queue_, "downlink" + std::to_string(i), spec.uplink_bw,
              spec.uplink_lat);
      }
      dev->edge_share = std::make_unique<FifoProcessor>(
          queue_, "edge-share" + std::to_string(i),
          shares[i] * cfg_.edge_flops);
      dev->arrivals = make_arrivals(spec);
      if (shared_ap_) {
        dev->tx = shared_ap_.get();
        dev->tx_extra_latency = spec.uplink_lat;
      } else if (!fabric_) {
        dev->tx = dev->uplink.get();
      }
      dev->complexity = workload::ComplexityModel(spec.difficulty);
      dev->arrival_estimate =
          std::max(1.0, spec.mean_rate * cfg_.lyapunov.tau);
      devices_.push_back(std::move(dev));
    }

    if (cfg_.fixed_ratio >= 0.0)
      policy_ = std::make_unique<core::FixedRatioPolicy>(cfg_.fixed_ratio);
    else
      policy_ = core::make_policy(cfg_.policy);
    // The engine is only instantiated for the batched fleet path; the
    // exit-setting fast paths act at design time (scenario_ini, adaptive,
    // multi_edge), before a Simulation exists.
    if (cfg_.policy_core.batch_eq20 && !role_.active())
      policy_engine_ = std::make_unique<policy::Engine>(cfg_.policy_core);
    // Shards share one thread-safe coordinator-owned engine (its batched
    // eq. 20 path is 0-ULP batch-invariant, so partitioning the fleet
    // across shards leaves every decision bit-identical).
    engine_ = role_.active() ? role_.engine : policy_engine_.get();

    x_sum_dev_.assign(devices_.size(), 0.0);
    x_count_dev_.assign(devices_.size(), 0);
    present_.assign(devices_.size(), 1);
    dev_faults_.assign(devices_.size(), {});
  }

  // -------------------------------------------------------------- topology

  static net::NodeId dev_node(std::size_t i) {
    return net::NodeId::device(static_cast<int>(i));
  }
  net::NodeId ap_node(std::size_t i) const {
    return net::NodeId::ap(fabric_->topology().ap_of(static_cast<int>(i)));
  }
  static net::NodeId edge_node() { return net::NodeId::edge(0); }

  /// Fabric flow tags pack (attempt, task id) so the hop tap can filter
  /// spans of abandoned paths: attempts stay small (bounded retries), task
  /// ids stay far below 2^48 for any feasible run length.
  static std::uint64_t flow_tag(std::size_t id, int att) {
    return (static_cast<std::uint64_t>(static_cast<std::uint32_t>(att))
            << 48) |
           static_cast<std::uint64_t>(id);
  }
  static std::size_t flow_task(std::uint64_t tag) {
    return static_cast<std::size_t>(tag & ((std::uint64_t{1} << 48) - 1));
  }
  static int flow_attempt(std::uint64_t tag) {
    return static_cast<int>(tag >> 48);
  }

  /// Which network leg a fabric flow was carrying — a dropped flow is
  /// retried on the same leg (bounded by max_retries, like timeouts).
  enum class NetLeg : std::uint8_t {
    kRaw,         ///< d0 raw input, device -> edge
    kTensor,      ///< d1 intermediate tensor, device -> edge
    kEdgeCloud,   ///< d2 tensor, edge -> cloud
    kEdgeReturn,  ///< result, edge -> device
    kCloudReturn  ///< result, cloud -> device
  };

  // ---------------------------------------------------------------- faults

  const DegradationConfig& deg() const { return cfg_.faults.degradation; }

  /// True while the task is still waiting for the callbacks of attempt
  /// `att`; stale paths (abandoned by a failover or retry) return false.
  bool alive(std::size_t task_id, int att) const {
    const auto& rec = tasks_[task_id];
    return rec.t_complete < 0.0 && rec.attempt == att;
  }

  void apply_fault_timeline() {
    edge_up_now_ = timeline_.edge_up_at(0.0);
    auto to_pairs = [](const std::vector<FaultWindow>& windows) {
      std::vector<std::pair<double, double>> out;
      for (const auto& w : windows) out.push_back({w.start, w.end});
      return out;
    };
    if (fabric_) {
      // Per-device wireless outages land on the device's own port; AP
      // outages hold the backhaul port's queued bytes. Duplex mirrors get
      // the same windows (the radio/backhaul is down in both directions).
      for (std::size_t i = 0; i < devices_.size(); ++i) {
        const auto windows = to_pairs(timeline_.link_down[i]);
        fabric_->link(dev_node(i), ap_node(i))->set_outage_windows(windows);
        if (Link* down = fabric_->link(ap_node(i), dev_node(i)))
          down->set_outage_windows(windows);
      }
      ap_windows_.assign(
          static_cast<std::size_t>(fabric_->topology().num_aps()), {});
      for (const auto& w : timeline_.ap_down) {
        if (w.device < 0)
          for (auto& lane : ap_windows_) lane.push_back(w);
        else
          ap_windows_[static_cast<std::size_t>(w.device)].push_back(w);
      }
      for (std::size_t a = 0; a < ap_windows_.size(); ++a) {
        ap_windows_[a] = merge_windows(std::move(ap_windows_[a]));
        if (ap_windows_[a].empty()) continue;
        const auto windows = to_pairs(ap_windows_[a]);
        const auto ap = net::NodeId::ap(static_cast<int>(a));
        const auto edge = net::NodeId::edge(
            fabric_->topology().edge_of(static_cast<int>(a)));
        fabric_->link(ap, edge)->set_outage_windows(windows);
        if (Link* down = fabric_->link(edge, ap))
          down->set_outage_windows(windows);
      }
    } else if (shared_ap_) {
      // Shared medium: every outage window silences the one AP.
      std::vector<FaultWindow> all;
      for (const auto& lane : timeline_.link_down)
        all.insert(all.end(), lane.begin(), lane.end());
      shared_windows_ = merge_windows(std::move(all));
      shared_ap_->set_outage_windows(to_pairs(shared_windows_));
    } else {
      for (std::size_t i = lo_; i < hi_; ++i)
        devices_[i]->uplink->set_outage_windows(
            to_pairs(timeline_.link_down[i]));
    }
    for (const auto& w : timeline_.edge_down) {
      queue_.schedule(w.start, EventKind::kFaultWindow,
                      [this] { on_edge_crash(); });
      if (std::isfinite(w.end))
        queue_.schedule(w.end, EventKind::kFaultWindow,
                        [this] { on_edge_restart(); });
    }
    for (const auto& e : timeline_.churn) {
      const auto d = static_cast<std::size_t>(e.device);
      queue_.schedule(e.leave, EventKind::kChurn,
                      [this, d] { on_churn(d, false); });
      if (e.rejoin >= 0.0)
        queue_.schedule(e.rejoin, EventKind::kChurn,
                        [this, d] { on_churn(d, true); });
    }
  }

  bool link_up_now(std::size_t i) const {
    if (!faults_on_) return true;
    if (fabric_)
      return !down_at(timeline_.link_down[i], queue_.now()) &&
             !down_at(ap_windows_[static_cast<std::size_t>(
                          fabric_->topology().ap_of(static_cast<int>(i)))],
                      queue_.now());
    if (shared_ap_) return !down_at(shared_windows_, queue_.now());
    return !down_at(timeline_.link_down[i], queue_.now());
  }

  void on_edge_crash() {
    LEIME_PROF_SCOPE("leime.sim.ev.edge_crash");
    edge_up_now_ = false;
    ++edge_crashes_;
    const double now = queue_.now();
    // Fleet-wide faults replay in every shard; only the primary reports
    // them so merged counters match the single-queue run.
    if (obs_ && role_.index == 0) obs_->on_fault("edge_crash", -1, now);
    // Every task resident on an edge share loses its work; the owning
    // device notices after the detection timeout and reclaims it.
    for (std::size_t id = 0; id < tasks_.size(); ++id) {
      auto& rec = tasks_[id];
      if (rec.t_complete >= 0.0) continue;
      if (rec.stage != Stage::kEdge1 && rec.stage != Stage::kEdge2) continue;
      const Stage from = rec.stage;
      ++rec.attempt;  // invalidate the in-flight edge completion
      if (obs_) obs_->on_phase_abort(id, now, "edge_crash");
      rec.stage = Stage::kWait;
      const int att = rec.attempt;
      queue_.schedule(now + deg().detection_timeout,
                      EventKind::kFailoverProbe, [this, id, from, att] {
        if (!alive(id, att)) return;
        failover(tasks_[id].device, id, from);
      });
    }
  }

  void on_edge_restart() {
    LEIME_PROF_SCOPE("leime.sim.ev.edge_restart");
    edge_up_now_ = true;
    if (obs_ && role_.index == 0)
      obs_->on_fault("edge_restart", -1, queue_.now());
    for (auto& dev : devices_)
      if (dev) dev->edge_share->restart(queue_.now());
  }

  void on_churn(std::size_t device, bool joined) {
    LEIME_PROF_SCOPE("leime.sim.ev.churn");
    present_[device] = joined ? 1 : 0;
    ++churn_events_;
    // Per-device fault: the owning shard reports it (lo_ = 0, hi_ = N in
    // single-queue mode, so the guard is a no-op there).
    if (obs_ && device >= lo_ && device < hi_)
      obs_->on_fault(joined ? "churn_join" : "churn_leave",
                     static_cast<int>(device), queue_.now());
    // Re-run the eq. 27 allocation over the devices actually present
    // (absentees keep a floor share so a rejoin cannot divide by zero).
    // Inputs come from the specs, so every shard computes the full fleet's
    // shares identically and applies its own devices' slice.
    scratch_k_.clear();
    scratch_fd_.clear();
    for (std::size_t i = 0; i < cfg_.devices.size(); ++i) {
      scratch_k_.push_back(present_[i]
                               ? std::max(1e-6, cfg_.devices[i].mean_rate *
                                                    cfg_.lyapunov.tau)
                               : 1e-6);
      scratch_fd_.push_back(cfg_.devices[i].flops);
    }
    const auto shares =
        core::kkt_edge_allocation(scratch_k_, scratch_fd_, cfg_.edge_flops,
                                  core::fleet_p_min(scratch_k_.size()));
    for (std::size_t i = lo_; i < hi_; ++i)
      devices_[i]->edge_share->set_flops(shares[i] * cfg_.edge_flops);
  }

  /// Edge-side work for `id` was lost (crash) or refused (submitted while
  /// down): fail the task back to its device after detection.
  void failover(std::size_t i, std::size_t id, Stage from) {
    LEIME_PROF_SCOPE("leime.sim.ev.failover");
    auto& rec = tasks_[id];
    ++fleet_faults_.failed_over;
    ++dev_faults_[i].failed_over;
    if (obs_) obs_->on_fault("failover", static_cast<int>(i), queue_.now());
    if (from == Stage::kEdge1) {
      // Block-1 work re-runs on the device CPU (the device always holds
      // the first partition); deeper blocks re-enter the edge path from
      // there if the task survives past exit 1.
      dispatch(i, id, /*offload=*/false);
    } else {
      // Block 2 only exists on the edge tier: wait for the restart.
      resume_on_edge_when_up(i, id, &rec);
    }
  }

  /// Schedules submit_edge_block2 at the first probe (exponential backoff
  /// schedule) at/after the edge is back; parks the task when the timeline
  /// says the edge never returns.
  void resume_on_edge_when_up(std::size_t i, std::size_t id,
                              TaskRecord* rec) {
    const double now = queue_.now();
    const double up = timeline_.next_edge_up(now);
    if (!std::isfinite(up)) {
      rec->parked = true;
      rec->stage = Stage::kParked;
      if (obs_) obs_->on_task_parked(id, static_cast<int>(i), now);
      return;
    }
    double when = now + deg().probe_period;
    double step = deg().probe_period;
    for (int guard = 0; when < up && guard < 64; ++guard) {
      step *= 2.0;
      when += step;
    }
    rec->stage = Stage::kWait;
    const int att = rec->attempt;
    queue_.schedule(when, EventKind::kFailoverProbe, [this, i, id, att] {
      if (!alive(id, att)) return;
      submit_edge_block2(i, id);
    });
  }

  /// Bounded-retry watchdog for offloaded dispatches (task_timeout > 0).
  void schedule_task_timeout(std::size_t i, std::size_t id) {
    const int att = tasks_[id].attempt;
    queue_.schedule_in(deg().task_timeout, EventKind::kTaskTimeout,
                       [this, i, id, att] {
      auto& rec = tasks_[id];
      if (!alive(id, att)) return;
      // Too deep to claw back (cloud leg) or terminally parked: let it be.
      if (rec.stage == Stage::kCloud || rec.stage == Stage::kReturn ||
          rec.stage == Stage::kParked)
        return;
      ++rec.attempt;
      ++rec.retries;
      ++fleet_faults_.retries;
      ++dev_faults_[i].retries;
      if (obs_) {
        obs_->on_fault("task_timeout", static_cast<int>(i), queue_.now());
        obs_->on_phase_abort(id, queue_.now(), "timeout");
      }
      if (rec.retries <= deg().max_retries) {
        const double wait =
            deg().retry_backoff * std::pow(2.0, rec.retries - 1);
        rec.stage = Stage::kWait;
        const int next = rec.attempt;
        queue_.schedule_in(wait, EventKind::kRetryLaunch,
                           [this, i, id, next] {
          if (!alive(id, next)) return;
          dispatch(i, id, /*offload=*/true);
        });
      } else {
        ++local_fallbacks_;
        if (obs_)
          obs_->on_fault("local_fallback", static_cast<int>(i), queue_.now());
        dispatch(i, id, /*offload=*/false);
      }
    });
  }

  /// A fabric flow for this task was dropped at a full port queue. The leg
  /// is retried with the same bounded backoff as a timeout; an exhausted
  /// raw upload falls back to the device CPU, while deeper legs park (their
  /// partial state lives on tiers the device cannot resume from).
  void handle_net_drop(std::size_t i, std::size_t id, NetLeg leg) {
    LEIME_PROF_SCOPE("leime.sim.ev.net_drop");
    auto& rec = tasks_[id];
    ++rec.attempt;
    ++rec.retries;
    ++fleet_faults_.retries;
    ++dev_faults_[i].retries;
    if (obs_) {
      obs_->on_fault("net_drop", static_cast<int>(i), queue_.now());
      obs_->on_phase_abort(id, queue_.now(), "net_drop");
    }
    if (rec.retries <= deg().max_retries) {
      const double wait = deg().retry_backoff * std::pow(2.0, rec.retries - 1);
      rec.stage = Stage::kWait;
      const int att = rec.attempt;
      queue_.schedule_in(wait, EventKind::kRetryLaunch,
                         [this, i, id, att, leg] {
        if (!alive(id, att)) return;
        relaunch_leg(i, id, leg);
      });
    } else if (leg == NetLeg::kRaw) {
      ++local_fallbacks_;
      if (obs_)
        obs_->on_fault("local_fallback", static_cast<int>(i), queue_.now());
      dispatch(i, id, /*offload=*/false);
    } else {
      rec.parked = true;
      rec.stage = Stage::kParked;
      if (obs_) obs_->on_task_parked(id, static_cast<int>(i), queue_.now());
    }
  }

  void relaunch_leg(std::size_t i, std::size_t id, NetLeg leg) {
    switch (leg) {
      case NetLeg::kRaw: return dispatch(i, id, /*offload=*/true);
      case NetLeg::kTensor: return send_tensor_uplink(i, id);
      case NetLeg::kEdgeCloud: return send_edge_cloud(i, id);
      case NetLeg::kEdgeReturn: return deliver_from_edge(i, id, queue_.now());
      case NetLeg::kCloudReturn:
        return deliver_from_cloud(i, id, queue_.now());
    }
  }

  // ------------------------------------------------------------- task flow

  core::DeviceSlotState observe(std::size_t i) const {
    const auto& dev = *devices_[i];
    core::DeviceSlotState s;
    s.partition = &cfg_.partition;
    s.device_flops = dev.spec->flops;
    s.edge_share_flops = dev.edge_share->flops();
    if (fabric_) {
      // Route aggregates stand in for the single-link observation: the
      // bottleneck bandwidth (min over hops), total propagation latency
      // and total queued backlog along device -> edge. A crowded AP
      // backhaul thus feeds straight into the eq. 8 budget and steers the
      // controller exactly like a shaped flat uplink would.
      const double now = queue_.now();
      s.bandwidth = fabric_->route_bandwidth_at(dev_node(i), edge_node(), now);
      s.latency =
          std::min(fabric_->route_latency_at(dev_node(i), edge_node(), now),
                   0.9 * cfg_.lyapunov.tau);
    } else {
      s.bandwidth = dev.tx->bandwidth_at(queue_.now());
      // Clamp so tau > latency always holds for the decision model even
      // under extreme shaping traces.
      s.latency =
          std::min(dev.tx->latency_at(queue_.now()) + dev.tx_extra_latency,
                   0.9 * cfg_.lyapunov.tau);
    }
    s.queue_device = dev.cpu->pending(JobClass::kBlock1);
    s.queue_edge = dev.edge_share->pending(JobClass::kBlock1);
    if (!cfg_.uplink_backlog_feedback)
      s.uplink_backlog_bytes = 0.0;
    else
      s.uplink_backlog_bytes =
          fabric_
              ? fabric_->route_backlog_bytes(dev_node(i), edge_node(),
                                             queue_.now())
              : dev.tx->backlog_bytes(queue_.now());
    s.arrivals = dev.arrival_estimate;
    s.edge_available = !faults_on_ || (edge_up_now_ && link_up_now(i));
    s.config = cfg_.lyapunov;
    return s;
  }

  void decide(std::size_t i) {
    LEIME_PROF_SCOPE("leime.sim.decide");
    const auto state = observe(i);
    apply_decision(i, state, policy_->decide(state));
  }

  /// Slot decisions for the whole fleet. The default path is the
  /// sequential per-device loop; with [policy] batch_eq20 the engine
  /// dedups bit-identical states and calls the policy once per group —
  /// result-identical within 0 ULP (src/policy/batch.h), proven by the
  /// golden invariance test.
  void decide_all() {
    // Each decision epoch opens a fresh x-log slice; the coordinator
    // replays slices in (epoch, shard) order to rebuild the fleet-order
    // x_sum accumulation of the single-queue loop.
    if (role_.active()) x_log_.emplace_back();
    if (!engine_) {
      for (std::size_t i = lo_; i < hi_; ++i) decide(i);
      return;
    }
    scratch_states_.clear();
    for (std::size_t i = lo_; i < hi_; ++i)
      scratch_states_.push_back(observe(i));
    engine_->decide_fleet(*policy_, scratch_states_, scratch_x_);
    for (std::size_t i = lo_; i < hi_; ++i)
      apply_decision(i, scratch_states_[i - lo_], scratch_x_[i - lo_]);
  }

  /// Decision bookkeeping shared by the sequential and batched paths.
  void apply_decision(std::size_t i, const core::DeviceSlotState& state,
                      double x) {
    auto& dev = *devices_[i];
    dev.x = x;
    if (faults_on_ && !state.edge_available && dev.x <= 0.0) {
      ++fleet_faults_.fallback_slots;
      ++dev_faults_[i].fallback_slots;
    }
    x_sum_ += dev.x;
    ++x_count_;
    x_sum_dev_[i] += dev.x;
    ++x_count_dev_[i];
    if (role_.active()) x_log_.back().push_back(dev.x);
    if (obs_) {
      SlotTelemetry tel;
      tel.x = dev.x;
      tel.q = state.queue_device;
      tel.h = state.queue_edge;
      tel.penalty = state.config.V * core::slot_cost(state, dev.x);
      tel.drift = core::drift_plus_penalty(state, dev.x) - tel.penalty;
      tel.edge_up = !faults_on_ || edge_up_now_;
      tel.link_up = link_up_now(i);
      tel.edge_share_flops = dev.edge_share->flops();
      // Eq. 4-9 component predictions at decision time; the attribution
      // layer joins them against the realized ledger at task completion.
      tel.pred = policy::predict_components(state, dev.x);
      // Borrowed for the duration of the hook: provenance re-evaluates the
      // eq. 19 objective at unchosen x values without touching the run.
      tel.state = &state;
      tel.batched = engine_ != nullptr;
      obs_->on_slot_decision(static_cast<int>(i), queue_.now(), tel);
    }
  }

  void slot_tick() {
    LEIME_PROF_SCOPE("leime.sim.ev.slot_tick");
    // Estimates, decisions and queue sampling are per-device independent
    // (decisions touch no queues, consume no RNG and schedule no events),
    // so splitting the single loop into phases — required for the batched
    // decision path — leaves every value and the event sequence unchanged.
    for (std::size_t i = lo_; i < hi_; ++i) {
      auto& dev = *devices_[i];
      // Blend observation with the process's nominal rate: reacts to bursts
      // while staying stable at low rates.
      const double observed = dev.arrived_this_slot;
      const double nominal =
          dev.arrivals->rate_at(queue_.now()) * cfg_.lyapunov.tau;
      dev.arrival_estimate = std::max(0.5 * (observed + nominal), 0.25);
      dev.arrived_this_slot = 0;
    }
    decide_all();
    for (std::size_t i = lo_; i < hi_; ++i) {
      auto& dev = *devices_[i];
      q_sum_ += dev.cpu->pending(JobClass::kBlock1);
      h_sum_ += dev.edge_share->pending(JobClass::kBlock1);
      ++queue_samples_;
    }
    if (queue_.now() + cfg_.lyapunov.tau <= cfg_.duration)
      queue_.schedule_in(cfg_.lyapunov.tau, EventKind::kSlotTick,
                         [this] { slot_tick(); });
  }

  void schedule_next_arrival(std::size_t i) {
    auto& dev = *devices_[i];
    const double gap = dev.arrivals->next_interarrival(queue_.now(), dev.rng);
    const double when = queue_.now() + gap;
    if (when > cfg_.duration) return;  // generation window closed
    queue_.schedule(when, EventKind::kArrival, [this, i] {
      on_arrival(i);
      schedule_next_arrival(i);
    });
  }

  void reallocate() {
    LEIME_PROF_SCOPE("leime.sim.ev.reallocate");
    // Re-run the eq. 27 allocation on observed per-window rates; a floor
    // keeps idle devices from being starved out entirely.
    scratch_k_.clear();
    scratch_fd_.clear();
    if (role_.active()) {
      // Sharded: the fleet-wide counts were gathered by the coordinator at
      // a barrier just below this event's time (the same arrivals the
      // single-queue loop would read here), so every shard allocates from
      // identical inputs. Subtracting the gathered count instead of
      // zeroing keeps any arrival landing between the gather barrier and
      // this event counted toward the next window.
      for (std::size_t i = 0; i < cfg_.devices.size(); ++i) {
        scratch_k_.push_back(
            std::max(0.25, static_cast<double>(realloc_counts_[i]) *
                               cfg_.lyapunov.tau / cfg_.reallocation_period));
        scratch_fd_.push_back(cfg_.devices[i].flops);
      }
      for (std::size_t i = lo_; i < hi_; ++i)
        devices_[i]->arrived_this_window -= realloc_counts_[i];
    } else {
      for (auto& dev : devices_) {
        scratch_k_.push_back(
            std::max(0.25, static_cast<double>(dev->arrived_this_window) *
                               cfg_.lyapunov.tau / cfg_.reallocation_period));
        scratch_fd_.push_back(dev->spec->flops);
        dev->arrived_this_window = 0;
      }
    }
    const auto shares =
        core::kkt_edge_allocation(scratch_k_, scratch_fd_, cfg_.edge_flops,
                                  core::fleet_p_min(scratch_k_.size()));
    for (std::size_t i = lo_; i < hi_; ++i)
      devices_[i]->edge_share->set_flops(shares[i] * cfg_.edge_flops);
    if (queue_.now() + cfg_.reallocation_period <= cfg_.duration)
      queue_.schedule_in(cfg_.reallocation_period, EventKind::kReallocate,
                         [this] { reallocate(); });
  }

  void on_arrival(std::size_t i) {
    LEIME_PROF_SCOPE("leime.sim.ev.arrival");
    if (faults_on_ && !present_[i]) return;  // device has left the fleet
    auto& dev = *devices_[i];
    ++dev.arrived_this_slot;
    ++dev.arrived_this_window;
    const std::size_t task_id = tasks_.size();
    TaskRecord rec;
    rec.t_arrive = queue_.now();
    rec.device = i;
    rec.block =
        workload::block_for_complexity(cfg_.partition, dev.complexity.sample(dev.rng));
    rec.offloaded = dev.rng.bernoulli(dev.x);
    rec.counted = rec.t_arrive >= cfg_.warmup;
    tasks_.push_back(rec);
    if (obs_)
      obs_->on_task_generated(task_id, static_cast<int>(i), rec.t_arrive,
                              rec.block, rec.offloaded);
    dispatch(i, task_id, rec.offloaded);
  }

  /// Launches (or relaunches) a task: offloaded tasks cross the uplink and
  /// start block 1 on the edge share; local tasks start it on the device.
  void dispatch(std::size_t i, std::size_t id, bool offload) {
    LEIME_PROF_SCOPE("leime.sim.ev.dispatch");
    auto& dev = *devices_[i];
    auto& rec = tasks_[id];
    const auto& p = cfg_.partition;
    const int att = rec.attempt;
    if (offload) {
      rec.stage = Stage::kUplink;
      if (obs_)
        obs_->on_phase_begin(
            id, static_cast<int>(i), "uplink",
            fabric_ ? "fabric" : dev.tx->name(), queue_.now(),
            fabric_ ? queue_.now()
                    : std::max(queue_.now(), dev.tx->busy_until()),
            att);
      // Raw input crosses the uplink, then block 1 runs on the edge share.
      if (fabric_) {
        fabric_->transfer(dev_node(i), edge_node(), p.d0, flow_tag(id, att),
                          [this, i, id, att](double t) {
          if (!alive(id, att)) return;
          if (t < 0.0) return handle_net_drop(i, id, NetLeg::kRaw);
          if (obs_) obs_->on_phase_end(id, t);
          submit_edge_block1(i, id);
        });
      } else {
        dev.tx->transfer(p.d0, dev.tx_extra_latency,
                         [this, i, id, att](double t) {
          if (!alive(id, att)) return;
          if (obs_) obs_->on_phase_end(id, t);
          submit_edge_block1(i, id);
        });
      }
      if (deg().task_timeout > 0.0) schedule_task_timeout(i, id);
    } else {
      rec.stage = Stage::kLocal;
      if (obs_)
        obs_->on_phase_begin(id, static_cast<int>(i), "local_block1",
                             dev.cpu->name(), queue_.now(),
                             std::max(queue_.now(), dev.cpu->busy_until()),
                             att);
      dev.cpu->submit(p.mu1, JobClass::kBlock1, [this, i, id, att](double t) {
        if (!alive(id, att)) return;
        if (obs_) obs_->on_phase_end(id, t);
        after_block1(i, id, t, false);
      });
    }
  }

  void submit_edge_block1(std::size_t i, std::size_t id) {
    LEIME_PROF_SCOPE("leime.sim.ev.edge_block1");
    auto& rec = tasks_[id];
    if (faults_on_ && !edge_up_now_) {
      // Refused at the dead edge's door: fail back after detection.
      ++rec.attempt;
      rec.stage = Stage::kWait;
      if (obs_)
        obs_->on_fault("edge_refused", static_cast<int>(i), queue_.now());
      const int att = rec.attempt;
      queue_.schedule_in(deg().detection_timeout, EventKind::kFailoverProbe,
                         [this, i, id, att] {
        if (!alive(id, att)) return;
        failover(i, id, Stage::kEdge1);
      });
      return;
    }
    rec.stage = Stage::kEdge1;
    const int att = rec.attempt;
    if (obs_)
      obs_->on_phase_begin(
          id, static_cast<int>(i), "edge_block1",
          devices_[i]->edge_share->name(), queue_.now(),
          std::max(queue_.now(), devices_[i]->edge_share->busy_until()), att);
    devices_[i]->edge_share->submit(
        cfg_.partition.mu1, JobClass::kBlock1, [this, i, id, att](double t) {
          if (!alive(id, att)) return;
          if (obs_) obs_->on_phase_end(id, t);
          after_block1(i, id, t, true);
        });
  }

  void submit_edge_block2(std::size_t i, std::size_t id) {
    LEIME_PROF_SCOPE("leime.sim.ev.edge_block2");
    auto& rec = tasks_[id];
    if (faults_on_ && !edge_up_now_) {
      ++rec.attempt;
      rec.stage = Stage::kWait;
      if (obs_)
        obs_->on_fault("edge_refused", static_cast<int>(i), queue_.now());
      const int att = rec.attempt;
      queue_.schedule_in(deg().detection_timeout, EventKind::kFailoverProbe,
                         [this, i, id, att] {
        if (!alive(id, att)) return;
        failover(i, id, Stage::kEdge2);
      });
      return;
    }
    rec.stage = Stage::kEdge2;
    const int att = rec.attempt;
    if (obs_)
      obs_->on_phase_begin(
          id, static_cast<int>(i), "edge_block2",
          devices_[i]->edge_share->name(), queue_.now(),
          std::max(queue_.now(), devices_[i]->edge_share->busy_until()), att);
    devices_[i]->edge_share->submit(
        cfg_.partition.mu2, JobClass::kBlock2, [this, i, id, att](double t) {
          if (!alive(id, att)) return;
          if (obs_) obs_->on_phase_end(id, t);
          after_block2(i, id, t);
        });
  }

  void after_block1(std::size_t i, std::size_t id, double t, bool on_edge) {
    LEIME_PROF_SCOPE("leime.sim.ev.after_block1");
    auto& rec = tasks_[id];
    if (rec.block == 1) {
      // Local completions hold the result already; edge ones return it.
      if (on_edge)
        deliver_from_edge(i, id, t);
      else
        complete(id, t);
      return;
    }
    if (on_edge) {
      // Already at the edge: block 2 continues on the same share.
      submit_edge_block2(i, id);
    } else {
      send_tensor_uplink(i, id);
    }
  }

  /// The intermediate d1 tensor crosses to the edge before block 2.
  void send_tensor_uplink(std::size_t i, std::size_t id) {
    auto& rec = tasks_[id];
    rec.stage = Stage::kUplink;
    const int att = rec.attempt;
    if (obs_)
      obs_->on_phase_begin(
          id, static_cast<int>(i), "uplink",
          fabric_ ? "fabric" : devices_[i]->tx->name(), queue_.now(),
          fabric_ ? queue_.now()
                  : std::max(queue_.now(), devices_[i]->tx->busy_until()),
          att);
    if (fabric_) {
      fabric_->transfer(dev_node(i), edge_node(), cfg_.partition.d1,
                        flow_tag(id, att), [this, i, id, att](double t2) {
        if (!alive(id, att)) return;
        if (t2 < 0.0) return handle_net_drop(i, id, NetLeg::kTensor);
        if (obs_) obs_->on_phase_end(id, t2);
        submit_edge_block2(i, id);
      });
    } else {
      devices_[i]->tx->transfer(
          cfg_.partition.d1, devices_[i]->tx_extra_latency,
          [this, i, id, att](double t2) {
            if (!alive(id, att)) return;
            if (obs_) obs_->on_phase_end(id, t2);
            submit_edge_block2(i, id);
          });
    }
  }

  void after_block2(std::size_t i, std::size_t id, double t) {
    LEIME_PROF_SCOPE("leime.sim.ev.after_block2");
    if (tasks_[id].block == 2) {
      deliver_from_edge(i, id, t);
      return;
    }
    send_edge_cloud(i, id);
  }

  /// The d2 tensor crosses to the cloud, then block 3 runs there.
  void send_edge_cloud(std::size_t i, std::size_t id) {
    auto& rec = tasks_[id];
    rec.stage = Stage::kCloud;
    const int att = rec.attempt;
    if (role_.active()) {
      // Cross-shard leg: record the admission; the coordinator replays the
      // shared hub link in global admission order at the next barrier and
      // injects the delivery back into this shard. (Sharded obs is
      // metrics-only, where the phase hooks are no-ops, so skipping them
      // on this leg changes nothing observable.)
      role_.outbox->push_back({queue_.now(), i, id, att});
      return;
    }
    if (obs_)
      obs_->on_phase_begin(
          id, static_cast<int>(i), "edge_cloud_link",
          fabric_ ? "fabric" : edge_cloud_link_->name(), queue_.now(),
          fabric_
              ? queue_.now()
              : std::max(queue_.now(), edge_cloud_link_->busy_until()),
          att);
    if (fabric_) {
      fabric_->transfer(edge_node(), net::NodeId::cloud(), cfg_.partition.d2,
                        flow_tag(id, att), [this, i, id, att](double t2) {
        if (!alive(id, att)) return;
        if (t2 < 0.0) return handle_net_drop(i, id, NetLeg::kEdgeCloud);
        if (obs_) obs_->on_phase_end(id, t2);
        cloud_service(i, id, t2);
      });
    } else {
      edge_cloud_link_->transfer(cfg_.partition.d2,
                                 [this, i, id, att](double t2) {
        if (!alive(id, att)) return;
        if (obs_) obs_->on_phase_end(id, t2);
        cloud_service(i, id, t2);
      });
    }
  }

  /// Block 3 on the cloud tier (FIFO server or uncontended service).
  void cloud_service(std::size_t i, std::size_t id, double t2) {
    const int att = tasks_[id].attempt;
    if (cloud_) {
      if (obs_)
        obs_->on_phase_begin(id, static_cast<int>(i), "cloud_block3",
                             cloud_->name(), t2,
                             std::max(t2, cloud_->busy_until()), att);
      cloud_->submit(cfg_.partition.mu3, JobClass::kBlock3,
                     [this, i, id, att](double t3) {
                       if (!alive(id, att)) return;
                       if (obs_) obs_->on_phase_end(id, t3);
                       deliver_from_cloud(i, id, t3);
                     });
    } else {
      // Uncontended cloud service.
      const double finish = t2 + cfg_.partition.mu3 / cfg_.cloud_flops;
      if (obs_)
        obs_->on_phase_begin(id, static_cast<int>(i), "cloud_block3",
                             "cloud", t2, t2, att);
      queue_.schedule(finish, EventKind::kCloudService,
                      [this, i, id, att, finish] {
        if (!alive(id, att)) return;
        if (obs_) obs_->on_phase_end(id, finish);
        deliver_from_cloud(i, id, finish);
      });
    }
  }

  /// Result return from the edge tier (no-op transfer when results are
  /// modelled as free).
  void deliver_from_edge(std::size_t i, std::size_t id, double t) {
    LEIME_PROF_SCOPE("leime.sim.ev.deliver_edge");
    if (cfg_.result_bytes <= 0.0) {
      complete(id, t);
      return;
    }
    tasks_[id].stage = Stage::kReturn;
    const int att = tasks_[id].attempt;
    if (obs_)
      obs_->on_phase_begin(
          id, static_cast<int>(i), "return_link",
          fabric_ ? "fabric" : devices_[i]->downlink->name(), queue_.now(),
          fabric_
              ? queue_.now()
              : std::max(queue_.now(), devices_[i]->downlink->busy_until()),
          att);
    if (fabric_) {
      fabric_->transfer(edge_node(), dev_node(i), cfg_.result_bytes,
                        flow_tag(id, att), [this, i, id, att](double t2) {
        if (!alive(id, att)) return;
        if (t2 < 0.0) return handle_net_drop(i, id, NetLeg::kEdgeReturn);
        if (obs_) obs_->on_phase_end(id, t2);
        complete(id, t2);
      });
      return;
    }
    devices_[i]->downlink->transfer(
        cfg_.result_bytes, [this, id, att](double t2) {
          if (!alive(id, att)) return;
          if (obs_) obs_->on_phase_end(id, t2);
          complete(id, t2);
        });
  }

  /// Result return from the cloud: cloud -> edge, then edge -> device.
  void deliver_from_cloud(std::size_t i, std::size_t id, double t) {
    LEIME_PROF_SCOPE("leime.sim.ev.deliver_cloud");
    if (cfg_.result_bytes <= 0.0) {
      complete(id, t);
      return;
    }
    tasks_[id].stage = Stage::kReturn;
    const int att = tasks_[id].attempt;
    if (fabric_) {
      // One routed flow cloud -> edge -> AP -> device replaces the flat
      // path's two-stage return.
      if (obs_)
        obs_->on_phase_begin(id, static_cast<int>(i), "cloud_return_link",
                             "fabric", queue_.now(), queue_.now(), att);
      fabric_->transfer(net::NodeId::cloud(), dev_node(i), cfg_.result_bytes,
                        flow_tag(id, att), [this, i, id, att](double t2) {
        if (!alive(id, att)) return;
        if (t2 < 0.0) return handle_net_drop(i, id, NetLeg::kCloudReturn);
        if (obs_) obs_->on_phase_end(id, t2);
        complete(id, t2);
      });
      (void)t;
      return;
    }
    if (obs_)
      obs_->on_phase_begin(
          id, static_cast<int>(i), "cloud_return_link",
          cloud_return_link_->name(), queue_.now(),
          std::max(queue_.now(), cloud_return_link_->busy_until()), att);
    cloud_return_link_->transfer(cfg_.result_bytes, [this, i, id,
                                                     att](double t2) {
      if (!alive(id, att)) return;
      if (obs_) {
        obs_->on_phase_end(id, t2);
        obs_->on_phase_begin(
            id, static_cast<int>(tasks_[id].device), "return_link",
            devices_[i]->downlink->name(), t2,
            std::max(t2, devices_[i]->downlink->busy_until()), att);
      }
      devices_[i]->downlink->transfer(
          cfg_.result_bytes, [this, id, att](double t2b) {
            if (!alive(id, att)) return;
            if (obs_) obs_->on_phase_end(id, t2b);
            complete(id, t2b);
          });
    });
    (void)t;
  }

  void complete(std::size_t id, double t) {
    LEIME_PROF_SCOPE("leime.sim.ev.complete");
    auto& rec = tasks_[id];
    LEIME_CHECK(rec.t_complete < 0.0);
    rec.t_complete = t;
    if (obs_)
      obs_->on_task_complete(id, static_cast<int>(rec.device), rec.t_arrive,
                             t, rec.block, rec.retries, rec.counted);
  }

  SimResult finalize() const {
    LEIME_PROF_SCOPE("leime.sim.finalize");
    Aggregates agg;
    agg.x_sum = x_sum_;
    agg.x_count = x_count_;
    agg.q_sum = q_sum_;
    agg.h_sum = h_sum_;
    agg.queue_samples = queue_samples_;
    agg.link_outages = timeline_.link_outage_count();
    agg.edge_crashes = edge_crashes_;
    agg.churn_events = churn_events_;
    agg.local_fallbacks = local_fallbacks_;
    agg.fleet = fleet_faults_;
    agg.x_sum_dev = x_sum_dev_;
    agg.x_count_dev = x_count_dev_;
    agg.dev_faults = dev_faults_;
    SimResult out = finalize_impl(cfg_, tasks_, agg);
    if (fabric_) {
      out.net.active = true;
      const auto& ns = fabric_->stats();
      out.net.transfers = ns.transfers;
      out.net.delivered = ns.delivered;
      out.net.hops = ns.hops;
      out.net.drops = ns.drops;
      out.net.bytes = ns.bytes;
      out.net.max_backlog_bytes = fabric_->max_backlog_bytes();
    }
    return out;
  }

  static void write_task_trace(const ScenarioConfig& cfg,
                               const std::vector<TaskRecord>& tasks) {
    util::CsvWriter trace(cfg.task_trace_path,
                          {"task", "device", "t_arrive", "t_complete",
                           "tct", "exit_block", "offloaded", "counted"});
    for (std::size_t id = 0; id < tasks.size(); ++id) {
      const auto& rec = tasks[id];
      const bool done = rec.t_complete >= 0.0;
      trace.add_row({std::to_string(id), std::to_string(rec.device),
                     std::to_string(rec.t_arrive),
                     done ? std::to_string(rec.t_complete) : "-",
                     done ? std::to_string(rec.t_complete - rec.t_arrive)
                          : "-",
                     std::to_string(rec.block),
                     rec.offloaded ? "1" : "0", rec.counted ? "1" : "0"});
    }
  }

  const ScenarioConfig& cfg_;
  ShardRole role_;
  /// Owned device range [lo_, hi_): the whole fleet in single-queue mode.
  std::size_t lo_ = 0;
  std::size_t hi_ = 0;
  EventQueue queue_;
  /// Index-aligned with cfg_.devices; entries outside [lo_, hi_) are null
  /// in sharded mode (another shard owns them).
  std::vector<std::unique_ptr<DeviceRuntime>> devices_;
  std::unique_ptr<Link> edge_cloud_link_;
  std::unique_ptr<Link> cloud_return_link_;
  std::unique_ptr<Link> shared_ap_;
  std::unique_ptr<net::Fabric> fabric_;  ///< topology mode; else nullptr
  std::unique_ptr<FifoProcessor> cloud_;
  std::unique_ptr<core::OffloadPolicy> policy_;
  /// Set iff cfg_.policy_core.batch_eq20; scratch vectors reused across
  /// slots so the batched path allocates nothing in steady state.
  std::unique_ptr<policy::Engine> policy_engine_;
  /// The engine decisions actually go through: the shared coordinator
  /// engine in sharded mode, policy_engine_.get() otherwise (null = the
  /// sequential per-device path).
  policy::Engine* engine_ = nullptr;
  policy::Stats policy_stats_baseline_;
  std::vector<core::DeviceSlotState> scratch_states_;
  std::vector<double> scratch_x_;
  /// Sharded mode only: per-epoch offload decisions in device order (the
  /// coordinator's x_sum replay) and the gathered fleet-wide arrival
  /// counts the next kReallocate event allocates from.
  std::vector<std::vector<double>> x_log_;
  std::vector<int> realloc_counts_;
  std::vector<TaskRecord> tasks_;
  Observer* obs_ = nullptr;  ///< external (cfg_.observer) or owned_obs_
  std::unique_ptr<RecordingObserver> owned_obs_;
  double x_sum_ = 0.0;
  std::size_t x_count_ = 0;
  double q_sum_ = 0.0;
  double h_sum_ = 0.0;
  std::size_t queue_samples_ = 0;
  std::vector<double> x_sum_dev_;
  std::vector<std::size_t> x_count_dev_;
  // Reused by reallocate()/on_churn() so periodic re-allocations stop
  // re-growing fresh k/F^d vectors every window.
  std::vector<double> scratch_k_;
  std::vector<double> scratch_fd_;

  // Fault-layer state.
  bool faults_on_ = false;
  FaultTimeline timeline_;
  std::vector<FaultWindow> shared_windows_;  ///< merged, shared-AP mode
  std::vector<std::vector<FaultWindow>> ap_windows_;  ///< merged, per AP
  bool edge_up_now_ = true;
  std::vector<char> present_;
  FaultCounters fleet_faults_;
  std::vector<FaultCounters> dev_faults_;
  std::size_t edge_crashes_ = 0;
  std::size_t churn_events_ = 0;
  std::size_t local_fallbacks_ = 0;
};

SimResult Simulation::finalize_impl(const ScenarioConfig& cfg,
                                    const std::vector<TaskRecord>& tasks,
                                    const Aggregates& agg) {
  const std::size_t num_devices = agg.x_sum_dev.size();
  SimResult out;
  std::vector<double> tcts;
  std::map<long long, std::pair<double, std::size_t>> windows;
  std::size_t exits[3] = {0, 0, 0};
  std::vector<std::vector<double>> device_tcts(num_devices);
  for (const auto& rec : tasks) {
    ++out.generated;
    if (rec.t_complete >= 0.0)
      ++out.total_completed;
    else
      ++out.in_flight;
    if (rec.parked) ++out.faults.parked;
    if (!rec.counted) continue;
    if (rec.t_complete < 0.0) continue;  // still in flight at drain end
    ++out.completed;
    const double tct = rec.t_complete - rec.t_arrive;
    tcts.push_back(tct);
    device_tcts[rec.device].push_back(tct);
    ++exits[rec.block - 1];
    const auto w =
        static_cast<long long>(rec.t_complete / cfg.timeline_window);
    auto& slot = windows[w];
    slot.first += tct;
    ++slot.second;
  }
  out.tct = util::summarize(tcts);
  const double total = std::max<std::size_t>(1, out.completed);
  out.exit1_fraction = exits[0] / total;
  out.exit2_fraction = exits[1] / total;
  out.exit3_fraction = exits[2] / total;
  out.mean_offload_ratio = agg.x_count ? agg.x_sum / agg.x_count : 0.0;
  out.mean_device_queue =
      agg.queue_samples ? agg.q_sum / agg.queue_samples : 0.0;
  out.mean_edge_queue =
      agg.queue_samples ? agg.h_sum / agg.queue_samples : 0.0;
  out.faults.link_outages = agg.link_outages;
  out.faults.edge_crashes = agg.edge_crashes;
  out.faults.churn_events = agg.churn_events;
  out.faults.failed_over = agg.fleet.failed_over;
  out.faults.retries = agg.fleet.retries;
  out.faults.local_fallbacks = agg.local_fallbacks;
  out.faults.fallback_slots = agg.fleet.fallback_slots;
  for (const auto& [w, slot] : windows)
    out.timeline.push_back({(w + 0.5) * cfg.timeline_window,
                            slot.first / slot.second, slot.second});
  if (!cfg.task_trace_path.empty()) write_task_trace(cfg, tasks);
  for (std::size_t i = 0; i < num_devices; ++i) {
    SimResult::DeviceResult dr;
    dr.tct = util::summarize(device_tcts[i]);
    dr.completed = device_tcts[i].size();
    dr.mean_offload_ratio =
        agg.x_count_dev[i]
            ? agg.x_sum_dev[i] / static_cast<double>(agg.x_count_dev[i])
            : 0.0;
    dr.failed_over = agg.dev_faults[i].failed_over;
    dr.retries = agg.dev_faults[i].retries;
    dr.fallback_slots = agg.dev_faults[i].fallback_slots;
    out.per_device.push_back(dr);
  }
  return out;
}

// --------------------------------------------------- sharded coordinator

/// Sharded v1 holds determinism above generality: it accepts exactly the
/// configurations where the only fleet-shared mutable resource is the
/// edge->cloud link (which the coordinator replays bit-identically), and
/// rejects everything else loudly rather than drifting from the
/// single-queue results.
void validate_sharded(const ScenarioConfig& cfg) {
  auto reject = [](const std::string& what) {
    throw std::invalid_argument(
        "[shards] sharded execution does not support " + what +
        " (run with shards = 1)");
  };
  if (cfg.topology.enabled()) reject("[topology] routed fabric mode");
  if (cfg.shared_uplink_bw > 0.0) reject("shared_uplink_bw");
  if (cfg.cloud_fifo) reject("cloud_fifo (a fleet-shared FIFO server)");
  if (cfg.result_bytes > 0.0)
    reject("result_bytes (the shared cloud-return link)");
  if (cfg.observer) reject("an external observer");
  if (cfg.obs.effective_trace_sample() > 0 || cfg.obs.timeseries_enabled() ||
      cfg.obs.attribution_enabled() || cfg.obs.slo.enabled() ||
      cfg.obs.provenance_enabled())
    reject("observability beyond the metrics pillar");
  if (cfg.edge_cloud_lat <= 0.0)
    throw std::invalid_argument(
        "[shards] sharded execution needs edge_cloud_lat > 0: the "
        "propagation delay is the conservative lookahead window");
}

/// One simulation, S event queues (DESIGN.md §15). Shards advance in
/// conservative windows no wider than the edge-cloud propagation delay —
/// every cross-shard event (a hub admission's delivery) provably lands at
/// or beyond the next barrier, so no shard ever receives an event in its
/// past. Between windows the coordinator merges shard outboxes in global
/// admission order, replays the shared hub link, injects deliveries, and
/// (just below each reallocation tick) gathers fleet-wide arrival counts.
/// The merge discipline makes the result byte-identical to shards = 1 for
/// any shard/thread count.
SimResult run_scenario_sharded(const ScenarioConfig& cfg) {
  LEIME_PROF_SCOPE("leime.sim.run_sharded");
  validate_sharded(cfg);
  const std::size_t n = cfg.devices.size();
  const std::size_t S = std::min(cfg.shards.shards, n);
  const double window = shard_window(cfg.shards, cfg.edge_cloud_lat);
  const double inf = std::numeric_limits<double>::infinity();

  // One thread-safe engine shared by every shard thread (batch_eq20 only).
  std::unique_ptr<policy::Engine> engine;
  policy::Stats engine_baseline;
  if (cfg.policy_core.batch_eq20) {
    engine = std::make_unique<policy::Engine>(cfg.policy_core);
    engine_baseline = engine->stats();
  }

  std::vector<std::vector<HubRequest>> outboxes(S);
  std::vector<std::unique_ptr<Simulation>> shards;
  shards.reserve(S);
  std::vector<std::size_t> owner(n);
  for (std::size_t s = 0; s < S; ++s) {
    const auto range = shard_range(n, S, s);
    ShardRole role;
    role.index = s;
    role.num_shards = S;
    role.lo = range.first;
    role.hi = range.second;
    role.outbox = &outboxes[s];
    role.engine = engine.get();
    for (std::size_t i = range.first; i < range.second; ++i) owner[i] = s;
    shards.push_back(std::make_unique<Simulation>(cfg, role));
  }

  ShardPool pool(resolve_shard_threads(cfg.shards, S));
  pool.run(S, [&](std::size_t s) { shards[s]->init_run(); });

  HubLink hub(cfg.edge_cloud_bw, cfg.edge_cloud_lat);
  // Mirrors the single-queue kReallocate schedule: first tick at P
  // unconditionally, then T + P while it lands within the generation
  // window (reallocate()'s own rescheduling rule).
  double next_realloc =
      cfg.reallocation_period > 0.0 ? cfg.reallocation_period : inf;
  std::vector<HubRequest> admissions;
  std::vector<int> counts(n, 0);

  {
    LEIME_PROF_SCOPE("leime.sim.event_loop");
    for (;;) {
      // Adaptive barrier: the earliest pending event anywhere plus the
      // lookahead. Idle stretches (e.g. the post-generation drain) are
      // skipped outright instead of stepped through window by window.
      double min_peek = inf;
      for (const auto& sh : shards)
        min_peek = std::min(min_peek, sh->next_event_time());
      if (!std::isfinite(min_peek)) break;  // all queues drained
      double barrier = min_peek + window;
      bool gather = false;
      if (std::isfinite(next_realloc)) {
        // Stop one ulp below the reallocation tick so the fleet-wide
        // arrival counts can be gathered before any shard executes it.
        const double t_minus = std::nextafter(next_realloc, -inf);
        if (barrier >= t_minus) {
          barrier = t_minus;
          gather = true;
        }
      }
      pool.run(S, [&](std::size_t s) { shards[s]->advance_to(barrier); });

      // Merge the windows' hub admissions in global admission order:
      // within a shard the outbox is already event-ordered, across shards
      // (t, device) reproduces the single queue's (time, seq) order.
      admissions.clear();
      for (auto& box : outboxes) {
        admissions.insert(admissions.end(), box.begin(), box.end());
        box.clear();
      }
      std::stable_sort(admissions.begin(), admissions.end(),
                       [](const HubRequest& a, const HubRequest& b) {
                         if (a.t != b.t) return a.t < b.t;
                         return a.device < b.device;
                       });
      for (const auto& req : admissions) {
        const double t2 = hub.admit(req.t, cfg.partition.d2);
        shards[owner[req.device]]->inject_hub_delivery(req.device, req.task,
                                                       req.attempt, t2);
      }

      if (gather) {
        for (const auto& sh : shards) sh->gather_realloc_counts(counts);
        for (const auto& sh : shards) sh->set_realloc_counts(counts);
        next_realloc =
            next_realloc + cfg.reallocation_period <= cfg.duration
                ? next_realloc + cfg.reallocation_period
                : inf;
      }
    }
  }

  for (const auto& sh : shards) sh->end_run();

  // Harvest. Tasks merge into the single queue's id order: t_arrive is
  // nondecreasing within a shard, and same-instant arrivals across
  // devices (periodic fleets) executed in device order there too.
  std::vector<Simulation::TaskRecord> tasks;
  for (const auto& sh : shards) {
    const auto& t = sh->tasks();
    tasks.insert(tasks.end(), t.begin(), t.end());
  }
  std::stable_sort(tasks.begin(), tasks.end(),
                   [](const Simulation::TaskRecord& a,
                      const Simulation::TaskRecord& b) {
                     if (a.t_arrive != b.t_arrive)
                       return a.t_arrive < b.t_arrive;
                     return a.device < b.device;
                   });

  Simulation::Aggregates agg;
  agg.resize(n);
  for (std::size_t s = 0; s < S; ++s) shards[s]->accumulate(agg, s == 0);
  // Replay the slot-decision stream in (epoch, device) order so the FP
  // accumulation of x_sum matches the single-queue loop bit for bit.
  const std::size_t epochs = shards.front()->x_log().size();
  for (std::size_t e = 0; e < epochs; ++e)
    for (const auto& sh : shards)
      for (const double x : sh->x_log()[e]) {
        agg.x_sum += x;
        ++agg.x_count;
      }

  SimResult out = Simulation::finalize_impl(cfg, tasks, agg);
  for (const auto& sh : shards) out.events_executed += sh->executed_events();

  if (cfg.obs.enabled()) {
    // Counters sum exactly across shards; the coordinator's observer
    // absorbs the per-shard snapshots in shard order and exports once.
    std::vector<std::string> device_classes;
    device_classes.reserve(n);
    for (const auto& spec : cfg.devices)
      device_classes.push_back(spec.device_class);
    RecordingObserver merged(cfg.obs, n, std::move(device_classes));
    for (const auto& sh : shards)
      merged.registry().absorb(sh->obs_snapshot());
    if (engine) engine->publish_metrics(merged.registry(), engine_baseline);
    out.metrics = merged.registry().snapshot();
    merged.export_outputs();
  }
  return out;
}

}  // namespace

SimResult run_scenario(const ScenarioConfig& config) {
  if (config.shards.enabled() && config.devices.size() > 1)
    return run_scenario_sharded(config);
  Simulation sim(config);
  return sim.run();
}

}  // namespace leime::sim
