// Observability hooks for the discrete-event simulator.
//
// The simulator carries an optional Observer pointer and calls it at task
// lifecycle transitions (generated, phase begin/end/abort, complete), at
// each per-device slot decision (with the Lyapunov telemetry of eqs. 10-20)
// and at fault events. When no observer is attached every hook site costs a
// single branch on a null pointer; no hook consumes RNG, schedules events
// or otherwise perturbs the run, so a disabled run is bit-identical to a
// build without the layer (the golden-JSONL contract, DESIGN.md §8).
//
// RecordingObserver is the standard implementation: it composes the three
// obs pillars — a metrics registry, a chrome-trace span buffer with a
// deterministic 1-in-N task sampler, and a per-slot time-series sink — and
// can export each to a file at the end of the run.
#pragma once

#include <array>
#include <cstdint>
#include <fstream>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "obs/attribution.h"
#include "obs/metrics.h"
#include "obs/provenance.h"
#include "obs/slo.h"
#include "obs/timeseries.h"
#include "obs/trace_buffer.h"

namespace leime::net {
class Fabric;
}

namespace leime::core {
struct DeviceSlotState;
}

namespace leime::sim {

/// Per-device, per-slot control-loop telemetry captured at decision time.
struct SlotTelemetry {
  double x = 0.0;        ///< chosen offload ratio x_i(t)
  double q = 0.0;        ///< Q_i(t), tasks (eq. 10 backlog)
  double h = 0.0;        ///< H_i(t), tasks (eq. 11 backlog)
  double drift = 0.0;    ///< Q·(A−b) + H·(D−c) at the chosen x (eq. 19)
  double penalty = 0.0;  ///< V·Y_i(t) at the chosen x (eq. 19)
  bool edge_up = true;
  bool link_up = true;
  double edge_share_flops = 0.0;  ///< p_i·F^e currently allocated
  /// Eq. 4-9 component latencies the decision implies for the device's next
  /// task (policy/prediction.h); joined with the realized waterfall at
  /// completion for calibration. Invalid when the simulator runs without an
  /// observer (the capture is skipped on the zero-overhead path).
  obs::PredictedComponents pred;
  /// The full decision input, valid only for the duration of the
  /// on_slot_decision call (it points at the simulator's scratch state).
  /// Lets provenance re-evaluate the eq. 19 objective at other x values
  /// without the simulator paying for it when provenance is off. Null when
  /// the caller has no state to share.
  const core::DeviceSlotState* state = nullptr;
  /// The decision came out of a batched eq. 20 fleet update (the ratio may
  /// have been reused from a bit-identical peer state).
  bool batched = false;
};

/// Hook interface. All methods have empty defaults so implementations
/// override only what they record. Times are simulated seconds.
class Observer {
 public:
  virtual ~Observer() = default;

  virtual void on_task_generated(std::uint64_t /*task*/, int /*device*/,
                                 double /*t*/, int /*block*/,
                                 bool /*offloaded*/) {}
  /// A task entered a phase on a resource. `t_queued` is when it was
  /// enqueued; `exec_start` is when the resource actually starts it
  /// (== t_queued for links, max(now, busy_until) for processors).
  virtual void on_phase_begin(std::uint64_t /*task*/, int /*device*/,
                              std::string_view /*phase*/,
                              std::string_view /*track*/, double /*t_queued*/,
                              double /*exec_start*/, int /*attempt*/) {}
  /// The open phase of `task` finished normally at `t`.
  virtual void on_phase_end(std::uint64_t /*task*/, double /*t*/) {}
  /// The open phase of `task` (if any) was abandoned at `t` — crash
  /// failover, timeout retry. Must tolerate tasks with no open phase.
  virtual void on_phase_abort(std::uint64_t /*task*/, double /*t*/,
                              std::string_view /*outcome*/) {}
  virtual void on_task_complete(std::uint64_t /*task*/, int /*device*/,
                                double /*t_arrive*/, double /*t_complete*/,
                                int /*block*/, int /*retries*/,
                                bool /*counted*/) {}
  /// The task became terminal-pending (edge never returns).
  virtual void on_task_parked(std::uint64_t /*task*/, int /*device*/,
                              double /*t*/) {}
  /// A controller decision was taken for `device` at slot time `t`.
  virtual void on_slot_decision(int /*device*/, double /*t*/,
                                const SlotTelemetry& /*telemetry*/) {}
  /// A fault-layer event: "edge_crash", "edge_restart", "churn_leave",
  /// "churn_join", "failover", "task_timeout", "local_fallback",
  /// "edge_refused". `device` is -1 for fleet-wide events.
  virtual void on_fault(std::string_view /*kind*/, int /*device*/,
                        double /*t*/) {}
  /// Topology mode only: one fabric hop of a task's flow completed. The
  /// span [t_queued, t_end] sat on router port `port` ("dev3_ap0",
  /// "ap0_edge0", ...); exec_start splits it into wait and serialization.
  /// Stale-attempt hops are filtered by the simulator before this fires.
  virtual void on_net_hop(std::uint64_t /*task*/, std::string_view /*port*/,
                          double /*t_queued*/, double /*exec_start*/,
                          double /*t_end*/) {}
  /// Topology mode only: the fabric's final state, fired once right before
  /// on_run_end so implementations can export per-port counters.
  virtual void on_net_fabric(const net::Fabric& /*fabric*/, double /*t*/) {}
  /// The drain finished at `t` (last hook of a run).
  virtual void on_run_end(double /*t*/) {}
};

/// What to record and where to write it. All off by default — the default
/// ScenarioConfig keeps the simulator on the zero-overhead path.
struct ObsConfig {
  bool metrics = false;           ///< collect the metrics registry
  std::uint64_t trace_sample = 0; ///< trace 1-in-N tasks (0 = off)
  bool timeseries = false;        ///< collect per-slot samples in memory
  bool attribution = false;       ///< per-task latency waterfalls (§13)
  /// Keep every assembled TaskWaterfall in memory (implied by
  /// attribution_out / calibration_out; set directly by embedders such as
  /// trace_viewer that read the rows through the accessor instead).
  bool keep_waterfalls = false;

  /// Output files, written at the end of the run. A non-empty path
  /// implicitly enables the corresponding pillar (trace_out defaults the
  /// sampler to 1-in-1 when trace_sample is 0).
  std::string metrics_out;     ///< Prometheus text exposition
  std::string metrics_jsonl;   ///< one JSON object per metric
  std::string trace_out;       ///< chrome://tracing JSON
  std::string timeseries_out;  ///< per-slot CSV
  std::string attribution_out; ///< per-task waterfall JSONL
  std::string calibration_out; ///< predicted-vs-actual CSV

  /// Sim-time SLO monitoring ([slo] INI block); enabled by its deadline.
  obs::SloConfig slo;

  /// Decision provenance + oracle regret ([provenance] INI block); enabled
  /// by its sample_n (or implicitly by an output path).
  obs::ProvenanceConfig provenance;

  bool metrics_enabled() const {
    return metrics || !metrics_out.empty() || !metrics_jsonl.empty();
  }
  std::uint64_t effective_trace_sample() const {
    if (trace_sample > 0) return trace_sample;
    return trace_out.empty() ? 0 : 1;
  }
  bool timeseries_enabled() const {
    return timeseries || !timeseries_out.empty();
  }
  bool attribution_enabled() const {
    return attribution || keep_waterfalls || !attribution_out.empty() ||
           !calibration_out.empty();
  }
  bool provenance_enabled() const { return provenance.enabled(); }
  bool enabled() const {
    return metrics_enabled() || effective_trace_sample() > 0 ||
           timeseries_enabled() || attribution_enabled() || slo.enabled() ||
           provenance_enabled();
  }
};

/// The standard observer: metrics + task spans + slot time-series.
///
/// Not thread-safe and bound to a single run: when embedding one externally
/// via ScenarioConfig::observer, use a fresh instance per run and do not
/// share it across parallel runtime cells (each cell builds its own).
class RecordingObserver : public Observer {
 public:
  /// `device_classes` maps each device index to its class name (scenario
  /// [device] `class=` keys); an empty vector puts the whole fleet in
  /// "default". Classes partition the attribution and SLO aggregates.
  RecordingObserver(ObsConfig config, std::size_t num_devices,
                    std::vector<std::string> device_classes = {});

  void on_task_generated(std::uint64_t task, int device, double t, int block,
                         bool offloaded) override;
  void on_phase_begin(std::uint64_t task, int device, std::string_view phase,
                      std::string_view track, double t_queued,
                      double exec_start, int attempt) override;
  void on_phase_end(std::uint64_t task, double t) override;
  void on_phase_abort(std::uint64_t task, double t,
                      std::string_view outcome) override;
  void on_task_complete(std::uint64_t task, int device, double t_arrive,
                        double t_complete, int block, int retries,
                        bool counted) override;
  void on_task_parked(std::uint64_t task, int device, double t) override;
  void on_slot_decision(int device, double t,
                        const SlotTelemetry& telemetry) override;
  void on_fault(std::string_view kind, int device, double t) override;
  void on_net_hop(std::uint64_t task, std::string_view port, double t_queued,
                  double exec_start, double t_end) override;
  void on_net_fabric(const net::Fabric& fabric, double t) override;
  void on_run_end(double t) override;

  const obs::MetricsRegistry& registry() const { return registry_; }
  obs::MetricsRegistry& registry() { return registry_; }
  const obs::TraceBuffer& trace() const { return trace_; }
  const obs::MemoryTimeseriesSink& timeseries() const { return series_; }
  const ObsConfig& config() const { return cfg_; }

  /// Attribution aggregates (inactive struct when attribution is off).
  const obs::AttributionSummary& attribution_summary() const {
    return attr_summary_;
  }
  /// Per-task rows; populated only with keep_waterfalls / output paths.
  const std::vector<obs::TaskWaterfall>& waterfalls() const {
    return waterfalls_;
  }
  /// Sorted unique device-class names; TaskWaterfall::cls indexes this.
  const std::vector<std::string>& class_names() const { return class_names_; }
  /// The live SLO monitor, or nullptr when the [slo] block is absent.
  const obs::SloMonitor* slo_monitor() const { return slo_.get(); }
  /// Frozen SLO stats + alert stream (inactive struct when SLO is off).
  obs::SloSummary slo_summary() const;
  /// The flight recorder, or nullptr when [provenance] is off. Attach it
  /// to a policy::Engine (attach_provenance) to capture exit-setting
  /// decisions alongside the offload decisions this observer records.
  obs::ProvenanceRecorder* provenance() { return prov_.get(); }
  const obs::ProvenanceRecorder* provenance() const { return prov_.get(); }
  /// Frozen provenance stats (inactive struct when [provenance] is off).
  obs::ProvenanceSummary provenance_summary() const;

  /// Writes the configured output files (metrics_out/metrics_jsonl/
  /// trace_out/timeseries_out/attribution_out/calibration_out/alerts_out).
  /// Throws std::runtime_error on write failure.
  void export_outputs() const;

 private:
  struct OpenSpan {
    std::string phase;
    std::string track;
    double t_begin = 0.0;
    int device = -1;
    int attempt = 0;
  };

  void close_span(std::uint64_t task, double t, std::string_view outcome);
  std::size_t class_of(int device) const;

  ObsConfig cfg_;
  bool metrics_on_;
  bool series_on_;
  bool attr_on_;
  bool keep_rows_;
  obs::TaskSampler sampler_;
  obs::MetricsRegistry registry_;

  // Hot-path handles into registry_ (stable references; null when metrics
  // are off). Lookups by name would re-register and must repeat the
  // geometry, so the constructor resolves each instrument once.
  obs::Counter* c_generated_ = nullptr;
  obs::Counter* c_completed_ = nullptr;
  obs::Counter* c_offloaded_ = nullptr;
  obs::Counter* c_parked_ = nullptr;
  obs::Counter* c_failovers_ = nullptr;
  obs::Counter* c_retries_ = nullptr;
  obs::Counter* c_local_fallbacks_ = nullptr;
  obs::Counter* c_edge_crashes_ = nullptr;
  obs::Counter* c_churn_ = nullptr;
  obs::Counter* c_decisions_ = nullptr;
  obs::Histogram* h_tct_ = nullptr;
  obs::Histogram* h_q_ = nullptr;
  obs::Histogram* h_h_ = nullptr;
  obs::Histogram* h_x_ = nullptr;
  obs::Histogram* h_penalty_ = nullptr;
  obs::Gauge* g_edge_up_ = nullptr;
  obs::Gauge* g_absent_ = nullptr;
  obs::Gauge* g_sim_time_ = nullptr;
  // Attribution instruments (registered only when attribution + metrics
  // are both on, so the disabled metric schema stays byte-identical).
  obs::Counter* c_attr_tasks_ = nullptr;
  obs::Counter* c_attr_incomplete_ = nullptr;
  obs::Counter* c_attr_calibrated_ = nullptr;
  obs::Histogram* h_attr_stall_ = nullptr;
  std::array<obs::Histogram*, obs::kAttrStageCount> h_attr_wait_{};
  std::array<obs::Histogram*, obs::kAttrStageCount> h_attr_service_{};
  std::array<obs::Histogram*, obs::kCalibComponentCount> h_calib_over_{};
  std::array<obs::Histogram*, obs::kCalibComponentCount> h_calib_under_{};
  // SLO instruments (registered only when the [slo] block + metrics are on).
  obs::Counter* c_slo_completions_ = nullptr;
  obs::Counter* c_slo_misses_ = nullptr;
  obs::Counter* c_slo_fired_ = nullptr;
  obs::Counter* c_slo_cleared_ = nullptr;
  obs::Gauge* g_slo_burn_ = nullptr;
  obs::Histogram* h_slo_overshoot_ = nullptr;
  // Provenance instruments (registered only when [provenance] + metrics
  // are on); filled from the recorder totals at run end.
  obs::Counter* c_prov_decisions_ = nullptr;
  obs::Counter* c_prov_sampled_ = nullptr;
  obs::Counter* c_prov_oracle_ = nullptr;
  obs::Counter* c_prov_evictions_ = nullptr;
  obs::Counter* c_prov_dumps_ = nullptr;
  std::array<obs::Histogram*, obs::kDecisionKindCount> h_regret_{};
  obs::TraceBuffer trace_;
  obs::MemoryTimeseriesSink series_;
  std::map<std::uint64_t, OpenSpan> open_;

  /// Arrivals per device since its last slot sample (for eqs. 10-11:
  /// the kept/offloaded split drives the queue recursions).
  std::vector<std::uint64_t> kept_since_slot_;
  std::vector<std::uint64_t> offloaded_since_slot_;

  // Attribution state.
  std::vector<std::string> class_names_;   ///< sorted unique
  std::vector<std::size_t> device_class_;  ///< device -> class index
  std::vector<obs::PredictedComponents> last_pred_;  ///< per device
  obs::LatencyLedger ledger_;
  obs::AttributionSummary attr_summary_;
  std::vector<obs::TaskWaterfall> waterfalls_;
  std::unique_ptr<obs::SloMonitor> slo_;
  // Decision provenance (DESIGN.md §14). The dump stream opens lazily on
  // the first SLO fire (so a clean run leaves no file) and is closed +
  // fsynced in on_run_end.
  std::unique_ptr<obs::ProvenanceRecorder> prov_;
  std::ofstream dump_stream_;
  bool dump_opened_ = false;
};

}  // namespace leime::sim
