// Multi-device slotted model: the paper's P1 in full — N devices share one
// edge through the eq. 27 docker allocation; each device runs its own
// per-slot drift-plus-penalty decision (the decentralized property of
// §III-D4: no coordination beyond the static shares).
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "core/lyapunov.h"
#include "core/offload_policy.h"
#include "workload/arrival.h"

namespace leime::sim {

struct FleetDeviceSpec {
  double flops = 0.0;      ///< F_i^d
  double bandwidth = 0.0;  ///< B_i^e bytes/s
  double latency = 0.0;    ///< L_i^e seconds
  double mean_tasks = 0.0; ///< k_i, expected tasks per slot (Poisson)
};

struct SlottedFleetConfig {
  core::MeDnnPartition partition;
  std::vector<FleetDeviceSpec> devices;
  double edge_flops = 0.0;  ///< F^e, split by eq. 27
  core::LyapunovConfig lyapunov;
  int num_slots = 500;
  std::uint64_t seed = 7;
};

struct SlottedFleetResult {
  double mean_tct = 0.0;  ///< fleet-wide Σ Y_i / Σ tasks
  std::vector<double> per_device_tct;
  std::vector<double> final_device_queue;
  std::vector<double> final_edge_queue;
  std::vector<double> mean_offload_ratio;
  std::vector<double> edge_shares;  ///< the p_i actually used
  std::size_t total_tasks = 0;
};

/// Runs the fleet with every device deciding via `policy` each slot.
SlottedFleetResult run_slotted_fleet(const SlottedFleetConfig& config,
                                     const core::OffloadPolicy& policy);

}  // namespace leime::sim
