#include "sim/event_queue.h"

#include <stdexcept>

namespace leime::sim {

void EventQueue::schedule(double when, Handler fn) {
  if (when < now_)
    throw std::invalid_argument("EventQueue: scheduling into the past");
  heap_.push({when, next_seq_++, std::move(fn)});
}

bool EventQueue::run_one() {
  if (heap_.empty()) return false;
  // priority_queue::top is const; move out via const_cast is UB-adjacent,
  // so copy the handler (closures here are small).
  Event ev = heap_.top();
  heap_.pop();
  now_ = ev.when;
  ++executed_;
  ev.fn();
  return true;
}

void EventQueue::run_until(double until) {
  while (!heap_.empty() && heap_.top().when <= until) run_one();
  if (now_ < until) now_ = until;
}

void EventQueue::run_all() {
  while (run_one()) {
  }
}

}  // namespace leime::sim
