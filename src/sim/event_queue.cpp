#include "sim/event_queue.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <utility>

#include "prof/profiler.h"

namespace leime::sim {

const char* to_string(EventKind kind) {
  switch (kind) {
    case EventKind::kGeneric: return "generic";
    case EventKind::kSlotTick: return "slot_tick";
    case EventKind::kReallocate: return "reallocate";
    case EventKind::kArrival: return "arrival";
    case EventKind::kComputeDone: return "compute_done";
    case EventKind::kTransferDone: return "transfer_done";
    case EventKind::kCloudService: return "cloud_service";
    case EventKind::kFailoverProbe: return "failover_probe";
    case EventKind::kTaskTimeout: return "task_timeout";
    case EventKind::kRetryLaunch: return "retry_launch";
    case EventKind::kFaultWindow: return "fault_window";
    case EventKind::kChurn: return "churn";
  }
  return "unknown";
}

std::uint32_t EventQueue::acquire_slot() {
  if (free_head_ != kNoFreeSlot) {
    const std::uint32_t idx = free_head_;
    free_head_ = slots_[idx].next_free;
    return idx;
  }
  slots_.emplace_back();
  return static_cast<std::uint32_t>(slots_.size() - 1);
}

void EventQueue::release_slot(std::uint32_t idx) {
  Slot& s = slots_[idx];
  s.fn.reset();
  s.next_free = free_head_;
  free_head_ = idx;
}

void EventQueue::schedule(double when, EventKind kind, Handler fn) {
  // NaN would satisfy neither `when < now_` nor any heap comparison and
  // silently corrupt the ordering invariant; reject all non-finite times.
  if (!std::isfinite(when))
    throw std::invalid_argument(
        "EventQueue: event time must be finite (got NaN or infinity)");
  if (when < now_)
    throw std::invalid_argument("EventQueue: scheduling into the past");
  const std::uint32_t idx = acquire_slot();
  {
    Slot& s = slots_[idx];
    s.fn = std::move(fn);
    s.kind = kind;
  }
  try {
    heap_.push_back({when, next_seq_, idx});
  } catch (...) {
    release_slot(idx);
    throw;
  }
  ++next_seq_;
  sift_up(heap_.size() - 1);
}

void EventQueue::sift_up(std::size_t i) {
  const HeapEntry item = heap_[i];
  while (i > 0) {
    const std::size_t parent = (i - 1) / 4;
    if (!earlier(item, heap_[parent])) break;
    heap_[i] = heap_[parent];
    i = parent;
  }
  heap_[i] = item;
}

void EventQueue::sift_down(std::size_t i) {
  const std::size_t n = heap_.size();
  const HeapEntry item = heap_[i];
  for (;;) {
    const std::size_t first = 4 * i + 1;
    if (first >= n) break;
    std::size_t best = first;
    const std::size_t end = std::min(first + 4, n);
    for (std::size_t c = first + 1; c < end; ++c)
      if (earlier(heap_[c], heap_[best])) best = c;
    if (!earlier(heap_[best], item)) break;
    heap_[i] = heap_[best];
    i = best;
  }
  heap_[i] = item;
}

bool EventQueue::run_one() {
  if (heap_.empty()) return false;
  const HeapEntry top = heap_.front();
  // Move the last entry into the root and restore the heap; the handler
  // itself never moves — only 24-byte entries do.
  heap_.front() = heap_.back();
  heap_.pop_back();
  if (!heap_.empty()) sift_down(0);
  // Move the handler out of its pool slot and recycle the slot *before*
  // dispatch, so a handler that schedules new events reuses it.
  Slot& s = slots_[top.slot];
  Handler fn = std::move(s.fn);
  const EventKind kind = s.kind;
  release_slot(top.slot);
  now_ = top.when;
  ++executed_;
  ++executed_by_kind_[static_cast<std::size_t>(kind)];
  fn();
  return true;
}

// Profiler sections cover 64-event batches, not single events: a section's
// fixed cost (two clock reads) is comparable to one DES event, so per-event
// sections would leave ~5% of the event-loop wall time as unexplained gaps.
// A batch section amortises that cost to noise while still billing the
// queue machinery (heap pop, clock advance, handler dispatch) to the
// queue instead of to the caller's unexplained self time.
void EventQueue::run_until(double until) {
  while (!heap_.empty() && heap_.front().when <= until) {
    LEIME_PROF_SCOPE("leime.sim.queue.batch_until");
    for (int i = 0;
         i < 64 && !heap_.empty() && heap_.front().when <= until; ++i)
      run_one();
  }
  if (now_ < until) now_ = until;
}

void EventQueue::run_all() {
  while (!heap_.empty()) {
    LEIME_PROF_SCOPE("leime.sim.queue.batch");
    for (int i = 0; i < 64 && run_one(); ++i) {
    }
  }
}

}  // namespace leime::sim
