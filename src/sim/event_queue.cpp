#include "sim/event_queue.h"

#include <stdexcept>

#include "prof/profiler.h"

namespace leime::sim {

void EventQueue::schedule(double when, Handler fn) {
  if (when < now_)
    throw std::invalid_argument("EventQueue: scheduling into the past");
  heap_.push({when, next_seq_++, std::move(fn)});
}

bool EventQueue::run_one() {
  if (heap_.empty()) return false;
  // priority_queue::top is const; move out via const_cast is UB-adjacent,
  // so copy the handler (closures here are small).
  Event ev = heap_.top();
  heap_.pop();
  now_ = ev.when;
  ++executed_;
  ev.fn();
  return true;
}

// Profiler sections cover 64-event batches, not single events: a section's
// fixed cost (two clock reads) is comparable to one DES event, so per-event
// sections would leave ~5% of the event-loop wall time as unexplained gaps.
// A batch section amortises that cost to noise while still billing the
// queue machinery (heap pop, clock advance, handler dispatch) to the
// queue instead of to the caller's unexplained self time.
void EventQueue::run_until(double until) {
  while (!heap_.empty() && heap_.top().when <= until) {
    LEIME_PROF_SCOPE("leime.sim.queue.batch_until");
    for (int i = 0; i < 64 && !heap_.empty() && heap_.top().when <= until;
         ++i)
      run_one();
  }
  if (now_ < until) now_ = until;
}

void EventQueue::run_all() {
  while (!heap_.empty()) {
    LEIME_PROF_SCOPE("leime.sim.queue.batch");
    for (int i = 0; i < 64 && run_one(); ++i) {
    }
  }
}

}  // namespace leime::sim
