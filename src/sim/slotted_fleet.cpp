#include "sim/slotted_fleet.h"

#include <algorithm>
#include <stdexcept>

#include "core/resource_alloc.h"
#include "util/rng.h"

namespace leime::sim {

SlottedFleetResult run_slotted_fleet(const SlottedFleetConfig& cfg,
                                     const core::OffloadPolicy& policy) {
  if (cfg.devices.empty())
    throw std::invalid_argument("SlottedFleetConfig: no devices");
  if (cfg.edge_flops <= 0.0)
    throw std::invalid_argument("SlottedFleetConfig: edge_flops must be > 0");
  if (cfg.num_slots <= 0)
    throw std::invalid_argument("SlottedFleetConfig: num_slots must be > 0");
  for (const auto& d : cfg.devices) {
    if (d.flops <= 0.0 || d.bandwidth <= 0.0 || d.latency < 0.0 ||
        d.mean_tasks < 0.0)
      throw std::invalid_argument("SlottedFleetConfig: bad device spec");
  }

  const auto n = cfg.devices.size();
  // Static eq. 27 shares from the expected loads.
  std::vector<double> k, fd;
  for (const auto& d : cfg.devices) {
    k.push_back(std::max(1e-6, d.mean_tasks));
    fd.push_back(d.flops);
  }
  const auto shares = core::kkt_edge_allocation(
      k, fd, cfg.edge_flops, core::fleet_p_min(k.size()));

  util::Rng rng(cfg.seed);
  std::vector<core::DeviceSlotState> states(n);
  std::vector<workload::PoissonSlotArrivals> arrivals;
  arrivals.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    auto& s = states[i];
    s.partition = &cfg.partition;
    s.device_flops = cfg.devices[i].flops;
    s.edge_share_flops = shares[i] * cfg.edge_flops;
    s.bandwidth = cfg.devices[i].bandwidth;
    s.latency = cfg.devices[i].latency;
    s.config = cfg.lyapunov;
    arrivals.emplace_back(cfg.devices[i].mean_tasks);
  }

  SlottedFleetResult out;
  out.edge_shares = shares;
  out.per_device_tct.assign(n, 0.0);
  out.mean_offload_ratio.assign(n, 0.0);
  std::vector<std::size_t> per_device_tasks(n, 0);
  double cost_sum = 0.0;

  for (int t = 0; t < cfg.num_slots; ++t) {
    for (std::size_t i = 0; i < n; ++i) {
      auto& s = states[i];
      const int m = arrivals[i].tasks_in_slot(rng);
      s.arrivals = m;
      const double x = policy.decide(s);
      out.mean_offload_ratio[i] += x;

      const double y = core::slot_cost(s, x);
      cost_sum += y;
      out.per_device_tct[i] += y;
      per_device_tasks[i] += static_cast<std::size_t>(m);
      out.total_tasks += static_cast<std::size_t>(m);

      const double a = (1.0 - x) * m;
      const double d = x * m;
      s.queue_device =
          std::max(s.queue_device - core::device_service_tasks(s), 0.0) + a;
      s.queue_edge =
          std::max(s.queue_edge - core::edge_service_tasks(s, x), 0.0) + d;
    }
  }

  for (std::size_t i = 0; i < n; ++i) {
    out.per_device_tct[i] =
        per_device_tasks[i]
            ? out.per_device_tct[i] / static_cast<double>(per_device_tasks[i])
            : 0.0;
    out.mean_offload_ratio[i] /= static_cast<double>(cfg.num_slots);
    out.final_device_queue.push_back(states[i].queue_device);
    out.final_edge_queue.push_back(states[i].queue_edge);
  }
  out.mean_tct = out.total_tasks
                     ? cost_sum / static_cast<double>(out.total_tasks)
                     : 0.0;
  return out;
}

}  // namespace leime::sim
