// Replication utilities: run a scenario across seeds and report
// mean/stddev, so benches and tests can quote confidence instead of a
// single draw.
//
// Since the runtime subsystem landed this is a thin aggregation layer over
// runtime::Executor (the implementation lives in src/runtime/replicate.cpp
// and links from leime_runtime): replications become a one-axis-free
// ExperimentPlan and can run on a thread pool, with per-run seeds derived
// via util::Rng::derive_seed instead of the collision-prone base_seed + i.
#pragma once

#include <cstdint>
#include <vector>

#include "sim/scenario.h"

namespace leime::sim {

struct ReplicatedResult {
  double mean_tct = 0.0;    ///< mean of per-run mean TCTs
  double stddev_tct = 0.0;  ///< stddev of per-run mean TCTs
  double mean_p95 = 0.0;
  std::size_t runs = 0;
  std::vector<double> per_run_mean;       ///< one entry per replication
  std::vector<std::uint64_t> per_run_seed;  ///< the seed behind each entry
};

struct ReplicateOptions {
  /// Executor worker threads (replications run concurrently; each DES run
  /// stays single-threaded, so results are identical for any value).
  int threads = 1;

  /// Re-enables the pre-runtime seeding convention seed = base_seed + i,
  /// for replaying seed-numbered results from existing benches. Off, run i
  /// is seeded with util::Rng::derive_seed(base_seed, i).
  bool legacy_seeds = false;
};

/// Runs the scenario `replications` times with independent seeds derived
/// from base_seed and aggregates. replications must be >= 1. Deterministic
/// for fixed (config, replications, base_seed, legacy_seeds) regardless of
/// opts.threads.
ReplicatedResult run_replicated(const ScenarioConfig& config,
                                int replications,
                                std::uint64_t base_seed = 1000,
                                const ReplicateOptions& opts = {});

}  // namespace leime::sim
