// Replication utilities: run a scenario across seeds and report
// mean/stddev, so benches and tests can quote confidence instead of a
// single draw.
#pragma once

#include <cstdint>
#include <vector>

#include "sim/scenario.h"

namespace leime::sim {

struct ReplicatedResult {
  double mean_tct = 0.0;    ///< mean of per-run mean TCTs
  double stddev_tct = 0.0;  ///< stddev of per-run mean TCTs
  double mean_p95 = 0.0;
  std::size_t runs = 0;
  std::vector<double> per_run_mean;  ///< one entry per seed
};

/// Runs the scenario `replications` times with seeds base_seed, base_seed+1,
/// ... and aggregates. replications must be >= 1.
ReplicatedResult run_replicated(const ScenarioConfig& config,
                                int replications,
                                std::uint64_t base_seed = 1000);

}  // namespace leime::sim
