// INI-file scenario descriptions (the format consumed by
// examples/scenario_runner and documented by `scenario_runner --template`).
//
// Sections:
//   [scenario]  model / policy / duration / warmup / seed / replications /
//               reallocation_period / shared_uplink_mbps / result_bytes
//   [edge]      gflops / cloud_tflops / cloud_mbps / cloud_latency_ms
//   [device]    (repeatable) gflops / rate / uplink_mbps /
//               uplink_latency_ms / difficulty / class (observability
//               grouping label, lowercase [a-z0-9_]+)
//   [runtime]   (optional) threads / seed_mode (split | legacy) / jsonl /
//               trace / progress — how the runtime executor runs the
//               replications and where structured telemetry goes
//   [faults]    (optional) link_outage_windows / link_outage_rate /
//               edge_down_windows / edge_crash_rate / churn /
//               detection_timeout_s / task_timeout_s / max_retries / ... —
//               fault injection + graceful degradation (sim/faults.h)
//   [observability]  (optional) metrics / trace_sample / timeseries /
//               metrics_out / metrics_jsonl / trace_out / timeseries_out /
//               attribution / attribution_out / calibration_out —
//               the in-simulation observability layer (sim/observer.h).
//               Omitting the section keeps the zero-overhead path.
//   [slo]       (optional) deadline_ms / window_s / target_miss_rate /
//               burn_threshold / min_window_tasks / alerts_out — the
//               deterministic sim-time SLO monitor (obs/slo.h). Omitting
//               the section (or deadline_ms = 0) disables it.
//   [provenance] (optional) sample_n / ring_capacity / oracle_sample_n /
//               decisions_out / dump_out — decision provenance, oracle
//               regret and the SLO-triggered flight recorder
//               (obs/provenance.h). Omitting the section keeps the
//               zero-overhead path.
//   [topology]  (optional) aps / ap_mbps / ap_latency_ms / device_map /
//               queue_limit_kb — the routed multi-hop network fabric
//               (net/topology.h). Omitting the section (or aps = 0) keeps
//               the flat point-to-point links.
//   [policy]    (optional) memo_cache / warm_start / batch_eq20 /
//               cache_capacity / quant_per_octave — the policy core's
//               opt-in fast paths (policy/engine.h). Omitting the section
//               keeps the reference algorithms and byte-identical output.
//   [shards]    (optional) shards / threads / window_ms — conservative-
//               time-window sharded execution of one simulation
//               (sim/shard.h, DESIGN.md §15). Omitting the section (or
//               shards = 1) keeps the single-queue path; results are
//               byte-identical either way.
#pragma once

#include <string>

#include "models/profile.h"
#include "sim/scenario.h"
#include "util/ini.h"

namespace leime::sim {

/// A parsed scenario file: the resolved model plus the simulator config
/// (partition designed via branch-and-bound on the fleet averages).
struct IniScenario {
  models::ModelProfile profile;
  ScenarioConfig config;
  core::ExitCombo designed_exits;
  double expected_tct = 0.0;  ///< the exit setting's cost estimate
  int replications = 1;

  // [runtime] knobs (plain values here so leime_sim does not depend on
  // leime_runtime; the caller maps them onto the executor).
  int threads = 1;            ///< executor workers for replications
  bool legacy_seeds = false;  ///< seed_mode = legacy: seeds base_seed + i
  std::string jsonl_path;     ///< per-run JSONL telemetry, "" = off
  std::string trace_path;     ///< chrome://tracing timeline, "" = off
  bool progress = false;      ///< live cell counter on stderr
};

/// Resolves a model name: one of the zoo shorthands (vgg16 | resnet34 |
/// inception | squeezenet) or a path to a leime-profile text file.
models::ModelProfile resolve_model_name(const std::string& name);

/// Builds the full scenario from parsed INI data. Throws
/// std::invalid_argument on missing sections/devices or bad values.
IniScenario load_scenario(const util::IniFile& ini);

/// Parses an [observability] section (throws on unknown keys).
ObsConfig parse_observability_section(const util::IniSection& section);

/// Parses an [slo] section (throws on unknown keys or out-of-range values
/// via obs::SloConfig::validate).
obs::SloConfig parse_slo_section(const util::IniSection& section);

/// Parses a [provenance] section (throws on unknown keys or out-of-range
/// values via obs::ProvenanceConfig::validate).
obs::ProvenanceConfig parse_provenance_section(const util::IniSection& section);

/// Parses a [topology] section (throws on unknown keys; range validation
/// against the device count happens later via TopologyConfig::validate).
net::TopologyConfig parse_topology_section(const util::IniSection& section);

/// Parses a [policy] section (throws on unknown keys or out-of-range
/// values via policy::Config::validate).
policy::Config parse_policy_section(const util::IniSection& section);

/// Parses a [shards] section (throws on unknown keys or out-of-range
/// values via ShardOptions::validate).
ShardOptions parse_shards_section(const util::IniSection& section);

/// Applies command-line output-path overrides on top of an INI-derived
/// ObsConfig: a non-empty `metrics_out` / `trace_out` replaces the INI
/// value and implicitly enables the corresponding pillar (the precedence
/// scenario_runner documents: CLI > INI).
void apply_obs_overrides(ObsConfig& obs, const std::string& metrics_out,
                         const std::string& trace_out);

/// Convenience: parse + build from a file path.
IniScenario load_scenario_file(const std::string& path);

}  // namespace leime::sim
