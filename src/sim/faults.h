// Fault injection for the discrete-event simulator ("in the wild"
// robustness: §IV's COMCAST shaping only varies bandwidth/latency; real
// fleets also see link outages, edge-server crashes and device churn).
//
// A FaultPlan describes fault *sources* (scheduled windows plus stochastic
// rates) and the graceful-degradation knobs the runtime uses to survive
// them. Before a run starts, the plan is materialized into a FaultTimeline:
// every stochastic onset/duration is sampled up front from a dedicated Rng
// substream, so the whole fault schedule is a deterministic function of the
// scenario seed and link transfer times can be computed eagerly around the
// known down-windows. An empty plan injects nothing and leaves the
// simulation bit-identical to a fault-layer-free run.
//
// Fault semantics (implemented in sim/simulation.cpp):
//  * link outage   — the device's uplink stops serializing for the window;
//                    queued bytes are held, not lost, and drain on recovery;
//  * edge crash    — all edge shares lose their queued work; each resident
//                    task is failed back to its device after
//                    detection_timeout (block-1 work re-runs locally;
//                    block-2 work waits for the restart on an exponential
//                    probe schedule, or parks forever if the edge never
//                    returns);
//  * device churn  — a device leaves (stops generating tasks) and possibly
//                    rejoins later; each event re-runs the eq. 27 KKT edge
//                    allocation over the devices actually present.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "util/ini.h"
#include "util/rng.h"

namespace leime::sim {

/// One fault window [start, end). `device` scopes link outages (-1 = every
/// device); it is ignored for edge windows. An infinite end means the fault
/// never clears (edge windows only: "the edge never restarts").
struct FaultWindow {
  double start = 0.0;
  double end = 0.0;
  int device = -1;

  friend bool operator==(const FaultWindow&, const FaultWindow&) = default;
};

/// Uplink outages: scheduled windows and/or a Poisson process of onsets
/// (per device, `rate` onsets/s) with exponential durations.
struct LinkOutageConfig {
  std::vector<FaultWindow> windows;
  double rate = 0.0;
  double mean_duration = 2.0;

  friend bool operator==(const LinkOutageConfig&,
                         const LinkOutageConfig&) = default;
};

/// Edge-server crashes: scheduled down-windows and/or a Poisson crash
/// process with exponential downtimes. Windows may be open-ended.
struct EdgeCrashConfig {
  std::vector<FaultWindow> windows;
  double rate = 0.0;
  double mean_downtime = 5.0;

  friend bool operator==(const EdgeCrashConfig&,
                         const EdgeCrashConfig&) = default;
};

/// One device leaving the fleet at `leave` and rejoining at `rejoin`
/// (rejoin < 0: it never comes back).
struct ChurnEvent {
  int device = 0;
  double leave = 0.0;
  double rejoin = -1.0;

  friend bool operator==(const ChurnEvent&, const ChurnEvent&) = default;
};

struct ChurnConfig {
  std::vector<ChurnEvent> events;

  friend bool operator==(const ChurnConfig&, const ChurnConfig&) = default;
};

/// Graceful-degradation knobs (how the runtime reacts to faults).
struct DegradationConfig {
  /// Seconds until a dead edge is noticed and a resident task fails back.
  double detection_timeout = 0.5;
  /// When > 0, an offloaded task not yet deep in the pipeline is retried
  /// after this many seconds (bounded by max_retries, then it runs
  /// device-side). 0 disables timeouts.
  double task_timeout = 0.0;
  int max_retries = 2;
  /// Backoff before retry r is retry_backoff * 2^(r-1) seconds.
  double retry_backoff = 0.25;
  /// Base interval of the exponential probe schedule a failed-over task
  /// uses while waiting for the edge to return.
  double probe_period = 1.0;

  friend bool operator==(const DegradationConfig&,
                         const DegradationConfig&) = default;
};

/// The full fault description carried by sim::ScenarioConfig.
struct FaultPlan {
  LinkOutageConfig link;
  EdgeCrashConfig edge;
  ChurnConfig churn;
  DegradationConfig degradation;

  /// Access-point outages (topology mode only): scheduled windows during
  /// which one router's backhaul holds its queued bytes. The window's
  /// `device` field scopes the AP index (-1 = every AP); the AP count is
  /// only known to the simulation, which range-checks at build time.
  std::vector<FaultWindow> ap_windows;

  /// True when any fault source is configured (degradation knobs alone do
  /// not count: task_timeout engages independently).
  bool enabled() const;

  /// Throws std::invalid_argument with an actionable message on negative
  /// rates, inverted windows, out-of-range churn devices, etc.
  void validate(std::size_t num_devices) const;

  friend bool operator==(const FaultPlan&, const FaultPlan&) = default;
};

/// The plan with every stochastic draw resolved: per-device link
/// down-windows, edge down-windows (each sorted and disjoint) and the churn
/// schedule. Deterministic for a fixed (plan, num_devices, horizon, rng
/// seed).
struct FaultTimeline {
  std::vector<std::vector<FaultWindow>> link_down;  ///< per device
  std::vector<FaultWindow> edge_down;
  std::vector<ChurnEvent> churn;  ///< sorted by leave time
  /// AP outage windows, still scoped by the window's device field (= AP
  /// index, -1 = all); the simulation groups them per AP once it knows the
  /// topology. Scheduled-only: no stochastic AP source.
  std::vector<FaultWindow> ap_down;

  std::size_t link_outage_count() const;
  bool edge_up_at(double t) const;
  /// First time >= t at which the edge is up; +inf when it never returns.
  double next_edge_up(double t) const;
};

/// Sorts windows and merges overlapping/touching ones (device field is
/// ignored: call per lane).
std::vector<FaultWindow> merge_windows(std::vector<FaultWindow> windows);

/// True when t lies inside one of the (sorted, disjoint) windows.
bool down_at(const std::vector<FaultWindow>& windows, double t);

/// Samples all stochastic onsets/durations over [0, horizon) and merges
/// them with the scheduled windows. Draw order is fixed (link outages for
/// device 0..n-1, then edge crashes), so equal rng seeds give equal
/// timelines.
FaultTimeline materialize_faults(const FaultPlan& plan,
                                 std::size_t num_devices, double horizon,
                                 util::Rng& rng);

/// Parses a `[faults]` INI section (see docs/TUTORIAL.md for the key
/// reference). Unknown keys, negative rates and inverted windows throw
/// std::invalid_argument with the offending key named. Validation against
/// the device count happens later in FaultPlan::validate.
FaultPlan parse_faults_section(const util::IniSection& section);

/// Serializes a plan back to a `[faults]` section; parse_faults_section of
/// the result reproduces the plan exactly (round-trip contract).
std::string serialize_faults_ini(const FaultPlan& plan);

}  // namespace leime::sim
