// Deterministic discrete-event core.
//
// Events are (time, sequence, handler); ties on time break by insertion
// order, so a run is bit-reproducible for a fixed seed. Single-threaded by
// design — the edge scenarios here are small enough that determinism is
// worth far more than parallel speed.
//
// The hot path is allocation-free in steady state (DESIGN.md §10):
//   * handlers are util::InlineFn — fixed-capacity in-object storage sized
//     for the largest capture in simulation.cpp/resources.cpp and
//     static-asserted at every bind site, so no std::function mallocs;
//   * the ready set is an in-repo 4-ary min-heap over a flat vector of
//     16-byte-ish entries; popping *moves* the handler out (the old
//     std::priority_queue forced a copy because top() is const);
//   * handler storage lives in pooled slots recycled through an intrusive
//     free list, so after warmup a schedule/run cycle reuses memory
//     instead of allocating it.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <limits>
#include <vector>

#include "util/inline_fn.h"

namespace leime::sim {

/// Typed tags for the known event kinds. Purely observational: kinds never
/// influence ordering or dispatch (that stays (when, seq) + the handler),
/// they label events for per-kind executed() telemetry and debugging.
enum class EventKind : std::uint8_t {
  kGeneric = 0,    ///< untagged (tests, ad-hoc callers)
  kSlotTick,       ///< per-slot Lyapunov decision tick (eq. 16–20 cadence)
  kReallocate,     ///< periodic eq. 27 edge re-allocation
  kArrival,        ///< task arrival at a device
  kComputeDone,    ///< FifoProcessor job completion (device/edge/cloud)
  kTransferDone,   ///< Link delivery (uplink/downlink/backhaul)
  kCloudService,   ///< uncontended cloud service completion
  kFailoverProbe,  ///< crash detection timeout / edge re-probe
  kTaskTimeout,    ///< per-task watchdog expiry
  kRetryLaunch,    ///< backoff redispatch after a timeout
  kFaultWindow,    ///< edge crash/restart window boundary
  kChurn,          ///< device leave/rejoin
};
inline constexpr std::size_t kNumEventKinds = 12;

/// Stable lowercase name for logs and tests.
const char* to_string(EventKind kind);

class EventQueue {
 public:
  /// Inline handler storage, in bytes. Sized for the largest schedule-site
  /// capture: Link::transfer's completion-forwarding lambda (this + a
  /// 56-byte inline Completion + a double, 80 bytes with padding) plus
  /// headroom. Every bind static-asserts against this, so growing a
  /// capture past it is a compile error, never a hidden allocation.
  static constexpr std::size_t kHandlerCapacity = 96;
  using Handler = util::InlineFn<void(), kHandlerCapacity>;

  /// Schedules `fn` at absolute time `when` (finite, >= now()).
  void schedule(double when, Handler fn) {
    schedule(when, EventKind::kGeneric, std::move(fn));
  }
  void schedule(double when, EventKind kind, Handler fn);

  /// Schedules `fn` `delay` seconds from now (delay >= 0).
  void schedule_in(double delay, Handler fn) {
    schedule(now_ + delay, EventKind::kGeneric, std::move(fn));
  }
  void schedule_in(double delay, EventKind kind, Handler fn) {
    schedule(now_ + delay, kind, std::move(fn));
  }

  /// Pops and runs the earliest event; returns false when empty.
  bool run_one();

  /// Runs events until the queue is empty or the next event is after
  /// `until`; leaves later events queued and advances now() to `until`.
  void run_until(double until);

  /// Drains the queue completely.
  void run_all();

  double now() const { return now_; }

  /// Timestamp of the earliest queued event without popping it, or
  /// +infinity when the queue is empty. Drives the sharded runner's
  /// lookahead-horizon computation (how far a shard may safely advance
  /// before the next barrier) and lets idle windows be skipped outright.
  double peek_time() const {
    return heap_.empty() ? std::numeric_limits<double>::infinity()
                         : heap_.front().when;
  }

  bool empty() const { return heap_.empty(); }
  std::size_t pending() const { return heap_.size(); }
  std::uint64_t executed() const { return executed_; }
  std::uint64_t executed(EventKind kind) const {
    return executed_by_kind_[static_cast<std::size_t>(kind)];
  }

  /// High-water mark of pooled handler slots (monotone; steady state keeps
  /// it flat — the zero-allocation test pins this).
  std::size_t pool_capacity() const { return slots_.size(); }

 private:
  /// Heap entries carry only the ordering key + a slot index; the (big)
  /// handler stays put in the pool while sift operations shuffle entries.
  struct HeapEntry {
    double when;
    std::uint64_t seq;
    std::uint32_t slot;
  };
  struct Slot {
    Handler fn;
    EventKind kind = EventKind::kGeneric;
    std::uint32_t next_free = kNoFreeSlot;
  };
  static constexpr std::uint32_t kNoFreeSlot = 0xffffffffu;

  static bool earlier(const HeapEntry& a, const HeapEntry& b) {
    if (a.when != b.when) return a.when < b.when;
    return a.seq < b.seq;
  }
  void sift_up(std::size_t i);
  void sift_down(std::size_t i);
  std::uint32_t acquire_slot();
  void release_slot(std::uint32_t idx);

  std::vector<HeapEntry> heap_;  ///< 4-ary min-heap, root at 0
  std::vector<Slot> slots_;      ///< handler pool, grows only at high water
  std::uint32_t free_head_ = kNoFreeSlot;
  double now_ = 0.0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t executed_ = 0;
  std::array<std::uint64_t, kNumEventKinds> executed_by_kind_{};
};

}  // namespace leime::sim
