// Deterministic discrete-event core.
//
// Events are (time, sequence, closure); ties on time break by insertion
// order, so a run is bit-reproducible for a fixed seed. Single-threaded by
// design — the edge scenarios here are small enough that determinism is
// worth far more than parallel speed.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

namespace leime::sim {

class EventQueue {
 public:
  using Handler = std::function<void()>;

  /// Schedules `fn` at absolute time `when` (must be >= now()).
  void schedule(double when, Handler fn);

  /// Schedules `fn` `delay` seconds from now (delay >= 0).
  void schedule_in(double delay, Handler fn) { schedule(now_ + delay, std::move(fn)); }

  /// Pops and runs the earliest event; returns false when empty.
  bool run_one();

  /// Runs events until the queue is empty or the next event is after
  /// `until`; leaves later events queued and advances now() to `until`.
  void run_until(double until);

  /// Drains the queue completely.
  void run_all();

  double now() const { return now_; }
  bool empty() const { return heap_.empty(); }
  std::size_t pending() const { return heap_.size(); }
  std::uint64_t executed() const { return executed_; }

 private:
  struct Event {
    double when;
    std::uint64_t seq;
    Handler fn;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.when != b.when) return a.when > b.when;
      return a.seq > b.seq;
    }
  };

  std::priority_queue<Event, std::vector<Event>, Later> heap_;
  double now_ = 0.0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t executed_ = 0;
};

}  // namespace leime::sim
