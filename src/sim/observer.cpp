#include "sim/observer.h"

#include <fstream>
#include <stdexcept>

#include "net/fabric.h"
#include "util/csv.h"

namespace leime::sim {

namespace {

// TCTs and phase durations span microseconds (cloud compute) to tens of
// seconds (fault-window backlogs): ~2.6 buckets/decade over 9 decades.
const obs::HistogramOptions kLatencyBuckets{1e-6, 1e3, 54};
// Queue backlogs and per-slot drift/penalty magnitudes.
const obs::HistogramOptions kQueueBuckets{1e-2, 1e4, 36};

}  // namespace

RecordingObserver::RecordingObserver(ObsConfig config, std::size_t num_devices)
    : cfg_(std::move(config)),
      metrics_on_(cfg_.metrics_enabled()),
      series_on_(cfg_.timeseries_enabled()),
      sampler_(cfg_.effective_trace_sample()),
      kept_since_slot_(num_devices, 0),
      offloaded_since_slot_(num_devices, 0) {
  if (metrics_on_) {
    // Register everything up front so exported snapshots always carry the
    // full schema (zero-valued metrics included) and hot-path updates are
    // map-free.
    c_generated_ = &registry_.counter("leime_tasks_generated_total",
                                      "tasks generated across the fleet");
    c_completed_ = &registry_.counter("leime_tasks_completed_total",
                                      "tasks completed (including warmup)");
    c_offloaded_ = &registry_.counter(
        "leime_tasks_offloaded_total",
        "tasks whose first block was offloaded at dispatch");
    c_parked_ = &registry_.counter(
        "leime_tasks_parked_total",
        "tasks terminally parked (edge never returned)");
    c_failovers_ = &registry_.counter(
        "leime_fault_failovers_total",
        "edge-side work failed back to devices");
    c_retries_ = &registry_.counter("leime_fault_retries_total",
                                    "task-timeout re-dispatches");
    c_local_fallbacks_ = &registry_.counter(
        "leime_fault_local_fallbacks_total",
        "retry budgets exhausted, task finished on device");
    c_edge_crashes_ = &registry_.counter("leime_fault_edge_crashes_total",
                                         "edge server crashes");
    c_churn_ = &registry_.counter("leime_fault_churn_events_total",
                                  "device leave/rejoin events");
    c_decisions_ = &registry_.counter("leime_slot_decisions_total",
                                      "per-device controller decisions");
    h_tct_ = &registry_.histogram("leime_task_tct_seconds",
                                  "task completion time of counted tasks",
                                  kLatencyBuckets);
    h_q_ = &registry_.histogram("leime_queue_device_tasks",
                                "Q_i sampled at decision time (eq. 10)",
                                kQueueBuckets);
    h_h_ = &registry_.histogram("leime_queue_edge_tasks",
                                "H_i sampled at decision time (eq. 11)",
                                kQueueBuckets);
    h_x_ = &registry_.histogram("leime_offload_ratio",
                                "chosen x_i per decision",
                                obs::HistogramOptions{1e-3, 1.0, 30});
    h_penalty_ = &registry_.histogram(
        "leime_slot_penalty_seconds",
        "V*Y_i(t) penalty term at the chosen x (eq. 19)", kQueueBuckets);
    g_edge_up_ =
        &registry_.gauge("leime_edge_up", "1 while the edge server is up");
    g_edge_up_->set(1.0);
    g_absent_ = &registry_.gauge("leime_devices_absent",
                                 "devices currently churned out of the fleet");
    g_sim_time_ =
        &registry_.gauge("leime_sim_time_seconds", "simulated clock at run end");
  }
}

void RecordingObserver::on_task_generated(std::uint64_t task, int device,
                                          double t, int block,
                                          bool offloaded) {
  (void)task;
  (void)t;
  (void)block;
  if (metrics_on_) {
    c_generated_->inc();
    if (offloaded) c_offloaded_->inc();
  }
  if (series_on_ && device >= 0 &&
      static_cast<std::size_t>(device) < kept_since_slot_.size()) {
    auto& bucket = offloaded ? offloaded_since_slot_ : kept_since_slot_;
    ++bucket[static_cast<std::size_t>(device)];
  }
}

void RecordingObserver::on_phase_begin(std::uint64_t task, int device,
                                       std::string_view phase,
                                       std::string_view track, double t_queued,
                                       double exec_start, int attempt) {
  (void)exec_start;
  if (!sampler_.sampled(task)) return;
  // A task occupies one phase at a time; a begin while another span is
  // open means the previous phase's end was skipped — close it defensively
  // so the trace stays well-formed.
  close_span(task, t_queued, "lost");
  OpenSpan span;
  span.phase.assign(phase.data(), phase.size());
  span.track.assign(track.data(), track.size());
  span.t_begin = t_queued;
  span.device = device;
  span.attempt = attempt;
  open_[task] = std::move(span);
}

void RecordingObserver::close_span(std::uint64_t task, double t,
                                   std::string_view outcome) {
  auto it = open_.find(task);
  if (it == open_.end()) return;
  obs::SpanEvent ev;
  ev.task_id = task;
  ev.device = it->second.device;
  ev.phase = std::move(it->second.phase);
  ev.track = std::move(it->second.track);
  ev.outcome.assign(outcome.data(), outcome.size());
  ev.t_begin = it->second.t_begin;
  ev.t_end = t;
  ev.attempt = it->second.attempt;
  open_.erase(it);
  trace_.add_span(std::move(ev));
}

void RecordingObserver::on_phase_end(std::uint64_t task, double t) {
  if (!sampler_.sampled(task)) return;
  close_span(task, t, "ok");
}

void RecordingObserver::on_phase_abort(std::uint64_t task, double t,
                                       std::string_view outcome) {
  if (!sampler_.sampled(task)) return;
  close_span(task, t, outcome);
}

void RecordingObserver::on_task_complete(std::uint64_t task, int device,
                                         double t_arrive, double t_complete,
                                         int block, int retries,
                                         bool counted) {
  (void)device;
  (void)block;
  (void)retries;
  if (metrics_on_) {
    c_completed_->inc();
    if (counted) h_tct_->observe(t_complete - t_arrive);
  }
  if (sampler_.sampled(task)) close_span(task, t_complete, "ok");
}

void RecordingObserver::on_task_parked(std::uint64_t task, int device,
                                       double t) {
  if (metrics_on_) c_parked_->inc();
  if (sampler_.sampled(task)) {
    close_span(task, t, "parked");
    obs::MarkEvent mark;
    mark.name = "parked";
    mark.track = "device" + std::to_string(device);
    mark.t = t;
    mark.task_id = task;
    trace_.add_mark(std::move(mark));
  }
}

void RecordingObserver::on_slot_decision(int device, double t,
                                         const SlotTelemetry& s) {
  if (metrics_on_) {
    c_decisions_->inc();
    h_q_->observe(s.q);
    h_h_->observe(s.h);
    h_x_->observe(s.x);
    h_penalty_->observe(s.penalty);
    g_edge_up_->set(s.edge_up ? 1.0 : 0.0);
  }
  if (series_on_) {
    obs::SlotSample sample;
    sample.t = t;
    sample.device = device;
    sample.q = s.q;
    sample.h = s.h;
    sample.x = s.x;
    sample.drift = s.drift;
    sample.penalty = s.penalty;
    sample.edge_up = s.edge_up;
    sample.link_up = s.link_up;
    sample.edge_share_flops = s.edge_share_flops;
    if (device >= 0 &&
        static_cast<std::size_t>(device) < kept_since_slot_.size()) {
      const auto d = static_cast<std::size_t>(device);
      sample.kept_arrivals = kept_since_slot_[d];
      sample.offloaded_arrivals = offloaded_since_slot_[d];
      kept_since_slot_[d] = 0;
      offloaded_since_slot_[d] = 0;
    }
    series_.append(sample);
  }
}

void RecordingObserver::on_fault(std::string_view kind, int device, double t) {
  if (metrics_on_) {
    if (kind == "failover") c_failovers_->inc();
    else if (kind == "task_timeout") c_retries_->inc();
    else if (kind == "local_fallback") c_local_fallbacks_->inc();
    else if (kind == "edge_crash") c_edge_crashes_->inc();
    else if (kind == "churn_leave" || kind == "churn_join") c_churn_->inc();
    if (kind == "edge_crash") g_edge_up_->set(0.0);
    if (kind == "edge_restart") g_edge_up_->set(1.0);
    if (kind == "churn_leave") g_absent_->set(g_absent_->value() + 1.0);
    if (kind == "churn_join") g_absent_->set(g_absent_->value() - 1.0);
  }
  if (sampler_.every() > 0) {
    obs::MarkEvent mark;
    mark.name.assign(kind.data(), kind.size());
    mark.track = device < 0 ? std::string("edge")
                            : "device" + std::to_string(device);
    mark.t = t;
    trace_.add_mark(std::move(mark));
  }
}

void RecordingObserver::on_net_fabric(const net::Fabric& fabric, double t) {
  if (metrics_on_) fabric.export_metrics(registry_, t);
}

void RecordingObserver::on_run_end(double t) {
  // Close any spans still open at the end of the drain (never-healing
  // faults leave parked tasks mid-phase).
  while (!open_.empty()) close_span(open_.begin()->first, t, "unfinished");
  if (metrics_on_) g_sim_time_->set(t);
}

void RecordingObserver::export_outputs() const {
  if (!cfg_.metrics_out.empty())
    obs::write_prometheus_file(cfg_.metrics_out, registry_.snapshot());
  if (!cfg_.metrics_jsonl.empty()) {
    std::ofstream out(cfg_.metrics_jsonl);
    if (!out)
      throw std::runtime_error("metrics: cannot open " + cfg_.metrics_jsonl);
    registry_.snapshot().to_jsonl(out);
    out.flush();
    if (!out.good())
      throw std::runtime_error("metrics: write error on " +
                               cfg_.metrics_jsonl);
    out.close();
    if (!util::fsync_path(cfg_.metrics_jsonl))
      throw std::runtime_error("metrics: fsync failed for " +
                               cfg_.metrics_jsonl);
  }
  if (!cfg_.trace_out.empty()) trace_.write_chrome_trace_file(cfg_.trace_out);
  if (!cfg_.timeseries_out.empty()) {
    obs::CsvTimeseriesSink sink(cfg_.timeseries_out);
    for (const auto& sample : series_.samples()) sink.append(sample);
    sink.close();
  }
}

}  // namespace leime::sim
