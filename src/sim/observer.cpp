#include "sim/observer.h"

#include <algorithm>
#include <fstream>
#include <limits>
#include <stdexcept>

#include "core/lyapunov.h"
#include "net/fabric.h"
#include "util/csv.h"

namespace leime::sim {

namespace {

// TCTs and phase durations span microseconds (cloud compute) to tens of
// seconds (fault-window backlogs): ~2.6 buckets/decade over 9 decades.
const obs::HistogramOptions kLatencyBuckets{1e-6, 1e3, 54};
// Queue backlogs and per-slot drift/penalty magnitudes.
const obs::HistogramOptions kQueueBuckets{1e-2, 1e4, 36};

// Device-class names feed composed metric-safe strings and trace tracks;
// anything outside the registry alphabet is replaced defensively (the INI
// parser rejects bad names up front — this covers programmatic embedders).
std::string sanitize_class(std::string name) {
  if (name.empty()) return "default";
  for (char& c : name) {
    const bool ok =
        (c >= 'a' && c <= 'z') || (c >= '0' && c <= '9') || c == '_';
    if (!ok) c = '_';
  }
  return name;
}

}  // namespace

RecordingObserver::RecordingObserver(ObsConfig config, std::size_t num_devices,
                                     std::vector<std::string> device_classes)
    : cfg_(std::move(config)),
      metrics_on_(cfg_.metrics_enabled()),
      series_on_(cfg_.timeseries_enabled()),
      attr_on_(cfg_.attribution_enabled()),
      keep_rows_(cfg_.keep_waterfalls || !cfg_.attribution_out.empty() ||
                 !cfg_.calibration_out.empty()),
      sampler_(cfg_.effective_trace_sample()),
      kept_since_slot_(num_devices, 0),
      offloaded_since_slot_(num_devices, 0),
      last_pred_(num_devices) {
  device_classes.resize(num_devices, std::string("default"));
  for (auto& c : device_classes) c = sanitize_class(std::move(c));
  class_names_ = device_classes;
  std::sort(class_names_.begin(), class_names_.end());
  class_names_.erase(std::unique(class_names_.begin(), class_names_.end()),
                     class_names_.end());
  if (class_names_.empty()) class_names_.push_back("default");
  device_class_.reserve(num_devices);
  for (const auto& c : device_classes)
    device_class_.push_back(static_cast<std::size_t>(
        std::lower_bound(class_names_.begin(), class_names_.end(), c) -
        class_names_.begin()));
  attr_summary_.active = attr_on_;
  if (cfg_.slo.enabled())
    slo_ = std::make_unique<obs::SloMonitor>(cfg_.slo, class_names_.size());
  if (cfg_.provenance.enabled())
    prov_ = std::make_unique<obs::ProvenanceRecorder>(cfg_.provenance);
  if (metrics_on_) {
    // Register everything up front so exported snapshots always carry the
    // full schema (zero-valued metrics included) and hot-path updates are
    // map-free.
    c_generated_ = &registry_.counter("leime_tasks_generated_total",
                                      "tasks generated across the fleet");
    c_completed_ = &registry_.counter("leime_tasks_completed_total",
                                      "tasks completed (including warmup)");
    c_offloaded_ = &registry_.counter(
        "leime_tasks_offloaded_total",
        "tasks whose first block was offloaded at dispatch");
    c_parked_ = &registry_.counter(
        "leime_tasks_parked_total",
        "tasks terminally parked (edge never returned)");
    c_failovers_ = &registry_.counter(
        "leime_fault_failovers_total",
        "edge-side work failed back to devices");
    c_retries_ = &registry_.counter("leime_fault_retries_total",
                                    "task-timeout re-dispatches");
    c_local_fallbacks_ = &registry_.counter(
        "leime_fault_local_fallbacks_total",
        "retry budgets exhausted, task finished on device");
    c_edge_crashes_ = &registry_.counter("leime_fault_edge_crashes_total",
                                         "edge server crashes");
    c_churn_ = &registry_.counter("leime_fault_churn_events_total",
                                  "device leave/rejoin events");
    c_decisions_ = &registry_.counter("leime_slot_decisions_total",
                                      "per-device controller decisions");
    h_tct_ = &registry_.histogram("leime_task_tct_seconds",
                                  "task completion time of counted tasks",
                                  kLatencyBuckets);
    h_q_ = &registry_.histogram("leime_queue_device_tasks",
                                "Q_i sampled at decision time (eq. 10)",
                                kQueueBuckets);
    h_h_ = &registry_.histogram("leime_queue_edge_tasks",
                                "H_i sampled at decision time (eq. 11)",
                                kQueueBuckets);
    h_x_ = &registry_.histogram("leime_offload_ratio",
                                "chosen x_i per decision",
                                obs::HistogramOptions{1e-3, 1.0, 30});
    h_penalty_ = &registry_.histogram(
        "leime_slot_penalty_seconds",
        "V*Y_i(t) penalty term at the chosen x (eq. 19)", kQueueBuckets);
    g_edge_up_ =
        &registry_.gauge("leime_edge_up", "1 while the edge server is up");
    g_edge_up_->set(1.0);
    g_absent_ = &registry_.gauge("leime_devices_absent",
                                 "devices currently churned out of the fleet");
    g_sim_time_ =
        &registry_.gauge("leime_sim_time_seconds", "simulated clock at run end");
  }
  if (metrics_on_ && attr_on_) {
    // Registered only when attribution is on so the base metric schema
    // (and its golden exports) stays byte-identical without it.
    c_attr_tasks_ = &registry_.counter("leime_attr_tasks_total",
                                       "waterfalls assembled at completion");
    c_attr_incomplete_ = &registry_.counter(
        "leime_attr_incomplete_total",
        "ledger entries dropped (parked or open at run end)");
    c_attr_calibrated_ = &registry_.counter(
        "leime_attr_calibrated_total",
        "completed tasks joined with a decision-time prediction");
    h_attr_stall_ = &registry_.histogram(
        "leime_attr_stall_seconds",
        "end-to-end time not covered by any stage span", kLatencyBuckets);
    for (int i = 0; i < obs::kAttrStageCount; ++i) {
      const std::string prefix =
          std::string("leime_attr_") +
          obs::attr_stage_name(static_cast<obs::AttrStage>(i));
      h_attr_wait_[static_cast<std::size_t>(i)] = &registry_.histogram(
          prefix + "_wait_seconds", "per-task stage wait", kLatencyBuckets);
      h_attr_service_[static_cast<std::size_t>(i)] =
          &registry_.histogram(prefix + "_service_seconds",
                               "per-task stage service", kLatencyBuckets);
    }
    for (int ci = 0; ci < obs::kCalibComponentCount; ++ci) {
      const std::string prefix =
          std::string("leime_attr_calib_") +
          obs::calib_component_name(static_cast<obs::CalibComponent>(ci));
      h_calib_over_[static_cast<std::size_t>(ci)] = &registry_.histogram(
          prefix + "_over_seconds",
          "signed prediction error when actual exceeds predicted",
          kLatencyBuckets);
      h_calib_under_[static_cast<std::size_t>(ci)] = &registry_.histogram(
          prefix + "_under_seconds",
          "signed prediction error when predicted exceeds actual",
          kLatencyBuckets);
    }
  }
  if (metrics_on_ && slo_) {
    c_slo_completions_ = &registry_.counter(
        "leime_slo_completions_total", "counted completions checked");
    c_slo_misses_ = &registry_.counter("leime_slo_misses_total",
                                       "completions over the deadline");
    c_slo_fired_ = &registry_.counter("leime_slo_alerts_fired_total",
                                      "burn-rate alerts fired");
    c_slo_cleared_ = &registry_.counter("leime_slo_alerts_cleared_total",
                                        "burn-rate alerts cleared");
    g_slo_burn_ = &registry_.gauge(
        "leime_slo_burn_rate", "window miss rate / target at last completion");
    h_slo_overshoot_ = &registry_.histogram(
        "leime_slo_overshoot_seconds", "tct minus deadline for missed tasks",
        kLatencyBuckets);
  }
  if (metrics_on_ && prov_) {
    c_prov_decisions_ = &registry_.counter(
        "leime_prov_decisions_total", "policy decisions seen (incl. unsampled)");
    c_prov_sampled_ = &registry_.counter("leime_prov_sampled_total",
                                         "decision records captured");
    c_prov_oracle_ = &registry_.counter(
        "leime_prov_oracle_runs_total",
        "sampled decisions re-run through the exhaustive oracle");
    c_prov_evictions_ = &registry_.counter(
        "leime_prov_ring_evictions_total",
        "records aged out of the flight-recorder window");
    c_prov_dumps_ = &registry_.counter("leime_prov_dumps_total",
                                       "SLO-fire flight-recorder dumps");
    h_regret_[static_cast<std::size_t>(obs::DecisionKind::kExitSetting)] =
        &registry_.histogram("leime_regret_exit_setting_seconds",
                             "chosen minus oracle expected TCT (eq. 4)",
                             obs::regret_buckets());
    h_regret_[static_cast<std::size_t>(obs::DecisionKind::kOffload)] =
        &registry_.histogram(
            "leime_regret_offload_seconds",
            "chosen minus oracle drift-plus-penalty (eq. 19)",
            obs::regret_buckets());
  }
}

void RecordingObserver::on_task_generated(std::uint64_t task, int device,
                                          double t, int block,
                                          bool offloaded) {
  if (attr_on_) {
    obs::PredictedComponents pred;
    if (device >= 0 && static_cast<std::size_t>(device) < last_pred_.size())
      pred = last_pred_[static_cast<std::size_t>(device)];
    ledger_.on_generated(task, device, class_of(device), t, block, offloaded,
                         pred);
  }
  if (metrics_on_) {
    c_generated_->inc();
    if (offloaded) c_offloaded_->inc();
  }
  if (series_on_ && device >= 0 &&
      static_cast<std::size_t>(device) < kept_since_slot_.size()) {
    auto& bucket = offloaded ? offloaded_since_slot_ : kept_since_slot_;
    ++bucket[static_cast<std::size_t>(device)];
  }
}

void RecordingObserver::on_phase_begin(std::uint64_t task, int device,
                                       std::string_view phase,
                                       std::string_view track, double t_queued,
                                       double exec_start, int attempt) {
  if (attr_on_) ledger_.on_phase_begin(task, phase, t_queued, exec_start);
  if (!sampler_.sampled(task)) return;
  // A task occupies one phase at a time; a begin while another span is
  // open means the previous phase's end was skipped — close it defensively
  // so the trace stays well-formed.
  close_span(task, t_queued, "lost");
  OpenSpan span;
  span.phase.assign(phase.data(), phase.size());
  span.track.assign(track.data(), track.size());
  span.t_begin = t_queued;
  span.device = device;
  span.attempt = attempt;
  open_[task] = std::move(span);
}

void RecordingObserver::close_span(std::uint64_t task, double t,
                                   std::string_view outcome) {
  auto it = open_.find(task);
  if (it == open_.end()) return;
  obs::SpanEvent ev;
  ev.task_id = task;
  ev.device = it->second.device;
  ev.phase = std::move(it->second.phase);
  ev.track = std::move(it->second.track);
  ev.outcome.assign(outcome.data(), outcome.size());
  ev.t_begin = it->second.t_begin;
  ev.t_end = t;
  ev.attempt = it->second.attempt;
  open_.erase(it);
  trace_.add_span(std::move(ev));
}

void RecordingObserver::on_phase_end(std::uint64_t task, double t) {
  if (attr_on_) ledger_.on_phase_end(task, t);
  if (!sampler_.sampled(task)) return;
  close_span(task, t, "ok");
}

void RecordingObserver::on_phase_abort(std::uint64_t task, double t,
                                       std::string_view outcome) {
  // Aborted attempts still accumulate in the ledger: the time was spent,
  // it just ended in failover/retry instead of progress.
  if (attr_on_) ledger_.on_phase_end(task, t);
  if (!sampler_.sampled(task)) return;
  close_span(task, t, outcome);
}

void RecordingObserver::on_task_complete(std::uint64_t task, int device,
                                         double t_arrive, double t_complete,
                                         int block, int retries,
                                         bool counted) {
  (void)block;
  const double tct = t_complete - t_arrive;
  if (metrics_on_) {
    c_completed_->inc();
    if (counted) h_tct_->observe(tct);
  }
  if (attr_on_) {
    obs::TaskWaterfall wf;
    if (ledger_.on_complete(task, t_complete, retries, counted, &wf)) {
      if (metrics_on_) {
        c_attr_tasks_->inc();
        h_attr_stall_->observe(wf.stall);
        for (int i = 0; i < obs::kAttrStageCount; ++i) {
          const auto& s = wf.stages[static_cast<std::size_t>(i)];
          if (s.wait == 0.0 && s.service == 0.0) continue;
          h_attr_wait_[static_cast<std::size_t>(i)]->observe(s.wait);
          h_attr_service_[static_cast<std::size_t>(i)]->observe(s.service);
        }
        bool calibrated = false;
        for (int ci = 0; ci < obs::kCalibComponentCount; ++ci) {
          double err = 0.0;
          if (!wf.calibration_error(static_cast<obs::CalibComponent>(ci),
                                    &err))
            continue;
          calibrated = true;
          auto& hist = err >= 0.0 ? h_calib_over_ : h_calib_under_;
          hist[static_cast<std::size_t>(ci)]->observe(err >= 0.0 ? err : -err);
        }
        if (calibrated) c_attr_calibrated_->inc();
      }
      attr_summary_.add(wf, class_names_[wf.cls]);
      if (keep_rows_) waterfalls_.push_back(std::move(wf));
    }
  }
  if (slo_ && counted) {
    const std::size_t cls = class_of(device);
    const obs::SloAlert* alert = slo_->on_completion(cls, t_complete, tct);
    if (metrics_on_) {
      c_slo_completions_->inc();
      if (tct > cfg_.slo.deadline) {
        c_slo_misses_->inc();
        h_slo_overshoot_->observe(tct - cfg_.slo.deadline);
      }
      g_slo_burn_->set(slo_->burn_rate(cls));
    }
    if (alert) {
      if (metrics_on_) (alert->fire ? c_slo_fired_ : c_slo_cleared_)->inc();
      if (sampler_.every() > 0) {
        obs::MarkEvent mark;
        mark.name = alert->fire ? "slo_burn_fire" : "slo_burn_clear";
        mark.track = "slo/" + class_names_[cls];
        mark.t = t_complete;
        trace_.add_mark(std::move(mark));
      }
      // Flight-recorder postmortem: every fire dumps the decision window
      // that led into it plus whatever work was mid-flight. Clears do not
      // dump (the interesting state is what *caused* the burn).
      if (alert->fire && prov_ && !cfg_.provenance.dump_out.empty()) {
        if (!dump_opened_) {
          dump_stream_.open(cfg_.provenance.dump_out,
                            std::ios::out | std::ios::trunc);
          if (!dump_stream_)
            throw std::runtime_error("provenance: cannot open " +
                                     cfg_.provenance.dump_out);
          dump_opened_ = true;
        }
        std::vector<obs::OpenSpanNote> spans;
        spans.reserve(open_.size());
        for (const auto& [task_id, span] : open_) {
          obs::OpenSpanNote note;
          note.task = task_id;
          note.device = span.device;
          note.phase = span.phase;
          note.track = span.track;
          note.t_begin = span.t_begin;
          spans.push_back(std::move(note));
        }
        obs::write_flight_dump(dump_stream_, alert->t, class_names_[cls],
                               alert->miss_rate, alert->burn,
                               alert->window_tasks, prov_->window(), spans);
        dump_stream_.flush();
        if (!dump_stream_.good())
          throw std::runtime_error("provenance: write error on " +
                                   cfg_.provenance.dump_out);
        prov_->note_dump();
      }
    }
  }
  if (sampler_.sampled(task)) close_span(task, t_complete, "ok");
}

void RecordingObserver::on_task_parked(std::uint64_t task, int device,
                                       double t) {
  if (attr_on_ && ledger_.on_parked(task)) {
    // A parked task has no completion, so no waterfall: it only counts.
    ++attr_summary_.incomplete;
    if (metrics_on_) c_attr_incomplete_->inc();
  }
  if (metrics_on_) c_parked_->inc();
  if (sampler_.sampled(task)) {
    close_span(task, t, "parked");
    obs::MarkEvent mark;
    mark.name = "parked";
    mark.track = "device" + std::to_string(device);
    mark.t = t;
    mark.task_id = task;
    trace_.add_mark(std::move(mark));
  }
}

void RecordingObserver::on_slot_decision(int device, double t,
                                         const SlotTelemetry& s) {
  if (attr_on_ && device >= 0 &&
      static_cast<std::size_t>(device) < last_pred_.size())
    last_pred_[static_cast<std::size_t>(device)] = s.pred;
  if (metrics_on_) {
    c_decisions_->inc();
    h_q_->observe(s.q);
    h_h_->observe(s.h);
    h_x_->observe(s.x);
    h_penalty_->observe(s.penalty);
    g_edge_up_->set(s.edge_up ? 1.0 : 0.0);
  }
  if (series_on_) {
    obs::SlotSample sample;
    sample.t = t;
    sample.device = device;
    sample.q = s.q;
    sample.h = s.h;
    sample.x = s.x;
    sample.drift = s.drift;
    sample.penalty = s.penalty;
    sample.edge_up = s.edge_up;
    sample.link_up = s.link_up;
    sample.edge_share_flops = s.edge_share_flops;
    if (device >= 0 &&
        static_cast<std::size_t>(device) < kept_since_slot_.size()) {
      const auto d = static_cast<std::size_t>(device);
      sample.kept_arrivals = kept_since_slot_[d];
      sample.offloaded_arrivals = offloaded_since_slot_[d];
      kept_since_slot_[d] = 0;
      offloaded_since_slot_[d] = 0;
    }
    series_.append(sample);
  }
  if (prov_ && s.state) {
    std::uint64_t seq = 0;
    bool oracle = false;
    if (prov_->begin_decision(&seq, &oracle)) {
      // All the heavy work (grid margin scan, oracle minimisation) happens
      // only on sampled ordinals; nothing here consumes RNG or schedules
      // events, so the run itself is unperturbed.
      const core::DeviceSlotState& st = *s.state;
      obs::DecisionRecord r;
      r.seq = seq;
      r.t = t;
      r.device = device;
      r.cls = class_names_[class_of(device)];
      r.kind = obs::DecisionKind::kOffload;
      r.path = s.batched ? obs::DecisionPath::kBatch
                         : obs::DecisionPath::kDirect;
      r.bandwidth = st.bandwidth;
      r.edge_flops = st.edge_share_flops;
      r.queue_device = st.queue_device;
      r.queue_edge = st.queue_edge;
      r.x = s.x;
      r.cost = core::drift_plus_penalty(st, s.x);
      // Runner-up margin on a fixed grid over the feasible interval: the
      // gap between the best and second-best eq. 19 values the controller
      // could have picked. Deterministic (no RNG, fixed grid), so the
      // record stream is thread-count-invariant.
      constexpr int kMarginGrid = 33;
      const core::Interval iv = core::feasible_offload_interval(st);
      double best = std::numeric_limits<double>::infinity();
      double second = best;
      for (int k = 0; k < kMarginGrid; ++k) {
        const double x =
            iv.lo + (iv.hi - iv.lo) * static_cast<double>(k) /
                        static_cast<double>(kMarginGrid - 1);
        const double c = core::drift_plus_penalty(st, x);
        if (c < best) {
          second = best;
          best = c;
        } else if (c < second) {
          second = c;
        }
      }
      r.explored = kMarginGrid;
      if (second < std::numeric_limits<double>::infinity()) {
        r.margin_valid = true;
        r.margin = second - best;
      }
      if (oracle) {
        // The exact per-slot oracle (coarse grid + golden section). The
        // min() clamp guarantees regret >= 0 even though the chosen x may
        // sit between grid points the solvers disagree on by an ULP.
        const double ox = core::minimize_drift_plus_penalty(st);
        r.oracle = true;
        r.oracle_cost = std::min(core::drift_plus_penalty(st, ox), r.cost);
        r.regret = r.cost - r.oracle_cost;
      }
      prov_->record(std::move(r));
    }
  }
}

void RecordingObserver::on_fault(std::string_view kind, int device, double t) {
  if (metrics_on_) {
    if (kind == "failover") c_failovers_->inc();
    else if (kind == "task_timeout") c_retries_->inc();
    else if (kind == "local_fallback") c_local_fallbacks_->inc();
    else if (kind == "edge_crash") c_edge_crashes_->inc();
    else if (kind == "churn_leave" || kind == "churn_join") c_churn_->inc();
    if (kind == "edge_crash") g_edge_up_->set(0.0);
    if (kind == "edge_restart") g_edge_up_->set(1.0);
    if (kind == "churn_leave") g_absent_->set(g_absent_->value() + 1.0);
    if (kind == "churn_join") g_absent_->set(g_absent_->value() - 1.0);
  }
  if (sampler_.every() > 0) {
    obs::MarkEvent mark;
    mark.name.assign(kind.data(), kind.size());
    mark.track = device < 0 ? std::string("edge")
                            : "device" + std::to_string(device);
    mark.t = t;
    trace_.add_mark(std::move(mark));
  }
}

void RecordingObserver::on_net_hop(std::uint64_t task, std::string_view port,
                                   double t_queued, double exec_start,
                                   double t_end) {
  if (attr_on_) ledger_.on_hop(task, port, t_queued, exec_start, t_end);
}

void RecordingObserver::on_net_fabric(const net::Fabric& fabric, double t) {
  if (metrics_on_) fabric.export_metrics(registry_, t);
}

void RecordingObserver::on_run_end(double t) {
  // Close any spans still open at the end of the drain (never-healing
  // faults leave parked tasks mid-phase).
  while (!open_.empty()) close_span(open_.begin()->first, t, "unfinished");
  if (attr_on_) {
    // Entries still open never completed: count them, drop the partials.
    const auto open = static_cast<std::uint64_t>(ledger_.open_tasks());
    if (open > 0) {
      attr_summary_.incomplete += open;
      if (metrics_on_) c_attr_incomplete_->inc(open);
      ledger_.clear();
    }
  }
  if (prov_) {
    if (metrics_on_) {
      // The recorder accumulates under its own mutex; the registry is not
      // thread-safe, so the totals land here, after the drain.
      const obs::ProvenanceSummary sum = prov_->summary();
      c_prov_decisions_->inc(sum.decisions);
      c_prov_sampled_->inc(sum.sampled);
      c_prov_oracle_->inc(sum.oracle_runs);
      c_prov_evictions_->inc(sum.ring_evictions);
      c_prov_dumps_->inc(sum.dumps);
      for (int k = 0; k < obs::kDecisionKindCount; ++k)
        h_regret_[static_cast<std::size_t>(k)]->merge(
            sum.kind_regret[static_cast<std::size_t>(k)]);
    }
    if (dump_opened_) {
      dump_stream_.close();
      if (!util::fsync_path(cfg_.provenance.dump_out))
        throw std::runtime_error("provenance: fsync failed for " +
                                 cfg_.provenance.dump_out);
    }
  }
  if (metrics_on_) g_sim_time_->set(t);
}

std::size_t RecordingObserver::class_of(int device) const {
  if (device >= 0 && static_cast<std::size_t>(device) < device_class_.size())
    return device_class_[static_cast<std::size_t>(device)];
  return 0;
}

obs::SloSummary RecordingObserver::slo_summary() const {
  if (!slo_) return {};
  return slo_->summary(class_names_);
}

obs::ProvenanceSummary RecordingObserver::provenance_summary() const {
  if (!prov_) return {};
  return prov_->summary();
}

void RecordingObserver::export_outputs() const {
  if (!cfg_.metrics_out.empty())
    obs::write_prometheus_file(cfg_.metrics_out, registry_.snapshot());
  if (!cfg_.metrics_jsonl.empty()) {
    std::ofstream out(cfg_.metrics_jsonl);
    if (!out)
      throw std::runtime_error("metrics: cannot open " + cfg_.metrics_jsonl);
    registry_.snapshot().to_jsonl(out);
    out.flush();
    if (!out.good())
      throw std::runtime_error("metrics: write error on " +
                               cfg_.metrics_jsonl);
    out.close();
    if (!util::fsync_path(cfg_.metrics_jsonl))
      throw std::runtime_error("metrics: fsync failed for " +
                               cfg_.metrics_jsonl);
  }
  if (!cfg_.trace_out.empty()) trace_.write_chrome_trace_file(cfg_.trace_out);
  if (!cfg_.timeseries_out.empty()) {
    obs::CsvTimeseriesSink sink(cfg_.timeseries_out);
    for (const auto& sample : series_.samples()) sink.append(sample);
    sink.close();
  }
  const auto write_text_file = [](const std::string& path, const char* what,
                                  const auto& emit) {
    std::ofstream out(path);
    if (!out)
      throw std::runtime_error(std::string(what) + ": cannot open " + path);
    emit(out);
    out.flush();
    if (!out.good())
      throw std::runtime_error(std::string(what) + ": write error on " + path);
    out.close();
    if (!util::fsync_path(path))
      throw std::runtime_error(std::string(what) + ": fsync failed for " +
                               path);
  };
  if (!cfg_.attribution_out.empty())
    write_text_file(cfg_.attribution_out, "attribution", [&](std::ostream& o) {
      obs::write_waterfalls_jsonl(o, waterfalls_, class_names_);
    });
  if (!cfg_.calibration_out.empty())
    write_text_file(cfg_.calibration_out, "calibration", [&](std::ostream& o) {
      obs::write_calibration_csv(o, waterfalls_, class_names_);
    });
  if (slo_ && !cfg_.slo.alerts_out.empty())
    slo_->write_alerts_file(cfg_.slo.alerts_out, class_names_);
  if (prov_ && !cfg_.provenance.decisions_out.empty())
    obs::write_decisions_file(cfg_.provenance.decisions_out, prov_->window());
}

}  // namespace leime::sim
