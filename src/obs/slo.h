// Deterministic sim-time SLO monitoring (DESIGN.md §13).
//
// A deadline target (from the scenario's [slo] INI block) is checked against
// every counted task completion. Per device class the monitor keeps a
// sliding sim-time window of completions, derives the window miss rate and
// the burn rate (miss rate / target miss rate — burn 1.0 means the error
// budget is being consumed exactly as provisioned, >1 means faster), and
// records fire/clear alert transitions when the burn crosses the threshold.
//
// Everything is driven by simulated time and the completion order of the
// DES, which is deterministic for a fixed seed — so the alert stream (and
// its JSONL rendering) is bit-identical across runtime thread counts. No
// wall clock, no RNG.
#pragma once

#include <cstdint>
#include <deque>
#include <iosfwd>
#include <string>
#include <vector>

namespace leime::obs {

/// The [slo] INI block. Disabled unless a positive deadline is set.
struct SloConfig {
  double deadline = 0.0;           ///< seconds; <= 0 disables the monitor
  double window = 30.0;            ///< sliding window length (sim seconds)
  double target_miss_rate = 0.01;  ///< provisioned error budget
  double burn_threshold = 1.0;     ///< alert when burn >= threshold
  std::uint64_t min_window_tasks = 20;  ///< evidence floor before firing
  std::string alerts_out;          ///< alerts JSONL path ("" = memory only)

  bool enabled() const { return deadline > 0.0; }

  /// Throws std::invalid_argument on non-positive window/target/threshold
  /// (when enabled).
  void validate() const;
};

/// One alert transition, recorded at the completion that caused it.
struct SloAlert {
  double t = 0.0;
  std::size_t cls = 0;  ///< device-class index
  bool fire = true;     ///< false = clear
  double miss_rate = 0.0;
  double burn = 0.0;
  std::uint64_t window_tasks = 0;
};

/// Plan-order-mergeable run summary for SimResult / RunRecord.
struct SloSummary {
  bool active = false;
  double deadline = 0.0;

  struct ClassStats {
    std::string name;
    std::uint64_t completions = 0;  ///< counted completions observed
    std::uint64_t misses = 0;
    std::uint64_t alerts_fired = 0;
    std::uint64_t alerts_cleared = 0;
    double max_burn = 0.0;
  };
  std::vector<ClassStats> classes;  ///< sorted by class name

  /// The alert stream, in completion order; merge appends in call order so
  /// a plan-order merge is deterministic across thread counts.
  struct Alert {
    double t = 0.0;
    std::string cls;
    bool fire = true;
    double miss_rate = 0.0;
    double burn = 0.0;
    std::uint64_t window_tasks = 0;
  };
  std::vector<Alert> alerts;

  bool empty() const { return !active; }
  void merge(const SloSummary& other);

  /// One JSON object (single line, no trailing newline) for runtime sinks.
  void to_json(std::ostream& out) const;
};

/// The live monitor: one sliding window per device class.
class SloMonitor {
 public:
  /// Throws via SloConfig::validate.
  SloMonitor(SloConfig config, std::size_t num_classes);

  /// Records a completion with task completion time `tct` at sim time `t`.
  /// Returns the alert transition this completion caused, or nullptr.
  /// The returned pointer stays valid until the next call.
  const SloAlert* on_completion(std::size_t cls, double t, double tct);

  const SloConfig& config() const { return cfg_; }
  const std::vector<SloAlert>& alerts() const { return alerts_; }

  double miss_rate(std::size_t cls) const;
  double burn_rate(std::size_t cls) const;
  std::uint64_t completions(std::size_t cls) const;
  std::uint64_t misses(std::size_t cls) const;
  bool alerting(std::size_t cls) const;

  /// Freezes per-class stats + the alert stream into a summary.
  SloSummary summary(const std::vector<std::string>& class_names) const;

  /// One JSON object per alert, one per line; bit-identical for identical
  /// completion streams.
  void write_alerts_jsonl(std::ostream& out,
                          const std::vector<std::string>& class_names) const;

  /// Writes, flushes and fsyncs `path`; throws std::runtime_error on
  /// failure.
  void write_alerts_file(const std::string& path,
                         const std::vector<std::string>& class_names) const;

 private:
  struct ClassWindow {
    std::deque<std::pair<double, bool>> events;  ///< (t, missed)
    std::uint64_t window_misses = 0;
    std::uint64_t completions = 0;
    std::uint64_t misses = 0;
    double max_burn = 0.0;
    bool alerting = false;
    std::uint64_t fired = 0;
    std::uint64_t cleared = 0;
  };

  void evict(ClassWindow& w, double t);

  SloConfig cfg_;
  std::vector<ClassWindow> windows_;
  std::vector<SloAlert> alerts_;
};

}  // namespace leime::obs
