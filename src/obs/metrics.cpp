#include "obs/metrics.h"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <limits>
#include <ostream>
#include <sstream>
#include <stdexcept>

#include "util/csv.h"

namespace leime::obs {

namespace {

// Shortest round-trip double formatting, mirroring the runtime JSONL sink:
// equal values always serialize to equal bytes (the determinism contract).
std::string num(double v) {
  std::ostringstream os;
  os.precision(std::numeric_limits<double>::max_digits10);
  os << v;
  return os.str();
}

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default: out += c;
    }
  }
  return out;
}

// Prometheus text-exposition escaping. HELP lines escape backslash and
// newline; label values additionally escape double quotes (the `le` bounds
// we emit are numeric, but the writer stays correct for any value).
std::string prom_escape_help(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      default: out += c;
    }
  }
  return out;
}

std::string prom_escape_label(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '\\': out += "\\\\"; break;
      case '"': out += "\\\""; break;
      case '\n': out += "\\n"; break;
      default: out += c;
    }
  }
  return out;
}

void require_valid_name(const std::string& name) {
  if (!valid_metric_name(name))
    throw std::invalid_argument(
        "metrics: name '" + name +
        "' does not match ^leime_[a-z0-9_]+$ (see DESIGN.md §8)");
}

template <typename Map>
bool name_taken_elsewhere(const Map& map, const std::string& name) {
  return map.count(name) > 0;
}

}  // namespace

bool valid_metric_name(const std::string& name) {
  constexpr const char* prefix = "leime_";
  if (name.rfind(prefix, 0) != 0) return false;
  if (name.size() == 6) return false;  // bare prefix
  for (std::size_t i = 6; i < name.size(); ++i) {
    const char c = name[i];
    const bool ok =
        (c >= 'a' && c <= 'z') || (c >= '0' && c <= '9') || c == '_';
    if (!ok) return false;
  }
  return true;
}

// ------------------------------------------------------------- Histogram

Histogram::Histogram(HistogramOptions opts) : opts_(opts) {
  if (!(opts_.min_bound > 0.0) || !(opts_.max_bound > opts_.min_bound))
    throw std::invalid_argument(
        "Histogram: bounds must satisfy 0 < min_bound < max_bound");
  if (opts_.buckets < 1)
    throw std::invalid_argument("Histogram: need at least one bucket");
  log_min_ = std::log(opts_.min_bound);
  log_growth_ =
      (std::log(opts_.max_bound) - log_min_) / opts_.buckets;
  counts_.assign(static_cast<std::size_t>(opts_.buckets) + 2, 0);
}

void Histogram::observe(double v) {
  stats_.add(v);
  std::size_t idx;
  if (v < opts_.min_bound) {
    idx = 0;
  } else if (v >= opts_.max_bound) {
    idx = counts_.size() - 1;
  } else {
    const int b = static_cast<int>((std::log(v) - log_min_) / log_growth_);
    idx = static_cast<std::size_t>(std::clamp(b, 0, opts_.buckets - 1)) + 1;
  }
  ++counts_[idx];
}

double Histogram::upper_bound(int bucket) const {
  return std::exp(log_min_ + log_growth_ * (bucket + 1));
}

double histogram_quantile(const HistogramOptions& opts,
                          const std::vector<std::uint64_t>& counts,
                          const util::RunningStats& stats, double q) {
  if (q < 0.0 || q > 1.0)
    throw std::invalid_argument("histogram_quantile: q outside [0,1]");
  const std::uint64_t n = stats.count();
  if (n == 0) return 0.0;
  if (q <= 0.0) return stats.min();
  if (q >= 1.0) return stats.max();
  const double log_min = std::log(opts.min_bound);
  const double log_growth =
      (std::log(opts.max_bound) - log_min) / opts.buckets;
  const double target = q * static_cast<double>(n);
  double cum = 0.0;
  for (std::size_t i = 0; i < counts.size(); ++i) {
    if (counts[i] == 0) continue;
    const double next = cum + static_cast<double>(counts[i]);
    if (next >= target) {
      // Geometric interpolation inside the bucket; the open-ended under-
      // and overflow buckets fall back to the exact sample extremes.
      const double frac = (target - cum) / static_cast<double>(counts[i]);
      if (i == 0) return std::min(stats.max(), opts.min_bound);
      if (i == counts.size() - 1) return stats.max();
      const double lo = log_min + log_growth * static_cast<double>(i - 1);
      return std::exp(lo + log_growth * frac);
    }
    cum = next;
  }
  return stats.max();
}

double Histogram::quantile(double q) const {
  return histogram_quantile(opts_, counts_, stats_, q);
}

void Histogram::merge(const Histogram& other) {
  if (!(opts_ == other.opts_))
    throw std::invalid_argument(
        "Histogram::merge: shards have different bucket geometry");
  absorb(other.counts_, other.stats_);
}

void Histogram::absorb(const std::vector<std::uint64_t>& counts,
                       const util::RunningStats& stats) {
  if (counts.size() != counts_.size())
    throw std::invalid_argument(
        "Histogram::absorb: bucket count mismatch");
  for (std::size_t i = 0; i < counts_.size(); ++i) counts_[i] += counts[i];
  stats_.merge(stats);
}

// -------------------------------------------------------------- Snapshot

namespace {

template <typename Sample, typename Fold>
void merge_sorted(std::vector<Sample>& into, const std::vector<Sample>& from,
                  const Fold& fold) {
  for (const auto& sample : from) {
    auto it = std::lower_bound(
        into.begin(), into.end(), sample,
        [](const Sample& a, const Sample& b) { return a.name < b.name; });
    if (it != into.end() && it->name == sample.name)
      fold(*it, sample);
    else
      into.insert(it, sample);
  }
}

}  // namespace

void Snapshot::merge(const Snapshot& other) {
  merge_sorted(counters, other.counters,
               [](CounterSample& a, const CounterSample& b) {
                 a.value += b.value;
               });
  merge_sorted(gauges, other.gauges, [](GaugeSample& a, const GaugeSample& b) {
    a.value = b.value;  // last-merged wins (deterministic in merge order)
  });
  merge_sorted(histograms, other.histograms,
               [](HistogramSample& a, const HistogramSample& b) {
                 if (!(a.options == b.options) ||
                     a.counts.size() != b.counts.size())
                   throw std::invalid_argument(
                       "Snapshot::merge: histogram geometry mismatch for " +
                       a.name);
                 for (std::size_t i = 0; i < a.counts.size(); ++i)
                   a.counts[i] += b.counts[i];
                 a.stats.merge(b.stats);
                 a.p50 = histogram_quantile(a.options, a.counts, a.stats, 0.50);
                 a.p95 = histogram_quantile(a.options, a.counts, a.stats, 0.95);
                 a.p99 = histogram_quantile(a.options, a.counts, a.stats, 0.99);
               });
}

void Snapshot::to_prometheus(std::ostream& out) const {
  for (const auto& c : counters) {
    if (!c.help.empty())
      out << "# HELP " << c.name << " " << prom_escape_help(c.help) << "\n";
    out << "# TYPE " << c.name << " counter\n";
    out << c.name << " " << c.value << "\n";
  }
  for (const auto& g : gauges) {
    if (!g.help.empty())
      out << "# HELP " << g.name << " " << prom_escape_help(g.help) << "\n";
    out << "# TYPE " << g.name << " gauge\n";
    out << g.name << " " << num(g.value) << "\n";
  }
  for (const auto& h : histograms) {
    if (!h.help.empty())
      out << "# HELP " << h.name << " " << prom_escape_help(h.help) << "\n";
    out << "# TYPE " << h.name << " histogram\n";
    // Cumulative buckets: underflow folds into the first bound.
    std::uint64_t cum = 0;
    Histogram geometry(h.options);
    for (int b = -1; b < h.options.buckets; ++b) {
      cum += h.counts[static_cast<std::size_t>(b + 1)];
      const double le =
          b < 0 ? h.options.min_bound : geometry.upper_bound(b);
      out << h.name << "_bucket{le=\"" << prom_escape_label(num(le))
          << "\"} " << cum << "\n";
    }
    cum += h.counts.back();
    out << h.name << "_bucket{le=\"+Inf\"} " << cum << "\n";
    out << h.name << "_sum " << num(h.stats.sum()) << "\n";
    out << h.name << "_count " << h.stats.count() << "\n";
  }
}

void Snapshot::to_jsonl(std::ostream& out) const {
  for (const auto& c : counters)
    out << "{\"metric\":\"" << json_escape(c.name)
        << "\",\"type\":\"counter\",\"value\":" << c.value << "}\n";
  for (const auto& g : gauges)
    out << "{\"metric\":\"" << json_escape(g.name)
        << "\",\"type\":\"gauge\",\"value\":" << num(g.value) << "}\n";
  for (const auto& h : histograms) {
    out << "{\"metric\":\"" << json_escape(h.name)
        << "\",\"type\":\"histogram\",\"count\":" << h.stats.count()
        << ",\"sum\":" << num(h.stats.sum())
        << ",\"min\":" << num(h.stats.min())
        << ",\"max\":" << num(h.stats.max()) << ",\"p50\":" << num(h.p50)
        << ",\"p95\":" << num(h.p95) << ",\"p99\":" << num(h.p99) << "}\n";
  }
}

// -------------------------------------------------------- MetricsRegistry

Counter& MetricsRegistry::counter(const std::string& name,
                                  const std::string& help) {
  require_valid_name(name);
  if (name_taken_elsewhere(gauges_, name) ||
      name_taken_elsewhere(histograms_, name))
    throw std::invalid_argument("metrics: '" + name +
                                "' already registered with another kind");
  auto [it, inserted] = counters_.try_emplace(name);
  if (inserted) it->second.first.help = help;
  return it->second.second;
}

Gauge& MetricsRegistry::gauge(const std::string& name,
                              const std::string& help) {
  require_valid_name(name);
  if (name_taken_elsewhere(counters_, name) ||
      name_taken_elsewhere(histograms_, name))
    throw std::invalid_argument("metrics: '" + name +
                                "' already registered with another kind");
  auto [it, inserted] = gauges_.try_emplace(name);
  if (inserted) it->second.first.help = help;
  return it->second.second;
}

Histogram& MetricsRegistry::histogram(const std::string& name,
                                      const std::string& help,
                                      HistogramOptions opts) {
  require_valid_name(name);
  if (name_taken_elsewhere(counters_, name) ||
      name_taken_elsewhere(gauges_, name))
    throw std::invalid_argument("metrics: '" + name +
                                "' already registered with another kind");
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_
             .emplace(name, std::make_pair(Named{help},
                                           std::make_unique<Histogram>(opts)))
             .first;
  } else if (!(it->second.second->options() == opts)) {
    throw std::invalid_argument(
        "metrics: histogram '" + name +
        "' re-registered with different bucket geometry");
  }
  return *it->second.second;
}

Snapshot MetricsRegistry::snapshot() const {
  Snapshot snap;
  for (const auto& [name, entry] : counters_)
    snap.counters.push_back({name, entry.first.help, entry.second.value()});
  for (const auto& [name, entry] : gauges_)
    snap.gauges.push_back({name, entry.first.help, entry.second.value()});
  for (const auto& [name, entry] : histograms_) {
    const Histogram& h = *entry.second;
    Snapshot::HistogramSample s;
    s.name = name;
    s.help = entry.first.help;
    s.options = h.options();
    s.counts = h.counts();
    s.stats = h.stats();
    s.p50 = h.quantile(0.50);
    s.p95 = h.quantile(0.95);
    s.p99 = h.quantile(0.99);
    snap.histograms.push_back(std::move(s));
  }
  return snap;
}

void MetricsRegistry::absorb(const Snapshot& snap) {
  for (const auto& c : snap.counters) counter(c.name, c.help).inc(c.value);
  for (const auto& g : snap.gauges) gauge(g.name, g.help).set(g.value);
  for (const auto& h : snap.histograms) {
    Histogram& mine = histogram(h.name, h.help, h.options);
    mine.absorb(h.counts, h.stats);
  }
}

void write_prometheus_file(const std::string& path, const Snapshot& snap) {
  {
    std::ofstream out(path);
    if (!out)
      throw std::runtime_error("metrics: cannot open " + path);
    snap.to_prometheus(out);
    out.flush();
    if (!out.good())
      throw std::runtime_error("metrics: write error on " + path);
  }
  if (!util::fsync_path(path))
    throw std::runtime_error("metrics: fsync failed for " + path);
}

}  // namespace leime::obs
