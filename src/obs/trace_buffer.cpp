#include "obs/trace_buffer.h"

#include <algorithm>
#include <fstream>
#include <limits>
#include <map>
#include <ostream>
#include <sstream>
#include <stdexcept>

#include "util/csv.h"

namespace leime::obs {

namespace {

// Shortest round-trip double formatting (same contract as the metrics and
// JSONL sinks): equal values always serialize to equal bytes.
std::string num(double v) {
  std::ostringstream os;
  os.precision(std::numeric_limits<double>::max_digits10);
  os << v;
  return os.str();
}

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default: out += c;
    }
  }
  return out;
}

constexpr double kMicros = 1e6;  // sim seconds -> trace microseconds

}  // namespace

void TraceBuffer::add_span(SpanEvent span) {
  if (span.t_end < span.t_begin)
    throw std::invalid_argument("TraceBuffer: span ends before it begins");
  spans_.push_back(std::move(span));
}

void TraceBuffer::add_mark(MarkEvent mark) { marks_.push_back(std::move(mark)); }

void TraceBuffer::write_chrome_trace(std::ostream& out) const {
  // Deterministic tid assignment: sorted track names, independent of the
  // order events were emitted in.
  std::map<std::string, int> tids;
  for (const auto& s : spans_) tids.emplace(s.track, 0);
  for (const auto& m : marks_) tids.emplace(m.track, 0);
  int next_tid = 1;
  for (auto& [track, tid] : tids) tid = next_tid++;

  out << "{\"traceEvents\":[";
  bool first = true;
  auto sep = [&] {
    if (!first) out << ",";
    first = false;
    out << "\n";
  };

  for (const auto& [track, tid] : tids) {
    sep();
    out << "{\"ph\":\"M\",\"pid\":1,\"tid\":" << tid
        << ",\"name\":\"thread_name\",\"args\":{\"name\":\""
        << json_escape(track) << "\"}}";
  }
  for (const auto& s : spans_) {
    sep();
    out << "{\"ph\":\"X\",\"pid\":1,\"tid\":" << tids.at(s.track)
        << ",\"name\":\"" << json_escape(s.phase) << "\",\"cat\":\"task\""
        << ",\"ts\":" << num(s.t_begin * kMicros)
        << ",\"dur\":" << num((s.t_end - s.t_begin) * kMicros)
        << ",\"args\":{\"task\":" << s.task_id << ",\"device\":" << s.device
        << ",\"attempt\":" << s.attempt << ",\"outcome\":\""
        << json_escape(s.outcome) << "\"}}";
  }
  for (const auto& m : marks_) {
    sep();
    out << "{\"ph\":\"i\",\"pid\":1,\"tid\":" << tids.at(m.track)
        << ",\"name\":\"" << json_escape(m.name) << "\",\"cat\":\"fault\""
        << ",\"s\":\"t\",\"ts\":" << num(m.t * kMicros) << ",\"args\":{";
    if (m.has_task()) out << "\"task\":" << m.task_id;
    out << "}}";
  }
  out << "\n],\"displayTimeUnit\":\"ms\"}\n";
}

void TraceBuffer::write_chrome_trace_file(const std::string& path) const {
  {
    std::ofstream out(path);
    if (!out) throw std::runtime_error("trace: cannot open " + path);
    write_chrome_trace(out);
    out.flush();
    if (!out.good()) throw std::runtime_error("trace: write error on " + path);
  }
  if (!util::fsync_path(path))
    throw std::runtime_error("trace: fsync failed for " + path);
}

}  // namespace leime::obs
