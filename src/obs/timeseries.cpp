#include "obs/timeseries.h"

#include <fstream>
#include <iostream>
#include <limits>
#include <ostream>
#include <sstream>
#include <stdexcept>

#include "util/csv.h"

namespace leime::obs {

namespace {

std::string num(double v) {
  std::ostringstream os;
  os.precision(std::numeric_limits<double>::max_digits10);
  os << v;
  return os.str();
}

}  // namespace

std::vector<SlotSample> MemoryTimeseriesSink::device_series(int device) const {
  std::vector<SlotSample> out;
  for (const auto& s : samples_)
    if (s.device == device) out.push_back(s);
  return out;
}

// -------------------------------------------------------- CsvTimeseriesSink

struct CsvTimeseriesSink::Impl {
  util::CsvWriter writer;
  explicit Impl(const std::string& path)
      : writer(path, {"t", "device", "q", "h", "x", "drift", "penalty",
                      "kept_arrivals", "offloaded_arrivals", "edge_up",
                      "link_up", "edge_share_flops"}) {}
};

CsvTimeseriesSink::CsvTimeseriesSink(const std::string& path)
    : impl_(std::make_unique<Impl>(path)) {}

CsvTimeseriesSink::~CsvTimeseriesSink() = default;  // CsvWriter dtor closes

void CsvTimeseriesSink::append(const SlotSample& s) {
  impl_->writer.add_row({num(s.t), std::to_string(s.device), num(s.q),
                         num(s.h), num(s.x), num(s.drift), num(s.penalty),
                         std::to_string(s.kept_arrivals),
                         std::to_string(s.offloaded_arrivals),
                         s.edge_up ? "1" : "0", s.link_up ? "1" : "0",
                         num(s.edge_share_flops)});
}

void CsvTimeseriesSink::close() { impl_->writer.close(); }

// ------------------------------------------------------ JsonlTimeseriesSink

void slot_sample_to_json(const SlotSample& s, std::ostream& out) {
  out << "{\"t\":" << num(s.t) << ",\"device\":" << s.device
      << ",\"q\":" << num(s.q) << ",\"h\":" << num(s.h)
      << ",\"x\":" << num(s.x) << ",\"drift\":" << num(s.drift)
      << ",\"penalty\":" << num(s.penalty)
      << ",\"kept_arrivals\":" << s.kept_arrivals
      << ",\"offloaded_arrivals\":" << s.offloaded_arrivals
      << ",\"edge_up\":" << (s.edge_up ? "true" : "false")
      << ",\"link_up\":" << (s.link_up ? "true" : "false")
      << ",\"edge_share_flops\":" << num(s.edge_share_flops) << "}";
}

struct JsonlTimeseriesSink::Impl {
  std::string path;
  std::ofstream out;
  bool closed = false;
  explicit Impl(const std::string& p) : path(p), out(p) {
    if (!out)
      throw std::runtime_error("timeseries: cannot open " + p);
  }
};

JsonlTimeseriesSink::JsonlTimeseriesSink(const std::string& path)
    : impl_(std::make_unique<Impl>(path)) {}

JsonlTimeseriesSink::~JsonlTimeseriesSink() {
  try {
    close();
  } catch (const std::exception& e) {
    std::cerr << "timeseries: " << e.what() << "\n";
  }
}

void JsonlTimeseriesSink::append(const SlotSample& s) {
  if (impl_->closed)
    throw std::runtime_error("timeseries: append after close: " + impl_->path);
  slot_sample_to_json(s, impl_->out);
  impl_->out << "\n";
  if (!impl_->out.good())
    throw std::runtime_error("timeseries: write error on " + impl_->path);
}

void JsonlTimeseriesSink::close() {
  if (impl_->closed) return;
  impl_->closed = true;
  impl_->out.flush();
  const bool ok = impl_->out.good();
  impl_->out.close();
  if (!ok || impl_->out.fail())
    throw std::runtime_error("timeseries: write error on " + impl_->path);
  if (!util::fsync_path(impl_->path))
    throw std::runtime_error("timeseries: fsync failed for " + impl_->path);
}

}  // namespace leime::obs
