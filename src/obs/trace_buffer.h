// Task-lifecycle tracing: sim-time spans collected per resource track and
// exported in the Chrome trace-event format (load the file at
// chrome://tracing or https://ui.perfetto.dev).
//
// Second pillar of the observability layer (DESIGN.md §8). The simulator
// opens a span when a task enters a phase (local compute, uplink, edge
// block, cloud, return link, ...) and closes it when the phase's completion
// event fires; abandoned phases (retry, failover) are closed with an
// explicit outcome so the viewer shows where the time went. Timestamps are
// *simulated* seconds, rendered as microseconds in the trace file; wall
// clock never appears, so traces are bit-reproducible across hosts.
//
// Sampling is deterministic: TaskSampler keeps task `id` iff id % n == 0,
// so two runs of the same scenario trace exactly the same tasks.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace leime::obs {

/// Deterministic 1-in-n task sampler. n == 1 keeps everything; n == 0
/// keeps nothing (tracing disabled).
class TaskSampler {
 public:
  explicit TaskSampler(std::uint64_t n = 1) : n_(n) {}

  bool sampled(std::uint64_t task_id) const {
    return n_ > 0 && task_id % n_ == 0;
  }
  std::uint64_t every() const { return n_; }

 private:
  std::uint64_t n_;
};

/// One closed span: a task occupied `track` from t_begin to t_end.
struct SpanEvent {
  std::uint64_t task_id = 0;
  int device = -1;        ///< originating device, -1 if not device-bound
  std::string phase;      ///< e.g. "uplink", "edge_block1"
  std::string track;      ///< resource lane, e.g. "device0/cpu", "edge/gpu"
  std::string outcome;    ///< "ok", "retry", "failover", "timeout", ...
  double t_begin = 0.0;   ///< sim seconds
  double t_end = 0.0;     ///< sim seconds, >= t_begin
  int attempt = 0;        ///< task attempt number the span belongs to
};

/// Instant (zero-duration) marker, e.g. "edge_crash", "task_timeout".
struct MarkEvent {
  /// Sentinel for marks that are not task-related. A literal 0 would
  /// collide with the legitimate first task id, so "no task" is explicit.
  static constexpr std::uint64_t kNoTask = ~std::uint64_t{0};

  std::string name;
  std::string track;
  double t = 0.0;
  std::uint64_t task_id = kNoTask;

  bool has_task() const { return task_id != kNoTask; }
};

/// Collects spans/marks in memory and exports them once at the end of a
/// run. Not thread-safe (the DES is single-threaded per run).
class TraceBuffer {
 public:
  void add_span(SpanEvent span);
  void add_mark(MarkEvent mark);

  const std::vector<SpanEvent>& spans() const { return spans_; }
  const std::vector<MarkEvent>& marks() const { return marks_; }
  bool empty() const { return spans_.empty() && marks_.empty(); }

  /// Chrome trace-event JSON: one "X" (complete) event per span, one "i"
  /// (instant) event per mark, plus thread_name metadata so each resource
  /// track gets a named lane. Tracks are assigned tids by sorted track
  /// name, so the file is deterministic regardless of emission order.
  void write_chrome_trace(std::ostream& out) const;

  /// write_chrome_trace to `path`; flushes, fsyncs and throws
  /// std::runtime_error on write failure.
  void write_chrome_trace_file(const std::string& path) const;

 private:
  std::vector<SpanEvent> spans_;
  std::vector<MarkEvent> marks_;
};

}  // namespace leime::obs
