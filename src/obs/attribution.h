// Latency attribution: per-task wait-vs-service waterfalls (DESIGN.md §13).
//
// The paper's argument is a latency decomposition — TCT splits into local
// compute, wireless transmission and edge queue/compute terms (§III eqs.
// 4-9). The LatencyLedger reconstructs that decomposition from the spans the
// simulator already reports: every `on_phase_begin` carries the
// t_queued/exec_start split, so each stage contributes a *wait* (time queued
// behind other work) and a *service* (time actually being transmitted or
// computed). In topology mode the fabric additionally reports per-port hop
// spans, so a congested uplink attributes its queueing to the specific AP
// port rather than one opaque "uplink" number.
//
// Conservation contract: a task's spans are sequential (the DES never has a
// task occupy two resources at once — the duplex result leg overlaps *other*
// tasks' flows, not its own forward path), so
//
//     sum over stages (wait + service) + stall == t_complete - t_arrive
//
// holds exactly, where `stall` collects the gaps between spans (retry
// backoff, fault-detection timeouts). sim/observer_test enforces it to 1e-9
// for every completed task of a faulty topology run.
//
// This header is sim-free on purpose: everything is plain doubles/strings so
// the ledger can be unit-tested with synthetic spans and the summary can
// ride inside SimResult/RunRecord and merge in plan order.
#pragma once

#include <array>
#include <cstdint>
#include <iosfwd>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "obs/metrics.h"

namespace leime::obs {

/// The waterfall rows, in end-to-end order. kOther catches phases added
/// later without a mapping (they still conserve; they just are not split
/// further).
enum class AttrStage : std::uint8_t {
  kLocalCompute = 0,  ///< block 1 on the device CPU
  kUplink,            ///< raw input / tensor upload (device -> edge)
  kEdgeCompute,       ///< edge blocks 1-2 (wait = the edge queue)
  kCloudLink,         ///< edge -> cloud tensor forward
  kCloudCompute,      ///< block 3 on the cloud
  kResultReturn,      ///< result legs back to the device
  kOther,
};

inline constexpr int kAttrStageCount = 7;

/// Stable lowercase identifier ("local_compute", "uplink", ...). Used in
/// composed metric names, so it stays inside [a-z0-9_].
const char* attr_stage_name(AttrStage stage);

/// Maps a simulator phase name ("local_block1", "uplink", "edge_block2",
/// "cloud_block3", "return_link", ...) onto its stage; kOther for unknown.
AttrStage attr_stage_for_phase(std::string_view phase);

/// True for stages carried by network links — their spans are refined by
/// per-hop fabric reports in topology mode.
bool attr_stage_is_link(AttrStage stage);

/// The latency-bucket geometry shared by all attribution histograms
/// (matches the simulator's TCT histogram: microseconds to ~17 minutes).
HistogramOptions attr_latency_buckets();

/// Eq. 4-9 component latencies predicted at decision time for one device's
/// next task, captured alongside the chosen offload ratio x. Joined with
/// the realized ledger at completion to measure model drift.
struct PredictedComponents {
  double local_wait = 0.0;     ///< Q_i * mu1 / F_d (eq. 5 backlog drain)
  double local_service = 0.0;  ///< mu1 / F_d (eq. 4)
  double uplink = 0.0;         ///< d0/B + L + backlog/B (eq. 7)
  double edge_wait = 0.0;      ///< H_i * mu1 / F_e1 (eq. 9 edge queue)
  double edge_service = 0.0;   ///< mu1 / F_e1 (eq. 8)
  double x = 0.0;              ///< the offload ratio the prediction assumed
  bool valid = false;          ///< a decision has been captured
};

/// Calibration components, in the order they appear in tables/metrics.
enum class CalibComponent : std::uint8_t {
  kLocalWait = 0,
  kLocalService,
  kUplink,
  kEdgeWait,
  kEdgeService,
};

inline constexpr int kCalibComponentCount = 5;

const char* calib_component_name(CalibComponent comp);

/// One stage of a task's waterfall.
struct StageBreakdown {
  double wait = 0.0;     ///< queued behind other work
  double service = 0.0;  ///< actually computing / transmitting
};

/// One fabric hop of a link stage (topology mode only).
struct HopSpan {
  std::string port;  ///< router port name, e.g. "ap0_edge0"
  double wait = 0.0;
  double service = 0.0;
};

/// A completed task's assembled waterfall.
struct TaskWaterfall {
  std::uint64_t task = 0;
  int device = -1;
  std::size_t cls = 0;  ///< device-class index (RecordingObserver's table)
  double t_arrive = 0.0;
  double t_complete = 0.0;
  int block = 0;
  int retries = 0;
  bool offloaded = false;
  bool counted = false;  ///< completed after warmup
  std::array<StageBreakdown, kAttrStageCount> stages{};
  std::vector<HopSpan> hops;  ///< per-port legs, in traversal order
  double stall = 0.0;         ///< e2e minus the sum of recorded spans
  double e2e = 0.0;           ///< t_complete - t_arrive
  PredictedComponents pred;

  /// Signed calibration error (actual - predicted) for one component, or
  /// false when the component does not apply to this task (e.g. edge
  /// components of a task that ran locally) or no prediction was captured.
  /// Only clean first-attempt tasks calibrate (retries == 0, block == 1):
  /// the eq. 4-9 model predicts the first service attempt, not failover.
  bool calibration_error(CalibComponent comp, double* err) const;
};

/// Reassembles waterfalls from the observer's span stream. One entry per
/// in-flight task; entries leave at completion (assembled) or when parked
/// (dropped — a parked task has no end-to-end latency to attribute).
class LatencyLedger {
 public:
  /// Registers a generated task. `pred` is the decision-time prediction for
  /// the task's device (zero/invalid when no decision preceded it).
  void on_generated(std::uint64_t task, int device, std::size_t cls, double t,
                    int block, bool offloaded, const PredictedComponents& pred);

  /// A phase span opened. An already-open span is closed defensively at
  /// `t_queued` first (its elapsed time still counts toward its stage).
  void on_phase_begin(std::uint64_t task, std::string_view phase,
                      double t_queued, double exec_start);

  /// The open span (if any) closed at `t` — normal end or abort. Aborted
  /// attempts still accumulate: the time was really spent.
  void on_phase_end(std::uint64_t task, double t);

  /// A fabric hop of the task's current link span finished. Hops partition
  /// the span exactly (hop k ends where hop k+1 queues), so the stage's
  /// wait/service split is refined from the hop reports when present.
  void on_hop(std::uint64_t task, std::string_view port, double t_queued,
              double exec_start, double t_end);

  /// Drops the entry (terminal-pending). Returns true when it existed.
  bool on_parked(std::uint64_t task);

  /// Assembles and removes the entry into `*out`. Returns false when the
  /// task was never registered. `retries`/`counted` come from the
  /// completion hook (unknown at generation time).
  bool on_complete(std::uint64_t task, double t_complete, int retries,
                   bool counted, TaskWaterfall* out);

  std::size_t open_tasks() const { return entries_.size(); }
  void clear() { entries_.clear(); }

 private:
  struct Entry {
    int device = -1;
    std::size_t cls = 0;
    double t_arrive = 0.0;
    int block = 0;
    bool offloaded = false;
    PredictedComponents pred;
    std::array<StageBreakdown, kAttrStageCount> stages{};
    std::vector<HopSpan> hops;
    // Open-span state.
    bool open = false;
    AttrStage stage = AttrStage::kOther;
    double t_queued = 0.0;
    double exec_start = 0.0;
    double hop_wait = 0.0;  ///< sum of hop waits since the span opened
    bool saw_hops = false;
  };

  void close_open(Entry& e, double t);

  std::map<std::uint64_t, Entry> entries_;
};

/// Per-stage aggregate: totals plus log-bucket wait/service histograms.
struct StageAccum {
  std::uint64_t count = 0;  ///< tasks that touched this stage
  double wait = 0.0;
  double service = 0.0;
  Histogram wait_hist{attr_latency_buckets()};
  Histogram service_hist{attr_latency_buckets()};

  void add(const StageBreakdown& s);
  void merge(const StageAccum& other);
};

/// Plan-order-mergeable run summary: per-device-class waterfalls, per-port
/// hop totals and per-component calibration errors. Rides on SimResult /
/// RunRecord; `merge` is deterministic for a fixed merge order (the runtime
/// merges cells in plan order, like obs::Snapshot).
struct AttributionSummary {
  bool active = false;       ///< attribution was enabled for the run
  std::uint64_t tasks = 0;   ///< waterfalls assembled (completed tasks)
  std::uint64_t incomplete = 0;  ///< parked or still open at run end

  struct ClassAccum {
    std::string name;
    std::uint64_t tasks = 0;
    std::array<StageAccum, kAttrStageCount> stages{};
    Histogram e2e{attr_latency_buckets()};
    Histogram stall{attr_latency_buckets()};
  };
  std::vector<ClassAccum> classes;  ///< sorted by class name

  struct PortAccum {
    std::uint64_t spans = 0;
    double wait = 0.0;
    double service = 0.0;
  };
  std::vector<std::pair<std::string, PortAccum>> ports;  ///< sorted by name

  struct CalibrationAccum {
    std::uint64_t count = 0;
    double err_sum = 0.0;      ///< signed: actual - predicted
    double abs_err_sum = 0.0;
    double max_abs_err = 0.0;
  };
  std::array<CalibrationAccum, kCalibComponentCount> calibration{};
  std::uint64_t calibrated_tasks = 0;

  bool empty() const { return !active; }

  /// Folds one waterfall in. `cls_name` must be the class's stable name —
  /// the summary keys classes by name so shards with different class
  /// tables still merge correctly.
  void add(const TaskWaterfall& wf, const std::string& cls_name);

  void merge(const AttributionSummary& other);

  /// One JSON object (single line, no trailing newline): deterministic
  /// key order, shortest-round-trip doubles — the representation sinks
  /// embed in runtime JSONL.
  void to_json(std::ostream& out) const;
};

/// One JSON object per waterfall, one per line ("where did the millisecond
/// go" — consumed by examples/trace_viewer --waterfall).
void write_waterfalls_jsonl(std::ostream& out,
                            const std::vector<TaskWaterfall>& rows,
                            const std::vector<std::string>& class_names);

/// Predicted-vs-actual calibration table, one CSV row per completed task
/// that captured a prediction (header included).
void write_calibration_csv(std::ostream& out,
                           const std::vector<TaskWaterfall>& rows,
                           const std::vector<std::string>& class_names);

}  // namespace leime::obs
