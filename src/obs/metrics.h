// Metrics registry: counters, gauges and fixed-bucket log-scale histograms
// with deterministic snapshot/merge semantics.
//
// The registry is the first pillar of the observability layer (DESIGN.md
// §8): simulator and runtime code register named instruments once and bump
// them on the hot path; a Snapshot freezes the registry into plain data
// that can ride inside a SimResult/RunRecord, merge with other shards, and
// export as Prometheus text or JSONL.
//
// Determinism contract: a Snapshot is a pure function of the sequence of
// instrument updates, and Snapshot::merge is associative over shards as
// long as they are merged in a fixed order (the runtime merges per-cell
// snapshots in plan order, so 1 and 4 executor threads export identical
// text). Histograms use exact integer bucket counts plus a
// util::RunningStats moment accumulator whose parallel-merge is the same
// bit pattern for a fixed merge order.
//
// Metric names must match ^leime_[a-z0-9_]+$ (enforced at registration,
// linted in CI by scripts/lint_metric_names.sh).
#pragma once

#include <cstdint>
#include <iosfwd>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "util/stats.h"

namespace leime::obs {

/// True iff `name` matches ^leime_[a-z0-9_]+$.
bool valid_metric_name(const std::string& name);

/// Monotone event counter.
class Counter {
 public:
  void inc(std::uint64_t n = 1) { value_ += n; }
  std::uint64_t value() const { return value_; }

 private:
  std::uint64_t value_ = 0;
};

/// Last-value instrument (e.g. "is the edge up right now").
class Gauge {
 public:
  void set(double v) { value_ = v; }
  double value() const { return value_; }

 private:
  double value_ = 0.0;
};

/// Log-scale histogram geometry: `buckets` geometric buckets spanning
/// [min_bound, max_bound), plus an underflow bucket (everything below
/// min_bound, including negatives) and an overflow bucket.
struct HistogramOptions {
  double min_bound = 1e-6;
  double max_bound = 1e3;
  int buckets = 54;  ///< ~2.6 buckets per decade over 9 decades

  friend bool operator==(const HistogramOptions&,
                         const HistogramOptions&) = default;
};

/// Fixed-bucket log-scale histogram. Exact count/mean/min/max/sum via the
/// embedded RunningStats; p50/p95/p99 estimated from the bucket counts
/// (geometric interpolation inside the containing bucket, so the estimate
/// is within one bucket width of the true quantile).
class Histogram {
 public:
  explicit Histogram(HistogramOptions opts = {});

  void observe(double v);

  const util::RunningStats& stats() const { return stats_; }
  const HistogramOptions& options() const { return opts_; }

  /// Bucket counts: [0] = underflow, [1..buckets] = geometric buckets,
  /// [buckets+1] = overflow.
  const std::vector<std::uint64_t>& counts() const { return counts_; }

  /// Upper bound of geometric bucket i (0-based); min_bound * growth^(i+1).
  double upper_bound(int bucket) const;

  /// Quantile estimate for q in [0,1]; 0 when empty. Exact at the extremes
  /// (min/max come from RunningStats); interpolated inside buckets
  /// otherwise.
  double quantile(double q) const;

  /// Merges a shard with identical options (throws otherwise).
  void merge(const Histogram& other);

  /// Folds frozen sample data back in (counts must match the geometry).
  void absorb(const std::vector<std::uint64_t>& counts,
              const util::RunningStats& stats);

 private:
  HistogramOptions opts_;
  double log_min_;
  double log_growth_;
  std::vector<std::uint64_t> counts_;
  util::RunningStats stats_;
};

/// A registry frozen into plain data, ordered by metric name. Safe to copy
/// across threads and into results.
struct Snapshot {
  struct CounterSample {
    std::string name;
    std::string help;
    std::uint64_t value = 0;
  };
  struct GaugeSample {
    std::string name;
    std::string help;
    double value = 0.0;
  };
  struct HistogramSample {
    std::string name;
    std::string help;
    HistogramOptions options;
    std::vector<std::uint64_t> counts;  ///< underflow + buckets + overflow
    /// Full moment accumulator (not just derived values) so merging
    /// snapshots reproduces the exact bit pattern of merging live shards.
    util::RunningStats stats;
    double p50 = 0.0;
    double p95 = 0.0;
    double p99 = 0.0;
  };

  std::vector<CounterSample> counters;  ///< sorted by name
  std::vector<GaugeSample> gauges;      ///< sorted by name
  std::vector<HistogramSample> histograms;  ///< sorted by name

  bool empty() const {
    return counters.empty() && gauges.empty() && histograms.empty();
  }

  /// Merges `other` into this snapshot: counters add, histogram buckets and
  /// moments combine, gauges take `other`'s value (last-merged wins, which
  /// is deterministic for a fixed merge order). Metrics present in only one
  /// side are kept. Throws on histogram geometry mismatch.
  void merge(const Snapshot& other);

  /// Prometheus text exposition (HELP/TYPE lines, cumulative `le` buckets,
  /// _sum/_count). Deterministic: shortest-round-trip doubles, name order.
  void to_prometheus(std::ostream& out) const;

  /// One self-describing JSON object per metric, one per line.
  void to_jsonl(std::ostream& out) const;
};

/// Name -> instrument registry. Registration returns a stable reference;
/// re-registering the same name returns the existing instrument (kind and,
/// for histograms, geometry must match — std::invalid_argument otherwise).
/// Not thread-safe: shard one registry per thread and merge snapshots.
class MetricsRegistry {
 public:
  Counter& counter(const std::string& name, const std::string& help = "");
  Gauge& gauge(const std::string& name, const std::string& help = "");
  Histogram& histogram(const std::string& name, const std::string& help = "",
                       HistogramOptions opts = {});

  Snapshot snapshot() const;
  bool empty() const {
    return counters_.empty() && gauges_.empty() && histograms_.empty();
  }

  /// Folds a snapshot's values back into this registry's instruments
  /// (creating them as needed) — how the executor's per-thread shards and
  /// per-cell results accumulate into one caller-owned registry.
  void absorb(const Snapshot& snap);

 private:
  struct Named {
    std::string help;
  };
  std::map<std::string, std::pair<Named, Counter>> counters_;
  std::map<std::string, std::pair<Named, Gauge>> gauges_;
  std::map<std::string, std::pair<Named, std::unique_ptr<Histogram>>>
      histograms_;
};

/// Quantile estimate from frozen histogram data (the same algorithm
/// Histogram::quantile uses on live buckets).
double histogram_quantile(const HistogramOptions& opts,
                          const std::vector<std::uint64_t>& counts,
                          const util::RunningStats& stats, double q);

/// Writes snap.to_prometheus to `path`; flushes, fsyncs and throws
/// std::runtime_error on write failure.
void write_prometheus_file(const std::string& path, const Snapshot& snap);

}  // namespace leime::obs
