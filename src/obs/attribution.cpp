#include "obs/attribution.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <ostream>
#include <sstream>

namespace leime::obs {

namespace {

// Shortest-round-trip double formatting, matching the other deterministic
// writers (metrics, trace, runtime sinks).
std::string num(double v) {
  std::ostringstream os;
  os.precision(std::numeric_limits<double>::max_digits10);
  os << v;
  return os.str();
}

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default: out += c;
    }
  }
  return out;
}

const char* kStageNames[kAttrStageCount] = {
    "local_compute", "uplink",        "edge_compute", "cloud_link",
    "cloud_compute", "result_return", "other",
};

const char* kCalibNames[kCalibComponentCount] = {
    "local_wait", "local_service", "uplink", "edge_wait", "edge_service",
};

}  // namespace

const char* attr_stage_name(AttrStage stage) {
  return kStageNames[static_cast<std::size_t>(stage)];
}

AttrStage attr_stage_for_phase(std::string_view phase) {
  if (phase == "local_block1") return AttrStage::kLocalCompute;
  if (phase == "uplink") return AttrStage::kUplink;
  if (phase == "edge_block1" || phase == "edge_block2")
    return AttrStage::kEdgeCompute;
  if (phase == "edge_cloud_link") return AttrStage::kCloudLink;
  if (phase == "cloud_block3") return AttrStage::kCloudCompute;
  if (phase == "return_link" || phase == "cloud_return_link")
    return AttrStage::kResultReturn;
  return AttrStage::kOther;
}

bool attr_stage_is_link(AttrStage stage) {
  return stage == AttrStage::kUplink || stage == AttrStage::kCloudLink ||
         stage == AttrStage::kResultReturn;
}

HistogramOptions attr_latency_buckets() {
  return HistogramOptions{1e-6, 1e3, 54};
}

const char* calib_component_name(CalibComponent comp) {
  return kCalibNames[static_cast<std::size_t>(comp)];
}

bool TaskWaterfall::calibration_error(CalibComponent comp, double* err) const {
  // The eq. 4-9 model predicts the first, clean service attempt: tasks that
  // timed out and retried, or exited deeper than block 1, spent time the
  // model never claimed to predict.
  if (!pred.valid || retries != 0 || block != 1) return false;
  const auto& local = stages[static_cast<std::size_t>(AttrStage::kLocalCompute)];
  const auto& up = stages[static_cast<std::size_t>(AttrStage::kUplink)];
  const auto& edge = stages[static_cast<std::size_t>(AttrStage::kEdgeCompute)];
  switch (comp) {
    case CalibComponent::kLocalWait:
      if (offloaded) return false;
      *err = local.wait - pred.local_wait;
      return true;
    case CalibComponent::kLocalService:
      if (offloaded) return false;
      *err = local.service - pred.local_service;
      return true;
    case CalibComponent::kUplink:
      if (!offloaded) return false;
      *err = (up.wait + up.service) - pred.uplink;
      return true;
    case CalibComponent::kEdgeWait:
      if (!offloaded) return false;
      *err = edge.wait - pred.edge_wait;
      return true;
    case CalibComponent::kEdgeService:
      if (!offloaded) return false;
      *err = edge.service - pred.edge_service;
      return true;
  }
  return false;
}

// ---------------------------------------------------------------------------
// LatencyLedger

void LatencyLedger::on_generated(std::uint64_t task, int device,
                                 std::size_t cls, double t, int block,
                                 bool offloaded,
                                 const PredictedComponents& pred) {
  Entry& e = entries_[task];
  e.device = device;
  e.cls = cls;
  e.t_arrive = t;
  e.block = block;
  e.offloaded = offloaded;
  e.pred = pred;
}

void LatencyLedger::close_open(Entry& e, double t) {
  if (!e.open) return;
  e.open = false;
  const double dur = std::max(0.0, t - e.t_queued);
  auto& s = e.stages[static_cast<std::size_t>(e.stage)];
  double wait;
  if (e.saw_hops && attr_stage_is_link(e.stage)) {
    // Hops partition the span exactly; their waits are the fine-grained
    // truth for fabric legs (the span-level exec_start is the first hop's).
    wait = std::min(e.hop_wait, dur);
  } else {
    wait = std::min(std::max(0.0, e.exec_start - e.t_queued), dur);
  }
  s.wait += wait;
  s.service += dur - wait;
}

void LatencyLedger::on_phase_begin(std::uint64_t task, std::string_view phase,
                                   double t_queued, double exec_start) {
  auto it = entries_.find(task);
  if (it == entries_.end()) return;
  Entry& e = it->second;
  close_open(e, t_queued);
  e.open = true;
  e.stage = attr_stage_for_phase(phase);
  e.t_queued = t_queued;
  e.exec_start = std::max(t_queued, exec_start);
  e.hop_wait = 0.0;
  e.saw_hops = false;
}

void LatencyLedger::on_phase_end(std::uint64_t task, double t) {
  auto it = entries_.find(task);
  if (it == entries_.end()) return;
  close_open(it->second, t);
}

void LatencyLedger::on_hop(std::uint64_t task, std::string_view port,
                           double t_queued, double exec_start, double t_end) {
  auto it = entries_.find(task);
  if (it == entries_.end()) return;
  Entry& e = it->second;
  if (!e.open || !attr_stage_is_link(e.stage)) return;
  HopSpan hop;
  hop.port.assign(port.data(), port.size());
  hop.wait = std::max(0.0, exec_start - t_queued);
  hop.service = std::max(0.0, t_end - std::max(t_queued, exec_start));
  e.hop_wait += hop.wait;
  e.saw_hops = true;
  e.hops.push_back(std::move(hop));
}

bool LatencyLedger::on_parked(std::uint64_t task) {
  return entries_.erase(task) > 0;
}

bool LatencyLedger::on_complete(std::uint64_t task, double t_complete,
                                int retries, bool counted, TaskWaterfall* out) {
  auto it = entries_.find(task);
  if (it == entries_.end()) return false;
  Entry& e = it->second;
  close_open(e, t_complete);
  out->task = task;
  out->device = e.device;
  out->cls = e.cls;
  out->t_arrive = e.t_arrive;
  out->t_complete = t_complete;
  out->block = e.block;
  out->retries = retries;
  out->offloaded = e.offloaded;
  out->counted = counted;
  out->stages = e.stages;
  out->hops = std::move(e.hops);
  out->pred = e.pred;
  out->e2e = t_complete - e.t_arrive;
  double spans = 0.0;
  for (const auto& s : out->stages) spans += s.wait + s.service;
  out->stall = out->e2e - spans;
  entries_.erase(it);
  return true;
}

// ---------------------------------------------------------------------------
// AttributionSummary

void StageAccum::add(const StageBreakdown& s) {
  ++count;
  wait += s.wait;
  service += s.service;
  wait_hist.observe(s.wait);
  service_hist.observe(s.service);
}

void StageAccum::merge(const StageAccum& other) {
  count += other.count;
  wait += other.wait;
  service += other.service;
  wait_hist.merge(other.wait_hist);
  service_hist.merge(other.service_hist);
}

void AttributionSummary::add(const TaskWaterfall& wf,
                             const std::string& cls_name) {
  active = true;
  ++tasks;
  auto cit = std::lower_bound(
      classes.begin(), classes.end(), cls_name,
      [](const ClassAccum& c, const std::string& n) { return c.name < n; });
  if (cit == classes.end() || cit->name != cls_name) {
    cit = classes.insert(cit, ClassAccum{});
    cit->name = cls_name;
  }
  ClassAccum& c = *cit;
  ++c.tasks;
  for (int i = 0; i < kAttrStageCount; ++i) {
    const auto& s = wf.stages[static_cast<std::size_t>(i)];
    if (s.wait == 0.0 && s.service == 0.0) continue;
    c.stages[static_cast<std::size_t>(i)].add(s);
  }
  c.e2e.observe(wf.e2e);
  c.stall.observe(wf.stall);
  for (const auto& hop : wf.hops) {
    auto pit = std::lower_bound(
        ports.begin(), ports.end(), hop.port,
        [](const std::pair<std::string, PortAccum>& p, const std::string& n) {
          return p.first < n;
        });
    if (pit == ports.end() || pit->first != hop.port)
      pit = ports.insert(pit, {hop.port, PortAccum{}});
    ++pit->second.spans;
    pit->second.wait += hop.wait;
    pit->second.service += hop.service;
  }
  bool any = false;
  for (int ci = 0; ci < kCalibComponentCount; ++ci) {
    double err = 0.0;
    if (!wf.calibration_error(static_cast<CalibComponent>(ci), &err)) continue;
    any = true;
    auto& ca = calibration[static_cast<std::size_t>(ci)];
    ++ca.count;
    ca.err_sum += err;
    ca.abs_err_sum += std::abs(err);
    ca.max_abs_err = std::max(ca.max_abs_err, std::abs(err));
  }
  if (any) ++calibrated_tasks;
}

void AttributionSummary::merge(const AttributionSummary& other) {
  if (!other.active) return;
  active = true;
  tasks += other.tasks;
  incomplete += other.incomplete;
  calibrated_tasks += other.calibrated_tasks;
  for (const auto& oc : other.classes) {
    auto cit = std::lower_bound(
        classes.begin(), classes.end(), oc.name,
        [](const ClassAccum& c, const std::string& n) { return c.name < n; });
    if (cit == classes.end() || cit->name != oc.name) {
      cit = classes.insert(cit, ClassAccum{});
      cit->name = oc.name;
    }
    cit->tasks += oc.tasks;
    for (int i = 0; i < kAttrStageCount; ++i)
      cit->stages[static_cast<std::size_t>(i)].merge(
          oc.stages[static_cast<std::size_t>(i)]);
    cit->e2e.merge(oc.e2e);
    cit->stall.merge(oc.stall);
  }
  for (const auto& op : other.ports) {
    auto pit = std::lower_bound(
        ports.begin(), ports.end(), op.first,
        [](const std::pair<std::string, PortAccum>& p, const std::string& n) {
          return p.first < n;
        });
    if (pit == ports.end() || pit->first != op.first)
      pit = ports.insert(pit, {op.first, PortAccum{}});
    pit->second.spans += op.second.spans;
    pit->second.wait += op.second.wait;
    pit->second.service += op.second.service;
  }
  for (int ci = 0; ci < kCalibComponentCount; ++ci) {
    auto& ca = calibration[static_cast<std::size_t>(ci)];
    const auto& co = other.calibration[static_cast<std::size_t>(ci)];
    ca.count += co.count;
    ca.err_sum += co.err_sum;
    ca.abs_err_sum += co.abs_err_sum;
    ca.max_abs_err = std::max(ca.max_abs_err, co.max_abs_err);
  }
}

void AttributionSummary::to_json(std::ostream& out) const {
  out << "{\"tasks\":" << tasks << ",\"incomplete\":" << incomplete
      << ",\"calibrated\":" << calibrated_tasks << ",\"classes\":[";
  bool first_c = true;
  for (const auto& c : classes) {
    if (!first_c) out << ',';
    first_c = false;
    out << "{\"name\":\"" << json_escape(c.name) << "\",\"tasks\":" << c.tasks
        << ",\"e2e_p50\":" << num(c.e2e.quantile(0.50))
        << ",\"e2e_p95\":" << num(c.e2e.quantile(0.95))
        << ",\"stall_mean\":" << num(c.stall.stats().mean()) << ",\"stages\":[";
    bool first_s = true;
    for (int i = 0; i < kAttrStageCount; ++i) {
      const auto& s = c.stages[static_cast<std::size_t>(i)];
      if (s.count == 0) continue;
      if (!first_s) out << ',';
      first_s = false;
      out << "{\"stage\":\"" << kStageNames[i] << "\",\"count\":" << s.count
          << ",\"wait\":" << num(s.wait) << ",\"service\":" << num(s.service)
          << ",\"wait_p95\":" << num(s.wait_hist.quantile(0.95))
          << ",\"service_p95\":" << num(s.service_hist.quantile(0.95)) << '}';
    }
    out << "]}";
  }
  out << "],\"ports\":[";
  bool first_p = true;
  for (const auto& [port, pa] : ports) {
    if (!first_p) out << ',';
    first_p = false;
    out << "{\"port\":\"" << json_escape(port) << "\",\"spans\":" << pa.spans
        << ",\"wait\":" << num(pa.wait) << ",\"service\":" << num(pa.service)
        << '}';
  }
  out << "],\"calibration\":[";
  bool first_k = true;
  for (int ci = 0; ci < kCalibComponentCount; ++ci) {
    const auto& ca = calibration[static_cast<std::size_t>(ci)];
    if (ca.count == 0) continue;
    if (!first_k) out << ',';
    first_k = false;
    out << "{\"component\":\"" << kCalibNames[ci] << "\",\"count\":" << ca.count
        << ",\"err_sum\":" << num(ca.err_sum)
        << ",\"abs_err_sum\":" << num(ca.abs_err_sum)
        << ",\"max_abs_err\":" << num(ca.max_abs_err) << '}';
  }
  out << "]}";
}

// ---------------------------------------------------------------------------
// File formats

namespace {

const std::string& cls_name_of(const TaskWaterfall& wf,
                               const std::vector<std::string>& class_names) {
  static const std::string kDefault = "default";
  if (wf.cls < class_names.size()) return class_names[wf.cls];
  return kDefault;
}

}  // namespace

void write_waterfalls_jsonl(std::ostream& out,
                            const std::vector<TaskWaterfall>& rows,
                            const std::vector<std::string>& class_names) {
  for (const auto& wf : rows) {
    out << "{\"task\":" << wf.task << ",\"class\":\""
        << json_escape(cls_name_of(wf, class_names))
        << "\",\"device\":" << wf.device << ",\"t_arrive\":"
        << num(wf.t_arrive) << ",\"t_complete\":" << num(wf.t_complete)
        << ",\"e2e\":" << num(wf.e2e) << ",\"block\":" << wf.block
        << ",\"retries\":" << wf.retries
        << ",\"offloaded\":" << (wf.offloaded ? "true" : "false")
        << ",\"counted\":" << (wf.counted ? "true" : "false")
        << ",\"stall\":" << num(wf.stall) << ",\"stages\":{";
    bool first = true;
    for (int i = 0; i < kAttrStageCount; ++i) {
      const auto& s = wf.stages[static_cast<std::size_t>(i)];
      if (s.wait == 0.0 && s.service == 0.0) continue;
      if (!first) out << ',';
      first = false;
      out << '"' << kStageNames[i] << "\":{\"wait\":" << num(s.wait)
          << ",\"service\":" << num(s.service) << '}';
    }
    out << '}';
    if (!wf.hops.empty()) {
      out << ",\"hops\":[";
      for (std::size_t i = 0; i < wf.hops.size(); ++i) {
        if (i) out << ',';
        out << "{\"port\":\"" << json_escape(wf.hops[i].port)
            << "\",\"wait\":" << num(wf.hops[i].wait)
            << ",\"service\":" << num(wf.hops[i].service) << '}';
      }
      out << ']';
    }
    if (wf.pred.valid) {
      out << ",\"pred\":{\"local_wait\":" << num(wf.pred.local_wait)
          << ",\"local_service\":" << num(wf.pred.local_service)
          << ",\"uplink\":" << num(wf.pred.uplink)
          << ",\"edge_wait\":" << num(wf.pred.edge_wait)
          << ",\"edge_service\":" << num(wf.pred.edge_service)
          << ",\"x\":" << num(wf.pred.x) << '}';
    }
    out << "}\n";
  }
}

void write_calibration_csv(std::ostream& out,
                           const std::vector<TaskWaterfall>& rows,
                           const std::vector<std::string>& class_names) {
  out << "task,class,device,block,retries,offloaded,x";
  for (int ci = 0; ci < kCalibComponentCount; ++ci) {
    out << ",pred_" << kCalibNames[ci] << ",actual_" << kCalibNames[ci]
        << ",err_" << kCalibNames[ci];
  }
  out << '\n';
  for (const auto& wf : rows) {
    if (!wf.pred.valid) continue;
    out << wf.task << ',' << cls_name_of(wf, class_names) << ',' << wf.device
        << ',' << wf.block << ',' << wf.retries << ','
        << (wf.offloaded ? 1 : 0) << ',' << num(wf.pred.x);
    const double preds[kCalibComponentCount] = {
        wf.pred.local_wait, wf.pred.local_service, wf.pred.uplink,
        wf.pred.edge_wait, wf.pred.edge_service};
    const auto& local =
        wf.stages[static_cast<std::size_t>(AttrStage::kLocalCompute)];
    const auto& up = wf.stages[static_cast<std::size_t>(AttrStage::kUplink)];
    const auto& edge =
        wf.stages[static_cast<std::size_t>(AttrStage::kEdgeCompute)];
    const double actuals[kCalibComponentCount] = {
        local.wait, local.service, up.wait + up.service, edge.wait,
        edge.service};
    for (int ci = 0; ci < kCalibComponentCount; ++ci) {
      out << ',' << num(preds[ci]) << ',' << num(actuals[ci]) << ',';
      double err = 0.0;
      if (wf.calibration_error(static_cast<CalibComponent>(ci), &err))
        out << num(err);
    }
    out << '\n';
  }
}

}  // namespace leime::obs
