#include "obs/provenance.h"

#include <algorithm>
#include <fstream>
#include <limits>
#include <ostream>
#include <sstream>
#include <stdexcept>

#include "util/csv.h"

namespace leime::obs {

namespace {

std::string num(double v) {
  std::ostringstream os;
  os.precision(std::numeric_limits<double>::max_digits10);
  os << v;
  return os.str();
}

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default: out += c;
    }
  }
  return out;
}

void record_to_json(std::ostream& out, const DecisionRecord& r) {
  out << "{\"type\":\"decision\",\"seq\":" << r.seq << ",\"t\":" << num(r.t)
      << ",\"device\":" << r.device << ",\"class\":\"" << json_escape(r.cls)
      << "\",\"kind\":\"" << decision_kind_name(r.kind) << "\",\"path\":\""
      << decision_path_name(r.path) << "\",\"bandwidth\":" << num(r.bandwidth)
      << ",\"edge_flops\":" << num(r.edge_flops)
      << ",\"queue_device\":" << num(r.queue_device)
      << ",\"queue_edge\":" << num(r.queue_edge) << ",\"e1\":" << r.e1
      << ",\"e2\":" << r.e2 << ",\"e3\":" << r.e3 << ",\"x\":" << num(r.x)
      << ",\"cost\":" << num(r.cost) << ",\"explored\":" << r.explored
      << ",\"pruned\":" << r.pruned << ",\"margin\":";
  if (r.margin_valid)
    out << num(r.margin);
  else
    out << "null";
  out << ",\"oracle_cost\":";
  if (r.oracle)
    out << num(r.oracle_cost) << ",\"regret\":" << num(r.regret);
  else
    out << "null,\"regret\":null";
  out << '}';
}

}  // namespace

void ProvenanceConfig::validate() const {
  if (!enabled()) return;
  if (ring_capacity == 0)
    throw std::invalid_argument("provenance: ring_capacity must be positive");
}

const char* decision_kind_name(DecisionKind kind) {
  switch (kind) {
    case DecisionKind::kExitSetting: return "exit_setting";
    case DecisionKind::kOffload: return "offload";
  }
  return "unknown";
}

const char* decision_path_name(DecisionPath path) {
  switch (path) {
    case DecisionPath::kCold: return "cold";
    case DecisionPath::kMemoHit: return "memo_hit";
    case DecisionPath::kWarmStart: return "warm_start";
    case DecisionPath::kDirect: return "direct";
    case DecisionPath::kBatch: return "batch";
  }
  return "unknown";
}

HistogramOptions regret_buckets() { return {1e-9, 1e3, 48}; }

void ProvenanceSummary::merge(const ProvenanceSummary& other) {
  if (!other.active) return;
  active = true;
  decisions += other.decisions;
  sampled += other.sampled;
  oracle_runs += other.oracle_runs;
  ring_evictions += other.ring_evictions;
  dumps += other.dumps;
  for (int k = 0; k < kDecisionKindCount; ++k) {
    kinds[static_cast<std::size_t>(k)] +=
        other.kinds[static_cast<std::size_t>(k)];
    kind_regret[static_cast<std::size_t>(k)].merge(
        other.kind_regret[static_cast<std::size_t>(k)]);
  }
  for (int p = 0; p < kDecisionPathCount; ++p)
    paths[static_cast<std::size_t>(p)] +=
        other.paths[static_cast<std::size_t>(p)];
  for (const auto& oc : other.classes) {
    auto it = std::lower_bound(
        classes.begin(), classes.end(), oc.name,
        [](const ClassAccum& c, const std::string& n) { return c.name < n; });
    if (it == classes.end() || it->name != oc.name) {
      it = classes.insert(it, ClassAccum{});
      it->name = oc.name;
    }
    it->sampled += oc.sampled;
    it->oracle_runs += oc.oracle_runs;
    it->regret_sum += oc.regret_sum;
    it->max_regret = std::max(it->max_regret, oc.max_regret);
    it->regret.merge(oc.regret);
  }
}

void ProvenanceSummary::to_json(std::ostream& out) const {
  out << "{\"decisions\":" << decisions << ",\"sampled\":" << sampled
      << ",\"oracle_runs\":" << oracle_runs
      << ",\"ring_evictions\":" << ring_evictions << ",\"dumps\":" << dumps
      << ",\"kinds\":{";
  for (int k = 0; k < kDecisionKindCount; ++k) {
    if (k) out << ',';
    const auto idx = static_cast<std::size_t>(k);
    const Histogram& h = kind_regret[idx];
    out << '"' << decision_kind_name(static_cast<DecisionKind>(k))
        << "\":{\"sampled\":" << kinds[idx]
        << ",\"regret_count\":" << h.stats().count()
        << ",\"regret_sum\":" << num(h.stats().sum())
        << ",\"regret_max\":" << num(h.stats().max())
        << ",\"regret_p95\":" << num(h.quantile(0.95)) << '}';
  }
  out << "},\"paths\":{";
  for (int p = 0; p < kDecisionPathCount; ++p) {
    if (p) out << ',';
    out << '"' << decision_path_name(static_cast<DecisionPath>(p))
        << "\":" << paths[static_cast<std::size_t>(p)];
  }
  out << "},\"classes\":[";
  bool first = true;
  for (const auto& c : classes) {
    if (!first) out << ',';
    first = false;
    out << "{\"name\":\"" << json_escape(c.name)
        << "\",\"sampled\":" << c.sampled
        << ",\"oracle_runs\":" << c.oracle_runs
        << ",\"regret_sum\":" << num(c.regret_sum)
        << ",\"regret_max\":" << num(c.max_regret)
        << ",\"regret_p95\":" << num(c.regret.quantile(0.95)) << '}';
  }
  out << "]}";
}

ProvenanceRecorder::ProvenanceRecorder(ProvenanceConfig config)
    : cfg_(std::move(config)), sample_n_(cfg_.effective_sample_n()) {
  cfg_.validate();
  sum_.active = cfg_.enabled();
}

bool ProvenanceRecorder::begin_decision(std::uint64_t* seq, bool* oracle) {
  std::lock_guard<std::mutex> lock(mu_);
  const std::uint64_t s = next_seq_++;
  if (seq) *seq = s;
  ++sum_.decisions;
  if (sample_n_ == 0 || s % sample_n_ != 0) {
    if (oracle) *oracle = false;
    return false;
  }
  if (oracle)
    *oracle = cfg_.oracle_sample_n > 0 && s % cfg_.oracle_sample_n == 0;
  return true;
}

void ProvenanceRecorder::record(DecisionRecord rec) {
  std::lock_guard<std::mutex> lock(mu_);
  ++sum_.sampled;
  ++sum_.kinds[static_cast<std::size_t>(rec.kind)];
  ++sum_.paths[static_cast<std::size_t>(rec.path)];
  auto it = std::lower_bound(sum_.classes.begin(), sum_.classes.end(), rec.cls,
                             [](const ProvenanceSummary::ClassAccum& c,
                                const std::string& n) { return c.name < n; });
  if (it == sum_.classes.end() || it->name != rec.cls) {
    it = sum_.classes.insert(it, ProvenanceSummary::ClassAccum{});
    it->name = rec.cls;
  }
  ++it->sampled;
  if (rec.oracle) {
    ++sum_.oracle_runs;
    ++it->oracle_runs;
    it->regret_sum += rec.regret;
    it->max_regret = std::max(it->max_regret, rec.regret);
    it->regret.observe(rec.regret);
    sum_.kind_regret[static_cast<std::size_t>(rec.kind)].observe(rec.regret);
  }
  ring_.push_back(std::move(rec));
  while (ring_.size() > cfg_.ring_capacity) {
    ring_.pop_front();
    ++sum_.ring_evictions;
  }
}

void ProvenanceRecorder::note_dump() {
  std::lock_guard<std::mutex> lock(mu_);
  ++sum_.dumps;
}

std::vector<DecisionRecord> ProvenanceRecorder::window() const {
  std::lock_guard<std::mutex> lock(mu_);
  return {ring_.begin(), ring_.end()};
}

ProvenanceSummary ProvenanceRecorder::summary() const {
  std::lock_guard<std::mutex> lock(mu_);
  return sum_;
}

void write_decisions_jsonl(std::ostream& out,
                           const std::vector<DecisionRecord>& records) {
  for (const auto& r : records) {
    record_to_json(out, r);
    out << '\n';
  }
}

void write_decisions_file(const std::string& path,
                          const std::vector<DecisionRecord>& records) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("provenance: cannot open " + path);
  write_decisions_jsonl(out, records);
  out.flush();
  if (!out.good()) throw std::runtime_error("provenance: write error on " + path);
  out.close();
  if (!util::fsync_path(path))
    throw std::runtime_error("provenance: fsync failed for " + path);
}

void write_flight_dump(std::ostream& out, double t, const std::string& cls,
                       double miss_rate, double burn,
                       std::uint64_t window_tasks,
                       const std::vector<DecisionRecord>& window,
                       const std::vector<OpenSpanNote>& open_spans) {
  out << "{\"type\":\"alert\",\"t\":" << num(t) << ",\"class\":\""
      << json_escape(cls) << "\",\"miss_rate\":" << num(miss_rate)
      << ",\"burn\":" << num(burn) << ",\"window_tasks\":" << window_tasks
      << ",\"decisions\":" << window.size()
      << ",\"open_spans\":" << open_spans.size() << "}\n";
  write_decisions_jsonl(out, window);
  for (const auto& s : open_spans) {
    out << "{\"type\":\"open_span\",\"task\":" << s.task
        << ",\"device\":" << s.device << ",\"phase\":\""
        << json_escape(s.phase) << "\",\"track\":\"" << json_escape(s.track)
        << "\",\"t_begin\":" << num(s.t_begin) << "}\n";
  }
}

}  // namespace leime::obs
