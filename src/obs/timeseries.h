// Time-series probes: per-slot samples of the Lyapunov control state
// (Q_i, H_i, offload ratio x_i, drift and penalty terms) plus fault-state
// flags, written to a pluggable sink.
//
// Third pillar of the observability layer (DESIGN.md §8). The simulator
// emits one SlotSample per device per control slot — exactly the
// granularity of the queue recursions in eqs. 10–11 of the paper, so a
// plotted series shows the backlogs evolving slot by slot through fault
// windows.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <memory>
#include <string>
#include <vector>

namespace leime::obs {

/// One device-slot observation, taken when the controller decides x_i(t).
struct SlotSample {
  double t = 0.0;          ///< slot start, sim seconds
  int device = -1;
  double q = 0.0;          ///< Q_i(t): device queue backlog (tasks), eq. 10
  double h = 0.0;          ///< H_i(t): edge virtual queue (tasks), eq. 11
  double x = 0.0;          ///< chosen offload ratio x_i(t) in [0, 1]
  double drift = 0.0;      ///< Lyapunov drift term of eq. 20 at chosen x
  double penalty = 0.0;    ///< V * y_i(t): penalty term of eq. 20 at chosen x
  std::uint64_t kept_arrivals = 0;      ///< arrivals kept local this slot
  std::uint64_t offloaded_arrivals = 0; ///< arrivals offloaded this slot
  bool edge_up = true;     ///< edge server reachable & alive this slot
  bool link_up = true;     ///< device uplink outside an outage window
  double edge_share_flops = 0.0;  ///< f_i^e: edge FLOPS share (eq. 27)
};

/// Destination for slot samples. Implementations must tolerate samples
/// arriving in nondecreasing time order with interleaved device ids.
class TimeseriesSink {
 public:
  virtual ~TimeseriesSink() = default;
  virtual void append(const SlotSample& sample) = 0;
  /// Flushes buffered samples durably; throws std::runtime_error on
  /// write failure. Called once at end of run.
  virtual void close() {}
};

/// Keeps every sample in memory — the test and analysis sink.
class MemoryTimeseriesSink : public TimeseriesSink {
 public:
  void append(const SlotSample& sample) override {
    samples_.push_back(sample);
  }
  const std::vector<SlotSample>& samples() const { return samples_; }

  /// Samples for one device, in time order.
  std::vector<SlotSample> device_series(int device) const;

 private:
  std::vector<SlotSample> samples_;
};

/// Streams samples as CSV rows (header written on construction).
class CsvTimeseriesSink : public TimeseriesSink {
 public:
  explicit CsvTimeseriesSink(const std::string& path);
  ~CsvTimeseriesSink() override;
  void append(const SlotSample& sample) override;
  void close() override;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

/// Streams samples as one JSON object per line.
class JsonlTimeseriesSink : public TimeseriesSink {
 public:
  explicit JsonlTimeseriesSink(const std::string& path);
  ~JsonlTimeseriesSink() override;
  void append(const SlotSample& sample) override;
  void close() override;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

/// Serializes one sample as a JSON object (exposed for testing; used by
/// JsonlTimeseriesSink).
void slot_sample_to_json(const SlotSample& sample, std::ostream& out);

}  // namespace leime::obs
