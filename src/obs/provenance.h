// Decision provenance: per-decision audit records, oracle-regret accounting
// and a bounded flight recorder (DESIGN.md §14).
//
// PR 7's fast paths (memo cache, warm-started B&B, batched eq. 20) are
// proven result-identical to the reference searches, and PR 8 shows where
// each millisecond went — but neither says *why* the policy decided what it
// did, or how far a per-slot heuristic (the eq. 20 balance rule) lands from
// the exact drift-plus-penalty minimiser. This header holds the sim-free
// pieces: one DecisionRecord per sampled exit-setting / offload evaluation
// (environment snapshot, fast path taken, work explored vs pruned, chosen
// action with its predicted cost, runner-up margin), a mutex-guarded
// recorder that keeps the last `ring_capacity` records — the flight
// recorder an SLO fire dumps — and a plan-order-mergeable summary with
// per-class log-bucket regret histograms that rides SimResult/RunRecord.
//
// Regret semantics: regret = chosen cost − oracle cost on the *decision
// objective* (expected TCT for exit settings, eq. 19 drift-plus-penalty for
// offload ratios), with the oracle cost clamped to min(oracle, chosen) so
// regret ≥ 0 holds by construction even under floating-point re-association.
// Exit-setting fast paths are bit-identical to the exhaustive scan by the
// §12 contracts, so their regret is exactly 0 — the accounting is an online
// watchdog for that proof; offload regret is genuinely nonzero whenever the
// paper's decentralized balance rule (eq. 20) is driving.
//
// Everything here is plain ints/doubles/strings on purpose (no core::
// types): the recorder can be unit-tested synthetically and the summary can
// merge inside the runtime without dragging the cost model along. The
// core-facing emission sites live in policy/engine.cpp (exit settings) and
// sim/observer.cpp (offload slots).
#pragma once

#include <array>
#include <cstdint>
#include <deque>
#include <iosfwd>
#include <mutex>
#include <string>
#include <vector>

#include "obs/metrics.h"

namespace leime::obs {

/// The `[provenance]` INI section. All off by default — the golden
/// byte-identical configuration.
struct ProvenanceConfig {
  /// Record 1-in-N decisions (the trace-buffer trick: deterministic in the
  /// decision ordinal, not in wall time or thread schedule). 0 = disabled.
  std::uint64_t sample_n = 0;
  /// Flight-recorder depth: how many of the latest sampled records an SLO
  /// fire dumps (and decisions_out exports at run end).
  std::size_t ring_capacity = 256;
  /// Re-run the exhaustive oracle on sampled decisions whose ordinal is
  /// also divisible by this, accounting regret = chosen − oracle. 0 = off.
  std::uint64_t oracle_sample_n = 0;
  std::string decisions_out;  ///< run-end JSONL of the recorder window
  std::string dump_out;       ///< SLO-fire postmortem JSONL

  /// A non-empty output path (or an oracle request) implies 1-in-1
  /// sampling when sample_n was left 0, mirroring ObsConfig::trace_out.
  std::uint64_t effective_sample_n() const {
    if (sample_n > 0) return sample_n;
    const bool wanted =
        !decisions_out.empty() || !dump_out.empty() || oracle_sample_n > 0;
    return wanted ? 1 : 0;
  }
  bool enabled() const { return effective_sample_n() > 0; }

  /// Throws std::invalid_argument on a zero ring capacity.
  void validate() const;
};

/// What kind of decision a record describes.
enum class DecisionKind : std::uint8_t {
  kExitSetting = 0,  ///< §III-C exit-setting search (design/epoch time)
  kOffload,          ///< §III-D per-slot offload ratio
};
inline constexpr int kDecisionKindCount = 2;

/// Which implementation served the decision.
enum class DecisionPath : std::uint8_t {
  kCold = 0,   ///< reference B&B search
  kMemoHit,    ///< exit-setting memo cache replay
  kWarmStart,  ///< B&B seeded from the stream's incumbent
  kDirect,     ///< per-slot policy evaluated directly
  kBatch,      ///< offload ratio reused from a bit-identical fleet state
};
inline constexpr int kDecisionPathCount = 5;

/// Stable lowercase identifiers ("exit_setting", "memo_hit", ...); both
/// stay inside [a-z0-9_] so they can appear in composed names and JSON.
const char* decision_kind_name(DecisionKind kind);
const char* decision_path_name(DecisionPath path);

/// Log-bucket geometry shared by every regret histogram: a nanosecond of
/// regret up to ~17 minutes, matching the latency buckets' dynamic range.
HistogramOptions regret_buckets();

/// One sampled decision, fully self-describing.
struct DecisionRecord {
  std::uint64_t seq = 0;  ///< recorder-assigned decision ordinal
  double t = -1.0;        ///< sim time; -1 for design-time decisions
  int device = -1;        ///< deciding device; -1 for fleet/design scope
  std::string cls;        ///< device class ("engine" for design-time)
  DecisionKind kind = DecisionKind::kExitSetting;
  DecisionPath path = DecisionPath::kCold;

  // Environment snapshot at decision time.
  double bandwidth = 0.0;     ///< B (device-edge bytes/s)
  double edge_flops = 0.0;    ///< F^e (total or this device's share)
  double queue_device = 0.0;  ///< Q_i(t), tasks (0 at design time)
  double queue_edge = 0.0;    ///< H_i(t), tasks (0 at design time)

  // The chosen action: an exit combo (kExitSetting) or a ratio (kOffload).
  int e1 = 0;
  int e2 = 0;
  int e3 = 0;
  double x = 0.0;
  double cost = 0.0;  ///< predicted objective at the chosen action

  std::uint64_t explored = 0;  ///< candidate evaluations actually run
  std::uint64_t pruned = 0;    ///< scans skipped by the fast path
  bool margin_valid = false;   ///< a runner-up existed and was measured
  double margin = 0.0;         ///< runner-up cost − chosen cost (≥ 0)

  bool oracle = false;       ///< the exhaustive oracle re-ran this decision
  double oracle_cost = 0.0;  ///< min(oracle optimum, chosen) when oracle
  double regret = 0.0;       ///< cost − oracle_cost (≥ 0) when oracle
};

/// Plan-order-mergeable run summary riding SimResult/RunRecord.
struct ProvenanceSummary {
  bool active = false;
  std::uint64_t decisions = 0;       ///< every decision seen (incl. unsampled)
  std::uint64_t sampled = 0;         ///< records created
  std::uint64_t oracle_runs = 0;     ///< records the oracle re-ran
  std::uint64_t ring_evictions = 0;  ///< records aged out of the window
  std::uint64_t dumps = 0;           ///< SLO-fire flight-recorder dumps
  std::array<std::uint64_t, kDecisionKindCount> kinds{};
  std::array<std::uint64_t, kDecisionPathCount> paths{};
  /// Regret distribution per decision kind (oracle-sampled records only);
  /// feeds the leime_regret_* registry histograms at run end.
  std::array<Histogram, kDecisionKindCount> kind_regret{
      Histogram{regret_buckets()}, Histogram{regret_buckets()}};

  struct ClassAccum {
    std::string name;
    std::uint64_t sampled = 0;
    std::uint64_t oracle_runs = 0;
    double regret_sum = 0.0;
    double max_regret = 0.0;
    Histogram regret{regret_buckets()};
  };
  std::vector<ClassAccum> classes;  ///< sorted by class name

  bool empty() const { return !active; }

  /// Deterministic for a fixed merge order (the runtime merges cells in
  /// plan order, like obs::Snapshot / AttributionSummary).
  void merge(const ProvenanceSummary& other);

  /// One JSON object (single line, no trailing newline): deterministic key
  /// order, shortest-round-trip doubles.
  void to_json(std::ostream& out) const;
};

/// An observer span still open when the flight recorder dumped — the work
/// in flight at the moment the SLO burned.
struct OpenSpanNote {
  std::uint64_t task = 0;
  int device = -1;
  std::string phase;
  std::string track;
  double t_begin = 0.0;
};

/// The bounded flight recorder. Thread-safe: policy::Engine may emit
/// exit-setting records from many threads while the owning observer emits
/// offload records; all state sits behind one mutex, and the record stream
/// is deterministic for a deterministic decision order (per-cell recorders
/// keep runtime JSONL thread-count-invariant).
class ProvenanceRecorder {
 public:
  /// Validates the config (ProvenanceConfig::validate).
  explicit ProvenanceRecorder(ProvenanceConfig config);

  const ProvenanceConfig& config() const { return cfg_; }
  bool enabled() const { return cfg_.enabled(); }

  /// Claims the next decision ordinal. Returns true iff the decision is
  /// sampled (ordinal divisible by sample_n); `*seq` receives the ordinal
  /// and, when sampled, `*oracle` (if given) whether the exhaustive oracle
  /// must be re-run for it. Unsampled decisions are still counted.
  bool begin_decision(std::uint64_t* seq, bool* oracle = nullptr);

  /// Accounts a sampled record into the summary and the ring (evicting the
  /// oldest when full).
  void record(DecisionRecord rec);

  /// Counts one flight-recorder dump (the observer writes the bytes).
  void note_dump();

  /// Snapshot of the ring, oldest first.
  std::vector<DecisionRecord> window() const;

  ProvenanceSummary summary() const;

 private:
  ProvenanceConfig cfg_;
  std::uint64_t sample_n_ = 0;  ///< effective_sample_n(), resolved once
  mutable std::mutex mu_;
  std::uint64_t next_seq_ = 0;
  std::deque<DecisionRecord> ring_;
  ProvenanceSummary sum_;
};

/// One JSON object per record, one per line (consumed by
/// examples/trace_viewer --decisions).
void write_decisions_jsonl(std::ostream& out,
                           const std::vector<DecisionRecord>& records);

/// write_decisions_jsonl to a file, fsynced. Throws std::runtime_error on
/// write failure.
void write_decisions_file(const std::string& path,
                          const std::vector<DecisionRecord>& records);

/// One postmortem: an "alert" header line, the flight-recorder window and
/// the spans still open — appended to an already-open dump stream so
/// successive fires land in fire order.
void write_flight_dump(std::ostream& out, double t, const std::string& cls,
                       double miss_rate, double burn,
                       std::uint64_t window_tasks,
                       const std::vector<DecisionRecord>& window,
                       const std::vector<OpenSpanNote>& open_spans);

}  // namespace leime::obs
