#include "obs/slo.h"

#include <algorithm>
#include <fstream>
#include <limits>
#include <ostream>
#include <sstream>
#include <stdexcept>

#include "util/csv.h"

namespace leime::obs {

namespace {

std::string num(double v) {
  std::ostringstream os;
  os.precision(std::numeric_limits<double>::max_digits10);
  os << v;
  return os.str();
}

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default: out += c;
    }
  }
  return out;
}

std::string cls_name(const std::vector<std::string>& names, std::size_t cls) {
  if (cls < names.size()) return names[cls];
  return "class" + std::to_string(cls);
}

void alert_to_json(std::ostream& out, double t, const std::string& cls,
                   bool fire, double miss_rate, double burn,
                   std::uint64_t window_tasks) {
  out << "{\"t\":" << num(t) << ",\"class\":\"" << json_escape(cls)
      << "\",\"event\":\"" << (fire ? "fire" : "clear")
      << "\",\"miss_rate\":" << num(miss_rate) << ",\"burn\":" << num(burn)
      << ",\"window_tasks\":" << window_tasks << '}';
}

}  // namespace

void SloConfig::validate() const {
  if (!enabled()) return;
  if (window <= 0.0)
    throw std::invalid_argument("slo: window must be positive");
  if (target_miss_rate <= 0.0 || target_miss_rate > 1.0)
    throw std::invalid_argument("slo: target_miss_rate must be in (0, 1]");
  if (burn_threshold <= 0.0)
    throw std::invalid_argument("slo: burn_threshold must be positive");
}

void SloSummary::merge(const SloSummary& other) {
  if (!other.active) return;
  active = true;
  if (deadline == 0.0) deadline = other.deadline;
  for (const auto& oc : other.classes) {
    auto it = std::lower_bound(
        classes.begin(), classes.end(), oc.name,
        [](const ClassStats& c, const std::string& n) { return c.name < n; });
    if (it == classes.end() || it->name != oc.name) {
      it = classes.insert(it, ClassStats{});
      it->name = oc.name;
    }
    it->completions += oc.completions;
    it->misses += oc.misses;
    it->alerts_fired += oc.alerts_fired;
    it->alerts_cleared += oc.alerts_cleared;
    it->max_burn = std::max(it->max_burn, oc.max_burn);
  }
  alerts.insert(alerts.end(), other.alerts.begin(), other.alerts.end());
}

void SloSummary::to_json(std::ostream& out) const {
  out << "{\"deadline\":" << num(deadline) << ",\"classes\":[";
  bool first = true;
  for (const auto& c : classes) {
    if (!first) out << ',';
    first = false;
    out << "{\"name\":\"" << json_escape(c.name)
        << "\",\"completions\":" << c.completions << ",\"misses\":" << c.misses
        << ",\"fired\":" << c.alerts_fired << ",\"cleared\":" << c.alerts_cleared
        << ",\"max_burn\":" << num(c.max_burn) << '}';
  }
  out << "],\"alerts\":[";
  for (std::size_t i = 0; i < alerts.size(); ++i) {
    if (i) out << ',';
    const auto& a = alerts[i];
    alert_to_json(out, a.t, a.cls, a.fire, a.miss_rate, a.burn,
                  a.window_tasks);
  }
  out << "]}";
}

SloMonitor::SloMonitor(SloConfig config, std::size_t num_classes)
    : cfg_(std::move(config)), windows_(std::max<std::size_t>(1, num_classes)) {
  cfg_.validate();
}

void SloMonitor::evict(ClassWindow& w, double t) {
  const double horizon = t - cfg_.window;
  while (!w.events.empty() && w.events.front().first < horizon) {
    if (w.events.front().second) --w.window_misses;
    w.events.pop_front();
  }
}

const SloAlert* SloMonitor::on_completion(std::size_t cls, double t,
                                          double tct) {
  if (!cfg_.enabled() || cls >= windows_.size()) return nullptr;
  ClassWindow& w = windows_[cls];
  const bool missed = tct > cfg_.deadline;
  ++w.completions;
  if (missed) ++w.misses;
  evict(w, t);
  w.events.emplace_back(t, missed);
  if (missed) ++w.window_misses;
  const auto n = static_cast<std::uint64_t>(w.events.size());
  const double rate =
      n == 0 ? 0.0 : static_cast<double>(w.window_misses) / static_cast<double>(n);
  const double burn = rate / cfg_.target_miss_rate;
  w.max_burn = std::max(w.max_burn, burn);
  if (!w.alerting && burn >= cfg_.burn_threshold && n >= cfg_.min_window_tasks) {
    w.alerting = true;
    ++w.fired;
    alerts_.push_back({t, cls, true, rate, burn, n});
    return &alerts_.back();
  }
  if (w.alerting && burn < cfg_.burn_threshold) {
    w.alerting = false;
    ++w.cleared;
    alerts_.push_back({t, cls, false, rate, burn, n});
    return &alerts_.back();
  }
  return nullptr;
}

double SloMonitor::miss_rate(std::size_t cls) const {
  if (cls >= windows_.size()) return 0.0;
  const auto& w = windows_[cls];
  if (w.events.empty()) return 0.0;
  return static_cast<double>(w.window_misses) /
         static_cast<double>(w.events.size());
}

double SloMonitor::burn_rate(std::size_t cls) const {
  return cfg_.target_miss_rate > 0.0 ? miss_rate(cls) / cfg_.target_miss_rate
                                     : 0.0;
}

std::uint64_t SloMonitor::completions(std::size_t cls) const {
  return cls < windows_.size() ? windows_[cls].completions : 0;
}

std::uint64_t SloMonitor::misses(std::size_t cls) const {
  return cls < windows_.size() ? windows_[cls].misses : 0;
}

bool SloMonitor::alerting(std::size_t cls) const {
  return cls < windows_.size() && windows_[cls].alerting;
}

SloSummary SloMonitor::summary(
    const std::vector<std::string>& class_names) const {
  SloSummary s;
  s.active = cfg_.enabled();
  s.deadline = cfg_.deadline;
  if (!s.active) return s;
  for (std::size_t i = 0; i < windows_.size(); ++i) {
    const auto& w = windows_[i];
    if (w.completions == 0 && w.fired == 0) continue;
    SloSummary::ClassStats c;
    c.name = cls_name(class_names, i);
    c.completions = w.completions;
    c.misses = w.misses;
    c.alerts_fired = w.fired;
    c.alerts_cleared = w.cleared;
    c.max_burn = w.max_burn;
    s.classes.push_back(std::move(c));
  }
  std::sort(s.classes.begin(), s.classes.end(),
            [](const SloSummary::ClassStats& a, const SloSummary::ClassStats& b) {
              return a.name < b.name;
            });
  s.alerts.reserve(alerts_.size());
  for (const auto& a : alerts_) {
    SloSummary::Alert out;
    out.t = a.t;
    out.cls = cls_name(class_names, a.cls);
    out.fire = a.fire;
    out.miss_rate = a.miss_rate;
    out.burn = a.burn;
    out.window_tasks = a.window_tasks;
    s.alerts.push_back(std::move(out));
  }
  return s;
}

void SloMonitor::write_alerts_jsonl(
    std::ostream& out, const std::vector<std::string>& class_names) const {
  for (const auto& a : alerts_) {
    alert_to_json(out, a.t, cls_name(class_names, a.cls), a.fire, a.miss_rate,
                  a.burn, a.window_tasks);
    out << '\n';
  }
}

void SloMonitor::write_alerts_file(
    const std::string& path,
    const std::vector<std::string>& class_names) const {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("slo: cannot open " + path);
  write_alerts_jsonl(out, class_names);
  out.flush();
  if (!out.good()) throw std::runtime_error("slo: write error on " + path);
  out.close();
  if (!util::fsync_path(path))
    throw std::runtime_error("slo: fsync failed for " + path);
}

}  // namespace leime::obs
