#include "util/rng.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>
#include <vector>

namespace leime::util {
namespace {

TEST(Rng, SameSeedSameStream) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i)
    if (a.next_u64() == b.next_u64()) ++equal;
  EXPECT_LT(equal, 2);
}

TEST(Rng, ReseedRestartsStream) {
  Rng a(7);
  const auto first = a.next_u64();
  a.next_u64();
  a.reseed(7);
  EXPECT_EQ(a.next_u64(), first);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(5);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
  }
}

TEST(Rng, UniformRangeRespectsBounds) {
  Rng rng(5);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform(-3.0, 2.0);
    ASSERT_GE(u, -3.0);
    ASSERT_LT(u, 2.0);
  }
  EXPECT_THROW(rng.uniform(1.0, 0.0), std::invalid_argument);
}

TEST(Rng, UniformMeanIsCentered) {
  Rng rng(11);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.uniform();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Rng, UniformIntCoversRangeInclusive) {
  Rng rng(9);
  std::vector<int> seen(5, 0);
  for (int i = 0; i < 5000; ++i) ++seen[static_cast<std::size_t>(rng.uniform_int(0, 4))];
  for (int count : seen) EXPECT_GT(count, 800);
  EXPECT_THROW(rng.uniform_int(3, 2), std::invalid_argument);
}

TEST(Rng, BernoulliEdgesAndMean) {
  Rng rng(13);
  EXPECT_FALSE(rng.bernoulli(0.0));
  EXPECT_TRUE(rng.bernoulli(1.0));
  int hits = 0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) hits += rng.bernoulli(0.3);
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(Rng, NormalMoments) {
  Rng rng(17);
  double sum = 0.0, sum2 = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    const double v = rng.normal(2.0, 3.0);
    sum += v;
    sum2 += v * v;
  }
  const double mean = sum / n;
  const double var = sum2 / n - mean * mean;
  EXPECT_NEAR(mean, 2.0, 0.05);
  EXPECT_NEAR(var, 9.0, 0.2);
  EXPECT_THROW(rng.normal(0.0, -1.0), std::invalid_argument);
}

TEST(Rng, ExponentialMeanAndValidation) {
  Rng rng(19);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.exponential(4.0);
  EXPECT_NEAR(sum / n, 0.25, 0.01);
  EXPECT_THROW(rng.exponential(0.0), std::invalid_argument);
}

TEST(Rng, PoissonMeanMatchesSmallAndLarge) {
  Rng rng(23);
  double sum = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += rng.poisson(3.5);
  EXPECT_NEAR(sum / n, 3.5, 0.1);
  sum = 0.0;
  for (int i = 0; i < 2000; ++i) sum += rng.poisson(5000.0);
  EXPECT_NEAR(sum / 2000.0, 5000.0, 25.0);
  EXPECT_EQ(rng.poisson(0.0), 0);
  EXPECT_THROW(rng.poisson(-1.0), std::invalid_argument);
}

TEST(Rng, ForkProducesIndependentStream) {
  Rng parent(31);
  Rng child = parent.fork();
  // Child stream differs from the parent's continuation.
  int equal = 0;
  for (int i = 0; i < 64; ++i)
    if (parent.next_u64() == child.next_u64()) ++equal;
  EXPECT_LT(equal, 2);
}

TEST(Rng, SplitStreamsShareNoDrawsAcross1kPrefix) {
  // 16 substreams of one base seed, 1k draws each: every value distinct, so
  // no stream's prefix overlaps another's anywhere (collision probability
  // for 16k random u64s is ~1e-11).
  Rng base(2024);
  std::set<std::uint64_t> seen;
  for (std::uint64_t i = 0; i < 16; ++i) {
    Rng stream = base.split(i);
    for (int d = 0; d < 1000; ++d) seen.insert(stream.next_u64());
  }
  EXPECT_EQ(seen.size(), 16u * 1000u);
}

TEST(Rng, SplitIsDeterministicPerSeedAndIndex) {
  Rng a = Rng(1).split(5), b = Rng(1).split(5);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
  EXPECT_NE(Rng(1).split(6).next_u64(), Rng(1).split(5).next_u64());
  EXPECT_NE(Rng(2).split(5).next_u64(), Rng(1).split(5).next_u64());
}

TEST(Rng, SplitIgnoresStreamPosition) {
  // Unlike fork(), split() addresses substreams by (seed, index) only, so
  // grid cell i gets the same stream no matter when it is derived.
  Rng parent(77);
  const auto before = parent.split(3).next_u64();
  parent.next_u64();
  parent.next_u64();
  EXPECT_EQ(parent.split(3).next_u64(), before);
}

TEST(Rng, DeriveSeedAvoidsArithmeticNeighbourCollisions) {
  // base+1's stream 0 must not equal base's stream 1 (the failure mode of
  // the old base_seed + i convention).
  EXPECT_NE(Rng::derive_seed(100, 1), Rng::derive_seed(101, 0));
  EXPECT_NE(Rng::derive_seed(100, 0), 100u);
}

TEST(Rng, SeedAccessorTracksReseed) {
  Rng rng(42);
  EXPECT_EQ(rng.seed(), 42u);
  rng.reseed(7);
  EXPECT_EQ(rng.seed(), 7u);
}

TEST(Rng, ShufflePreservesElements) {
  Rng rng(37);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  auto sorted = v;
  rng.shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, sorted);
}

}  // namespace
}  // namespace leime::util
