#include "util/table.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <stdexcept>

namespace leime::util {
namespace {

TEST(TablePrinter, AlignsColumns) {
  TablePrinter t({"name", "value"});
  t.add_row({"alpha", "1"});
  t.add_row({"b", "12345"});
  const std::string out = t.to_string();
  EXPECT_NE(out.find("name"), std::string::npos);
  EXPECT_NE(out.find("alpha"), std::string::npos);
  EXPECT_NE(out.find("12345"), std::string::npos);
  // Header separator present.
  EXPECT_NE(out.find("---"), std::string::npos);
  EXPECT_EQ(t.num_rows(), 2u);
}

TEST(TablePrinter, RejectsBadShapes) {
  EXPECT_THROW(TablePrinter({}), std::invalid_argument);
  TablePrinter t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), std::invalid_argument);
}

TEST(Fmt, FixedAndScientific) {
  EXPECT_EQ(fmt(1.23456, 2), "1.23");
  EXPECT_EQ(fmt(2.0, 0), "2");
  EXPECT_EQ(fmt_sci(12345.0, 2), "1.23e+04");
}

}  // namespace
}  // namespace leime::util
namespace leime::util {
namespace {

TEST(TablePrinter, WriteCsv) {
  TablePrinter t({"a", "b"});
  t.add_row({"1", "x,y"});
  const std::string path = testing::TempDir() + "/leime_table.csv";
  t.write_csv(path);
  std::ifstream in(path);
  std::string line;
  std::getline(in, line);
  EXPECT_EQ(line, "a,b");
  std::getline(in, line);
  EXPECT_EQ(line, "1,\"x,y\"");
  std::remove(path.c_str());
}

TEST(TablePrinter, Accessors) {
  TablePrinter t({"h"});
  t.add_row({"v"});
  EXPECT_EQ(t.headers().size(), 1u);
  EXPECT_EQ(t.rows()[0][0], "v");
}

}  // namespace
}  // namespace leime::util
