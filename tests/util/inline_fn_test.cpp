#include "util/inline_fn.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <utility>

namespace leime::util {
namespace {

TEST(InlineFn, DefaultIsEmptyAndBoundIsTruthy) {
  InlineFn<int(), 16> fn;
  EXPECT_FALSE(static_cast<bool>(fn));
  fn = [] { return 7; };
  ASSERT_TRUE(static_cast<bool>(fn));
  EXPECT_EQ(fn(), 7);
}

TEST(InlineFn, CapturesStateAndForwardsArguments) {
  int sum = 0;
  InlineFn<void(int, int), 16> add = [&sum](int a, int b) { sum += a + b; };
  add(2, 3);
  add(10, 20);
  EXPECT_EQ(sum, 35);
}

TEST(InlineFn, MoveTransfersOwnershipAndEmptiesSource) {
  int calls = 0;
  InlineFn<void(), 16> a = [&calls] { ++calls; };
  InlineFn<void(), 16> b = std::move(a);
  EXPECT_FALSE(static_cast<bool>(a));  // NOLINT(bugprone-use-after-move)
  ASSERT_TRUE(static_cast<bool>(b));
  b();
  EXPECT_EQ(calls, 1);
}

TEST(InlineFn, MoveAssignDestroysPreviousTarget) {
  struct Probe {
    int* balance;
    explicit Probe(int* b) : balance(b) { ++*balance; }
    Probe(Probe&& o) noexcept : balance(o.balance) { ++*balance; }
    Probe(const Probe& o) : balance(o.balance) { ++*balance; }
    ~Probe() { --*balance; }
    void operator()() const {}
  };
  int balance = 0;
  {
    InlineFn<void(), 16> fn = Probe(&balance);
    EXPECT_EQ(balance, 1);
    fn = Probe(&balance);  // old target destroyed, new one adopted
    EXPECT_EQ(balance, 1);
    fn.reset();
    EXPECT_EQ(balance, 0);
    fn.reset();  // idempotent on empty
  }
  EXPECT_EQ(balance, 0);
}

TEST(InlineFn, MutableCallablesKeepTheirState) {
  InlineFn<std::uint64_t(), 16> counter = [n = std::uint64_t{0}]() mutable {
    return ++n;
  };
  EXPECT_EQ(counter(), 1u);
  EXPECT_EQ(counter(), 2u);
  EXPECT_EQ(counter(), 3u);
}

TEST(InlineFn, FitsExactlyAtCapacity) {
  struct Exact {
    unsigned char pad[32];
    int operator()() const { return pad[0]; }
  };
  static_assert(sizeof(Exact) == 32);
  InlineFn<int(), 32> fn = Exact{};
  EXPECT_EQ(fn(), 0);
}

}  // namespace
}  // namespace leime::util
