#include "util/check.h"

#include <gtest/gtest.h>

namespace leime::util {
namespace {

TEST(Check, PassesSilently) {
  EXPECT_NO_THROW(LEIME_CHECK(1 + 1 == 2));
  EXPECT_NO_THROW(LEIME_CHECK_MSG(true, "never shown"));
}

TEST(Check, ThrowsWithContext) {
  try {
    LEIME_CHECK(2 < 1);
    FAIL() << "expected CheckError";
  } catch (const CheckError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("2 < 1"), std::string::npos);
    EXPECT_NE(what.find("check_test.cpp"), std::string::npos);
  }
}

TEST(Check, MessageIsStreamed) {
  try {
    const int x = 41;
    LEIME_CHECK_MSG(x == 42, "x=" << x);
    FAIL() << "expected CheckError";
  } catch (const CheckError& e) {
    EXPECT_NE(std::string(e.what()).find("x=41"), std::string::npos);
  }
}

}  // namespace
}  // namespace leime::util
