#include "util/ini.h"

#include <gtest/gtest.h>

namespace leime::util {
namespace {

constexpr const char* kSample = R"(
# campus scenario
[scenario]
model = inception      ; which DNN
duration = 120.5
policy = LEIME
adaptive = yes

[device]
flops_gflops = 0.6
rate = 1.5

[device]
flops_gflops = 6
rate = 0.5
)";

TEST(Ini, ParsesSectionsAndValues) {
  const auto ini = IniFile::parse_string(kSample);
  ASSERT_EQ(ini.sections().size(), 3u);
  const auto& sc = ini.only("scenario");
  EXPECT_EQ(sc.get("model"), "inception");
  EXPECT_DOUBLE_EQ(sc.get_double("duration"), 120.5);
  EXPECT_TRUE(sc.get_bool("adaptive", false));
  EXPECT_EQ(sc.get("missing", "dflt"), "dflt");
}

TEST(Ini, RepeatedSectionsKeptInOrder) {
  const auto ini = IniFile::parse_string(kSample);
  const auto devices = ini.all("device");
  ASSERT_EQ(devices.size(), 2u);
  EXPECT_DOUBLE_EQ(devices[0]->get_double("flops_gflops"), 0.6);
  EXPECT_DOUBLE_EQ(devices[1]->get_double("rate"), 0.5);
}

TEST(Ini, OnlyRejectsMissingAndDuplicated) {
  const auto ini = IniFile::parse_string(kSample);
  EXPECT_THROW(ini.only("nope"), std::invalid_argument);
  EXPECT_THROW(ini.only("device"), std::invalid_argument);
  EXPECT_EQ(ini.find("nope"), nullptr);
  EXPECT_NE(ini.find("device"), nullptr);
}

TEST(Ini, CommentsAndWhitespace) {
  const auto ini = IniFile::parse_string(
      "[s]\n  key =  spaced value  # trailing\n; full line\n");
  EXPECT_EQ(ini.only("s").get("key"), "spaced value");
}

TEST(Ini, TypedGetterErrors) {
  const auto ini = IniFile::parse_string("[s]\nx = abc\nf = 1.5\n");
  const auto& s = ini.only("s");
  EXPECT_THROW(s.get_double("x"), std::invalid_argument);
  EXPECT_THROW(s.get_double("missing"), std::invalid_argument);
  EXPECT_THROW(s.get_int("f"), std::invalid_argument);
  EXPECT_DOUBLE_EQ(s.get_double("missing", 7.0), 7.0);
  EXPECT_EQ(s.get_int("missing", 3), 3);
  EXPECT_THROW(s.get_bool("x", false), std::invalid_argument);
}

TEST(Ini, MalformedInput) {
  EXPECT_THROW(IniFile::parse_string("key = 1\n"), std::invalid_argument);
  EXPECT_THROW(IniFile::parse_string("[s\n"), std::invalid_argument);
  EXPECT_THROW(IniFile::parse_string("[]\n"), std::invalid_argument);
  EXPECT_THROW(IniFile::parse_string("[s]\nno_equals\n"),
               std::invalid_argument);
  EXPECT_THROW(IniFile::parse_string("[s]\n= v\n"), std::invalid_argument);
  EXPECT_THROW(IniFile::parse_file("/nonexistent/file.ini"),
               std::runtime_error);
}

TEST(Ini, LastDuplicateKeyWins) {
  const auto ini = IniFile::parse_string("[s]\nk = 1\nk = 2\n");
  EXPECT_EQ(ini.only("s").get("k"), "2");
}

}  // namespace
}  // namespace leime::util
