#include "util/csv.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

namespace leime::util {
namespace {

std::string read_file(const std::string& path) {
  std::ifstream in(path);
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

TEST(CsvEscape, QuotesOnlyWhenNeeded) {
  EXPECT_EQ(csv_escape("plain"), "plain");
  EXPECT_EQ(csv_escape("has,comma"), "\"has,comma\"");
  EXPECT_EQ(csv_escape("has\"quote"), "\"has\"\"quote\"");
  EXPECT_EQ(csv_escape("line\nbreak"), "\"line\nbreak\"");
}

TEST(CsvWriter, WritesHeaderAndRows) {
  const std::string path = testing::TempDir() + "/leime_csv_test.csv";
  {
    CsvWriter w(path, {"x", "y"});
    w.add_row({"1", "2"});
    w.add_row({"a,b", "c"});
    EXPECT_EQ(w.num_rows(), 2u);
  }
  const std::string content = read_file(path);
  EXPECT_EQ(content, "x,y\n1,2\n\"a,b\",c\n");
  std::remove(path.c_str());
}

TEST(CsvWriter, RejectsWidthMismatchAndEmptyHeader) {
  const std::string path = testing::TempDir() + "/leime_csv_test2.csv";
  CsvWriter w(path, {"a"});
  EXPECT_THROW(w.add_row({"1", "2"}), std::invalid_argument);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace leime::util
