#include "util/stats.h"

#include <gtest/gtest.h>

#include <stdexcept>

namespace leime::util {
namespace {

TEST(RunningStats, EmptyIsZero) {
  RunningStats s;
  EXPECT_TRUE(s.empty());
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
}

TEST(RunningStats, KnownMoments) {
  RunningStats s;
  for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(v);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);  // unbiased
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(RunningStats, SingleObservationVarianceZero) {
  RunningStats s;
  s.add(42.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.mean(), 42.0);
}

TEST(RunningStats, MergeMatchesSequential) {
  RunningStats all, a, b;
  for (int i = 0; i < 50; ++i) {
    const double v = i * 0.37 - 3.0;
    all.add(v);
    (i % 2 ? a : b).add(v);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-12);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(a.min(), all.min());
  EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(RunningStats, MergeWithEmpty) {
  RunningStats a, b;
  a.add(1.0);
  a.merge(b);
  EXPECT_EQ(a.count(), 1u);
  b.merge(a);
  EXPECT_EQ(b.count(), 1u);
  EXPECT_DOUBLE_EQ(b.mean(), 1.0);
}

// The empty-accumulator contract documented in stats.h: every accessor —
// including min()/max(), which otherwise would want +/-infinity sentinels —
// returns exactly 0.0 while count() == 0.
TEST(RunningStats, EmptyAccessorsAllReturnExactZero) {
  const RunningStats s;
  EXPECT_DOUBLE_EQ(s.min(), 0.0);
  EXPECT_DOUBLE_EQ(s.max(), 0.0);
  EXPECT_DOUBLE_EQ(s.sum(), 0.0);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.stddev(), 0.0);
}

// Min/max after observations must never echo the empty-state 0.0: an
// all-negative stream has a negative max, an all-positive one a positive
// min.
TEST(RunningStats, MinMaxTrackSignedExtremes) {
  RunningStats neg;
  neg.add(-5.0);
  neg.add(-1.0);
  EXPECT_DOUBLE_EQ(neg.min(), -5.0);
  EXPECT_DOUBLE_EQ(neg.max(), -1.0);
  RunningStats pos;
  pos.add(3.0);
  EXPECT_DOUBLE_EQ(pos.min(), 3.0);
  EXPECT_DOUBLE_EQ(pos.max(), 3.0);
}

// The merge-with-empty contract from stats.h: merging an empty shard is a
// bit-exact no-op, and merging into an empty accumulator is a bit-exact
// copy — no tolerance, the doubles must be identical. The snapshot-merge
// determinism of the metrics registry rests on this.
TEST(RunningStats, MergeWithEmptyIsBitExact) {
  RunningStats a;
  for (double v : {0.1, -2.7, 3.14159, 8.0}) a.add(v);
  const RunningStats before = a;
  RunningStats empty;
  a.merge(empty);  // no-op direction
  EXPECT_EQ(a.count(), before.count());
  EXPECT_EQ(a.mean(), before.mean());
  EXPECT_EQ(a.variance(), before.variance());
  EXPECT_EQ(a.min(), before.min());
  EXPECT_EQ(a.max(), before.max());
  EXPECT_EQ(a.sum(), before.sum());

  RunningStats into;
  into.merge(a);  // copy direction
  EXPECT_EQ(into.count(), a.count());
  EXPECT_EQ(into.mean(), a.mean());
  EXPECT_EQ(into.variance(), a.variance());
  EXPECT_EQ(into.min(), a.min());
  EXPECT_EQ(into.max(), a.max());
  EXPECT_EQ(into.sum(), a.sum());
}

TEST(RunningStats, MergeTwoEmptiesStaysEmpty) {
  RunningStats a, b;
  a.merge(b);
  EXPECT_TRUE(a.empty());
  EXPECT_DOUBLE_EQ(a.min(), 0.0);
  EXPECT_DOUBLE_EQ(a.max(), 0.0);
}

TEST(Percentile, InterpolatesBetweenRanks) {
  std::vector<double> v{1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(percentile(v, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(percentile(v, 1.0), 4.0);
  EXPECT_DOUBLE_EQ(percentile(v, 0.5), 2.5);
}

TEST(Percentile, SingleElementAndErrors) {
  EXPECT_DOUBLE_EQ(percentile({7.0}, 0.99), 7.0);
  EXPECT_THROW(percentile({}, 0.5), std::invalid_argument);
  EXPECT_THROW(percentile({1.0}, 1.5), std::invalid_argument);
  EXPECT_THROW(percentile({1.0}, -0.1), std::invalid_argument);
}

TEST(Percentile, UnsortedInputHandled) {
  std::vector<double> v{9.0, 1.0, 5.0};
  EXPECT_DOUBLE_EQ(percentile(v, 0.5), 5.0);
}

TEST(Summarize, FullSummary) {
  std::vector<double> v;
  for (int i = 1; i <= 100; ++i) v.push_back(i);
  const Summary s = summarize(v);
  EXPECT_EQ(s.count, 100u);
  EXPECT_DOUBLE_EQ(s.mean, 50.5);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 100.0);
  EXPECT_NEAR(s.p50, 50.5, 1e-9);
  EXPECT_NEAR(s.p95, 95.05, 1e-9);
}

TEST(Summarize, EmptyIsAllZero) {
  const Summary s = summarize({});
  EXPECT_EQ(s.count, 0u);
  EXPECT_DOUBLE_EQ(s.mean, 0.0);
  EXPECT_DOUBLE_EQ(s.p99, 0.0);
}

TEST(MeanOf, Basics) {
  EXPECT_DOUBLE_EQ(mean_of({1.0, 2.0, 3.0}), 2.0);
  EXPECT_DOUBLE_EQ(mean_of({}), 0.0);
}

TEST(MedianOf, InterpolatesAndHandlesEmpty) {
  EXPECT_DOUBLE_EQ(median_of({3.0, 1.0, 2.0}), 2.0);
  EXPECT_DOUBLE_EQ(median_of({1.0, 2.0, 3.0, 4.0}), 2.5);
  EXPECT_DOUBLE_EQ(median_of({7.0}), 7.0);
  EXPECT_DOUBLE_EQ(median_of({}), 0.0);
}

TEST(RobustSummarize, MedianAndMad) {
  const RobustSummary r = robust_summarize({1.0, 2.0, 3.0, 4.0, 5.0});
  EXPECT_EQ(r.count, 5u);
  EXPECT_DOUBLE_EQ(r.median, 3.0);
  EXPECT_DOUBLE_EQ(r.mad, 1.0);  // deviations {2,1,0,1,2} -> median 1
  EXPECT_DOUBLE_EQ(r.cv, 1.4826 / 3.0);
  EXPECT_DOUBLE_EQ(r.min, 1.0);
  EXPECT_DOUBLE_EQ(r.max, 5.0);
  EXPECT_DOUBLE_EQ(r.mean, 3.0);
}

// The property the bench gate depends on: one wild outlier round moves
// neither the median nor the MAD materially, while it would drag the mean
// (and a min-of-rounds estimate ignores the spread entirely).
TEST(RobustSummarize, SingleOutlierDoesNotMoveLocationOrScale) {
  const RobustSummary clean = robust_summarize({10.0, 10.1, 9.9, 10.05, 9.95});
  const RobustSummary noisy =
      robust_summarize({10.0, 10.1, 9.9, 10.05, 50.0});
  EXPECT_NEAR(noisy.median, clean.median, 0.11);
  EXPECT_LT(noisy.cv, 0.05);
  EXPECT_GT(noisy.mean, 17.0);  // the mean is the one that blows up
}

TEST(RobustSummarize, EmptyAndZeroMedian) {
  const RobustSummary empty = robust_summarize({});
  EXPECT_EQ(empty.count, 0u);
  EXPECT_DOUBLE_EQ(empty.median, 0.0);
  EXPECT_DOUBLE_EQ(empty.cv, 0.0);
  const RobustSummary zero = robust_summarize({-1.0, 0.0, 1.0});
  EXPECT_DOUBLE_EQ(zero.median, 0.0);
  EXPECT_DOUBLE_EQ(zero.cv, 0.0);  // undefined CV degrades to 0, not inf
}

}  // namespace
}  // namespace leime::util
