#include "util/stats.h"

#include <gtest/gtest.h>

#include <stdexcept>

namespace leime::util {
namespace {

TEST(RunningStats, EmptyIsZero) {
  RunningStats s;
  EXPECT_TRUE(s.empty());
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
}

TEST(RunningStats, KnownMoments) {
  RunningStats s;
  for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(v);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);  // unbiased
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(RunningStats, SingleObservationVarianceZero) {
  RunningStats s;
  s.add(42.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.mean(), 42.0);
}

TEST(RunningStats, MergeMatchesSequential) {
  RunningStats all, a, b;
  for (int i = 0; i < 50; ++i) {
    const double v = i * 0.37 - 3.0;
    all.add(v);
    (i % 2 ? a : b).add(v);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-12);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(a.min(), all.min());
  EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(RunningStats, MergeWithEmpty) {
  RunningStats a, b;
  a.add(1.0);
  a.merge(b);
  EXPECT_EQ(a.count(), 1u);
  b.merge(a);
  EXPECT_EQ(b.count(), 1u);
  EXPECT_DOUBLE_EQ(b.mean(), 1.0);
}

TEST(Percentile, InterpolatesBetweenRanks) {
  std::vector<double> v{1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(percentile(v, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(percentile(v, 1.0), 4.0);
  EXPECT_DOUBLE_EQ(percentile(v, 0.5), 2.5);
}

TEST(Percentile, SingleElementAndErrors) {
  EXPECT_DOUBLE_EQ(percentile({7.0}, 0.99), 7.0);
  EXPECT_THROW(percentile({}, 0.5), std::invalid_argument);
  EXPECT_THROW(percentile({1.0}, 1.5), std::invalid_argument);
  EXPECT_THROW(percentile({1.0}, -0.1), std::invalid_argument);
}

TEST(Percentile, UnsortedInputHandled) {
  std::vector<double> v{9.0, 1.0, 5.0};
  EXPECT_DOUBLE_EQ(percentile(v, 0.5), 5.0);
}

TEST(Summarize, FullSummary) {
  std::vector<double> v;
  for (int i = 1; i <= 100; ++i) v.push_back(i);
  const Summary s = summarize(v);
  EXPECT_EQ(s.count, 100u);
  EXPECT_DOUBLE_EQ(s.mean, 50.5);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 100.0);
  EXPECT_NEAR(s.p50, 50.5, 1e-9);
  EXPECT_NEAR(s.p95, 95.05, 1e-9);
}

TEST(Summarize, EmptyIsAllZero) {
  const Summary s = summarize({});
  EXPECT_EQ(s.count, 0u);
  EXPECT_DOUBLE_EQ(s.mean, 0.0);
  EXPECT_DOUBLE_EQ(s.p99, 0.0);
}

TEST(MeanOf, Basics) {
  EXPECT_DOUBLE_EQ(mean_of({1.0, 2.0, 3.0}), 2.0);
  EXPECT_DOUBLE_EQ(mean_of({}), 0.0);
}

}  // namespace
}  // namespace leime::util
