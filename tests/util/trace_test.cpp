#include "util/trace.h"

#include <gtest/gtest.h>

#include <stdexcept>

namespace leime::util {
namespace {

TEST(PiecewiseConstant, StepsAtBreakpoints) {
  PiecewiseConstant t({{0.0, 1.0}, {10.0, 5.0}, {20.0, 2.0}});
  EXPECT_DOUBLE_EQ(t.value_at(-5.0), 1.0);  // before first breakpoint
  EXPECT_DOUBLE_EQ(t.value_at(0.0), 1.0);
  EXPECT_DOUBLE_EQ(t.value_at(9.999), 1.0);
  EXPECT_DOUBLE_EQ(t.value_at(10.0), 5.0);
  EXPECT_DOUBLE_EQ(t.value_at(15.0), 5.0);
  EXPECT_DOUBLE_EQ(t.value_at(100.0), 2.0);
}

TEST(PiecewiseConstant, ConstantHelper) {
  auto t = PiecewiseConstant::constant(3.5);
  EXPECT_DOUBLE_EQ(t.value_at(0.0), 3.5);
  EXPECT_DOUBLE_EQ(t.value_at(1e9), 3.5);
}

TEST(PiecewiseConstant, MaxValue) {
  PiecewiseConstant t({{0.0, 1.0}, {1.0, 9.0}, {2.0, 4.0}});
  EXPECT_DOUBLE_EQ(t.max_value(), 9.0);
}

TEST(PiecewiseConstant, Validation) {
  EXPECT_THROW(PiecewiseConstant({}), std::invalid_argument);
  EXPECT_THROW(PiecewiseConstant({{1.0, 2.0}, {1.0, 3.0}}),
               std::invalid_argument);
  EXPECT_THROW(PiecewiseConstant({{2.0, 2.0}, {1.0, 3.0}}),
               std::invalid_argument);
}

}  // namespace
}  // namespace leime::util
namespace leime::util {
namespace {

TEST(PiecewiseConstant, ShiftedMatchesOriginal) {
  PiecewiseConstant t({{0.0, 1.0}, {10.0, 5.0}, {20.0, 2.0}});
  const auto s = t.shifted(12.0);
  EXPECT_DOUBLE_EQ(s.value_at(0.0), 5.0);
  EXPECT_DOUBLE_EQ(s.value_at(7.9), 5.0);
  EXPECT_DOUBLE_EQ(s.value_at(8.0), 2.0);
  EXPECT_DOUBLE_EQ(s.value_at(100.0), 2.0);
}

TEST(PiecewiseConstant, ShiftBeyondLastBreakpointIsConstant) {
  PiecewiseConstant t({{0.0, 1.0}, {10.0, 5.0}});
  const auto s = t.shifted(50.0);
  EXPECT_DOUBLE_EQ(s.value_at(0.0), 5.0);
  EXPECT_DOUBLE_EQ(s.value_at(1e6), 5.0);
  EXPECT_EQ(s.points().size(), 1u);
}

TEST(PiecewiseConstant, ZeroShiftEquivalent) {
  PiecewiseConstant t({{0.0, 3.0}, {4.0, 7.0}});
  const auto s = t.shifted(0.0);
  for (double x : {0.0, 3.9, 4.0, 9.0})
    EXPECT_DOUBLE_EQ(s.value_at(x), t.value_at(x));
}

// Composition with slot-grid probe sampling (how the observability layer
// reads traces): sampling the shifted trace on the slot grid must equal
// sampling the original at grid + offset, including when slot boundaries
// land exactly on (shifted) breakpoints.
TEST(PiecewiseConstant, ShiftedComposesWithSlotSampling) {
  PiecewiseConstant t({{0.0, 1.0}, {2.5, 4.0}, {7.0, 0.5}, {13.0, 9.0}});
  const double tau = 0.5;  // probe period; 2.5 and 7.0 land on the grid
  for (double offset : {0.0, 0.5, 2.5, 3.75, 7.0, 20.0}) {
    const auto s = t.shifted(offset);
    for (int k = 0; k < 40; ++k) {
      const double slot = k * tau;
      EXPECT_DOUBLE_EQ(s.value_at(slot), t.value_at(slot + offset))
          << "offset " << offset << " slot " << slot;
    }
  }
}

TEST(PiecewiseConstant, ShiftedTwiceEqualsSingleShiftOnGrid) {
  PiecewiseConstant t({{0.0, 2.0}, {3.0, 6.0}, {9.0, 1.0}});
  const auto twice = t.shifted(2.0).shifted(4.5);
  const auto once = t.shifted(6.5);
  for (int k = 0; k < 30; ++k) {
    const double slot = k * 0.25;
    EXPECT_DOUBLE_EQ(twice.value_at(slot), once.value_at(slot));
  }
}

}  // namespace
}  // namespace leime::util
