#include "baselines/exit_baselines.h"

#include <gtest/gtest.h>

#include "core/exit_setting.h"
#include "models/zoo.h"

namespace leime::baselines {
namespace {

class BaselineZooTest : public testing::TestWithParam<models::ModelKind> {};

TEST_P(BaselineZooTest, AllStrategiesReturnValidCombos) {
  const auto profile = models::make_profile(GetParam());
  const int m = profile.num_units();
  core::CostModel cm(profile, core::testbed_environment());
  for (const auto strategy :
       {ExitStrategy::kLeime, ExitStrategy::kDdnn, ExitStrategy::kEdgent,
        ExitStrategy::kMinComp, ExitStrategy::kMinTran, ExitStrategy::kMean}) {
    const auto combo = select_exits(strategy, cm);
    EXPECT_GE(combo.e1, 1) << to_string(strategy);
    EXPECT_LT(combo.e1, combo.e2) << to_string(strategy);
    EXPECT_LT(combo.e2, combo.e3) << to_string(strategy);
    EXPECT_EQ(combo.e3, m) << to_string(strategy);
  }
}

TEST_P(BaselineZooTest, LeimeIsNeverWorseThanHeuristics) {
  const auto profile = models::make_profile(GetParam());
  core::CostModel cm(profile, core::testbed_environment());
  const double leime_cost =
      cm.expected_tct(select_exits(ExitStrategy::kLeime, cm));
  for (const auto strategy :
       {ExitStrategy::kDdnn, ExitStrategy::kEdgent, ExitStrategy::kMinComp,
        ExitStrategy::kMinTran, ExitStrategy::kMean}) {
    const auto combo = select_exits(strategy, cm);
    EXPECT_LE(leime_cost, cm.expected_tct(combo) + 1e-9)
        << to_string(strategy);
  }
}

INSTANTIATE_TEST_SUITE_P(AllModels, BaselineZooTest,
                         testing::ValuesIn(models::all_model_kinds()),
                         [](const auto& info) {
                           std::string n = models::to_string(info.param);
                           for (auto& c : n)
                             if (!isalnum(static_cast<unsigned char>(c))) c = '_';
                           return n;
                         });

TEST(ExitBaselines, MinCompPicksEarliestExits) {
  const auto profile = models::make_vgg16();
  const auto combo = min_comp_exit_setting(profile);
  EXPECT_EQ(combo.e1, 1);
  EXPECT_EQ(combo.e2, 2);
}

TEST(ExitBaselines, MeanSplitsInThirds) {
  const auto profile = models::make_resnet34();  // m = 17
  const auto combo = mean_exit_setting(profile);
  EXPECT_EQ(combo.e1, 5);
  EXPECT_EQ(combo.e2, 11);
}

TEST(ExitBaselines, EdgentPrefersSmallestTensors) {
  const auto profile = models::make_vgg16();
  const auto combo = edgent_exit_setting(profile);
  // No exit in the allowed First-exit range may have a smaller tensor.
  for (int i = 1; i <= profile.num_units() - 2; ++i)
    EXPECT_GE(profile.out_bytes_after(i),
              profile.out_bytes_after(combo.e1));
}

TEST(ExitBaselines, DdnnBalancesRateAndData) {
  const auto profile = models::make_vgg16();
  const auto combo = ddnn_exit_setting(profile);
  const auto score = [&](int i) {
    return profile.exit(i).exit_rate / profile.out_bytes_after(i);
  };
  for (int i = 1; i <= profile.num_units() - 2; ++i)
    EXPECT_LE(score(i), score(combo.e1) + 1e-18);
}

TEST(ExitBaselines, MinTranMinimisesExpectedBytes) {
  const auto profile = models::make_squeezenet();
  const auto combo = min_tran_exit_setting(profile);
  const int m = profile.num_units();
  const auto expected_bytes = [&](int e1, int e2) {
    return (1.0 - profile.exit(e1).exit_rate) * profile.out_bytes_after(e1) +
           (1.0 - profile.exit(e2).exit_rate) * profile.out_bytes_after(e2);
  };
  const double best = expected_bytes(combo.e1, combo.e2);
  for (int e1 = 1; e1 <= m - 2; ++e1)
    for (int e2 = e1 + 1; e2 <= m - 1; ++e2)
      EXPECT_GE(expected_bytes(e1, e2) + 1e-12, best);
}

TEST(ExitBaselines, StrategyNames) {
  EXPECT_EQ(to_string(ExitStrategy::kLeime), "LEIME");
  EXPECT_EQ(to_string(ExitStrategy::kMinTran), "min_tran");
}

}  // namespace
}  // namespace leime::baselines
namespace leime::baselines {
namespace {

TEST(NeurosurgeonNative, IsOptimalOverAllPartitions) {
  const auto profile = models::make_inception_v3();
  core::CostModel cm(profile, core::testbed_environment());
  const auto best = neurosurgeon_native_partition(cm);
  const int m = cm.num_exits();
  EXPECT_LE(0, best.r1);
  EXPECT_LE(best.r1, best.r2);
  EXPECT_LE(best.r2, m);
  for (int r1 = 0; r1 <= m; ++r1)
    for (int r2 = r1; r2 <= m; ++r2)
      EXPECT_GE(cm.no_exit_tct(r1, r2) + 1e-12, best.latency);
}

TEST(NeurosurgeonNative, SlowDeviceOffloadsEverything) {
  const auto profile = models::make_vgg16();
  auto env = core::testbed_environment();
  env.caps.device_flops = 1e7;  // pathologically slow device
  core::CostModel cm(profile, env);
  const auto best = neurosurgeon_native_partition(cm);
  EXPECT_EQ(best.r1, 0);  // nothing runs on the device
}

TEST(NeurosurgeonNative, NativeBeatsOrMatchesPinnedCuts) {
  // The native optimizer can only improve on the paper's pinned cut points
  // under the no-exit metric.
  for (const auto kind : models::all_model_kinds()) {
    const auto profile = models::make_profile(kind);
    core::CostModel cm(profile, core::testbed_environment());
    const auto pinned = core::branch_and_bound_exit_setting(cm).combo;
    const auto native = neurosurgeon_native_partition(cm);
    EXPECT_LE(native.latency,
              cm.no_exit_tct(pinned.e1, pinned.e2) + 1e-12)
        << models::to_string(kind);
  }
}

}  // namespace
}  // namespace leime::baselines
