#include "workload/arrival.h"

#include <gtest/gtest.h>

#include "util/stats.h"

namespace leime::workload {
namespace {

TEST(PoissonArrivals, MeanInterarrivalMatchesRate) {
  PoissonArrivals p(4.0);
  util::Rng rng(1);
  util::RunningStats s;
  for (int i = 0; i < 50000; ++i) s.add(p.next_interarrival(0.0, rng));
  EXPECT_NEAR(s.mean(), 0.25, 0.01);
  EXPECT_DOUBLE_EQ(p.rate_at(123.0), 4.0);
  EXPECT_THROW(PoissonArrivals(0.0), std::invalid_argument);
}

TEST(PeriodicArrivals, Deterministic) {
  PeriodicArrivals p(0.5);
  util::Rng rng(1);
  EXPECT_DOUBLE_EQ(p.next_interarrival(10.0, rng), 0.5);
  EXPECT_DOUBLE_EQ(p.rate_at(0.0), 2.0);
  EXPECT_THROW(PeriodicArrivals(-1.0), std::invalid_argument);
}

TEST(TraceArrivals, RatesFollowTrace) {
  // Rate 10/s until t=50, then 1/s. Count arrivals in each regime.
  TraceArrivals p(util::PiecewiseConstant({{0.0, 10.0}, {50.0, 1.0}}));
  util::Rng rng(3);
  double t = 0.0;
  int early = 0, late = 0;
  while (t < 100.0) {
    t += p.next_interarrival(t, rng);
    if (t < 50.0)
      ++early;
    else if (t < 100.0)
      ++late;
  }
  EXPECT_NEAR(early, 500, 80);
  EXPECT_NEAR(late, 50, 25);
}

TEST(TraceArrivals, Validation) {
  EXPECT_THROW(TraceArrivals(util::PiecewiseConstant::constant(0.0)),
               std::invalid_argument);
  EXPECT_THROW(
      TraceArrivals(util::PiecewiseConstant({{0.0, -1.0}, {1.0, 2.0}})),
      std::invalid_argument);
}

TEST(BurstyArrivals, LongRunRateBetweenPhases) {
  BurstyArrivals p(2.0, 20.0, 5.0, 5.0);
  util::Rng rng(7);
  double t = 0.0;
  int count = 0;
  while (t < 2000.0) {
    t += p.next_interarrival(t, rng);
    ++count;
  }
  const double rate = count / 2000.0;
  // Equal dwell -> average rate ≈ (2+20)/2 = 11.
  EXPECT_GT(rate, 7.0);
  EXPECT_LT(rate, 15.0);
  EXPECT_THROW(BurstyArrivals(0.0, 1.0, 1.0, 1.0), std::invalid_argument);
}

TEST(UniformSlotArrivals, RangeAndMean) {
  UniformSlotArrivals a(8);
  util::Rng rng(9);
  util::RunningStats s;
  for (int i = 0; i < 20000; ++i) {
    const int m = a.tasks_in_slot(rng);
    ASSERT_GE(m, 0);
    ASSERT_LE(m, 8);
    s.add(m);
  }
  EXPECT_NEAR(s.mean(), a.mean(), 0.1);
  EXPECT_THROW(UniformSlotArrivals(-1), std::invalid_argument);
}

TEST(PoissonSlotArrivals, Mean) {
  PoissonSlotArrivals a(6.0);
  util::Rng rng(11);
  util::RunningStats s;
  for (int i = 0; i < 20000; ++i) s.add(a.tasks_in_slot(rng));
  EXPECT_NEAR(s.mean(), 6.0, 0.15);
  EXPECT_THROW(PoissonSlotArrivals(-0.5), std::invalid_argument);
}

}  // namespace
}  // namespace leime::workload
