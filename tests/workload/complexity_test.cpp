#include "workload/complexity.h"

#include <gtest/gtest.h>

#include "models/zoo.h"

namespace leime::workload {
namespace {

TEST(ComplexityModel, UniformAtDifficultyOne) {
  ComplexityModel m(1.0);
  util::Rng rng(1);
  double sum = 0.0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) sum += m.sample(rng);
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(ComplexityModel, DifficultySkewsDistribution) {
  util::Rng rng(2);
  ComplexityModel hard(3.0), easy(0.3);
  double hard_sum = 0.0, easy_sum = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    hard_sum += hard.sample(rng);
    easy_sum += easy.sample(rng);
  }
  EXPECT_GT(hard_sum / n, 0.65);  // skewed towards complex
  EXPECT_LT(easy_sum / n, 0.35);  // skewed towards simple
  EXPECT_THROW(ComplexityModel(0.0), std::invalid_argument);
}

TEST(ExitForComplexity, MatchesCumulativeRates) {
  const std::vector<double> rates{0.3, 0.6, 1.0};
  EXPECT_EQ(exit_for_complexity(rates, 0.0), 1);
  EXPECT_EQ(exit_for_complexity(rates, 0.29), 1);
  EXPECT_EQ(exit_for_complexity(rates, 0.3), 2);
  EXPECT_EQ(exit_for_complexity(rates, 0.59), 2);
  EXPECT_EQ(exit_for_complexity(rates, 0.99), 3);
}

TEST(ExitForComplexity, EmpiricalRatesMatchSigma) {
  const std::vector<double> rates{0.25, 0.5, 1.0};
  util::Rng rng(3);
  ComplexityModel m(1.0);
  int counts[3] = {0, 0, 0};
  const int n = 50000;
  for (int i = 0; i < n; ++i)
    ++counts[exit_for_complexity(rates, m.sample(rng)) - 1];
  EXPECT_NEAR(counts[0] / static_cast<double>(n), 0.25, 0.01);
  EXPECT_NEAR((counts[0] + counts[1]) / static_cast<double>(n), 0.5, 0.01);
}

TEST(ExitForComplexity, Validation) {
  EXPECT_THROW(exit_for_complexity({}, 0.5), std::invalid_argument);
  EXPECT_THROW(exit_for_complexity({0.5, 0.9}, 0.5), std::invalid_argument);
  EXPECT_THROW(exit_for_complexity({0.5, 1.0}, 1.0), std::invalid_argument);
  EXPECT_THROW(exit_for_complexity({0.5, 1.0}, -0.1), std::invalid_argument);
}

TEST(BlockForComplexity, UsesPartitionSigmas) {
  const auto profile = models::make_inception_v3();
  const auto part =
      core::make_partition(profile, {3, 10, profile.num_units()});
  EXPECT_EQ(block_for_complexity(part, 0.0), 1);
  EXPECT_EQ(block_for_complexity(part, part.sigma1), 2);
  EXPECT_EQ(block_for_complexity(part, part.sigma2), 3);
  EXPECT_EQ(block_for_complexity(part, 0.999), 3);
  EXPECT_THROW(block_for_complexity(part, 1.0), std::invalid_argument);
}

}  // namespace
}  // namespace leime::workload
