// Differential/property suite for the policy core's fast paths: across
// randomized churn traces the engine with memo cache + warm start enabled
// returns the *identical* (combo, cost) the cold reference search returns
// — exact integer equality on the combo and bit-for-bit equality on the
// cost double — and the batched fleet path reproduces the sequential
// per-device loop within 0 ULP. Trace substreams are addressed via
// util::Rng::split so every trace replays bit-for-bit on any platform.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "core/exit_setting.h"
#include "core/offload_policy.h"
#include "core/partition.h"
#include "models/profile.h"
#include "policy/batch.h"
#include "policy/engine.h"
#include "policy/warm_start.h"
#include "util/rng.h"

namespace leime::policy {
namespace {

/// Random chain profile with monotone exit rates (Theorem 1's assumption;
/// same construction as tests/core/exit_setting_test.cpp).
models::ModelProfile random_profile(int m, util::Rng& rng) {
  std::vector<models::UnitSpec> units;
  std::vector<models::ExitSpec> exits;
  std::vector<double> rates;
  for (int i = 0; i < m; ++i) {
    units.push_back({"u" + std::to_string(i), rng.uniform(1e6, 5e8),
                     rng.uniform(1e3, 5e6)});
    exits.push_back({rng.uniform(1e4, 1e6), 0.0});
    rates.push_back(i + 1 == m ? 1.0 : rng.uniform());
  }
  std::sort(rates.begin(), rates.end());
  rates.back() = 1.0;
  for (int i = 0; i < m; ++i)
    exits[static_cast<std::size_t>(i)].exit_rate =
        rates[static_cast<std::size_t>(i)];
  return models::ModelProfile("rand", 1e5, std::move(units),
                              std::move(exits));
}

core::Environment random_env(util::Rng& rng) {
  core::Environment env;
  env.caps = {rng.uniform(1e9, 4e10), rng.uniform(5e10, 4e11),
              rng.uniform(1e12, 1e13)};
  env.net = {rng.uniform(1e5, 2e7), rng.uniform(0.005, 0.2),
             rng.uniform(1e6, 5e7), rng.uniform(0.01, 0.1)};
  return env;
}

/// Small multiplicative drift: the kind of slot-to-slot bandwidth/load
/// wobble that keeps an incumbent near-optimal.
void drift_env(core::Environment& env, util::Rng& rng) {
  env.net.dev_edge_bw *= rng.uniform(0.9, 1.1);
  env.net.dev_edge_lat *= rng.uniform(0.95, 1.05);
  env.caps.edge_flops *= rng.uniform(0.9, 1.1);
}

// The tentpole property: 1000 randomized churn traces, every step's
// engine result identical to the cold reference. Churn comes in three
// strengths — drift (incumbent stays useful), environment jumps
// (incumbent becomes far from optimal) and model swaps (incumbent becomes
// *incompatible*: different m) — plus replays of earlier environments so
// the memo cache serves exact hits mid-trace.
TEST(PolicyDiff, WarmCacheEngineMatchesColdSearchOnChurnTraces) {
  const util::Rng base(0xD1FFull);
  const int kTraces = 1000;
  const int kSteps = 8;

  std::uint64_t warm_hits = 0, cache_hits = 0, swaps = 0;
  for (int trace = 0; trace < kTraces; ++trace) {
    util::Rng rng = base.split(static_cast<std::uint64_t>(trace));
    Config config;
    config.memo_cache = true;
    config.warm_start = true;
    // Tiny capacities on some traces exercise eviction mid-trace.
    config.cache_capacity = trace % 7 == 0 ? 2 : 64;
    config.quant_per_octave = trace % 3 == 0 ? 1 : 4;
    Engine engine(config);
    Incumbent incumbent;

    int m = static_cast<int>(rng.uniform_int(8, 32));
    models::ModelProfile profile = random_profile(m, rng);
    core::Environment env = random_env(rng);
    std::vector<core::Environment> history;

    for (int step = 0; step < kSteps; ++step) {
      const double roll = rng.uniform();
      if (roll < 0.15) {
        // Model swap: new unit count invalidates the incumbent entirely.
        m = static_cast<int>(rng.uniform_int(8, 32));
        profile = random_profile(m, rng);
        ++swaps;
      } else if (roll < 0.35) {
        env = random_env(rng);  // jump
      } else if (roll < 0.55 && !history.empty()) {
        // Replay an earlier environment bit-for-bit: an exact cache hit.
        env = history[static_cast<std::size_t>(
            rng.uniform_int(0, static_cast<std::int64_t>(history.size()) - 1))];
      } else {
        drift_env(env, rng);
      }
      history.push_back(env);

      const core::CostModel cm(profile, env);
      const auto before = engine.stats();
      const auto fast = engine.exit_setting(cm, &incumbent);
      const auto after = engine.stats();
      const auto cold = core::branch_and_bound_exit_setting(cm);

      ASSERT_EQ(fast.combo, cold.combo)
          << "trace " << trace << " step " << step << " m=" << m;
      // Bit-for-bit: both paths evaluate expected_tct on the same combo.
      ASSERT_EQ(fast.cost, cold.cost)
          << "trace " << trace << " step " << step;
      warm_hits += after.warm_starts - before.warm_starts;
      cache_hits += after.cache_hits - before.cache_hits;
    }
  }
  // The trace mix must actually exercise every path or the property is
  // vacuous.
  EXPECT_GT(warm_hits, 1000u);
  EXPECT_GT(cache_hits, 500u);
  EXPECT_GT(swaps, 300u);
}

// Warm-start in isolation (no cache in front): seeded from last step's
// combo — or a deliberately stale-but-compatible one — the warm search
// returns the cold result on every instance, and its round structure
// matches the cold search exactly.
TEST(PolicyDiff, WarmStartMatchesColdForAnyCompatibleIncumbent) {
  const util::Rng base(0xBB5EEDull);
  std::vector<double> scratch;
  for (int trial = 0; trial < 1000; ++trial) {
    util::Rng rng = base.split(static_cast<std::uint64_t>(trial));
    const int m = static_cast<int>(rng.uniform_int(8, 40));
    const auto profile = random_profile(m, rng);
    core::Environment env = random_env(rng);
    core::ExitCombo seed{1, 2, m};
    for (int step = 0; step < 3; ++step) {
      const core::CostModel cm(profile, env);
      const auto cold = core::branch_and_bound_exit_setting(cm);
      const auto warm = warm_start_branch_and_bound(cm, seed, scratch);
      ASSERT_EQ(warm.result.combo, cold.combo)
          << "trial " << trial << " step " << step << " seed {" << seed.e1
          << "," << seed.e2 << "}";
      ASSERT_EQ(warm.result.cost, cold.cost)
          << "trial " << trial << " step " << step;
      ASSERT_EQ(warm.result.rounds, cold.rounds)
          << "trial " << trial << " step " << step;
      // Next step: genuine incumbent (the optimum) under a drifted env, or
      // an adversarial random compatible seed.
      if (rng.uniform() < 0.5) {
        seed = warm.result.combo;
      } else {
        const int e1 = static_cast<int>(rng.uniform_int(1, m - 2));
        const int e2 = static_cast<int>(rng.uniform_int(e1 + 1, m - 1));
        seed = {e1, e2, m};
      }
      drift_env(env, rng);
    }
  }
}

// Cache-hit ≡ recompute, stated directly: serve a hit, then recompute the
// same observation cold; every field of the replayed result (including
// the original search's work counters) is identical.
TEST(PolicyDiff, CacheHitReplaysTheOriginalComputation) {
  const util::Rng base(0xCACE ^ 0x5EEDull);
  for (int trial = 0; trial < 200; ++trial) {
    util::Rng rng = base.split(static_cast<std::uint64_t>(trial));
    const auto profile =
        random_profile(static_cast<int>(rng.uniform_int(8, 32)), rng);
    const auto env = random_env(rng);
    const core::CostModel cm(profile, env);

    Config config;
    config.memo_cache = true;
    Engine engine(config);
    const auto miss = engine.exit_setting(cm);
    const auto hit = engine.exit_setting(cm);
    const auto cold = core::branch_and_bound_exit_setting(cm);
    ASSERT_EQ(hit.combo, miss.combo);
    ASSERT_EQ(hit.cost, miss.cost);
    ASSERT_EQ(hit.evaluations, miss.evaluations);
    ASSERT_EQ(hit.rounds, miss.rounds);
    ASSERT_EQ(miss.combo, cold.combo);
    ASSERT_EQ(miss.cost, cold.cost);
    ASSERT_EQ(engine.stats().cache_hits, 1u);
  }
}

/// Random but feasible per-slot device state over a shared partition.
core::DeviceSlotState random_state(const core::MeDnnPartition* partition,
                                   util::Rng& rng) {
  core::DeviceSlotState s;
  s.partition = partition;
  s.device_flops = rng.uniform(1e9, 4e10);
  s.edge_share_flops = rng.uniform(1e9, 1e11);
  s.bandwidth = rng.uniform(1e5, 2e7);
  s.latency = rng.uniform(0.001, 0.1);
  s.queue_device = rng.uniform(0.0, 20.0);
  s.queue_edge = rng.uniform(0.0, 20.0);
  s.arrivals = rng.uniform(0.0, 5.0);
  s.uplink_backlog_bytes = rng.uniform(0.0, 1e5);
  s.edge_available = rng.uniform() < 0.9;
  s.config.V = rng.uniform(1.0, 200.0);
  s.config.tau = 1.0;
  return s;
}

// Batched ≡ sequential within 0 ULP, across random fleets with deliberate
// duplicate states (the dedup's bread and butter) under both the exact
// solver and the closed balance rule.
TEST(PolicyDiff, BatchedFleetDecisionsMatchSequentialBitForBit) {
  util::Rng profile_rng(7);
  const auto profile = random_profile(16, profile_rng);
  const auto partition = core::make_partition(profile, {4, 9, 16});
  const core::LeimePolicy leime;
  const core::BalancePolicy balance;
  const util::Rng base(0xBA7C4ull);

  std::uint64_t total_reused = 0;
  for (int trial = 0; trial < 1000; ++trial) {
    util::Rng rng = base.split(static_cast<std::uint64_t>(trial));
    const auto n = static_cast<std::size_t>(rng.uniform_int(1, 32));
    std::vector<core::DeviceSlotState> states;
    for (std::size_t i = 0; i < n; ++i) {
      if (!states.empty() && rng.uniform() < 0.4) {
        // Duplicate an earlier device bit-for-bit (homogeneous class).
        states.push_back(states[static_cast<std::size_t>(rng.uniform_int(
            0, static_cast<std::int64_t>(states.size()) - 1))]);
      } else {
        states.push_back(random_state(&partition, rng));
      }
    }
    const core::OffloadPolicy& policy =
        trial % 2 == 0 ? static_cast<const core::OffloadPolicy&>(leime)
                       : balance;

    std::vector<double> batched;
    const auto stats = decide_fleet(policy, states, batched);
    ASSERT_EQ(batched.size(), states.size());
    ASSERT_EQ(stats.groups + stats.reused, states.size());
    total_reused += stats.reused;
    for (std::size_t i = 0; i < states.size(); ++i) {
      const double sequential = policy.decide(states[i]);
      ASSERT_EQ(batched[i], sequential) << "trial " << trial << " dev " << i;
    }
  }
  EXPECT_GT(total_reused, 1000u);  // the dedup path was genuinely hit
}

// The Engine's decide_fleet with batch_eq20 off must be *literally* the
// sequential loop, and with it on must match (same 0-ULP property, one
// layer up, including the stats plumbing).
TEST(PolicyDiff, EngineDecideFleetMatchesAtBothKnobSettings) {
  util::Rng rng(0xF1EE7ull);
  const auto profile = random_profile(12, rng);
  const auto partition = core::make_partition(profile, {3, 7, 12});
  const core::LeimePolicy policy;
  std::vector<core::DeviceSlotState> states;
  for (int i = 0; i < 24; ++i)
    states.push_back(random_state(&partition, rng));
  states[5] = states[2];
  states[20] = states[2];

  Config on;
  on.batch_eq20 = true;
  Engine batched_engine(on);
  Engine plain_engine;  // defaults: sequential
  std::vector<double> batched, plain;
  batched_engine.decide_fleet(policy, states, batched);
  plain_engine.decide_fleet(policy, states, plain);
  ASSERT_EQ(batched.size(), plain.size());
  for (std::size_t i = 0; i < plain.size(); ++i)
    ASSERT_EQ(batched[i], plain[i]) << i;
  EXPECT_EQ(batched_engine.stats().batch_reused, 2u);
  EXPECT_EQ(batched_engine.stats().batch_groups, 22u);
  EXPECT_EQ(plain_engine.stats().batch_groups, 0u);
}

}  // namespace
}  // namespace leime::policy
