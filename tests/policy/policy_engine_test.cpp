// Unit contracts of the policy core: quantization determinism, the memo
// cache's capacity/eviction contract, config validation, engine
// degeneration to the reference search, and metric publication. The
// equivalence *properties* (warm ≡ cold, cache-hit ≡ recompute,
// batched ≡ sequential) live in policy_diff_test.cpp.
#include "policy/engine.h"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <stdexcept>

#include "models/zoo.h"
#include "policy/quantize.h"
#include "policy/warm_start.h"

namespace leime::policy {
namespace {

// --- quantization -----------------------------------------------------

TEST(Quantize, SameValueSameBucketAcrossCalls) {
  for (double v : {1e-9, 0.37, 1.0, 5.0, 1e12}) {
    EXPECT_EQ(quantize_log(v, 4), quantize_log(v, 4)) << v;
  }
}

TEST(Quantize, DoublingShiftsByPerOctave) {
  // One octave apart => exactly per_octave buckets apart, at any mantissa.
  for (int per_octave : {1, 4, 16}) {
    for (double v : {0.3, 1.0, 1.5, 777.25}) {
      EXPECT_EQ(quantize_log(2.0 * v, per_octave),
                quantize_log(v, per_octave) + per_octave)
          << "v=" << v << " per_octave=" << per_octave;
    }
  }
}

TEST(Quantize, NearbyValuesShareABucket) {
  // A 1% perturbation moves at most one sub-bucket at 4/octave.
  const int a = quantize_log(1.000, 4);
  const int b = quantize_log(1.009, 4);
  EXPECT_LE(std::abs(a - b), 1);
}

TEST(Quantize, NonPositiveAndNonFiniteCollapseToSentinel) {
  const auto sentinel = std::numeric_limits<std::int32_t>::min();
  EXPECT_EQ(quantize_log(0.0, 4), sentinel);
  EXPECT_EQ(quantize_log(-1.0, 4), sentinel);
  EXPECT_EQ(quantize_log(std::numeric_limits<double>::quiet_NaN(), 4),
            sentinel);
  EXPECT_EQ(quantize_log(std::numeric_limits<double>::infinity(), 4),
            sentinel);
}

TEST(Quantize, RejectsBadResolution) {
  EXPECT_THROW(quantize_log(1.0, 0), std::invalid_argument);
}

TEST(Quantize, FingerprintSeparatesProfiles) {
  const auto a = profile_fingerprint(models::make_squeezenet());
  const auto b = profile_fingerprint(models::make_inception_v3());
  EXPECT_NE(a, b);
  EXPECT_EQ(a, profile_fingerprint(models::make_squeezenet()));
}

TEST(Quantize, EnvBitsEqualIsExact) {
  core::Environment a = core::testbed_environment();
  core::Environment b = a;
  EXPECT_TRUE(env_bits_equal(a, b));
  b.net.dev_edge_bw = std::nextafter(b.net.dev_edge_bw, 1e300);
  EXPECT_FALSE(env_bits_equal(a, b));
  // Signed zero: numerically equal, bit-distinct — must not match, or a
  // cached replay could diverge from a recompute.
  core::Environment c = a;
  core::Environment d = a;
  c.net.dev_edge_lat = 0.0;
  d.net.dev_edge_lat = -0.0;
  EXPECT_FALSE(env_bits_equal(c, d));
}

TEST(Quantize, CacheKeyEqualityFollowsBuckets) {
  const auto fp = profile_fingerprint(models::make_squeezenet());
  core::Environment a = core::testbed_environment();
  core::Environment near = a;
  near.net.dev_edge_bw *= 1.0001;  // same log bucket at 4/octave
  core::Environment far = a;
  far.net.dev_edge_bw *= 8.0;  // three octaves away
  EXPECT_EQ(make_cache_key(fp, a, 4), make_cache_key(fp, near, 4));
  EXPECT_FALSE(make_cache_key(fp, a, 4) == make_cache_key(fp, far, 4));
  EXPECT_FALSE(make_cache_key(fp, a, 4) == make_cache_key(fp + 1, a, 4));
}

// --- memo cache contract ----------------------------------------------

core::ExitSettingResult result_with_cost(double cost) {
  core::ExitSettingResult r;
  r.combo = {1, 2, 3};
  r.cost = cost;
  return r;
}

TEST(ExitCache, RejectsBadConstruction) {
  EXPECT_THROW(ExitSettingCache(0, 4), std::invalid_argument);
  EXPECT_THROW(ExitSettingCache(8, 0), std::invalid_argument);
}

TEST(ExitCache, HitRequiresExactEnvironment) {
  ExitSettingCache cache(8, 4);
  const core::Environment env = core::testbed_environment();
  EXPECT_EQ(cache.lookup(1, env), nullptr);
  cache.insert(1, env, result_with_cost(2.5));
  const auto* hit = cache.lookup(1, env);
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(hit->cost, 2.5);
  // Same quantized bucket, different exact bits: a miss, never a wrong
  // answer (the exact-match guard).
  core::Environment near = env;
  near.net.dev_edge_bw = std::nextafter(near.net.dev_edge_bw, 1e300);
  EXPECT_EQ(cache.lookup(1, near), nullptr);
  EXPECT_EQ(cache.lookup(2, env), nullptr);  // other model, same env
}

TEST(ExitCache, EvictsLeastRecentlyUsed) {
  ExitSettingCache cache(2, 4);
  core::Environment env_a = core::testbed_environment();
  core::Environment env_b = env_a;
  env_b.net.dev_edge_bw *= 64.0;
  core::Environment env_c = env_a;
  env_c.net.dev_edge_bw /= 64.0;

  EXPECT_FALSE(cache.insert(1, env_a, result_with_cost(1.0)));
  EXPECT_FALSE(cache.insert(1, env_b, result_with_cost(2.0)));
  EXPECT_EQ(cache.size(), 2u);
  // Touch A so B becomes the LRU entry, then insert C: B must go.
  ASSERT_NE(cache.lookup(1, env_a), nullptr);
  EXPECT_TRUE(cache.insert(1, env_c, result_with_cost(3.0)));
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_NE(cache.lookup(1, env_a), nullptr);
  EXPECT_EQ(cache.lookup(1, env_b), nullptr);
  EXPECT_NE(cache.lookup(1, env_c), nullptr);
}

TEST(ExitCache, OverwriteInPlaceNeverEvicts) {
  ExitSettingCache cache(2, 4);
  core::Environment env_a = core::testbed_environment();
  core::Environment env_b = env_a;
  env_b.net.dev_edge_bw *= 64.0;
  cache.insert(1, env_a, result_with_cost(1.0));
  cache.insert(1, env_b, result_with_cost(2.0));
  EXPECT_FALSE(cache.insert(1, env_a, result_with_cost(9.0)));
  EXPECT_EQ(cache.size(), 2u);
  const auto* hit = cache.lookup(1, env_a);
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(hit->cost, 9.0);
  EXPECT_NE(cache.lookup(1, env_b), nullptr);
}

// --- config + engine --------------------------------------------------

TEST(PolicyConfig, ValidateRejectsBadKnobs) {
  Config bad_capacity;
  bad_capacity.cache_capacity = 0;
  EXPECT_THROW(bad_capacity.validate(), std::invalid_argument);
  Config bad_octave;
  bad_octave.quant_per_octave = 0;
  EXPECT_THROW(bad_octave.validate(), std::invalid_argument);
  bad_octave.quant_per_octave = 65;
  EXPECT_THROW(bad_octave.validate(), std::invalid_argument);
  Config defaults;
  EXPECT_NO_THROW(defaults.validate());
  EXPECT_FALSE(defaults.enabled());
  defaults.warm_start = true;
  EXPECT_TRUE(defaults.enabled());
}

TEST(Engine, DefaultsDegenerateToColdSearch) {
  const auto profile = models::make_inception_v3();
  const core::CostModel cm(profile, core::testbed_environment());
  Engine engine;
  Incumbent incumbent;
  const auto got = engine.exit_setting(cm, &incumbent);
  const auto want = core::branch_and_bound_exit_setting(cm);
  EXPECT_EQ(got.combo, want.combo);
  EXPECT_EQ(got.cost, want.cost);
  EXPECT_EQ(got.evaluations, want.evaluations);
  EXPECT_EQ(got.rounds, want.rounds);
  EXPECT_TRUE(incumbent.valid);
  EXPECT_EQ(incumbent.combo, want.combo);
  const auto stats = engine.stats();
  EXPECT_EQ(stats.cold_starts, 1u);
  EXPECT_EQ(stats.cache_hits + stats.cache_misses + stats.warm_starts, 0u);
}

TEST(Engine, MemoCacheHitsOnRepeatedObservation) {
  const auto profile = models::make_squeezenet();
  const core::CostModel cm(profile, core::testbed_environment());
  Config config;
  config.memo_cache = true;
  Engine engine(config);
  const auto first = engine.exit_setting(cm);
  const auto second = engine.exit_setting(cm);
  EXPECT_EQ(first.combo, second.combo);
  EXPECT_EQ(first.cost, second.cost);
  const auto stats = engine.stats();
  EXPECT_EQ(stats.cache_misses, 1u);
  EXPECT_EQ(stats.cache_hits, 1u);
}

TEST(Engine, RejectsInvalidConfig) {
  Config config;
  config.cache_capacity = 0;
  EXPECT_THROW(Engine{config}, std::invalid_argument);
}

TEST(Engine, PublishMetricsRegistersPolicyCounters) {
  const auto profile = models::make_squeezenet();
  const core::CostModel cm(profile, core::testbed_environment());
  Config config;
  config.memo_cache = true;
  Engine engine(config);
  engine.exit_setting(cm);
  engine.exit_setting(cm);

  obs::MetricsRegistry registry;
  engine.publish_metrics(registry);
  const auto snap = registry.snapshot();
  const auto value_of = [&](const std::string& name) -> std::uint64_t {
    for (const auto& c : snap.counters)
      if (c.name == name) return c.value;
    ADD_FAILURE() << "missing counter " << name;
    return 0;
  };
  EXPECT_EQ(value_of("leime_policy_cache_hits_total"), 1u);
  EXPECT_EQ(value_of("leime_policy_cache_misses_total"), 1u);
  EXPECT_EQ(value_of("leime_policy_cache_evictions_total"), 0u);
  EXPECT_EQ(value_of("leime_policy_warm_starts_total"), 0u);
  EXPECT_EQ(value_of("leime_policy_warm_pruned_scans_total"), 0u);
  // The miss fell through to the reference search.
  EXPECT_EQ(value_of("leime_policy_cold_starts_total"), 1u);
  EXPECT_EQ(value_of("leime_policy_batch_groups_total"), 0u);
  EXPECT_EQ(value_of("leime_policy_batch_reused_total"), 0u);
  for (const auto& c : snap.counters)
    EXPECT_TRUE(obs::valid_metric_name(c.name)) << c.name;
}

// Stats counters span the Engine's whole lifetime; a per-run view is the
// field-wise delta since a baseline snapshot. This is what lets one engine
// serve many plan rows without leaking row A's work into row B's metrics
// (Simulation snapshots the baseline at construction).
TEST(Engine, StatsSinceBaselineIsolatesPerRunDeltas) {
  const auto profile = models::make_squeezenet();
  const core::CostModel cm(profile, core::testbed_environment());
  Config config;
  config.memo_cache = true;
  Engine engine(config);

  // "Run 1": one miss + one hit.
  engine.exit_setting(cm);
  engine.exit_setting(cm);
  const Stats baseline = engine.stats();
  EXPECT_EQ(baseline.cache_hits, 1u);
  EXPECT_EQ(baseline.cache_misses, 1u);

  // "Run 2": three more hits on the same observation.
  for (int i = 0; i < 3; ++i) engine.exit_setting(cm);
  const Stats total = engine.stats();
  EXPECT_EQ(total.cache_hits, 4u);  // lifetime counters keep growing

  const Stats delta = total.since(baseline);
  EXPECT_EQ(delta.cache_hits, 3u);
  EXPECT_EQ(delta.cache_misses, 0u);
  EXPECT_EQ(delta.cold_starts, 0u);
  EXPECT_EQ(delta.cache_evictions, 0u);
  EXPECT_EQ(delta.warm_starts, 0u);
  EXPECT_EQ(delta.warm_pruned_scans, 0u);
  EXPECT_EQ(delta.batch_groups, 0u);
  EXPECT_EQ(delta.batch_reused, 0u);
  // since() against a zero baseline is the identity.
  const Stats identity = total.since(Stats{});
  EXPECT_EQ(identity.cache_hits, total.cache_hits);
  EXPECT_EQ(identity.cache_misses, total.cache_misses);

  // publish_metrics(registry, baseline) exports only the delta.
  obs::MetricsRegistry registry;
  engine.publish_metrics(registry, baseline);
  const auto snap = registry.snapshot();
  const auto value_of = [&](const std::string& name) -> std::uint64_t {
    for (const auto& c : snap.counters)
      if (c.name == name) return c.value;
    ADD_FAILURE() << "missing counter " << name;
    return 0;
  };
  EXPECT_EQ(value_of("leime_policy_cache_hits_total"), 3u);
  EXPECT_EQ(value_of("leime_policy_cache_misses_total"), 0u);
  EXPECT_EQ(value_of("leime_policy_cold_starts_total"), 0u);
}

// --- warm start preconditions -----------------------------------------

TEST(WarmStart, IncumbentCompatibility) {
  EXPECT_TRUE(incumbent_compatible({1, 2, 16}, 16));
  EXPECT_TRUE(incumbent_compatible({7, 15, 16}, 16));
  EXPECT_FALSE(incumbent_compatible({0, 2, 16}, 16));   // e1 below range
  EXPECT_FALSE(incumbent_compatible({2, 2, 16}, 16));   // not strictly inc.
  EXPECT_FALSE(incumbent_compatible({1, 16, 16}, 16));  // e2 == m
  EXPECT_FALSE(incumbent_compatible({1, 2, 8}, 16));    // stale model size
}

TEST(WarmStart, RejectsIncompatibleIncumbent) {
  const auto profile = models::make_squeezenet();
  const core::CostModel cm(profile, core::testbed_environment());
  std::vector<double> scratch;
  EXPECT_THROW(
      warm_start_branch_and_bound(cm, {0, 1, profile.num_units()}, scratch),
      std::invalid_argument);
}

}  // namespace
}  // namespace leime::policy
