// Shared-Engine concurrency: N threads hammer one policy::Engine with
// memo cache + warm start enabled (small capacity, so threads race on
// lookups, inserts and evictions) and each thread's result stream must be
// exactly the stream a single thread computes with the cold reference —
// i.e. independent of the thread count and of any cache interleaving.
// scripts/check.sh runs this binary under ThreadSanitizer, which turns
// any unsynchronized cache access into a hard failure.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <thread>
#include <vector>

#include "core/exit_setting.h"
#include "models/profile.h"
#include "policy/engine.h"
#include "util/rng.h"

namespace leime::policy {
namespace {

models::ModelProfile random_profile(int m, util::Rng& rng) {
  std::vector<models::UnitSpec> units;
  std::vector<models::ExitSpec> exits;
  std::vector<double> rates;
  for (int i = 0; i < m; ++i) {
    units.push_back({"u" + std::to_string(i), rng.uniform(1e6, 5e8),
                     rng.uniform(1e3, 5e6)});
    exits.push_back({rng.uniform(1e4, 1e6), 0.0});
    rates.push_back(i + 1 == m ? 1.0 : rng.uniform());
  }
  std::sort(rates.begin(), rates.end());
  rates.back() = 1.0;
  for (int i = 0; i < m; ++i)
    exits[static_cast<std::size_t>(i)].exit_rate =
        rates[static_cast<std::size_t>(i)];
  return models::ModelProfile("rand", 1e5, std::move(units),
                              std::move(exits));
}

core::Environment random_env(util::Rng& rng) {
  core::Environment env;
  env.caps = {rng.uniform(1e9, 4e10), rng.uniform(5e10, 4e11),
              rng.uniform(1e12, 1e13)};
  env.net = {rng.uniform(1e5, 2e7), rng.uniform(0.005, 0.2),
             rng.uniform(1e6, 5e7), rng.uniform(0.01, 0.1)};
  return env;
}

TEST(PolicyConcurrency, SharedEngineStreamsAreThreadCountIndependent) {
  constexpr int kThreads = 8;
  constexpr int kCallsPerThread = 200;

  // A small pool of shared observations: overlap between threads is what
  // makes the cache contended; each thread walks the pool in its own
  // split-addressed order.
  util::Rng pool_rng(0x90017ull);
  std::vector<models::ModelProfile> profiles;
  std::vector<core::Environment> envs;
  for (int i = 0; i < 6; ++i)
    profiles.push_back(
        random_profile(static_cast<int>(pool_rng.uniform_int(8, 24)),
                       pool_rng));
  for (int i = 0; i < 24; ++i) envs.push_back(random_env(pool_rng));

  // Per-thread observation sequences and their cold-reference results,
  // computed up front on one thread.
  const util::Rng base(0xC0C0ull);
  std::vector<std::vector<std::pair<int, int>>> sequences(kThreads);
  std::vector<std::vector<core::ExitSettingResult>> expected(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    util::Rng rng = base.split(static_cast<std::uint64_t>(t));
    for (int c = 0; c < kCallsPerThread; ++c) {
      const int p = static_cast<int>(
          rng.uniform_int(0, static_cast<std::int64_t>(profiles.size()) - 1));
      const int e = static_cast<int>(
          rng.uniform_int(0, static_cast<std::int64_t>(envs.size()) - 1));
      sequences[t].push_back({p, e});
      const core::CostModel cm(profiles[static_cast<std::size_t>(p)],
                               envs[static_cast<std::size_t>(e)]);
      expected[t].push_back(core::branch_and_bound_exit_setting(cm));
    }
  }

  Config config;
  config.memo_cache = true;
  config.warm_start = true;
  config.cache_capacity = 8;  // far below the 6 x 24 pool: constant eviction
  Engine engine(config);

  std::vector<std::string> failures(kThreads);
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      Incumbent incumbent;  // per-stream state, never shared
      for (int c = 0; c < kCallsPerThread; ++c) {
        const auto [p, e] = sequences[static_cast<std::size_t>(t)]
                                     [static_cast<std::size_t>(c)];
        const core::CostModel cm(profiles[static_cast<std::size_t>(p)],
                                 envs[static_cast<std::size_t>(e)]);
        const auto got = engine.exit_setting(cm, &incumbent);
        const auto& want =
            expected[static_cast<std::size_t>(t)][static_cast<std::size_t>(c)];
        if (!(got.combo == want.combo) || got.cost != want.cost) {
          failures[static_cast<std::size_t>(t)] =
              "thread " + std::to_string(t) + " call " + std::to_string(c) +
              ": got {" + std::to_string(got.combo.e1) + "," +
              std::to_string(got.combo.e2) + "} want {" +
              std::to_string(want.combo.e1) + "," +
              std::to_string(want.combo.e2) + "}";
          return;
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  for (const auto& f : failures) EXPECT_TRUE(f.empty()) << f;

  // Liveness of the contended machinery: the run must have exercised
  // hits, misses and evictions, and every call is accounted for.
  const auto stats = engine.stats();
  EXPECT_EQ(stats.cache_hits + stats.cache_misses,
            static_cast<std::uint64_t>(kThreads) * kCallsPerThread);
  EXPECT_GT(stats.cache_hits, 0u);
  EXPECT_GT(stats.cache_evictions, 0u);
  EXPECT_GT(stats.warm_starts + stats.cold_starts, 0u);
}

TEST(PolicyConcurrency, ConcurrentFleetDecisionsAreIndependent) {
  // decide_fleet is const and uses only local scratch: many threads may
  // batch different fleets over one Engine concurrently.
  util::Rng rng(0xF1337ull);
  const auto profile = random_profile(12, rng);
  const auto partition = core::make_partition(profile, {3, 7, 12});
  const core::LeimePolicy policy;

  std::vector<core::DeviceSlotState> states;
  for (int i = 0; i < 16; ++i) {
    core::DeviceSlotState s;
    s.partition = &partition;
    s.device_flops = rng.uniform(1e9, 4e10);
    s.edge_share_flops = rng.uniform(1e9, 1e11);
    s.bandwidth = rng.uniform(1e5, 2e7);
    s.latency = rng.uniform(0.001, 0.1);
    s.queue_device = rng.uniform(0.0, 20.0);
    s.queue_edge = rng.uniform(0.0, 20.0);
    s.arrivals = rng.uniform(0.0, 5.0);
    states.push_back(s);
  }
  states[3] = states[1];
  states[10] = states[1];

  Config config;
  config.batch_eq20 = true;
  Engine engine(config);
  std::vector<double> reference;
  engine.decide_fleet(policy, states, reference);

  std::vector<std::thread> threads;
  // vector<char>, not vector<bool>: each thread needs its own addressable
  // byte or the flags themselves would race.
  std::vector<char> ok(4, 0);
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&, t] {
      std::vector<double> out;
      for (int rep = 0; rep < 50; ++rep) {
        engine.decide_fleet(policy, states, out);
        for (std::size_t i = 0; i < out.size(); ++i)
          if (out[i] != reference[i]) return;
      }
      ok[static_cast<std::size_t>(t)] = 1;
    });
  }
  for (auto& th : threads) th.join();
  for (int t = 0; t < 4; ++t) EXPECT_TRUE(ok[static_cast<std::size_t>(t)]);
}

}  // namespace
}  // namespace leime::policy
