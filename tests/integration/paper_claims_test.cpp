// Coarse checks of the paper's headline claims on reference scenarios.
// These mirror the bench harnesses but with generous margins so they stay
// robust as regression tests.
#include <gtest/gtest.h>

#include "baselines/exit_baselines.h"
#include "core/exit_setting.h"
#include "models/zoo.h"
#include "sim/simulation.h"

namespace leime {
namespace {

sim::ScenarioConfig scenario_for(const core::MeDnnPartition& part,
                                 const std::string& policy,
                                 double fixed_ratio = -1.0) {
  sim::ScenarioConfig cfg;
  cfg.partition = part;
  sim::DeviceSpec dev;
  // Light load: Fig. 7/8 compare per-task latency, not saturation.
  dev.mean_rate = 0.5;
  cfg.devices.push_back(dev);
  cfg.policy = policy;
  cfg.fixed_ratio = fixed_ratio;
  cfg.duration = 120.0;
  cfg.warmup = 5.0;
  return cfg;
}

TEST(PaperClaims, LeimeBeatsAllBaselinesOnReferenceScenario) {
  // Fig. 7/8 shape: LEIME (optimal exits + online offloading) vs DDNN,
  // Edgent (heuristic exits, no offloading) and Neurosurgeon (no exits).
  const auto profile = models::make_inception_v3();
  const auto env = core::testbed_environment();
  core::CostModel cm(profile, env);

  const auto leime_combo = core::branch_and_bound_exit_setting(cm).combo;
  const auto leime =
      sim::run_scenario(scenario_for(core::make_partition(profile, leime_combo),
                                     "LEIME"));

  const auto ddnn = sim::run_scenario(scenario_for(
      core::make_partition(profile, baselines::ddnn_exit_setting(profile)),
      "LEIME", 0.0));
  const auto edgent = sim::run_scenario(scenario_for(
      core::make_partition(profile, baselines::edgent_exit_setting(profile)),
      "LEIME", 0.0));
  const auto neuro = sim::run_scenario(scenario_for(
      core::make_no_exit_partition(profile, leime_combo.e1, leime_combo.e2),
      "LEIME", 0.0));

  EXPECT_LT(leime.tct.mean, ddnn.tct.mean);
  EXPECT_LT(leime.tct.mean, edgent.tct.mean);
  EXPECT_LT(leime.tct.mean, neuro.tct.mean);
}

TEST(PaperClaims, EarlyExitBeatsNoExitUnderPoorNetwork) {
  // §I: intensive intermediate data is the bottleneck; early exits avoid it.
  // Easy data (paper's CIFAR-10 regime): gamma 0.5 gives σ1 ≈ 0.5 at a
  // third of the depth, so half the tasks never touch the poor uplink.
  models::ZooOptions easy;
  easy.exit_rate_gamma = 0.5;
  const auto profile = models::make_inception_v3(easy);
  // Jetson Nano device: compute is affordable, so the poor uplink is the
  // bottleneck the early exits remove.
  auto env = core::testbed_environment(core::kJetsonNanoFlops);
  env.net.dev_edge_bw = util::mbps(2.0);
  env.net.dev_edge_lat = util::ms(150.0);
  core::CostModel cm(profile, env);
  const auto combo = core::branch_and_bound_exit_setting(cm).combo;

  auto cfg_me = scenario_for(core::make_partition(profile, combo), "LEIME");
  auto cfg_ne = scenario_for(
      core::make_no_exit_partition(profile, combo.e1, combo.e2), "LEIME");
  for (auto* cfg : {&cfg_me, &cfg_ne}) {
    cfg->devices[0].flops = core::kJetsonNanoFlops;
    cfg->devices[0].uplink_bw = util::mbps(2.0);
    cfg->devices[0].uplink_lat = util::ms(150.0);
    cfg->devices[0].mean_rate = 0.1;
    cfg->duration = 400.0;
  }
  const auto me = sim::run_scenario(cfg_me);
  const auto ne = sim::run_scenario(cfg_ne);
  EXPECT_LT(1.5 * me.tct.mean, ne.tct.mean);  // at least 1.5x better
}

TEST(PaperClaims, OnlineOffloadingAdaptsToArrivalRate) {
  // Fig. 10(b) shape: at high arrival rates the gap between LEIME and the
  // static baselines widens.
  const auto profile = models::make_inception_v3();
  const auto env = core::testbed_environment(core::kJetsonNanoFlops);
  core::CostModel cm(profile, env);
  const auto part = core::make_partition(
      profile, core::branch_and_bound_exit_setting(cm).combo);

  auto run = [&](const std::string& policy, double rate) {
    auto cfg = scenario_for(part, policy);
    cfg.devices[0].flops = core::kJetsonNanoFlops;
    cfg.devices[0].mean_rate = rate;
    cfg.duration = 40.0;
    return sim::run_scenario(cfg).tct.mean;
  };

  // At a high rate the worst static policy suffers far more than LEIME.
  const double leime_hi = run("LEIME", 20.0);
  const double donly_hi = run("D-only", 20.0);
  const double eonly_hi = run("E-only", 20.0);
  EXPECT_LT(leime_hi, donly_hi * 1.05);
  EXPECT_LT(leime_hi, eonly_hi * 1.05);
  EXPECT_LT(leime_hi, std::max(donly_hi, eonly_hi) * 0.8);
}

TEST(PaperClaims, StabilityUnderDynamicArrivals) {
  // Fig. 9 shape: with a rate trace spiking 4x, LEIME's windowed mean TCT
  // stays bounded while D-only degrades.
  const auto profile = models::make_inception_v3();
  const auto env = core::testbed_environment();
  core::CostModel cm(profile, env);
  const auto part = core::make_partition(
      profile, core::branch_and_bound_exit_setting(cm).combo);

  auto make_cfg = [&](const std::string& policy) {
    auto cfg = scenario_for(part, policy);
    cfg.devices[0].arrival = sim::ArrivalKind::kTrace;
    cfg.devices[0].rate_trace = util::PiecewiseConstant(
        {{0.0, 2.0}, {20.0, 8.0}, {40.0, 2.0}});
    cfg.duration = 60.0;
    return cfg;
  };
  const auto leime = sim::run_scenario(make_cfg("LEIME"));
  const auto donly = sim::run_scenario(make_cfg("D-only"));
  EXPECT_LT(leime.tct.mean, donly.tct.mean);
  EXPECT_LT(leime.tct.p95, donly.tct.p95);
}

}  // namespace
}  // namespace leime
namespace leime {
namespace {

/// Broad regression matrix: on sequential per-task latency, LEIME never
/// loses to any paper baseline for any (model, device) pair.
class NeverLosesTest
    : public testing::TestWithParam<std::tuple<models::ModelKind, double>> {};

TEST_P(NeverLosesTest, LeimeAtLeastMatchesEveryBaseline) {
  const auto [kind, device_flops] = GetParam();
  const auto profile = models::make_profile(kind);
  const auto env = core::testbed_environment(device_flops);
  core::CostModel cm(profile, env);
  const auto combo = core::branch_and_bound_exit_setting(cm).combo;

  auto sequential = [&](const core::MeDnnPartition& part,
                        const std::string& policy, double ratio) {
    sim::ScenarioConfig cfg;
    cfg.partition = part;
    sim::DeviceSpec dev;
    dev.flops = device_flops;
    dev.arrival = sim::ArrivalKind::kPeriodic;
    dev.mean_rate = 1.0 / 80.0;
    cfg.devices.push_back(dev);
    cfg.policy = policy;
    cfg.fixed_ratio = ratio;
    cfg.duration = 80.0 * 25;
    cfg.warmup = 0.0;
    return sim::run_scenario(cfg).tct.mean;
  };

  const double leime =
      sequential(core::make_partition(profile, combo), "LEIME", -1.0);
  const double neuro = sequential(
      core::make_no_exit_partition(profile, combo.e1, combo.e2), "LEIME", 0.0);
  const double edgent = sequential(
      core::make_partition(profile, baselines::edgent_exit_setting(profile)),
      "LEIME", 0.0);
  const double ddnn = sequential(
      core::make_partition(profile, baselines::ddnn_exit_setting(profile)),
      "LEIME", 0.0);
  // 3% slack for Bernoulli exit-draw noise.
  EXPECT_LE(leime, neuro * 1.03);
  EXPECT_LE(leime, edgent * 1.03);
  EXPECT_LE(leime, ddnn * 1.03);
}

INSTANTIATE_TEST_SUITE_P(
    AllModelsBothDevices, NeverLosesTest,
    testing::Combine(testing::ValuesIn(models::all_model_kinds()),
                     testing::Values(core::kRaspberryPiFlops,
                                     core::kJetsonNanoFlops)),
    [](const auto& info) {
      std::string n = models::to_string(std::get<0>(info.param));
      for (auto& c : n)
        if (!isalnum(static_cast<unsigned char>(c))) c = '_';
      return n + (std::get<1>(info.param) == core::kRaspberryPiFlops
                      ? "_RPi"
                      : "_Nano");
    });

}  // namespace
}  // namespace leime
