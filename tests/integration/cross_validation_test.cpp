// Cross-validation between the three latency models in this repo: the
// closed-form cost model (eqs. 1-4), the slotted analytic simulator
// (eqs. 10-14) and the discrete-event simulator. They make different
// approximations; these tests pin down where they must agree.
#include <gtest/gtest.h>

#include "core/exit_setting.h"
#include "models/zoo.h"
#include "sim/simulation.h"
#include "sim/slotted.h"

namespace leime {
namespace {

/// DES with sparse sequential tasks, all launched on the device (the cost
/// model's premise), must match the closed form closely: the only effects
/// the closed form omits (queueing, contention) vanish at this load.
TEST(CrossValidation, DesMatchesCostModelAtLightLoad) {
  for (const auto kind :
       {models::ModelKind::kInceptionV3, models::ModelKind::kSqueezeNet}) {
    const auto profile = models::make_profile(kind);
    const auto env = core::testbed_environment();
    core::CostModel cm(profile, env);
    const int m = profile.num_units();

    for (const core::ExitCombo combo :
         {core::ExitCombo{1, m / 2, m}, core::ExitCombo{m / 3, m - 1, m}}) {
      sim::ScenarioConfig cfg;
      cfg.partition = core::make_partition(profile, combo);
      sim::DeviceSpec dev;
      dev.arrival = sim::ArrivalKind::kPeriodic;
      dev.mean_rate = 1.0 / 120.0;  // one task every 2 minutes
      cfg.devices.push_back(dev);
      cfg.fixed_ratio = 0.0;
      cfg.duration = 60.0 * 120.0;
      cfg.warmup = 0.0;
      const auto result = sim::run_scenario(cfg);
      ASSERT_GT(result.completed, 50u);

      // Weight the per-tier closed forms by the *realized* exit fractions
      // (the Bernoulli exit draws are the only stochastic element at this
      // load, so this isolates the latency mechanics from sampling noise).
      const double frac_past_e1 =
          result.exit2_fraction + result.exit3_fraction;
      const double analytic = cm.device_time(combo.e1) +
                              frac_past_e1 * cm.edge_time(combo.e1, combo.e2) +
                              result.exit3_fraction * cm.cloud_time(combo.e2);
      EXPECT_NEAR(result.tct.mean, analytic, 0.03 * analytic)
          << models::to_string(kind) << " combo (" << combo.e1 << ","
          << combo.e2 << ")";
      // And the population mean stays within broad sampling bounds.
      EXPECT_NEAR(result.tct.mean, cm.expected_tct(combo),
                  0.25 * cm.expected_tct(combo));
    }
  }
}

/// The slotted model and the DES must agree on the *direction* of the
/// offloading trade-off in a clearly differentiated setting.
TEST(CrossValidation, SlottedAndDesAgreeOnOffloadDirection) {
  const auto profile = models::make_inception_v3();
  const auto part =
      core::make_partition(profile, {10, 14, profile.num_units()});

  // Weak device, strong edge, decent bandwidth: offloading must win.
  sim::SlottedConfig scfg;
  scfg.partition = part;
  scfg.device_flops = core::kRaspberryPiFlops;
  scfg.edge_share_flops = core::kEdgeDesktopFlops;
  scfg.bandwidth = util::mbps(30.0);
  scfg.latency = util::ms(20.0);
  scfg.num_slots = 300;
  workload::PoissonSlotArrivals a1(0.5), a2(0.5);
  const double slotted_local = sim::run_slotted_fixed(scfg, a1, 0.0).mean_tct;
  const double slotted_off = sim::run_slotted_fixed(scfg, a2, 1.0).mean_tct;

  sim::ScenarioConfig dcfg;
  dcfg.partition = part;
  sim::DeviceSpec dev;
  dev.flops = core::kRaspberryPiFlops;
  dev.uplink_bw = util::mbps(30.0);
  dev.mean_rate = 0.5;
  dcfg.devices.push_back(dev);
  dcfg.duration = 120.0;
  dcfg.fixed_ratio = 0.0;
  const double des_local = sim::run_scenario(dcfg).tct.mean;
  dcfg.fixed_ratio = 1.0;
  const double des_off = sim::run_scenario(dcfg).tct.mean;

  EXPECT_LT(slotted_off, slotted_local);
  EXPECT_LT(des_off, des_local);
}

/// Theorem 3's stability conditions (C3/C4): under a feasible load the
/// LEIME-controlled queues are mean-rate stable — final backlog over
/// horizon shrinks as the horizon grows.
TEST(CrossValidation, LeimeQueuesAreMeanRateStable) {
  const auto profile = models::make_inception_v3();
  core::CostModel cm(profile, core::testbed_environment());
  sim::SlottedConfig cfg;
  cfg.partition = core::make_partition(
      profile, core::branch_and_bound_exit_setting(cm).combo);
  cfg.device_flops = core::kRaspberryPiFlops;
  cfg.edge_share_flops = core::kEdgeDesktopFlops;
  cfg.bandwidth = util::mbps(10.0);
  cfg.latency = util::ms(20.0);
  const core::LeimePolicy policy;

  auto backlog_rate = [&](int slots) {
    cfg.num_slots = slots;
    workload::PoissonSlotArrivals arrivals(0.8);
    const auto r = sim::run_slotted_policy(cfg, arrivals, policy);
    return (r.final_device_queue + r.final_edge_queue) /
           static_cast<double>(slots);
  };
  const double short_run = backlog_rate(200);
  const double long_run = backlog_rate(1600);
  EXPECT_LT(long_run, std::max(0.05, 0.5 * short_run + 0.01));
}

}  // namespace
}  // namespace leime
