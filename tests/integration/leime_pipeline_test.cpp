// End-to-end pipeline: measured exit rates from a trained multi-exit net
// feed the analytic profile, exit setting runs on it, and the resulting
// partition drives the discrete-event simulator.
#include <gtest/gtest.h>

#include "core/exit_setting.h"
#include "core/leime.h"
#include "models/zoo.h"
#include "nn/calibration.h"
#include "nn/profile_bridge.h"
#include "sim/simulation.h"

namespace leime {
namespace {

TEST(LeimePipeline, MeasuredRatesFlowIntoExitSettingAndSim) {
  // 1. Train a small multi-exit network and measure cumulative exit rates.
  nn::NetConfig ncfg;
  ncfg.num_classes = 3;
  ncfg.image_size = 12;
  ncfg.block_channels = {6, 8, 10, 12};
  ncfg.pool_after = {0, 2};
  nn::MultiExitNet net(ncfg);
  nn::DatasetConfig dcfg;
  dcfg.num_classes = 3;
  dcfg.image_size = 12;
  dcfg.train_per_class = 60;
  dcfg.test_per_class = 50;
  nn::SyntheticImageDataset data(dcfg);
  nn::train(net, data.train(), 4, 0.05, 0.9, 16, 23);

  // 2. Install the measured exit rates/accuracies into the analytic
  //    profile via the bridge.
  auto profile = models::make_inception_v3();
  nn::install_measured_behaviour(profile, net, data.test(), data.test(),
                                 0.7);

  // 3. Design the system and simulate.
  const auto system =
      core::LeimeSystem::design(profile, core::testbed_environment());
  sim::ScenarioConfig scfg;
  scfg.partition = system.partition();
  sim::DeviceSpec dev;
  dev.mean_rate = 2.0;
  scfg.devices.push_back(dev);
  scfg.duration = 20.0;
  scfg.warmup = 2.0;
  const auto result = sim::run_scenario(scfg);
  EXPECT_GT(result.completed, 10u);
  EXPECT_GT(result.tct.mean, 0.0);
  EXPECT_LT(result.tct.mean, 60.0);
}

TEST(LeimePipeline, DesignedPartitionOutperformsWorstCombo) {
  const auto profile = models::make_inception_v3();
  const auto env = core::testbed_environment();
  core::CostModel cm(profile, env);
  const auto best = core::branch_and_bound_exit_setting(cm);

  // Find the worst combo analytically, then check the DES agrees on the
  // ordering (analytic model and simulator must tell the same story).
  core::ExitCombo worst{1, 2, profile.num_units()};
  double worst_cost = 0.0;
  for (int e1 = 1; e1 <= profile.num_units() - 2; ++e1)
    for (int e2 = e1 + 1; e2 <= profile.num_units() - 1; ++e2) {
      const double c = cm.expected_tct({e1, e2, profile.num_units()});
      if (c > worst_cost) {
        worst_cost = c;
        worst = {e1, e2, profile.num_units()};
      }
    }

  auto run_with = [&](const core::ExitCombo& combo) {
    sim::ScenarioConfig cfg;
    cfg.partition = core::make_partition(profile, combo);
    sim::DeviceSpec dev;
    dev.mean_rate = 0.3;  // light load: pure latency comparison
    cfg.devices.push_back(dev);
    // Tasks start on the device, matching the analytic model's premise.
    cfg.fixed_ratio = 0.0;
    cfg.duration = 120.0;
    cfg.warmup = 5.0;
    return sim::run_scenario(cfg).tct.mean;
  };
  EXPECT_LT(run_with(best.combo), run_with(worst));
}

}  // namespace
}  // namespace leime
