// Randomised property tests across module boundaries.
#include <gtest/gtest.h>

#include <sstream>

#include "core/exit_setting.h"
#include "models/exit_curve.h"
#include "models/profile_io.h"
#include "models/zoo.h"
#include "sim/simulation.h"
#include "util/rng.h"

namespace leime {
namespace {

models::ModelProfile random_profile(util::Rng& rng) {
  const int m = static_cast<int>(rng.uniform_int(3, 24));
  std::vector<models::UnitSpec> units;
  std::vector<models::ExitSpec> exits;
  std::vector<double> rates;
  for (int i = 0; i < m; ++i) {
    units.push_back({"unit_" + std::to_string(i), rng.uniform(1e6, 1e9),
                     rng.uniform(1e3, 1e7)});
    exits.push_back({rng.uniform(1e3, 1e7), 0.0, rng.uniform(0.4, 1.0)});
    rates.push_back(i + 1 == m ? 1.0 : rng.uniform());
  }
  std::sort(rates.begin(), rates.end());
  rates.back() = 1.0;
  for (int i = 0; i < m; ++i)
    exits[static_cast<std::size_t>(i)].exit_rate =
        rates[static_cast<std::size_t>(i)];
  return models::ModelProfile("fuzz_" + std::to_string(m),
                              rng.uniform(1e3, 1e7), std::move(units),
                              std::move(exits));
}

TEST(Property, ProfileIoRoundTripsRandomProfiles) {
  util::Rng rng(808);
  for (int trial = 0; trial < 60; ++trial) {
    const auto original = random_profile(rng);
    std::stringstream buffer;
    models::save_profile(original, buffer);
    const auto loaded = models::load_profile(buffer);
    ASSERT_EQ(loaded.num_units(), original.num_units());
    for (int i = 1; i <= original.num_units(); ++i) {
      ASSERT_DOUBLE_EQ(loaded.unit(i).flops, original.unit(i).flops);
      ASSERT_DOUBLE_EQ(loaded.exit(i).exit_rate, original.exit(i).exit_rate);
      ASSERT_DOUBLE_EQ(loaded.exit(i).exit_accuracy,
                       original.exit(i).exit_accuracy);
    }
  }
}

TEST(Property, ExpectedTctBoundedByTierSums) {
  // For any combo: t_d <= T(E) <= t_d + t_e + t_c (exit rates only ever
  // remove downstream work).
  util::Rng rng(909);
  for (int trial = 0; trial < 50; ++trial) {
    const auto profile = random_profile(rng);
    core::Environment env;
    env.caps = {rng.uniform(1e8, 1e10), rng.uniform(1e9, 1e11),
                rng.uniform(1e11, 1e13)};
    env.net = {rng.uniform(1e5, 1e7), rng.uniform(0.0, 0.2),
               rng.uniform(1e6, 1e8), rng.uniform(0.0, 0.1)};
    core::CostModel cm(profile, env);
    const int m = cm.num_exits();
    for (int e1 = 1; e1 <= m - 2; ++e1) {
      for (int e2 = e1 + 1; e2 <= m - 1; ++e2) {
        const double t = cm.expected_tct({e1, e2, m});
        ASSERT_GE(t, cm.device_time(e1) - 1e-12);
        ASSERT_LE(t, cm.device_time(e1) + cm.edge_time(e1, e2) +
                         cm.cloud_time(e2) + 1e-12);
      }
    }
  }
}

TEST(Property, DesConservesTasksAcrossRandomScenarios) {
  // Conservation: completed (post-warmup) <= generated; all counted tasks
  // complete after drain; exit fractions sum to 1.
  util::Rng rng(111);
  const auto profile = models::make_squeezenet();
  for (int trial = 0; trial < 12; ++trial) {
    const int m = profile.num_units();
    const int e1 = static_cast<int>(rng.uniform_int(1, m - 2));
    const int e2 = static_cast<int>(rng.uniform_int(e1 + 1, m - 1));
    sim::ScenarioConfig cfg;
    cfg.partition = core::make_partition(profile, {e1, e2, m});
    const int n_dev = static_cast<int>(rng.uniform_int(1, 4));
    for (int d = 0; d < n_dev; ++d) {
      sim::DeviceSpec dev;
      dev.flops = rng.uniform(0.3e9, 8e9);
      dev.mean_rate = rng.uniform(0.2, 2.0);
      dev.uplink_bw = util::mbps(rng.uniform(2.0, 30.0));
      dev.difficulty = rng.uniform(0.5, 2.0);
      cfg.devices.push_back(dev);
    }
    cfg.duration = 25.0;
    cfg.warmup = 2.0;
    cfg.seed = rng.next_u64();
    const auto r = sim::run_scenario(cfg);
    ASSERT_LE(r.completed, r.generated);
    ASSERT_NEAR(r.exit1_fraction + r.exit2_fraction + r.exit3_fraction,
                r.completed ? 1.0 : 0.0, 1e-9);
    std::size_t per_dev_total = 0;
    for (const auto& d : r.per_device) per_dev_total += d.completed;
    ASSERT_EQ(per_dev_total, r.completed);
  }
}

TEST(Property, BranchAndBoundNeverWorseThanHeuristicCurves) {
  // With any monotone parametric curve installed, the B&B optimum must be
  // <= every evenly spaced combo's cost.
  util::Rng rng(222);
  for (int trial = 0; trial < 30; ++trial) {
    auto profile = random_profile(rng);
    profile.set_exit_rates(
        models::power_law_exit_rates(profile, rng.uniform(0.4, 2.5)));
    core::Environment env;
    env.caps = {rng.uniform(1e8, 1e10), rng.uniform(1e9, 1e11),
                rng.uniform(1e11, 1e13)};
    env.net = {rng.uniform(1e5, 1e7), rng.uniform(0.0, 0.2),
               rng.uniform(1e6, 1e8), rng.uniform(0.0, 0.1)};
    core::CostModel cm(profile, env);
    const auto best = core::branch_and_bound_exit_setting(cm);
    const int m = cm.num_exits();
    const int e1 = std::max(1, m / 3);
    const int e2 = std::max(e1 + 1, (2 * m) / 3);
    if (e2 >= m) continue;
    ASSERT_LE(best.cost, cm.expected_tct({e1, e2, m}) + 1e-12);
  }
}

}  // namespace
}  // namespace leime
