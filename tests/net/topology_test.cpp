#include "net/topology.h"

#include <gtest/gtest.h>

#include <stdexcept>

namespace leime::net {
namespace {

Topology small_tree() {
  // dev0, dev1 -> ap0; dev2 -> ap1; both APs -> edge0 -> cloud.
  Topology topo(3, 2, 1);
  topo.attach_device(0, 0, {100.0, 0.01});
  topo.attach_device(1, 0, {200.0, 0.02});
  topo.attach_device(2, 1, {300.0, 0.03});
  topo.attach_ap(0, 0, {1000.0, 0.001});
  topo.attach_ap(1, 0, {2000.0, 0.002});
  topo.attach_edge(0, {5000.0, 0.05});
  return topo;
}

TEST(NodeId, StableNames) {
  EXPECT_EQ(to_string(NodeId::device(3)), "dev3");
  EXPECT_EQ(to_string(NodeId::ap(0)), "ap0");
  EXPECT_EQ(to_string(NodeId::edge(0)), "edge0");
  EXPECT_EQ(to_string(NodeId::cloud()), "cloud");
}

TEST(Topology, AccessorsReflectAttachments) {
  const auto topo = small_tree();
  topo.validate();
  EXPECT_EQ(topo.ap_of(0), 0);
  EXPECT_EQ(topo.ap_of(2), 1);
  EXPECT_EQ(topo.edge_of(1), 0);
  EXPECT_DOUBLE_EQ(topo.device_up(1).bandwidth, 200.0);
  EXPECT_DOUBLE_EQ(topo.ap_up(1).latency, 0.002);
  EXPECT_DOUBLE_EQ(topo.edge_up(0).bandwidth, 5000.0);
  EXPECT_EQ(topo.parent(NodeId::device(2)), NodeId::ap(1));
  EXPECT_EQ(topo.parent(NodeId::ap(0)), NodeId::edge(0));
  EXPECT_EQ(topo.parent(NodeId::edge(0)), NodeId::cloud());
  EXPECT_THROW(topo.parent(NodeId::cloud()), std::invalid_argument);
}

TEST(Topology, ValidateRejectsUnattachedNodes) {
  Topology topo(1, 1, 1);
  EXPECT_THROW(topo.validate(), std::invalid_argument);
  topo.attach_device(0, 0, {1.0, 0.0});
  EXPECT_THROW(topo.validate(), std::invalid_argument);
  topo.attach_ap(0, 0, {1.0, 0.0});
  EXPECT_THROW(topo.validate(), std::invalid_argument);
  topo.attach_edge(0, {1.0, 0.0});
  EXPECT_NO_THROW(topo.validate());
}

TEST(Topology, AttachRejectsBadIndicesAndSpecs) {
  Topology topo(1, 1, 1);
  EXPECT_THROW(topo.attach_device(1, 0, {1.0, 0.0}), std::invalid_argument);
  EXPECT_THROW(topo.attach_device(0, 1, {1.0, 0.0}), std::invalid_argument);
  EXPECT_THROW(topo.attach_device(0, 0, {0.0, 0.0}), std::invalid_argument);
  EXPECT_THROW(topo.attach_device(0, 0, {1.0, -0.1}), std::invalid_argument);
  EXPECT_THROW(topo.attach_ap(0, 1, {1.0, 0.0}), std::invalid_argument);
  EXPECT_THROW(Topology(-1, 1, 1), std::invalid_argument);
  EXPECT_THROW(Topology(0, 0, 1), std::invalid_argument);
}

TEST(Topology, RouteClimbsToLowestCommonAncestor) {
  const auto topo = small_tree();

  const auto up = topo.route(NodeId::device(0), NodeId::cloud());
  ASSERT_EQ(up.count, 3);
  EXPECT_EQ(up.hops[0].first, NodeId::device(0));
  EXPECT_EQ(up.hops[0].second, NodeId::ap(0));
  EXPECT_EQ(up.hops[1].second, NodeId::edge(0));
  EXPECT_EQ(up.hops[2].second, NodeId::cloud());

  // Same-AP peers meet at the AP: 2 hops, not 4.
  const auto peer = topo.route(NodeId::device(0), NodeId::device(1));
  ASSERT_EQ(peer.count, 2);
  EXPECT_EQ(peer.hops[0].second, NodeId::ap(0));
  EXPECT_EQ(peer.hops[1].first, NodeId::ap(0));
  EXPECT_EQ(peer.hops[1].second, NodeId::device(1));

  // Cross-AP devices meet at the edge.
  const auto cross = topo.route(NodeId::device(0), NodeId::device(2));
  ASSERT_EQ(cross.count, 4);
  EXPECT_EQ(cross.hops[1].second, NodeId::edge(0));
  EXPECT_EQ(cross.hops[2].second, NodeId::ap(1));
  EXPECT_EQ(cross.hops[3].second, NodeId::device(2));

  // Downlink-only route (edge -> device) mirrors the uplink.
  const auto down = topo.route(NodeId::edge(0), NodeId::device(1));
  ASSERT_EQ(down.count, 2);
  EXPECT_EQ(down.hops[0].first, NodeId::edge(0));
  EXPECT_EQ(down.hops[0].second, NodeId::ap(0));
  EXPECT_EQ(down.hops[1].second, NodeId::device(1));

  EXPECT_EQ(topo.route(NodeId::ap(1), NodeId::ap(1)).count, 0);
}

TEST(TopologyConfig, ValidateEnforcesShape) {
  TopologyConfig cfg;
  EXPECT_FALSE(cfg.enabled());
  EXPECT_NO_THROW(cfg.validate(4));  // disabled skips the rest

  cfg.aps = -1;
  EXPECT_THROW(cfg.validate(4), std::invalid_argument);
  cfg.aps = 2;
  EXPECT_THROW(cfg.validate(4), std::invalid_argument);  // bandwidth 0
  cfg.ap_bandwidth = 1e6;
  EXPECT_NO_THROW(cfg.validate(4));
  cfg.ap_latency = -0.1;
  EXPECT_THROW(cfg.validate(4), std::invalid_argument);
  cfg.ap_latency = 0.0;
  cfg.queue_limit_bytes = -1.0;
  EXPECT_THROW(cfg.validate(4), std::invalid_argument);
  cfg.queue_limit_bytes = 0.0;
  cfg.device_map = {0, 1, 0};  // wrong size for 4 devices
  EXPECT_THROW(cfg.validate(4), std::invalid_argument);
  cfg.device_map = {0, 1, 0, 2};  // AP 2 out of range
  EXPECT_THROW(cfg.validate(4), std::invalid_argument);
  cfg.device_map = {0, 1, 0, 1};
  EXPECT_NO_THROW(cfg.validate(4));
}

TEST(TopologyConfig, FromConfigRoundRobinAndExplicitMap) {
  TopologyConfig cfg;
  cfg.aps = 2;
  cfg.ap_bandwidth = 1000.0;
  cfg.ap_latency = 0.005;
  const std::vector<LinkSpec> uplinks{{100.0, 0.01}, {100.0, 0.01},
                                      {100.0, 0.01}};
  const auto rr = Topology::from_config(cfg, uplinks, {5000.0, 0.05});
  EXPECT_EQ(rr.ap_of(0), 0);
  EXPECT_EQ(rr.ap_of(1), 1);
  EXPECT_EQ(rr.ap_of(2), 0);
  EXPECT_DOUBLE_EQ(rr.ap_up(1).bandwidth, 1000.0);
  EXPECT_DOUBLE_EQ(rr.edge_up(0).latency, 0.05);

  cfg.device_map = {1, 1, 0};
  const auto mapped = Topology::from_config(cfg, uplinks, {5000.0, 0.05});
  EXPECT_EQ(mapped.ap_of(0), 1);
  EXPECT_EQ(mapped.ap_of(2), 0);

  cfg.device_map.clear();
  cfg.aps = 0;
  EXPECT_THROW(Topology::from_config(cfg, uplinks, {5000.0, 0.05}),
               std::invalid_argument);
}

}  // namespace
}  // namespace leime::net
