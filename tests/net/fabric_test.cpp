#include "net/fabric.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include "obs/metrics.h"
#include "sim/event_queue.h"
#include "support/alloc_hooks.h"

namespace leime::net {
namespace {

/// num_devices devices spread round-robin over num_aps APs. Uplinks
/// bw=100 B/s lat=0, AP backhaul bw=100 lat=0, edge->cloud bw=200 lat=0
/// unless customized by the test via the returned topology.
Topology grid(int num_devices, int num_aps) {
  TopologyConfig cfg;
  cfg.aps = num_aps;
  cfg.ap_bandwidth = 100.0;
  cfg.ap_latency = 0.0;
  return Topology::from_config(
      cfg, std::vector<LinkSpec>(static_cast<std::size_t>(num_devices),
                                 LinkSpec{100.0, 0.0}),
      {200.0, 0.0});
}

TEST(Fabric, SingleFlowStoreAndForwardTiming) {
  sim::EventQueue q;
  Topology topo(1, 1, 1);
  topo.attach_device(0, 0, {100.0, 0.5});
  topo.attach_ap(0, 0, {50.0, 0.1});
  topo.attach_edge(0, {200.0, 0.05});
  Fabric fabric(q, topo);

  double t = -1.0;
  fabric.transfer(NodeId::device(0), NodeId::cloud(), 100.0,
                  [&](double tt) { t = tt; });
  q.run_all();
  // Store-and-forward: 1.0+0.5, then 2.0+0.1, then 0.5+0.05.
  EXPECT_DOUBLE_EQ(t, 4.15);
  EXPECT_EQ(fabric.stats().transfers, 1u);
  EXPECT_EQ(fabric.stats().delivered, 1u);
  EXPECT_EQ(fabric.stats().hops, 3u);
  EXPECT_DOUBLE_EQ(fabric.stats().bytes, 100.0);
}

TEST(Fabric, SameNodeTransferCompletesImmediately) {
  sim::EventQueue q;
  Fabric fabric(q, grid(1, 1));
  double t = -1.0;
  fabric.transfer(NodeId::ap(0), NodeId::ap(0), 42.0,
                  [&](double tt) { t = tt; });
  EXPECT_DOUBLE_EQ(t, 0.0);  // no hops, fires inline at now
  EXPECT_EQ(fabric.stats().delivered, 1u);
  EXPECT_EQ(fabric.stats().hops, 0u);
}

TEST(Fabric, CongestionEmergesAtSharedAp) {
  // Two devices behind ONE AP: their flows serialize on the shared
  // backhaul port. The same workload over two APs does not contend.
  const auto run = [](int num_aps) {
    sim::EventQueue q;
    Fabric fabric(q, grid(2, num_aps));
    std::vector<double> done;
    for (int d = 0; d < 2; ++d)
      fabric.transfer(NodeId::device(d), NodeId::edge(0), 100.0,
                      [&](double t) { done.push_back(t); });
    q.run_all();
    std::sort(done.begin(), done.end());
    return done;
  };

  const auto shared = run(1);
  ASSERT_EQ(shared.size(), 2u);
  EXPECT_DOUBLE_EQ(shared[0], 2.0);  // 1s wireless + 1s backhaul
  EXPECT_DOUBLE_EQ(shared[1], 3.0);  // queued behind the first at the AP

  const auto split = run(2);
  EXPECT_DOUBLE_EQ(split[0], 2.0);
  EXPECT_DOUBLE_EQ(split[1], 2.0);  // own AP: no queueing
}

TEST(Fabric, QueueLimitDropsSignalKDropped) {
  sim::EventQueue q;
  FabricOptions opts;
  opts.queue_limit_bytes = 250.0;
  Fabric fabric(q, grid(3, 1), opts);

  int delivered = 0, dropped = 0;
  for (int d = 0; d < 3; ++d)
    fabric.transfer(NodeId::device(d), NodeId::edge(0), 100.0, [&](double t) {
      t < 0.0 ? ++dropped : ++delivered;
    });
  q.run_all();
  // All three arrive at the AP at t=1; the third finds 200 bytes queued
  // and 200 + 100 > 250 is over the cap.
  EXPECT_EQ(delivered, 2);
  EXPECT_EQ(dropped, 1);
  EXPECT_EQ(fabric.stats().transfers, 3u);
  EXPECT_EQ(fabric.stats().delivered, 2u);
  EXPECT_EQ(fabric.stats().drops, 1u);
  const auto* port =
      fabric.router(NodeId::ap(0)).find_port(NodeId::edge(0));
  ASSERT_NE(port, nullptr);
  EXPECT_EQ(port->stats.drops, 1u);
}

TEST(Fabric, DuplexPortsCarryReturnTraffic) {
  sim::EventQueue q1;
  Fabric uplink_only(q1, grid(1, 1));
  EXPECT_THROW(uplink_only.transfer(NodeId::edge(0), NodeId::device(0), 10.0,
                                    [](double) {}),
               std::invalid_argument);

  sim::EventQueue q2;
  FabricOptions opts;
  opts.duplex = true;
  Fabric fabric(q2, grid(1, 1), opts);
  double t = -1.0;
  fabric.transfer(NodeId::edge(0), NodeId::device(0), 100.0,
                  [&](double tt) { t = tt; });
  q2.run_all();
  EXPECT_DOUBLE_EQ(t, 2.0);  // backhaul mirror + wireless mirror, 1s each
}

TEST(Fabric, RouteAggregatesAndOutageComposition) {
  sim::EventQueue q;
  Topology topo(1, 1, 1);
  topo.attach_device(0, 0, {100.0, 0.5});
  topo.attach_ap(0, 0, {50.0, 0.1});
  topo.attach_edge(0, {200.0, 0.05});
  Fabric fabric(q, topo);

  const auto dev = NodeId::device(0);
  const auto cloud = NodeId::cloud();
  EXPECT_DOUBLE_EQ(fabric.route_bandwidth_at(dev, cloud, 0.0), 50.0);
  EXPECT_DOUBLE_EQ(fabric.route_latency_at(dev, cloud, 0.0), 0.65);
  EXPECT_DOUBLE_EQ(fabric.route_backlog_bytes(dev, cloud, 0.0), 0.0);

  fabric.transfer(dev, cloud, 100.0, [](double) {});
  EXPECT_DOUBLE_EQ(fabric.route_backlog_bytes(dev, cloud, 0.0), 100.0);

  sim::Link* wireless = fabric.link(dev, NodeId::ap(0));
  ASSERT_NE(wireless, nullptr);
  wireless->set_outage_windows({{10.0, 20.0}});
  EXPECT_TRUE(fabric.route_up_at(dev, cloud, 5.0));
  EXPECT_FALSE(fabric.route_up_at(dev, cloud, 15.0));
  EXPECT_TRUE(fabric.route_up_at(dev, cloud, 20.0));
  EXPECT_EQ(fabric.link(NodeId::ap(0), dev), nullptr);  // no duplex mirror
}

TEST(Fabric, ExportMetricsCoversSharedPortsOnly) {
  sim::EventQueue q;
  Fabric fabric(q, grid(2, 1));
  for (int d = 0; d < 2; ++d)
    fabric.transfer(NodeId::device(d), NodeId::cloud(), 100.0, [](double) {});
  q.run_all();

  obs::MetricsRegistry registry;
  fabric.export_metrics(registry, 10.0);
  const auto snap = registry.snapshot();

  const auto counter = [&](const std::string& name) -> std::uint64_t {
    for (const auto& c : snap.counters)
      if (c.name == name) return c.value;
    ADD_FAILURE() << "missing counter " << name;
    return 0;
  };
  EXPECT_EQ(counter("leime_net_transfers_total"), 2u);
  EXPECT_EQ(counter("leime_net_delivered_total"), 2u);
  EXPECT_EQ(counter("leime_net_hops_total"), 6u);
  EXPECT_EQ(counter("leime_net_port_ap0_edge0_transfers_total"), 2u);
  EXPECT_EQ(counter("leime_net_port_edge0_cloud_transfers_total"), 2u);

  // Device-adjacent ports stay out of the registry (cardinality).
  for (const auto& c : snap.counters)
    EXPECT_EQ(c.name.find("dev"), std::string::npos) << c.name;
}

TEST(Fabric, SteadyStateFlowsRunWithZeroAllocations) {
  sim::EventQueue q;
  FabricOptions opts;
  opts.duplex = true;
  Fabric fabric(q, grid(4, 2), opts);

  std::uint64_t delivered = 0;
  const auto blast = [&] {
    for (int d = 0; d < 4; ++d) {
      fabric.transfer(NodeId::device(d), NodeId::edge(0), 100.0,
                      [&](double) { ++delivered; });
      fabric.transfer(NodeId::edge(0), NodeId::device(d), 50.0,
                      [&](double) { ++delivered; });
    }
    q.run_all();
  };

  // Warmup populates the route cache, flow pool and event pool.
  blast();
  const std::size_t warm_flows = fabric.flow_pool_capacity();

  const std::uint64_t allocs_before = testsupport::allocation_count();
  for (int round = 0; round < 200; ++round) blast();
  EXPECT_EQ(testsupport::allocation_count() - allocs_before, 0u)
      << "fabric steady state allocated on the hot path";
  EXPECT_EQ(fabric.flow_pool_capacity(), warm_flows);
  EXPECT_EQ(delivered, 8u * 201u);
}

TEST(Fabric, RepeatedRunsAreDeterministic) {
  const auto run = [] {
    sim::EventQueue q;
    Fabric fabric(q, grid(6, 2));
    std::vector<double> done;
    for (int d = 0; d < 6; ++d)
      fabric.transfer(NodeId::device(d), NodeId::cloud(), 100.0 + 10.0 * d,
                      [&](double t) { done.push_back(t); });
    q.run_all();
    return done;
  };
  EXPECT_EQ(run(), run());  // byte-identical completion order and times
}

TEST(Fabric, NegativeBytesThrow) {
  sim::EventQueue q;
  Fabric fabric(q, grid(1, 1));
  EXPECT_THROW(fabric.transfer(NodeId::device(0), NodeId::cloud(), -1.0,
                               [](double) {}),
               std::invalid_argument);
}

}  // namespace
}  // namespace leime::net
