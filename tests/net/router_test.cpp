#include "net/router.h"

#include <gtest/gtest.h>

#include <vector>

#include "sim/event_queue.h"

namespace leime::net {
namespace {

TEST(Router, PortNamesAndLookup) {
  sim::EventQueue q;
  Router r(q, NodeId::device(3));
  auto& port = r.add_port(NodeId::ap(0), {100.0, 0.5}, 0.0);
  EXPECT_EQ(port.name, "dev3_ap0");
  EXPECT_EQ(port.dst, NodeId::ap(0));
  EXPECT_EQ(r.find_port(NodeId::ap(0)), &port);
  EXPECT_EQ(r.find_port(NodeId::ap(1)), nullptr);
  EXPECT_EQ(r.node(), NodeId::device(3));
}

TEST(Router, SendSerializesFifoAndCounts) {
  sim::EventQueue q;
  Router r(q, NodeId::ap(0));
  auto& port = r.add_port(NodeId::edge(0), {100.0, 0.5}, 0.0);
  std::vector<double> done;
  EXPECT_TRUE(r.send(port, 200.0, [&](double t) { done.push_back(t); }));
  EXPECT_TRUE(r.send(port, 100.0, [&](double t) { done.push_back(t); }));
  q.run_all();
  ASSERT_EQ(done.size(), 2u);
  EXPECT_DOUBLE_EQ(done[0], 2.5);  // 2s serialization + 0.5 latency
  EXPECT_DOUBLE_EQ(done[1], 3.5);  // queued behind the first
  EXPECT_EQ(port.stats.transfers, 2u);
  EXPECT_EQ(port.stats.drops, 0u);
  EXPECT_DOUBLE_EQ(port.stats.bytes, 300.0);
  EXPECT_DOUBLE_EQ(port.stats.busy_time, 3.0);
  // Second admission: the first flow's 200 bytes still queued + its own.
  EXPECT_DOUBLE_EQ(port.stats.peak_backlog_bytes, 300.0);
}

TEST(Router, QueueLimitDropsExcessFlows) {
  sim::EventQueue q;
  Router r(q, NodeId::ap(0));
  auto& port = r.add_port(NodeId::edge(0), {100.0, 0.0}, 150.0);
  int delivered = 0, not_sent = 0;
  // 100 admitted (backlog 0 -> 100), second 100 would reach 200 > 150.
  EXPECT_TRUE(r.send(port, 100.0, [&](double) { ++delivered; }));
  EXPECT_FALSE(r.send(port, 100.0, [&](double) { ++not_sent; }));
  q.run_all();
  EXPECT_EQ(delivered, 1);
  EXPECT_EQ(not_sent, 0);  // send() returning false never fires done
  EXPECT_EQ(port.stats.transfers, 1u);
  EXPECT_EQ(port.stats.drops, 1u);
  EXPECT_DOUBLE_EQ(port.stats.bytes, 100.0);
}

TEST(Router, ZeroByteControlTrafficBypassesQueueLimit) {
  sim::EventQueue q;
  Router r(q, NodeId::edge(0));
  auto& port = r.add_port(NodeId::cloud(), {100.0, 0.25}, 50.0);
  EXPECT_TRUE(r.send(port, 50.0, [](double) {}));
  double t = -1.0;
  // Backlog is at the cap, but zero-byte transfers are always admitted.
  EXPECT_TRUE(r.send(port, 0.0, [&](double tt) { t = tt; }));
  q.run_all();
  EXPECT_DOUBLE_EQ(t, 0.75);  // behind 0.5s serialization, + latency
}

}  // namespace
}  // namespace leime::net
