#!/usr/bin/env python3
"""Tests for scripts/bench_compare.py (registered with ctest).

Covers the gate semantics on synthetic records, plus the two acceptance
properties against the committed baselines in bench/baselines/: a clean
re-run passes, an injected >=10% slowdown fails.
"""

import copy
import json
import os
import subprocess
import sys
import tempfile
import unittest

REPO = os.path.normpath(os.path.join(os.path.dirname(__file__), "..", ".."))
SCRIPT = os.path.join(REPO, "scripts", "bench_compare.py")
BASELINES = os.path.join(REPO, "bench", "baselines")


def record(bench="micro_test", host="hostA/cpu/4", cases=None):
    return {
        "schema": 1,
        "bench": bench,
        "host": host,
        "git_commit": "deadbeef",
        "warmup": 1,
        "repeats": 5,
        "cases": cases if cases is not None else [case()],
    }


def case(name="des/devices=4", median=1.0, cv=0.01, counters=None):
    return {
        "name": name,
        "wall_s": {"median": median, "mad": cv * median / 1.4826,
                   "cv": cv, "min": median * 0.9, "max": median * 1.1,
                   "mean": median},
        "rounds_s": [median] * 5,
        "counters": counters if counters is not None else {"tasks": 240},
        "rates": {},
    }


class BenchCompareTest(unittest.TestCase):
    def setUp(self):
        self.tmp = tempfile.TemporaryDirectory()
        self.addCleanup(self.tmp.cleanup)

    def write(self, name, rec):
        path = os.path.join(self.tmp.name, name)
        with open(path, "w", encoding="utf-8") as fh:
            json.dump(rec, fh)
        return path

    def run_compare(self, current, baseline, *args):
        return subprocess.run(
            [sys.executable, SCRIPT, current, baseline, *args],
            capture_output=True, text=True).returncode

    def test_identical_records_pass(self):
        base = record()
        cur = self.write("cur.json", base)
        ref = self.write("base.json", base)
        self.assertEqual(self.run_compare(cur, ref), 0)

    def test_same_host_slowdown_fails(self):
        base = record()
        slow = copy.deepcopy(base)
        slow["cases"][0]["wall_s"]["median"] *= 1.15
        cur = self.write("cur.json", slow)
        ref = self.write("base.json", base)
        self.assertEqual(self.run_compare(cur, ref), 1)

    def test_noise_widens_the_gate(self):
        base = record(cases=[case(cv=0.05)])
        slow = copy.deepcopy(base)
        # +15% would fail at the base 10% threshold, but cv=0.05 * 3.0
        # widens the gate to 25%.
        slow["cases"][0]["wall_s"]["median"] *= 1.15
        cur = self.write("cur.json", slow)
        ref = self.write("base.json", base)
        self.assertEqual(self.run_compare(cur, ref), 0)
        self.assertEqual(self.run_compare(cur, ref, "--cv-mult", "0"), 1)

    def test_cross_host_skips_wall_but_gates_counters(self):
        base = record(host="hostA/cpu/4")
        other = copy.deepcopy(base)
        other["host"] = "hostB/other-cpu/64"
        other["cases"][0]["wall_s"]["median"] *= 3.0  # ignored: other host
        cur = self.write("cur.json", other)
        ref = self.write("base.json", base)
        self.assertEqual(self.run_compare(cur, ref), 0)
        self.assertEqual(self.run_compare(cur, ref, "--wall", "force"), 1)

        regressed = copy.deepcopy(other)
        regressed["cases"][0]["counters"]["tasks"] = 999  # strict cross-host
        cur2 = self.write("cur2.json", regressed)
        self.assertEqual(self.run_compare(cur2, ref), 1)

    def test_zero_baseline_counter_regression_fails_cleanly(self):
        # A 0 -> N counter increase must produce the normal FAIL list, not
        # a ZeroDivisionError traceback from the percentage formatting.
        base = record(cases=[case(counters={"pruned": 0})])
        worse = record(cases=[case(counters={"pruned": 7})])
        cur = self.write("cur.json", worse)
        ref = self.write("base.json", base)
        proc = subprocess.run(
            [sys.executable, SCRIPT, cur, ref],
            capture_output=True, text=True)
        self.assertEqual(proc.returncode, 1)
        self.assertIn("regressed 0 -> 7", proc.stderr)
        self.assertNotIn("Traceback", proc.stderr)

    def test_counter_decrease_is_not_a_failure(self):
        base = record()
        better = copy.deepcopy(base)
        better["cases"][0]["counters"]["tasks"] = 100
        cur = self.write("cur.json", better)
        ref = self.write("base.json", base)
        self.assertEqual(self.run_compare(cur, ref), 0)

    def test_missing_case_fails_new_case_passes(self):
        base = record(cases=[case("a"), case("b")])
        lost = record(cases=[case("a")])
        grew = record(cases=[case("a"), case("b"), case("c")])
        ref = self.write("base.json", base)
        self.assertEqual(self.run_compare(self.write("l.json", lost), ref), 1)
        self.assertEqual(self.run_compare(self.write("g.json", grew), ref), 0)

    def test_directory_baseline_resolves_by_filename(self):
        base = record()
        os.mkdir(os.path.join(self.tmp.name, "baselines"))
        with open(os.path.join(self.tmp.name, "baselines",
                               "BENCH_x.json"), "w", encoding="utf-8") as fh:
            json.dump(base, fh)
        cur = self.write("BENCH_x.json", base)
        self.assertEqual(
            self.run_compare(cur, os.path.join(self.tmp.name, "baselines")),
            0)

    def test_malformed_input_exits_2(self):
        cur = self.write("cur.json", record())
        bad = os.path.join(self.tmp.name, "bad.json")
        with open(bad, "w", encoding="utf-8") as fh:
            fh.write("not json")
        self.assertEqual(self.run_compare(cur, bad), 2)
        self.assertEqual(self.run_compare(cur, "/nonexistent.json"), 2)
        mismatched = record(bench="other_bench")
        self.assertEqual(
            self.run_compare(cur, self.write("m.json", mismatched)), 2)

    def test_committed_baselines_gate_themselves(self):
        """Acceptance: clean re-run passes, injected slowdown fails."""
        for name in ("BENCH_micro_sim.json", "BENCH_micro_exit_setting.json"):
            path = os.path.join(BASELINES, name)
            self.assertTrue(os.path.exists(path), f"missing baseline {name}")
            with open(path, encoding="utf-8") as fh:
                base = json.load(fh)
            # Clean "re-run": the baseline compared against itself.
            self.assertEqual(
                self.run_compare(path, BASELINES), 0, name)
            # Injected slowdown: every median +15% on the same host. The
            # committed baselines carry the producing host's real (noisy)
            # CVs, so pin cv-mult to 0 to exercise the bare 10% threshold.
            slow = copy.deepcopy(base)
            for c in slow["cases"]:
                c["wall_s"]["median"] *= 1.15
                c["wall_s"]["cv"] = 0.0
            cur = self.write(name, slow)
            self.assertEqual(
                self.run_compare(cur, BASELINES, "--wall", "force",
                                 "--cv-mult", "0"), 1, name)


if __name__ == "__main__":
    unittest.main()
