// Proves the -DLEIME_PROF=OFF contract at the macro level: with
// LEIME_PROF_DISABLED defined before including the header (exactly what the
// CMake option does globally), LEIME_PROF_SCOPE / LEIME_PROF_COUNT expand
// to nothing at all. The names below are deliberately invalid — if the
// macros still reached intern_section they would throw at first execution,
// and if they evaluated their arguments the side effect below would fire.
#define LEIME_PROF_DISABLED
#include "prof/profiler.h"

#include <gtest/gtest.h>

namespace leime::prof {
namespace {

int evaluations = 0;
const char* name_with_side_effect() {
  ++evaluations;
  return "THIS IS NOT A VALID SECTION NAME";
}

void instrumented_but_compiled_out() {
  LEIME_PROF_SCOPE(name_with_side_effect());
  LEIME_PROF_COUNT(name_with_side_effect(), 1);
  LEIME_PROF_SCOPE("also not valid!");
}

TEST(ProfilerDisabled, MacrosExpandToNothing) {
  // The runtime API still exists (the library is always built); only the
  // instrumentation sites vanish. Even with the gate forced on, the
  // compiled-out sites record nothing and never evaluate their arguments.
  set_enabled(true);
  reset();
  instrumented_but_compiled_out();
  set_enabled(false);
  EXPECT_EQ(evaluations, 0);
  EXPECT_TRUE(report().empty());
}

}  // namespace
}  // namespace leime::prof
