// This TU tests the instrumented macro expansion, so it opts back in even
// under a global -DLEIME_PROF=OFF build (the library itself is always
// compiled; only instrumentation sites are gated per-TU).
#undef LEIME_PROF_DISABLED
#include "prof/profiler.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

namespace leime::prof {
namespace {

// The profiler state is process-global; every test starts from a clean,
// disabled slate and leaves the gate off for whoever runs next.
class ProfilerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    set_enabled(false);
    reset();
  }
  void TearDown() override {
    set_enabled(false);
    reset();
  }
};

void nested_work(int inner_reps) {
  LEIME_PROF_SCOPE("leime.test.outer");
  for (int i = 0; i < inner_reps; ++i) {
    LEIME_PROF_SCOPE("leime.test.inner");
    volatile int sink = 0;
    for (int j = 0; j < 100; ++j) sink = sink + j;
  }
}

const ReportNode* find_root(const Report& rep, const std::string& name) {
  for (const auto& r : rep.roots)
    if (r.name == name) return &r;
  return nullptr;
}

TEST(SectionNames, DotSeparatedLeimePrefixEnforced) {
  EXPECT_TRUE(valid_section_name("leime.sim.event_loop"));
  EXPECT_TRUE(valid_section_name("leime.core.exit_setting.bb.pruned"));
  EXPECT_TRUE(valid_section_name("leime.x2"));
  EXPECT_FALSE(valid_section_name("leime."));          // bare prefix
  EXPECT_FALSE(valid_section_name("leime_sim_run"));   // metric namespace
  EXPECT_FALSE(valid_section_name("sim.event_loop"));  // missing prefix
  EXPECT_FALSE(valid_section_name("leime.Sim"));       // uppercase
  EXPECT_FALSE(valid_section_name("leime.a-b"));       // dash
  EXPECT_FALSE(valid_section_name(""));
}

TEST(SectionNames, InternRejectsInvalidAndIsIdempotent) {
  EXPECT_THROW(intern_section("not.leime"), std::invalid_argument);
  EXPECT_THROW(intern_counter("leime_metric_style"), std::invalid_argument);
  const SectionId a = intern_section("leime.test.intern_twice");
  const SectionId b = intern_section("leime.test.intern_twice");
  EXPECT_EQ(a, b);
}

TEST_F(ProfilerTest, DisabledGateRecordsNothing) {
  ASSERT_FALSE(enabled());
  nested_work(3);
  LEIME_PROF_COUNT("leime.test.disabled_counter", 5);
  const Report rep = report();
  EXPECT_TRUE(rep.empty());
  EXPECT_EQ(rep.dropped_spans, 0u);
}

TEST_F(ProfilerTest, NestedSectionsAggregateIntoTree) {
  set_enabled(true);
  nested_work(3);
  nested_work(3);
  set_enabled(false);

  const Report rep = report();
  const ReportNode* outer = find_root(rep, "leime.test.outer");
  ASSERT_NE(outer, nullptr);
  EXPECT_EQ(outer->count, 2u);
  ASSERT_EQ(outer->children.size(), 1u);
  const ReportNode& inner = outer->children[0];
  EXPECT_EQ(inner.name, "leime.test.inner");
  EXPECT_EQ(inner.count, 6u);
  EXPECT_TRUE(inner.children.empty());

  // Inclusive time nests: the outer section contains all inner time, and
  // self is exactly the difference (integer arithmetic, no estimation).
  EXPECT_GE(outer->total_ns, inner.total_ns);
  EXPECT_EQ(outer->self_ns, outer->total_ns - inner.total_ns);
  EXPECT_EQ(inner.self_ns, inner.total_ns);
  EXPECT_GE(inner.p95_ns, 0.0);

  // Every close pushed a span; nothing dropped at this volume.
  EXPECT_EQ(rep.spans.size(), 8u);
  EXPECT_EQ(rep.dropped_spans, 0u);
  // Spans sort by begin time, so the first one is an outer invocation that
  // encloses the spans that follow it.
  EXPECT_EQ(rep.spans.front().name, "leime.test.outer");
  EXPECT_LE(rep.spans.front().t_begin_ns, rep.spans[1].t_begin_ns);
  EXPECT_GE(rep.spans.front().t_end_ns, rep.spans[1].t_end_ns);
}

TEST_F(ProfilerTest, CountersSumAcrossSites) {
  set_enabled(true);
  for (int i = 0; i < 4; ++i) LEIME_PROF_COUNT("leime.test.work_items", 10);
  LEIME_PROF_COUNT("leime.test.work_items", 2);
  set_enabled(false);

  const Report rep = report();
  ASSERT_EQ(rep.counters.size(), 1u);
  EXPECT_EQ(rep.counters[0].first, "leime.test.work_items");
  EXPECT_EQ(rep.counters[0].second, 42u);
}

TEST_F(ProfilerTest, CrossThreadMergeIsDeterministic) {
  set_enabled(true);
  std::vector<std::thread> pool;
  for (int t = 0; t < 2; ++t)
    pool.emplace_back([] {
      nested_work(5);
      LEIME_PROF_COUNT("leime.test.thread_items", 7);
    });
  for (auto& t : pool) t.join();
  set_enabled(false);

  // Counts fold across threads by section name.
  const Report rep = report();
  const ReportNode* outer = find_root(rep, "leime.test.outer");
  ASSERT_NE(outer, nullptr);
  EXPECT_EQ(outer->count, 2u);
  ASSERT_EQ(outer->children.size(), 1u);
  EXPECT_EQ(outer->children[0].count, 10u);
  ASSERT_EQ(rep.counters.size(), 1u);
  EXPECT_EQ(rep.counters[0].second, 14u);

  // Freezing the same quiescent state twice yields identical bytes in
  // every export, regardless of how the OS interleaved the two threads.
  const Report again = report();
  std::ostringstream a1, a2, b1, b2, c1, c2;
  rep.to_text(a1);
  again.to_text(a2);
  rep.to_collapsed(b1);
  again.to_collapsed(b2);
  rep.to_chrome_trace(c1);
  again.to_chrome_trace(c2);
  EXPECT_EQ(a1.str(), a2.str());
  EXPECT_EQ(b1.str(), b2.str());
  EXPECT_EQ(c1.str(), c2.str());

  // Each thread's spans carry that thread's registration id.
  for (const auto& s : rep.spans)
    EXPECT_TRUE(s.name == "leime.test.outer" || s.name == "leime.test.inner");
}

TEST_F(ProfilerTest, CollapsedStackEmitsFullPaths) {
  set_enabled(true);
  nested_work(2);
  set_enabled(false);

  std::ostringstream out;
  report().to_collapsed(out);
  const std::string text = out.str();
  EXPECT_NE(text.find("leime.test.outer "), std::string::npos);
  EXPECT_NE(text.find("leime.test.outer;leime.test.inner "),
            std::string::npos);
  // Every line is "path <self_ns>": last token parses as a number.
  std::istringstream lines(text);
  std::string line;
  int n = 0;
  while (std::getline(lines, line)) {
    ++n;
    const auto space = line.rfind(' ');
    ASSERT_NE(space, std::string::npos) << line;
    EXPECT_NO_THROW((void)std::stoull(line.substr(space + 1))) << line;
  }
  EXPECT_EQ(n, 2);
}

TEST_F(ProfilerTest, ChromeTraceIsWellFormed) {
  set_enabled(true);
  nested_work(1);
  set_enabled(false);

  std::ostringstream out;
  report().to_chrome_trace(out);
  const std::string text = out.str();
  EXPECT_EQ(text.front(), '[');
  EXPECT_NE(text.find("\"ph\":\"M\""), std::string::npos);  // thread names
  EXPECT_NE(text.find("\"ph\":\"X\""), std::string::npos);  // complete spans
  EXPECT_NE(text.find("\"name\":\"leime.test.outer\""), std::string::npos);
  EXPECT_NE(text.find("\"ts\":0.000"), std::string::npos);  // relative t0
  EXPECT_NE(text.rfind("]\n"), std::string::npos);
}

TEST_F(ProfilerTest, ResetDropsRecordingsButKeepsNames) {
  set_enabled(true);
  nested_work(1);
  LEIME_PROF_COUNT("leime.test.reset_counter", 1);
  set_enabled(false);
  ASSERT_FALSE(report().empty());

  reset();
  EXPECT_TRUE(report().empty());
  // Interned ids survive a reset, so instrumented sites stay valid.
  EXPECT_EQ(intern_section("leime.test.outer"),
            intern_section("leime.test.outer"));
}

TEST_F(ProfilerTest, ResetWhileSectionOpenDropsItSafely) {
  // reset() documents that no instrumented code may be running, but a
  // misplaced call must degrade to a dropped section, not an empty-vector
  // pop in ~ScopedSection (REVIEW: UB guarded only by the doc comment).
  set_enabled(true);
  {
    LEIME_PROF_SCOPE("leime.test.reset_victim");
    reset();  // clears this thread's stack under the open section
  }           // destructor must notice the cleared stack and bail
  set_enabled(false);
  EXPECT_TRUE(report().empty());

  // The profiler still records normally afterwards.
  set_enabled(true);
  nested_work(1);
  set_enabled(false);
  EXPECT_NE(find_root(report(), "leime.test.outer"), nullptr);
}

TEST_F(ProfilerTest, ExportFilesWriteAndFailLoudly) {
  set_enabled(true);
  nested_work(1);
  set_enabled(false);
  const Report rep = report();

  const std::string trace = ::testing::TempDir() + "prof_test.trace.json";
  const std::string folded = ::testing::TempDir() + "prof_test.folded.txt";
  write_chrome_trace_file(trace, rep);
  write_collapsed_file(folded, rep);
  std::ifstream tin(trace), fin(folded);
  std::ostringstream tgot, fgot;
  tgot << tin.rdbuf();
  fgot << fin.rdbuf();
  EXPECT_NE(tgot.str().find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(fgot.str().find("leime.test.outer"), std::string::npos);
  std::remove(trace.c_str());
  std::remove(folded.c_str());

  EXPECT_THROW(write_chrome_trace_file("/nonexistent-dir/x.json", rep),
               std::runtime_error);
  EXPECT_THROW(write_collapsed_file("/nonexistent-dir/x.txt", rep),
               std::runtime_error);
}

}  // namespace
}  // namespace leime::prof
