#include "models/exit_curve.h"

#include <gtest/gtest.h>

#include "models/zoo.h"

namespace leime::models {
namespace {

ModelProfile toy() {
  return make_squeezenet();  // small m = 10
}

TEST(ExitCurve, PowerLawMonotoneEndsAtOne) {
  auto p = toy();
  for (double gamma : {0.5, 1.0, 2.0}) {
    const auto rates = power_law_exit_rates(p, gamma);
    ASSERT_EQ(static_cast<int>(rates.size()), p.num_units());
    for (std::size_t i = 1; i < rates.size(); ++i)
      EXPECT_GE(rates[i], rates[i - 1]) << "gamma=" << gamma;
    EXPECT_DOUBLE_EQ(rates.back(), 1.0);
    EXPECT_GT(rates.front(), 0.0);
  }
}

TEST(ExitCurve, GammaOrdersEarlyExitMass) {
  auto p = toy();
  const auto easy = power_law_exit_rates(p, 0.5);
  const auto hard = power_law_exit_rates(p, 2.0);
  // Easier data exits earlier at every non-final exit.
  for (std::size_t i = 0; i + 1 < easy.size(); ++i)
    EXPECT_GT(easy[i], hard[i]);
}

TEST(ExitCurve, PowerLawValidation) {
  auto p = toy();
  EXPECT_THROW(power_law_exit_rates(p, 0.0), std::invalid_argument);
  EXPECT_THROW(power_law_exit_rates(p, -1.0), std::invalid_argument);
}

TEST(ExitCurve, LogisticMonotoneAndNormalised) {
  auto p = toy();
  const auto rates = logistic_exit_rates(p, 0.5, 8.0);
  for (std::size_t i = 1; i < rates.size(); ++i)
    EXPECT_GE(rates[i], rates[i - 1]);
  EXPECT_DOUBLE_EQ(rates.back(), 1.0);
  EXPECT_GE(rates.front(), 0.0);
  EXPECT_THROW(logistic_exit_rates(p, 0.5, 0.0), std::invalid_argument);
  EXPECT_THROW(logistic_exit_rates(p, 1.5, 3.0), std::invalid_argument);
}

TEST(ExitCurve, RescaleHitsTargetFirstExitRate) {
  auto p = toy();
  auto rates = power_law_exit_rates(p, 1.2);
  const int idx = 2;
  const auto scaled = rescale_to_first_exit_rate(rates, idx, 0.4);
  EXPECT_NEAR(scaled[idx - 1], 0.4, 1e-12);
  for (std::size_t i = 1; i < scaled.size(); ++i)
    EXPECT_GE(scaled[i], scaled[i - 1]);
  EXPECT_DOUBLE_EQ(scaled.back(), 1.0);
}

TEST(ExitCurve, RescaleClampsAtOne) {
  std::vector<double> rates{0.5, 0.8, 1.0};
  const auto scaled = rescale_to_first_exit_rate(rates, 1, 0.9);
  EXPECT_NEAR(scaled[0], 0.9, 1e-12);
  EXPECT_LE(scaled[1], 1.0);
  EXPECT_DOUBLE_EQ(scaled[2], 1.0);
}

TEST(ExitCurve, RescaleValidation) {
  std::vector<double> rates{0.5, 1.0};
  EXPECT_THROW(rescale_to_first_exit_rate({}, 1, 0.5), std::invalid_argument);
  EXPECT_THROW(rescale_to_first_exit_rate(rates, 0, 0.5),
               std::invalid_argument);
  EXPECT_THROW(rescale_to_first_exit_rate(rates, 3, 0.5),
               std::invalid_argument);
  EXPECT_THROW(rescale_to_first_exit_rate(rates, 1, 0.0),
               std::invalid_argument);
  EXPECT_THROW(rescale_to_first_exit_rate(rates, 1, 1.5),
               std::invalid_argument);
}

}  // namespace
}  // namespace leime::models
namespace leime::models {
namespace {

TEST(AccuracyCurve, SaturatingShape) {
  const auto p = make_squeezenet();
  const auto acc = saturating_exit_accuracies(p, 0.7, 0.9, 2.5);
  ASSERT_EQ(static_cast<int>(acc.size()), p.num_units());
  for (std::size_t i = 1; i < acc.size(); ++i) EXPECT_GE(acc[i], acc[i - 1]);
  EXPECT_DOUBLE_EQ(acc.back(), 0.9);
  EXPECT_GE(acc.front(), 0.7);
  // Fast early rise: half the gap is closed well before half the depth.
  const auto mid = acc[acc.size() / 2];
  EXPECT_GT(mid, 0.7 + 0.5 * (0.9 - 0.7));
}

TEST(AccuracyCurve, Validation) {
  const auto p = make_squeezenet();
  EXPECT_THROW(saturating_exit_accuracies(p, -0.1, 0.9, 1.0),
               std::invalid_argument);
  EXPECT_THROW(saturating_exit_accuracies(p, 0.5, 1.1, 1.0),
               std::invalid_argument);
  EXPECT_THROW(saturating_exit_accuracies(p, 0.5, 0.9, 0.0),
               std::invalid_argument);
}

TEST(AccuracyCurve, ZooProfilesCarryAccuracies) {
  for (const auto kind : all_model_kinds()) {
    const auto p = make_profile(kind);
    for (int i = 2; i <= p.num_units(); ++i)
      EXPECT_GE(p.exit(i).exit_accuracy, p.exit(i - 1).exit_accuracy);
    EXPECT_GT(p.exit(1).exit_accuracy, 0.5);
    EXPECT_LE(p.exit(p.num_units()).exit_accuracy, 1.0);
  }
}

}  // namespace
}  // namespace leime::models
