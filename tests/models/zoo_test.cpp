#include "models/zoo.h"

#include <gtest/gtest.h>

namespace leime::models {
namespace {

class ZooTest : public testing::TestWithParam<ModelKind> {};

TEST_P(ZooTest, ProfileIsWellFormed) {
  const auto p = make_profile(GetParam());
  EXPECT_GE(p.num_units(), 3);
  EXPECT_GT(p.input_bytes(), 0.0);
  for (int i = 1; i <= p.num_units(); ++i) {
    EXPECT_GT(p.unit(i).flops, 0.0) << p.unit(i).name;
    EXPECT_GT(p.unit(i).out_bytes, 0.0) << p.unit(i).name;
    EXPECT_GT(p.exit(i).classifier_flops, 0.0);
  }
  // Cumulative exit rates monotone, final = 1.
  for (int i = 2; i <= p.num_units(); ++i)
    EXPECT_GE(p.exit(i).exit_rate, p.exit(i - 1).exit_rate);
  EXPECT_DOUBLE_EQ(p.exit(p.num_units()).exit_rate, 1.0);
}

TEST_P(ZooTest, GammaControlsExitRates) {
  ZooOptions easy;
  easy.exit_rate_gamma = 0.5;
  ZooOptions hard;
  hard.exit_rate_gamma = 2.5;
  const auto pe = make_profile(GetParam(), easy);
  const auto ph = make_profile(GetParam(), hard);
  EXPECT_GT(pe.exit(1).exit_rate, ph.exit(1).exit_rate);
}

INSTANTIATE_TEST_SUITE_P(AllModels, ZooTest,
                         testing::ValuesIn(all_model_kinds()),
                         [](const auto& info) {
                           std::string n = to_string(info.param);
                           for (auto& c : n)
                             if (!isalnum(static_cast<unsigned char>(c))) c = '_';
                           return n;
                         });

TEST(Zoo, UnitCountsMatchPaperGranularity) {
  EXPECT_EQ(make_vgg16().num_units(), 13);
  EXPECT_EQ(make_resnet34().num_units(), 17);   // stem + 16 basic blocks
  EXPECT_EQ(make_inception_v3().num_units(), 16);  // 5 stem + 11 modules
  EXPECT_EQ(make_squeezenet().num_units(), 10);    // conv1 + 8 fires + conv10
}

TEST(Zoo, TotalFlopsInPublishedBallpark) {
  // Published forward-pass figures (2x MACs): VGG-16 ≈ 31 GFLOPs,
  // ResNet-34 ≈ 7.3 GFLOPs, Inception v3 ≈ 5.7 GFLOPs,
  // SqueezeNet 1.0 ≈ 1.7 GFLOPs. Allow a generous band: the profiles fold
  // pools/heads differently than the reference implementations.
  const double vgg = make_vgg16().total_flops();
  EXPECT_GT(vgg, 25e9);
  EXPECT_LT(vgg, 36e9);
  const double rn = make_resnet34().total_flops();
  EXPECT_GT(rn, 5e9);
  EXPECT_LT(rn, 10e9);
  const double inc = make_inception_v3().total_flops();
  EXPECT_GT(inc, 4e9);
  EXPECT_LT(inc, 13e9);
  const double sq = make_squeezenet().total_flops();
  EXPECT_GT(sq, 0.8e9);
  EXPECT_LT(sq, 3e9);
}

TEST(Zoo, RelativeModelOrdering) {
  // VGG-16 is by far the heaviest; SqueezeNet the lightest.
  const double vgg = make_vgg16().total_flops();
  const double rn = make_resnet34().total_flops();
  const double inc = make_inception_v3().total_flops();
  const double sq = make_squeezenet().total_flops();
  EXPECT_GT(vgg, rn);
  EXPECT_GT(vgg, inc);
  EXPECT_GT(rn, sq);
  EXPECT_GT(inc, sq);
}

TEST(Zoo, InputBytes) {
  EXPECT_DOUBLE_EQ(make_vgg16().input_bytes(), 4.0 * 3 * 224 * 224);
  EXPECT_DOUBLE_EQ(make_inception_v3().input_bytes(), 4.0 * 3 * 299 * 299);
}

TEST(Zoo, IntermediateDataShrinksDeep) {
  // The deepest cut should move far less data than the shallowest.
  for (const auto kind : all_model_kinds()) {
    const auto p = make_profile(kind);
    const int m = p.num_units();
    EXPECT_LT(p.out_bytes_after(m), p.out_bytes_after(1))
        << to_string(kind);
  }
}

TEST(Zoo, NamesAndRegistry) {
  EXPECT_EQ(to_string(ModelKind::kVgg16), "VGG-16");
  EXPECT_EQ(make_profile(ModelKind::kResNet34).name(), "ResNet-34");
  EXPECT_EQ(all_model_kinds().size(), 4u);
}

}  // namespace
}  // namespace leime::models
