#include "models/profile.h"

#include <gtest/gtest.h>

#include <stdexcept>

namespace leime::models {
namespace {

std::vector<UnitSpec> three_units() {
  return {{"u1", 100.0, 400.0}, {"u2", 200.0, 300.0}, {"u3", 300.0, 200.0}};
}

std::vector<ExitSpec> three_exits() {
  return {{10.0, 0.2}, {10.0, 0.6}, {50.0, 1.0}};
}

TEST(ModelProfile, AccessorsAreOneIndexed) {
  ModelProfile p("toy", 1000.0, three_units(), three_exits());
  EXPECT_EQ(p.num_units(), 3);
  EXPECT_EQ(p.unit(1).name, "u1");
  EXPECT_EQ(p.unit(3).name, "u3");
  EXPECT_DOUBLE_EQ(p.exit(2).exit_rate, 0.6);
  EXPECT_THROW(p.unit(0), std::out_of_range);
  EXPECT_THROW(p.unit(4), std::out_of_range);
  EXPECT_THROW(p.exit(0), std::out_of_range);
}

TEST(ModelProfile, PrefixFlops) {
  ModelProfile p("toy", 1000.0, three_units(), three_exits());
  EXPECT_DOUBLE_EQ(p.prefix_flops(0), 0.0);
  EXPECT_DOUBLE_EQ(p.prefix_flops(1), 100.0);
  EXPECT_DOUBLE_EQ(p.prefix_flops(2), 300.0);
  EXPECT_DOUBLE_EQ(p.prefix_flops(3), 600.0);
  EXPECT_DOUBLE_EQ(p.total_flops(), 600.0);
  EXPECT_THROW(p.prefix_flops(-1), std::out_of_range);
  EXPECT_THROW(p.prefix_flops(4), std::out_of_range);
}

TEST(ModelProfile, OutBytesAfterCut) {
  ModelProfile p("toy", 1000.0, three_units(), three_exits());
  EXPECT_DOUBLE_EQ(p.out_bytes_after(0), 1000.0);  // raw input
  EXPECT_DOUBLE_EQ(p.out_bytes_after(1), 400.0);
  EXPECT_DOUBLE_EQ(p.out_bytes_after(3), 200.0);
}

TEST(ModelProfile, SetExitRates) {
  ModelProfile p("toy", 1000.0, three_units(), three_exits());
  p.set_exit_rates({0.1, 0.5, 1.0});
  EXPECT_DOUBLE_EQ(p.exit(1).exit_rate, 0.1);
  EXPECT_THROW(p.set_exit_rates({0.5, 0.1, 1.0}), std::invalid_argument);
  EXPECT_THROW(p.set_exit_rates({0.1, 0.5}), std::invalid_argument);
  EXPECT_THROW(p.set_exit_rates({0.1, 0.5, 0.9}), std::invalid_argument);
  // Failed update must not corrupt state.
  EXPECT_DOUBLE_EQ(p.exit(1).exit_rate, 0.1);
}

TEST(ModelProfile, ConstructorValidation) {
  EXPECT_THROW(ModelProfile("x", 1000.0, {}, {}), std::invalid_argument);
  EXPECT_THROW(ModelProfile("x", 0.0, three_units(), three_exits()),
               std::invalid_argument);
  EXPECT_THROW(
      ModelProfile("x", 1.0, three_units(), {{10.0, 0.2}, {10.0, 0.6}}),
      std::invalid_argument);
  // Non-monotone rates.
  EXPECT_THROW(ModelProfile("x", 1.0, three_units(),
                            {{10.0, 0.7}, {10.0, 0.6}, {50.0, 1.0}}),
               std::invalid_argument);
  // Last rate != 1.
  EXPECT_THROW(ModelProfile("x", 1.0, three_units(),
                            {{10.0, 0.2}, {10.0, 0.6}, {50.0, 0.9}}),
               std::invalid_argument);
  // Non-positive unit flops.
  auto bad = three_units();
  bad[1].flops = 0.0;
  EXPECT_THROW(ModelProfile("x", 1.0, bad, three_exits()),
               std::invalid_argument);
  // Non-positive classifier flops.
  auto bad_exits = three_exits();
  bad_exits[0].classifier_flops = 0.0;
  EXPECT_THROW(ModelProfile("x", 1.0, three_units(), bad_exits),
               std::invalid_argument);
}

}  // namespace
}  // namespace leime::models
