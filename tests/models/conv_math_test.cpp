#include "models/conv_math.h"

#include <gtest/gtest.h>

#include <stdexcept>

namespace leime::models {
namespace {

TEST(ConvMath, OutputDimsBasic) {
  const TensorDims in{3, 224, 224};
  const auto out = conv_output_dims(in, {64, 3, 1, 1});
  EXPECT_EQ(out.channels, 64);
  EXPECT_EQ(out.height, 224);
  EXPECT_EQ(out.width, 224);
}

TEST(ConvMath, OutputDimsStrided) {
  const auto out = conv_output_dims({3, 224, 224}, {64, 7, 2, 3});
  EXPECT_EQ(out.height, 112);
  EXPECT_EQ(out.width, 112);
}

TEST(ConvMath, OutputDimsNoPadding) {
  const auto out = conv_output_dims({32, 149, 149}, {32, 3, 1, 0});
  EXPECT_EQ(out.height, 147);
}

TEST(ConvMath, FlopsMatchesHandComputation) {
  // 2 * k^2 * Cin * Cout * Hout * Wout with a 1x1 conv on 4x4.
  const double f = conv_flops({2, 4, 4}, {3, 1, 1, 0});
  EXPECT_DOUBLE_EQ(f, 2.0 * 1 * 2 * 3 * 16);
}

TEST(ConvMath, FlopsVgg16FirstLayer) {
  // conv3-64 on 224x224x3: 2*9*3*64*224*224 ≈ 173.4 MFLOPs.
  const double f = conv_flops({3, 224, 224}, {64, 3, 1, 1});
  EXPECT_NEAR(f, 173408256.0, 1.0);
}

TEST(ConvMath, PoolDims) {
  const auto out = pool_output_dims({64, 112, 112}, 3, 2);
  EXPECT_EQ(out.channels, 64);
  EXPECT_EQ(out.height, 55);
  const auto out2 = pool_output_dims({64, 224, 224}, 2, 2);
  EXPECT_EQ(out2.height, 112);
}

TEST(ConvMath, TensorBytes) {
  const TensorDims d{64, 10, 10};
  EXPECT_DOUBLE_EQ(d.bytes(), 4.0 * 64 * 100);
  EXPECT_EQ(d.elements(), 6400);
}

TEST(ConvMath, FcFlops) {
  EXPECT_DOUBLE_EQ(fc_flops(512, 10), 2.0 * 512 * 10);
  EXPECT_THROW(fc_flops(0, 10), std::invalid_argument);
}

TEST(ConvMath, ExitHeadFlops) {
  const TensorDims fm{128, 8, 8};
  const double f = exit_head_flops(fm, 64, 10);
  // pool + FC(128,64) + FC(64,10) + softmax
  EXPECT_DOUBLE_EQ(f, 128 * 64.0 + 2.0 * 128 * 64 + 2.0 * 64 * 10 + 30.0);
}

TEST(ConvMath, Validation) {
  EXPECT_THROW(conv_output_dims({0, 10, 10}, {1, 3, 1, 1}),
               std::invalid_argument);
  EXPECT_THROW(conv_output_dims({3, 10, 10}, {1, 0, 1, 1}),
               std::invalid_argument);
  EXPECT_THROW(conv_output_dims({3, 2, 2}, {1, 5, 1, 0}),
               std::invalid_argument);
  EXPECT_THROW(pool_output_dims({3, 2, 2}, 5, 2), std::invalid_argument);
  EXPECT_THROW(exit_head_flops({1, 1, 1}, 0, 10), std::invalid_argument);
}

}  // namespace
}  // namespace leime::models
