#include "models/profile_io.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <sstream>

#include "models/zoo.h"

namespace leime::models {
namespace {

TEST(ProfileIo, RoundTripPreservesEverything) {
  for (const auto kind : all_model_kinds()) {
    const auto original = make_profile(kind);
    std::stringstream buffer;
    save_profile(original, buffer);
    const auto loaded = load_profile(buffer);

    EXPECT_EQ(loaded.name(), original.name());
    EXPECT_DOUBLE_EQ(loaded.input_bytes(), original.input_bytes());
    ASSERT_EQ(loaded.num_units(), original.num_units());
    for (int i = 1; i <= original.num_units(); ++i) {
      EXPECT_EQ(loaded.unit(i).name, original.unit(i).name);
      EXPECT_DOUBLE_EQ(loaded.unit(i).flops, original.unit(i).flops);
      EXPECT_DOUBLE_EQ(loaded.unit(i).out_bytes, original.unit(i).out_bytes);
      EXPECT_DOUBLE_EQ(loaded.exit(i).classifier_flops,
                       original.exit(i).classifier_flops);
      EXPECT_DOUBLE_EQ(loaded.exit(i).exit_rate, original.exit(i).exit_rate);
      EXPECT_DOUBLE_EQ(loaded.exit(i).exit_accuracy,
                       original.exit(i).exit_accuracy);
    }
  }
}

TEST(ProfileIo, FileRoundTrip) {
  const std::string path = testing::TempDir() + "/leime_profile_io.txt";
  const auto original = make_squeezenet();
  save_profile_file(original, path);
  const auto loaded = load_profile_file(path);
  EXPECT_EQ(loaded.name(), original.name());
  EXPECT_EQ(loaded.num_units(), original.num_units());
  std::remove(path.c_str());
  EXPECT_THROW(load_profile_file(path), std::runtime_error);
}

TEST(ProfileIo, CommentsAndBlankLinesIgnored) {
  std::stringstream buffer;
  save_profile(make_squeezenet(), buffer);
  std::string text = buffer.str();
  text.insert(text.find('\n') + 1, "# a comment\n\n   \n");
  std::stringstream patched(text);
  EXPECT_NO_THROW(load_profile(patched));
}

TEST(ProfileIo, RejectsBadMagic) {
  std::stringstream in("not-a-profile v9\n");
  EXPECT_THROW(load_profile(in), std::invalid_argument);
}

TEST(ProfileIo, RejectsTruncatedInput) {
  std::stringstream buffer;
  save_profile(make_squeezenet(), buffer);
  const std::string text = buffer.str();
  std::stringstream truncated(text.substr(0, text.size() / 2));
  EXPECT_THROW(load_profile(truncated), std::invalid_argument);
}

TEST(ProfileIo, RejectsNonNumericFields) {
  std::stringstream in(
      "leime-profile v1\n"
      "name toy\n"
      "input_bytes not_a_number\n");
  EXPECT_THROW(load_profile(in), std::invalid_argument);
}

TEST(ProfileIo, RejectsCountMismatch) {
  std::stringstream in(
      "leime-profile v1\n"
      "name toy\n"
      "input_bytes 100\n"
      "units 2\n"
      "u1 10 20\n"
      "u2 10 20\n"
      "exits 3\n");
  EXPECT_THROW(load_profile(in), std::invalid_argument);
}

TEST(ProfileIo, LoadedProfileStillValidates) {
  // Corrupting an exit rate must trip ModelProfile's own validation.
  std::stringstream buffer;
  save_profile(make_squeezenet(), buffer);
  std::string text = buffer.str();
  const auto pos = text.rfind("\n", text.size() - 2);
  text = text.substr(0, pos + 1) + "10 5.0 0.5\n";  // exit_rate 5.0
  std::stringstream corrupted(text);
  EXPECT_THROW(load_profile(corrupted), std::invalid_argument);
}

}  // namespace
}  // namespace leime::models
