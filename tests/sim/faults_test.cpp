#include "sim/faults.h"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "core/partition.h"
#include "models/zoo.h"
#include "sim/simulation.h"
#include "util/ini.h"

namespace leime::sim {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

// ------------------------------------------------------------ pure helpers

TEST(FaultWindows, MergeSortsAndCoalesces) {
  const auto merged =
      merge_windows({{10.0, 12.0}, {1.0, 5.0}, {4.0, 6.0}, {6.0, 7.0}});
  ASSERT_EQ(merged.size(), 2u);
  EXPECT_DOUBLE_EQ(merged[0].start, 1.0);
  EXPECT_DOUBLE_EQ(merged[0].end, 7.0);
  EXPECT_DOUBLE_EQ(merged[1].start, 10.0);
  EXPECT_DOUBLE_EQ(merged[1].end, 12.0);
  EXPECT_TRUE(merge_windows({}).empty());

  // An open-ended window swallows everything after its start.
  const auto open = merge_windows({{30.0, kInf}, {40.0, 50.0}, {5.0, 6.0}});
  ASSERT_EQ(open.size(), 2u);
  EXPECT_DOUBLE_EQ(open[1].start, 30.0);
  EXPECT_EQ(open[1].end, kInf);
}

TEST(FaultWindows, DownAtRespectsHalfOpenWindows) {
  const std::vector<FaultWindow> windows{{1.0, 7.0}, {10.0, 12.0}};
  EXPECT_FALSE(down_at(windows, 0.5));
  EXPECT_TRUE(down_at(windows, 1.0));   // start inclusive
  EXPECT_TRUE(down_at(windows, 6.999));
  EXPECT_FALSE(down_at(windows, 7.0));  // end exclusive
  EXPECT_TRUE(down_at(windows, 11.0));
  EXPECT_FALSE(down_at(windows, 100.0));
}

TEST(FaultTimeline, EdgeQueries) {
  FaultTimeline tl;
  tl.edge_down = {{10.0, 20.0}, {30.0, kInf}};
  EXPECT_TRUE(tl.edge_up_at(5.0));
  EXPECT_FALSE(tl.edge_up_at(15.0));
  EXPECT_FALSE(tl.edge_up_at(1e9));
  EXPECT_DOUBLE_EQ(tl.next_edge_up(5.0), 5.0);    // already up
  EXPECT_DOUBLE_EQ(tl.next_edge_up(15.0), 20.0);  // heals at window end
  EXPECT_DOUBLE_EQ(tl.next_edge_up(25.0), 25.0);
  EXPECT_EQ(tl.next_edge_up(35.0), kInf);         // never returns

  tl.link_down = {{{1.0, 2.0}}, {}, {{3.0, 4.0}, {5.0, 6.0}}};
  EXPECT_EQ(tl.link_outage_count(), 3u);
}

TEST(FaultPlan, EnabledOnlyWithFaultSources) {
  FaultPlan plan;
  EXPECT_FALSE(plan.enabled());
  // Degradation knobs alone do not make the plan active.
  plan.degradation.task_timeout = 2.0;
  plan.degradation.detection_timeout = 5.0;
  EXPECT_FALSE(plan.enabled());

  FaultPlan link = plan;
  link.link.windows = {{1.0, 2.0}};
  EXPECT_TRUE(link.enabled());
  FaultPlan rate = plan;
  rate.edge.rate = 0.01;
  EXPECT_TRUE(rate.enabled());
  FaultPlan churn = plan;
  churn.churn.events = {{0, 10.0, -1.0}};
  EXPECT_TRUE(churn.enabled());
}

TEST(FaultPlan, ValidateRejectsBadInput) {
  const auto expect_throw = [](FaultPlan plan, std::size_t devices,
                               const std::string& fragment) {
    try {
      plan.validate(devices);
      FAIL() << "expected std::invalid_argument mentioning '" << fragment
             << "'";
    } catch (const std::invalid_argument& e) {
      EXPECT_NE(std::string(e.what()).find(fragment), std::string::npos)
          << "actual message: " << e.what();
    }
  };

  FaultPlan ok;
  ok.validate(2);  // empty plan is fine

  FaultPlan plan;
  plan.link.rate = -0.1;
  expect_throw(plan, 2, "link_outage_rate");

  plan = {};
  plan.edge.mean_downtime = 0.0;
  expect_throw(plan, 2, "edge_downtime_mean_s");

  plan = {};
  plan.link.windows = {{5.0, 2.0}};  // inverted
  expect_throw(plan, 2, "end must be after start");

  plan = {};
  plan.link.windows = {{5.0, kInf}};  // links must heal
  expect_throw(plan, 2, "open-ended");

  plan = {};
  plan.edge.windows = {{5.0, kInf}};  // edge may stay dead
  plan.validate(2);

  plan = {};
  plan.link.windows = {{1.0, 2.0, /*device=*/5}};
  expect_throw(plan, 2, "fleet has 2 devices");

  plan = {};
  plan.churn.events = {{3, 10.0, -1.0}};
  expect_throw(plan, 2, "churn names device 3");

  plan = {};
  plan.churn.events = {{0, 10.0, 8.0}};  // rejoin before leave
  expect_throw(plan, 2, "rejoin must be after leave");

  plan = {};
  plan.degradation.detection_timeout = 0.0;
  expect_throw(plan, 2, "detection_timeout_s");

  plan = {};
  plan.degradation.max_retries = -1;
  expect_throw(plan, 2, "max_retries");

  plan = {};
  plan.degradation.probe_period = 0.0;
  expect_throw(plan, 2, "probe_period_s");
}

TEST(Materialize, DeterministicForEqualSeeds) {
  FaultPlan plan;
  plan.link.rate = 0.05;
  plan.link.mean_duration = 1.5;
  plan.edge.rate = 0.02;
  plan.edge.mean_downtime = 4.0;
  plan.churn.events = {{1, 40.0, 70.0}, {0, 10.0, -1.0}};

  util::Rng a(99), b(99), c(100);
  const auto ta = materialize_faults(plan, 3, 500.0, a);
  const auto tb = materialize_faults(plan, 3, 500.0, b);
  EXPECT_EQ(ta.link_down, tb.link_down);
  EXPECT_EQ(ta.edge_down, tb.edge_down);
  EXPECT_EQ(ta.churn, tb.churn);
  // A different seed draws a different schedule.
  const auto tc = materialize_faults(plan, 3, 500.0, c);
  EXPECT_NE(ta.edge_down, tc.edge_down);

  // Over a 500 s horizon the Poisson sources certainly fire, and churn is
  // re-sorted by leave time.
  EXPECT_GT(ta.link_outage_count(), 0u);
  EXPECT_GT(ta.edge_down.size(), 0u);
  ASSERT_EQ(ta.churn.size(), 2u);
  EXPECT_EQ(ta.churn[0].device, 0);
  EXPECT_EQ(ta.churn[1].device, 1);
}

TEST(Materialize, ScopesWindowsAndMergesLanes) {
  FaultPlan plan;
  plan.link.windows = {{1.0, 2.0, /*device=*/-1},  // every device
                       {1.5, 3.0, /*device=*/1},
                       {10.0, 11.0, /*device=*/0}};
  util::Rng rng(7);
  const auto tl = materialize_faults(plan, 2, 100.0, rng);
  ASSERT_EQ(tl.link_down.size(), 2u);
  // Device 0: the fleet-wide window plus its own, disjoint.
  ASSERT_EQ(tl.link_down[0].size(), 2u);
  EXPECT_DOUBLE_EQ(tl.link_down[0][0].end, 2.0);
  EXPECT_DOUBLE_EQ(tl.link_down[0][1].start, 10.0);
  // Device 1: its overlapping window merged with the fleet-wide one.
  ASSERT_EQ(tl.link_down[1].size(), 1u);
  EXPECT_DOUBLE_EQ(tl.link_down[1][0].start, 1.0);
  EXPECT_DOUBLE_EQ(tl.link_down[1][0].end, 3.0);
  // Disjoint/sorted windows is exactly what each sorted lane guarantees.
  for (const auto& lane : tl.link_down)
    for (std::size_t i = 1; i < lane.size(); ++i)
      EXPECT_GT(lane[i].start, lane[i - 1].end);
}

// ------------------------------------------------------------- INI parsing

TEST(FaultsIni, ParseSerializeRoundTrip) {
  FaultPlan plan;
  plan.link.windows = {{40.0, 50.0, 0}, {80.0, 90.0, -1}};
  plan.link.rate = 0.01;
  plan.link.mean_duration = 2.5;
  plan.edge.windows = {{30.0, 45.0}, {100.0, kInf}};
  plan.edge.rate = 0.002;
  plan.edge.mean_downtime = 8.0;
  plan.churn.events = {{2, 30.0, 60.0}, {1, 80.0, -1.0}};
  plan.degradation.detection_timeout = 1.0;
  plan.degradation.task_timeout = 4.0;
  plan.degradation.max_retries = 3;
  plan.degradation.retry_backoff = 0.5;
  plan.degradation.probe_period = 0.25;

  const auto text = serialize_faults_ini(plan);
  const auto ini = util::IniFile::parse_string(text);
  const auto* section = ini.find("faults");
  ASSERT_NE(section, nullptr);
  EXPECT_EQ(parse_faults_section(*section), plan);

  // The default plan round-trips too (no window/churn lines emitted).
  const FaultPlan empty;
  const auto empty_ini =
      util::IniFile::parse_string(serialize_faults_ini(empty));
  EXPECT_EQ(parse_faults_section(*empty_ini.find("faults")), empty);
}

TEST(FaultsIni, AcceptsScopedAndOpenWindows) {
  const auto ini = util::IniFile::parse_string(
      "[faults]\n"
      "link_outage_windows = d0:40-50, 100-103\n"
      "edge_down_windows = 30-45, 200-\n"
      "churn = 1:60-95, 0:110-\n"
      "task_timeout_s = 4\n");
  const auto plan = parse_faults_section(*ini.find("faults"));
  ASSERT_EQ(plan.link.windows.size(), 2u);
  EXPECT_EQ(plan.link.windows[0].device, 0);
  EXPECT_DOUBLE_EQ(plan.link.windows[0].start, 40.0);
  EXPECT_EQ(plan.link.windows[1].device, -1);
  ASSERT_EQ(plan.edge.windows.size(), 2u);
  EXPECT_EQ(plan.edge.windows[1].end, kInf);
  ASSERT_EQ(plan.churn.events.size(), 2u);
  EXPECT_DOUBLE_EQ(plan.churn.events[0].rejoin, 95.0);
  EXPECT_DOUBLE_EQ(plan.churn.events[1].rejoin, -1.0);
  EXPECT_DOUBLE_EQ(plan.degradation.task_timeout, 4.0);
  // Empty values mean "no entries", matching the shipped template.
  const auto blank = util::IniFile::parse_string(
      "[faults]\nlink_outage_windows =\nchurn =\n");
  EXPECT_EQ(parse_faults_section(*blank.find("faults")), FaultPlan{});
}

TEST(FaultsIni, RejectsUnknownAndMalformedKeys) {
  const auto parse = [](const std::string& body) {
    const auto ini = util::IniFile::parse_string("[faults]\n" + body);
    return parse_faults_section(*ini.find("faults"));
  };
  try {
    parse("edge_down_window = 10-20\n");  // typo: missing the plural s
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("unknown key 'edge_down_window'"), std::string::npos)
        << what;
    EXPECT_NE(what.find("edge_down_windows"), std::string::npos)
        << "message should list the valid keys: " << what;
  }
  EXPECT_THROW(parse("edge_down_windows = 10\n"), std::invalid_argument);
  EXPECT_THROW(parse("edge_down_windows = ten-20\n"), std::invalid_argument);
  EXPECT_THROW(parse("churn = 30-60\n"), std::invalid_argument);
  EXPECT_THROW(parse("churn = 2:\n"), std::invalid_argument);
}

// ---------------------------------------------------------- sim behaviour

ScenarioConfig fault_scenario(const std::string& policy, int devices = 1) {
  static const core::MeDnnPartition partition = [] {
    // Fixed early-exit design: sigma1 ~ 0.6 keeps meaningful work on both
    // tiers, so fault behaviour on either side is visible.
    const auto profile = models::make_squeezenet();
    return core::make_partition(profile, {4, 8, profile.num_units()});
  }();
  ScenarioConfig cfg;
  cfg.partition = partition;
  for (int i = 0; i < devices; ++i) {
    DeviceSpec dev;
    dev.flops = core::kRaspberryPiFlops;
    dev.mean_rate = 1.0;
    cfg.devices.push_back(dev);
  }
  cfg.policy = policy;
  cfg.duration = 30.0;
  cfg.warmup = 2.0;
  cfg.seed = 17;
  cfg.faults.degradation.detection_timeout = 0.5;
  cfg.faults.degradation.probe_period = 0.5;
  return cfg;
}

void expect_conservation(const SimResult& r) {
  EXPECT_EQ(r.generated, r.total_completed + r.in_flight);
  EXPECT_EQ(r.in_flight, r.faults.parked);
}

TEST(SimFaults, InactivePlanLeavesRunBitIdentical) {
  const auto base = run_scenario(fault_scenario("LEIME", 2));
  // Degradation knobs without fault sources must not perturb anything:
  // the fault machinery (extra RNG fork, timeline events) stays off.
  auto cfg = fault_scenario("LEIME", 2);
  cfg.faults.degradation.detection_timeout = 3.0;
  cfg.faults.degradation.probe_period = 9.0;
  cfg.faults.degradation.retry_backoff = 1.0;
  const auto tuned = run_scenario(cfg);
  EXPECT_EQ(tuned.generated, base.generated);
  EXPECT_EQ(tuned.total_completed, base.total_completed);
  EXPECT_DOUBLE_EQ(tuned.tct.mean, base.tct.mean);
  EXPECT_DOUBLE_EQ(tuned.tct.p95, base.tct.p95);
  EXPECT_DOUBLE_EQ(tuned.mean_offload_ratio, base.mean_offload_ratio);
  ASSERT_EQ(tuned.per_device.size(), base.per_device.size());
  for (std::size_t i = 0; i < base.per_device.size(); ++i) {
    EXPECT_EQ(tuned.per_device[i].completed, base.per_device[i].completed);
    EXPECT_DOUBLE_EQ(tuned.per_device[i].tct.mean,
                     base.per_device[i].tct.mean);
  }
  // Fault-free runs report all-zero counters and full conservation.
  EXPECT_EQ(base.in_flight, 0u);
  EXPECT_EQ(base.generated, base.total_completed);
  EXPECT_EQ(base.faults.failed_over, 0u);
  EXPECT_EQ(base.faults.fallback_slots, 0u);
  EXPECT_EQ(base.faults.link_outages, 0u);
}

TEST(SimFaults, EdgeOutageFailsOverAndHeals) {
  auto cfg = fault_scenario("E-only");
  cfg.faults.edge.windows = {{5.0, 15.0}};
  const auto r = run_scenario(cfg);
  expect_conservation(r);
  EXPECT_EQ(r.faults.edge_crashes, 1u);
  EXPECT_GT(r.faults.failed_over, 0u);
  // The window heals, so everything eventually completes.
  EXPECT_EQ(r.in_flight, 0u);
  EXPECT_EQ(r.generated, r.total_completed);
  // Per-device counters roll up into the fleet counters.
  std::size_t dev_failed = 0;
  for (const auto& d : r.per_device) dev_failed += d.failed_over;
  EXPECT_EQ(dev_failed, r.faults.failed_over);
}

TEST(SimFaults, EdgeNeverReturningParksBlockTwoWork) {
  auto cfg = fault_scenario("E-only");
  cfg.faults.edge.windows = {{5.0, kInf}};
  const auto r = run_scenario(cfg);
  expect_conservation(r);
  EXPECT_GT(r.faults.failed_over, 0u);
  // Block-2 work has nowhere to run without an edge: it parks, and the
  // conservation identity accounts for it as in-flight.
  EXPECT_GT(r.faults.parked, 0u);
  EXPECT_EQ(r.in_flight, r.faults.parked);
  EXPECT_LT(r.total_completed, r.generated);
}

TEST(SimFaults, LinkOutageHoldsBytesUntilRecovery) {
  auto base = fault_scenario("E-only");
  const auto clean = run_scenario(base);
  auto cfg = fault_scenario("E-only");
  cfg.faults.link.windows = {{5.0, 15.0}};
  const auto r = run_scenario(cfg);
  expect_conservation(r);
  EXPECT_EQ(r.faults.link_outages, 1u);
  // Bytes are held, not lost: every task still completes, later.
  EXPECT_EQ(r.in_flight, 0u);
  EXPECT_EQ(r.generated, clean.generated);
  EXPECT_GT(r.tct.mean, clean.tct.mean);
}

TEST(SimFaults, ChurnStopsArrivalsWhileAbsent) {
  const auto clean = run_scenario(fault_scenario("LEIME", 2));
  auto cfg = fault_scenario("LEIME", 2);
  cfg.faults.churn.events = {{1, 5.0, -1.0}};  // leaves at 5 s, never back
  const auto gone = run_scenario(cfg);
  expect_conservation(gone);
  EXPECT_EQ(gone.faults.churn_events, 1u);
  EXPECT_LT(gone.generated, clean.generated);

  auto back_cfg = fault_scenario("LEIME", 2);
  back_cfg.faults.churn.events = {{1, 5.0, 15.0}};  // returns at 15 s
  const auto back = run_scenario(back_cfg);
  expect_conservation(back);
  EXPECT_EQ(back.faults.churn_events, 2u);  // leave + rejoin
  EXPECT_GT(back.generated, gone.generated);
  EXPECT_LE(back.generated, clean.generated);
}

TEST(SimFaults, TaskTimeoutRetriesThenFallsBackLocally) {
  auto cfg = fault_scenario("E-only");
  cfg.faults.link.windows = {{5.0, 20.0}};
  cfg.faults.degradation.task_timeout = 1.0;
  cfg.faults.degradation.max_retries = 1;
  cfg.faults.degradation.retry_backoff = 0.25;
  const auto r = run_scenario(cfg);
  expect_conservation(r);
  // Tasks stuck behind the dead uplink hit the watchdog, burn the retry
  // budget and finish on the device CPU instead.
  EXPECT_GT(r.faults.retries, 0u);
  EXPECT_GT(r.faults.local_fallbacks, 0u);
  EXPECT_EQ(r.in_flight, 0u);
  EXPECT_EQ(r.generated, r.total_completed);
}

TEST(SimFaults, FallbackPolicyDegradesToDeviceOnlyDuringOutage) {
  auto cfg = fault_scenario("LEIME+fallback");
  cfg.faults.edge.windows = {{5.0, 15.0}};
  const auto r = run_scenario(cfg);
  expect_conservation(r);
  // While the edge is down the wrapped policy pins x = 0; those slots are
  // counted so benches can report how often degradation engaged.
  EXPECT_GT(r.faults.fallback_slots, 0u);
  EXPECT_EQ(r.in_flight, 0u);
}

}  // namespace
}  // namespace leime::sim
