// Zero-allocation steady-state gate for the DES hot path (DESIGN.md §10).
//
// After a warmup that grows the handler pool and heap vector to their
// working depth, a schedule/run cycle must perform no heap allocations at
// all: handlers live in InlineFn storage, heap entries in a pre-grown flat
// vector, and event slots recycle through the free list. The global
// operator new/delete counters from tests/support/alloc_hooks.cpp make
// that property a hard assertion instead of a hope.
#include <gtest/gtest.h>

#include <cstdint>

#include "sim/event_queue.h"
#include "support/alloc_hooks.h"

namespace leime::sim {
namespace {

TEST(EventQueueAlloc, SteadyStateSchedulesAndRunsWithZeroAllocations) {
  EventQueue q;
  std::uint64_t fired = 0;
  constexpr int kDepth = 128;  // working queue depth
  double t = 0.0;

  // Warmup: reach full depth once (pool + heap grow to high water), then
  // drain. Also interns the profiler batch-section names on first use.
  for (int i = 0; i < kDepth; ++i)
    q.schedule(t += 0.25, EventKind::kGeneric, [&fired] { ++fired; });
  q.run_all();
  const std::size_t warm_pool = q.pool_capacity();

  const std::uint64_t allocs_before = testsupport::allocation_count();
  const std::uint64_t frees_before = testsupport::deallocation_count();

  // Steady state: 100k events through repeated fill-to-depth/drain cycles
  // plus a sustained schedule-on-pop churn, mixing tagged kinds.
  for (int round = 0; round < 400; ++round) {
    for (int i = 0; i < kDepth; ++i)
      q.schedule(t += 0.25,
                 (i % 2) ? EventKind::kArrival : EventKind::kComputeDone,
                 [&fired] { ++fired; });
    q.run_all();
  }
  for (int i = 0; i < kDepth; ++i)
    q.schedule(t += 0.25, [&fired] { ++fired; });
  for (int i = 0; i < 50000; ++i) {
    q.run_one();
    q.schedule(t += 0.25, EventKind::kTransferDone, [&fired] { ++fired; });
  }
  q.run_all();

  EXPECT_EQ(testsupport::allocation_count() - allocs_before, 0u)
      << "DES steady state allocated on the hot path";
  EXPECT_EQ(testsupport::deallocation_count() - frees_before, 0u)
      << "DES steady state freed on the hot path";
  EXPECT_EQ(q.pool_capacity(), warm_pool)
      << "handler pool grew past its warmup high-water mark";
  EXPECT_EQ(fired, static_cast<std::uint64_t>(kDepth + 400 * kDepth +
                                              kDepth + 50000));
}

TEST(EventQueueAlloc, HookCountersActuallyCount) {
  const std::uint64_t before = testsupport::allocation_count();
  auto* p = new int(42);
  EXPECT_GT(testsupport::allocation_count(), before);
  const std::uint64_t frees_before = testsupport::deallocation_count();
  delete p;
  EXPECT_GT(testsupport::deallocation_count(), frees_before);
}

}  // namespace
}  // namespace leime::sim
