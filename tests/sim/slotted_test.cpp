#include "sim/slotted.h"

#include <gtest/gtest.h>

#include "models/zoo.h"

namespace leime::sim {
namespace {

SlottedConfig base_config() {
  const auto profile = models::make_inception_v3();
  SlottedConfig cfg;
  cfg.partition = core::make_partition(profile, {3, 10, profile.num_units()});
  cfg.device_flops = core::kRaspberryPiFlops;
  cfg.edge_share_flops = 0.25 * core::kEdgeDesktopFlops;
  cfg.bandwidth = util::mbps(10.0);
  cfg.latency = util::ms(20.0);
  cfg.num_slots = 300;
  return cfg;
}

TEST(Slotted, FixedRatioRunsAndCounts) {
  auto cfg = base_config();
  workload::PoissonSlotArrivals arrivals(4.0);
  const auto r = run_slotted_fixed(cfg, arrivals, 0.5);
  EXPECT_GT(r.total_tasks, 800u);
  EXPECT_GT(r.mean_tct, 0.0);
  EXPECT_EQ(r.per_slot_cost.size(), 300u);
  EXPECT_DOUBLE_EQ(r.mean_offload_ratio, 0.5);
}

TEST(Slotted, DeterministicForFixedSeed) {
  auto cfg = base_config();
  workload::PoissonSlotArrivals a1(4.0), a2(4.0);
  const auto r1 = run_slotted_fixed(cfg, a1, 0.3);
  const auto r2 = run_slotted_fixed(cfg, a2, 0.3);
  EXPECT_DOUBLE_EQ(r1.mean_tct, r2.mean_tct);
  EXPECT_EQ(r1.total_tasks, r2.total_tasks);
}

TEST(Slotted, OverloadedDeviceQueueGrowsWithoutOffloading) {
  auto cfg = base_config();
  // Device can serve ~F/mu1 tasks/slot; push far beyond that with x = 0.
  const double service = cfg.device_flops * cfg.lyapunov.tau /
                         cfg.partition.mu1;
  workload::PoissonSlotArrivals arrivals(4.0 * service + 4.0);
  const auto r = run_slotted_fixed(cfg, arrivals, 0.0);
  EXPECT_GT(r.final_device_queue, 0.5 * r.mean_device_queue);
  EXPECT_GT(r.final_device_queue, 50.0);
}

TEST(Slotted, LeimePolicyStabilisesSameLoad) {
  auto cfg = base_config();
  const double service = cfg.device_flops * cfg.lyapunov.tau /
                         cfg.partition.mu1;
  workload::PoissonSlotArrivals a_fixed(4.0 * service + 4.0);
  workload::PoissonSlotArrivals a_leime(4.0 * service + 4.0);
  const auto fixed = run_slotted_fixed(cfg, a_fixed, 0.0);
  const core::LeimePolicy policy;
  const auto leime = run_slotted_policy(cfg, a_leime, policy);
  EXPECT_LT(leime.final_device_queue, fixed.final_device_queue);
  EXPECT_LT(leime.mean_tct, fixed.mean_tct);
}

TEST(Slotted, LeimeBeatsOrMatchesEveryFixedRatio) {
  auto cfg = base_config();
  cfg.num_slots = 200;
  const core::LeimePolicy policy;
  workload::PoissonSlotArrivals a(6.0);
  const auto leime = run_slotted_policy(cfg, a, policy);
  double best_fixed = 1e18;
  for (double x = 0.0; x <= 1.0 + 1e-9; x += 0.125) {
    workload::PoissonSlotArrivals af(6.0);
    best_fixed = std::min(best_fixed, run_slotted_fixed(cfg, af, x).mean_tct);
  }
  // The online policy adapts per slot, so it should be close to (or better
  // than) the best static ratio; allow 15% slack for stochastic arrivals.
  EXPECT_LT(leime.mean_tct, 1.15 * best_fixed);
}

TEST(Slotted, Validation) {
  auto cfg = base_config();
  workload::PoissonSlotArrivals arrivals(4.0);
  EXPECT_THROW(run_slotted_fixed(cfg, arrivals, -0.1), std::invalid_argument);
  EXPECT_THROW(run_slotted_fixed(cfg, arrivals, 1.1), std::invalid_argument);
  cfg.device_flops = 0.0;
  EXPECT_THROW(run_slotted_fixed(cfg, arrivals, 0.5), std::invalid_argument);
  cfg = base_config();
  cfg.num_slots = 0;
  EXPECT_THROW(run_slotted_fixed(cfg, arrivals, 0.5), std::invalid_argument);
}

}  // namespace
}  // namespace leime::sim
