#include "sim/scenario_ini.h"

#include <gtest/gtest.h>

#include "sim/simulation.h"

namespace leime::sim {
namespace {

constexpr const char* kScenario = R"(
[scenario]
model = squeezenet
policy = cap_based
duration = 30
warmup = 3
seed = 9
replications = 2
reallocation_period = 10
shared_uplink_mbps = 12
result_bytes = 1000

[edge]
gflops = 40
cloud_tflops = 2
cloud_mbps = 80
cloud_latency_ms = 25

[device]
gflops = 0.6
rate = 0.4
uplink_mbps = 8
uplink_latency_ms = 30
difficulty = 1.5

[device]
gflops = 6
rate = 0.8

[runtime]
threads = 4
seed_mode = legacy
jsonl = out/runs.jsonl
trace = out/cells.trace.json
progress = true
)";

TEST(ScenarioIni, ParsesEveryField) {
  const auto s = load_scenario(util::IniFile::parse_string(kScenario));
  EXPECT_EQ(s.profile.name(), "SqueezeNet-1.0");
  EXPECT_EQ(s.replications, 2);
  const auto& cfg = s.config;
  EXPECT_EQ(cfg.policy, "cap_based");
  EXPECT_DOUBLE_EQ(cfg.duration, 30.0);
  EXPECT_DOUBLE_EQ(cfg.warmup, 3.0);
  EXPECT_EQ(cfg.seed, 9u);
  EXPECT_DOUBLE_EQ(cfg.reallocation_period, 10.0);
  EXPECT_DOUBLE_EQ(cfg.shared_uplink_bw, util::mbps(12.0));
  EXPECT_DOUBLE_EQ(cfg.result_bytes, 1000.0);
  EXPECT_DOUBLE_EQ(cfg.edge_flops, util::gflops(40.0));
  EXPECT_DOUBLE_EQ(cfg.cloud_flops, util::tflops(2.0));
  ASSERT_EQ(cfg.devices.size(), 2u);
  EXPECT_DOUBLE_EQ(cfg.devices[0].flops, util::gflops(0.6));
  EXPECT_DOUBLE_EQ(cfg.devices[0].difficulty, 1.5);
  EXPECT_DOUBLE_EQ(cfg.devices[1].mean_rate, 0.8);
  // Defaults filled for the second device.
  EXPECT_DOUBLE_EQ(cfg.devices[1].uplink_bw, util::mbps(10.0));
  // The partition was actually designed.
  EXPECT_GT(cfg.partition.mu1, 0.0);
  EXPECT_GE(s.designed_exits.e1, 1);
  EXPECT_GT(s.expected_tct, 0.0);
  // [runtime] knobs.
  EXPECT_EQ(s.threads, 4);
  EXPECT_TRUE(s.legacy_seeds);
  EXPECT_EQ(s.jsonl_path, "out/runs.jsonl");
  EXPECT_EQ(s.trace_path, "out/cells.trace.json");
  EXPECT_TRUE(s.progress);
}

TEST(ScenarioIni, RuntimeSectionIsOptionalAndValidated) {
  const char* no_runtime =
      "[scenario]\nmodel = squeezenet\n[edge]\ngflops = 50\n"
      "[device]\nrate = 1\n";
  const auto s = load_scenario(util::IniFile::parse_string(no_runtime));
  EXPECT_EQ(s.threads, 1);
  EXPECT_FALSE(s.legacy_seeds);
  EXPECT_TRUE(s.jsonl_path.empty());

  EXPECT_THROW(load_scenario(util::IniFile::parse_string(
                   "[scenario]\nmodel = squeezenet\n[edge]\ngflops = 50\n"
                   "[device]\nrate = 1\n[runtime]\nseed_mode = bogus\n")),
               std::invalid_argument);
  EXPECT_THROW(load_scenario(util::IniFile::parse_string(
                   "[scenario]\nmodel = squeezenet\n[edge]\ngflops = 50\n"
                   "[device]\nrate = 1\n[runtime]\nthreads = -2\n")),
               std::invalid_argument);
}

TEST(ScenarioIni, LoadedScenarioRuns) {
  const auto s = load_scenario(util::IniFile::parse_string(kScenario));
  const auto r = run_scenario(s.config);
  EXPECT_GT(r.generated, 5u);
}

TEST(ScenarioIni, Validation) {
  EXPECT_THROW(load_scenario(util::IniFile::parse_string(
                   "[scenario]\nmodel = inception\n[edge]\ngflops = 50\n")),
               std::invalid_argument);  // no devices
  EXPECT_THROW(
      load_scenario(util::IniFile::parse_string(
          "[scenario]\nreplications = 0\n[edge]\ngflops = "
          "50\n[device]\nrate = 1\n")),
      std::invalid_argument);
  EXPECT_THROW(resolve_model_name("/nonexistent/profile.txt"),
               std::runtime_error);
  EXPECT_EQ(resolve_model_name("vgg16").name(), "VGG-16");
  EXPECT_EQ(resolve_model_name("resnet34").name(), "ResNet-34");
}

}  // namespace
}  // namespace leime::sim
