#include "sim/scenario_ini.h"

#include <gtest/gtest.h>

#include <cmath>

#include "sim/simulation.h"

namespace leime::sim {
namespace {

constexpr const char* kScenario = R"(
[scenario]
model = squeezenet
policy = cap_based
duration = 30
warmup = 3
seed = 9
replications = 2
reallocation_period = 10
shared_uplink_mbps = 12
result_bytes = 1000

[edge]
gflops = 40
cloud_tflops = 2
cloud_mbps = 80
cloud_latency_ms = 25

[device]
gflops = 0.6
rate = 0.4
uplink_mbps = 8
uplink_latency_ms = 30
difficulty = 1.5

[device]
gflops = 6
rate = 0.8

[runtime]
threads = 4
seed_mode = legacy
jsonl = out/runs.jsonl
trace = out/cells.trace.json
progress = true
)";

TEST(ScenarioIni, ParsesEveryField) {
  const auto s = load_scenario(util::IniFile::parse_string(kScenario));
  EXPECT_EQ(s.profile.name(), "SqueezeNet-1.0");
  EXPECT_EQ(s.replications, 2);
  const auto& cfg = s.config;
  EXPECT_EQ(cfg.policy, "cap_based");
  EXPECT_DOUBLE_EQ(cfg.duration, 30.0);
  EXPECT_DOUBLE_EQ(cfg.warmup, 3.0);
  EXPECT_EQ(cfg.seed, 9u);
  EXPECT_DOUBLE_EQ(cfg.reallocation_period, 10.0);
  EXPECT_DOUBLE_EQ(cfg.shared_uplink_bw, util::mbps(12.0));
  EXPECT_DOUBLE_EQ(cfg.result_bytes, 1000.0);
  EXPECT_DOUBLE_EQ(cfg.edge_flops, util::gflops(40.0));
  EXPECT_DOUBLE_EQ(cfg.cloud_flops, util::tflops(2.0));
  ASSERT_EQ(cfg.devices.size(), 2u);
  EXPECT_DOUBLE_EQ(cfg.devices[0].flops, util::gflops(0.6));
  EXPECT_DOUBLE_EQ(cfg.devices[0].difficulty, 1.5);
  EXPECT_DOUBLE_EQ(cfg.devices[1].mean_rate, 0.8);
  // Defaults filled for the second device.
  EXPECT_DOUBLE_EQ(cfg.devices[1].uplink_bw, util::mbps(10.0));
  // The partition was actually designed.
  EXPECT_GT(cfg.partition.mu1, 0.0);
  EXPECT_GE(s.designed_exits.e1, 1);
  EXPECT_GT(s.expected_tct, 0.0);
  // [runtime] knobs.
  EXPECT_EQ(s.threads, 4);
  EXPECT_TRUE(s.legacy_seeds);
  EXPECT_EQ(s.jsonl_path, "out/runs.jsonl");
  EXPECT_EQ(s.trace_path, "out/cells.trace.json");
  EXPECT_TRUE(s.progress);
}

TEST(ScenarioIni, RuntimeSectionIsOptionalAndValidated) {
  const char* no_runtime =
      "[scenario]\nmodel = squeezenet\n[edge]\ngflops = 50\n"
      "[device]\nrate = 1\n";
  const auto s = load_scenario(util::IniFile::parse_string(no_runtime));
  EXPECT_EQ(s.threads, 1);
  EXPECT_FALSE(s.legacy_seeds);
  EXPECT_TRUE(s.jsonl_path.empty());

  EXPECT_THROW(load_scenario(util::IniFile::parse_string(
                   "[scenario]\nmodel = squeezenet\n[edge]\ngflops = 50\n"
                   "[device]\nrate = 1\n[runtime]\nseed_mode = bogus\n")),
               std::invalid_argument);
  EXPECT_THROW(load_scenario(util::IniFile::parse_string(
                   "[scenario]\nmodel = squeezenet\n[edge]\ngflops = 50\n"
                   "[device]\nrate = 1\n[runtime]\nthreads = -2\n")),
               std::invalid_argument);
}

TEST(ScenarioIni, LoadedScenarioRuns) {
  const auto s = load_scenario(util::IniFile::parse_string(kScenario));
  const auto r = run_scenario(s.config);
  EXPECT_GT(r.generated, 5u);
}

TEST(ScenarioIni, Validation) {
  EXPECT_THROW(load_scenario(util::IniFile::parse_string(
                   "[scenario]\nmodel = inception\n[edge]\ngflops = 50\n")),
               std::invalid_argument);  // no devices
  EXPECT_THROW(
      load_scenario(util::IniFile::parse_string(
          "[scenario]\nreplications = 0\n[edge]\ngflops = "
          "50\n[device]\nrate = 1\n")),
      std::invalid_argument);
  EXPECT_THROW(resolve_model_name("/nonexistent/profile.txt"),
               std::runtime_error);
  EXPECT_EQ(resolve_model_name("vgg16").name(), "VGG-16");
  EXPECT_EQ(resolve_model_name("resnet34").name(), "ResNet-34");
}

constexpr const char* kFleet =
    "[scenario]\nmodel = squeezenet\npolicy = E-only\nduration = 20\n"
    "seed = 5\n[edge]\ngflops = 50\n[device]\nrate = 1\n[device]\nrate = 1\n";

TEST(ScenarioIni, FaultsSectionParses) {
  const auto s = load_scenario(util::IniFile::parse_string(
      std::string(kFleet) +
      "[faults]\n"
      "link_outage_windows = d0:3-6\n"
      "edge_down_windows = 5-12, 75-\n"
      "edge_crash_rate = 0.002\n"
      "churn = 1:8-15\n"
      "detection_timeout_s = 1\n"
      "task_timeout_s = 4\n"
      "max_retries = 3\n"));
  const auto& plan = s.config.faults;
  EXPECT_TRUE(plan.enabled());
  ASSERT_EQ(plan.link.windows.size(), 1u);
  EXPECT_EQ(plan.link.windows[0].device, 0);
  ASSERT_EQ(plan.edge.windows.size(), 2u);
  EXPECT_FALSE(std::isfinite(plan.edge.windows[1].end));
  EXPECT_DOUBLE_EQ(plan.edge.rate, 0.002);
  ASSERT_EQ(plan.churn.events.size(), 1u);
  EXPECT_EQ(plan.churn.events[0].device, 1);
  EXPECT_DOUBLE_EQ(plan.degradation.detection_timeout, 1.0);
  EXPECT_DOUBLE_EQ(plan.degradation.task_timeout, 4.0);
  EXPECT_EQ(plan.degradation.max_retries, 3);
  // The loaded scenario actually runs, with fault telemetry.
  const auto r = run_scenario(s.config);
  EXPECT_EQ(r.generated, r.total_completed + r.in_flight);
  EXPECT_GT(r.faults.failed_over, 0u);
}

TEST(ScenarioIni, FaultsSectionValidation) {
  const auto load = [](const std::string& faults) {
    return load_scenario(
        util::IniFile::parse_string(std::string(kFleet) + faults));
  };
  // Unknown keys name themselves and list the valid spelling.
  try {
    load("[faults]\nedge_crash_ratee = 1\n");
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("unknown key 'edge_crash_ratee'"), std::string::npos)
        << what;
    EXPECT_NE(what.find("edge_crash_rate"), std::string::npos) << what;
  }
  // Malformed windows, inverted ranges and out-of-fleet devices all throw.
  EXPECT_THROW(load("[faults]\nedge_down_windows = 45-30\n"),
               std::invalid_argument);
  EXPECT_THROW(load("[faults]\nlink_outage_windows = 40-\n"),
               std::invalid_argument);  // links must heal
  EXPECT_THROW(load("[faults]\nlink_outage_windows = d7:40-50\n"),
               std::invalid_argument);  // fleet has 2 devices
  EXPECT_THROW(load("[faults]\nchurn = 5:30-60\n"), std::invalid_argument);
  EXPECT_THROW(load("[faults]\nchurn = 1:60-40\n"), std::invalid_argument);
  EXPECT_THROW(load("[faults]\nedge_crash_rate = -1\n"),
               std::invalid_argument);
  EXPECT_THROW(load("[faults]\ndetection_timeout_s = 0\n"),
               std::invalid_argument);
}

TEST(ScenarioIni, EmptyFaultsSectionIsBitIdenticalToNone) {
  // Satellite contract: a present-but-empty [faults] section must not
  // change a single bit of the result.
  const auto bare = load_scenario(util::IniFile::parse_string(kFleet));
  const auto empty = load_scenario(util::IniFile::parse_string(
      std::string(kFleet) + "[faults]\nlink_outage_windows =\nchurn =\n"));
  EXPECT_EQ(empty.config.faults, FaultPlan{});
  EXPECT_FALSE(empty.config.faults.enabled());
  const auto a = run_scenario(bare.config);
  const auto b = run_scenario(empty.config);
  EXPECT_EQ(a.generated, b.generated);
  EXPECT_EQ(a.total_completed, b.total_completed);
  EXPECT_DOUBLE_EQ(a.tct.mean, b.tct.mean);
  EXPECT_DOUBLE_EQ(a.tct.p95, b.tct.p95);
  EXPECT_DOUBLE_EQ(a.mean_offload_ratio, b.mean_offload_ratio);
}

TEST(ScenarioIni, ObservabilitySectionParses) {
  const auto s = load_scenario(util::IniFile::parse_string(
      std::string(kFleet) +
      "[observability]\n"
      "metrics = true\n"
      "trace_sample = 8\n"
      "timeseries = true\n"
      "metrics_out = out/run.prom\n"
      "metrics_jsonl = out/run.metrics.jsonl\n"
      "trace_out = out/run.trace.json\n"
      "timeseries_out = out/run.series.csv\n"));
  const auto& obs = s.config.obs;
  EXPECT_TRUE(obs.metrics);
  EXPECT_EQ(obs.trace_sample, 8u);
  EXPECT_TRUE(obs.timeseries);
  EXPECT_EQ(obs.metrics_out, "out/run.prom");
  EXPECT_EQ(obs.metrics_jsonl, "out/run.metrics.jsonl");
  EXPECT_EQ(obs.trace_out, "out/run.trace.json");
  EXPECT_EQ(obs.timeseries_out, "out/run.series.csv");
  EXPECT_TRUE(obs.enabled());
}

TEST(ScenarioIni, ObservabilityOmittedOrEmptyStaysDisabled) {
  const auto bare = load_scenario(util::IniFile::parse_string(kFleet));
  EXPECT_FALSE(bare.config.obs.enabled());
  const auto empty = load_scenario(util::IniFile::parse_string(
      std::string(kFleet) + "[observability]\nmetrics_out =\n"));
  EXPECT_FALSE(empty.config.obs.enabled());
}

TEST(ScenarioIni, ObservabilityValidation) {
  EXPECT_THROW(load_scenario(util::IniFile::parse_string(
                   std::string(kFleet) + "[observability]\ntypo_key = 1\n")),
               std::invalid_argument);
  EXPECT_THROW(
      load_scenario(util::IniFile::parse_string(
          std::string(kFleet) + "[observability]\ntrace_sample = -1\n")),
      std::invalid_argument);
}

TEST(ScenarioIni, ProvenanceSectionParses) {
  const auto s = load_scenario(util::IniFile::parse_string(
      std::string(kFleet) +
      "[provenance]\n"
      "sample_n = 4\n"
      "ring_capacity = 32\n"
      "oracle_sample_n = 8\n"
      "decisions_out = out/decisions.jsonl\n"
      "dump_out = out/flight.jsonl\n"));
  const auto& prov = s.config.obs.provenance;
  EXPECT_EQ(prov.sample_n, 4u);
  EXPECT_EQ(prov.ring_capacity, 32u);
  EXPECT_EQ(prov.oracle_sample_n, 8u);
  EXPECT_EQ(prov.decisions_out, "out/decisions.jsonl");
  EXPECT_EQ(prov.dump_out, "out/flight.jsonl");
  EXPECT_TRUE(prov.enabled());
  EXPECT_TRUE(s.config.obs.enabled());  // provenance alone turns obs on

  // A bare output path implies 1-in-1 sampling, like trace_out.
  const auto implied = load_scenario(util::IniFile::parse_string(
      std::string(kFleet) + "[provenance]\ndump_out = flight.jsonl\n"));
  EXPECT_EQ(implied.config.obs.provenance.effective_sample_n(), 1u);
}

TEST(ScenarioIni, ProvenanceOmittedOrEmptyStaysDisabled) {
  const auto bare = load_scenario(util::IniFile::parse_string(kFleet));
  EXPECT_FALSE(bare.config.obs.provenance.enabled());
  // sample_n = 0 with no outputs: section parses but pillar stays off,
  // and the remaining keys are still typo-checked.
  const auto off = load_scenario(util::IniFile::parse_string(
      std::string(kFleet) + "[provenance]\nsample_n = 0\ndecisions_out =\n"));
  EXPECT_FALSE(off.config.obs.provenance.enabled());
  EXPECT_FALSE(off.config.obs.enabled());
}

TEST(ScenarioIni, ProvenanceValidation) {
  EXPECT_THROW(load_scenario(util::IniFile::parse_string(
                   std::string(kFleet) + "[provenance]\ntypo_key = 1\n")),
               std::invalid_argument);
  EXPECT_THROW(load_scenario(util::IniFile::parse_string(
                   std::string(kFleet) + "[provenance]\nsample_n = -1\n")),
               std::invalid_argument);
  EXPECT_THROW(
      load_scenario(util::IniFile::parse_string(
          std::string(kFleet) + "[provenance]\nring_capacity = 0\n")),
      std::invalid_argument);
  EXPECT_THROW(
      load_scenario(util::IniFile::parse_string(
          std::string(kFleet) + "[provenance]\noracle_sample_n = -2\n")),
      std::invalid_argument);
}

TEST(ScenarioIni, CliObsOverridesBeatIniValues) {
  auto s = load_scenario(util::IniFile::parse_string(
      std::string(kFleet) +
      "[observability]\nmetrics_out = ini.prom\ntrace_out = ini.json\n"
      "timeseries_out = ini.csv\n"));
  // Non-empty CLI values win; empty CLI values keep the INI ones.
  apply_obs_overrides(s.config.obs, "cli.prom", "");
  EXPECT_EQ(s.config.obs.metrics_out, "cli.prom");
  EXPECT_EQ(s.config.obs.trace_out, "ini.json");
  EXPECT_EQ(s.config.obs.timeseries_out, "ini.csv");
  apply_obs_overrides(s.config.obs, "", "cli.json");
  EXPECT_EQ(s.config.obs.metrics_out, "cli.prom");
  EXPECT_EQ(s.config.obs.trace_out, "cli.json");
}

TEST(ScenarioIni, FaultsRoundTripThroughSerialize) {
  const auto s = load_scenario(util::IniFile::parse_string(
      std::string(kFleet) +
      "[faults]\nedge_down_windows = 30-45\nchurn = 1:60-95\n"
      "task_timeout_s = 2.5\n"));
  const auto text = serialize_faults_ini(s.config.faults);
  const auto reparsed = parse_faults_section(
      *util::IniFile::parse_string(text).find("faults"));
  EXPECT_EQ(reparsed, s.config.faults);
}

TEST(ScenarioIni, ApOutageWindowsParseAndRoundTrip) {
  const auto s = load_scenario(util::IniFile::parse_string(
      std::string(kFleet) +
      "[topology]\naps = 2\nap_mbps = 40\n"
      "[faults]\nap_outage_windows = a0:10-20, a1:30-35\n"));
  const auto& plan = s.config.faults;
  EXPECT_TRUE(plan.enabled());
  ASSERT_EQ(plan.ap_windows.size(), 2u);
  EXPECT_EQ(plan.ap_windows[0].device, 0);  // device field = AP index
  EXPECT_DOUBLE_EQ(plan.ap_windows[0].start, 10.0);
  EXPECT_EQ(plan.ap_windows[1].device, 1);
  EXPECT_DOUBLE_EQ(plan.ap_windows[1].end, 35.0);

  const auto text = serialize_faults_ini(plan);
  EXPECT_NE(text.find("ap_outage_windows"), std::string::npos);
  const auto reparsed = parse_faults_section(
      *util::IniFile::parse_string(text).find("faults"));
  EXPECT_EQ(reparsed, plan);
}

TEST(ScenarioIni, TopologySectionParses) {
  const auto s = load_scenario(util::IniFile::parse_string(
      std::string(kFleet) +
      "[topology]\n"
      "aps = 2\n"
      "ap_mbps = 40\n"
      "ap_latency_ms = 3\n"
      "device_map = 1, 0\n"
      "queue_limit_kb = 4096\n"));
  const auto& topo = s.config.topology;
  EXPECT_TRUE(topo.enabled());
  EXPECT_EQ(topo.aps, 2);
  EXPECT_DOUBLE_EQ(topo.ap_bandwidth, util::mbps(40.0));
  EXPECT_DOUBLE_EQ(topo.ap_latency, util::ms(3.0));
  EXPECT_EQ(topo.device_map, (std::vector<int>{1, 0}));
  EXPECT_DOUBLE_EQ(topo.queue_limit_bytes, 4096.0 * 1024.0);
  // The loaded scenario runs in fabric mode and reports fabric stats.
  const auto r = run_scenario(s.config);
  EXPECT_TRUE(r.net.active);
  EXPECT_GT(r.net.delivered, 0u);
}

TEST(ScenarioIni, TopologyOmittedOrDisabledKeepsTheFlatPath) {
  const auto bare = load_scenario(util::IniFile::parse_string(kFleet));
  EXPECT_FALSE(bare.config.topology.enabled());
  const auto off = load_scenario(util::IniFile::parse_string(
      std::string(kFleet) + "[topology]\naps = 0\n"));
  EXPECT_FALSE(off.config.topology.enabled());
  EXPECT_EQ(off.config.topology, net::TopologyConfig{});
  const auto a = run_scenario(bare.config);
  const auto b = run_scenario(off.config);
  EXPECT_EQ(a.generated, b.generated);
  EXPECT_DOUBLE_EQ(a.tct.mean, b.tct.mean);
  EXPECT_FALSE(b.net.active);
}

TEST(ScenarioIni, TopologySectionValidation) {
  const auto load = [](const std::string& extra) {
    return load_scenario(
        util::IniFile::parse_string(std::string(kFleet) + extra));
  };
  try {
    load("[topology]\naps = 1\nap_mpbs = 10\n");
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("unknown key 'ap_mpbs'"), std::string::npos) << what;
    EXPECT_NE(what.find("ap_mbps"), std::string::npos) << what;
  }
  EXPECT_THROW(load("[topology]\naps = -1\n"), std::invalid_argument);
  EXPECT_THROW(load("[topology]\naps = 1\nap_mbps = 0\n"),
               std::invalid_argument);
  EXPECT_THROW(load("[topology]\naps = 1\nap_latency_ms = -2\n"),
               std::invalid_argument);
  EXPECT_THROW(load("[topology]\naps = 2\ndevice_map = 0\n"),
               std::invalid_argument);  // fleet has 2 devices
  EXPECT_THROW(load("[topology]\naps = 2\ndevice_map = 0, 5\n"),
               std::invalid_argument);  // AP 5 out of range
  EXPECT_THROW(load("[topology]\naps = 2\ndevice_map = 0, x\n"),
               std::invalid_argument);  // not an index
  // The two shared-medium modes cannot be combined.
  EXPECT_THROW(
      load_scenario(util::IniFile::parse_string(
          "[scenario]\nmodel = squeezenet\nshared_uplink_mbps = 10\n"
          "[edge]\ngflops = 50\n[device]\nrate = 1\n[device]\nrate = 1\n"
          "[topology]\naps = 1\n")),
      std::invalid_argument);
  // AP outage windows need an enabled topology and an in-range AP.
  EXPECT_THROW(run_scenario(
                   load("[faults]\nap_outage_windows = a0:5-10\n").config),
               std::invalid_argument);
  EXPECT_THROW(
      run_scenario(load("[topology]\naps = 1\n"
                        "[faults]\nap_outage_windows = a3:5-10\n")
                       .config),
      std::invalid_argument);
}

TEST(ScenarioIni, PolicySectionParses) {
  const auto s = load_scenario(util::IniFile::parse_string(
      std::string(kFleet) +
      "[policy]\n"
      "memo_cache = true\n"
      "warm_start = true\n"
      "batch_eq20 = true\n"
      "cache_capacity = 128\n"
      "quant_per_octave = 8\n"));
  const auto& pol = s.config.policy_core;
  EXPECT_TRUE(pol.memo_cache);
  EXPECT_TRUE(pol.warm_start);
  EXPECT_TRUE(pol.batch_eq20);
  EXPECT_EQ(pol.cache_capacity, 128u);
  EXPECT_EQ(pol.quant_per_octave, 8);
  EXPECT_TRUE(pol.enabled());
}

TEST(ScenarioIni, PolicyOmittedOrEmptyStaysOff) {
  const auto bare = load_scenario(util::IniFile::parse_string(kFleet));
  EXPECT_FALSE(bare.config.policy_core.enabled());
  const auto empty = load_scenario(
      util::IniFile::parse_string(std::string(kFleet) + "[policy]\n"));
  EXPECT_FALSE(empty.config.policy_core.enabled());
  EXPECT_EQ(empty.config.policy_core.cache_capacity,
            policy::Config{}.cache_capacity);
}

TEST(ScenarioIni, PolicySectionValidation) {
  auto load = [](const std::string& extra) {
    return load_scenario(
        util::IniFile::parse_string(std::string(kFleet) + extra));
  };
  EXPECT_THROW(load("[policy]\ntypo_key = 1\n"), std::invalid_argument);
  EXPECT_THROW(load("[policy]\ncache_capacity = 0\n"),
               std::invalid_argument);
  EXPECT_THROW(load("[policy]\nquant_per_octave = 0\n"),
               std::invalid_argument);
  EXPECT_THROW(load("[policy]\nquant_per_octave = 65\n"),
               std::invalid_argument);
}

TEST(ScenarioIni, PolicyFastPathsLeaveDesignAndRunIdentical) {
  // The design-time search routes through policy::Engine either way; with
  // every knob on, the designed exits, the cost estimate and the simulated
  // results must match the default-off load exactly (the INI-level face of
  // the policy_diff equivalence suite).
  const auto off = load_scenario(util::IniFile::parse_string(kFleet));
  const auto on = load_scenario(util::IniFile::parse_string(
      std::string(kFleet) +
      "[policy]\nmemo_cache = true\nwarm_start = true\nbatch_eq20 = "
      "true\n"));
  EXPECT_EQ(on.designed_exits, off.designed_exits);
  EXPECT_EQ(on.expected_tct, off.expected_tct);
  const auto a = run_scenario(off.config);
  const auto b = run_scenario(on.config);
  EXPECT_EQ(a.generated, b.generated);
  EXPECT_EQ(a.total_completed, b.total_completed);
  EXPECT_DOUBLE_EQ(a.tct.mean, b.tct.mean);
  EXPECT_DOUBLE_EQ(a.tct.p95, b.tct.p95);
  EXPECT_DOUBLE_EQ(a.mean_offload_ratio, b.mean_offload_ratio);
}

TEST(ScenarioIni, ShardsSectionParses) {
  const auto s = load_scenario(util::IniFile::parse_string(
      std::string(kFleet) +
      "[shards]\n"
      "shards = 4\n"
      "threads = 2\n"
      "window_ms = 10\n"));
  const auto& sh = s.config.shards;
  EXPECT_EQ(sh.shards, 4u);
  EXPECT_EQ(sh.threads, 2);
  EXPECT_DOUBLE_EQ(sh.window_s, util::ms(10.0));
  EXPECT_TRUE(sh.enabled());
}

TEST(ScenarioIni, ShardsOmittedOrEmptyStaysSingleQueue) {
  const auto bare = load_scenario(util::IniFile::parse_string(kFleet));
  EXPECT_FALSE(bare.config.shards.enabled());
  const auto empty = load_scenario(
      util::IniFile::parse_string(std::string(kFleet) + "[shards]\n"));
  EXPECT_FALSE(empty.config.shards.enabled());
  EXPECT_EQ(empty.config.shards.shards, 1u);
  EXPECT_EQ(empty.config.shards.threads, 0);
  EXPECT_DOUBLE_EQ(empty.config.shards.window_s, 0.0);
}

TEST(ScenarioIni, ShardsSectionValidation) {
  auto load = [](const std::string& extra) {
    return load_scenario(
        util::IniFile::parse_string(std::string(kFleet) + extra));
  };
  try {
    load("[shards]\nshard = 4\n");
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("unknown key 'shard'"), std::string::npos) << what;
    EXPECT_NE(what.find("window_ms"), std::string::npos) << what;
  }
  EXPECT_THROW(load("[shards]\nshards = 0\n"), std::invalid_argument);
  EXPECT_THROW(load("[shards]\nshards = -2\n"), std::invalid_argument);
  EXPECT_THROW(load("[shards]\nthreads = -1\n"), std::invalid_argument);
  EXPECT_THROW(load("[shards]\nwindow_ms = -5\n"), std::invalid_argument);
  // Sharded execution rejects configurations outside its contract at run
  // time (validate_sharded in simulation.cpp), with an error naming the
  // escape hatch.
  auto unsupported = load("[shards]\nshards = 2\n");
  unsupported.config.cloud_fifo = true;
  try {
    run_scenario(unsupported.config);
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("[shards]"), std::string::npos) << what;
    EXPECT_NE(what.find("shards = 1"), std::string::npos) << what;
  }
}

TEST(ScenarioIni, ShardsLoadedScenarioMatchesSingleQueue) {
  // The INI-level face of the sharding determinism contract: a fleet
  // loaded with [shards] on runs to the same results as the same fleet
  // without the section.
  const auto off = load_scenario(util::IniFile::parse_string(kFleet));
  const auto on = load_scenario(util::IniFile::parse_string(
      std::string(kFleet) + "[shards]\nshards = 2\nthreads = 2\n"));
  const auto a = run_scenario(off.config);
  const auto b = run_scenario(on.config);
  EXPECT_EQ(a.generated, b.generated);
  EXPECT_EQ(a.total_completed, b.total_completed);
  EXPECT_DOUBLE_EQ(a.tct.mean, b.tct.mean);
  EXPECT_DOUBLE_EQ(a.tct.p95, b.tct.p95);
  EXPECT_DOUBLE_EQ(a.mean_offload_ratio, b.mean_offload_ratio);
}

}  // namespace
}  // namespace leime::sim
