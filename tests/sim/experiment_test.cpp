#include "sim/experiment.h"

#include <gtest/gtest.h>

#include "models/zoo.h"
#include "sim/simulation.h"
#include "util/rng.h"

namespace leime::sim {
namespace {

ScenarioConfig small_scenario() {
  const auto profile = models::make_squeezenet();
  ScenarioConfig cfg;
  cfg.partition = core::make_partition(profile, {4, 8, profile.num_units()});
  DeviceSpec dev;
  dev.mean_rate = 1.0;
  cfg.devices.push_back(dev);
  cfg.duration = 20.0;
  cfg.warmup = 2.0;
  return cfg;
}

TEST(Experiment, AggregatesAcrossSeeds) {
  const auto r = run_replicated(small_scenario(), 5);
  EXPECT_EQ(r.runs, 5u);
  EXPECT_EQ(r.per_run_mean.size(), 5u);
  EXPECT_GT(r.mean_tct, 0.0);
  EXPECT_GE(r.stddev_tct, 0.0);
  EXPECT_GE(r.mean_p95, r.mean_tct);
  // Different seeds must actually vary the outcome.
  bool varies = false;
  for (double v : r.per_run_mean)
    if (v != r.per_run_mean.front()) varies = true;
  EXPECT_TRUE(varies);
}

TEST(Experiment, MeanOfRunsMatchesManualAverage) {
  const auto r = run_replicated(small_scenario(), 4, 77);
  double sum = 0.0;
  for (double v : r.per_run_mean) sum += v;
  EXPECT_NEAR(r.mean_tct, sum / 4.0, 1e-12);
}

TEST(Experiment, DeterministicForBaseSeed) {
  const auto a = run_replicated(small_scenario(), 3, 500);
  const auto b = run_replicated(small_scenario(), 3, 500);
  EXPECT_EQ(a.per_run_mean, b.per_run_mean);
}

TEST(Experiment, Validation) {
  EXPECT_THROW(run_replicated(small_scenario(), 0), std::invalid_argument);
}

TEST(Experiment, FourThreadsMatchSequentialRun) {
  ReplicateOptions sequential, pooled;
  pooled.threads = 4;
  const auto a = run_replicated(small_scenario(), 6, 500, sequential);
  const auto b = run_replicated(small_scenario(), 6, 500, pooled);
  EXPECT_EQ(a.per_run_mean, b.per_run_mean);
  EXPECT_EQ(a.per_run_seed, b.per_run_seed);
  EXPECT_DOUBLE_EQ(a.mean_tct, b.mean_tct);
  EXPECT_DOUBLE_EQ(a.stddev_tct, b.stddev_tct);
}

TEST(Experiment, SeedsAreSplitDerivedByDefault) {
  const auto r = run_replicated(small_scenario(), 3, 500);
  ASSERT_EQ(r.per_run_seed.size(), 3u);
  for (std::size_t i = 0; i < 3; ++i)
    EXPECT_EQ(r.per_run_seed[i], util::Rng::derive_seed(500, i));
}

TEST(Experiment, LegacySeedFlagReplaysOldConvention) {
  // The pre-runtime convention (seed = base + i) stays available for
  // replaying seed-numbered results: each run must match a direct
  // run_scenario at that seed.
  ReplicateOptions opts;
  opts.legacy_seeds = true;
  const auto r = run_replicated(small_scenario(), 3, 500, opts);
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(r.per_run_seed[i], 500u + i);
    auto cfg = small_scenario();
    cfg.seed = 500 + i;
    EXPECT_DOUBLE_EQ(r.per_run_mean[i], run_scenario(cfg).tct.mean);
  }
}

}  // namespace
}  // namespace leime::sim
