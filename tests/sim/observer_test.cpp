#include "sim/observer.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "core/exit_setting.h"
#include "models/zoo.h"
#include "sim/scenario_ini.h"
#include "sim/simulation.h"

#ifndef LEIME_CONFIG_DIR
#error "sim_test must be compiled with LEIME_CONFIG_DIR"
#endif

namespace leime::sim {
namespace {

ScenarioConfig base_scenario(int devices = 2) {
  const auto profile = models::make_inception_v3();
  ScenarioConfig cfg;
  cfg.partition = core::make_partition(profile, {3, 10, profile.num_units()});
  for (int i = 0; i < devices; ++i) {
    DeviceSpec d;
    d.mean_rate = 2.0;
    cfg.devices.push_back(d);
  }
  cfg.duration = 30.0;
  cfg.warmup = 2.0;
  return cfg;
}

const obs::Snapshot::CounterSample& find_counter(const obs::Snapshot& snap,
                                                 const std::string& name) {
  for (const auto& c : snap.counters)
    if (c.name == name) return c;
  throw std::runtime_error("counter not in snapshot: " + name);
}

const obs::Snapshot::GaugeSample& find_gauge(const obs::Snapshot& snap,
                                             const std::string& name) {
  for (const auto& g : snap.gauges)
    if (g.name == name) return g;
  throw std::runtime_error("gauge not in snapshot: " + name);
}

const obs::Snapshot::HistogramSample& find_histogram(
    const obs::Snapshot& snap, const std::string& name) {
  for (const auto& h : snap.histograms)
    if (h.name == name) return h;
  throw std::runtime_error("histogram not in snapshot: " + name);
}

// RecordingObserver plus per-task ground truth straight from the hooks, so
// the trace spans can be checked against an independent record of each
// task's lifetime.
class GroundTruthObserver : public RecordingObserver {
 public:
  using RecordingObserver::RecordingObserver;

  struct TaskTruth {
    double t_arrive = 0.0;
    double t_complete = -1.0;
    bool counted = false;
  };

  void on_task_generated(std::uint64_t task, int device, double t, int block,
                         bool offloaded) override {
    truth_[task].t_arrive = t;
    RecordingObserver::on_task_generated(task, device, t, block, offloaded);
  }
  void on_task_complete(std::uint64_t task, int device, double t_arrive,
                        double t_complete, int block, int retries,
                        bool counted) override {
    truth_[task].t_complete = t_complete;
    truth_[task].counted = counted;
    EXPECT_DOUBLE_EQ(truth_[task].t_arrive, t_arrive);
    RecordingObserver::on_task_complete(task, device, t_arrive, t_complete,
                                        block, retries, counted);
  }

  const std::map<std::uint64_t, TaskTruth>& truth() const { return truth_; }

 private:
  std::map<std::uint64_t, TaskTruth> truth_;
};

TEST(Observer, EnabledRunMatchesDisabledRun) {
  auto cfg = base_scenario();
  const auto off = run_scenario(cfg);
  cfg.obs.metrics = true;
  cfg.obs.trace_sample = 1;
  cfg.obs.timeseries = true;
  const auto on = run_scenario(cfg);
  // Observation must not perturb the simulation: every aggregate is
  // bit-identical, only the metrics snapshot differs.
  EXPECT_EQ(on.generated, off.generated);
  EXPECT_EQ(on.total_completed, off.total_completed);
  EXPECT_DOUBLE_EQ(on.tct.mean, off.tct.mean);
  EXPECT_DOUBLE_EQ(on.tct.p95, off.tct.p95);
  EXPECT_DOUBLE_EQ(on.mean_offload_ratio, off.mean_offload_ratio);
  EXPECT_DOUBLE_EQ(on.mean_device_queue, off.mean_device_queue);
  EXPECT_TRUE(off.metrics.empty());
  EXPECT_FALSE(on.metrics.empty());
}

TEST(Observer, MetricsMatchSimResult) {
  auto cfg = base_scenario();
  cfg.obs.metrics = true;
  const auto r = run_scenario(cfg);
  const auto& snap = r.metrics;
  EXPECT_EQ(find_counter(snap, "leime_tasks_generated_total").value,
            r.generated);
  EXPECT_EQ(find_counter(snap, "leime_tasks_completed_total").value,
            r.total_completed);
  const auto& tct = find_histogram(snap, "leime_task_tct_seconds");
  EXPECT_EQ(tct.stats.count(), r.completed);
  EXPECT_NEAR(tct.stats.mean(), r.tct.mean, 1e-9);
  EXPECT_DOUBLE_EQ(tct.stats.max(), r.tct.max);
  EXPECT_DOUBLE_EQ(find_gauge(snap, "leime_edge_up").value, 1.0);
  EXPECT_GT(find_counter(snap, "leime_slot_decisions_total").value, 0u);
}

// The acceptance contract of the tracing pillar: running wild_faults.ini
// with every task traced, each task's span window reconstructs its TCT —
// first span opens at the arrival time, last span closes at the completion
// time — and the reconstructed population reproduces SimResult::tct.
TEST(Observer, WildFaultsTraceReconstructsTct) {
  auto scenario =
      load_scenario_file(std::string(LEIME_CONFIG_DIR) + "/wild_faults.ini");
  auto cfg = scenario.config;
  ObsConfig obs_cfg;
  obs_cfg.trace_sample = 1;
  GroundTruthObserver obs(obs_cfg, cfg.devices.size());
  cfg.observer = &obs;
  const auto r = run_scenario(cfg);
  ASSERT_GT(r.generated, 100u);

  // Group spans per task.
  std::map<std::uint64_t, std::pair<double, double>> window;  // begin, end
  for (const auto& span : obs.trace().spans()) {
    auto [it, inserted] = window.emplace(
        span.task_id, std::make_pair(span.t_begin, span.t_end));
    if (!inserted) {
      it->second.first = std::min(it->second.first, span.t_begin);
      it->second.second = std::max(it->second.second, span.t_end);
    }
  }

  util::RunningStats reconstructed;
  std::vector<double> tcts;
  for (const auto& [task, truth] : obs.truth()) {
    if (truth.t_complete < 0.0) continue;  // parked / still in flight
    auto it = window.find(task);
    ASSERT_NE(it, window.end()) << "completed task " << task << " untraced";
    EXPECT_NEAR(it->second.first, truth.t_arrive, 1e-9);
    EXPECT_NEAR(it->second.second, truth.t_complete, 1e-9);
    const double tct = it->second.second - it->second.first;
    EXPECT_NEAR(tct, truth.t_complete - truth.t_arrive, 1e-9);
    if (truth.counted) {
      reconstructed.add(tct);
      tcts.push_back(tct);
    }
  }
  // The reconstructed population reproduces the SimResult latency summary.
  ASSERT_EQ(reconstructed.count(), r.tct.count);
  EXPECT_NEAR(reconstructed.mean(), r.tct.mean, 1e-9);
  EXPECT_NEAR(reconstructed.min(), r.tct.min, 1e-9);
  EXPECT_NEAR(reconstructed.max(), r.tct.max, 1e-9);
}

TEST(Observer, TraceSamplerTracesExactlyOneInN) {
  auto cfg = base_scenario(1);
  ObsConfig obs_cfg;
  obs_cfg.trace_sample = 4;
  RecordingObserver obs(obs_cfg, cfg.devices.size());
  cfg.observer = &obs;
  run_scenario(cfg);
  ASSERT_FALSE(obs.trace().spans().empty());
  for (const auto& span : obs.trace().spans())
    EXPECT_EQ(span.task_id % 4, 0u);
}

// The time-series pillar samples Q_i/H_i at exactly the slot granularity
// of the eq. 10-11 queue recursions: between consecutive samples the
// backlog can grow by at most the slot's kept arrivals and shrink by at
// most the service capacity of one slot.
TEST(Observer, SlotSeriesObeysQueueRecursionBounds) {
  auto cfg = base_scenario(2);
  cfg.duration = 40.0;
  cfg.devices[0].mean_rate = 3.0;  // enough load to build a queue
  ObsConfig obs_cfg;
  obs_cfg.timeseries = true;
  RecordingObserver obs(obs_cfg, cfg.devices.size());
  cfg.observer = &obs;
  const auto r = run_scenario(cfg);

  const double tau = cfg.lyapunov.tau;
  std::uint64_t sampled_arrivals = 0;
  for (int d = 0; d < 2; ++d) {
    const auto series = obs.timeseries().device_series(d);
    ASSERT_GT(series.size(), 30u);
    // eq. 10: at most floor(tau F_d / mu1) block-1 jobs finish on the
    // device per slot (+1 for the one in service across the boundary).
    const double b_max =
        std::floor(tau * cfg.devices[d].flops / cfg.partition.mu1) + 1.0;
    std::uint64_t cum_offloaded = 0;
    for (std::size_t k = 0; k < series.size(); ++k) {
      const auto& s = series[k];
      EXPECT_EQ(s.device, d);
      EXPECT_GE(s.x, 0.0);
      EXPECT_LE(s.x, 1.0);
      EXPECT_GE(s.penalty, 0.0);
      sampled_arrivals += s.kept_arrivals + s.offloaded_arrivals;
      cum_offloaded += s.offloaded_arrivals;
      // eq. 11 upper bound: the edge backlog for this device can never
      // exceed what has been offloaded so far.
      EXPECT_LE(s.h, static_cast<double>(cum_offloaded));
      if (k == 0) continue;
      const auto& prev = series[k - 1];
      EXPECT_NEAR(s.t - prev.t, tau, 1e-9);  // slot granularity
      // Q_i(t+1) <= Q_i(t) + kept arrivals (service only removes) ...
      EXPECT_LE(s.q, prev.q + static_cast<double>(s.kept_arrivals) + 1e-9);
      // ... and >= Q_i(t) + kept - b_i (eq. 10 max-service drain).
      EXPECT_GE(s.q, prev.q + static_cast<double>(s.kept_arrivals) - b_max -
                         1e-9);
      // Edge drain bound: block-1 and block-2 jobs share the edge slice,
      // so at most floor(tau f_i^e / mu_min) + 1 jobs finish per slot.
      const double mu_min = std::min(cfg.partition.mu1, cfg.partition.mu2);
      const double c_max =
          std::floor(tau * s.edge_share_flops / mu_min) + 1.0;
      EXPECT_GE(s.h + c_max + 1e-9, prev.h);
    }
  }
  // Every sampled arrival is a generated task (the trailing partial slot
  // after the last tick is the only part of the run never sampled).
  EXPECT_LE(sampled_arrivals, r.generated);
  EXPECT_GT(sampled_arrivals, r.generated * 9 / 10);
}

TEST(Observer, FaultHooksDriveCountersGaugesAndMarks) {
  auto cfg = base_scenario(2);
  cfg.duration = 40.0;
  cfg.faults.edge.windows = {{10.0, 18.0, -1}};
  cfg.faults.churn.events = {{1, 12.0, 25.0}};
  cfg.obs.metrics = true;
  cfg.obs.trace_sample = 1;

  ObsConfig obs_cfg = cfg.obs;
  RecordingObserver obs(obs_cfg, cfg.devices.size());
  cfg.observer = &obs;
  const auto r = run_scenario(cfg);

  const auto snap = obs.registry().snapshot();
  EXPECT_EQ(find_counter(snap, "leime_fault_edge_crashes_total").value,
            r.faults.edge_crashes);
  EXPECT_EQ(find_counter(snap, "leime_fault_churn_events_total").value,
            r.faults.churn_events);
  EXPECT_GE(r.faults.churn_events, 2u);
  // Both the crash window and the churn healed before the end of the run.
  EXPECT_DOUBLE_EQ(find_gauge(snap, "leime_edge_up").value, 1.0);
  EXPECT_DOUBLE_EQ(find_gauge(snap, "leime_devices_absent").value, 0.0);

  std::size_t crash_marks = 0, restart_marks = 0;
  for (const auto& m : obs.trace().marks()) {
    if (m.name == "edge_crash") ++crash_marks;
    if (m.name == "edge_restart") ++restart_marks;
  }
  EXPECT_EQ(crash_marks, r.faults.edge_crashes);
  EXPECT_EQ(restart_marks, crash_marks);
}

TEST(Observer, OwnedObserverExportsConfiguredFiles) {
  const std::string dir = ::testing::TempDir();
  auto cfg = base_scenario(1);
  cfg.duration = 10.0;
  cfg.obs.metrics_out = dir + "observer_test.prom";
  cfg.obs.trace_out = dir + "observer_test_trace.json";
  cfg.obs.timeseries_out = dir + "observer_test_series.csv";
  const auto r = run_scenario(cfg);
  EXPECT_FALSE(r.metrics.empty());  // metrics_out implies the registry

  std::ifstream prom(cfg.obs.metrics_out);
  ASSERT_TRUE(prom.good());
  std::string text((std::istreambuf_iterator<char>(prom)),
                   std::istreambuf_iterator<char>());
  EXPECT_NE(text.find("leime_tasks_generated_total"), std::string::npos);
  EXPECT_TRUE(std::ifstream(cfg.obs.trace_out).good());
  EXPECT_TRUE(std::ifstream(cfg.obs.timeseries_out).good());
  std::remove(cfg.obs.metrics_out.c_str());
  std::remove(cfg.obs.trace_out.c_str());
  std::remove(cfg.obs.timeseries_out.c_str());
}

// The acceptance contract of the attribution pillar: replaying the routed
// wild-topology scenario (shared APs, an AP outage, retries, duplex result
// legs), every completed task's waterfall conserves its end-to-end latency
// to 1e-9 — stage waits + services + stall == t_complete - t_arrive — and
// the fabric's hop spans never exceed the link stages they refine.
TEST(Attribution, ConservesEndToEndLatencyInTheWild) {
  auto scenario =
      load_scenario_file(std::string(LEIME_CONFIG_DIR) + "/wild_topology.ini");
  auto cfg = scenario.config;
  cfg.result_bytes = 64000.0;  // exercise the duplex result-return legs
  ObsConfig obs_cfg;
  obs_cfg.attribution = true;
  obs_cfg.keep_waterfalls = true;
  const std::vector<std::string> classes = {"gate", "gate", "gate",
                                            "yard", "yard", "yard"};
  ASSERT_EQ(cfg.devices.size(), classes.size());
  GroundTruthObserver obs(obs_cfg, cfg.devices.size(), classes);
  cfg.observer = &obs;
  const auto r = run_scenario(cfg);
  ASSERT_GT(r.generated, 100u);

  const auto& rows = obs.waterfalls();
  ASSERT_FALSE(rows.empty());
  std::size_t with_hops = 0, with_pred = 0;
  for (const auto& wf : rows) {
    double spans = 0.0, links = 0.0;
    for (int i = 0; i < obs::kAttrStageCount; ++i) {
      const auto& s = wf.stages[static_cast<std::size_t>(i)];
      EXPECT_GE(s.wait, 0.0);
      EXPECT_GE(s.service, 0.0);
      spans += s.wait + s.service;
      if (obs::attr_stage_is_link(static_cast<obs::AttrStage>(i)))
        links += s.wait + s.service;
    }
    EXPECT_GE(wf.stall, -1e-9);  // spans are sequential, gaps only
    EXPECT_NEAR(spans + wf.stall, wf.e2e, 1e-9) << "task " << wf.task;
    const auto it = obs.truth().find(wf.task);
    ASSERT_NE(it, obs.truth().end());
    EXPECT_NEAR(wf.e2e, it->second.t_complete - it->second.t_arrive, 1e-9);
    if (!wf.hops.empty()) {
      ++with_hops;
      double hop_total = 0.0;
      for (const auto& h : wf.hops) {
        EXPECT_GE(h.wait, 0.0);
        EXPECT_GE(h.service, 0.0);
        hop_total += h.wait + h.service;
      }
      // Hops partition link spans; aborted flows may under-report but can
      // never attribute more time than the spans themselves.
      EXPECT_LE(hop_total, links + 1e-9) << "task " << wf.task;
    }
    if (wf.pred.valid) ++with_pred;
  }
  EXPECT_GT(with_hops, 0u);
  EXPECT_GT(with_pred, 0u);

  const auto& sum = obs.attribution_summary();
  EXPECT_TRUE(sum.active);
  EXPECT_EQ(sum.tasks, rows.size());
  // Every generated task either assembled a waterfall or is incomplete
  // (parked, or still in flight when the drain ended).
  EXPECT_EQ(sum.tasks + sum.incomplete, r.generated);
  ASSERT_FALSE(sum.ports.empty());
  std::uint64_t class_tasks = 0;
  for (const auto& c : sum.classes) class_tasks += c.tasks;
  EXPECT_EQ(class_tasks, sum.tasks);
  ASSERT_EQ(sum.classes.size(), 2u);
  EXPECT_EQ(sum.classes[0].name, "gate");
  EXPECT_EQ(sum.classes[1].name, "yard");
}

// Hook-level edge cases: an abort with no open phase is a no-op, parked
// tasks drop their ledger entry (no waterfall, counted incomplete), and
// tasks still open at run end are incomplete too.
TEST(Attribution, LedgerToleratesAbortsAndParksViaHooks) {
  ObsConfig cfg;
  cfg.attribution = true;
  cfg.keep_waterfalls = true;
  RecordingObserver obs(cfg, 1);
  obs.on_phase_abort(99, 1.0, "timeout");  // unknown task, nothing open

  obs.on_task_generated(1, 0, 0.5, 1, true);
  obs.on_phase_begin(1, 0, "uplink", "device0/tx", 0.5, 0.5, 0);
  obs.on_phase_abort(1, 1.0, "edge_crash");
  obs.on_phase_abort(1, 1.0, "edge_crash");  // second abort: nothing open
  obs.on_task_parked(1, 0, 1.0);

  obs.on_task_generated(2, 0, 1.5, 1, false);
  obs.on_phase_begin(2, 0, "local_block1", "device0/cpu", 1.5, 1.5, 0);
  // ... run ends with task 2 still computing.

  obs.on_task_generated(3, 0, 2.0, 1, false);
  obs.on_phase_begin(3, 0, "local_block1", "device0/cpu", 2.0, 2.2, 0);
  obs.on_phase_end(3, 2.5);
  obs.on_task_complete(3, 0, 2.0, 2.5, 1, 0, true);
  obs.on_run_end(3.0);

  const auto& sum = obs.attribution_summary();
  EXPECT_EQ(sum.tasks, 1u);
  EXPECT_EQ(sum.incomplete, 2u);  // parked task 1 + still-open task 2
  ASSERT_EQ(obs.waterfalls().size(), 1u);
  const auto& wf = obs.waterfalls()[0];
  EXPECT_EQ(wf.task, 3u);
  const auto& local =
      wf.stages[static_cast<std::size_t>(obs::AttrStage::kLocalCompute)];
  EXPECT_NEAR(local.wait, 0.2, 1e-12);
  EXPECT_NEAR(local.service, 0.3, 1e-12);
  EXPECT_NEAR(wf.stall, 0.0, 1e-12);
}

// Attribution and SLO must not perturb the run (same null-object contract
// as the other pillars), ride SimResult, and export their files.
TEST(Attribution, DoesNotPerturbTheRunAndExportsFiles) {
  auto cfg = base_scenario();
  const auto off = run_scenario(cfg);
  const std::string dir = ::testing::TempDir();
  cfg.obs.attribution = true;
  cfg.obs.attribution_out = dir + "attr_waterfalls.jsonl";
  cfg.obs.calibration_out = dir + "attr_calibration.csv";
  cfg.obs.slo.deadline = 0.5;
  cfg.obs.slo.alerts_out = dir + "slo_alerts.jsonl";
  const auto on = run_scenario(cfg);

  EXPECT_EQ(on.generated, off.generated);
  EXPECT_EQ(on.total_completed, off.total_completed);
  EXPECT_DOUBLE_EQ(on.tct.mean, off.tct.mean);
  EXPECT_DOUBLE_EQ(on.tct.p95, off.tct.p95);
  EXPECT_DOUBLE_EQ(on.mean_offload_ratio, off.mean_offload_ratio);

  EXPECT_FALSE(off.attribution.active);
  EXPECT_FALSE(off.slo.active);
  EXPECT_TRUE(on.attribution.active);
  EXPECT_TRUE(on.slo.active);
  EXPECT_EQ(on.attribution.tasks, on.total_completed);
  EXPECT_EQ(on.attribution.tasks + on.attribution.incomplete, on.generated);

  std::ifstream jsonl(cfg.obs.attribution_out);
  ASSERT_TRUE(jsonl.good());
  std::string first_line;
  ASSERT_TRUE(std::getline(jsonl, first_line));
  EXPECT_EQ(first_line.rfind("{\"task\":", 0), 0u);
  std::ifstream csv(cfg.obs.calibration_out);
  ASSERT_TRUE(csv.good());
  std::string header;
  ASSERT_TRUE(std::getline(csv, header));
  EXPECT_EQ(header.rfind("task,class,device,", 0), 0u);
  EXPECT_TRUE(std::ifstream(cfg.obs.slo.alerts_out).good());
  std::remove(cfg.obs.attribution_out.c_str());
  std::remove(cfg.obs.calibration_out.c_str());
  std::remove(cfg.obs.slo.alerts_out.c_str());
}

// End-to-end SLO: an impossible deadline makes every counted completion a
// miss, the monitor fires exactly once (burn never recovers), and the
// alert shows up in all three places — summary, metrics, trace marks.
TEST(Slo, DeadlineMissesFireAlertsEndToEnd) {
  auto cfg = base_scenario(2);
  ObsConfig obs_cfg;
  obs_cfg.metrics = true;
  obs_cfg.trace_sample = 1;
  obs_cfg.slo.deadline = 1e-4;
  obs_cfg.slo.window = 10.0;
  obs_cfg.slo.target_miss_rate = 0.01;
  obs_cfg.slo.burn_threshold = 1.0;
  obs_cfg.slo.min_window_tasks = 5;
  RecordingObserver obs(obs_cfg, cfg.devices.size(), {"cam", "cam"});
  cfg.observer = &obs;
  const auto r = run_scenario(cfg);
  ASSERT_GT(r.completed, 20u);

  const auto s = obs.slo_summary();
  ASSERT_TRUE(s.active);
  EXPECT_DOUBLE_EQ(s.deadline, 1e-4);
  ASSERT_EQ(s.classes.size(), 1u);
  EXPECT_EQ(s.classes[0].name, "cam");
  EXPECT_EQ(s.classes[0].completions, r.completed);
  EXPECT_EQ(s.classes[0].misses, s.classes[0].completions);
  EXPECT_EQ(s.classes[0].alerts_fired, 1u);
  EXPECT_EQ(s.classes[0].alerts_cleared, 0u);
  ASSERT_EQ(s.alerts.size(), 1u);
  EXPECT_TRUE(s.alerts[0].fire);
  EXPECT_EQ(s.alerts[0].cls, "cam");
  EXPECT_EQ(s.alerts[0].window_tasks, 5u);

  const auto snap = obs.registry().snapshot();
  EXPECT_EQ(find_counter(snap, "leime_slo_completions_total").value,
            s.classes[0].completions);
  EXPECT_EQ(find_counter(snap, "leime_slo_misses_total").value,
            s.classes[0].misses);
  EXPECT_EQ(find_counter(snap, "leime_slo_alerts_fired_total").value, 1u);
  EXPECT_EQ(find_counter(snap, "leime_slo_alerts_cleared_total").value, 0u);
  EXPECT_EQ(find_histogram(snap, "leime_slo_overshoot_seconds").stats.count(),
            s.classes[0].misses);
  EXPECT_GT(find_gauge(snap, "leime_slo_burn_rate").value, 1.0);

  std::size_t fire_marks = 0;
  for (const auto& m : obs.trace().marks()) {
    if (m.name != "slo_burn_fire") continue;
    ++fire_marks;
    EXPECT_FALSE(m.has_task());  // burn alerts are not about one task
    EXPECT_EQ(m.track, "slo/cam");
  }
  EXPECT_EQ(fire_marks, 1u);
}

// The SLO summary (and so its JSONL rendering) is deterministic: two
// identical runs produce byte-identical alert streams.
TEST(Slo, SummaryRidesSimResultDeterministically) {
  auto cfg = base_scenario(2);
  cfg.obs.slo.deadline = 1e-4;
  cfg.obs.slo.min_window_tasks = 5;
  const auto a = run_scenario(cfg);
  const auto b = run_scenario(cfg);
  ASSERT_TRUE(a.slo.active);
  EXPECT_FALSE(a.slo.alerts.empty());
  std::ostringstream ja, jb;
  a.slo.to_json(ja);
  b.slo.to_json(jb);
  EXPECT_EQ(ja.str(), jb.str());
}

TEST(ObsConfig, EnablementRules) {
  ObsConfig off;
  EXPECT_FALSE(off.enabled());
  ObsConfig path_only;
  path_only.metrics_out = "x.prom";
  EXPECT_TRUE(path_only.metrics_enabled());
  EXPECT_TRUE(path_only.enabled());
  ObsConfig trace_only;
  trace_only.trace_out = "x.json";
  EXPECT_EQ(trace_only.effective_trace_sample(), 1u);
  trace_only.trace_sample = 8;
  EXPECT_EQ(trace_only.effective_trace_sample(), 8u);
}

}  // namespace
}  // namespace leime::sim
