// Sharded parallel execution (DESIGN.md §15): the determinism contract.
//
// The whole value of the conservative-window runner is that it is an
// execution strategy, not a model change — shards = N must produce results
// bit-identical to shards = 1 for ANY shard/thread combination. The tests
// here enforce that with exact floating-point equality on every SimResult
// field across fleets exercising Poisson/periodic/bursty arrivals, the
// reallocation timer, fault schedules and the batched policy engine; plus
// unit coverage of the partitioning/lookahead helpers, the hub-link replay
// and the thread-pool mechanics (the TSan target for the barrier
// machinery).
#include <gtest/gtest.h>

#include <atomic>
#include <cstddef>
#include <numeric>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/partition.h"
#include "models/zoo.h"
#include "sim/event_queue.h"
#include "sim/resources.h"
#include "sim/shard.h"
#include "sim/simulation.h"

namespace leime::sim {
namespace {

const core::MeDnnPartition& test_partition() {
  static const core::MeDnnPartition partition = [] {
    const auto profile = models::make_squeezenet();
    return core::make_partition(profile, {4, 8, profile.num_units()});
  }();
  return partition;
}

/// A heterogeneous fleet: rates, compute and difficulty all vary so the
/// shards see genuinely different workloads (and the hub link sees
/// interleaved cross-shard admissions).
ScenarioConfig fleet_scenario(std::size_t devices, std::uint64_t seed) {
  ScenarioConfig cfg;
  cfg.partition = test_partition();
  for (std::size_t i = 0; i < devices; ++i) {
    DeviceSpec dev;
    dev.flops = core::kRaspberryPiFlops * (1.0 + 0.15 * (i % 4));
    dev.mean_rate = 1.0 + 0.5 * (i % 3);
    dev.difficulty = 0.9 + 0.05 * (i % 5);
    cfg.devices.push_back(dev);
  }
  cfg.policy = "LEIME";
  cfg.duration = 12.0;
  cfg.warmup = 2.0;
  cfg.seed = seed;
  return cfg;
}

void expect_bit_identical(const SimResult& a, const SimResult& b,
                          const std::string& label) {
  SCOPED_TRACE(label);
  EXPECT_EQ(a.generated, b.generated);
  EXPECT_EQ(a.completed, b.completed);
  EXPECT_EQ(a.total_completed, b.total_completed);
  EXPECT_EQ(a.in_flight, b.in_flight);
  EXPECT_EQ(a.tct.count, b.tct.count);
  EXPECT_EQ(a.tct.mean, b.tct.mean);
  EXPECT_EQ(a.tct.stddev, b.tct.stddev);
  EXPECT_EQ(a.tct.min, b.tct.min);
  EXPECT_EQ(a.tct.p50, b.tct.p50);
  EXPECT_EQ(a.tct.p95, b.tct.p95);
  EXPECT_EQ(a.tct.p99, b.tct.p99);
  EXPECT_EQ(a.tct.max, b.tct.max);
  EXPECT_EQ(a.exit1_fraction, b.exit1_fraction);
  EXPECT_EQ(a.exit2_fraction, b.exit2_fraction);
  EXPECT_EQ(a.exit3_fraction, b.exit3_fraction);
  EXPECT_EQ(a.mean_offload_ratio, b.mean_offload_ratio);
  EXPECT_EQ(a.mean_device_queue, b.mean_device_queue);
  EXPECT_EQ(a.mean_edge_queue, b.mean_edge_queue);
  EXPECT_EQ(a.faults.link_outages, b.faults.link_outages);
  EXPECT_EQ(a.faults.edge_crashes, b.faults.edge_crashes);
  EXPECT_EQ(a.faults.churn_events, b.faults.churn_events);
  EXPECT_EQ(a.faults.failed_over, b.faults.failed_over);
  EXPECT_EQ(a.faults.retries, b.faults.retries);
  EXPECT_EQ(a.faults.local_fallbacks, b.faults.local_fallbacks);
  EXPECT_EQ(a.faults.fallback_slots, b.faults.fallback_slots);
  EXPECT_EQ(a.faults.parked, b.faults.parked);
  ASSERT_EQ(a.timeline.size(), b.timeline.size());
  for (std::size_t i = 0; i < a.timeline.size(); ++i) {
    EXPECT_EQ(a.timeline[i].time, b.timeline[i].time);
    EXPECT_EQ(a.timeline[i].mean_tct, b.timeline[i].mean_tct);
    EXPECT_EQ(a.timeline[i].count, b.timeline[i].count);
  }
  ASSERT_EQ(a.per_device.size(), b.per_device.size());
  for (std::size_t i = 0; i < a.per_device.size(); ++i) {
    EXPECT_EQ(a.per_device[i].tct.mean, b.per_device[i].tct.mean);
    EXPECT_EQ(a.per_device[i].tct.p95, b.per_device[i].tct.p95);
    EXPECT_EQ(a.per_device[i].completed, b.per_device[i].completed);
    EXPECT_EQ(a.per_device[i].mean_offload_ratio,
              b.per_device[i].mean_offload_ratio);
    EXPECT_EQ(a.per_device[i].failed_over, b.per_device[i].failed_over);
    EXPECT_EQ(a.per_device[i].retries, b.per_device[i].retries);
    EXPECT_EQ(a.per_device[i].fallback_slots,
              b.per_device[i].fallback_slots);
  }
}

/// Runs the scenario at shards = 1 and at every (shards, threads) combo,
/// demanding bit-identity throughout.
void expect_sharding_invariant(ScenarioConfig cfg, const std::string& label) {
  cfg.shards = {};
  const SimResult single = run_scenario(cfg);
  for (const std::size_t shards : {2u, 3u, 8u}) {
    for (const int threads : {1, 4}) {
      cfg.shards.shards = shards;
      cfg.shards.threads = threads;
      const SimResult sharded = run_scenario(cfg);
      expect_bit_identical(single, sharded,
                           label + " shards=" + std::to_string(shards) +
                               " threads=" + std::to_string(threads));
    }
  }
}

// ------------------------------------------------------------- helpers

TEST(ShardRange, PartitionsContiguouslyAndBalanced) {
  const std::size_t n = 10, shards = 4;
  std::size_t covered = 0;
  std::size_t prev_hi = 0;
  for (std::size_t s = 0; s < shards; ++s) {
    const auto [lo, hi] = shard_range(n, shards, s);
    EXPECT_EQ(lo, prev_hi);  // contiguous, in device order
    EXPECT_GE(hi, lo);
    EXPECT_LE(hi - lo, n / shards + 1);  // balanced within one device
    EXPECT_GE(hi - lo, n / shards);
    covered += hi - lo;
    prev_hi = hi;
  }
  EXPECT_EQ(covered, n);
  EXPECT_EQ(prev_hi, n);
}

TEST(ShardWindow, ClampsToHubPropagationDelay) {
  ShardOptions opts;
  const double lat = 0.030;
  EXPECT_EQ(shard_window(opts, lat), lat);  // 0 = widest safe window
  opts.window_s = 0.010;
  EXPECT_EQ(shard_window(opts, lat), 0.010);
  opts.window_s = 1.0;  // wider than safe: clamped
  EXPECT_EQ(shard_window(opts, lat), lat);
}

TEST(ResolveShardThreads, ClampsToShardCountAndStaysPositive) {
  ShardOptions opts;
  opts.threads = 16;
  EXPECT_EQ(resolve_shard_threads(opts, 4), 4);
  opts.threads = 2;
  EXPECT_EQ(resolve_shard_threads(opts, 8), 2);
  opts.threads = 0;  // auto: hardware concurrency, still clamped
  EXPECT_GE(resolve_shard_threads(opts, 4), 1);
  EXPECT_LE(resolve_shard_threads(opts, 4), 4);
}

TEST(ShardOptionsValidate, RejectsBadValues) {
  ShardOptions opts;
  opts.shards = 0;
  EXPECT_THROW(opts.validate(), std::invalid_argument);
  opts = {};
  opts.threads = -1;
  EXPECT_THROW(opts.validate(), std::invalid_argument);
  opts = {};
  opts.window_s = -0.5;
  EXPECT_THROW(opts.validate(), std::invalid_argument);
}

TEST(HubLink, ReplaysLinkTransferBitExactly) {
  // The coordinator's HubLink must reproduce Link::transfer's FIFO
  // serialization arithmetic bit for bit on the flat no-trace path.
  const double bw = 12.5e6 / 3.0;  // awkward bits on purpose
  const double lat = 0.0313;
  EventQueue queue;
  Link link(queue, "hub", bw, lat);
  HubLink hub(bw, lat);

  const double admissions[] = {0.013, 0.0131, 0.5, 0.500000001, 2.75, 9.1};
  const double bytes[] = {1.1e5, 3e4, 2.2e6, 1.0, 7.5e5, 1.3e4};
  std::vector<double> link_deliveries;
  for (int k = 0; k < 6; ++k) {
    queue.schedule(admissions[k], [&, k] {
      link.transfer(bytes[k], [&](double t) { link_deliveries.push_back(t); });
    });
  }
  queue.run_all();

  std::vector<double> hub_deliveries;
  for (int k = 0; k < 6; ++k)
    hub_deliveries.push_back(hub.admit(admissions[k], bytes[k]));
  ASSERT_EQ(link_deliveries.size(), hub_deliveries.size());
  for (std::size_t k = 0; k < hub_deliveries.size(); ++k)
    EXPECT_EQ(link_deliveries[k], hub_deliveries[k]) << "admission " << k;
}

TEST(ShardPool, RunsEveryJobExactlyOnceAcrossThreads) {
  // The TSan target for the window-barrier machinery: parallel regions
  // with disjoint writes plus an atomic claim counter, repeated so the
  // generation/condvar handoff is exercised many times.
  ShardPool pool(4);
  EXPECT_EQ(pool.threads(), 4);
  for (int round = 0; round < 50; ++round) {
    std::vector<int> hits(64, 0);
    std::atomic<int> total{0};
    pool.run(hits.size(), [&](std::size_t i) {
      ++hits[i];  // disjoint per job — TSan validates the claim protocol
      total.fetch_add(1, std::memory_order_relaxed);
    });
    EXPECT_EQ(total.load(), 64);
    EXPECT_EQ(std::accumulate(hits.begin(), hits.end(), 0), 64);
  }
}

TEST(ShardPool, InlineWhenSingleThreadedAndRethrowsJobFailures) {
  ShardPool inline_pool(1);
  EXPECT_EQ(inline_pool.threads(), 0);  // no workers: deterministic inline
  int ran = 0;
  inline_pool.run(3, [&](std::size_t) { ++ran; });
  EXPECT_EQ(ran, 3);

  ShardPool pool(2);
  EXPECT_THROW(
      pool.run(8,
               [&](std::size_t i) {
                 if (i == 5) throw std::runtime_error("shard failed");
               }),
      std::runtime_error);
  // The pool survives a failed region and runs the next one.
  std::atomic<int> ok{0};
  pool.run(8, [&](std::size_t) { ok.fetch_add(1); });
  EXPECT_EQ(ok.load(), 8);
}

// ----------------------------------------- shards=1 ≡ shards=N identity

TEST(ShardedSim, BitIdenticalOnPoissonFleet) {
  expect_sharding_invariant(fleet_scenario(11, 77), "poisson");
}

TEST(ShardedSim, BitIdenticalWithPeriodicTies) {
  // Periodic fleets arrive at exactly coincident times across devices —
  // the hardest case for the merge order (ties resolved by device index,
  // matching the single queue's scheduling order).
  ScenarioConfig cfg = fleet_scenario(9, 123);
  for (auto& dev : cfg.devices) {
    dev.arrival = ArrivalKind::kPeriodic;
    dev.mean_rate = 2.0;  // identical periods: maximal collisions
  }
  expect_sharding_invariant(cfg, "periodic");
}

TEST(ShardedSim, BitIdenticalWithReallocationTimer) {
  ScenarioConfig cfg = fleet_scenario(10, 31);
  cfg.reallocation_period = 3.0;  // forces the T-minus gather barriers
  expect_sharding_invariant(cfg, "realloc");
}

TEST(ShardedSim, BitIdenticalWithBurstyArrivalsAndHighLoad) {
  ScenarioConfig cfg = fleet_scenario(8, 5);
  for (std::size_t i = 0; i < cfg.devices.size(); ++i) {
    if (i % 2 == 0) {
      cfg.devices[i].arrival = ArrivalKind::kBursty;
      cfg.devices[i].bursty_high_rate = 12.0;
      cfg.devices[i].bursty_dwell = 2.0;
    }
    cfg.devices[i].mean_rate = 3.0;  // push more tasks through the hub
  }
  expect_sharding_invariant(cfg, "bursty");
}

TEST(ShardedSim, BitIdenticalUnderFaultSchedules) {
  ScenarioConfig cfg = fleet_scenario(10, 99);
  cfg.policy = "LEIME+fallback";
  cfg.faults.edge.windows.push_back({4.0, 6.5});
  cfg.faults.link.windows.push_back({3.0, 5.0, -1});
  cfg.faults.link.windows.push_back({7.0, 8.0, 2});
  ChurnEvent churn;
  churn.device = 1;
  churn.leave = 5.0;
  churn.rejoin = 9.0;
  cfg.faults.churn.events.push_back(churn);
  cfg.faults.degradation.detection_timeout = 0.4;
  cfg.faults.degradation.task_timeout = 2.0;
  cfg.faults.degradation.max_retries = 2;
  cfg.faults.degradation.retry_backoff = 0.3;
  expect_sharding_invariant(cfg, "faults");
}

TEST(ShardedSim, BitIdenticalWithBatchedPolicyEngine) {
  // The coordinator-owned engine is shared across shard threads; its
  // batched eq. 20 path is 0-ULP batch-invariant, so partitioning the
  // fleet must not move a single bit.
  ScenarioConfig cfg = fleet_scenario(12, 41);
  cfg.policy_core.memo_cache = true;
  cfg.policy_core.warm_start = true;
  cfg.policy_core.batch_eq20 = true;
  expect_sharding_invariant(cfg, "batched-engine");
}

TEST(ShardedSim, MetricsCountersMatchSingleQueue) {
  // Observability is restricted to the metrics pillar in sharded mode;
  // counters are integer sums and must merge to exactly the single-queue
  // values. (Gauges are last-wins and histogram moments are FP-order
  // sensitive — deliberately out of the counter contract.)
  ScenarioConfig cfg = fleet_scenario(9, 17);
  cfg.obs.metrics = true;
  const SimResult single = run_scenario(cfg);
  cfg.shards.shards = 4;
  cfg.shards.threads = 2;
  const SimResult sharded = run_scenario(cfg);
  ASSERT_FALSE(single.metrics.empty());
  ASSERT_EQ(single.metrics.counters.size(), sharded.metrics.counters.size());
  for (std::size_t i = 0; i < single.metrics.counters.size(); ++i) {
    EXPECT_EQ(single.metrics.counters[i].name,
              sharded.metrics.counters[i].name);
    EXPECT_EQ(single.metrics.counters[i].value,
              sharded.metrics.counters[i].value)
        << single.metrics.counters[i].name;
  }
}

TEST(ShardedSim, CountsEventsAcrossShardQueues) {
  ScenarioConfig cfg = fleet_scenario(6, 3);
  const SimResult single = run_scenario(cfg);
  EXPECT_GT(single.events_executed, 0u);
  cfg.shards.shards = 3;
  cfg.shards.threads = 1;
  const SimResult sharded = run_scenario(cfg);
  // Fleet-wide ticks (slots, faults, reallocation) replay in every shard,
  // so the sharded count is at least the single-queue count.
  EXPECT_GE(sharded.events_executed, single.events_executed);
}

TEST(ShardedSim, RejectsConfigurationsOutsideTheContract) {
  const auto expect_rejected = [](ScenarioConfig cfg, const char* what) {
    SCOPED_TRACE(what);
    cfg.shards.shards = 2;
    EXPECT_THROW(run_scenario(cfg), std::invalid_argument);
  };
  {
    ScenarioConfig cfg = fleet_scenario(4, 1);
    cfg.cloud_fifo = true;
    expect_rejected(cfg, "cloud_fifo");
  }
  {
    ScenarioConfig cfg = fleet_scenario(4, 1);
    cfg.result_bytes = 1000.0;
    expect_rejected(cfg, "result_bytes");
  }
  {
    ScenarioConfig cfg = fleet_scenario(4, 1);
    cfg.shared_uplink_bw = 1e6;
    expect_rejected(cfg, "shared_uplink_bw");
  }
  {
    ScenarioConfig cfg = fleet_scenario(4, 1);
    cfg.topology.aps = 2;
    expect_rejected(cfg, "topology");
  }
  {
    ScenarioConfig cfg = fleet_scenario(4, 1);
    cfg.obs.attribution = true;
    expect_rejected(cfg, "attribution obs");
  }
  {
    ScenarioConfig cfg = fleet_scenario(4, 1);
    cfg.edge_cloud_lat = 0.0;
    expect_rejected(cfg, "zero hub latency (no lookahead)");
  }
}

}  // namespace
}  // namespace leime::sim
