// Fabric-backed simulation mode (the [topology] section): degenerate
// equivalence with the flat link model, emergent congestion behind shared
// APs, drop-driven retries, AP-outage composition with the fault layer,
// and byte-stable JSONL at any executor thread count.
#include <gtest/gtest.h>

#include <cmath>
#include <sstream>
#include <string>

#include "core/partition.h"
#include "models/zoo.h"
#include "runtime/executor.h"
#include "runtime/experiment_plan.h"
#include "runtime/sinks.h"
#include "sim/simulation.h"

namespace leime::sim {
namespace {

ScenarioConfig fleet(int devices, double rate) {
  const auto profile = models::make_squeezenet();
  ScenarioConfig cfg;
  cfg.partition = core::make_partition(profile, {4, 8, profile.num_units()});
  for (int i = 0; i < devices; ++i) {
    DeviceSpec dev;
    dev.flops = core::kRaspberryPiFlops;
    dev.mean_rate = rate;
    cfg.devices.push_back(dev);
  }
  cfg.policy = "LEIME";
  cfg.duration = 25.0;
  cfg.warmup = 2.0;
  return cfg;
}

net::TopologyConfig aps(int count, double mbps, double latency_ms = 0.0) {
  net::TopologyConfig topo;
  topo.aps = count;
  topo.ap_bandwidth = util::mbps(mbps);
  topo.ap_latency = util::ms(latency_ms);
  return topo;
}

TEST(TopologySim, DegenerateTopologyMatchesFlatWithinTolerance) {
  // One device per AP with an effectively infinite, zero-latency backhaul:
  // the only difference from the flat model is the AP's store-and-forward
  // hop, whose serialization time at 1e9 Mbps is ~1e-8 s per task.
  const auto cfg_flat = fleet(3, 0.8);
  auto cfg_topo = cfg_flat;
  cfg_topo.topology = aps(3, 1e9);

  const auto a = run_scenario(cfg_flat);
  const auto b = run_scenario(cfg_topo);
  EXPECT_EQ(a.generated, b.generated);  // arrivals don't touch the network
  EXPECT_NEAR(static_cast<double>(a.total_completed),
              static_cast<double>(b.total_completed), 1.0);
  EXPECT_NEAR(a.tct.mean, b.tct.mean, 1e-6);
  EXPECT_NEAR(a.tct.p95, b.tct.p95, 1e-6);
  EXPECT_NEAR(a.mean_offload_ratio, b.mean_offload_ratio, 1e-6);
  EXPECT_FALSE(a.net.active);
  EXPECT_TRUE(b.net.active);
  EXPECT_GT(b.net.delivered, 0u);
  EXPECT_GE(b.net.hops, b.net.delivered);  // >= 2 hops per delivered flow
  EXPECT_EQ(b.net.drops, 0u);              // unbounded queues never drop
}

TEST(TopologySim, CongestionEmergesBehindOneSharedAp) {
  // Same fleet, same total backhaul capacity, different sharing: 6 devices
  // crowded behind one AP queue against each other; spread over 3 APs the
  // same flows barely interact.
  auto crowded = fleet(6, 1.0);
  crowded.topology = aps(1, 20.0);
  auto spread = fleet(6, 1.0);
  spread.topology = aps(3, 20.0);

  const auto a = run_scenario(crowded);
  const auto b = run_scenario(spread);
  EXPECT_TRUE(a.net.active);
  EXPECT_TRUE(b.net.active);
  EXPECT_GT(a.net.max_backlog_bytes, b.net.max_backlog_bytes);
  // Congestion is visible end to end, not just in the port counters.
  EXPECT_GT(a.tct.p95, b.tct.p95);
}

TEST(TopologySim, QueueLimitDropsFeedTheRetryPath) {
  auto cfg = fleet(6, 1.2);
  cfg.topology = aps(1, 10.0);
  // Room for ~2 queued uploads (the raw input is ~0.7 MB): under the
  // 6-device crowd some flows get through and the excess is dropped.
  cfg.topology.queue_limit_bytes = 1.5e6;

  const auto r = run_scenario(cfg);
  EXPECT_TRUE(r.net.active);
  EXPECT_GT(r.net.drops, 0u);
  EXPECT_GT(r.net.delivered, 0u);
  // Every drop surfaces as a net_drop fault and re-enters via the retry
  // machinery (exhausted raw-input retries finish on the device).
  EXPECT_GT(r.faults.retries, 0u);
  EXPECT_EQ(r.generated, r.total_completed + r.in_flight);
}

TEST(TopologySim, ApOutageDegradesOnlyThatApsDevices) {
  // Devices 0..2 on AP 0 (down 6-14 s), 3..5 on AP 1 (clean). With the
  // fallback policy the affected devices keep working device-only.
  auto cfg = fleet(6, 0.8);
  cfg.policy = "LEIME+fallback";
  cfg.topology = aps(2, 20.0);
  cfg.topology.device_map = {0, 0, 0, 1, 1, 1};
  cfg.faults.ap_windows = {{6.0, 14.0, /*ap=*/0}};
  cfg.faults.degradation.detection_timeout = 0.5;

  const auto r = run_scenario(cfg);
  EXPECT_TRUE(r.net.active);
  EXPECT_GT(r.faults.fallback_slots, 0u);
  EXPECT_EQ(r.generated, r.total_completed + r.in_flight);

  auto clean = cfg;
  clean.faults = FaultPlan{};
  const auto c = run_scenario(clean);
  EXPECT_EQ(c.faults.fallback_slots, 0u);
  EXPECT_GE(r.tct.p95, c.tct.p95);  // held bytes stretch the tail
}

TEST(TopologySim, ApWindowsValidatedAgainstTopology) {
  auto no_topo = fleet(2, 0.5);
  no_topo.faults.ap_windows = {{5.0, 10.0, 0}};
  EXPECT_THROW(run_scenario(no_topo), std::invalid_argument);

  auto bad_index = fleet(2, 0.5);
  bad_index.topology = aps(2, 20.0);
  bad_index.faults.ap_windows = {{5.0, 10.0, /*ap=*/2}};
  EXPECT_THROW(run_scenario(bad_index), std::invalid_argument);

  auto both_modes = fleet(2, 0.5);
  both_modes.topology = aps(1, 20.0);
  both_modes.shared_uplink_bw = util::mbps(10.0);
  EXPECT_THROW(run_scenario(both_modes), std::invalid_argument);
}

TEST(TopologySim, ResultBytesRideTheDuplexFabric) {
  auto cfg = fleet(3, 0.8);
  cfg.topology = aps(1, 20.0);
  cfg.result_bytes = 2000.0;
  cfg.cloud_fifo = true;
  const auto r = run_scenario(cfg);
  EXPECT_TRUE(r.net.active);
  EXPECT_GT(r.total_completed, 0u);
  EXPECT_EQ(r.generated, r.total_completed + r.in_flight);
}

TEST(TopologySim, JsonlBytesStableAcrossExecutorThreads) {
  auto base = fleet(4, 0.9);
  base.duration = 15.0;
  runtime::ExperimentPlan plan(base);
  plan.add_axis("net",
                {{"flat", [](ScenarioConfig&) {}},
                 {"one_ap",
                  [](ScenarioConfig& cfg) {
                    cfg.topology.aps = 1;
                    cfg.topology.ap_bandwidth = util::mbps(15.0);
                    cfg.topology.ap_latency = util::ms(2.0);
                  }},
                 {"crowded", [](ScenarioConfig& cfg) {
                    cfg.topology.aps = 1;
                    cfg.topology.ap_bandwidth = util::mbps(15.0);
                    cfg.topology.queue_limit_bytes = 40e3;
                  }}});
  plan.replications(2).base_seed(20260807);

  const auto render = [&](int threads) {
    runtime::ExecutorOptions opts;
    opts.threads = threads;
    const auto records = runtime::Executor(opts).run(plan);
    runtime::JsonlOptions jopts;
    jopts.include_timing = false;
    std::ostringstream out;
    runtime::write_jsonl(out, {"net"}, records, jopts);
    return out.str();
  };
  const auto serial = render(1);
  EXPECT_EQ(serial, render(4))
      << "fabric mode broke executor thread determinism";
  // Fabric cells carry the net object; the flat cells must not.
  EXPECT_NE(serial.find("\"net\":\"one_ap\""), std::string::npos);
  EXPECT_NE(serial.find(",\"net\":{\"transfers\":"), std::string::npos);
  const auto flat_line = serial.substr(0, serial.find('\n'));
  EXPECT_NE(flat_line.find("\"net\":\"flat\""), std::string::npos);
  EXPECT_EQ(flat_line.find("\"net\":{"), std::string::npos);
}

}  // namespace
}  // namespace leime::sim
