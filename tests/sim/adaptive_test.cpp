#include "sim/adaptive.h"

#include <gtest/gtest.h>

#include "models/zoo.h"

namespace leime::sim {
namespace {

/// Base scenario whose uplink collapses mid-run: the design point drifts.
ScenarioConfig drifting_scenario() {
  ScenarioConfig cfg;
  DeviceSpec dev;
  dev.flops = core::kJetsonNanoFlops;
  dev.mean_rate = 0.4;
  dev.uplink_bw = util::mbps(20.0);
  dev.uplink_bw_trace = util::PiecewiseConstant(
      {{0.0, util::mbps(20.0)}, {60.0, util::mbps(1.5)}});
  cfg.devices.push_back(dev);
  cfg.duration = 120.0;
  return cfg;
}

TEST(Adaptive, EpochsCoverTheRun) {
  const auto profile = models::make_inception_v3();
  const auto r =
      run_adaptive_scenario(profile, drifting_scenario(), 30.0, true);
  ASSERT_EQ(r.epochs.size(), 4u);
  EXPECT_DOUBLE_EQ(r.epochs[0].start, 0.0);
  EXPECT_DOUBLE_EQ(r.epochs[3].start, 90.0);
  EXPECT_GT(r.total_completed, 20u);
  EXPECT_GT(r.overall_mean_tct, 0.0);
}

TEST(Adaptive, RedesignReactsToBandwidthCollapse) {
  const auto profile = models::make_inception_v3();
  const auto r =
      run_adaptive_scenario(profile, drifting_scenario(), 30.0, true);
  // After the collapse (epochs 3-4) the redesigned First-exit should move
  // at least as deep as before (less data to move) — and the observed
  // bandwidth must reflect the trace.
  EXPECT_GT(r.epochs[0].mean_bandwidth, r.epochs[3].mean_bandwidth);
  EXPECT_GE(r.epochs[3].combo.e1, r.epochs[0].combo.e1);
}

TEST(Adaptive, StaticModeKeepsInitialDesign) {
  const auto profile = models::make_inception_v3();
  const auto r =
      run_adaptive_scenario(profile, drifting_scenario(), 30.0, false);
  for (const auto& e : r.epochs) EXPECT_EQ(e.combo, r.epochs[0].combo);
}

TEST(Adaptive, RedesignNoWorseUnderDrift) {
  const auto profile = models::make_inception_v3();
  const auto adaptive =
      run_adaptive_scenario(profile, drifting_scenario(), 30.0, true);
  const auto static_run =
      run_adaptive_scenario(profile, drifting_scenario(), 30.0, false);
  // Post-collapse epochs are where redesign pays; compare their means.
  const double a = adaptive.epochs[2].mean_tct + adaptive.epochs[3].mean_tct;
  const double s =
      static_run.epochs[2].mean_tct + static_run.epochs[3].mean_tct;
  EXPECT_LE(a, s * 1.1);  // at worst marginally different, typically better
}

TEST(Adaptive, Validation) {
  const auto profile = models::make_inception_v3();
  auto cfg = drifting_scenario();
  EXPECT_THROW(run_adaptive_scenario(profile, cfg, 0.0, true),
               std::invalid_argument);
  EXPECT_THROW(run_adaptive_scenario(profile, cfg, 500.0, true),
               std::invalid_argument);
  cfg.devices.clear();
  EXPECT_THROW(run_adaptive_scenario(profile, cfg, 30.0, true),
               std::invalid_argument);
}

}  // namespace
}  // namespace leime::sim
