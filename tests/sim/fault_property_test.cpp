// Property tests for the fault layer: task conservation must hold under
// arbitrary fault schedules. Every generated task is either completed or
// still pending (parked behind a never-healing edge outage) when the run
// drains — nothing is lost, nothing is double-counted.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <string>

#include "core/partition.h"
#include "models/zoo.h"
#include "sim/simulation.h"
#include "util/rng.h"

namespace leime::sim {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

const core::MeDnnPartition& test_partition() {
  static const core::MeDnnPartition partition = [] {
    const auto profile = models::make_squeezenet();
    return core::make_partition(profile, {4, 8, profile.num_units()});
  }();
  return partition;
}

ScenarioConfig base_scenario(const std::string& policy, std::uint64_t seed) {
  ScenarioConfig cfg;
  cfg.partition = test_partition();
  for (int i = 0; i < 2; ++i) {
    DeviceSpec dev;
    dev.flops = core::kRaspberryPiFlops;
    dev.mean_rate = 0.8;
    cfg.devices.push_back(dev);
  }
  cfg.policy = policy;
  cfg.duration = 20.0;
  cfg.warmup = 2.0;
  cfg.seed = seed;
  return cfg;
}

/// A random but valid plan: scheduled windows, stochastic rates, churn and
/// degradation knobs all drawn from `rng`. `never_heals` reports whether an
/// open-ended edge window was included (the only way tasks can stay
/// in-flight after the drain).
FaultPlan random_plan(util::Rng& rng, int devices, double duration,
                      bool* never_heals) {
  FaultPlan plan;
  plan.degradation.detection_timeout = rng.uniform(0.2, 1.0);
  plan.degradation.probe_period = rng.uniform(0.2, 0.8);
  if (rng.bernoulli(0.5)) {
    plan.degradation.task_timeout = rng.uniform(0.5, 3.0);
    plan.degradation.max_retries = static_cast<int>(rng.uniform_int(0, 3));
    plan.degradation.retry_backoff = rng.uniform(0.1, 0.5);
  }

  const auto n_edge = rng.uniform_int(0, 2);
  for (std::int64_t w = 0; w < n_edge; ++w) {
    const double start = rng.uniform(0.0, duration);
    plan.edge.windows.push_back({start, start + rng.uniform(1.0, 8.0)});
  }
  *never_heals = rng.bernoulli(0.15);
  if (*never_heals)
    plan.edge.windows.push_back({rng.uniform(0.3 * duration, duration), kInf});
  if (rng.bernoulli(0.5)) {
    plan.edge.rate = rng.uniform(0.0, 0.04);
    plan.edge.mean_downtime = rng.uniform(1.0, 5.0);
  }

  const auto n_link = rng.uniform_int(0, 2);
  for (std::int64_t w = 0; w < n_link; ++w) {
    const double start = rng.uniform(0.0, duration);
    plan.link.windows.push_back(
        {start, start + rng.uniform(1.0, 6.0),
         static_cast<int>(rng.uniform_int(-1, devices - 1))});
  }
  if (rng.bernoulli(0.5)) {
    plan.link.rate = rng.uniform(0.0, 0.03);
    plan.link.mean_duration = rng.uniform(0.5, 3.0);
  }

  if (rng.bernoulli(0.4)) {
    ChurnEvent e;
    e.device = static_cast<int>(rng.uniform_int(0, devices - 1));
    e.leave = rng.uniform(0.0, duration);
    e.rejoin = rng.bernoulli(0.5) ? e.leave + rng.uniform(1.0, 8.0) : -1.0;
    plan.churn.events.push_back(e);
  }
  return plan;
}

void expect_invariants(const SimResult& r, bool never_heals,
                       const std::string& label) {
  SCOPED_TRACE(label);
  // The conservation identity: every task is accounted for.
  EXPECT_EQ(r.generated, r.total_completed + r.in_flight);
  // The only legal way to stay in flight after the drain is to be parked
  // behind an edge that never returns.
  EXPECT_EQ(r.in_flight, r.faults.parked);
  if (!never_heals) {
    EXPECT_EQ(r.in_flight, 0u);
  }
  EXPECT_TRUE(r.generated == 0 || std::isfinite(r.tct.mean));
  // Per-device counters roll up exactly into the fleet counters.
  std::size_t failed = 0, retries = 0, slots = 0;
  for (const auto& d : r.per_device) {
    failed += d.failed_over;
    retries += d.retries;
    slots += d.fallback_slots;
  }
  EXPECT_EQ(failed, r.faults.failed_over);
  EXPECT_EQ(retries, r.faults.retries);
  EXPECT_EQ(slots, r.faults.fallback_slots);
}

TEST(FaultProperty, ConservationOver100RandomSchedules) {
  const char* policies[] = {"LEIME+fallback", "E-only", "cap_based"};
  for (int trial = 0; trial < 100; ++trial) {
    util::Rng rng(0xFA017u + 31u * static_cast<std::uint64_t>(trial));
    auto cfg = base_scenario(policies[trial % 3],
                             1000u + static_cast<std::uint64_t>(trial));
    bool never_heals = false;
    cfg.faults =
        random_plan(rng, static_cast<int>(cfg.devices.size()), cfg.duration,
                    &never_heals);
    const auto r = run_scenario(cfg);
    expect_invariants(r, never_heals,
                      "trial " + std::to_string(trial) + " policy " +
                          cfg.policy +
                          (never_heals ? " (edge never heals)" : ""));
  }
}

TEST(FaultProperty, RareFaultsDrainCompletely) {
  // With rare, always-healing faults the system stays stable: every task
  // completes and the time-averaged queues stay small.
  for (int trial = 0; trial < 10; ++trial) {
    auto cfg = base_scenario("LEIME+fallback",
                             500u + static_cast<std::uint64_t>(trial));
    cfg.faults.edge.rate = 0.005;
    cfg.faults.edge.mean_downtime = 2.0;
    cfg.faults.link.rate = 0.005;
    cfg.faults.link.mean_duration = 1.0;
    cfg.faults.degradation.detection_timeout = 0.5;
    cfg.faults.degradation.probe_period = 0.5;
    const auto r = run_scenario(cfg);
    SCOPED_TRACE("trial " + std::to_string(trial));
    EXPECT_EQ(r.generated, r.total_completed);
    EXPECT_EQ(r.in_flight, 0u);
    EXPECT_TRUE(std::isfinite(r.tct.mean));
    EXPECT_LT(r.mean_device_queue, 50.0);
  }
}

TEST(FaultProperty, FaultRunsAreSeedDeterministic) {
  auto make = [] {
    auto cfg = base_scenario("LEIME+fallback", 77);
    cfg.faults.edge.rate = 0.02;
    cfg.faults.link.rate = 0.02;
    cfg.faults.churn.events = {{1, 8.0, 14.0}};
    return cfg;
  };
  const auto a = run_scenario(make());
  const auto b = run_scenario(make());
  EXPECT_EQ(a.generated, b.generated);
  EXPECT_EQ(a.total_completed, b.total_completed);
  EXPECT_DOUBLE_EQ(a.tct.mean, b.tct.mean);
  EXPECT_EQ(a.faults.failed_over, b.faults.failed_over);
  EXPECT_EQ(a.faults.link_outages, b.faults.link_outages);
  EXPECT_EQ(a.faults.edge_crashes, b.faults.edge_crashes);
}

}  // namespace
}  // namespace leime::sim
