#include "sim/resources.h"

#include <gtest/gtest.h>

#include <limits>
#include <vector>

#include "util/check.h"

namespace leime::sim {
namespace {

TEST(FifoProcessor, SingleJobTiming) {
  EventQueue q;
  FifoProcessor cpu(q, "cpu", 100.0);
  double finish = -1.0;
  cpu.submit(250.0, JobClass::kBlock1, [&](double t) { finish = t; });
  EXPECT_EQ(cpu.pending(JobClass::kBlock1), 1);
  q.run_all();
  EXPECT_DOUBLE_EQ(finish, 2.5);
  EXPECT_EQ(cpu.pending(JobClass::kBlock1), 0);
}

TEST(FifoProcessor, FifoOrderingAndBackToBack) {
  EventQueue q;
  FifoProcessor cpu(q, "cpu", 10.0);
  std::vector<double> finishes;
  for (int i = 0; i < 3; ++i)
    cpu.submit(10.0, JobClass::kBlock1,
               [&](double t) { finishes.push_back(t); });
  q.run_all();
  ASSERT_EQ(finishes.size(), 3u);
  EXPECT_DOUBLE_EQ(finishes[0], 1.0);
  EXPECT_DOUBLE_EQ(finishes[1], 2.0);
  EXPECT_DOUBLE_EQ(finishes[2], 3.0);
  EXPECT_DOUBLE_EQ(cpu.total_work(), 30.0);
}

TEST(FifoProcessor, LateSubmissionStartsAtNow) {
  EventQueue q;
  FifoProcessor cpu(q, "cpu", 10.0);
  double finish = -1.0;
  q.schedule(5.0, [&] {
    cpu.submit(10.0, JobClass::kBlock2, [&](double t) { finish = t; });
  });
  q.run_all();
  EXPECT_DOUBLE_EQ(finish, 6.0);
}

TEST(FifoProcessor, TracksClassesSeparately) {
  EventQueue q;
  FifoProcessor cpu(q, "cpu", 1.0);
  cpu.submit(10.0, JobClass::kBlock1, [](double) {});
  cpu.submit(10.0, JobClass::kBlock2, [](double) {});
  cpu.submit(10.0, JobClass::kBlock1, [](double) {});
  EXPECT_EQ(cpu.pending(JobClass::kBlock1), 2);
  EXPECT_EQ(cpu.pending(JobClass::kBlock2), 1);
  EXPECT_EQ(cpu.pending_total(), 3);
  q.run_all();
  EXPECT_EQ(cpu.pending_total(), 0);
}

TEST(FifoProcessor, Validation) {
  EventQueue q;
  EXPECT_THROW(FifoProcessor(q, "bad", 0.0), std::invalid_argument);
  FifoProcessor cpu(q, "cpu", 1.0);
  EXPECT_THROW(cpu.submit(-1.0, JobClass::kBlock1, [](double) {}),
               std::invalid_argument);
}

TEST(Link, TransferTimingSerializationPlusLatency) {
  EventQueue q;
  Link link(q, "l", 100.0, 0.5);
  double t1 = -1.0, t2 = -1.0;
  link.transfer(200.0, [&](double t) { t1 = t; });  // 2s ser + 0.5 lat
  link.transfer(100.0, [&](double t) { t2 = t; });  // starts at 2, +1 +0.5
  q.run_all();
  EXPECT_DOUBLE_EQ(t1, 2.5);
  EXPECT_DOUBLE_EQ(t2, 3.5);
  EXPECT_DOUBLE_EQ(link.total_bytes(), 300.0);
}

TEST(Link, PropagationIsPipelined) {
  // Second transfer can start while the first is still propagating.
  EventQueue q;
  Link link(q, "l", 100.0, 10.0);
  double t1 = -1.0, t2 = -1.0;
  link.transfer(100.0, [&](double t) { t1 = t; });
  link.transfer(100.0, [&](double t) { t2 = t; });
  q.run_all();
  EXPECT_DOUBLE_EQ(t1, 11.0);
  EXPECT_DOUBLE_EQ(t2, 12.0);  // not 22: latency does not hold the link
}

TEST(Link, BandwidthTraceApplies) {
  EventQueue q;
  Link link(q, "l", 100.0, 0.0);
  link.set_bandwidth_trace(util::PiecewiseConstant({{0.0, 100.0}, {5.0, 10.0}}));
  double t1 = -1.0, t2 = -1.0;
  link.transfer(100.0, [&](double t) { t1 = t; });  // at bw 100 -> 1s
  q.schedule(6.0, [&] {
    link.transfer(100.0, [&](double t) { t2 = t; });  // at bw 10 -> 10s
  });
  q.run_all();
  EXPECT_DOUBLE_EQ(t1, 1.0);
  EXPECT_DOUBLE_EQ(t2, 16.0);
}

TEST(Link, LatencyTraceApplies) {
  EventQueue q;
  Link link(q, "l", 100.0, 0.1);
  link.set_latency_trace(util::PiecewiseConstant({{0.0, 0.1}, {5.0, 2.0}}));
  double t = -1.0;
  q.schedule(5.0, [&] { link.transfer(100.0, [&](double tt) { t = tt; }); });
  q.run_all();
  EXPECT_DOUBLE_EQ(t, 8.0);  // 5 + 1s serialization + 2s latency
}

TEST(Link, Validation) {
  EventQueue q;
  EXPECT_THROW(Link(q, "l", 0.0, 0.1), std::invalid_argument);
  EXPECT_THROW(Link(q, "l", 1.0, -0.1), std::invalid_argument);
  Link link(q, "l", 1.0, 0.0);
  EXPECT_THROW(link.transfer(-1.0, [](double) {}), std::invalid_argument);
  EXPECT_THROW(
      link.set_bandwidth_trace(util::PiecewiseConstant::constant(0.0)),
      std::invalid_argument);
  EXPECT_THROW(
      link.set_latency_trace(util::PiecewiseConstant::constant(-1.0)),
      std::invalid_argument);
}

TEST(Link, ZeroByteTransferIsLatencyOnly) {
  EventQueue q;
  Link link(q, "l", 100.0, 0.25);
  double t = -1.0;
  link.transfer(0.0, [&](double tt) { t = tt; });
  q.run_all();
  EXPECT_DOUBLE_EQ(t, 0.25);
}

}  // namespace
}  // namespace leime::sim
namespace leime::sim {
namespace {

TEST(FifoProcessor, RestartResetsPendingCountersAndBusyUntil) {
  EventQueue q;
  FifoProcessor cpu(q, "edge", 10.0);
  std::vector<double> finishes;
  cpu.submit(10.0, JobClass::kBlock1,
             [&](double t) { finishes.push_back(t); });  // finishes at 1.0
  cpu.submit(20.0, JobClass::kBlock2,
             [&](double t) { finishes.push_back(t); });  // finishes at 3.0
  EXPECT_EQ(cpu.pending_total(), 2);

  q.schedule(0.5, [&] {
    cpu.restart(0.5);
    EXPECT_EQ(cpu.pending(JobClass::kBlock1), 0);
    EXPECT_EQ(cpu.pending(JobClass::kBlock2), 0);
    EXPECT_DOUBLE_EQ(cpu.busy_until(), 0.5);
    // A post-crash job starts on the now-empty server.
    cpu.submit(5.0, JobClass::kBlock3,
               [&](double t) { finishes.push_back(t); });
    EXPECT_EQ(cpu.pending(JobClass::kBlock3), 1);
  });

  // Pre-crash completions still fire, but must not drive the zeroed
  // counters negative (the pre-epoch-guard bug tripped LEIME_CHECK here).
  EXPECT_NO_THROW(q.run_all());
  ASSERT_EQ(finishes.size(), 3u);
  EXPECT_DOUBLE_EQ(finishes[0], 1.0);   // pre-crash, fires anyway
  EXPECT_DOUBLE_EQ(finishes[1], 1.0);   // 0.5 + 5.0/10.0 post-crash job
  EXPECT_DOUBLE_EQ(finishes[2], 3.0);   // pre-crash, fires anyway
  EXPECT_EQ(cpu.pending_total(), 0);
}

TEST(FifoProcessor, DoubleRestartStaysConsistent) {
  EventQueue q;
  FifoProcessor cpu(q, "edge", 10.0);
  for (int crash = 0; crash < 2; ++crash) {
    cpu.submit(100.0, JobClass::kBlock1, [](double) {});
    cpu.restart(q.now());
    EXPECT_EQ(cpu.pending_total(), 0);
  }
  EXPECT_NO_THROW(q.run_all());
  EXPECT_EQ(cpu.pending_total(), 0);
}

TEST(Link, OutageWindowValidation) {
  EventQueue q;
  Link link(q, "l", 100.0, 0.0);
  const double nan = std::numeric_limits<double>::quiet_NaN();
  const double inf = std::numeric_limits<double>::infinity();
  EXPECT_THROW(link.set_outage_windows({{2.0, 1.0}}), util::CheckError);
  EXPECT_THROW(link.set_outage_windows({{1.0, 1.0}}), util::CheckError);
  EXPECT_THROW(link.set_outage_windows({{3.0, 4.0}, {1.0, 2.0}}),
               util::CheckError);  // unsorted
  EXPECT_THROW(link.set_outage_windows({{1.0, 3.0}, {2.0, 4.0}}),
               util::CheckError);  // overlapping
  EXPECT_THROW(link.set_outage_windows({{nan, 1.0}}), util::CheckError);
  EXPECT_THROW(link.set_outage_windows({{1.0, nan}}), util::CheckError);
  EXPECT_THROW(link.set_outage_windows({{1.0, inf}}), util::CheckError);
  // Adjacent windows are disjoint: [1,2) then [2,3) is legal.
  EXPECT_NO_THROW(link.set_outage_windows({{1.0, 2.0}, {2.0, 3.0}}));
}

TEST(Link, TransferStartingAtOutageBoundaries) {
  EventQueue q;
  Link link(q, "l", 100.0, 0.0);
  link.set_outage_windows({{1.0, 2.0}});
  EXPECT_FALSE(link.up_at(1.0));  // [start, end): down at start...
  EXPECT_TRUE(link.up_at(2.0));   // ...up again exactly at end

  double at_start = -1.0, at_end = -1.0;
  // Starting exactly when the window opens: held for its full duration.
  q.schedule(1.0, [&] {
    link.transfer(100.0, [&](double t) { at_start = t; });
  });
  // Starting exactly when the window closes: queued behind the held
  // transfer, no extra hold.
  q.schedule(2.0, [&] {
    link.transfer(100.0, [&](double t) { at_end = t; });
  });
  q.run_all();
  EXPECT_DOUBLE_EQ(at_start, 3.0);  // resumes at 2.0, +1s serialization
  EXPECT_DOUBLE_EQ(at_end, 4.0);
}

TEST(Link, TransferStraddlingAnOutageIsHeldNotLost) {
  EventQueue q;
  Link link(q, "l", 100.0, 0.0);
  link.set_outage_windows({{1.0, 3.0}});
  double t1 = -1.0, t2 = -1.0;
  link.transfer(50.0, [&](double t) { t1 = t; });   // fits before the window
  link.transfer(100.0, [&](double t) { t2 = t; });  // 0.5s before, 0.5 after
  q.run_all();
  EXPECT_DOUBLE_EQ(t1, 0.5);
  EXPECT_DOUBLE_EQ(t2, 3.5);
  EXPECT_DOUBLE_EQ(link.total_bytes(), 150.0);  // held, not dropped
}

TEST(Link, ZeroByteTransferDuringOutageWaitsForTheWindow) {
  EventQueue q;
  Link link(q, "l", 100.0, 0.25);
  link.set_outage_windows({{1.0, 2.0}});
  double t = -1.0;
  q.schedule(1.5, [&] { link.transfer(0.0, [&](double tt) { t = tt; }); });
  q.run_all();
  // Control traffic pays no serialization but cannot cross a down link:
  // released at the window end, then pays propagation.
  EXPECT_DOUBLE_EQ(t, 2.25);
}

TEST(Link, ExtraLatencyPerTransfer) {
  EventQueue q;
  Link link(q, "ap", 100.0, 0.5);
  double t1 = -1.0, t2 = -1.0;
  link.transfer(100.0, 0.25, [&](double t) { t1 = t; });
  link.transfer(100.0, 1.0, [&](double t) { t2 = t; });
  q.run_all();
  EXPECT_DOUBLE_EQ(t1, 1.0 + 0.5 + 0.25);
  EXPECT_DOUBLE_EQ(t2, 2.0 + 0.5 + 1.0);
  EXPECT_THROW(link.transfer(1.0, -0.1, [](double) {}),
               std::invalid_argument);
}

}  // namespace
}  // namespace leime::sim
