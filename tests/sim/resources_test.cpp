#include "sim/resources.h"

#include <gtest/gtest.h>

#include <vector>

namespace leime::sim {
namespace {

TEST(FifoProcessor, SingleJobTiming) {
  EventQueue q;
  FifoProcessor cpu(q, "cpu", 100.0);
  double finish = -1.0;
  cpu.submit(250.0, JobClass::kBlock1, [&](double t) { finish = t; });
  EXPECT_EQ(cpu.pending(JobClass::kBlock1), 1);
  q.run_all();
  EXPECT_DOUBLE_EQ(finish, 2.5);
  EXPECT_EQ(cpu.pending(JobClass::kBlock1), 0);
}

TEST(FifoProcessor, FifoOrderingAndBackToBack) {
  EventQueue q;
  FifoProcessor cpu(q, "cpu", 10.0);
  std::vector<double> finishes;
  for (int i = 0; i < 3; ++i)
    cpu.submit(10.0, JobClass::kBlock1,
               [&](double t) { finishes.push_back(t); });
  q.run_all();
  ASSERT_EQ(finishes.size(), 3u);
  EXPECT_DOUBLE_EQ(finishes[0], 1.0);
  EXPECT_DOUBLE_EQ(finishes[1], 2.0);
  EXPECT_DOUBLE_EQ(finishes[2], 3.0);
  EXPECT_DOUBLE_EQ(cpu.total_work(), 30.0);
}

TEST(FifoProcessor, LateSubmissionStartsAtNow) {
  EventQueue q;
  FifoProcessor cpu(q, "cpu", 10.0);
  double finish = -1.0;
  q.schedule(5.0, [&] {
    cpu.submit(10.0, JobClass::kBlock2, [&](double t) { finish = t; });
  });
  q.run_all();
  EXPECT_DOUBLE_EQ(finish, 6.0);
}

TEST(FifoProcessor, TracksClassesSeparately) {
  EventQueue q;
  FifoProcessor cpu(q, "cpu", 1.0);
  cpu.submit(10.0, JobClass::kBlock1, [](double) {});
  cpu.submit(10.0, JobClass::kBlock2, [](double) {});
  cpu.submit(10.0, JobClass::kBlock1, [](double) {});
  EXPECT_EQ(cpu.pending(JobClass::kBlock1), 2);
  EXPECT_EQ(cpu.pending(JobClass::kBlock2), 1);
  EXPECT_EQ(cpu.pending_total(), 3);
  q.run_all();
  EXPECT_EQ(cpu.pending_total(), 0);
}

TEST(FifoProcessor, Validation) {
  EventQueue q;
  EXPECT_THROW(FifoProcessor(q, "bad", 0.0), std::invalid_argument);
  FifoProcessor cpu(q, "cpu", 1.0);
  EXPECT_THROW(cpu.submit(-1.0, JobClass::kBlock1, [](double) {}),
               std::invalid_argument);
}

TEST(Link, TransferTimingSerializationPlusLatency) {
  EventQueue q;
  Link link(q, "l", 100.0, 0.5);
  double t1 = -1.0, t2 = -1.0;
  link.transfer(200.0, [&](double t) { t1 = t; });  // 2s ser + 0.5 lat
  link.transfer(100.0, [&](double t) { t2 = t; });  // starts at 2, +1 +0.5
  q.run_all();
  EXPECT_DOUBLE_EQ(t1, 2.5);
  EXPECT_DOUBLE_EQ(t2, 3.5);
  EXPECT_DOUBLE_EQ(link.total_bytes(), 300.0);
}

TEST(Link, PropagationIsPipelined) {
  // Second transfer can start while the first is still propagating.
  EventQueue q;
  Link link(q, "l", 100.0, 10.0);
  double t1 = -1.0, t2 = -1.0;
  link.transfer(100.0, [&](double t) { t1 = t; });
  link.transfer(100.0, [&](double t) { t2 = t; });
  q.run_all();
  EXPECT_DOUBLE_EQ(t1, 11.0);
  EXPECT_DOUBLE_EQ(t2, 12.0);  // not 22: latency does not hold the link
}

TEST(Link, BandwidthTraceApplies) {
  EventQueue q;
  Link link(q, "l", 100.0, 0.0);
  link.set_bandwidth_trace(util::PiecewiseConstant({{0.0, 100.0}, {5.0, 10.0}}));
  double t1 = -1.0, t2 = -1.0;
  link.transfer(100.0, [&](double t) { t1 = t; });  // at bw 100 -> 1s
  q.schedule(6.0, [&] {
    link.transfer(100.0, [&](double t) { t2 = t; });  // at bw 10 -> 10s
  });
  q.run_all();
  EXPECT_DOUBLE_EQ(t1, 1.0);
  EXPECT_DOUBLE_EQ(t2, 16.0);
}

TEST(Link, LatencyTraceApplies) {
  EventQueue q;
  Link link(q, "l", 100.0, 0.1);
  link.set_latency_trace(util::PiecewiseConstant({{0.0, 0.1}, {5.0, 2.0}}));
  double t = -1.0;
  q.schedule(5.0, [&] { link.transfer(100.0, [&](double tt) { t = tt; }); });
  q.run_all();
  EXPECT_DOUBLE_EQ(t, 8.0);  // 5 + 1s serialization + 2s latency
}

TEST(Link, Validation) {
  EventQueue q;
  EXPECT_THROW(Link(q, "l", 0.0, 0.1), std::invalid_argument);
  EXPECT_THROW(Link(q, "l", 1.0, -0.1), std::invalid_argument);
  Link link(q, "l", 1.0, 0.0);
  EXPECT_THROW(link.transfer(-1.0, [](double) {}), std::invalid_argument);
  EXPECT_THROW(
      link.set_bandwidth_trace(util::PiecewiseConstant::constant(0.0)),
      std::invalid_argument);
  EXPECT_THROW(
      link.set_latency_trace(util::PiecewiseConstant::constant(-1.0)),
      std::invalid_argument);
}

TEST(Link, ZeroByteTransferIsLatencyOnly) {
  EventQueue q;
  Link link(q, "l", 100.0, 0.25);
  double t = -1.0;
  link.transfer(0.0, [&](double tt) { t = tt; });
  q.run_all();
  EXPECT_DOUBLE_EQ(t, 0.25);
}

}  // namespace
}  // namespace leime::sim
namespace leime::sim {
namespace {

TEST(Link, ExtraLatencyPerTransfer) {
  EventQueue q;
  Link link(q, "ap", 100.0, 0.5);
  double t1 = -1.0, t2 = -1.0;
  link.transfer(100.0, 0.25, [&](double t) { t1 = t; });
  link.transfer(100.0, 1.0, [&](double t) { t2 = t; });
  q.run_all();
  EXPECT_DOUBLE_EQ(t1, 1.0 + 0.5 + 0.25);
  EXPECT_DOUBLE_EQ(t2, 2.0 + 0.5 + 1.0);
  EXPECT_THROW(link.transfer(1.0, -0.1, [](double) {}),
               std::invalid_argument);
}

}  // namespace
}  // namespace leime::sim
