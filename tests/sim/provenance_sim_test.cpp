// End-to-end decision provenance (DESIGN.md §14): the pillar must not
// perturb the run, its summary rides SimResult into thread-count-invariant
// runtime JSONL, an SLO fire dumps the flight-recorder window, and the
// dumped records honor the regret contracts (regret >= 0 everywhere,
// memo-hit decisions exactly equal to their oracle cost).
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "core/exit_setting.h"
#include "models/zoo.h"
#include "policy/engine.h"
#include "runtime/executor.h"
#include "runtime/experiment_plan.h"
#include "runtime/sinks.h"
#include "sim/observer.h"
#include "sim/simulation.h"

namespace leime::sim {
namespace {

ScenarioConfig small_fleet(int devices = 2) {
  const auto profile = models::make_inception_v3();
  ScenarioConfig cfg;
  cfg.partition = core::make_partition(profile, {3, 10, profile.num_units()});
  for (int i = 0; i < devices; ++i) {
    DeviceSpec d;
    d.mean_rate = 2.0;
    cfg.devices.push_back(d);
  }
  cfg.duration = 30.0;
  cfg.warmup = 2.0;
  return cfg;
}

/// Value text right after `"key":` on a single-line JSON object.
std::string field(const std::string& line, const std::string& key) {
  const std::string needle = "\"" + key + "\":";
  const auto pos = line.find(needle);
  if (pos == std::string::npos) return {};
  std::size_t v = pos + needle.size();
  if (line[v] == '"') {
    const auto end = line.find('"', v + 1);
    return line.substr(v + 1, end - v - 1);
  }
  std::size_t end = v;
  while (end < line.size() && line[end] != ',' && line[end] != '}') ++end;
  return line.substr(v, end - v);
}

TEST(ProvenanceSim, DoesNotPerturbTheRunAndRidesSimResult) {
  auto cfg = small_fleet();
  const auto off = run_scenario(cfg);
  EXPECT_FALSE(off.provenance.active);

  const std::string dir = ::testing::TempDir();
  cfg.obs.provenance.sample_n = 1;
  cfg.obs.provenance.oracle_sample_n = 2;
  cfg.obs.provenance.decisions_out = dir + "prov_decisions.jsonl";
  const auto on = run_scenario(cfg);

  // Null-object contract: the pillar consumes no randomness and schedules
  // no events, so every simulated outcome is bit-identical.
  EXPECT_EQ(on.generated, off.generated);
  EXPECT_EQ(on.total_completed, off.total_completed);
  EXPECT_DOUBLE_EQ(on.tct.mean, off.tct.mean);
  EXPECT_DOUBLE_EQ(on.tct.p95, off.tct.p95);
  EXPECT_DOUBLE_EQ(on.mean_offload_ratio, off.mean_offload_ratio);

  ASSERT_TRUE(on.provenance.active);
  EXPECT_GT(on.provenance.decisions, 0u);
  EXPECT_EQ(on.provenance.sampled, on.provenance.decisions);  // 1-in-1
  EXPECT_GT(on.provenance.oracle_runs, 0u);
  EXPECT_LT(on.provenance.oracle_runs, on.provenance.sampled);  // 1-in-2
  // Per-slot decisions with no policy engine run the direct path.
  EXPECT_EQ(on.provenance.paths[static_cast<std::size_t>(
                obs::DecisionPath::kDirect)],
            on.provenance.sampled);

  std::ifstream decisions(cfg.obs.provenance.decisions_out);
  ASSERT_TRUE(decisions.good());
  std::string line;
  std::size_t lines = 0;
  while (std::getline(decisions, line)) {
    ++lines;
    EXPECT_EQ(field(line, "type"), "decision");
    EXPECT_EQ(field(line, "kind"), "offload");
    // Every oracle-checked record satisfies regret >= 0 by construction.
    const auto regret = field(line, "regret");
    if (regret != "null") {
      EXPECT_GE(std::stod(regret), 0.0);
    }
  }
  // The export is the bounded window, not an unbounded log.
  EXPECT_GT(lines, 0u);
  EXPECT_LE(lines, cfg.obs.provenance.ring_capacity);
  std::remove(cfg.obs.provenance.decisions_out.c_str());
}

// The PR's acceptance scenario: an impossible deadline fires the SLO
// monitor, which dumps the flight recorder; the dump's records must all
// have regret >= 0, and memo-hit decisions must equal their oracle cost
// *exactly* (string-identical round-trip serialization, i.e. bit-equal).
TEST(ProvenanceSim, SloFireDumpsFlightRecorderHonoringRegretContracts) {
  auto cfg = small_fleet();
  const std::string dir = ::testing::TempDir();
  ObsConfig obs_cfg;
  obs_cfg.provenance.sample_n = 1;
  obs_cfg.provenance.oracle_sample_n = 1;
  obs_cfg.provenance.ring_capacity = 4096;  // keep every decision in window
  obs_cfg.provenance.dump_out = dir + "prov_flight.jsonl";
  obs_cfg.slo.deadline = 1e-4;  // every completion misses
  obs_cfg.slo.window = 10.0;
  obs_cfg.slo.target_miss_rate = 0.01;
  obs_cfg.slo.burn_threshold = 1.0;
  obs_cfg.slo.min_window_tasks = 5;
  RecordingObserver obs(obs_cfg, cfg.devices.size(), {"cam", "cam"});

  // Seed the flight recorder with engine decisions: a cold search and a
  // memo replay of the same observation, both oracle-checked.
  policy::Config pol;
  pol.memo_cache = true;
  policy::Engine engine(pol);
  engine.attach_provenance(obs.provenance());
  const auto profile = models::make_inception_v3();
  const core::CostModel cm(profile, core::testbed_environment());
  const auto first = engine.exit_setting(cm);
  const auto replay = engine.exit_setting(cm);
  EXPECT_EQ(replay.combo, first.combo);
  EXPECT_EQ(replay.cost, first.cost);
  EXPECT_EQ(engine.stats().cache_hits, 1u);

  cfg.observer = &obs;
  const auto r = run_scenario(cfg);
  ASSERT_GT(r.completed, 20u);
  const auto sum = obs.provenance_summary();
  ASSERT_TRUE(sum.active);
  EXPECT_GE(sum.dumps, 1u);
  EXPECT_EQ(sum.paths[static_cast<std::size_t>(obs::DecisionPath::kMemoHit)],
            1u);
  EXPECT_EQ(sum.paths[static_cast<std::size_t>(obs::DecisionPath::kCold)],
            1u);
  // Oracle on every sample and zero regret histogram mass above zero for
  // exit settings (the §12 bit-identity watchdog).
  const auto& exit_hist = sum.kind_regret[static_cast<std::size_t>(
      obs::DecisionKind::kExitSetting)];
  EXPECT_EQ(exit_hist.stats().count(), 2u);
  EXPECT_DOUBLE_EQ(exit_hist.stats().max(), 0.0);

  std::ifstream dump(obs_cfg.provenance.dump_out);
  ASSERT_TRUE(dump.good());
  std::string line;
  std::size_t alerts = 0, decisions = 0, memo_hits = 0;
  while (std::getline(dump, line)) {
    const auto type = field(line, "type");
    if (type == "alert") {
      ++alerts;
      EXPECT_EQ(field(line, "class"), "cam");
      EXPECT_GE(std::stod(field(line, "burn")), 1.0);
    } else if (type == "decision") {
      ++decisions;
      const auto regret = field(line, "regret");
      ASSERT_NE(regret, "null");  // 1-in-1 oracle: every record checked
      EXPECT_GE(std::stod(regret), 0.0);
      if (field(line, "path") == "memo_hit") {
        ++memo_hits;
        // Exact equality: the serialized numbers are shortest-round-trip,
        // so identical text means identical doubles.
        EXPECT_EQ(field(line, "cost"), field(line, "oracle_cost"));
        EXPECT_EQ(regret, "0");
        EXPECT_EQ(field(line, "explored"), "0");  // replays search nothing
      }
    }
  }
  EXPECT_EQ(alerts, sum.dumps);
  EXPECT_GT(decisions, 2u);
  EXPECT_EQ(memo_hits, 1u);
  std::remove(obs_cfg.provenance.dump_out.c_str());
}

// The runtime contract: per-cell provenance summaries ride RunRecord and
// the JSONL sink renders identical bytes for any executor thread count
// (plan-order merge, no wall-clock in the deterministic stream).
TEST(ProvenanceSim, RuntimeJsonlIsThreadCountInvariant) {
  auto cfg = small_fleet(1);
  cfg.duration = 8.0;
  cfg.warmup = 1.0;
  cfg.obs.provenance.sample_n = 2;
  cfg.obs.provenance.oracle_sample_n = 4;
  runtime::ExperimentPlan plan(cfg);
  plan.replications(4).base_seed(11);

  runtime::ExecutorOptions one, four;
  one.threads = 1;
  four.threads = 4;
  const auto a = runtime::Executor(one).run(plan);
  const auto b = runtime::Executor(four).run(plan);
  ASSERT_EQ(a.size(), 4u);
  ASSERT_EQ(b.size(), 4u);
  for (const auto& rec : a) {
    ASSERT_TRUE(rec.result.provenance.active);
    EXPECT_GT(rec.result.provenance.sampled, 0u);
  }

  runtime::JsonlOptions opts;
  opts.include_timing = false;
  std::ostringstream text_a, text_b;
  runtime::write_jsonl(text_a, plan.axis_names(), a, opts);
  runtime::write_jsonl(text_b, plan.axis_names(), b, opts);
  EXPECT_FALSE(text_a.str().empty());
  EXPECT_EQ(text_a.str(), text_b.str());
  EXPECT_NE(text_a.str().find("\"provenance\":{\"decisions\":"),
            std::string::npos);

  // Disabled runs keep their exact prior bytes: no provenance key at all.
  auto plain_cfg = cfg;
  plain_cfg.obs.provenance = {};
  runtime::ExperimentPlan plain(plain_cfg);
  plain.replications(2).base_seed(11);
  const auto c = runtime::Executor(one).run(plain);
  std::ostringstream text_c;
  runtime::write_jsonl(text_c, plain.axis_names(), c, opts);
  EXPECT_EQ(text_c.str().find("provenance"), std::string::npos);
}

}  // namespace
}  // namespace leime::sim
