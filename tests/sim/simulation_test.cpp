#include "sim/simulation.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "core/exit_setting.h"
#include "models/zoo.h"

namespace leime::sim {
namespace {

ScenarioConfig base_scenario(int devices = 2) {
  const auto profile = models::make_inception_v3();
  ScenarioConfig cfg;
  cfg.partition = core::make_partition(profile, {3, 10, profile.num_units()});
  for (int i = 0; i < devices; ++i) {
    DeviceSpec d;
    d.mean_rate = 2.0;
    cfg.devices.push_back(d);
  }
  cfg.duration = 30.0;
  cfg.warmup = 2.0;
  return cfg;
}

TEST(Simulation, CompletesAllGeneratedTasks) {
  auto cfg = base_scenario();
  const auto r = run_scenario(cfg);
  EXPECT_GT(r.generated, 50u);
  // The run drains after generation stops, so all counted tasks complete.
  EXPECT_GT(r.completed, 0u);
  EXPECT_GT(r.tct.mean, 0.0);
  EXPECT_GT(r.tct.p95, r.tct.p50);
}

TEST(Simulation, DeterministicForSeed) {
  auto cfg = base_scenario();
  const auto r1 = run_scenario(cfg);
  const auto r2 = run_scenario(cfg);
  EXPECT_EQ(r1.generated, r2.generated);
  EXPECT_DOUBLE_EQ(r1.tct.mean, r2.tct.mean);
  EXPECT_DOUBLE_EQ(r1.mean_offload_ratio, r2.mean_offload_ratio);
}

TEST(Simulation, SeedChangesOutcome) {
  auto cfg = base_scenario();
  const auto r1 = run_scenario(cfg);
  cfg.seed = 43;
  const auto r2 = run_scenario(cfg);
  EXPECT_NE(r1.tct.mean, r2.tct.mean);
}

TEST(Simulation, ExitFractionsTrackSigmas) {
  auto cfg = base_scenario(1);
  cfg.duration = 120.0;
  cfg.devices[0].mean_rate = 4.0;
  const auto r = run_scenario(cfg);
  EXPECT_NEAR(r.exit1_fraction, cfg.partition.sigma1, 0.06);
  EXPECT_NEAR(r.exit1_fraction + r.exit2_fraction, cfg.partition.sigma2,
              0.06);
  EXPECT_NEAR(
      r.exit1_fraction + r.exit2_fraction + r.exit3_fraction, 1.0, 1e-9);
}

TEST(Simulation, DifficultyShiftsExitFractions) {
  auto cfg = base_scenario(1);
  cfg.devices[0].difficulty = 4.0;  // harder data
  const auto hard = run_scenario(cfg);
  cfg.devices[0].difficulty = 0.25;  // easier data
  const auto easy = run_scenario(cfg);
  EXPECT_GT(easy.exit1_fraction, hard.exit1_fraction);
}

TEST(Simulation, PolicySelection) {
  auto cfg = base_scenario(1);
  cfg.policy = "D-only";
  const auto d = run_scenario(cfg);
  EXPECT_DOUBLE_EQ(d.mean_offload_ratio, 0.0);
  cfg.policy = "E-only";
  const auto e = run_scenario(cfg);
  EXPECT_DOUBLE_EQ(e.mean_offload_ratio, 1.0);
  cfg.policy = "LEIME";
  cfg.fixed_ratio = 0.4;
  const auto f = run_scenario(cfg);
  EXPECT_DOUBLE_EQ(f.mean_offload_ratio, 0.4);
}

TEST(Simulation, LeimeHandlesOverloadBetterThanDeviceOnly) {
  // Use the optimised partition (deep First-exit) so offloading is viable,
  // then push arrivals beyond the device's first-block capacity: LEIME can
  // drain through both the device and the uplink, D-only cannot.
  const auto profile = models::make_inception_v3();
  core::CostModel cm(profile, core::testbed_environment());
  const auto combo = core::branch_and_bound_exit_setting(cm).combo;
  auto cfg = base_scenario(1);
  cfg.partition = core::make_partition(profile, combo);
  cfg.devices[0].mean_rate = 2.5;
  cfg.duration = 60.0;
  cfg.policy = "D-only";
  const auto donly = run_scenario(cfg);
  cfg.policy = "LEIME";
  const auto leime = run_scenario(cfg);
  EXPECT_LT(leime.tct.mean, donly.tct.mean);
}

TEST(Simulation, TimelineCoversRun) {
  auto cfg = base_scenario(1);
  const auto r = run_scenario(cfg);
  ASSERT_FALSE(r.timeline.empty());
  EXPECT_GT(r.timeline.back().time, 0.5 * cfg.duration);
  std::size_t total = 0;
  for (const auto& p : r.timeline) total += p.count;
  EXPECT_EQ(total, r.completed);
}

TEST(Simulation, UplinkShapingSlowsTasks) {
  auto cfg = base_scenario(1);
  cfg.policy = "E-only";  // every task crosses the uplink
  const auto fast = run_scenario(cfg);
  cfg.devices[0].uplink_bw_trace =
      util::PiecewiseConstant::constant(util::mbps(1.0));
  const auto slow = run_scenario(cfg);
  EXPECT_GT(slow.tct.mean, fast.tct.mean);
}

TEST(Simulation, Validation) {
  ScenarioConfig cfg;
  EXPECT_THROW(run_scenario(cfg), std::invalid_argument);  // no devices
  auto ok = base_scenario();
  ok.duration = 0.0;
  EXPECT_THROW(run_scenario(ok), std::invalid_argument);
  ok = base_scenario();
  ok.warmup = ok.duration + 1.0;
  EXPECT_THROW(run_scenario(ok), std::invalid_argument);
  ok = base_scenario();
  ok.policy = "unknown";
  EXPECT_THROW(run_scenario(ok), std::invalid_argument);
}

}  // namespace
}  // namespace leime::sim
namespace leime::sim {
namespace {

TEST(Simulation, DynamicReallocationTracksLoadSwap) {
  // Two identical devices whose loads swap mid-run. Static shares are
  // designed for the initial rates; dynamic reallocation re-balances after
  // the swap and must not be worse overall.
  const auto profile = models::make_inception_v3();
  core::CostModel cm(profile, core::testbed_environment());
  const auto part = core::make_partition(
      profile, core::branch_and_bound_exit_setting(cm).combo);

  auto make_cfg = [&](double realloc_period) {
    ScenarioConfig cfg;
    cfg.partition = part;
    for (int i = 0; i < 2; ++i) {
      DeviceSpec dev;
      dev.arrival = ArrivalKind::kTrace;
      cfg.devices.push_back(dev);
    }
    // Device 0: busy then idle; device 1: idle then busy.
    cfg.devices[0].mean_rate = 1.0;
    cfg.devices[0].rate_trace =
        util::PiecewiseConstant({{0.0, 1.5}, {60.0, 0.1}});
    cfg.devices[1].mean_rate = 0.1;
    cfg.devices[1].rate_trace =
        util::PiecewiseConstant({{0.0, 0.1}, {60.0, 1.5}});
    cfg.duration = 120.0;
    cfg.reallocation_period = realloc_period;
    return cfg;
  };

  const auto fixed = run_scenario(make_cfg(0.0));
  const auto dynamic = run_scenario(make_cfg(10.0));
  EXPECT_LE(dynamic.tct.mean, fixed.tct.mean * 1.05);
}

TEST(Simulation, ReallocationValidation) {
  auto cfg = base_scenario();
  cfg.reallocation_period = -1.0;
  EXPECT_THROW(run_scenario(cfg), std::invalid_argument);
}

TEST(Simulation, PerDeviceResultsAreConsistent) {
  auto cfg = base_scenario(3);
  const auto r = run_scenario(cfg);
  ASSERT_EQ(r.per_device.size(), 3u);
  std::size_t total = 0;
  for (const auto& d : r.per_device) {
    total += d.completed;
    EXPECT_GE(d.mean_offload_ratio, 0.0);
    EXPECT_LE(d.mean_offload_ratio, 1.0);
  }
  EXPECT_EQ(total, r.completed);
}

}  // namespace
}  // namespace leime::sim
namespace leime::sim {
namespace {

TEST(Simulation, ResultDownlinkAddsReturnTime) {
  auto cfg = base_scenario(1);
  cfg.devices[0].mean_rate = 0.2;  // light load: isolate the return path
  cfg.policy = "E-only";           // all completions return from edge/cloud
  cfg.duration = 120.0;
  const auto free_results = run_scenario(cfg);
  cfg.result_bytes = 50e3;  // 50 KB result
  const auto returned = run_scenario(cfg);
  // Each returned task pays >= result transfer + propagation once.
  const double per_return =
      cfg.result_bytes / cfg.devices[0].uplink_bw + cfg.devices[0].uplink_lat;
  EXPECT_GT(returned.tct.mean, free_results.tct.mean + 0.8 * per_return);
}

TEST(Simulation, CloudFifoCreatesContention) {
  auto cfg = base_scenario(1);
  // Force heavy block-3 traffic: hard data, everything offloaded.
  cfg.devices[0].difficulty = 8.0;
  cfg.devices[0].mean_rate = 2.0;
  cfg.policy = "E-only";
  cfg.cloud_flops = 2e9;  // tiny "cloud": block-3 service slower than its arrival rate
  const auto uncontended = run_scenario(cfg);
  cfg.cloud_fifo = true;
  const auto contended = run_scenario(cfg);
  EXPECT_GT(contended.tct.mean, uncontended.tct.mean);
}

}  // namespace
}  // namespace leime::sim
namespace leime::sim {
namespace {

TEST(Simulation, TaskTraceExport) {
  auto cfg = base_scenario(1);
  cfg.duration = 15.0;
  cfg.task_trace_path = testing::TempDir() + "/leime_task_trace.csv";
  const auto r = run_scenario(cfg);
  std::ifstream in(cfg.task_trace_path);
  ASSERT_TRUE(in.good());
  std::string line;
  std::getline(in, line);
  EXPECT_EQ(line,
            "task,device,t_arrive,t_complete,tct,exit_block,offloaded,counted");
  std::size_t rows = 0;
  while (std::getline(in, line)) ++rows;
  EXPECT_EQ(rows, r.generated);
  std::remove(cfg.task_trace_path.c_str());
}

}  // namespace
}  // namespace leime::sim
namespace leime::sim {
namespace {

TEST(Simulation, SharedUplinkSerializesDevices) {
  // Four devices offloading everything: dedicated 10 Mbps each vs one
  // shared 10 Mbps AP. The shared medium must be far slower.
  const auto profile = models::make_inception_v3();
  core::CostModel cm(profile, core::testbed_environment());
  auto cfg = base_scenario(4);
  cfg.partition = core::make_partition(
      profile, core::branch_and_bound_exit_setting(cm).combo);
  for (auto& d : cfg.devices) d.mean_rate = 0.5;
  cfg.policy = "E-only";
  cfg.duration = 60.0;
  const auto dedicated = run_scenario(cfg);
  cfg.shared_uplink_bw = util::mbps(10.0);
  const auto shared = run_scenario(cfg);
  EXPECT_GT(shared.tct.mean, 1.5 * dedicated.tct.mean);
}

TEST(Simulation, SharedUplinkKeepsPerDeviceLatency) {
  // One device on the shared medium behaves like a dedicated link of the
  // same bandwidth: the extra latency must be applied once per transfer.
  auto cfg = base_scenario(1);
  cfg.devices[0].mean_rate = 0.2;
  cfg.policy = "E-only";
  cfg.duration = 100.0;
  const auto dedicated = run_scenario(cfg);
  cfg.shared_uplink_bw = cfg.devices[0].uplink_bw;
  const auto shared = run_scenario(cfg);
  EXPECT_NEAR(shared.tct.mean, dedicated.tct.mean,
              0.05 * dedicated.tct.mean);
}

TEST(Simulation, LeimeThrottlesOnSharedMedium) {
  // On a saturated shared AP the controller sees the shared backlog and
  // keeps more work local than E-only, winning on TCT. This requires a
  // partition where the local path puts FEWER bytes on the medium
  // (d0 > (1-sigma1)*d1, i.e. a deep First-exit) and devices fast enough
  // to absorb the local work: Jetson Nanos with exits (10, 14).
  const auto profile = models::make_inception_v3();
  auto cfg = base_scenario(4);
  cfg.partition =
      core::make_partition(profile, {10, 14, profile.num_units()});
  ASSERT_GT(cfg.partition.d0,
            (1.0 - cfg.partition.sigma1) * cfg.partition.d1);
  for (auto& d : cfg.devices) {
    d.flops = core::kJetsonNanoFlops;
    d.mean_rate = 0.5;
  }
  cfg.shared_uplink_bw = util::mbps(10.0);
  cfg.duration = 60.0;
  cfg.policy = "E-only";
  const auto eonly = run_scenario(cfg);
  cfg.policy = "LEIME";
  const auto leime = run_scenario(cfg);
  EXPECT_LT(leime.tct.mean, eonly.tct.mean);
  EXPECT_LT(leime.mean_offload_ratio, 0.9);  // it actually throttled
}

}  // namespace
}  // namespace leime::sim
namespace leime::sim {
namespace {

TEST(Simulation, BacklogFeedbackPreventsUplinkOversubscription) {
  // Near uplink saturation, the memoryless eq. 8 budget (paper) lets the
  // controller oversubscribe the link across slots; the backlog-aware
  // budget must do no worse — and typically much better.
  const auto profile = models::make_inception_v3();
  core::CostModel cm(profile, core::testbed_environment());
  auto cfg = base_scenario(1);
  cfg.partition = core::make_partition(
      profile, core::branch_and_bound_exit_setting(cm).combo);
  cfg.devices[0].mean_rate = 1.0;  // ~0.86 uplink utilisation if offloaded
  cfg.duration = 120.0;
  cfg.uplink_backlog_feedback = false;
  const auto memoryless = run_scenario(cfg);
  cfg.uplink_backlog_feedback = true;
  const auto aware = run_scenario(cfg);
  EXPECT_LE(aware.tct.mean, memoryless.tct.mean * 1.05);
}

}  // namespace
}  // namespace leime::sim
