#include "sim/multi_edge.h"

#include <gtest/gtest.h>

#include "models/zoo.h"

namespace leime::sim {
namespace {

/// Two edges: a strong one and a weak one. Four devices; device links favour
/// different edges.
MultiEdgeConfig two_edge_config() {
  MultiEdgeConfig cfg;
  cfg.edges.push_back({core::kEdgeDesktopFlops, util::mbps(100), util::ms(30)});
  cfg.edges.push_back(
      {0.25 * core::kEdgeDesktopFlops, util::mbps(100), util::ms(30)});
  for (int d = 0; d < 4; ++d) {
    DeviceSpec dev;
    dev.mean_rate = 0.5;
    cfg.devices.push_back(dev);
  }
  // Devices 0-1 have good links to edge 0; devices 2-3 to edge 1.
  cfg.links = {
      {{util::mbps(20), util::ms(10)}, {util::mbps(4), util::ms(60)}},
      {{util::mbps(20), util::ms(10)}, {util::mbps(4), util::ms(60)}},
      {{util::mbps(4), util::ms(60)}, {util::mbps(20), util::ms(10)}},
      {{util::mbps(4), util::ms(60)}, {util::mbps(20), util::ms(10)}},
  };
  cfg.duration = 40.0;
  cfg.warmup = 4.0;
  return cfg;
}

TEST(MultiEdge, BestLinkFollowsBandwidth) {
  const auto cfg = two_edge_config();
  const auto profile = models::make_inception_v3();
  const auto a = associate(cfg, profile, AssociationPolicy::kBestLink);
  EXPECT_EQ(a, (std::vector<int>{0, 0, 1, 1}));
}

TEST(MultiEdge, LeastLoadedSpreadsHomogeneousFleet) {
  MultiEdgeConfig cfg = two_edge_config();
  // Equalise edges so balance is the only criterion.
  cfg.edges[1].flops = cfg.edges[0].flops;
  const auto profile = models::make_inception_v3();
  const auto a = associate(cfg, profile, AssociationPolicy::kLeastLoaded);
  int on_edge0 = 0;
  for (int e : a) on_edge0 += (e == 0);
  EXPECT_EQ(on_edge0, 2);  // 2-2 split
}

TEST(MultiEdge, LeimeAwarePrefersGoodLinks) {
  const auto cfg = two_edge_config();
  const auto profile = models::make_inception_v3();
  const auto a = associate(cfg, profile, AssociationPolicy::kLeimeAware);
  // Devices 0-1 must land on edge 0 (good link AND strong edge); devices
  // 2-3 face a trade-off but must not all pile onto one edge's bad links.
  EXPECT_EQ(a[0], 0);
  EXPECT_EQ(a[1], 0);
}

TEST(MultiEdge, RunProducesConsistentAggregates) {
  const auto cfg = two_edge_config();
  const auto profile = models::make_inception_v3();
  const auto r =
      run_multi_edge(cfg, profile, AssociationPolicy::kBestLink);
  ASSERT_EQ(r.per_edge.size(), 2u);
  ASSERT_EQ(r.assignment.size(), 4u);
  std::size_t total = 0;
  for (const auto& cell : r.per_edge) total += cell.completed;
  EXPECT_EQ(total, r.completed);
  EXPECT_GT(r.completed, 30u);
  EXPECT_GT(r.mean_tct, 0.0);
}

TEST(MultiEdge, LinkAwareAssociationBeatsLinkBlind) {
  // Least-loaded ignores link quality and piles devices 2-3 onto the
  // strong edge across their bad links; the LEIME-aware policy keeps them
  // on the weak edge with the good links and must win end to end.
  const auto profile = models::make_inception_v3();
  const auto cfg = two_edge_config();
  const auto blind =
      run_multi_edge(cfg, profile, AssociationPolicy::kLeastLoaded);
  const auto aware =
      run_multi_edge(cfg, profile, AssociationPolicy::kLeimeAware);
  // Premise: the link-blind policy actually split them differently.
  ASSERT_NE(blind.assignment, aware.assignment);
  EXPECT_LT(aware.mean_tct, blind.mean_tct);
}

TEST(MultiEdge, Validation) {
  const auto profile = models::make_inception_v3();
  MultiEdgeConfig cfg;
  EXPECT_THROW(associate(cfg, profile, AssociationPolicy::kBestLink),
               std::invalid_argument);
  cfg = two_edge_config();
  cfg.links.pop_back();
  EXPECT_THROW(associate(cfg, profile, AssociationPolicy::kBestLink),
               std::invalid_argument);
  cfg = two_edge_config();
  cfg.links[0].pop_back();
  EXPECT_THROW(associate(cfg, profile, AssociationPolicy::kBestLink),
               std::invalid_argument);
}

TEST(MultiEdge, PolicyNames) {
  EXPECT_EQ(to_string(AssociationPolicy::kBestLink), "best-link");
  EXPECT_EQ(to_string(AssociationPolicy::kLeastLoaded), "least-loaded");
  EXPECT_EQ(to_string(AssociationPolicy::kLeimeAware), "LEIME-aware");
}

}  // namespace
}  // namespace leime::sim
