#include "sim/slotted_fleet.h"

#include <gtest/gtest.h>

#include "core/exit_setting.h"
#include "models/zoo.h"

namespace leime::sim {
namespace {

SlottedFleetConfig fleet_config(int devices = 3) {
  const auto profile = models::make_inception_v3();
  core::CostModel cm(profile, core::testbed_environment());
  SlottedFleetConfig cfg;
  cfg.partition = core::make_partition(
      profile, core::branch_and_bound_exit_setting(cm).combo);
  cfg.edge_flops = core::kEdgeDesktopFlops;
  for (int i = 0; i < devices; ++i) {
    FleetDeviceSpec dev;
    dev.flops = (i % 2 == 0) ? core::kRaspberryPiFlops
                             : core::kJetsonNanoFlops;
    dev.bandwidth = util::mbps(10.0);
    dev.latency = util::ms(20.0);
    dev.mean_tasks = 0.5 + 0.3 * i;
    cfg.devices.push_back(dev);
  }
  cfg.num_slots = 300;
  return cfg;
}

TEST(SlottedFleet, SharesSumToOneAndFavourLoadedWeakDevices) {
  const auto cfg = fleet_config(4);
  const core::LeimePolicy policy;
  const auto r = run_slotted_fleet(cfg, policy);
  double sum = 0.0;
  for (double p : r.edge_shares) sum += p;
  EXPECT_NEAR(sum, 1.0, 1e-9);
  ASSERT_EQ(r.edge_shares.size(), 4u);
  // Device 2 (RPi, rate 1.1) needs more share than device 1 (Nano, 0.8).
  EXPECT_GT(r.edge_shares[2], r.edge_shares[1]);
}

TEST(SlottedFleet, PerDeviceAggregatesConsistent) {
  const auto cfg = fleet_config();
  const core::LeimePolicy policy;
  const auto r = run_slotted_fleet(cfg, policy);
  EXPECT_GT(r.total_tasks, 300u);
  EXPECT_GT(r.mean_tct, 0.0);
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_GE(r.mean_offload_ratio[i], 0.0);
    EXPECT_LE(r.mean_offload_ratio[i], 1.0);
    EXPECT_GE(r.final_device_queue[i], 0.0);
  }
}

TEST(SlottedFleet, DeterministicForSeed) {
  const auto cfg = fleet_config();
  const core::LeimePolicy policy;
  const auto a = run_slotted_fleet(cfg, policy);
  const auto b = run_slotted_fleet(cfg, policy);
  EXPECT_DOUBLE_EQ(a.mean_tct, b.mean_tct);
  EXPECT_EQ(a.total_tasks, b.total_tasks);
}

TEST(SlottedFleet, LeimeStabilisesWhereDeviceOnlyDiverges) {
  auto cfg = fleet_config();
  // Push each device beyond its local first-block capacity.
  for (auto& d : cfg.devices) d.mean_tasks = 3.0;
  const core::LeimePolicy leime;
  const core::DeviceOnlyPolicy donly;
  const auto with_leime = run_slotted_fleet(cfg, leime);
  const auto with_donly = run_slotted_fleet(cfg, donly);
  double leime_backlog = 0.0, donly_backlog = 0.0;
  for (std::size_t i = 0; i < 3; ++i) {
    leime_backlog += with_leime.final_device_queue[i];
    donly_backlog += with_donly.final_device_queue[i];
  }
  EXPECT_LT(leime_backlog, donly_backlog);
  EXPECT_LT(with_leime.mean_tct, with_donly.mean_tct);
}

TEST(SlottedFleet, Validation) {
  const core::LeimePolicy policy;
  SlottedFleetConfig cfg;
  EXPECT_THROW(run_slotted_fleet(cfg, policy), std::invalid_argument);
  cfg = fleet_config();
  cfg.edge_flops = 0.0;
  EXPECT_THROW(run_slotted_fleet(cfg, policy), std::invalid_argument);
  cfg = fleet_config();
  cfg.num_slots = 0;
  EXPECT_THROW(run_slotted_fleet(cfg, policy), std::invalid_argument);
  cfg = fleet_config();
  cfg.devices[0].flops = -1.0;
  EXPECT_THROW(run_slotted_fleet(cfg, policy), std::invalid_argument);
}

}  // namespace
}  // namespace leime::sim
